package probdedup_test

import (
	"testing"

	"probdedup"
	"probdedup/internal/keys"
	"probdedup/internal/rank"
)

// TestPublicConstructors exercises the thin façade constructors that the
// scenario tests build through internal packages instead.
func TestPublicConstructors(t *testing.T) {
	d, err := probdedup.NewDist(probdedup.Alternative{Value: probdedup.V("a"), P: 0.4})
	if err != nil {
		t.Fatal(err)
	}
	if !almost(d.NullP(), 0.6) {
		t.Fatalf("⊥ mass = %v", d.NullP())
	}
	u := probdedup.Uniform("x", "y")
	if got := u.Len(); got != 2 {
		t.Fatalf("Uniform len = %d", got)
	}
	alt := probdedup.NewAltDists(0.5, probdedup.Certain("Tim"), u)
	if !almost(alt.P, 0.5) || len(alt.Values) != 2 {
		t.Fatalf("NewAltDists = %+v", alt)
	}
	def := probdedup.NewKeyDef(probdedup.KeyPart{Attr: 0, Prefix: 3})
	if len(def.Parts) != 1 || def.Parts[0].Prefix != 3 {
		t.Fatalf("NewKeyDef = %+v", def)
	}
	s := probdedup.NewStandardizer(probdedup.TrimSpace, nil)
	if s == nil {
		t.Fatal("NewStandardizer returned nil")
	}
}

func TestPublicCompareFuncs(t *testing.T) {
	if got := probdedup.BandedLevenshtein(0.8)("duplicate", "xyzzyplugh"); got != 0 {
		t.Fatalf("BandedLevenshtein below band = %v", got)
	}
	if d, ok := probdedup.LevenshteinWithin("kitten", "sitting", 3); !ok || d != 3 {
		t.Fatalf("LevenshteinWithin = %d, %v", d, ok)
	}
	if _, ok := probdedup.LevenshteinWithin("a", "abcdef", 2); ok {
		t.Fatal("LevenshteinWithin accepted a distance beyond the band")
	}
	if got := probdedup.QGramDice(2)("night", "night"); !almost(got, 1) {
		t.Fatalf("QGramDice = %v", got)
	}
	if got := probdedup.QGramJaccard(2)("night", "nacht"); got <= 0 || got >= 1 {
		t.Fatalf("QGramJaccard = %v", got)
	}
	me := probdedup.MongeElkan(probdedup.Levenshtein)
	if got := me("paul john", "john paul"); !almost(got, 1) {
		t.Fatalf("MongeElkan = %v", got)
	}
	g := probdedup.NewGlossary(probdedup.Exact, []string{"doctor", "physician"})
	if got := g.Sim("doctor", "physician"); !almost(got, 1) {
		t.Fatalf("Glossary = %v", got)
	}
}

func TestPublicEstimateEM(t *testing.T) {
	patterns := []probdedup.Pattern{
		{true, true}, {true, true}, {true, false},
		{false, false}, {false, false}, {false, true},
	}
	res, err := probdedup.EstimateEM(patterns, 2, 50, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.M) != 2 || len(res.U) != 2 || res.Iterations <= 0 {
		t.Fatalf("EstimateEM = %+v", res)
	}
	if res.PMatch <= 0 || res.PMatch >= 1 {
		t.Fatalf("PMatch = %v", res.PMatch)
	}
}

func TestPublicExpectedRanks(t *testing.T) {
	ranks := probdedup.ExpectedRanks([]rank.Item{
		{ID: "a", Keys: []keys.KeyProb{{Key: "aa", P: 1}}},
		{ID: "b", Keys: []keys.KeyProb{{Key: "bb", P: 1}}},
	})
	if len(ranks) != 2 || ranks[0] >= ranks[1] {
		t.Fatalf("ExpectedRanks = %v", ranks)
	}
}

func TestPublicDetectWithStats(t *testing.T) {
	src := probdedup.NewXRelation("S", "name", "job").Append(
		probdedup.NewXTuple("a", probdedup.NewAlt(1, "Tim", "mechanic")),
		probdedup.NewXTuple("b", probdedup.NewAlt(1, "Tim", "mechanic")),
		probdedup.NewXTuple("c", probdedup.NewAlt(1, "Zo", "welder")),
	)
	final := probdedup.Thresholds{Lambda: 0.5, Mu: 0.9}
	res, stats, err := probdedup.DetectWithStats(src, probdedup.Options{
		Compare:   []probdedup.CompareFunc{probdedup.Levenshtein, probdedup.Levenshtein},
		Final:     final,
		PreFilter: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) != 1 {
		t.Fatalf("matches = %v", res.Matches)
	}
	if !stats.FilterActive || stats.Enumerated != stats.Compared+stats.Filtered {
		t.Fatalf("stats = %+v", stats)
	}
	// The same input with filtering off classifies identically.
	plain, err := probdedup.Detect(src, probdedup.Options{
		Compare: []probdedup.CompareFunc{probdedup.Levenshtein, probdedup.Levenshtein},
		Final:   final,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(plain.Matches) != len(res.Matches) || len(plain.Possible) != len(res.Possible) {
		t.Fatalf("filtered result diverged: %+v vs %+v", res, plain)
	}
}
