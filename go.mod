module probdedup

go 1.24
