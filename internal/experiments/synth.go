package experiments

import (
	"fmt"
	"math"
	"strings"
	"time"

	"probdedup/internal/avm"
	"probdedup/internal/core"
	"probdedup/internal/dataset"
	"probdedup/internal/decision"
	"probdedup/internal/fusion"
	"probdedup/internal/keys"
	"probdedup/internal/ssr"
	"probdedup/internal/strsim"
	"probdedup/internal/verify"
	"probdedup/internal/xmatch"
)

// SynthKey is the sorting/blocking key used on the synthetic corpus.
func SynthKey() keys.Def {
	return keys.NewDef(keys.Part{Attr: 0, Prefix: 3}, keys.Part{Attr: 1, Prefix: 2})
}

// UncertaintyLevel bundles generator knobs for the S01 sweep.
type UncertaintyLevel struct {
	Name          string
	TypoRate      float64
	UncertainRate float64
	NullRate      float64
}

// Levels is the three-point uncertainty sweep of S01.
var Levels = []UncertaintyLevel{
	{Name: "low", TypoRate: 0.15, UncertainRate: 0.15, NullRate: 0.05},
	{Name: "medium", TypoRate: 0.30, UncertainRate: 0.40, NullRate: 0.10},
	{Name: "high", TypoRate: 0.45, UncertainRate: 0.70, NullRate: 0.15},
}

// levelConfig instantiates a generator config for a level.
func levelConfig(l UncertaintyLevel, entities int, seed int64) dataset.Config {
	cfg := dataset.DefaultConfig(entities, seed)
	cfg.TypoRate = l.TypoRate
	cfg.UncertainRate = l.UncertainRate
	cfg.NullRate = l.NullRate
	return cfg
}

// synthCompare uses Levenshtein on all three attributes: robust against the
// injected edit noise.
func synthCompare() []strsim.Func {
	return []strsim.Func{strsim.Levenshtein, strsim.Levenshtein, strsim.Levenshtein}
}

func synthAltModel(t decision.Thresholds) decision.Model {
	return decision.SimpleModel{Phi: decision.WeightedSum(0.4, 0.3, 0.3), T: t}
}

// S01Method is one pipeline variant of the effectiveness experiment.
type S01Method struct {
	Name       string
	Derivation xmatch.Derivation
	// AltT classifies alternative pairs, FinalT the derived similarity.
	AltT, FinalT decision.Thresholds
}

// S01Methods returns the derivation variants under test. Thresholds per
// derivation scale: similarity-based and the per-alternative φ are
// normalized; decision-based is a P(m)/P(u) weight; expected-η lies in
// [0,2].
func S01Methods() []S01Method {
	altT := decision.Thresholds{Lambda: 0.62, Mu: 0.76}
	return []S01Method{
		{
			Name:       "similarity-based",
			Derivation: xmatch.SimilarityBased{Conditioned: true},
			AltT:       altT,
			FinalT:     decision.Thresholds{Lambda: 0.62, Mu: 0.76},
		},
		{
			Name:       "decision-based",
			Derivation: xmatch.DecisionBased{Conditioned: true},
			AltT:       altT,
			FinalT:     decision.Thresholds{Lambda: 0.8, Mu: 1.6},
		},
		{
			Name:       "expected-eta",
			Derivation: xmatch.ExpectedEta{Conditioned: true},
			AltT:       altT,
			FinalT:     decision.Thresholds{Lambda: 0.8, Mu: 1.3},
		},
		{
			Name:       "most-probable-world",
			Derivation: xmatch.MostProbableWorld{Conditioned: true},
			AltT:       altT,
			FinalT:     decision.Thresholds{Lambda: 0.62, Mu: 0.76},
		},
		{
			Name:       "max-sim",
			Derivation: xmatch.MaxSim{Conditioned: true},
			AltT:       altT,
			// The optimistic maximum needs a stricter match threshold.
			FinalT: decision.Thresholds{Lambda: 0.68, Mu: 0.82},
		},
	}
}

// S01Row is one measured effectiveness row.
type S01Row struct {
	Level, Method         string
	Precision, Recall, F1 float64
	FPpct, FNpct          float64
	Possible              int
}

// S01 runs the effectiveness sweep: derivation variants × uncertainty
// levels on the synthetic x-relation corpus.
func S01(entities int, seed int64) ([]S01Row, string) {
	var rows []S01Row
	tab := verify.NewTable("level", "method", "precision", "recall", "F1", "FP%", "FN%", "|P|")
	for _, level := range Levels {
		d := dataset.Generate(levelConfig(level, entities, seed))
		u := d.Union()
		universe := ssr.AllPairs(u)
		for _, m := range S01Methods() {
			res, err := core.Detect(u, core.Options{
				Compare:    synthCompare(),
				AltModel:   synthAltModel(m.AltT),
				Derivation: m.Derivation,
				Final:      m.FinalT,
			})
			if err != nil {
				panic(err)
			}
			rep := res.Verify(d.Truth, universe)
			row := S01Row{
				Level: level.Name, Method: m.Name,
				Precision: rep.Precision(), Recall: rep.Recall(), F1: rep.F1(),
				FPpct: rep.FalsePositivePct(), FNpct: rep.FalseNegativePct(),
				Possible: rep.Possible,
			}
			rows = append(rows, row)
			tab.AddRow(row.Level, row.Method, row.Precision, row.Recall, row.F1, row.FPpct, row.FNpct, row.Possible)
		}
		// Fellegi–Sunter with EM-estimated parameters (decision-based).
		row := s01FellegiSunter(level, d)
		rows = append(rows, row)
		tab.AddRow(row.Level, row.Method, row.Precision, row.Recall, row.F1, row.FPpct, row.FNpct, row.Possible)
	}
	return rows, "S01 — effectiveness of the adapted decision models (Sec. III-E / IV)\n" + tab.String()
}

// s01FellegiSunter estimates m/u probabilities with EM on the unlabeled
// agreement patterns of the corpus, derives classification thresholds from
// the estimated posterior, and runs the decision-based derivation with the
// resulting FS model per alternative pair.
func s01FellegiSunter(level UncertaintyLevel, d *dataset.Dataset) S01Row {
	u := d.Union()
	universe := ssr.AllPairs(u)

	// Collect agreement patterns over conflict-resolved tuples.
	resolved := fusion.ResolveRelation(fusion.MostProbable{}, u)
	matcher := avm.NewMatcher(synthCompare()...)
	byID := map[string]int{}
	for i, t := range resolved.Tuples {
		byID[t.ID] = i
	}
	patterns := make([]decision.Pattern, 0, len(universe))
	for _, p := range universe {
		c := matcher.CompareTuples(resolved.Tuples[byID[p.A]], resolved.Tuples[byID[p.B]])
		patterns = append(patterns, decision.Agreement(c, 0.6))
	}
	em, err := decision.EstimateEM(patterns, 3, 200, 1e-9)
	if err != nil {
		panic(err)
	}
	// Posterior-odds thresholds: declare match when P(M|pattern) > 0.5,
	// non-match when < 0.1.
	priorOdds := em.PMatch / (1 - em.PMatch)
	tMu := -math.Log2(priorOdds)
	tLambda := math.Log2(0.1/0.9) - math.Log2(priorOdds)
	fs := &decision.FellegiSunter{
		M: em.M, U: em.U,
		AgreeThresholds: []float64{0.6},
		T:               decision.Thresholds{Lambda: tLambda, Mu: tMu},
	}
	res, err := core.Detect(u, core.Options{
		Compare:    synthCompare(),
		AltModel:   fs,
		Derivation: xmatch.DecisionBased{Conditioned: true},
		Final:      decision.Thresholds{Lambda: 0.8, Mu: 1.6},
	})
	if err != nil {
		panic(err)
	}
	rep := res.Verify(d.Truth, universe)
	return S01Row{
		Level: level.Name, Method: "fellegi-sunter+EM",
		Precision: rep.Precision(), Recall: rep.Recall(), F1: rep.F1(),
		FPpct: rep.FalsePositivePct(), FNpct: rep.FalseNegativePct(),
		Possible: rep.Possible,
	}
}

// S02Row is one measured reduction row.
type S02Row struct {
	Method         string
	Candidates     int
	ReductionRatio float64
	Completeness   float64
	Quality        float64
}

// S02Methods enumerates the reduction methods under comparison. Multi-pass
// variants use k worlds; the full-enumeration variant is omitted on
// synthetic corpora (the world count is astronomical), exactly the
// drawback Sec. V-A.1 discusses.
func S02Methods(window, blocks, kWorlds int) []ssr.Method {
	def := SynthKey()
	return []ssr.Method{
		ssr.CrossProduct{},
		ssr.SNMCertain{Key: def, Window: window},
		ssr.SNMAlternatives{Key: def, Window: window},
		ssr.SNMRanked{Key: def, Window: window},
		ssr.SNMRanked{Key: def, Window: window, Strategy: ssr.MedianKey},
		ssr.SNMMultiPass{Key: def, Window: window, Select: ssr.TopWorlds, K: kWorlds},
		ssr.SNMMultiPass{Key: def, Window: window, Select: ssr.DissimilarWorlds, K: kWorlds},
		ssr.BlockingCertain{Key: def},
		ssr.BlockingAlternatives{Key: def},
		ssr.BlockingCluster{Key: def, K: blocks, Seed: 7},
		ssr.NewFilter(ssr.SNMAlternatives{Key: def, Window: window},
			ssr.Pruning{MaxDiff: map[int]int{0: 3}}),
	}
}

// S02 measures reduction ratio, pairs completeness and pair quality of
// every search-space reduction method on the synthetic corpus.
func S02(entities int, seed int64) ([]S02Row, string) {
	d := dataset.Generate(levelConfig(Levels[1], entities, seed))
	u := d.Union()
	n := len(u.Tuples)
	var rows []S02Row
	tab := verify.NewTable("method", "candidates", "RR", "PC", "PQ")
	for _, m := range S02Methods(7, n/8, 8) {
		red := ssr.Measure(m, u, d.Truth)
		row := S02Row{
			Method:         m.Name(),
			Candidates:     red.CandidatePairs,
			ReductionRatio: red.ReductionRatio(),
			Completeness:   red.PairsCompleteness(),
			Quality:        red.PairQuality(),
		}
		rows = append(rows, row)
		tab.AddRow(row.Method, row.Candidates, row.ReductionRatio, row.Completeness, row.Quality)
	}
	return rows, fmt.Sprintf("S02 — search-space reduction on %d tuples (Sec. V)\n%s", n, tab.String())
}

// S03Row is one world-selection measurement.
type S03Row struct {
	Selector     string
	K            int
	Candidates   int
	Completeness float64
}

// S03 studies the multi-pass approach: effectiveness versus the number of
// selected worlds, comparing most-probable-k against the dissimilar-k
// selection (the redundancy argument of Sec. V-A.1: highly probable worlds
// are often similar, so extra passes add little).
func S03(entities int, seed int64) ([]S03Row, string) {
	d := dataset.Generate(levelConfig(Levels[1], entities, seed))
	u := d.Union()
	def := SynthKey()
	var rows []S03Row
	tab := verify.NewTable("selector", "k", "candidates", "PC")
	for _, k := range []int{1, 2, 4, 8, 16} {
		for _, sel := range []ssr.WorldSelection{ssr.TopWorlds, ssr.DissimilarWorlds} {
			m := ssr.SNMMultiPass{Key: def, Window: 7, Select: sel, K: k}
			red := ssr.Measure(m, u, d.Truth)
			row := S03Row{
				Selector:     m.Name(),
				K:            k,
				Candidates:   red.CandidatePairs,
				Completeness: red.PairsCompleteness(),
			}
			rows = append(rows, row)
			tab.AddRow(row.Selector, row.K, row.Candidates, row.Completeness)
		}
	}
	return rows, "S03 — world selection for the multi-pass SNM (Sec. V-A.1)\n" + tab.String()
}

// S04Row is one scaling measurement.
type S04Row struct {
	Method  string
	Tuples  int
	Elapsed time.Duration
}

// S04 measures wall-clock scaling of the reduction methods against the
// cross-product baseline (the O(n log n) claim of Sec. V-A.4).
func S04(sizes []int, seed int64) ([]S04Row, string) {
	if len(sizes) == 0 {
		sizes = []int{100, 200, 400, 800}
	}
	def := SynthKey()
	var rows []S04Row
	tab := verify.NewTable("method", "tuples", "elapsed")
	for _, n := range sizes {
		d := dataset.Generate(levelConfig(Levels[1], n, seed))
		u := d.Union()
		methods := []ssr.Method{
			ssr.CrossProduct{},
			ssr.SNMCertain{Key: def, Window: 7},
			ssr.SNMAlternatives{Key: def, Window: 7},
			ssr.SNMRanked{Key: def, Window: 7},
			ssr.BlockingAlternatives{Key: def},
		}
		for _, m := range methods {
			start := time.Now() //pdlint:allow nowallclock -- experiment stopwatch; elapsed time is the measured quantity
			_ = m.Candidates(u)
			el := time.Since(start)
			rows = append(rows, S04Row{Method: m.Name(), Tuples: len(u.Tuples), Elapsed: el})
			tab.AddRow(m.Name(), len(u.Tuples), el.String())
		}
	}
	return rows, "S04 — scaling of the reduction methods (Sec. V)\n" + tab.String()
}

// S05Row is one window-sweep measurement.
type S05Row struct {
	Method       string
	Window       int
	Candidates   int
	Completeness float64
}

// S05 sweeps the sorted-neighborhood window size — the knob Sec. V-A.1
// highlights ("depending on the window size both passes can result in
// different x-tuple matchings") — and reports the candidate count and
// pairs completeness trade-off per SNM variant.
func S05(entities int, seed int64) ([]S05Row, string) {
	d := dataset.Generate(levelConfig(Levels[1], entities, seed))
	u := d.Union()
	def := SynthKey()
	var rows []S05Row
	tab := verify.NewTable("method", "window", "candidates", "PC")
	for _, w := range []int{2, 4, 8, 16, 32} {
		for _, m := range []ssr.Method{
			ssr.SNMCertain{Key: def, Window: w},
			ssr.SNMAlternatives{Key: def, Window: w},
			ssr.SNMRanked{Key: def, Window: w, Strategy: ssr.MedianKey},
		} {
			red := ssr.Measure(m, u, d.Truth)
			row := S05Row{
				Method:       m.Name(),
				Window:       w,
				Candidates:   red.CandidatePairs,
				Completeness: red.PairsCompleteness(),
			}
			rows = append(rows, row)
			tab.AddRow(row.Method, row.Window, row.Candidates, row.Completeness)
		}
	}
	return rows, "S05 — window-size sweep for the SNM variants (Sec. V-A)\n" + tab.String()
}

// AllPaperExperiments concatenates E01–E10 output.
func AllPaperExperiments() string {
	var b strings.Builder
	b.WriteString(E01())
	b.WriteString("\n")
	b.WriteString(E02())
	b.WriteString("\n")
	_, e03 := E03()
	b.WriteString(e03)
	_, _, _, e04 := E04()
	b.WriteString(e04)
	b.WriteString("\n")
	b.WriteString(E05())
	b.WriteString(E06())
	b.WriteString(E07())
	b.WriteString(E08())
	b.WriteString(E09())
	b.WriteString("\n")
	b.WriteString(E10())
	return b.String()
}
