package experiments

import (
	"math"
	"strings"
	"testing"
)

func TestA01ConditioningMatters(t *testing.T) {
	rows, out := A01(80, 42)
	if len(rows) != 4 {
		t.Fatalf("A01 rows = %d", len(rows))
	}
	byKey := map[string]A01Row{}
	for _, r := range rows {
		key := r.Method
		if r.Conditioned {
			key += "/cond"
		} else {
			key += "/uncond"
		}
		byKey[key] = r
	}
	// The paper's claim: removing the conditioning lets tuple membership
	// leak into similarity-based matching and hurts recall badly (maybe
	// tuples are systematically under-scored).
	simCond := byKey["similarity-based/cond"]
	simUncond := byKey["similarity-based/uncond"]
	if simUncond.Recall >= simCond.Recall {
		t.Errorf("unconditioned similarity-based should lose recall: %v vs %v",
			simUncond.Recall, simCond.Recall)
	}
	// Structural finding: the decision-based weight P(m)/P(u) is a ratio,
	// so the per-tuple scale 1/p(t) cancels — it is invariant to
	// conditioning.
	decCond := byKey["decision-based/cond"]
	decUncond := byKey["decision-based/uncond"]
	if math.Abs(decCond.F1-decUncond.F1) > 1e-9 {
		t.Errorf("decision-based must be conditioning-invariant: %v vs %v",
			decCond.F1, decUncond.F1)
	}
	if !strings.Contains(out, "conditioning") {
		t.Fatalf("output:\n%s", out)
	}
}

func TestA02NullSemantics(t *testing.T) {
	rows, out := A02(80, 42)
	if len(rows) != 6 {
		t.Fatalf("A02 rows = %d", len(rows))
	}
	// Rows 0–2: correlated missingness; rows 3–5: independent.
	corrPaper, corrAblated := rows[0], rows[1]
	indepPaper, indepAblated := rows[3], rows[4]
	// sim(⊥,⊥)=1 must not be worse than sim(⊥,⊥)=0 under either mechanism:
	// pairs that agree on missingness gain similarity.
	if corrPaper.F1 < corrAblated.F1-1e-9 {
		t.Errorf("correlated: paper ⊥ semantics (F1=%v) must beat ablated (F1=%v)",
			corrPaper.F1, corrAblated.F1)
	}
	if indepPaper.F1 < indepAblated.F1-1e-9 {
		t.Errorf("independent: paper ⊥ semantics (F1=%v) must beat ablated (F1=%v)",
			indepPaper.F1, indepAblated.F1)
	}
	// Under the paper's own reading of ⊥ (correlated, entity-level
	// missingness) its semantics must do strictly better than under
	// independent missingness, where true duplicates disagree on coverage.
	if corrPaper.F1 < indepPaper.F1-1e-9 {
		t.Errorf("paper semantics should shine with correlated missingness: %v vs %v",
			corrPaper.F1, indepPaper.F1)
	}
	if !strings.Contains(out, "⊥") || !strings.Contains(out, "correlated") {
		t.Fatalf("output:\n%s", out)
	}
}
