// Package experiments regenerates every checkable figure and worked example
// of the paper (E01–E10) plus the synthetic evaluation its verification
// step implies (S01–S04). The experiment IDs follow DESIGN.md §4 and
// EXPERIMENTS.md; cmd/pdbench prints them and the root benchmark suite
// exercises the same entry points.
package experiments

import (
	"fmt"
	"sort"
	"strings"

	"probdedup/internal/avm"
	"probdedup/internal/decision"
	"probdedup/internal/fusion"
	"probdedup/internal/keys"
	"probdedup/internal/paperdata"
	"probdedup/internal/pdb"
	"probdedup/internal/ssr"
	"probdedup/internal/strsim"
	"probdedup/internal/verify"
	"probdedup/internal/worlds"
	"probdedup/internal/xmatch"
)

// PaperKey is the paper's sorting key: first three characters of name plus
// first two of job.
func PaperKey() keys.Def {
	return keys.NewDef(keys.Part{Attr: 0, Prefix: 3}, keys.Part{Attr: 1, Prefix: 2})
}

// Fig14Key is the paper's blocking key: first character of name and job.
func Fig14Key() keys.Def {
	return keys.NewDef(keys.Part{Attr: 0, Prefix: 1}, keys.Part{Attr: 1, Prefix: 1})
}

// PaperModel is the per-alternative decision model of the Sec. IV examples.
func PaperModel() decision.Model {
	return decision.SimpleModel{
		Phi: decision.WeightedSum(0.8, 0.2),
		T:   decision.Thresholds{Lambda: 0.4, Mu: 0.7},
	}
}

// PaperMatcher compares both attributes with normalized Hamming.
func PaperMatcher() *avm.Matcher {
	return avm.NewMatcher(strsim.NormalizedHamming, strsim.NormalizedHamming)
}

// E01 reproduces the Sec. IV-A worked example (attribute value matching and
// tuple similarity on ℛ1 × ℛ2).
func E01() string {
	r1, r2 := paperdata.R1(), paperdata.R2()
	t11, t22 := r1.TupleByID("t11"), r2.TupleByID("t22")
	nameSim := avm.Sim(strsim.NormalizedHamming, t11.Attrs[0], t22.Attrs[0])
	jobSim := avm.Sim(strsim.NormalizedHamming, t11.Attrs[1], t22.Attrs[1])
	phi := decision.WeightedSum(0.8, 0.2)
	tupleSim := phi(avm.Vector{nameSim, jobSim})
	var b strings.Builder
	fmt.Fprintf(&b, "E01 — attribute value matching (Sec. IV-A, Fig. 4)\n")
	tab := verify.NewTable("quantity", "measured", "paper")
	tab.AddRow("sim(t11.name, t22.name)", nameSim, "0.9")
	tab.AddRow("sim(machinist, mechanic)", strsim.NormalizedHamming("machinist", "mechanic"), "5/9")
	tab.AddRow("sim(t11.job, t22.job)", jobSim, "0.59 (rounded; exact 53/90)")
	tab.AddRow("sim(t11, t22) = 0.8c1+0.2c2", tupleSim, "0.838 (with rounded 0.59)")
	b.WriteString(tab.String())
	return b.String()
}

// E02 reproduces Fig. 7: the possible worlds of {t32, t42} and the
// conditioning event B.
func E02() string {
	t32 := paperdata.R3().TupleByID("t32")
	t42 := paperdata.R4().TupleByID("t42")
	xr := worlds.PairRelation([]string{"name", "job"}, t32, t42)
	var b strings.Builder
	fmt.Fprintf(&b, "E02 — possible worlds of {t32,t42} (Fig. 7), P(B)=%.4f (paper: 0.72)\n",
		worlds.MembershipProbability(xr))
	tab := verify.NewTable("world (t32 | t42)", "P", "P(world|B)")
	ws, _ := worlds.Enumerate(xr, false, 0)
	sort.SliceStable(ws, func(i, j int) bool { return ws[i].P > ws[j].P })
	pb := worlds.MembershipProbability(xr)
	for _, w := range ws {
		label := choiceLabel(w.Choices[0]) + " | " + choiceLabel(w.Choices[1])
		cond := "-"
		if w.Contains(0) && w.Contains(1) {
			cond = fmt.Sprintf("%.4f", w.P/pb)
		}
		tab.AddRow(label, w.P, cond)
	}
	b.WriteString(tab.String())
	return b.String()
}

func choiceLabel(c worlds.Choice) string {
	if c.Alt < 0 {
		return "absent"
	}
	parts := make([]string, len(c.Values))
	for i, v := range c.Values {
		parts[i] = v.String()
	}
	return "(" + strings.Join(parts, ",") + ")"
}

// E03 reproduces the similarity-based derivation example (Eq. 6):
// sim(t32,t42) = 7/15.
func E03() (float64, string) {
	t32 := paperdata.R3().TupleByID("t32")
	t42 := paperdata.R4().TupleByID("t42")
	m := PaperMatcher()
	mat := m.CompareXTuples(t32, t42)
	sim := xmatch.SimilarityBased{Conditioned: true}.Sim(t32, t42, mat, PaperModel())
	return sim, fmt.Sprintf("E03 — similarity-based derivation (Eq. 6): sim(t32,t42) = %.6f (paper: 7/15 = %.6f)\n",
		sim, 7.0/15)
}

// E04 reproduces the decision-based derivation example (Eq. 7–9):
// P(m)=3/9, P(u)=4/9, sim = 0.75.
func E04() (pm, pu, sim float64, out string) {
	t32 := paperdata.R3().TupleByID("t32")
	t42 := paperdata.R4().TupleByID("t42")
	m := PaperMatcher()
	mat := m.CompareXTuples(t32, t42)
	d := xmatch.DecisionBased{Conditioned: true}
	pm, pu = d.Probabilities(t32, t42, mat, PaperModel())
	sim = d.Sim(t32, t42, mat, PaperModel())
	out = fmt.Sprintf("E04 — decision-based derivation (Eq. 7–9): P(m)=%.4f P(u)=%.4f sim=%.4f (paper: 3/9, 4/9, 0.75)\n",
		pm, pu, sim)
	return
}

// E05 reproduces Fig. 9: the per-world sorting orders of the multi-pass
// approach for the two worlds of Fig. 8.
func E05() string {
	xr := paperdata.R34()
	def := PaperKey()
	var b strings.Builder
	b.WriteString("E05 — multi-pass sorting orders (Figs. 8–9)\n")
	show := func(label string, want map[string][2]string) {
		worlds.ForEach(xr, true, func(w worlds.World) bool {
			r := worlds.Materialize(xr, w)
			if !worldMatches(r, want) {
				return true
			}
			fmt.Fprintf(&b, "  world %s:", label)
			type ent struct{ key, id string }
			var ents []ent
			for _, t := range r.Tuples {
				ents = append(ents, ent{def.FromCertainTuple(t), t.ID})
			}
			sort.SliceStable(ents, func(i, j int) bool { return ents[i].key < ents[j].key })
			for _, e := range ents {
				fmt.Fprintf(&b, "  %s(%s)", e.key, e.id)
			}
			b.WriteString("\n")
			return false
		})
	}
	show("I1", map[string][2]string{
		"t31": {"John", "pilot"}, "t32": {"Tim", "mechanic"},
		"t41": {"Johan", "pianist"}, "t42": {"Tom", "mechanic"}, "t43": {"Sean", "pilot"},
	})
	show("I2", map[string][2]string{
		"t31": {"Johan", "musician"}, "t32": {"Jim", "mechanic"},
		"t41": {"John", "pilot"}, "t42": {"Tom", "mechanic"}, "t43": {"John", ""},
	})
	return b.String()
}

func worldMatches(r *pdb.Relation, want map[string][2]string) bool {
	if len(r.Tuples) != len(want) {
		return false
	}
	for _, tu := range r.Tuples {
		w, ok := want[tu.ID]
		if !ok {
			return false
		}
		name, job := tu.Attrs[0].String(), tu.Attrs[1].String()
		if job == "⊥" {
			job = ""
		}
		if name != w[0] || job != w[1] {
			return false
		}
	}
	return true
}

// E06 reproduces Fig. 10 (certain keys by conflict resolution) and checks
// the subset property w.r.t. multi-pass.
func E06() string {
	xr := paperdata.R34()
	def := PaperKey()
	r := fusion.ResolveRelation(fusion.MostProbable{}, xr)
	type ent struct{ key, id string }
	var ents []ent
	for _, t := range r.Tuples {
		ents = append(ents, ent{def.FromCertainTuple(t), t.ID})
	}
	sort.SliceStable(ents, func(i, j int) bool { return ents[i].key < ents[j].key })
	var b strings.Builder
	b.WriteString("E06 — certain keys via most probable alternatives (Fig. 10)\n  order:")
	for _, e := range ents {
		fmt.Fprintf(&b, "  %s(%s)", e.key, e.id)
	}
	certain := ssr.SNMCertain{Key: def, Window: 2}.Candidates(xr)
	multi := ssr.SNMMultiPass{Key: def, Window: 2, Select: ssr.AllWorlds}.Candidates(xr)
	subset := true
	for p := range certain {
		if !multi[p] {
			subset = false
		}
	}
	fmt.Fprintf(&b, "\n  matchings: certain=%d multi-pass=%d subset=%v (paper: always a subset)\n",
		len(certain), len(multi), subset)
	return b.String()
}

// E07 reproduces Figs. 11–12: sorting alternatives with window 2 gives five
// matchings, each exactly once.
func E07() string {
	m := ssr.SNMAlternatives{Key: PaperKey(), Window: 2}
	xr := paperdata.R34()
	var b strings.Builder
	b.WriteString("E07 — sorting alternatives (Figs. 11–12)\n  kept entries:")
	for _, e := range m.SortedEntries(xr) {
		fmt.Fprintf(&b, "  %s(%s)", e.Key, e.ID)
	}
	cands := m.Candidates(xr)
	fmt.Fprintf(&b, "\n  matchings (%d, paper: 5):", len(cands))
	for _, p := range cands.Sorted() {
		fmt.Fprintf(&b, "  (%s,%s)", p.A, p.B)
	}
	b.WriteString("\n")
	return b.String()
}

// E08 reproduces Fig. 13: the ranked order of ℛ34 under uncertain keys.
func E08() string {
	m := ssr.SNMRanked{Key: PaperKey(), Window: 2}
	ids := m.RankedIDs(paperdata.R34())
	return fmt.Sprintf("E08 — ranking by uncertain keys (Fig. 13): order %v (paper: [t32 t31 t41 t43 t42])\n", ids)
}

// E09 reproduces Fig. 14: blocking with alternative key values.
func E09() string {
	m := ssr.BlockingAlternatives{Key: Fig14Key()}
	xr := paperdata.R34()
	blocks := m.Blocks(xr)
	var names []string
	for k := range blocks {
		names = append(names, k)
	}
	sort.Strings(names)
	var b strings.Builder
	b.WriteString("E09 — blocking with alternative keys (Fig. 14)\n")
	for _, k := range names {
		members := append([]string(nil), blocks[k]...)
		sort.Strings(members)
		fmt.Fprintf(&b, "  block %-3q %v\n", k, members)
	}
	cands := m.Candidates(xr)
	fmt.Fprintf(&b, "  matchings (%d, paper: 3):", len(cands))
	for _, p := range cands.Sorted() {
		fmt.Fprintf(&b, "  (%s,%s)", p.A, p.B)
	}
	b.WriteString("\n")
	return b.String()
}

// E10 demonstrates the knowledge-based identification rule of Fig. 1 inside
// the two-step decision model of Figs. 2–3.
func E10() string {
	rules, err := decision.ParseRules(
		"IF name > 0.8 AND job > 0.5 THEN DUPLICATES WITH CERTAINTY=0.8",
		[]string{"name", "job"})
	if err != nil {
		panic(err)
	}
	model := decision.RuleModel{Rules: rules, T: decision.Thresholds{Lambda: 0.7, Mu: 0.7}}
	r1, r2 := paperdata.R1(), paperdata.R2()
	matcher := PaperMatcher()
	var b strings.Builder
	b.WriteString("E10 — identification rule of Fig. 1 over ℛ1 × ℛ2\n")
	tab := verify.NewTable("pair", "c1(name)", "c2(job)", "certainty", "η")
	for _, t1 := range r1.Tuples {
		for _, t2 := range r2.Tuples {
			c := matcher.CompareTuples(t1, t2)
			sim := model.Similarity(c)
			tab.AddRow(t1.ID+","+t2.ID, c[0], c[1], sim, model.Classify(sim).String())
		}
	}
	b.WriteString(tab.String())
	return b.String()
}
