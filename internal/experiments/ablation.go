package experiments

import (
	"probdedup/internal/avm"
	"probdedup/internal/core"
	"probdedup/internal/dataset"
	"probdedup/internal/decision"
	"probdedup/internal/ssr"
	"probdedup/internal/verify"
	"probdedup/internal/xmatch"
)

// The DESIGN.md §5 ablations: each switches off one of the paper's design
// decisions and measures the effectiveness delta on the synthetic corpus.

// A01Row is one conditioning-ablation measurement.
type A01Row struct {
	Method                string
	Conditioned           bool
	Precision, Recall, F1 float64
}

// A01 ablates the conditioning p(tⁱ)/p(t) (Sec. IV-B: "not tuple membership
// but only uncertainty on attribute value level should influence the
// duplicate detection process"). Without conditioning, maybe-tuples are
// systematically under-scored, costing recall.
func A01(entities int, seed int64) ([]A01Row, string) {
	cfg := levelConfig(Levels[1], entities, seed)
	// Force plenty of tuple-level uncertainty so the ablation has teeth.
	cfg.MaybeRate = 0.6
	d := dataset.Generate(cfg)
	u := d.Union()
	universe := ssr.AllPairs(u)

	var rows []A01Row
	tab := verify.NewTable("derivation", "conditioned", "precision", "recall", "F1")
	for _, cond := range []bool{true, false} {
		for _, m := range []struct {
			name   string
			derive xmatch.Derivation
			finalT decision.Thresholds
		}{
			{"similarity-based", xmatch.SimilarityBased{Conditioned: cond}, decision.Thresholds{Lambda: 0.62, Mu: 0.76}},
			{"decision-based", xmatch.DecisionBased{Conditioned: cond}, decision.Thresholds{Lambda: 0.8, Mu: 1.6}},
		} {
			res, err := core.Detect(u, core.Options{
				Compare:    synthCompare(),
				AltModel:   synthAltModel(decision.Thresholds{Lambda: 0.62, Mu: 0.76}),
				Derivation: m.derive,
				Final:      m.finalT,
			})
			if err != nil {
				panic(err)
			}
			rep := res.Verify(d.Truth, universe)
			row := A01Row{
				Method: m.name, Conditioned: cond,
				Precision: rep.Precision(), Recall: rep.Recall(), F1: rep.F1(),
			}
			rows = append(rows, row)
			tab.AddRow(row.Method, row.Conditioned, row.Precision, row.Recall, row.F1)
		}
	}
	return rows, "A01 — ablation: conditioning on tuple membership (Sec. IV-B)\n" + tab.String()
}

// A02Row is one ⊥-semantics measurement.
type A02Row struct {
	Missingness           string
	Semantics             string
	Precision, Recall, F1 float64
}

// A02 ablates the ⊥ semantics under two missingness mechanisms. The paper
// sets sim(⊥,⊥)=1 ("two non-existent values refer to the same real-world
// fact") and sim(a,⊥)=0, implicitly assuming non-existence is an entity
// property: a jobless person is jobless in every representation
// (correlated missingness). The sweep also runs independent (per-
// representation, measurement-style) missingness, where the strict
// sim(a,⊥)=0 punishes true duplicates that disagree on coverage.
func A02(entities int, seed int64) ([]A02Row, string) {
	var rows []A02Row
	tab := verify.NewTable("missingness", "⊥ semantics", "precision", "recall", "F1")
	for _, mech := range []struct {
		name       string
		correlated bool
	}{
		{"correlated (entity-level)", true},
		{"independent (per-representation)", false},
	} {
		cfg := levelConfig(Levels[1], entities, seed)
		cfg.NullRate = 0.5 // make missing values common
		cfg.CorrelatedNulls = mech.correlated
		d := dataset.Generate(cfg)
		u := d.Union()
		universe := ssr.AllPairs(u)
		for _, s := range []struct {
			name  string
			nulls avm.NullSemantics
		}{
			{"paper: sim(⊥,⊥)=1, sim(a,⊥)=0", avm.PaperNulls},
			{"ablated: sim(⊥,⊥)=0, sim(a,⊥)=0", avm.NullSemantics{NullNull: 0, NullValue: 0}},
			{"naive: sim(⊥,⊥)=1, sim(a,⊥)=0.5", avm.NullSemantics{NullNull: 1, NullValue: 0.5}},
		} {
			nulls := s.nulls
			res, err := core.Detect(u, core.Options{
				Compare:    synthCompare(),
				AltModel:   synthAltModel(decision.Thresholds{Lambda: 0.62, Mu: 0.76}),
				Derivation: xmatch.SimilarityBased{Conditioned: true},
				Final:      decision.Thresholds{Lambda: 0.62, Mu: 0.76},
				Nulls:      &nulls,
			})
			if err != nil {
				panic(err)
			}
			rep := verify.Evaluate(res.Matches, res.Possible, d.Truth, universe)
			row := A02Row{
				Missingness: mech.name, Semantics: s.name,
				Precision: rep.Precision(), Recall: rep.Recall(), F1: rep.F1(),
			}
			rows = append(rows, row)
			tab.AddRow(row.Missingness, row.Semantics, row.Precision, row.Recall, row.F1)
		}
	}
	return rows, "A02 — ablation: non-existence (⊥) semantics (Sec. IV-A)\n" + tab.String()
}
