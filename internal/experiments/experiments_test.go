package experiments

import (
	"math"
	"strings"
	"testing"
)

func almost(a, b float64) bool { return math.Abs(a-b) <= 1e-9 }

func TestE01Output(t *testing.T) {
	out := E01()
	for _, want := range []string{"0.9000", "0.5556", "0.5889", "0.8378"} {
		if !strings.Contains(out, want) {
			t.Errorf("E01 output missing %q:\n%s", want, out)
		}
	}
}

func TestE02Output(t *testing.T) {
	out := E02()
	if !strings.Contains(out, "P(B)=0.7200") {
		t.Fatalf("E02 missing P(B):\n%s", out)
	}
	// The eight world probabilities of Fig. 7.
	for _, want := range []string{"0.2400", "0.1600", "0.3200", "0.0800", "0.0600", "0.0400", "0.0200"} {
		if !strings.Contains(out, want) {
			t.Errorf("E02 missing world probability %s:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "absent") {
		t.Error("E02 must show absent-tuple worlds")
	}
}

func TestE03E04Values(t *testing.T) {
	sim, _ := E03()
	if !almost(sim, 7.0/15) {
		t.Fatalf("E03 sim = %v", sim)
	}
	pm, pu, dsim, _ := E04()
	if !almost(pm, 3.0/9) || !almost(pu, 4.0/9) || !almost(dsim, 0.75) {
		t.Fatalf("E04 = %v %v %v", pm, pu, dsim)
	}
}

func TestE05Output(t *testing.T) {
	out := E05()
	// Fig. 9 left order.
	i1 := "Johpi(t31)  Johpi(t41)  Seapi(t43)  Timme(t32)  Tomme(t42)"
	// Fig. 9 right order.
	i2 := "Jimme(t32)  Joh(t43)  Johmu(t31)  Johpi(t41)  Tomme(t42)"
	if !strings.Contains(out, i1) {
		t.Errorf("E05 missing I1 order:\n%s", out)
	}
	if !strings.Contains(out, i2) {
		t.Errorf("E05 missing I2 order:\n%s", out)
	}
}

func TestE06Output(t *testing.T) {
	out := E06()
	if !strings.Contains(out, "Jimba(t32)  Johpi(t31)  Johpi(t41)  Seapi(t43)  Tomme(t42)") {
		t.Errorf("E06 missing Fig. 10 order:\n%s", out)
	}
	if !strings.Contains(out, "subset=true") {
		t.Errorf("E06 subset property not confirmed:\n%s", out)
	}
}

func TestE07Output(t *testing.T) {
	out := E07()
	for _, want := range []string{"matchings (5", "(t31,t41)", "(t32,t42)", "(t32,t43)", "(t31,t43)", "(t41,t43)"} {
		if !strings.Contains(out, want) {
			t.Errorf("E07 missing %q:\n%s", want, out)
		}
	}
}

func TestE08Output(t *testing.T) {
	out := E08()
	if !strings.Contains(out, "[t32 t31 t41 t43 t42]") {
		t.Errorf("E08 order wrong:\n%s", out)
	}
}

func TestE09Output(t *testing.T) {
	out := E09()
	for _, want := range []string{"matchings (3", `"Jp"`, `"Jm"`, `"Tm"`, `"Jb"`, `"J"`, `"Sp"`} {
		if !strings.Contains(out, want) {
			t.Errorf("E09 missing %q:\n%s", want, out)
		}
	}
}

func TestE10Output(t *testing.T) {
	out := E10()
	if !strings.Contains(out, "t11,t22") {
		t.Fatalf("E10 missing pair rows:\n%s", out)
	}
	// (t11,t22) satisfies name>0.8 ∧ job>0.5 → certainty 0.8 → match.
	found := false
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "t11,t22") && strings.Contains(line, "0.8000") && strings.HasSuffix(strings.TrimSpace(line), "m") {
			found = true
		}
	}
	if !found {
		t.Errorf("E10: (t11,t22) must fire the rule and match:\n%s", out)
	}
}

func TestS01ShapesHold(t *testing.T) {
	rows, out := S01(60, 11)
	if len(rows) != 6*len(Levels) {
		t.Fatalf("S01 produced %d rows", len(rows))
	}
	byKey := map[string]S01Row{}
	for _, r := range rows {
		byKey[r.Level+"/"+r.Method] = r
		if r.Precision < 0 || r.Precision > 1 || r.Recall < 0 || r.Recall > 1 {
			t.Fatalf("metric out of range: %+v", r)
		}
	}
	// Shape: every method degrades (F1) from low to high uncertainty, with
	// a small tolerance for threshold-crossing noise on the small corpus.
	for _, m := range []string{"similarity-based", "decision-based", "expected-eta"} {
		lo, hi := byKey["low/"+m], byKey["high/"+m]
		if hi.F1 > lo.F1+0.1 {
			t.Errorf("%s: F1 should not improve with more uncertainty (low %.3f, high %.3f)", m, lo.F1, hi.F1)
		}
	}
	if !strings.Contains(out, "similarity-based") || !strings.Contains(out, "fellegi-sunter+EM") {
		t.Fatalf("S01 table incomplete:\n%s", out)
	}
}

func TestS02ShapesHold(t *testing.T) {
	rows, out := S02(60, 11)
	if len(rows) != 11 {
		t.Fatalf("S02 produced %d rows", len(rows))
	}
	byName := map[string]S02Row{}
	for _, r := range rows {
		byName[r.Method] = r
	}
	cross := byName["cross-product"]
	if cross.ReductionRatio != 0 || cross.Completeness != 1 {
		t.Fatalf("cross product must be the no-reduction baseline: %+v", cross)
	}
	for name, r := range byName {
		if name == "cross-product" {
			continue
		}
		if r.ReductionRatio <= 0 {
			t.Errorf("%s: no reduction achieved (%+v)", name, r)
		}
		if r.Quality < cross.Quality {
			t.Errorf("%s: pair quality below baseline", name)
		}
	}
	// The certain-key pass equals a pass over the most probable world, so
	// multi-pass (which includes that world) can only find more matches —
	// the subset property of Sec. V-A.2.
	if byName["snm-multipass-top"].Completeness < byName["snm-certain"].Completeness-1e-9 {
		t.Errorf("snm-multipass-top PC (%f) below snm-certain (%f)",
			byName["snm-multipass-top"].Completeness, byName["snm-certain"].Completeness)
	}
	// The EXPERIMENTS.md S02 ablation finding: median-key ordering is
	// robust where expected-rank ordering collapses on multi-modal keys.
	if byName["snm-ranked-median"].Completeness <= byName["snm-ranked"].Completeness {
		t.Errorf("snm-ranked-median PC (%f) should beat snm-ranked (%f) on noisy keys",
			byName["snm-ranked-median"].Completeness, byName["snm-ranked"].Completeness)
	}
	// Length pruning is lossless relative to its inner method here: it can
	// only drop pairs, never matches with compatible lengths.
	if byName["snm-alternatives+pruned"].Candidates > byName["snm-alternatives"].Candidates {
		t.Error("pruning added candidates")
	}
	if !strings.Contains(out, "blocking-alternatives") {
		t.Fatalf("S02 table incomplete:\n%s", out)
	}
}

func TestS03ShapesHold(t *testing.T) {
	rows, out := S03(40, 13)
	if len(rows) != 10 {
		t.Fatalf("S03 produced %d rows", len(rows))
	}
	// Completeness is monotone non-decreasing in k for each selector.
	prev := map[string]float64{}
	for _, r := range rows {
		if p, ok := prev[r.Selector]; ok && r.Completeness < p-1e-9 {
			t.Errorf("%s: completeness decreased with more worlds", r.Selector)
		}
		prev[r.Selector] = r.Completeness
	}
	if !strings.Contains(out, "snm-multipass-dissimilar") {
		t.Fatalf("S03 table incomplete:\n%s", out)
	}
}

func TestS05WindowMonotone(t *testing.T) {
	rows, out := S05(50, 11)
	if len(rows) != 15 {
		t.Fatalf("S05 produced %d rows", len(rows))
	}
	// Candidates and completeness are monotone non-decreasing in the
	// window size per method.
	prevC := map[string]int{}
	prevPC := map[string]float64{}
	for _, r := range rows {
		if c, ok := prevC[r.Method]; ok && r.Candidates < c {
			t.Errorf("%s: candidates shrank with larger window", r.Method)
		}
		if pc, ok := prevPC[r.Method]; ok && r.Completeness < pc-1e-9 {
			t.Errorf("%s: completeness shrank with larger window", r.Method)
		}
		prevC[r.Method] = r.Candidates
		prevPC[r.Method] = r.Completeness
	}
	if !strings.Contains(out, "window") {
		t.Fatalf("output:\n%s", out)
	}
}

func TestS04Runs(t *testing.T) {
	rows, out := S04([]int{40, 80}, 5)
	if len(rows) != 10 {
		t.Fatalf("S04 produced %d rows", len(rows))
	}
	for _, r := range rows {
		if r.Elapsed < 0 {
			t.Fatalf("negative elapsed: %+v", r)
		}
	}
	if !strings.Contains(out, "snm-ranked") {
		t.Fatalf("S04 table incomplete:\n%s", out)
	}
}

func TestAllPaperExperiments(t *testing.T) {
	out := AllPaperExperiments()
	for _, id := range []string{"E01", "E02", "E03", "E04", "E05", "E06", "E07", "E08", "E09", "E10"} {
		if !strings.Contains(out, id) {
			t.Errorf("combined output missing %s", id)
		}
	}
}
