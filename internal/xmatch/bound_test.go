package xmatch

import (
	"math"
	"testing"

	"probdedup/internal/avm"
	"probdedup/internal/decision"
)

// opaqueModel has no NonMatchBounded view, so the class-aggregating
// derivations must fall back to +Inf.
type opaqueModel struct{}

func (opaqueModel) Similarity(c avm.Vector) float64   { return 0 }
func (opaqueModel) Classify(s float64) decision.Class { return decision.U }

func boundedModel(lambda float64) decision.Model {
	return decision.WeightedSumModel{
		Weights: decision.EqualWeights(2),
		T:       decision.Thresholds{Lambda: lambda, Mu: 0.9},
	}
}

// TestPassThroughBounds: the convex-combination-shaped derivations
// (similarity based, max-sim, most probable world) inherit the cell
// bound unchanged.
func TestPassThroughBounds(t *testing.T) {
	model := boundedModel(0.6)
	for name, d := range map[string]Bounded{
		"similarity-based":    SimilarityBased{},
		"similarity-cond":     SimilarityBased{Conditioned: true},
		"max-sim":             MaxSim{},
		"most-probable-world": MostProbableWorld{},
	} {
		for _, ub := range []float64{0, 0.25, 0.6, 1} {
			if got := d.SimUpperBound(ub, model); got != ub {
				t.Fatalf("%s: SimUpperBound(%v) = %v, want pass-through", name, ub, got)
			}
		}
	}
}

// TestClassAggregatingBounds: decision based and expected-η derive 0
// when every cell is certainly a non-match (cellUB strictly below the
// model's U region) and are unbounded otherwise.
func TestClassAggregatingBounds(t *testing.T) {
	model := boundedModel(0.6)
	for name, d := range map[string]Bounded{
		"decision-based": DecisionBased{},
		"expected-eta":   ExpectedEta{},
	} {
		if got := d.SimUpperBound(0.59, model); got != 0 {
			t.Fatalf("%s: certain non-match bound = %v, want 0", name, got)
		}
		if got := d.SimUpperBound(0.6, model); !math.IsInf(got, 1) {
			t.Fatalf("%s: cellUB at Tλ bound = %v, want +Inf", name, got)
		}
		// A model that hides its U region gives the filter nothing.
		if got := d.SimUpperBound(0, opaqueModel{}); !math.IsInf(got, 1) {
			t.Fatalf("%s: opaque model bound = %v, want +Inf", name, got)
		}
	}
}

// TestBuiltinDerivationsAreBounded pins that every built-in derivation
// implements Bounded — a new derivation without a bound silently
// disables filtering, which should be a conscious choice.
func TestBuiltinDerivationsAreBounded(t *testing.T) {
	for name, d := range map[string]Derivation{
		"similarity-based":    SimilarityBased{},
		"max-sim":             MaxSim{},
		"most-probable-world": MostProbableWorld{},
		"decision-based":      DecisionBased{},
		"expected-eta":        ExpectedEta{},
	} {
		if _, ok := d.(Bounded); !ok {
			t.Fatalf("%s does not implement Bounded", name)
		}
	}
}
