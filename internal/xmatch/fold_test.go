package xmatch

import (
	"math"
	"math/rand"
	"testing"

	"probdedup/internal/avm"
	"probdedup/internal/decision"
	"probdedup/internal/paperdata"
	"probdedup/internal/pdb"
	"probdedup/internal/strsim"
)

// foldDerivations are all derivations of the package, in both
// conditioning modes where applicable.
func foldDerivations() []Folder {
	return []Folder{
		SimilarityBased{Conditioned: true},
		SimilarityBased{Conditioned: false},
		DecisionBased{Conditioned: true},
		DecisionBased{Conditioned: false},
		ExpectedEta{Conditioned: true},
		ExpectedEta{Conditioned: false},
		MostProbableWorld{Conditioned: true},
		MaxSim{Conditioned: true},
		MaxSim{Conditioned: true, Weighted: true},
		MaxSim{Conditioned: false},
	}
}

// TestFoldEqualsMaterializeOnPaperExamples proves fold ≡ materialize on
// the paper's worked example pair (t32, t42): both paths must agree
// bit-for-bit, and the canonical derivations must reproduce the paper's
// numbers (Eq. 6: 7/15, Eq. 7–9: 0.75).
func TestFoldEqualsMaterializeOnPaperExamples(t *testing.T) {
	t32 := paperdata.R3().TupleByID("t32")
	t42 := paperdata.R4().TupleByID("t42")
	m := avm.NewMatcher(strsim.NormalizedHamming, strsim.NormalizedHamming)
	model := decision.SimpleModel{
		Phi: decision.WeightedSum(0.8, 0.2),
		T:   decision.Thresholds{Lambda: 0.4, Mu: 0.7},
	}
	mat := m.CompareXTuples(t32, t42)
	for _, d := range foldDerivations() {
		want := d.Sim(t32, t42, mat, model)
		got := d.SimFold(NewPairSource(m, t32, t42), model)
		if got != want && !(math.IsNaN(got) && math.IsNaN(want)) {
			t.Errorf("%s: fold %v, materialize %v", d.Name(), got, want)
		}
	}
	if got := (SimilarityBased{Conditioned: true}).SimFold(NewPairSource(m, t32, t42), model); math.Abs(got-7.0/15) > 1e-9 {
		t.Errorf("Eq. 6 via fold = %v, want 7/15", got)
	}
	if got := (DecisionBased{Conditioned: true}).SimFold(NewPairSource(m, t32, t42), model); math.Abs(got-0.75) > 1e-9 {
		t.Errorf("Eq. 7–9 via fold = %v, want 0.75", got)
	}
	pm, pu := DecisionBased{Conditioned: true}.ProbabilitiesFold(NewPairSource(m, t32, t42), model)
	if math.Abs(pm-3.0/9) > 1e-9 || math.Abs(pu-4.0/9) > 1e-9 {
		t.Errorf("P(m)=%v P(u)=%v, want 3/9 and 4/9", pm, pu)
	}
}

// randXTuple builds a random x-tuple with up to 3 alternatives of up to
// 2 uncertain attribute values each.
func randXTuple(r *rand.Rand, id string) *pdb.XTuple {
	word := func() string {
		b := make([]byte, 1+r.Intn(5))
		for i := range b {
			b[i] = byte('a' + r.Intn(4))
		}
		return string(b)
	}
	dist := func() pdb.Dist {
		switch r.Intn(3) {
		case 0:
			return pdb.Certain(word())
		case 1:
			return pdb.MustDist(pdb.Alternative{Value: pdb.V(word()), P: 0.6}) // 0.4 ⊥ mass
		default:
			return pdb.MustDist(
				pdb.Alternative{Value: pdb.V(word()), P: 0.5},
				pdb.Alternative{Value: pdb.V(word()), P: 0.3})
		}
	}
	n := 1 + r.Intn(3)
	alts := make([]pdb.Alt, n)
	rem := 1.0
	for i := range alts {
		p := rem
		if i < n-1 {
			p = rem * (0.2 + 0.6*r.Float64())
		}
		rem -= p
		alts[i] = pdb.NewAltDists(p, dist(), dist())
	}
	return pdb.NewXTuple(id, alts...)
}

// TestQuickFoldEqualsMaterialize cross-checks the two paths on random
// x-tuple pairs for every derivation, with a fresh and a reused
// PairSource (scratch reuse must not leak state between pairs).
func TestQuickFoldEqualsMaterialize(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	m := avm.NewMatcher(strsim.Levenshtein, strsim.NormalizedHamming)
	model := decision.SimpleModel{
		Phi: decision.WeightedSum(0.7, 0.3),
		T:   decision.Thresholds{Lambda: 0.4, Mu: 0.7},
	}
	src := &PairSource{}
	for i := 0; i < 300; i++ {
		x1 := randXTuple(r, "a")
		x2 := randXTuple(r, "b")
		mat := m.CompareXTuples(x1, x2)
		for _, d := range foldDerivations() {
			want := d.Sim(x1, x2, mat, model)
			src.Reset(m, x1, x2)
			got := d.SimFold(src, model)
			if got != want && !(math.IsNaN(got) && math.IsNaN(want)) {
				t.Fatalf("pair %d, %s: fold %v, materialize %v", i, d.Name(), got, want)
			}
		}
	}
}

// TestComparerUsesFoldPath checks the Comparer end to end against a
// manual materialize run, and that repeated Compare calls on one
// Comparer stay correct (scratch reuse).
func TestComparerUsesFoldPath(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	final := decision.Thresholds{Lambda: 0.4, Mu: 0.7}
	model := decision.SimpleModel{Phi: decision.WeightedSum(0.8, 0.2), T: final}
	for _, d := range foldDerivations() {
		c := &Comparer{
			Matcher:  avm.NewMatcher(strsim.NormalizedHamming, strsim.NormalizedHamming),
			AltModel: model,
			Derive:   d,
			Final:    final,
		}
		ref := avm.NewMatcherWithCache(nil, strsim.NormalizedHamming, strsim.NormalizedHamming)
		for i := 0; i < 50; i++ {
			x1 := randXTuple(r, "a")
			x2 := randXTuple(r, "b")
			got := c.Compare(x1, x2)
			mat := ref.CompareXTuples(x1, x2)
			want := d.Sim(x1, x2, mat, model)
			if got.Sim != want && !(math.IsNaN(got.Sim) && math.IsNaN(want)) {
				t.Fatalf("%s pair %d: Compare %v, reference %v", d.Name(), i, got.Sim, want)
			}
			if got.Class != final.Classify(want) {
				t.Fatalf("%s pair %d: class %v", d.Name(), i, got.Class)
			}
		}
	}
}

// TestMostProbableWorldFoldComputesOneCell pins the efficiency contract
// of the MostProbableWorld fold: only the argmax cell's attribute pairs
// may reach the comparison functions.
func TestMostProbableWorldFoldComputesOneCell(t *testing.T) {
	calls := 0
	counting := func(a, b string) float64 {
		calls++
		return strsim.Exact(a, b)
	}
	// Memoization off so every computed cell is visible.
	m := avm.NewMatcherWithCache(nil, counting, counting)
	x1 := pdb.NewXTuple("x1",
		pdb.NewAlt(0.7, "Tim", "machinist"),
		pdb.NewAlt(0.3, "Tom", "mechanic"))
	x2 := pdb.NewXTuple("x2",
		pdb.NewAlt(0.6, "Kim", "baker"),
		pdb.NewAlt(0.4, "Jim", "smith"))
	d := MostProbableWorld{Conditioned: true}
	sim := d.SimFold(NewPairSource(m, x1, x2), decision.SimpleModel{Phi: decision.Average, T: decision.Thresholds{}})
	if calls != 2 {
		t.Fatalf("fold computed %d attribute similarities, want 2 (one cell)", calls)
	}
	if sim != 0 { // (Tim,Kim) and (machinist,baker) disagree under Exact
		t.Fatalf("sim = %v", sim)
	}
}
