package xmatch

import (
	"math"
	"testing"

	"probdedup/internal/avm"
	"probdedup/internal/decision"
	"probdedup/internal/paperdata"
	"probdedup/internal/pdb"
	"probdedup/internal/strsim"
)

func almost(a, b float64) bool { return math.Abs(a-b) <= 1e-9 }

// paperSetup returns the matcher and per-alternative model used by the
// paper's Sec. IV-B examples: normalized Hamming on both attributes and
// φ(c⃗) = 0.8·c1 + 0.2·c2.
func paperSetup() (*avm.Matcher, decision.Model) {
	m := avm.NewMatcher(strsim.NormalizedHamming, strsim.NormalizedHamming)
	model := decision.SimpleModel{
		Phi: decision.WeightedSum(0.8, 0.2),
		T:   decision.Thresholds{Lambda: 0.4, Mu: 0.7},
	}
	return m, model
}

func t32t42() (*pdb.XTuple, *pdb.XTuple) {
	return paperdata.R3().TupleByID("t32"), paperdata.R4().TupleByID("t42")
}

func TestAlternativePairSimilarities(t *testing.T) {
	// The paper's step-1 values: sim(t¹32,t42)=11/15, sim(t²32,t42)=7/15,
	// sim(t³32,t42)=4/15.
	m, model := paperSetup()
	x1, x2 := t32t42()
	mat := m.CompareXTuples(x1, x2)
	want := []float64{11.0 / 15, 7.0 / 15, 4.0 / 15}
	for i, w := range want {
		got := model.Similarity(mat.At(i, 0))
		if !almost(got, w) {
			t.Errorf("sim(t%d32,t42) = %v, want %v", i+1, got, w)
		}
	}
}

func TestE03SimilarityBasedDerivation(t *testing.T) {
	// Eq. 6 example: sim(t32,t42) = 7/15.
	m, model := paperSetup()
	x1, x2 := t32t42()
	mat := m.CompareXTuples(x1, x2)
	d := SimilarityBased{Conditioned: true}
	if got := d.Sim(x1, x2, mat, model); !almost(got, 7.0/15) {
		t.Fatalf("sim(t32,t42) = %v, want 7/15", got)
	}
}

func TestE04DecisionBasedDerivation(t *testing.T) {
	// Eq. 7–9 example with Tλ=0.4, Tμ=0.7: P(m)=3/9, P(u)=4/9, sim=0.75.
	m, model := paperSetup()
	x1, x2 := t32t42()
	mat := m.CompareXTuples(x1, x2)
	d := DecisionBased{Conditioned: true}
	pm, pu := d.Probabilities(x1, x2, mat, model)
	if !almost(pm, 3.0/9) {
		t.Errorf("P(m) = %v, want 3/9", pm)
	}
	if !almost(pu, 4.0/9) {
		t.Errorf("P(u) = %v, want 4/9", pu)
	}
	if got := d.Sim(x1, x2, mat, model); !almost(got, 0.75) {
		t.Fatalf("sim(t32,t42) = %v, want 0.75", got)
	}
}

func TestExpectedEtaDerivation(t *testing.T) {
	// η values of the three worlds: m(2)·3/9 + p(1)·2/9 + u(0)·4/9 = 8/9.
	m, model := paperSetup()
	x1, x2 := t32t42()
	mat := m.CompareXTuples(x1, x2)
	d := ExpectedEta{Conditioned: true}
	if got := d.Sim(x1, x2, mat, model); !almost(got, 8.0/9) {
		t.Fatalf("E(η) = %v, want 8/9", got)
	}
}

func TestConditioningMatters(t *testing.T) {
	// t42 has p=0.8; unconditioned similarity-based derivation scales by
	// 0.9·0.8 = 0.72, leaking membership into the similarity.
	m, model := paperSetup()
	x1, x2 := t32t42()
	mat := m.CompareXTuples(x1, x2)
	cond := SimilarityBased{Conditioned: true}.Sim(x1, x2, mat, model)
	uncond := SimilarityBased{Conditioned: false}.Sim(x1, x2, mat, model)
	if !almost(uncond, cond*0.9*0.8) {
		t.Fatalf("unconditioned %v, conditioned %v: expected factor p(t32)·p(t42)", uncond, cond)
	}
}

func TestMembershipInvariance(t *testing.T) {
	// Scaling all alternative probabilities of an x-tuple by a constant
	// (changing p(t) only) must not change any conditioned derivation.
	m, model := paperSetup()
	x1, x2 := t32t42()
	scaled := x1.Clone()
	for i := range scaled.Alts {
		scaled.Alts[i].P *= 0.5
	}
	mat1 := m.CompareXTuples(x1, x2)
	mat2 := m.CompareXTuples(scaled, x2)
	for _, d := range []Derivation{
		SimilarityBased{Conditioned: true},
		DecisionBased{Conditioned: true},
		ExpectedEta{Conditioned: true},
	} {
		a := d.Sim(x1, x2, mat1, model)
		b := d.Sim(scaled, x2, mat2, model)
		if !almost(a, b) {
			t.Errorf("%s: membership leaked (%v vs %v)", d.Name(), a, b)
		}
	}
}

func TestDecisionBasedEdgeCases(t *testing.T) {
	m, model := paperSetup()
	d := DecisionBased{Conditioned: true}
	// Identical certain x-tuples: every pair matches → P(u)=0 → +Inf.
	a := pdb.NewXTuple("a", pdb.NewAlt(1, "Tim", "mechanic"))
	b := pdb.NewXTuple("b", pdb.NewAlt(1, "Tim", "mechanic"))
	mat := m.CompareXTuples(a, b)
	if got := d.Sim(a, b, mat, model); !math.IsInf(got, 1) {
		t.Errorf("all-match must be +Inf, got %v", got)
	}
	// Completely dissimilar: P(m)=0 → 0/positive = 0.
	c := pdb.NewXTuple("c", pdb.NewAlt(1, "zzzz", "qqqq"))
	mat = m.CompareXTuples(a, c)
	if got := d.Sim(a, c, mat, model); !almost(got, 0) {
		t.Errorf("all-unmatch = %v, want 0", got)
	}
	// Only possible matches: P(m)=P(u)=0 → 0.
	pOnly := decision.SimpleModel{Phi: decision.Average, T: decision.Thresholds{Lambda: 0, Mu: 1.5}}
	mat = m.CompareXTuples(a, b)
	if got := (DecisionBased{Conditioned: true}).Sim(a, b, mat, pOnly); !almost(got, 0) {
		t.Errorf("all-possible = %v, want 0", got)
	}
}

func TestComparerEndToEnd(t *testing.T) {
	m, model := paperSetup()
	x1, x2 := t32t42()
	c := &Comparer{
		Matcher:  m,
		AltModel: model,
		Derive:   DecisionBased{Conditioned: true},
		// Matching-weight scale: weight > 1 means m-worlds outweigh
		// u-worlds.
		Final: decision.Thresholds{Lambda: 0.5, Mu: 1.0},
	}
	res := c.Compare(x1, x2)
	if res.ID1 != "t32" || res.ID2 != "t42" {
		t.Fatalf("IDs %s,%s", res.ID1, res.ID2)
	}
	if !almost(res.Sim, 0.75) {
		t.Fatalf("sim = %v", res.Sim)
	}
	if res.Class != decision.P {
		t.Fatalf("0.75 ∈ [0.5,1.0] must be a possible match, got %v", res.Class)
	}
}

func TestSimilarityBasedNormalizedRange(t *testing.T) {
	// With a normalized φ the similarity-based derivation stays in [0,1]
	// for every pair of paper x-tuples.
	m, model := paperSetup()
	all := append(paperdata.R3().Tuples, paperdata.R4().Tuples...)
	d := SimilarityBased{Conditioned: true}
	for i := 0; i < len(all); i++ {
		for j := i + 1; j < len(all); j++ {
			mat := m.CompareXTuples(all[i], all[j])
			s := d.Sim(all[i], all[j], mat, model)
			if s < -1e-9 || s > 1+1e-9 {
				t.Errorf("sim(%s,%s) = %v outside [0,1]", all[i].ID, all[j].ID, s)
			}
		}
	}
}

func TestDerivationNames(t *testing.T) {
	names := map[string]bool{}
	for _, d := range []Derivation{
		SimilarityBased{Conditioned: true}, SimilarityBased{},
		DecisionBased{Conditioned: true}, DecisionBased{},
		ExpectedEta{Conditioned: true}, ExpectedEta{},
	} {
		if d.Name() == "" || names[d.Name()] {
			t.Errorf("duplicate or empty name %q", d.Name())
		}
		names[d.Name()] = true
	}
}

func TestSymmetry(t *testing.T) {
	// sim(t1,t2) == sim(t2,t1) for all derivations on all paper pairs.
	m, model := paperSetup()
	all := append(paperdata.R3().Tuples, paperdata.R4().Tuples...)
	for _, d := range []Derivation{
		SimilarityBased{Conditioned: true},
		DecisionBased{Conditioned: true},
		ExpectedEta{Conditioned: true},
	} {
		for i := 0; i < len(all); i++ {
			for j := i + 1; j < len(all); j++ {
				m12 := m.CompareXTuples(all[i], all[j])
				m21 := m.CompareXTuples(all[j], all[i])
				a := d.Sim(all[i], all[j], m12, model)
				b := d.Sim(all[j], all[i], m21, model)
				if !(almost(a, b) || (math.IsInf(a, 1) && math.IsInf(b, 1))) {
					t.Errorf("%s: sim(%s,%s)=%v but sim(%s,%s)=%v",
						d.Name(), all[i].ID, all[j].ID, a, all[j].ID, all[i].ID, b)
				}
			}
		}
	}
}
