package xmatch

import (
	"math"
	"testing"

	"probdedup/internal/paperdata"
	"probdedup/internal/pdb"
)

func TestMostProbableWorldDerivation(t *testing.T) {
	m, model := paperSetup()
	x1, x2 := t32t42()
	mat := m.CompareXTuples(x1, x2)
	d := MostProbableWorld{Conditioned: true}
	// Most probable alternatives: t32 → (Jim,baker), t42 → (Tom,mechanic);
	// their pair similarity is 4/15.
	if got := d.Sim(x1, x2, mat, model); !almost(got, 4.0/15) {
		t.Fatalf("sim = %v, want 4/15", got)
	}
}

func TestMaxSimDerivation(t *testing.T) {
	m, model := paperSetup()
	x1, x2 := t32t42()
	mat := m.CompareXTuples(x1, x2)
	// The best alternative pair is (Tim,mechanic)×(Tom,mechanic) = 11/15.
	if got := (MaxSim{Conditioned: true}).Sim(x1, x2, mat, model); !almost(got, 11.0/15) {
		t.Fatalf("max-sim = %v, want 11/15", got)
	}
	// Weighted: 11/15 damped by (0.3/0.9)·(0.8/0.8) = 1/3 → 11/45 — unless
	// another pair scores higher after weighting. Pairs: 11/15·1/3=11/45,
	// 7/15·(2/9)=14/135, 4/15·(4/9)=16/135. Max is 11/45.
	if got := (MaxSim{Conditioned: true, Weighted: true}).Sim(x1, x2, mat, model); !almost(got, 11.0/45) {
		t.Fatalf("weighted max-sim = %v, want 11/45", got)
	}
}

func TestMaxSimUpperBoundsSimilarityBased(t *testing.T) {
	// The expectation can never exceed the maximum.
	m, model := paperSetup()
	all := append(paperdata.R3().Tuples, paperdata.R4().Tuples...)
	for i := 0; i < len(all); i++ {
		for j := i + 1; j < len(all); j++ {
			mat := m.CompareXTuples(all[i], all[j])
			exp := SimilarityBased{Conditioned: true}.Sim(all[i], all[j], mat, model)
			max := MaxSim{Conditioned: true}.Sim(all[i], all[j], mat, model)
			if exp > max+1e-9 {
				t.Fatalf("E[sim]=%v > max=%v for (%s,%s)", exp, max, all[i].ID, all[j].ID)
			}
		}
	}
}

func TestExtraDerivationNames(t *testing.T) {
	seen := map[string]bool{}
	for _, d := range []Derivation{
		MostProbableWorld{Conditioned: true}, MostProbableWorld{},
		MaxSim{Conditioned: true}, MaxSim{},
		MaxSim{Conditioned: true, Weighted: true}, MaxSim{Weighted: true},
	} {
		if d.Name() == "" || seen[d.Name()] {
			t.Errorf("duplicate or empty name %q", d.Name())
		}
		seen[d.Name()] = true
	}
}

func TestExtraDerivationsEmptyish(t *testing.T) {
	m, model := paperSetup()
	a := pdb.NewXTuple("a", pdb.NewAlt(1, "x", "y"))
	b := pdb.NewXTuple("b", pdb.NewAlt(1, "x", "y"))
	mat := m.CompareXTuples(a, b)
	if got := (MostProbableWorld{Conditioned: true}).Sim(a, b, mat, model); !almost(got, 1) {
		t.Fatalf("identical mpw = %v", got)
	}
	if got := (MaxSim{Conditioned: true}).Sim(a, b, mat, model); !almost(got, 1) {
		t.Fatalf("identical max = %v", got)
	}
	if math.IsNaN((MaxSim{}).Sim(a, b, mat, model)) {
		t.Fatal("NaN")
	}
}
