package xmatch

import (
	"math"

	"probdedup/internal/avm"
	"probdedup/internal/decision"
	"probdedup/internal/pdb"
)

// Derivation is the function ϑ of Fig. 6 step 2, generalized over both
// approaches: it sees the x-tuple pair, the comparison matrix, and the
// per-alternative decision model.
type Derivation interface {
	// Name identifies the derivation in reports and benchmarks.
	Name() string
	// Sim derives sim(t1,t2) ∈ ℝ.
	Sim(x1, x2 *pdb.XTuple, mat avm.Matrix, model decision.Model) float64
}

// altWeights returns the per-alternative probabilities, conditioned
// (p(tⁱ)/p(t)) unless cond is false (ablation).
func altWeights(x *pdb.XTuple, cond bool) []float64 {
	w := make([]float64, len(x.Alts))
	for i, a := range x.Alts {
		w[i] = a.P
	}
	if cond {
		pt := x.P()
		if pt > pdb.Eps {
			for i := range w {
				w[i] /= pt
			}
		}
	}
	return w
}

// SimilarityBased is the similarity-based derivation: the conditional
// expectation of the alternative pair similarities (Eq. 6),
//
//	sim(t1,t2) = Σᵢ Σⱼ p(tⁱ1)/p(t1) · p(tʲ2)/p(t2) · sim(tⁱ1,tʲ2).
//
// As the paper notes it suits knowledge-based techniques: with a normalized
// φ the expectation is normalized too, whereas unbounded matching weights
// can make the expectation unrepresentative.
type SimilarityBased struct {
	// Conditioned applies the p(tⁱ)/p(t) normalization (the paper's
	// definition). Disabling it is an ablation that lets tuple membership
	// leak into the similarity.
	Conditioned bool
}

// Name implements Derivation.
func (d SimilarityBased) Name() string {
	if !d.Conditioned {
		return "similarity-based(unconditioned)"
	}
	return "similarity-based"
}

// Sim implements Derivation.
func (d SimilarityBased) Sim(x1, x2 *pdb.XTuple, mat avm.Matrix, model decision.Model) float64 {
	w1 := altWeights(x1, d.Conditioned)
	w2 := altWeights(x2, d.Conditioned)
	total := 0.0
	for i := 0; i < mat.K; i++ {
		for j := 0; j < mat.L; j++ {
			total += w1[i] * w2[j] * model.Similarity(mat.At(i, j))
		}
	}
	return total
}

// DecisionBased is the decision-based derivation of Eq. 7–9: classify every
// alternative pair, then
//
//	sim(t1,t2) = P(m)/P(u)
//
// where P(m) (resp. P(u)) is the total conditioned probability of the
// alternative pairs — equivalently of the possible worlds — declared
// matches (resp. non-matches). The result is non-normalized; if P(u) = 0
// while P(m) > 0 the similarity is +Inf, and 0 when both are 0.
type DecisionBased struct {
	Conditioned bool
}

// Name implements Derivation.
func (d DecisionBased) Name() string {
	if !d.Conditioned {
		return "decision-based(unconditioned)"
	}
	return "decision-based"
}

// Sim implements Derivation.
func (d DecisionBased) Sim(x1, x2 *pdb.XTuple, mat avm.Matrix, model decision.Model) float64 {
	pm, pu := d.Probabilities(x1, x2, mat, model)
	return matchingWeight(pm, pu)
}

// matchingWeight combines P(m) and P(u) into the similarity of Eq. 7.
func matchingWeight(pm, pu float64) float64 {
	switch {
	case pu > 0:
		return pm / pu
	case pm > 0:
		return math.Inf(1)
	default:
		return 0
	}
}

// Probabilities returns P(m) and P(u) (Eq. 8 and 9).
func (d DecisionBased) Probabilities(x1, x2 *pdb.XTuple, mat avm.Matrix, model decision.Model) (pm, pu float64) {
	w1 := altWeights(x1, d.Conditioned)
	w2 := altWeights(x2, d.Conditioned)
	for i := 0; i < mat.K; i++ {
		for j := 0; j < mat.L; j++ {
			switch decision.Decide(model, mat.At(i, j)) {
			case decision.M:
				pm += w1[i] * w2[j]
			case decision.U:
				pu += w1[i] * w2[j]
			}
		}
	}
	return pm, pu
}

// ExpectedEta is the further decision-based derivation mentioned at the end
// of Sec. IV-B: ϑ = E(η(tⁱ1,tʲ2)|B) with the encoding {m=2, p=1, u=0}.
// The result lies in [0,2].
type ExpectedEta struct {
	Conditioned bool
}

// Name implements Derivation.
func (d ExpectedEta) Name() string {
	if !d.Conditioned {
		return "expected-eta(unconditioned)"
	}
	return "expected-eta"
}

// Sim implements Derivation.
func (d ExpectedEta) Sim(x1, x2 *pdb.XTuple, mat avm.Matrix, model decision.Model) float64 {
	w1 := altWeights(x1, d.Conditioned)
	w2 := altWeights(x2, d.Conditioned)
	total := 0.0
	for i := 0; i < mat.K; i++ {
		for j := 0; j < mat.L; j++ {
			total += w1[i] * w2[j] * decision.Decide(model, mat.At(i, j)).Score()
		}
	}
	return total
}

// Comparer runs the complete adapted decision model of Fig. 6 on x-tuple
// pairs: attribute value matching, per-alternative combination/
// classification, derivation ϑ, and final classification.
//
// When the derivation implements Folder (every derivation of this
// package does), Compare streams the alternative-pair similarities
// through the fold kernel and reuses the comparer's scratch buffers, so
// no comparison matrix is materialized and the steady state allocates
// nothing. Other derivations fall back to CompareXTuples.
//
// A Comparer is not safe for concurrent use (the scratch is shared
// across its Compare calls); give each goroutine its own Comparer. The
// matchers of several comparers may share one avm.Cache.
type Comparer struct {
	// Matcher builds comparison matrices.
	Matcher *avm.Matcher
	// AltModel is the decision model applied to alternative tuple pairs
	// (φ in step 1, and for decision-based derivations the per-pair
	// classification of step 1.2).
	AltModel decision.Model
	// Derive is the derivation function ϑ of step 2.
	Derive Derivation
	// Final are the thresholds of step 3 classifying sim(t1,t2).
	Final decision.Thresholds

	// src is the reusable lazy-matrix scratch of the fold path.
	src PairSource
}

// Result is the outcome of comparing one x-tuple pair.
type Result struct {
	// ID1, ID2 are the x-tuple IDs.
	ID1, ID2 string
	// Sim is sim(t1,t2) as produced by the derivation function.
	Sim float64
	// Class is η(t1,t2) ∈ {m,p,u}.
	Class decision.Class
}

// Compare executes the full pipeline of Fig. 6 on one x-tuple pair,
// through the fold kernel when the derivation supports it (see the
// Comparer doc).
func (c *Comparer) Compare(x1, x2 *pdb.XTuple) Result {
	var sim float64
	if f, ok := c.Derive.(Folder); ok {
		c.src.Reset(c.Matcher, x1, x2)
		sim = f.SimFold(&c.src, c.AltModel)
	} else {
		mat := c.Matcher.CompareXTuples(x1, x2)
		sim = c.Derive.Sim(x1, x2, mat, c.AltModel)
	}
	return Result{ID1: x1.ID, ID2: x2.ID, Sim: sim, Class: c.Final.Classify(sim)}
}
