package xmatch

import (
	"math"

	"probdedup/internal/decision"
)

// Bounded is the derivation side of the candidate pre-filter's
// soundness chain (internal/ssr): given a sound upper bound on every
// alternative-pair similarity φ(c⃗ᵢⱼ), a Bounded derivation bounds the
// derived x-tuple similarity without seeing a single comparison
// vector. SimUpperBound must return a value ≥ Sim(x1, x2, mat, model)
// for every x-tuple pair whose cells all satisfy
// model.Similarity(c⃗ᵢⱼ) ≤ cellUB; +Inf is always sound and disables
// filtering for the derivation.
type Bounded interface {
	Derivation
	// SimUpperBound bounds the derived similarity from a per-cell
	// similarity bound. cellUB is guaranteed ≥ 0 by the caller.
	SimUpperBound(cellUB float64, model decision.Model) float64
}

// SimUpperBound implements Bounded: the derivation is a convex-like
// combination Σ w1ᵢ·w2ⱼ·sim(c⃗ᵢⱼ) with non-negative weight sums ≤ 1
// per side, so with cellUB ≥ 0 the total is at most cellUB.
func (d SimilarityBased) SimUpperBound(cellUB float64, model decision.Model) float64 {
	return cellUB
}

// SimUpperBound implements Bounded: the (optionally weighted) maximum
// over cells never exceeds the per-cell bound when cellUB ≥ 0.
func (d MaxSim) SimUpperBound(cellUB float64, model decision.Model) float64 {
	return cellUB
}

// SimUpperBound implements Bounded: the single most probable cell obeys
// the per-cell bound.
func (d MostProbableWorld) SimUpperBound(cellUB float64, model decision.Model) float64 {
	return cellUB
}

// nonMatchCertain reports whether every cell with similarity ≤ cellUB
// classifies as a non-match: the model exposes its U region
// (decision.NonMatchBounded) and cellUB lies strictly below it.
func nonMatchCertain(cellUB float64, model decision.Model) bool {
	nb, ok := model.(decision.NonMatchBounded)
	return ok && cellUB < nb.NonMatchBelow()
}

// SimUpperBound implements Bounded: when every cell is certainly a
// non-match P(m) = 0, so the matching weight P(m)/P(u) is 0; otherwise
// the ratio is unbounded (P(u) can vanish) and +Inf is the only sound
// answer.
func (d DecisionBased) SimUpperBound(cellUB float64, model decision.Model) float64 {
	if nonMatchCertain(cellUB, model) {
		return 0
	}
	return math.Inf(1)
}

// SimUpperBound implements Bounded: with every cell a certain
// non-match, every η score is 0 and so is their expectation. Otherwise
// only the trivial envelope of the encoding applies, which never helps
// a filter thresholded in [0,1] — return +Inf for clarity.
func (d ExpectedEta) SimUpperBound(cellUB float64, model decision.Model) float64 {
	if nonMatchCertain(cellUB, model) {
		return 0
	}
	return math.Inf(1)
}
