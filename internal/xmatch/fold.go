package xmatch

import (
	"math"

	"probdedup/internal/avm"
	"probdedup/internal/decision"
	"probdedup/internal/pdb"
)

// mathInfNeg is −Inf, hoisted so the MaxSim fold loop stays branch-lean.
var mathInfNeg = math.Inf(-1)

// This file is the fold-based comparison kernel: derivations consume
// alternative-pair similarities one at a time, as they are computed,
// instead of requiring the K×L avm.Matrix of CompareXTuples to be
// materialized first. The matrix path remains as the compatibility
// surface (Derivation.Sim); every derivation of this package also
// implements Folder, and the two paths produce bit-identical results
// because they run the same attribute value matching in the same order.

// PairSource is a lazy view of an x-tuple pair's comparison matrix: At
// computes c⃗ᵢⱼ on demand into a scratch vector owned by the source, and
// Weights exposes the (optionally conditioned) alternative probabilities
// from scratch buffers. One PairSource is reused across all comparisons
// of a Comparer, which makes the steady-state fold path allocation-free.
//
// A PairSource is not safe for concurrent use; the vector returned by At
// and the slices returned by Weights are valid only until the next call
// on the same source.
type PairSource struct {
	matcher *avm.Matcher
	x1, x2  *pdb.XTuple

	vec    avm.Vector
	w1, w2 []float64
}

// NewPairSource builds a source for one x-tuple pair. Reuse via Reset is
// preferred on hot paths.
func NewPairSource(m *avm.Matcher, x1, x2 *pdb.XTuple) *PairSource {
	p := &PairSource{}
	p.Reset(m, x1, x2)
	return p
}

// Reset points the source at a new x-tuple pair, keeping the scratch
// buffers.
func (p *PairSource) Reset(m *avm.Matcher, x1, x2 *pdb.XTuple) {
	p.matcher, p.x1, p.x2 = m, x1, x2
}

// Dims returns the alternative counts K and L.
func (p *PairSource) Dims() (k, l int) { return len(p.x1.Alts), len(p.x2.Alts) }

// XTuples returns the pair under comparison.
func (p *PairSource) XTuples() (x1, x2 *pdb.XTuple) { return p.x1, p.x2 }

// At computes the comparison vector c⃗ᵢⱼ of alternative pair (i,j). The
// returned vector is scratch: it is overwritten by the next At call and
// must not be retained.
func (p *PairSource) At(i, j int) avm.Vector {
	p.vec = p.matcher.CompareAltsInto(p.vec, p.x1.Alts[i], p.x2.Alts[j])
	return p.vec
}

// Weights returns the per-alternative probabilities of both x-tuples,
// conditioned on membership (p(tⁱ)/p(t)) when cond is true. The slices
// are scratch and valid until the next Weights or Reset call.
func (p *PairSource) Weights(cond bool) (w1, w2 []float64) {
	p.w1 = altWeightsInto(p.w1, p.x1, cond)
	p.w2 = altWeightsInto(p.w2, p.x2, cond)
	return p.w1, p.w2
}

// altWeightsInto is altWeights writing into dst (grown as needed).
func altWeightsInto(dst []float64, x *pdb.XTuple, cond bool) []float64 {
	if cap(dst) < len(x.Alts) {
		dst = make([]float64, len(x.Alts))
	} else {
		dst = dst[:len(x.Alts)]
	}
	for i, a := range x.Alts {
		dst[i] = a.P
	}
	if cond {
		pt := x.P()
		if pt > pdb.Eps {
			for i := range dst {
				dst[i] /= pt
			}
		}
	}
	return dst
}

// Folder is a Derivation that can fold over the alternative-pair
// similarities as they are computed, without a materialized matrix.
// SimFold must agree exactly with Sim on the matrix of the same pair.
type Folder interface {
	Derivation
	// SimFold derives sim(t1,t2) from the lazy pair source.
	SimFold(src *PairSource, model decision.Model) float64
}

// SimFold implements Folder: the conditional expectation of Eq. 6
// accumulated pair by pair.
func (d SimilarityBased) SimFold(src *PairSource, model decision.Model) float64 {
	w1, w2 := src.Weights(d.Conditioned)
	k, l := src.Dims()
	total := 0.0
	for i := 0; i < k; i++ {
		for j := 0; j < l; j++ {
			total += w1[i] * w2[j] * model.Similarity(src.At(i, j))
		}
	}
	return total
}

// SimFold implements Folder: P(m) and P(u) of Eq. 8/9 accumulated pair
// by pair, then combined as in Sim.
func (d DecisionBased) SimFold(src *PairSource, model decision.Model) float64 {
	pm, pu := d.probabilitiesFold(src, model)
	return matchingWeight(pm, pu)
}

// ProbabilitiesFold returns P(m) and P(u) (Eq. 8 and 9) from the lazy
// pair source, the fold analogue of Probabilities.
func (d DecisionBased) ProbabilitiesFold(src *PairSource, model decision.Model) (pm, pu float64) {
	return d.probabilitiesFold(src, model)
}

func (d DecisionBased) probabilitiesFold(src *PairSource, model decision.Model) (pm, pu float64) {
	w1, w2 := src.Weights(d.Conditioned)
	k, l := src.Dims()
	for i := 0; i < k; i++ {
		for j := 0; j < l; j++ {
			switch decision.Decide(model, src.At(i, j)) {
			case decision.M:
				pm += w1[i] * w2[j]
			case decision.U:
				pu += w1[i] * w2[j]
			}
		}
	}
	return pm, pu
}

// SimFold implements Folder: E(η|B) with {m=2, p=1, u=0} accumulated
// pair by pair.
func (d ExpectedEta) SimFold(src *PairSource, model decision.Model) float64 {
	w1, w2 := src.Weights(d.Conditioned)
	k, l := src.Dims()
	total := 0.0
	for i := 0; i < k; i++ {
		for j := 0; j < l; j++ {
			total += w1[i] * w2[j] * decision.Decide(model, src.At(i, j)).Score()
		}
	}
	return total
}

// SimFold implements Folder. Unlike the matrix path, only the single
// cell of the most probable alternative pair is ever computed — the
// derivation is blind to the rest of the matrix by definition, so the
// fold skips K·L−1 attribute value matchings.
func (d MostProbableWorld) SimFold(src *PairSource, model decision.Model) float64 {
	x1, x2 := src.XTuples()
	i := argmaxAlt(x1)
	j := argmaxAlt(x2)
	if i < 0 || j < 0 {
		return 0
	}
	return model.Similarity(src.At(i, j))
}

// SimFold implements Folder: the running maximum over the pairs.
func (d MaxSim) SimFold(src *PairSource, model decision.Model) float64 {
	w1, w2 := src.Weights(d.Conditioned)
	k, l := src.Dims()
	best := mathInfNeg
	for i := 0; i < k; i++ {
		for j := 0; j < l; j++ {
			s := model.Similarity(src.At(i, j))
			if d.Weighted {
				s *= w1[i] * w2[j]
			}
			if s > best {
				best = s
			}
		}
	}
	if best == mathInfNeg {
		return 0
	}
	return best
}

// Interface conformance: every derivation of this package folds.
var (
	_ Folder = SimilarityBased{}
	_ Folder = DecisionBased{}
	_ Folder = ExpectedEta{}
	_ Folder = MostProbableWorld{}
	_ Folder = MaxSim{}
)
