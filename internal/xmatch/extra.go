package xmatch

import (
	"math"

	"probdedup/internal/avm"
	"probdedup/internal/decision"
	"probdedup/internal/pdb"
)

// The paper notes that "further adequate derivation functions are possible"
// beyond the two presented (Sec. IV-B). This file provides two such
// derivations used by the ablation benchmarks.

// MostProbableWorld derives the x-tuple similarity from the single most
// probable alternative pair: ϑ = sim(tⁱ*, tʲ*) where i*, j* maximize the
// (conditioned) alternative probabilities. It is the derivation analogue of
// the conflict-resolution key strategy (Sec. V-A.2): cheap, but blind to
// all other worlds.
type MostProbableWorld struct {
	Conditioned bool
}

// Name implements Derivation.
func (d MostProbableWorld) Name() string {
	if !d.Conditioned {
		return "most-probable-world(unconditioned)"
	}
	return "most-probable-world"
}

// Sim implements Derivation.
func (d MostProbableWorld) Sim(x1, x2 *pdb.XTuple, mat avm.Matrix, model decision.Model) float64 {
	i := argmaxAlt(x1)
	j := argmaxAlt(x2)
	if i < 0 || j < 0 {
		return 0
	}
	return model.Similarity(mat.At(i, j))
}

func argmaxAlt(x *pdb.XTuple) int {
	best, bestP := -1, math.Inf(-1)
	for i, a := range x.Alts {
		if a.P > bestP+pdb.Eps {
			best, bestP = i, a.P
		}
	}
	return best
}

// MaxSim derives the x-tuple similarity as the maximum alternative-pair
// similarity, optionally damped by the joint (conditioned) probability of
// that pair when Weighted is set. The undamped variant is the most
// optimistic derivation: two x-tuples are as similar as their most similar
// interpretation — useful as a high-recall pre-filter, but prone to false
// positives, which the S01 ablation quantifies.
type MaxSim struct {
	Conditioned bool
	// Weighted multiplies the maximum by the joint probability of the
	// maximizing pair.
	Weighted bool
}

// Name implements Derivation.
func (d MaxSim) Name() string {
	name := "max-sim"
	if d.Weighted {
		name = "max-sim-weighted"
	}
	if !d.Conditioned {
		name += "(unconditioned)"
	}
	return name
}

// Sim implements Derivation.
func (d MaxSim) Sim(x1, x2 *pdb.XTuple, mat avm.Matrix, model decision.Model) float64 {
	w1 := altWeights(x1, d.Conditioned)
	w2 := altWeights(x2, d.Conditioned)
	best := math.Inf(-1)
	for i := 0; i < mat.K; i++ {
		for j := 0; j < mat.L; j++ {
			s := model.Similarity(mat.At(i, j))
			if d.Weighted {
				s *= w1[i] * w2[j]
			}
			if s > best {
				best = s
			}
		}
	}
	if math.IsInf(best, -1) {
		return 0
	}
	return best
}
