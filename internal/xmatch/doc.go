// Package xmatch implements the decision models adapted to the x-tuple
// concept (Sec. IV-B, Fig. 6). The similarity of two x-tuples t1 = {t¹1..tᵏ1}
// and t2 = {t¹2..tˡ2} is derived from their k×l alternative tuple pairs by a
// derivation function ϑ:
//
//   - similarity-based derivation (Fig. 6 left): ϑ maps the similarity
//     vector s⃗ ∈ ℝᵏˣˡ of all alternative pairs to one similarity; the
//     canonical instance is the conditional expectation of Eq. 6,
//   - decision-based derivation (Fig. 6 right): every alternative pair is
//     first classified into {m,p,u}; ϑ maps the matching vector η⃗ to a
//     similarity; the canonical instance is the matching weight
//     P(m)/P(u) of Eq. 7–9,
//   - expected matching result: ϑ = E(η(tⁱ1,tʲ2)|B) with {m=2, p=1, u=0},
//     the further decision-based derivation the paper mentions.
//
// All derivations condition alternative probabilities on tuple membership
// (p(tⁱ)/p(t)), because membership must not influence duplicate detection;
// the Conditioned flag exists as an ablation hook.
//
// Comparer runs the complete Fig. 6 scheme on x-tuple pairs. Every
// derivation of this package additionally implements Folder, the
// fold-based kernel that consumes alternative-pair comparison vectors
// as they are computed instead of materializing the K×L matrix first;
// the fold and matrix paths are bit-identical, and the fold path is
// allocation-free in steady state through per-comparer scratch.
package xmatch
