// Package cluster groups tuples by their uncertain key values, the
// clustering-based handling of uncertain blocking keys suggested in
// Sec. V-B (refs [38]–[40]).
//
// Two algorithms are provided:
//
//   - UKMeans: the expected-distance k-means of Ngai et al. (ICDM 2006)
//     specialized to one-dimensional key embeddings. Each uncertain key is a
//     distribution over positions in the global sorted key universe; under
//     squared Euclidean distance UK-means reduces to k-means over the
//     per-item expected positions (the variance term is constant per item),
//     which we exploit for an exact, fast implementation.
//
//   - KMedoids: a PAM-style k-medoids over expected pairwise string
//     distances E[d(k1,k2)] = ΣΣ p1(k1)p2(k2)·d(k1,k2), which respects string
//     geometry directly at O(n²) cost.
package cluster

import (
	"math"
	"math/rand"
	"sort"

	"probdedup/internal/keys"
	"probdedup/internal/strsim"
)

// Item is a tuple ID with its conditioned probabilistic key value.
type Item struct {
	ID   string
	Keys []keys.KeyProb
}

// Clustering maps every item index to a cluster index in [0,k).
type Clustering struct {
	// Assign[i] is the cluster of item i.
	Assign []int
	// K is the number of clusters.
	K int
	// Centroids holds the final cluster centers in the embedded key
	// space, indexed by cluster. Only UKMeans populates it; consumers
	// use it to place later arrivals by nearest centroid without
	// re-clustering.
	Centroids []float64
}

// Blocks converts the clustering into blocks of item indices.
func (c Clustering) Blocks() [][]int {
	out := make([][]int, c.K)
	for i, b := range c.Assign {
		out[b] = append(out[b], i)
	}
	return out
}

// Embedding is the frozen key-position map of one clustering run: every
// distinct key of the clustered items gets its rank in the sorted key
// universe, normalized to [0,1]. Freezing it lets later arrivals be
// embedded in the same space (and so compared against the run's
// centroids) without re-clustering.
type Embedding struct {
	keys  []string
	index map[string]int
	denom float64
}

// NewEmbedding builds the embedding of the items' key universe.
func NewEmbedding(items []Item) *Embedding {
	index := map[string]int{}
	var all []string
	for _, it := range items {
		for _, kp := range it.Keys {
			if _, ok := index[kp.Key]; !ok {
				index[kp.Key] = 0
				all = append(all, kp.Key)
			}
		}
	}
	sort.Strings(all)
	for i, k := range all {
		index[k] = i
	}
	denom := float64(len(all) - 1)
	if denom <= 0 {
		denom = 1
	}
	return &Embedding{keys: all, index: index, denom: denom}
}

// Keys returns the frozen sorted key universe of the embedding. The
// returned slice is shared with the embedding and must be treated as
// read-only; it is the state NewEmbeddingFromKeys rebuilds an identical
// embedding from (durable-state snapshots persist it).
func (e *Embedding) Keys() []string { return e.keys }

// NewEmbeddingFromKeys rebuilds an embedding from a previously frozen
// key universe. keys must be sorted and free of duplicates — exactly
// what Keys returns; the caller validates untrusted input. The
// rebuilt embedding is bit-identical to the one Keys was taken from:
// same ranks, same denominator, same Pos for every input.
func NewEmbeddingFromKeys(keys []string) *Embedding {
	all := append([]string(nil), keys...)
	index := make(map[string]int, len(all))
	for i, k := range all {
		index[k] = i
	}
	denom := float64(len(all) - 1)
	if denom <= 0 {
		denom = 1
	}
	return &Embedding{keys: all, index: index, denom: denom}
}

// Pos maps an uncertain key to its expected normalized position. Keys
// outside the frozen universe take their would-be insertion rank, so
// unseen arrivals still land between their lexicographic neighbors.
func (e *Embedding) Pos(ks []keys.KeyProb) float64 {
	sum, total := 0.0, 0.0
	for _, kp := range ks {
		idx, ok := e.index[kp.Key]
		if !ok {
			idx = sort.SearchStrings(e.keys, kp.Key)
		}
		sum += kp.P * float64(idx)
		total += kp.P
	}
	if total > 0 {
		sum /= total
	}
	return sum / e.denom
}

// embed maps each item to its expected position in the global sorted key
// universe, normalized to [0,1].
func embed(items []Item) []float64 {
	e := NewEmbedding(items)
	out := make([]float64, len(items))
	for i, it := range items {
		out[i] = e.Pos(it.Keys)
	}
	return out
}

// UKMeans clusters items into k groups by expected key position. The rng
// seeds the initial centroids (k-means++-style farthest-point seeding keeps
// it deterministic given the rng). Iteration stops on convergence or after
// maxIter rounds.
func UKMeans(items []Item, k int, maxIter int, rng *rand.Rand) Clustering {
	n := len(items)
	if k <= 0 {
		k = 1
	}
	if k > n {
		k = n
	}
	if maxIter <= 0 {
		maxIter = 50
	}
	pos := embed(items)
	// Farthest-point seeding from a random start.
	centroids := make([]float64, 0, k)
	if n > 0 {
		centroids = append(centroids, pos[rng.Intn(n)])
	}
	for len(centroids) < k {
		bestIdx, bestDist := 0, -1.0
		for i, p := range pos {
			d := math.Inf(1)
			for _, c := range centroids {
				if dd := math.Abs(p - c); dd < d {
					d = dd
				}
			}
			if d > bestDist {
				bestIdx, bestDist = i, d
			}
		}
		centroids = append(centroids, pos[bestIdx])
	}
	assign := make([]int, n)
	for iter := 0; iter < maxIter; iter++ {
		changed := false
		for i, p := range pos {
			best, bestD := 0, math.Inf(1)
			for c, ct := range centroids {
				if d := (p - ct) * (p - ct); d < bestD {
					best, bestD = c, d
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		// Recompute centroids.
		sums := make([]float64, k)
		counts := make([]int, k)
		for i, a := range assign {
			sums[a] += pos[i]
			counts[a]++
		}
		for c := range centroids {
			if counts[c] > 0 {
				centroids[c] = sums[c] / float64(counts[c])
			}
		}
		if !changed {
			break
		}
	}
	return Clustering{Assign: assign, K: k, Centroids: centroids}
}

// ExpectedDistance returns E[d(a,b)] over the two key distributions, with
// d = 1 − sim for the given comparison function.
func ExpectedDistance(f strsim.Func, a, b []keys.KeyProb) float64 {
	total, mass := 0.0, 0.0
	for _, x := range a {
		for _, y := range b {
			total += x.P * y.P * (1 - f(x.Key, y.Key))
			mass += x.P * y.P
		}
	}
	if mass <= 0 {
		return 0
	}
	return total / mass
}

// KMedoids clusters items into k groups with PAM-style alternation over the
// expected pairwise distance matrix. Deterministic given the rng.
func KMedoids(items []Item, k int, f strsim.Func, maxIter int, rng *rand.Rand) Clustering {
	n := len(items)
	if k <= 0 {
		k = 1
	}
	if k > n {
		k = n
	}
	if maxIter <= 0 {
		maxIter = 30
	}
	// Precompute the distance matrix.
	dist := make([][]float64, n)
	for i := range dist {
		dist[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			d := ExpectedDistance(f, items[i].Keys, items[j].Keys)
			dist[i][j], dist[j][i] = d, d
		}
	}
	// Farthest-point seeding.
	medoids := []int{}
	if n > 0 {
		medoids = append(medoids, rng.Intn(n))
	}
	for len(medoids) < k {
		bestIdx, bestD := 0, -1.0
		for i := 0; i < n; i++ {
			d := math.Inf(1)
			for _, m := range medoids {
				if dist[i][m] < d {
					d = dist[i][m]
				}
			}
			if d > bestD {
				bestIdx, bestD = i, d
			}
		}
		medoids = append(medoids, bestIdx)
	}
	assign := make([]int, n)
	assignAll := func() {
		for i := 0; i < n; i++ {
			best, bestD := 0, math.Inf(1)
			for c, m := range medoids {
				if dist[i][m] < bestD {
					best, bestD = c, dist[i][m]
				}
			}
			assign[i] = best
		}
	}
	assignAll()
	for iter := 0; iter < maxIter; iter++ {
		changed := false
		for c := 0; c < k; c++ {
			// Pick the member minimizing intra-cluster distance as medoid.
			bestM, bestCost := medoids[c], math.Inf(1)
			for i := 0; i < n; i++ {
				if assign[i] != c {
					continue
				}
				cost := 0.0
				for j := 0; j < n; j++ {
					if assign[j] == c {
						cost += dist[i][j]
					}
				}
				if cost < bestCost {
					bestM, bestCost = i, cost
				}
			}
			if bestM != medoids[c] {
				medoids[c] = bestM
				changed = true
			}
		}
		if !changed {
			break
		}
		assignAll()
	}
	return Clustering{Assign: assign, K: k}
}
