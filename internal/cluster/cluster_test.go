package cluster

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"probdedup/internal/keys"
	"probdedup/internal/strsim"
)

func almost(a, b float64) bool { return math.Abs(a-b) <= 1e-9 }

func certainItem(id, key string) Item {
	return Item{ID: id, Keys: []keys.KeyProb{{Key: key, P: 1}}}
}

func TestUKMeansSeparatesObviousGroups(t *testing.T) {
	items := []Item{
		certainItem("a1", "Aaa"), certainItem("a2", "Aab"), certainItem("a3", "Aac"),
		certainItem("z1", "Zza"), certainItem("z2", "Zzb"), certainItem("z3", "Zzc"),
	}
	c := UKMeans(items, 2, 0, rand.New(rand.NewSource(1)))
	if c.K != 2 {
		t.Fatalf("K = %d", c.K)
	}
	// The three A-items share a cluster; the three Z-items share the other.
	if c.Assign[0] != c.Assign[1] || c.Assign[1] != c.Assign[2] {
		t.Fatalf("A group split: %v", c.Assign)
	}
	if c.Assign[3] != c.Assign[4] || c.Assign[4] != c.Assign[5] {
		t.Fatalf("Z group split: %v", c.Assign)
	}
	if c.Assign[0] == c.Assign[3] {
		t.Fatalf("groups merged: %v", c.Assign)
	}
}

func TestUKMeansUncertainItemFollowsItsMass(t *testing.T) {
	items := []Item{
		certainItem("a1", "Aaa"), certainItem("a2", "Aab"),
		certainItem("z1", "Zza"), certainItem("z2", "Zzb"),
		// 90% in the A region.
		{ID: "u", Keys: []keys.KeyProb{{Key: "Aac", P: 0.9}, {Key: "Zzc", P: 0.1}}},
	}
	c := UKMeans(items, 2, 0, rand.New(rand.NewSource(2)))
	if c.Assign[4] != c.Assign[0] {
		t.Fatalf("uncertain item must join the A cluster: %v", c.Assign)
	}
}

func TestUKMeansEdgeCases(t *testing.T) {
	// k > n collapses to n; k ≤ 0 becomes 1.
	items := []Item{certainItem("a", "x"), certainItem("b", "y")}
	c := UKMeans(items, 5, 0, rand.New(rand.NewSource(3)))
	if c.K != 2 {
		t.Fatalf("K = %d", c.K)
	}
	c = UKMeans(items, 0, 0, rand.New(rand.NewSource(3)))
	if c.K != 1 || c.Assign[0] != 0 || c.Assign[1] != 0 {
		t.Fatalf("K=0 handling: %+v", c)
	}
}

func TestBlocks(t *testing.T) {
	c := Clustering{Assign: []int{0, 1, 0, 1, 1}, K: 2}
	b := c.Blocks()
	if len(b) != 2 || len(b[0]) != 2 || len(b[1]) != 3 {
		t.Fatalf("blocks %v", b)
	}
}

func TestExpectedDistance(t *testing.T) {
	a := []keys.KeyProb{{Key: "abc", P: 1}}
	b := []keys.KeyProb{{Key: "abc", P: 0.5}, {Key: "xyz", P: 0.5}}
	got := ExpectedDistance(strsim.Exact, a, b)
	if !almost(got, 0.5) {
		t.Fatalf("E[d] = %v, want 0.5", got)
	}
	// Identical certain keys → 0.
	if !almost(ExpectedDistance(strsim.Exact, a, a), 0) {
		t.Fatal("self distance must be 0")
	}
	// Empty distributions degrade gracefully.
	if !almost(ExpectedDistance(strsim.Exact, nil, a), 0) {
		t.Fatal("empty dist must give 0")
	}
}

func TestKMedoids(t *testing.T) {
	items := []Item{
		certainItem("a1", "Johpi"), certainItem("a2", "Johmu"), certainItem("a3", "Johpa"),
		certainItem("b1", "Timme"), certainItem("b2", "Tomme"),
	}
	c := KMedoids(items, 2, strsim.NormalizedHamming, 0, rand.New(rand.NewSource(4)))
	if c.K != 2 {
		t.Fatalf("K = %d", c.K)
	}
	if c.Assign[0] != c.Assign[1] || c.Assign[1] != c.Assign[2] {
		t.Fatalf("Joh* split: %v", c.Assign)
	}
	if c.Assign[3] != c.Assign[4] {
		t.Fatalf("T*mme split: %v", c.Assign)
	}
	if c.Assign[0] == c.Assign[3] {
		t.Fatalf("clusters merged: %v", c.Assign)
	}
}

func TestClusteringDeterministicGivenSeed(t *testing.T) {
	items := []Item{
		certainItem("a", "ka"), certainItem("b", "kb"), certainItem("c", "zc"),
		certainItem("d", "zd"), certainItem("e", "ze"),
	}
	c1 := UKMeans(items, 2, 0, rand.New(rand.NewSource(7)))
	c2 := UKMeans(items, 2, 0, rand.New(rand.NewSource(7)))
	for i := range c1.Assign {
		if c1.Assign[i] != c2.Assign[i] {
			t.Fatal("UKMeans must be deterministic for a fixed seed")
		}
	}
	m1 := KMedoids(items, 2, strsim.Exact, 0, rand.New(rand.NewSource(7)))
	m2 := KMedoids(items, 2, strsim.Exact, 0, rand.New(rand.NewSource(7)))
	for i := range m1.Assign {
		if m1.Assign[i] != m2.Assign[i] {
			t.Fatal("KMedoids must be deterministic for a fixed seed")
		}
	}
}

// TestEmbeddingKeysRoundTrip pins the durable-snapshot contract of the
// frozen embedding: Keys exposes the sorted key universe, and
// NewEmbeddingFromKeys rebuilds an embedding with identical positions
// for keys inside and outside that universe.
func TestEmbeddingKeysRoundTrip(t *testing.T) {
	items := []Item{
		certainItem("a", "Aaa"), certainItem("b", "Mmm"), certainItem("c", "Zzz"),
		{ID: "u", Keys: []keys.KeyProb{{Key: "Bbb", P: 0.5}, {Key: "Yyy", P: 0.5}}},
	}
	orig := NewEmbedding(items)
	ks := orig.Keys()
	if !sort.StringsAreSorted(ks) {
		t.Fatalf("Keys not sorted: %v", ks)
	}
	rebuilt := NewEmbeddingFromKeys(ks)
	probes := [][]keys.KeyProb{
		{{Key: "Aaa", P: 1}},
		{{Key: "Zzz", P: 1}},
		{{Key: "Bbb", P: 0.5}, {Key: "Yyy", P: 0.5}},
		{{Key: "Qqq", P: 1}},  // outside the frozen universe
		{{Key: "!!!!", P: 1}}, // before every frozen key
	}
	for _, p := range probes {
		if got, want := rebuilt.Pos(p), orig.Pos(p); !almost(got, want) {
			t.Fatalf("Pos(%v) = %v, want %v", p, got, want)
		}
	}
	// Degenerate universe: a single key still round-trips (denominator
	// clamping must match).
	one := NewEmbedding(items[:1])
	oneRebuilt := NewEmbeddingFromKeys(one.Keys())
	if got, want := oneRebuilt.Pos(probes[3]), one.Pos(probes[3]); !almost(got, want) {
		t.Fatalf("single-key Pos = %v, want %v", got, want)
	}
}
