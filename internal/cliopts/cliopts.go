// Package cliopts resolves the shared flag vocabulary of the pdedup
// and pdedupd commands — comparison functions, derivation functions
// and reduction methods by name, schema parsing, and the equal-weight
// decision model — so both binaries accept the same spellings and an
// option added for one is automatically available to the other.
package cliopts

import (
	"fmt"
	"strings"

	"probdedup/internal/keys"
	"probdedup/internal/ssr"
	"probdedup/internal/strsim"
	"probdedup/internal/xmatch"
)

// Compare resolves a comparison-function name.
func Compare(name string) (strsim.Func, error) {
	switch name {
	case "hamming":
		return strsim.NormalizedHamming, nil
	case "levenshtein":
		return strsim.Levenshtein, nil
	case "damerau":
		return strsim.DamerauLevenshtein, nil
	case "jaro":
		return strsim.Jaro, nil
	case "jarowinkler":
		return strsim.JaroWinkler, nil
	case "dice2":
		return strsim.QGramDice(2), nil
	case "exact":
		return strsim.Exact, nil
	}
	return nil, fmt.Errorf("unknown comparison function %q", name)
}

// Derivation resolves a derivation-function name.
func Derivation(name string) (xmatch.Derivation, error) {
	switch name {
	case "similarity":
		return xmatch.SimilarityBased{Conditioned: true}, nil
	case "decision":
		return xmatch.DecisionBased{Conditioned: true}, nil
	case "eta":
		return xmatch.ExpectedEta{Conditioned: true}, nil
	case "mpw":
		return xmatch.MostProbableWorld{Conditioned: true}, nil
	case "max":
		return xmatch.MaxSim{Conditioned: true}, nil
	}
	return nil, fmt.Errorf("unknown derivation %q", name)
}

// Reduction resolves a reduction-method name against a parsed key
// definition and the method-specific shape parameters.
func Reduction(name string, def keys.Def, window, kWorlds, kClusters int, seed int64) (ssr.Method, error) {
	switch name {
	case "snm-certain":
		return ssr.SNMCertain{Key: def, Window: window}, nil
	case "snm-alternatives":
		return ssr.SNMAlternatives{Key: def, Window: window}, nil
	case "snm-ranked":
		return ssr.SNMRanked{Key: def, Window: window}, nil
	case "snm-ranked-median":
		return ssr.SNMRanked{Key: def, Window: window, Strategy: ssr.MedianKey}, nil
	case "snm-multipass":
		return ssr.SNMMultiPass{Key: def, Window: window, Select: ssr.TopWorlds, K: kWorlds}, nil
	case "blocking-certain":
		return ssr.BlockingCertain{Key: def}, nil
	case "blocking-alternatives":
		return ssr.BlockingAlternatives{Key: def}, nil
	case "blocking-cluster":
		return ssr.BlockingCluster{Key: def, K: kClusters, Seed: seed}, nil
	}
	return nil, fmt.Errorf("unknown reduction %q", name)
}

// EqualWeights is the default per-attribute weight vector of the
// weighted-sum decision model: every attribute contributes equally.
func EqualWeights(n int) []float64 {
	w := make([]float64, n)
	for i := range w {
		w[i] = 1 / float64(n)
	}
	return w
}

// ParseSchema splits a comma-separated attribute list, rejecting empty
// names ("name,job" → ["name" "job"]).
func ParseSchema(spec string) ([]string, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, fmt.Errorf("empty schema")
	}
	schema := strings.Split(spec, ",")
	for i := range schema {
		schema[i] = strings.TrimSpace(schema[i])
		if schema[i] == "" {
			return nil, fmt.Errorf("schema %q has an empty attribute name", spec)
		}
	}
	return schema, nil
}
