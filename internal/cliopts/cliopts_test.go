package cliopts

import (
	"math"
	"testing"

	"probdedup/internal/keys"
	"probdedup/internal/ssr"
)

func TestCompareNames(t *testing.T) {
	for _, name := range []string{"hamming", "levenshtein", "damerau", "jaro", "jarowinkler", "dice2", "exact"} {
		fn, err := Compare(name)
		if err != nil || fn == nil {
			t.Errorf("Compare(%q) = (%v, %v)", name, fn, err)
		}
	}
	if _, err := Compare("nope"); err == nil {
		t.Error("Compare accepted an unknown name")
	}
}

func TestDerivationNames(t *testing.T) {
	for _, name := range []string{"similarity", "decision", "eta", "mpw", "max"} {
		d, err := Derivation(name)
		if err != nil || d == nil {
			t.Errorf("Derivation(%q) = (%v, %v)", name, d, err)
		}
	}
	if _, err := Derivation("nope"); err == nil {
		t.Error("Derivation accepted an unknown name")
	}
}

func TestReductionNames(t *testing.T) {
	schema := []string{"name", "job"}
	def, err := keys.ParseDef("name:3", schema)
	if err != nil {
		t.Fatal(err)
	}
	for name, want := range map[string]string{
		"snm-certain":           "snm-certain",
		"snm-alternatives":      "snm-alternatives",
		"snm-ranked":            "snm-ranked",
		"snm-ranked-median":     "snm-ranked-median",
		"snm-multipass":         "snm-multipass-top",
		"blocking-certain":      "blocking-certain",
		"blocking-alternatives": "blocking-alternatives",
		"blocking-cluster":      "blocking-cluster",
	} {
		m, err := Reduction(name, def, 3, 8, 2, 1)
		if err != nil {
			t.Errorf("Reduction(%q): %v", name, err)
			continue
		}
		if got := m.Name(); got != want {
			t.Errorf("Reduction(%q).Name() = %q, want %q", name, got, want)
		}
	}
	// The median spelling must actually install the median strategy.
	m, err := Reduction("snm-ranked-median", def, 3, 8, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r, ok := m.(ssr.SNMRanked); !ok || r.Strategy != ssr.MedianKey {
		t.Errorf("snm-ranked-median did not set the median strategy: %#v", m)
	}
	if _, err := Reduction("nope", def, 3, 8, 2, 1); err == nil {
		t.Error("Reduction accepted an unknown name")
	}
}

func TestEqualWeights(t *testing.T) {
	w := EqualWeights(4)
	if len(w) != 4 {
		t.Fatalf("len = %d", len(w))
	}
	sum := 0.0
	for _, v := range w {
		sum += v
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("weights sum to %v", sum)
	}
}

func TestParseSchema(t *testing.T) {
	schema, err := ParseSchema(" name , job ")
	if err != nil || len(schema) != 2 || schema[0] != "name" || schema[1] != "job" {
		t.Fatalf("ParseSchema = (%v, %v)", schema, err)
	}
	for _, bad := range []string{"", "  ", "name,,job", "name,"} {
		if _, err := ParseSchema(bad); err == nil {
			t.Errorf("ParseSchema(%q) accepted", bad)
		}
	}
}
