package core

import (
	"math"
	"testing"

	"probdedup/internal/dataset"
	"probdedup/internal/decision"
	"probdedup/internal/keys"
	"probdedup/internal/paperdata"
	"probdedup/internal/pdb"
	"probdedup/internal/prepare"
	"probdedup/internal/ssr"
	"probdedup/internal/strsim"
	"probdedup/internal/verify"
	"probdedup/internal/xmatch"
)

func almost(a, b float64) bool { return math.Abs(a-b) <= 1e-9 }

func paperOptions() Options {
	return Options{
		Compare: []strsim.Func{strsim.NormalizedHamming, strsim.NormalizedHamming},
		AltModel: decision.SimpleModel{
			Phi: decision.WeightedSum(0.8, 0.2),
			T:   decision.Thresholds{Lambda: 0.4, Mu: 0.7},
		},
		Derivation: xmatch.SimilarityBased{Conditioned: true},
		Final:      decision.Thresholds{Lambda: 0.4, Mu: 0.7},
	}
}

func TestDetectRelationsPaperR1R2(t *testing.T) {
	res, err := DetectRelations(paperdata.R1(), paperdata.R2(), paperOptions())
	if err != nil {
		t.Fatal(err)
	}
	// 6 tuples → 15 pairs, all compared without reduction.
	if res.TotalPairs != 15 || len(res.Compared) != 15 {
		t.Fatalf("compared %d of %d", len(res.Compared), res.TotalPairs)
	}
	// The worked example: (t11,t22) has sim 0.8·0.9+0.2·(53/90).
	m, ok := res.ByPair[verify.NewPair("t11", "t22")]
	if !ok {
		t.Fatal("pair (t11,t22) not compared")
	}
	want := 0.8*0.9 + 0.2*(53.0/90)
	if !almost(m.Sim, want) {
		t.Fatalf("sim(t11,t22) = %v, want %v", m.Sim, want)
	}
	if m.Class != decision.M {
		t.Fatalf("(t11,t22) must be a match, got %v", m.Class)
	}
	if !res.Matches.Has("t11", "t22") {
		t.Fatal("matches set inconsistent")
	}
}

func TestDetectXRelationsPaper(t *testing.T) {
	opts := paperOptions()
	opts.Derivation = xmatch.DecisionBased{Conditioned: true}
	opts.Final = decision.Thresholds{Lambda: 0.5, Mu: 1.0}
	res, err := Detect(paperdata.R34(), opts)
	if err != nil {
		t.Fatal(err)
	}
	m := res.ByPair[verify.NewPair("t32", "t42")]
	if !almost(m.Sim, 0.75) {
		t.Fatalf("decision-based sim(t32,t42) = %v, want 0.75", m.Sim)
	}
	if m.Class != decision.P {
		t.Fatalf("class %v", m.Class)
	}
}

func TestDetectWithReduction(t *testing.T) {
	opts := paperOptions()
	opts.Reduction = ssr.SNMAlternatives{
		Key:    keys.NewDef(keys.Part{Attr: 0, Prefix: 3}, keys.Part{Attr: 1, Prefix: 2}),
		Window: 2,
	}
	res, err := Detect(paperdata.R34(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Compared) != 5 {
		t.Fatalf("reduced candidates = %d, want the paper's 5", len(res.Compared))
	}
	if res.TotalPairs != 10 {
		t.Fatalf("total pairs %d", res.TotalPairs)
	}
}

func TestDetectDefaults(t *testing.T) {
	// No Compare/AltModel/Derivation: defaults must work end to end.
	res, err := Detect(paperdata.R34(), Options{Final: decision.Thresholds{Lambda: 0.4, Mu: 0.7}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Compared) != 10 {
		t.Fatalf("compared %d", len(res.Compared))
	}
	// Identical tuples would be matched; sanity: all sims in [0,1] for the
	// default similarity-based derivation with normalized φ.
	for _, m := range res.ByPair {
		if m.Sim < -1e-9 || m.Sim > 1+1e-9 {
			t.Fatalf("sim %v outside [0,1]", m.Sim)
		}
	}
}

func TestDetectWithStandardizer(t *testing.T) {
	opts := paperOptions()
	opts.Standardizer = prepare.NewStandardizer(prepare.LowerCase, prepare.LowerCase)
	// Build two tuples differing only in case: after standardization they
	// are identical and must match.
	a := pdb.NewRelation("A", "name", "job").Append(
		pdb.NewTuple("a1", 1, pdb.Certain("TIM"), pdb.Certain("MECHANIC")))
	b := pdb.NewRelation("B", "name", "job").Append(
		pdb.NewTuple("b1", 1, pdb.Certain("tim"), pdb.Certain("mechanic")))
	res, err := DetectRelations(a, b, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Matches.Has("a1", "b1") {
		t.Fatal("standardized identical tuples must match")
	}
	// Without the standardizer the normalized Hamming of TIM/tim is 0.
	opts.Standardizer = nil
	res2, err := DetectRelations(a, b, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Matches.Has("a1", "b1") {
		t.Fatal("case difference must prevent the match without preparation")
	}
}

func TestDetectErrors(t *testing.T) {
	// Invalid thresholds.
	if _, err := Detect(paperdata.R34(), Options{Final: decision.Thresholds{Lambda: 1, Mu: 0}}); err == nil {
		t.Fatal("want threshold error")
	}
	// Wrong comparison function count.
	opts := Options{Compare: []strsim.Func{strsim.Exact}}
	if _, err := Detect(paperdata.R34(), opts); err == nil {
		t.Fatal("want arity error")
	}
	// Invalid relation.
	bad := pdb.NewXRelation("bad", "a").Append(pdb.NewXTuple("t"))
	if _, err := Detect(bad, Options{}); err == nil {
		t.Fatal("want validation error")
	}
	// Union width mismatch.
	r1 := pdb.NewRelation("r1", "a")
	r2 := pdb.NewRelation("r2", "a", "b")
	if _, err := DetectRelations(r1, r2, Options{}); err == nil {
		t.Fatal("want union error")
	}
}

func TestVerifyAndReduction(t *testing.T) {
	d := dataset.Generate(dataset.DefaultConfig(60, 5))
	opts := Options{
		Compare: []strsim.Func{strsim.Levenshtein, strsim.Levenshtein, strsim.Levenshtein},
		AltModel: decision.SimpleModel{
			Phi: decision.WeightedSum(0.5, 0.25, 0.25),
			T:   decision.Thresholds{Lambda: 0.6, Mu: 0.8},
		},
		Derivation: xmatch.SimilarityBased{Conditioned: true},
		Final:      decision.Thresholds{Lambda: 0.6, Mu: 0.8},
	}
	u := d.Union()
	res, err := Detect(u, opts)
	if err != nil {
		t.Fatal(err)
	}
	rep := res.Verify(d.Truth, ssr.AllPairs(u))
	// On an easy synthetic corpus the pipeline must clearly beat chance.
	if rep.Recall() < 0.3 {
		t.Fatalf("recall %v suspiciously low: %s", rep.Recall(), rep)
	}
	if rep.Precision() < 0.3 {
		t.Fatalf("precision %v suspiciously low: %s", rep.Precision(), rep)
	}
	red := res.Reduction(d.Truth)
	if red.CandidatePairs != len(res.Compared) || red.TotalPairs != res.TotalPairs {
		t.Fatalf("reduction inconsistent: %+v", red)
	}
	if !almost(red.ReductionRatio(), 0) {
		t.Fatalf("cross product must not reduce: %v", red.ReductionRatio())
	}
}

func TestDeterministicComparedOrder(t *testing.T) {
	res1, err := Detect(paperdata.R34(), Options{Final: decision.Thresholds{Lambda: 0.4, Mu: 0.7}})
	if err != nil {
		t.Fatal(err)
	}
	res2, _ := Detect(paperdata.R34(), Options{Final: decision.Thresholds{Lambda: 0.4, Mu: 0.7}})
	for i := range res1.Compared {
		if res1.Compared[i] != res2.Compared[i] {
			t.Fatal("Compared order must be deterministic")
		}
	}
}
