// Package core orchestrates the complete duplicate detection pipeline for
// probabilistic data (Sec. III's five steps, adapted per Secs. IV and V):
//
//	data preparation → search space reduction → attribute value matching
//	→ decision model (with x-tuple derivation) → verification
//
// The pipeline operates on x-relations; dependency-free probabilistic
// relations are lifted losslessly (each tuple becomes a one-alternative
// x-tuple whose attribute values stay uncertain).
//
// The engine is streaming at its core: candidate pairs are enumerated
// incrementally by the reduction method (ssr.Streamer), batched through
// a worker pool, and either emitted through a callback (DetectStream,
// memory proportional to the relation) or collected into an exact,
// deterministically ordered Result (Detect).
//
// Three entry points share the engine machinery:
//
//   - Detect / DetectRelations materialize the exact batch Result;
//   - DetectStream emits matches through a callback and retains no
//     per-pair state;
//   - Detector is the long-lived online engine: tuples arrive (Add,
//     AddBatch) and leave (Remove), each arrival is compared only
//     against the candidates produced by incremental index maintenance
//     (ssr.IncrementalIndex) — large delta batches fan the
//     verification across Options.Workers, and deltas are emitted
//     outside the internal lock so the callback can re-enter — and
//     Flush materializes exactly the Result Detect would produce on
//     the resident relation: the continuous-arrival workload of the
//     paper's Sec. III pipeline, without re-running it per tuple.
//
// All entry points validate options identically (thresholds, the
// comparison-function arity against the schema, the decision model's
// arity per decision.ValidateArity) and share one bounded similarity
// cache per run (avm.Cache, Options.CacheCapacity) so workers — or
// successive online arrivals — hit each other's memoized value pairs.
package core
