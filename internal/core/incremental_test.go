package core

import (
	"errors"
	"math/rand"
	"strings"
	"testing"

	"probdedup/internal/dataset"
	"probdedup/internal/decision"
	"probdedup/internal/keys"
	"probdedup/internal/pdb"
	"probdedup/internal/prepare"
	"probdedup/internal/ssr"
	"probdedup/internal/strsim"
	"probdedup/internal/verify"
)

// incrementalOpts returns a detection configuration over the synthetic
// schema with the given reduction. Workers > 1 additionally proves
// parallel batch ≡ sequential incremental.
func incrementalOpts(reduction ssr.Method) Options {
	return Options{
		Compare:   []strsim.Func{strsim.Levenshtein, strsim.Levenshtein, strsim.Levenshtein},
		Reduction: reduction,
		Final:     decision.Thresholds{Lambda: 0.6, Mu: 0.8},
		Workers:   4,
	}
}

// shuffledUnion builds a shuffled synthetic x-relation.
func shuffledUnion(t *testing.T, entities int, seed int64) *pdb.XRelation {
	t.Helper()
	d := dataset.Generate(dataset.DefaultConfig(entities, seed))
	u := d.Union()
	rng := rand.New(rand.NewSource(seed + 1))
	rng.Shuffle(len(u.Tuples), func(i, j int) {
		u.Tuples[i], u.Tuples[j] = u.Tuples[j], u.Tuples[i]
	})
	return u
}

// incrementalReductions enumerates the incremental-capable reductions
// under test (nil = cross product).
func incrementalReductions(t *testing.T, schema []string) map[string]ssr.Method {
	t.Helper()
	def, err := keys.ParseDef("name:3+job:2", schema)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]ssr.Method{
		"cross-product":            nil,
		"snm-certain":              ssr.SNMCertain{Key: def, Window: 4},
		"snm-ranked":               ssr.SNMRanked{Key: def, Window: 4},
		"snm-ranked-median":        ssr.SNMRanked{Key: def, Window: 3, Strategy: ssr.MedianKey},
		"snm-ranked-mode":          ssr.SNMRanked{Key: def, Window: 3, Strategy: ssr.ModeKey},
		"snm-alternatives":         ssr.SNMAlternatives{Key: def, Window: 4},
		"snm-multipass-top":        ssr.SNMMultiPass{Key: def, Window: 3, Select: ssr.TopWorlds, K: 3},
		"snm-multipass-dissimilar": ssr.SNMMultiPass{Key: def, Window: 3, Select: ssr.DissimilarWorlds, K: 2},
		"blocking-certain":         ssr.BlockingCertain{Key: def},
		"blocking-alternatives":    ssr.BlockingAlternatives{Key: def},
		"snm-certain+pruned":       ssr.NewFilter(ssr.SNMCertain{Key: def, Window: 5}, ssr.Pruning{MaxDiff: map[int]int{0: 4}}),
		"snm-ranked+pruned":        ssr.NewFilter(ssr.SNMRanked{Key: def, Window: 4}, ssr.Pruning{MaxDiff: map[int]int{0: 4}}),
	}
}

// sameResult fails unless the two results carry identical classified
// pair sets, similarities, and classes.
func sameResult(t *testing.T, got, want *Result) {
	t.Helper()
	if len(got.Compared) != len(want.Compared) {
		t.Fatalf("compared %d pairs, want %d", len(got.Compared), len(want.Compared))
	}
	for p, wm := range want.ByPair {
		gm, ok := got.ByPair[p]
		if !ok {
			t.Fatalf("pair %v missing", p)
		}
		if gm.Sim != wm.Sim || gm.Class != wm.Class {
			t.Fatalf("pair %v: got (%v,%v), want (%v,%v)", p, gm.Sim, gm.Class, wm.Sim, wm.Class)
		}
	}
	if len(got.Matches) != len(want.Matches) || len(got.Possible) != len(want.Possible) {
		t.Fatalf("M/P sizes %d/%d, want %d/%d", len(got.Matches), len(got.Possible), len(want.Matches), len(want.Possible))
	}
	if got.TotalPairs != want.TotalPairs {
		t.Fatalf("TotalPairs %d, want %d", got.TotalPairs, want.TotalPairs)
	}
}

// TestDetectorEquivalentToBatch is the determinism proof of the
// incremental engine: Add-one-at-a-time over a shuffled relation
// produces exactly the classified pair set of batch Detect (itself
// layered on DetectStream) on the same relation — for a blocking, an
// SNM, the cross-product, and a pruned reduction.
func TestDetectorEquivalentToBatch(t *testing.T) {
	u := shuffledUnion(t, 40, 3)
	for name, reduction := range incrementalReductions(t, u.Schema) {
		t.Run(name, func(t *testing.T) {
			opts := incrementalOpts(reduction)
			batch, err := Detect(u, opts)
			if err != nil {
				t.Fatal(err)
			}
			folded := map[verify.Pair]Match{}
			det, err := NewDetector(u.Schema, opts, func(md MatchDelta) bool {
				if md.Kind == DeltaDrop {
					delete(folded, md.Pair)
				} else {
					folded[md.Pair] = md.Match
				}
				return true
			})
			if err != nil {
				t.Fatal(err)
			}
			for _, x := range u.Tuples {
				if err := det.Add(x); err != nil {
					t.Fatal(err)
				}
			}
			res := det.Flush()
			sameResult(t, res, batch)
			// The emitted delta stream folds to the same state.
			if len(folded) != len(res.ByPair) {
				t.Fatalf("folded deltas hold %d pairs, flush %d", len(folded), len(res.ByPair))
			}
			for p, m := range folded {
				if rm := res.ByPair[p]; rm != m {
					t.Fatalf("folded pair %v = %+v, flush %+v", p, m, rm)
				}
			}
			if st := det.Stats(); st.Residents != len(u.Tuples) || st.Live != len(res.Compared) {
				t.Fatalf("stats %+v inconsistent with flush", st)
			}
		})
	}
}

// TestDetectorAddBatchAndRemoveEquivalence removes a third of the
// tuples and checks the flushed state equals batch Detect over the
// remaining relation.
func TestDetectorAddBatchAndRemoveEquivalence(t *testing.T) {
	u := shuffledUnion(t, 40, 5)
	for name, reduction := range incrementalReductions(t, u.Schema) {
		t.Run(name, func(t *testing.T) {
			opts := incrementalOpts(reduction)
			det, err := NewDetector(u.Schema, opts, nil)
			if err != nil {
				t.Fatal(err)
			}
			if err := det.AddBatch(u.Tuples); err != nil {
				t.Fatal(err)
			}
			rest := pdb.NewXRelation(u.Name, u.Schema...)
			for i, x := range u.Tuples {
				if i%3 == 0 {
					if err := det.Remove(x.ID); err != nil {
						t.Fatal(err)
					}
					continue
				}
				rest.Append(x)
			}
			batch, err := Detect(rest, opts)
			if err != nil {
				t.Fatal(err)
			}
			sameResult(t, det.Flush(), batch)
		})
	}
}

// TestDetectorRemoveInvalidatesPairDecisions is the regression test
// for the Remove fix: add → remove → re-add with the same ID but
// different attribute values must classify exactly as if the old
// version had never existed — no stale pair decision may survive the
// removal.
func TestDetectorRemoveInvalidatesPairDecisions(t *testing.T) {
	schema := []string{"name", "job", "age"}
	def, err := keys.ParseDef("name:3+job:2", schema)
	if err != nil {
		t.Fatal(err)
	}
	for name, reduction := range map[string]ssr.Method{
		"blocking-certain": ssr.BlockingCertain{Key: def},
		"snm-certain":      ssr.SNMCertain{Key: def, Window: 3},
	} {
		t.Run(name, func(t *testing.T) {
			opts := incrementalOpts(reduction)
			base := []*pdb.XTuple{
				pdb.NewXTuple("a", pdb.NewAlt(1, "Johnson", "pilot", "44")),
				pdb.NewXTuple("b", pdb.NewAlt(0.7, "Johnson", "pilot", "44"), pdb.NewAlt(0.3, "Jonson", "pilot", "44")),
				pdb.NewXTuple("c", pdb.NewAlt(1, "Miller", "baker", "31")),
			}
			// Version 1 of t matches a/b; version 2 is a different
			// person entirely, so any stale decision shows up.
			v1 := pdb.NewXTuple("t", pdb.NewAlt(1, "Johnson", "pilot", "44"))
			v2 := pdb.NewXTuple("t", pdb.NewAlt(1, "Millar", "baker", "31"))

			det, err := NewDetector(schema, opts, nil)
			if err != nil {
				t.Fatal(err)
			}
			if err := det.AddBatch(base); err != nil {
				t.Fatal(err)
			}
			if err := det.Add(v1); err != nil {
				t.Fatal(err)
			}
			if err := det.Remove("t"); err != nil {
				t.Fatal(err)
			}
			if err := det.Add(v2); err != nil {
				t.Fatal(err)
			}

			fresh, err := NewDetector(schema, opts, nil)
			if err != nil {
				t.Fatal(err)
			}
			if err := fresh.AddBatch(base); err != nil {
				t.Fatal(err)
			}
			if err := fresh.Add(v2); err != nil {
				t.Fatal(err)
			}
			sameResult(t, det.Flush(), fresh.Flush())
			// The v1-era match (a,t) must not survive: version 2 is a
			// different person, so a stale decision would classify it M.
			if det.Flush().Matches[verify.NewPair("a", "t")] {
				t.Fatal("stale match decision (a,t) survived re-add")
			}
		})
	}
}

// TestDetectorStandardizer checks online per-tuple standardization
// matches the batch path's whole-relation standardization.
func TestDetectorStandardizer(t *testing.T) {
	u := shuffledUnion(t, 20, 9)
	def, err := keys.ParseDef("name:3", u.Schema)
	if err != nil {
		t.Fatal(err)
	}
	opts := incrementalOpts(ssr.BlockingCertain{Key: def})
	opts.Standardizer = prepare.NewStandardizer(prepare.LowerCase, prepare.LowerCase, nil)
	batch, err := Detect(u, opts)
	if err != nil {
		t.Fatal(err)
	}
	det, err := NewDetector(u.Schema, opts, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := det.AddBatch(u.Tuples); err != nil {
		t.Fatal(err)
	}
	sameResult(t, det.Flush(), batch)
}

// batchOnlyMethod is a third-party reduction without the Incremental
// hook, standing in for user code that has not opted in.
type batchOnlyMethod struct{}

func (batchOnlyMethod) Name() string                             { return "batch-only" }
func (batchOnlyMethod) Candidates(*pdb.XRelation) verify.PairSet { return verify.PairSet{} }

// TestDetectorErrors exercises the validation surface: unsupported
// reductions, arity mismatches, duplicate IDs, unknown removals, and
// nil tuples.
func TestDetectorErrors(t *testing.T) {
	schema := []string{"name", "job", "age"}
	if _, err := NewDetector(schema, incrementalOpts(batchOnlyMethod{}), nil); err == nil {
		t.Fatal("expected an error for a non-incremental reduction")
	} else if !errors.Is(err, ssr.ErrNotIncremental) {
		t.Fatalf("error %q does not wrap ssr.ErrNotIncremental", err)
	} else if !strings.Contains(err.Error(), "batch-only") {
		t.Fatalf("unhelpful error: %v", err)
	}
	det, err := NewDetector(schema, incrementalOpts(nil), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := det.Add(nil); err == nil {
		t.Fatal("expected an error for a nil tuple")
	}
	if err := det.Add(pdb.NewXTuple("short", pdb.NewAlt(1, "only-one-attr"))); err == nil {
		t.Fatal("expected an arity error")
	}
	if err := det.Add(pdb.NewXTuple("a", pdb.NewAlt(1, "Tim", "pilot", "44"))); err != nil {
		t.Fatal(err)
	}
	if err := det.Add(pdb.NewXTuple("a", pdb.NewAlt(1, "Tom", "baker", "31"))); err == nil {
		t.Fatal("expected a duplicate-ID error")
	}
	if err := det.Remove("nobody"); err == nil {
		t.Fatal("expected an unknown-ID error")
	}
}

// TestDetectorEmitStop checks that a false-returning callback stops
// delta delivery permanently while state maintenance continues.
func TestDetectorEmitStop(t *testing.T) {
	u := shuffledUnion(t, 15, 21)
	opts := incrementalOpts(nil)
	emitted := 0
	det, err := NewDetector(u.Schema, opts, func(MatchDelta) bool {
		emitted++
		return emitted < 3
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := det.AddBatch(u.Tuples); err != nil {
		t.Fatal(err)
	}
	if emitted != 3 {
		t.Fatalf("emitted %d deltas, want exactly 3", emitted)
	}
	st := det.Stats()
	if !st.Stopped {
		t.Fatal("Stopped not set after the callback returned false")
	}
	batch, err := Detect(u, opts)
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, det.Flush(), batch)
}

// TestDetectorAddIsolatesCallerTuple checks the deep copy: mutating
// the caller's tuple after Add must not corrupt the resident state.
func TestDetectorAddIsolatesCallerTuple(t *testing.T) {
	schema := []string{"name"}
	opts := Options{
		Compare: []strsim.Func{strsim.Levenshtein},
		Final:   decision.Thresholds{Lambda: 0.6, Mu: 0.8},
	}
	det, err := NewDetector(schema, opts, nil)
	if err != nil {
		t.Fatal(err)
	}
	x := pdb.NewXTuple("a", pdb.NewAlt(1, "Tim"))
	if err := det.Add(x); err != nil {
		t.Fatal(err)
	}
	x.Alts[0] = pdb.NewAlt(1, "Zoe")
	if err := det.Add(pdb.NewXTuple("b", pdb.NewAlt(1, "Tim"))); err != nil {
		t.Fatal(err)
	}
	res := det.Flush()
	m, ok := res.ByPair[verify.NewPair("a", "b")]
	if !ok {
		t.Fatal("pair (a,b) not compared")
	}
	if m.Sim != 1 {
		t.Fatalf("sim = %v, want 1 (caller mutation leaked into resident tuple)", m.Sim)
	}
}

// TestDetectorBlockingClusterEpochs runs the bounded-staleness tier
// end to end: BlockingCluster tuples stream through the detector,
// drift stays within the configured bound (auto-reseals happen
// in-band), Stats exposes the staleness report, the emitted delta
// stream folds exactly to the flushed state across epoch flips, and a
// manual Reseal makes Flush equal batch Detect on the residents — at
// Workers 1 and 4 with identical results.
func TestDetectorBlockingClusterEpochs(t *testing.T) {
	u := shuffledUnion(t, 40, 41)
	def, err := keys.ParseDef("name:3+job:2", u.Schema)
	if err != nil {
		t.Fatal(err)
	}
	reduction := ssr.BlockingCluster{Key: def, K: 4, Seed: 1, MaxDrift: 0.2}
	results := map[int]*Result{}
	for _, workers := range []int{1, 4} {
		opts := incrementalOpts(reduction)
		opts.Workers = workers
		folded := map[verify.Pair]Match{}
		det, err := NewDetector(u.Schema, opts, func(md MatchDelta) bool {
			if md.Kind == DeltaDrop {
				delete(folded, md.Pair)
			} else {
				folded[md.Pair] = md.Match
			}
			return true
		})
		if err != nil {
			t.Fatal(err)
		}
		for i, x := range u.Tuples {
			if err := det.Add(x); err != nil {
				t.Fatal(err)
			}
			st := det.Stats()
			if st.Staleness == nil {
				t.Fatal("Stats().Staleness is nil for blocking-cluster")
			}
			if float64(st.Staleness.Drifted) > st.Staleness.Bound*float64(st.Staleness.Residents) {
				t.Fatalf("after add %d: drift %d exceeds bound", i, st.Staleness.Drifted)
			}
		}
		if ep := det.Stats().Staleness.Epoch; ep < 2 {
			t.Fatalf("expected several epochs over the stream, got %d", ep)
		}
		if err := det.Reseal(); err != nil {
			t.Fatal(err)
		}
		st := det.Stats()
		if st.Staleness.Drifted != 0 {
			t.Fatalf("Drifted = %d right after Reseal, want 0", st.Staleness.Drifted)
		}
		res := det.Flush()
		if len(folded) != len(res.ByPair) {
			t.Fatalf("folded deltas hold %d pairs, flush %d", len(folded), len(res.ByPair))
		}
		for p, m := range folded {
			fm, ok := res.ByPair[p]
			if !ok || fm.Sim != m.Sim || fm.Class != m.Class {
				t.Fatalf("folded pair %v diverges from flush", p)
			}
		}
		results[workers] = res
	}
	sameResult(t, results[4], results[1])

	batch, err := Detect(u, incrementalOpts(reduction))
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, results[1], batch)
}

// TestDetectorResealNoOpOnExactTier checks that Reseal on an
// exact-tier reduction changes nothing and emits nothing.
func TestDetectorResealNoOpOnExactTier(t *testing.T) {
	u := shuffledUnion(t, 15, 43)
	emitted := 0
	det, err := NewDetector(u.Schema, incrementalOpts(nil), func(MatchDelta) bool {
		emitted++
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range u.Tuples {
		if err := det.Add(x); err != nil {
			t.Fatal(err)
		}
	}
	if det.Stats().Staleness != nil {
		t.Fatal("exact-tier reduction reports a staleness")
	}
	before := det.Flush()
	n := emitted
	if err := det.Reseal(); err != nil {
		t.Fatal(err)
	}
	if emitted != n {
		t.Fatalf("Reseal on exact tier emitted %d deltas", emitted-n)
	}
	sameResult(t, det.Flush(), before)
}
