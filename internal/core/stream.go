package core

import (
	"fmt"
	"sync"

	"probdedup/internal/avm"
	"probdedup/internal/decision"
	"probdedup/internal/pdb"
	"probdedup/internal/prepare"
	"probdedup/internal/ssr"
	"probdedup/internal/strsim"
	"probdedup/internal/sym"
	"probdedup/internal/verify"
	"probdedup/internal/xmatch"
)

// streamBatchSize is the number of candidate pairs per unit of work
// handed to the matching workers. Batching amortizes channel traffic;
// the value trades scheduling overhead against load-balancing grain.
const streamBatchSize = 128

// StreamStats summarizes a DetectStream run.
type StreamStats struct {
	// Compared counts the candidate pairs emitted.
	Compared int
	// Matches and Possible count the pairs classified M and P.
	Matches, Possible int
	// TotalPairs is the unreduced search-space size n(n-1)/2, computed
	// arithmetically — the full cross product is never materialized.
	TotalPairs int
	// Partitions is the number of independent blocks fanned out when
	// the reduction partitions its search space and the run is
	// parallel; 0 otherwise.
	Partitions int
	// Stopped reports that the emit callback ended the run early.
	Stopped bool
	// Cache holds the end-of-run counters of the shared similarity
	// cache — entries, capacity, hits, misses, evictions (zero value
	// when memoization was disabled via Options.CacheCapacity < 0).
	Cache avm.CacheStats
	// Enumerated counts the candidate pairs the reduction produced:
	// Compared plus Filtered (pairs the run did not reach after an
	// early stop are not counted).
	Enumerated int
	// Filtered counts the enumerated pairs the pre-filter rejected as
	// provable non-matches (0 when the filter is off or inert).
	Filtered int
	// FilterActive reports whether the candidate pre-filter was
	// constructed and consulted (Options.PreFilter set and the
	// configuration boundable).
	FilterActive bool
}

// engine is the validated, defaulted configuration shared by the
// streaming and the materializing entry points.
type engine struct {
	xr          *pdb.XRelation
	byID        map[string]*pdb.XTuple
	reduction   ssr.Method
	newComparer func() *xmatch.Comparer
	workers     int
	// cache is the run's shared similarity memo (nil when disabled);
	// every worker's matcher writes into and reads from it.
	cache *avm.Cache
	// symtab is the run's symbol plane (nil when neither the cache nor
	// the pre-filter wants interned values): every standardized value
	// is interned once and annotated with its dense symbol.
	symtab *sym.Table
	// filter is the sound candidate pre-filter (nil when off or when
	// the configuration cannot be bounded).
	filter *ssr.PreFilter
}

// newEngine validates the options and applies the defaults documented
// on Options (steps A and the step-C prerequisites of the pipeline).
func newEngine(xr *pdb.XRelation, opts Options) (*engine, error) {
	if err := xr.Validate(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	if err := opts.Final.Validate(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}

	// Step A: data preparation.
	if opts.Standardizer != nil {
		xr = opts.Standardizer.XRelation(xr)
	}

	// The run-wide symbol plane: intern every standardized value so the
	// similarity cache keys value pairs by symbol and the pre-filter
	// reads precomputed stats. Gram statistics are only computed when
	// the pre-filter consumes them. Without a Standardizer the relation
	// is still the caller's — clone before the interning pass replaces
	// value annotations. A detector's relation starts empty; its
	// arrivals are interned in prepareTuple.
	var symtab *sym.Table
	if opts.PreFilter || opts.CacheCapacity >= 0 {
		q := 0
		if opts.PreFilter {
			q = opts.FilterQ
			if q <= 0 {
				q = 2
			}
		}
		symtab = sym.NewTable(q)
		if opts.Standardizer == nil {
			xr = xr.Clone()
		}
		prepare.InternXRelation(symtab, xr)
	}

	// Step C prerequisites: comparison functions.
	compare := opts.Compare
	if len(compare) == 0 {
		compare = make([]strsim.Func, len(xr.Schema))
		for i := range compare {
			compare[i] = strsim.NormalizedHamming
		}
	}
	if len(compare) != len(xr.Schema) {
		return nil, fmt.Errorf("core: %d comparison functions for %d attributes", len(compare), len(xr.Schema))
	}

	altModel := opts.AltModel
	if altModel == nil {
		// The explicit weighted-sum model is bit-identical to
		// SimpleModel{Phi: WeightedSum(equal weights)} and, unlike the
		// closure, exposes its structure to the pre-filter's bounds.
		altModel = decision.WeightedSumModel{
			Weights: decision.EqualWeights(len(xr.Schema)),
			T:       opts.Final,
		}
	}
	// Reject weight/schema arity mismatches here instead of letting them
	// skew (or panic in) every comparison.
	if err := decision.ValidateArity(altModel, len(xr.Schema)); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	derive := opts.Derivation
	if derive == nil {
		derive = xmatch.SimilarityBased{Conditioned: true}
	}

	byID := make(map[string]*pdb.XTuple, len(xr.Tuples))
	for _, x := range xr.Tuples {
		byID[x.ID] = x
	}

	var reduction ssr.Method = opts.Reduction
	if reduction == nil {
		reduction = ssr.CrossProduct{}
	}
	workers := opts.Workers
	if workers < 1 {
		workers = 1
	}

	// One bounded similarity cache per run, shared by every worker's
	// matcher: total memo memory is capped by CacheCapacity no matter
	// how many workers run, and a value pair computed by one worker is
	// a hit for all others.
	var cache *avm.Cache
	if opts.CacheCapacity >= 0 {
		cache = avm.NewCache(opts.CacheCapacity)
	}

	// The candidate pre-filter: constructed only when the configuration
	// is provably boundable (explicit model, boundable derivation,
	// ⊥ similarities in [0,1]); otherwise the run proceeds unfiltered
	// and the stats report FilterActive=false.
	var filter *ssr.PreFilter
	if opts.PreFilter {
		nulls := avm.PaperNulls
		if opts.Nulls != nil {
			nulls = *opts.Nulls
		}
		filter, _ = ssr.NewPreFilter(ssr.PreFilterConfig{
			Table:  symtab,
			Funcs:  compare,
			Model:  altModel,
			Derive: derive,
			Lambda: opts.Final.Lambda,
			Nulls:  nulls,
		})
		if filter != nil {
			for _, x := range xr.Tuples {
				filter.Insert(x)
			}
		}
	}

	return &engine{
		xr:        xr,
		byID:      byID,
		reduction: reduction,
		workers:   workers,
		cache:     cache,
		symtab:    symtab,
		filter:    filter,
		newComparer: func() *xmatch.Comparer {
			m := avm.NewMatcherWithCache(cache, compare...)
			m.Nulls = opts.Nulls
			return &xmatch.Comparer{
				Matcher:  m,
				AltModel: altModel,
				Derive:   derive,
				Final:    opts.Final,
			}
		},
	}, nil
}

// compare matches one candidate pair, or fails when the pair references
// tuples outside the relation.
func (e *engine) compare(c *xmatch.Comparer, p verify.Pair) (Match, error) {
	x1, ok1 := e.byID[p.A]
	x2, ok2 := e.byID[p.B]
	if !ok1 || !ok2 {
		return Match{}, fmt.Errorf("core: candidate pair %v references unknown tuples", p)
	}
	r := c.Compare(x1, x2)
	return Match{Pair: p, Sim: r.Sim, Class: r.Class}, nil
}

// DetectStream runs the pipeline over an x-relation and emits each
// compared pair's Match through the callback, without retaining the
// candidate set or the results: candidate pairs are enumerated
// incrementally (see ssr.Streamer), batched through the worker pool,
// and discarded after emission. The engine itself holds no per-pair
// state, so with the blocking variants, cross product, SNMCertain,
// SNMRanked and pruning, memory stays proportional to the relation;
// SNMMultiPass and SNMAlternatives additionally keep their
// executed-matching set while enumerating, and reduction methods
// without streaming support are adapted by materializing their
// candidate set once.
//
// emit is always called sequentially from the caller's goroutine; it
// returns false to stop the run early (Stopped is then set in the
// stats). With Options.Workers > 1 the emission order is unspecified;
// a sequential run emits in the reduction method's enumeration order.
// Classifications are identical to Detect in either case. When the
// reduction partitions its search space (the blocking variants), a
// parallel run fans out block by block so partitions are enumerated
// and compared concurrently.
//
// On error the already-emitted matches stand, the stats cover the work
// done so far, and the error is returned.
func DetectStream(xr *pdb.XRelation, opts Options, emit func(Match) bool) (StreamStats, error) {
	eng, err := newEngine(xr, opts)
	if err != nil {
		return StreamStats{}, err
	}
	stats := StreamStats{TotalPairs: ssr.TotalPairs(len(eng.xr.Tuples))}
	if eng.workers <= 1 {
		err = eng.runSequential(&stats, emit)
	} else {
		err = eng.runParallel(&stats, emit)
	}
	if eng.cache != nil {
		stats.Cache = eng.cache.Stats()
	}
	if eng.filter != nil {
		stats.FilterActive = true
		stats.Filtered = int(eng.filter.Stats().Filtered)
	}
	stats.Enumerated = stats.Compared + stats.Filtered
	return stats, err
}

// count tallies one emitted match into the stats.
func (s *StreamStats) count(m Match) {
	s.Compared++
	switch m.Class {
	case decision.M:
		s.Matches++
	case decision.P:
		s.Possible++
	}
}

// runSequential streams candidates straight through one comparer on
// the caller's goroutine.
func (e *engine) runSequential(stats *StreamStats, emit func(Match) bool) error {
	comparer := e.newComparer()
	var err error
	ssr.StreamOf(e.reduction).EnumeratePairs(e.xr, func(p verify.Pair) bool {
		if e.filter != nil && !e.filter.Admit(p) {
			return true // provably class U: skip verification
		}
		var m Match
		if m, err = e.compare(comparer, p); err != nil {
			return false
		}
		stats.count(m)
		if !emit(m) {
			stats.Stopped = true
			return false
		}
		return true
	})
	return err
}

// runParallel builds the batched pipeline: producers enumerate
// candidate pairs (one per partition for partitioned reductions),
// workers match-and-decide batches, and the caller's goroutine
// collects results and emits them.
func (e *engine) runParallel(stats *StreamStats, emit func(Match) bool) error {
	stop := make(chan struct{})
	var stopOnce sync.Once
	cancel := func() { stopOnce.Do(func() { close(stop) }) }

	var errMu sync.Mutex
	var firstErr error
	fail := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
		cancel()
	}
	failed := func() bool {
		errMu.Lock()
		defer errMu.Unlock()
		return firstErr != nil
	}

	batches := make(chan []verify.Pair, 2*e.workers)
	results := make(chan []Match, 2*e.workers)

	// sendBatch hands a full batch to the workers unless the run was
	// canceled; it reports whether production should continue.
	sendBatch := func(batch []verify.Pair) bool {
		select {
		case batches <- batch:
			return true
		case <-stop:
			return false
		}
	}

	// Producers: partition fan-out when the reduction supports it, a
	// single enumerator otherwise.
	var prodWg sync.WaitGroup
	produce := func(enumerate func(yield func(verify.Pair) bool) bool) {
		defer prodWg.Done()
		batch := make([]verify.Pair, 0, streamBatchSize)
		enumerate(func(p verify.Pair) bool {
			// Filter at the producer: rejected pairs never enter a
			// batch, so workers and channels only see pairs that need
			// real verification (Admit is safe for concurrent use).
			if e.filter != nil && !e.filter.Admit(p) {
				return true
			}
			batch = append(batch, p)
			if len(batch) == streamBatchSize {
				if !sendBatch(batch) {
					return false
				}
				batch = make([]verify.Pair, 0, streamBatchSize)
			}
			return true
		})
		if len(batch) > 0 {
			sendBatch(batch)
		}
	}
	if part, ok := e.reduction.(ssr.Partitioner); ok {
		parts := part.Partitions(e.xr)
		stats.Partitions = len(parts)
		partCh := make(chan ssr.Partition, len(parts))
		for _, p := range parts {
			partCh <- p
		}
		close(partCh)
		producers := e.workers
		if producers > len(parts) {
			producers = len(parts)
		}
		for i := 0; i < producers; i++ {
			prodWg.Add(1)
			go produce(func(yield func(verify.Pair) bool) bool {
				for p := range partCh {
					if !p.Enumerate(yield) {
						return false
					}
				}
				return true
			})
		}
	} else {
		prodWg.Add(1)
		stream := ssr.StreamOf(e.reduction)
		go produce(func(yield func(verify.Pair) bool) bool {
			return stream.EnumeratePairs(e.xr, yield)
		})
	}
	go func() {
		prodWg.Wait()
		close(batches)
	}()

	// Workers: match and decide batches; each worker owns its comparer
	// (the fold scratch is not shareable) while all matchers memoize
	// into the engine's shared cache. Comparison functions are
	// deterministic, so results are identical to a sequential run.
	var workWg sync.WaitGroup
	for w := 0; w < e.workers; w++ {
		workWg.Add(1)
		go func() {
			defer workWg.Done()
			comparer := e.newComparer()
			for batch := range batches {
				out := make([]Match, 0, len(batch))
				for _, p := range batch {
					m, err := e.compare(comparer, p)
					if err != nil {
						fail(err)
						return
					}
					out = append(out, m)
				}
				select {
				case results <- out:
				case <-stop:
					return
				}
			}
		}()
	}
	go func() {
		workWg.Wait()
		close(results)
	}()

	// Collector: the caller's goroutine emits sequentially. After an
	// error or an early stop the remaining results are drained so the
	// pipeline goroutines can exit.
	for out := range results {
		if stats.Stopped || failed() {
			continue
		}
		for _, m := range out {
			stats.count(m)
			if !emit(m) {
				stats.Stopped = true
				cancel()
				break
			}
		}
	}
	prodWg.Wait()
	return firstErr
}
