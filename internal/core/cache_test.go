package core

import (
	"math"
	"strings"
	"testing"

	"probdedup/internal/dataset"
	"probdedup/internal/decision"
	"probdedup/internal/ssr"
	"probdedup/internal/strsim"
	"probdedup/internal/xmatch"
)

// cacheTestOptions is a parallel blocking run over a mid-sized corpus —
// the topology where the shared cache matters.
func cacheTestOptions(t *testing.T, workers, cacheCapacity int) (*dataset.Dataset, Options) {
	t.Helper()
	d := dataset.Generate(dataset.DefaultConfig(80, 29))
	return d, Options{
		Compare:       []strsim.Func{strsim.Levenshtein, strsim.Levenshtein, strsim.Levenshtein},
		Final:         decision.Thresholds{Lambda: 0.6, Mu: 0.8},
		Derivation:    xmatch.SimilarityBased{Conditioned: true},
		Workers:       workers,
		CacheCapacity: cacheCapacity,
	}
}

// TestSharedCacheResultsMatchUncached proves the cache is semantically
// invisible: cached (tiny, forcing evictions), default-capacity and
// disabled runs classify identically at any worker count. Run with
// -race to exercise the concurrent cache paths.
func TestSharedCacheResultsMatchUncached(t *testing.T) {
	d, base := cacheTestOptions(t, 1, -1)
	u := d.Union()
	ref, err := Detect(u, base)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		for _, capacity := range []int{-1, 0, 128} {
			opts := base
			opts.Workers = workers
			opts.CacheCapacity = capacity
			got, err := Detect(u, opts)
			if err != nil {
				t.Fatalf("workers=%d capacity=%d: %v", workers, capacity, err)
			}
			if len(got.Compared) != len(ref.Compared) {
				t.Fatalf("workers=%d capacity=%d: compared %d vs %d", workers, capacity, len(got.Compared), len(ref.Compared))
			}
			for p, want := range ref.ByPair {
				g, ok := got.ByPair[p]
				if !ok || g.Class != want.Class || math.Abs(g.Sim-want.Sim) > 1e-12 {
					t.Fatalf("workers=%d capacity=%d: pair %v differs (%+v vs %+v)", workers, capacity, p, g, want)
				}
			}
		}
	}
}

// TestSharedCacheBoundedAndSharedAcrossWorkers inspects the engine's
// cache after a parallel run: the entry count must respect the
// configured bound no matter the worker count, and the hit count must
// prove cross-worker reuse (the same relation compared by N workers
// cannot miss more often than the distinct-pair universe).
func TestSharedCacheBoundedAndSharedAcrossWorkers(t *testing.T) {
	d, opts := cacheTestOptions(t, 8, 512)
	u := d.Union()
	eng, err := newEngine(u, opts)
	if err != nil {
		t.Fatal(err)
	}
	var stats StreamStats
	if err := eng.runParallel(&stats, func(Match) bool { return true }); err != nil {
		t.Fatal(err)
	}
	if eng.cache == nil {
		t.Fatal("engine has no shared cache")
	}
	st := eng.cache.Stats()
	if st.Entries > eng.cache.Capacity() {
		t.Fatalf("cache entries %d exceed capacity %d", st.Entries, eng.cache.Capacity())
	}
	if st.Hits == 0 {
		t.Fatalf("no cache hits in a blocking run: %+v", st)
	}
	// With the small bound, churn must have evicted.
	if st.Evictions == 0 {
		t.Fatalf("expected evictions at capacity 512: %+v", st)
	}

	// Same run with ample capacity: misses are then bounded by the
	// distinct value-pair universe — not multiplied by the 8 workers,
	// which proves the workers share one memo.
	eng2, err := newEngine(u, Options{
		Compare:       opts.Compare,
		Final:         opts.Final,
		Derivation:    opts.Derivation,
		Workers:       8,
		CacheCapacity: 1 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	var stats2 StreamStats
	if err := eng2.runParallel(&stats2, func(Match) bool { return true }); err != nil {
		t.Fatal(err)
	}
	st2 := eng2.cache.Stats()
	if st2.Evictions != 0 {
		t.Fatalf("ample capacity must not evict: %+v", st2)
	}
	// Every miss inserts one entry; without cross-worker sharing the
	// workers would each recompute the same pairs, pushing misses to a
	// multiple of the final entry count. A small slack covers racing
	// misses of the same key (both workers compute, both insert the
	// same deterministic value).
	slack := uint64(st2.Entries)/10 + 64
	if st2.Misses > uint64(st2.Entries)+slack {
		t.Fatalf("misses %d for %d entries: workers did not share the cache", st2.Misses, st2.Entries)
	}
}

// TestCrossProductStreamSharedCache covers the non-partitioned parallel
// path (single producer) under -race as well.
func TestCrossProductStreamSharedCache(t *testing.T) {
	d, opts := cacheTestOptions(t, 4, 0)
	opts.Reduction = ssr.CrossProduct{}
	u := d.Union()
	seq := opts
	seq.Workers = 1
	want, err := Detect(u, seq)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Detect(u, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Compared) != len(want.Compared) || len(got.Matches) != len(want.Matches) {
		t.Fatalf("parallel cross product diverged: %d/%d vs %d/%d",
			len(got.Compared), len(got.Matches), len(want.Compared), len(want.Matches))
	}
}

// TestEngineRejectsArityMismatch pins the configuration error for
// weight/schema arity mismatches (three attributes, two weights).
func TestEngineRejectsArityMismatch(t *testing.T) {
	d := dataset.Generate(dataset.DefaultConfig(5, 3))
	u := d.Union() // three-attribute schema
	_, err := Detect(u, Options{
		AltModel: decision.SimpleModel{
			Phi: decision.WeightedSum(0.8, 0.2),
			T:   decision.Thresholds{Lambda: 0.4, Mu: 0.7},
		},
		Final: decision.Thresholds{Lambda: 0.4, Mu: 0.7},
	})
	if err == nil {
		t.Fatal("two weights against a three-attribute schema must be rejected")
	}
	if !strings.Contains(err.Error(), "bound to 2 attributes") {
		t.Fatalf("unexpected error: %v", err)
	}
	// Fellegi–Sunter arity is validated through the same path.
	fs, ferr := decision.NewFellegiSunter([]float64{0.9, 0.9}, []float64{0.1, 0.1}, decision.Thresholds{})
	if ferr != nil {
		t.Fatal(ferr)
	}
	if _, err := Detect(u, Options{AltModel: fs, Final: decision.Thresholds{}}); err == nil {
		t.Fatal("FS model with wrong arity must be rejected")
	}
}
