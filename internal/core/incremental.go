package core

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"probdedup/internal/avm"
	"probdedup/internal/decision"
	"probdedup/internal/pdb"
	"probdedup/internal/prepare"
	"probdedup/internal/ssr"
	"probdedup/internal/verify"
	"probdedup/internal/xmatch"
)

// minParallelCompares is the delta-batch size below which the online
// verification phase stays on the caller's goroutine: per-arrival
// candidate sets (a window, a small block) are cheaper to compare
// inline than to fan out. Larger batches — AddBatch seeding, big
// blocks — split across Options.Workers.
const minParallelCompares = 32

// ErrUnknownID reports a Remove whose tuple ID is not resident.
// Removing is intentionally not idempotent: a remove-twice or a
// remove-before-add is a caller bug the detector surfaces instead of
// swallowing. Test with errors.Is.
var ErrUnknownID = errors.New("unknown tuple ID")

// BatchError reports the tuple that made an AddBatch call fail and
// documents the partial-apply boundary. Index is the batch position
// (0-based) of the failing tuple. For validation failures — nil
// tuple, arity mismatch, duplicate ID; the only errors the built-in
// reductions can produce — tuples before Index are fully applied and
// resident, and tuples at and after Index are not. A comparison
// failure (possible only with a misbehaving user-defined
// IncrementalMethod yielding pairs of unregistered tuples) leaves
// every batch tuple resident with the pair decisions up to the
// failing delta applied; Index then names the tuple whose insertion
// settled the failing pair. BatchError wraps the underlying cause.
type BatchError struct {
	Index int
	Err   error
}

// Error implements the error interface.
func (e *BatchError) Error() string {
	return fmt.Sprintf("batch tuple %d: %v", e.Index, e.Err)
}

// Unwrap exposes the underlying cause to errors.Is/As.
func (e *BatchError) Unwrap() error { return e.Err }

// DeltaKind distinguishes the two changes an online detection run can
// make to its classified pair set.
type DeltaKind int

const (
	// DeltaAdd reports a pair that entered the compared set, with its
	// freshly computed similarity and class.
	DeltaAdd DeltaKind = iota
	// DeltaDrop reports a pair that left the compared set — because a
	// tuple was removed, or because a later insertion pushed the pair
	// out of a sorted-neighborhood window. Match holds the pair's last
	// decision.
	DeltaDrop
)

// String names the kind.
func (k DeltaKind) String() string {
	if k == DeltaDrop {
		return "drop"
	}
	return "add"
}

// MatchDelta is one change to the detector's classified pair set,
// emitted through the callback as it happens.
type MatchDelta struct {
	Kind DeltaKind
	Match
}

// DetectorStats summarizes the state and cumulative work of a
// Detector.
type DetectorStats struct {
	// Residents is the current number of resident tuples.
	Residents int
	// Compared counts the pair comparisons performed since
	// construction (re-entering pairs are re-compared).
	Compared int
	// Dropped counts the pairs retracted since construction.
	Dropped int
	// Live, Matches and Possible are the current classified set sizes.
	Live, Matches, Possible int
	// TotalPairs is the unreduced search-space size of the resident
	// relation, n(n-1)/2.
	TotalPairs int
	// Stopped reports that the emit callback ended delta delivery.
	Stopped bool
	// Staleness reports the epoch drift of a bounded-staleness
	// reduction index (ssr.EpochIndex, e.g. BlockingCluster); nil for
	// exact-tier reductions.
	Staleness *ssr.Staleness
	// Cache holds the shared similarity cache counters (zero value
	// when memoization is disabled).
	Cache avm.CacheStats
	// Enumerated counts the candidate pairs the pre-filter inspected
	// since construction: the comparisons that would have run without
	// it are Enumerated − (pairs found already live); Compared plus
	// Filtered in steady state.
	Enumerated int
	// Filtered counts the inspected pairs rejected as provable
	// non-matches.
	Filtered int
	// FilterActive reports whether the candidate pre-filter is
	// constructed and consulted.
	FilterActive bool
}

// Detector is the long-lived online detection engine: tuples arrive
// (and leave) one at a time or in batches, and each arrival is
// compared only against the candidates produced by incremental index
// maintenance (ssr.IncrementalIndex) instead of re-running the batch
// pipeline. Every built-in reduction method is supported. For the
// exact tier — cross product, SNMCertain, SNMRanked (all strategies),
// SNMAlternatives, SNMMultiPass, BlockingCertain,
// BlockingAlternatives, and pruned compositions — ingestion is
// equivalent to batch Detect: after any sequence of Add, AddBatch and
// Remove calls, Flush returns exactly the Result Detect would produce
// on the resident relation, at any Options.Workers setting.
// BlockingCluster runs on the bounded-staleness tier (ssr.EpochIndex):
// between epoch reseals arrivals join the block of their nearest
// centroid, and Flush matches batch Detect right after a reseal —
// automatic when the configured drift bound is crossed, or forced with
// Reseal. Stats reports the current drift.
//
// The detector reuses the batch engine's machinery: one bounded
// similarity cache (Options.CacheCapacity) shared across the
// detector's lifetime and all workers, the fold-based comparison
// kernel, and the configured decision model. Small per-arrival
// candidate sets are compared inline on the calling goroutine; large
// delta batches (AddBatch, big blocks) fan the verification across
// Options.Workers goroutines, mirroring DetectStream's worker pool —
// state updates and delta emission remain sequential and
// deterministic either way.
//
// Unlike DetectStream, the detector retains per-pair state (the
// current classified set) so it can retract decisions on Remove and
// answer Flush exactly; memory grows with the live candidate pair
// count. All methods are safe for concurrent use. The emit callback
// is invoked sequentially (never concurrently with itself), in
// state-change order, strictly outside the detector's internal lock:
// it may call back into the detector (Stats, Len, Flush, a follow-up
// Add or Remove) without deadlocking. Deltas caused by a re-entrant
// mutation are delivered after the deltas already queued.
type Detector struct {
	mu   sync.Mutex
	eng  *engine
	idx  ssr.IncrementalIndex
	std  *prepare.Standardizer
	live map[verify.Pair]Match
	// pairsOf indexes the live pairs by member tuple, so Remove
	// retracts in O(degree) instead of sweeping the whole live set.
	pairsOf map[string]map[verify.Pair]struct{}
	// posOf locates a resident tuple in eng.xr.Tuples for O(1)
	// swap-removal; nothing in the detector depends on tuple order.
	posOf map[string]int
	// seqOf records each resident's arrival number (arrivalSeq is the
	// running counter). eng.xr.Tuples loses insertion order to
	// swap-removal, but the incremental-index contract ties candidate
	// tie-breaking to it — so a durable snapshot must list residents in
	// arrival order to restore the indexes bit-identically
	// (SnapshotState sorts by seqOf).
	seqOf      map[string]uint64
	arrivalSeq uint64
	compared   int
	dropped    int

	// comparers is the lazily grown per-worker comparer pool: the
	// fold scratch is not shareable, while every matcher memoizes
	// into the engine's one bounded cache. comparers[0] serves the
	// inline path. Guarded by mu.
	comparers []*xmatch.Comparer

	// deltaBuf is reusable scratch for collecting one operation's
	// index deltas. Guarded by mu.
	deltaBuf []ssr.PairDelta

	// emits buffers deltas in state-change order while mu is held and
	// delivers them strictly outside it, so the callback can re-enter
	// the detector (see EmitQueue).
	emits *EmitQueue[MatchDelta]
}

// NewDetector builds an empty online detection engine over the given
// schema. Options are validated exactly as in Detect (thresholds,
// comparison function arity, decision model arity); additionally the
// reduction method must support incremental maintenance (see
// ssr.IncrementalOf). Options.Workers bounds the goroutines the
// verification phase fans out across when a single Add or AddBatch
// produces enough candidate pairs; it never changes classifications
// or the emitted delta stream, only throughput. emit receives every
// change to the classified pair set as it happens and may be nil when
// only Flush snapshots are needed; a false return permanently stops
// delta delivery (state maintenance continues).
func NewDetector(schema []string, opts Options, emit func(MatchDelta) bool) (*Detector, error) {
	xr := pdb.NewXRelation("detector", schema...)
	eng, err := newEngine(xr, opts)
	if err != nil {
		return nil, err
	}
	idx, err := ssr.IncrementalOf(opts.Reduction)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	return &Detector{
		eng:       eng,
		idx:       idx,
		std:       opts.Standardizer,
		live:      map[verify.Pair]Match{},
		pairsOf:   map[string]map[verify.Pair]struct{}{},
		posOf:     map[string]int{},
		seqOf:     map[string]uint64{},
		comparers: []*xmatch.Comparer{eng.newComparer()},
		emits:     NewEmitQueue(emit),
	}, nil
}

// Add inserts one tuple: it is standardized (when a Standardizer is
// configured), validated, registered with the incremental index, and
// compared against each candidate pair the index yields. Deltas are
// emitted after the state update, outside the detector's lock. The
// tuple is deep-copied, so the caller may keep mutating its own
// instance.
func (d *Detector) Add(x *pdb.XTuple) error {
	d.mu.Lock()
	err := d.addLocked(x)
	d.mu.Unlock()
	d.drainEmits()
	return err
}

// AddBatch inserts the tuples in order, as one unit of work: the
// whole batch is validated and registered first, the incremental
// index enumerates the batch's net candidate-pair deltas (intra-batch
// window churn cancels out, see ssr.InsertBatch), the expensive
// verification of net-new pairs fans out across Options.Workers, and
// state updates plus delta emission follow sequentially in a
// deterministic order. The emitted delta stream is the batch's net
// effect — a pair that enters and leaves the candidate set within the
// same batch is not reported.
//
// On failure AddBatch returns a *BatchError naming the failing batch
// position and the partial-apply boundary: the tuples before it are
// resident with their pair decisions applied, exactly as if they had
// been added alone.
func (d *Detector) AddBatch(xs []*pdb.XTuple) error {
	d.mu.Lock()
	err := d.addBatchLocked(xs)
	d.mu.Unlock()
	d.drainEmits()
	return err
}

func (d *Detector) addBatchLocked(xs []*pdb.XTuple) error {
	prepared := make([]*pdb.XTuple, 0, len(xs))
	var prepErr *BatchError
	for i, x := range xs {
		y, err := d.prepareTuple(x)
		if err != nil {
			prepErr = &BatchError{Index: i, Err: err}
			break
		}
		d.register(y)
		prepared = append(prepared, y)
	}
	batch := ssr.InsertBatch(d.idx, prepared)
	deltas := d.deltaBuf[:0]
	for _, bd := range batch {
		deltas = append(deltas, bd.PairDelta)
	}
	d.deltaBuf = deltas
	if k, err := d.applyDeltas(deltas); err != nil {
		return &BatchError{Index: batch[k].Source, Err: err}
	}
	if prepErr != nil {
		return prepErr
	}
	return nil
}

func (d *Detector) addLocked(x *pdb.XTuple) error {
	y, err := d.prepareTuple(x)
	if err != nil {
		return err
	}
	d.register(y)
	deltas := d.deltaBuf[:0]
	d.idx.Insert(y, func(pd ssr.PairDelta) bool {
		deltas = append(deltas, pd)
		return true
	})
	d.deltaBuf = deltas
	_, err = d.applyDeltas(deltas)
	return err
}

// prepareTuple standardizes, deep-copies and validates one arriving
// tuple without touching detector state.
func (d *Detector) prepareTuple(x *pdb.XTuple) (*pdb.XTuple, error) {
	if x == nil {
		return nil, fmt.Errorf("core: Add of nil x-tuple")
	}
	if d.std != nil {
		x = d.std.XTuple(x)
	} else {
		x = x.Clone()
	}
	if err := x.Validate(len(d.eng.xr.Schema)); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	if _, dup := d.eng.byID[x.ID]; dup {
		return nil, fmt.Errorf("core: duplicate tuple ID %q", x.ID)
	}
	if d.eng.symtab != nil {
		// Populate the symbol plane at arrival time: the tuple is the
		// detector's private copy, so interning (which replaces value
		// annotations) never touches the caller's instance.
		prepare.InternXTuple(d.eng.symtab, x)
	}
	return x, nil
}

// register appends a prepared tuple to the resident relation and
// summarizes it for the pre-filter.
func (d *Detector) register(x *pdb.XTuple) {
	d.eng.byID[x.ID] = x
	d.posOf[x.ID] = len(d.eng.xr.Tuples)
	d.seqOf[x.ID] = d.arrivalSeq
	d.arrivalSeq++
	d.eng.xr.Append(x)
	if d.eng.filter != nil {
		d.eng.filter.Insert(x)
	}
}

// Reseal forces a bounded-staleness reduction index (ssr.EpochIndex,
// e.g. BlockingCluster) to seal its epoch now: the index recomputes
// its placement decisions batch-identically over the residents, and
// the resulting pair churn flows through the ordinary delta path —
// re-blocked pairs are compared, vanished ones retracted, and the
// emit callback sees plain add/drop deltas. Right after Reseal, Flush
// equals batch Detect on the resident relation. For exact-tier
// reductions (every other built-in method) Reseal is a no-op: their
// maintained set already equals the batch set after every operation.
func (d *Detector) Reseal() error {
	d.mu.Lock()
	err := d.resealLocked()
	d.mu.Unlock()
	d.drainEmits()
	return err
}

func (d *Detector) resealLocked() error {
	ei, ok := d.idx.(ssr.EpochIndex)
	if !ok {
		return nil
	}
	deltas := d.deltaBuf[:0]
	ei.Reseal(func(pd ssr.PairDelta) bool {
		deltas = append(deltas, pd)
		return true
	})
	d.deltaBuf = deltas
	_, err := d.applyDeltas(deltas)
	return err
}

// Remove drops the tuple from the resident relation: the index yields
// a retraction for every candidate pair involving it (plus, for
// windowed reductions, re-entrant neighbor pairs, which are
// re-compared), and a defensive sweep guarantees that no pair decision
// involving the removed tuple survives in the detector's state — so a
// later re-Add with the same ID is classified from scratch, never from
// a stale pair decision. The shared avm.Cache needs no invalidation:
// its entries are keyed by attribute and value content, not tuple
// identity, and similarities of values are immutable. Removing an ID
// that is not resident — never added, or already removed — fails with
// an error wrapping ErrUnknownID and changes nothing.
func (d *Detector) Remove(id string) error {
	d.mu.Lock()
	err := d.removeLocked(id)
	d.mu.Unlock()
	d.drainEmits()
	return err
}

func (d *Detector) removeLocked(id string) error {
	if _, ok := d.eng.byID[id]; !ok {
		return fmt.Errorf("core: Remove: %w %q", ErrUnknownID, id)
	}

	deltas := d.deltaBuf[:0]
	d.idx.Remove(id, func(pd ssr.PairDelta) bool {
		deltas = append(deltas, pd)
		return true
	})
	d.deltaBuf = deltas
	_, firstErr := d.applyDeltas(deltas)

	// Defensive sweep: the index contract already retracts every pair
	// of id, but a buggy user-defined IncrementalMethod must not be
	// able to leave stale decisions behind. The per-tuple pair index
	// makes this O(degree), not O(live set).
	if rest := d.pairsOf[id]; len(rest) > 0 {
		pairs := make([]verify.Pair, 0, len(rest))
		for p := range rest {
			pairs = append(pairs, p)
		}
		for _, p := range pairs {
			d.retractPair(p)
		}
	}
	delete(d.pairsOf, id)

	delete(d.eng.byID, id)
	// Swap-remove from the resident slice: O(1), order is irrelevant
	// (Flush sorts pairs, the indexes keep their own order).
	ts := d.eng.xr.Tuples
	i, last := d.posOf[id], len(ts)-1
	ts[i] = ts[last]
	d.posOf[ts[i].ID] = i
	d.eng.xr.Tuples = ts[:last]
	ts[last] = nil
	delete(d.posOf, id)
	delete(d.seqOf, id)
	if d.eng.filter != nil {
		d.eng.filter.Remove(id)
	}
	return firstErr
}

// applyDeltas folds index deltas into the classified set: dropped
// pairs are retracted, net-new pairs are compared and recorded, and
// every resulting MatchDelta is enqueued for emission — all in delta
// order, so the delivered stream is deterministic for a given delta
// sequence. Large batches fan the comparisons across the engine's
// workers first (compareAll); state updates are always applied
// sequentially on the caller's goroutine. On a comparison error the
// deltas preceding the failing one stay applied and its position in
// deltas is returned.
func (d *Detector) applyDeltas(deltas []ssr.PairDelta) (int, error) {
	// Gate on the addition count, not the delta count: a high-degree
	// Remove yields many drops and no comparison work, which the
	// inline loop handles with plain map operations.
	adds := 0
	for _, pd := range deltas {
		if !pd.Dropped {
			adds++
		}
	}
	if d.eng.workers <= 1 || adds < minParallelCompares {
		c := d.comparers[0]
		for i, pd := range deltas {
			if err := d.applyOne(c, pd); err != nil {
				return i, err
			}
		}
		return 0, nil
	}

	// Parallel verification phase: collect the additions that need a
	// comparison — drops and pairs live at their apply point (values
	// are immutable while resident) don't. Liveness is projected
	// through the slice rather than read from d.live alone, so a
	// drop-then-re-add of one pair within a single delta sequence (a
	// user-defined IncrementalMethod may yield one; the built-in
	// indexes and InsertBatch never repeat a pair) is re-compared
	// exactly as the sequential path would.
	var compareIdx []int
	overlay := map[verify.Pair]bool{}
	projectedLive := func(p verify.Pair) bool {
		if live, ok := overlay[p]; ok {
			return live
		}
		_, ok := d.live[p]
		return ok
	}
	for i, pd := range deltas {
		if pd.Dropped {
			overlay[pd.Pair] = false
			continue
		}
		if projectedLive(pd.Pair) {
			continue
		}
		if d.eng.filter != nil && !d.eng.filter.Admit(pd.Pair) {
			// Provably class U: never verified, never live. The overlay
			// stays false so a repeated add of the pair in the same
			// sequence re-consults the filter, exactly like the inline
			// path would.
			continue
		}
		overlay[pd.Pair] = true
		compareIdx = append(compareIdx, i)
	}
	matches := make([]Match, len(compareIdx))
	errs := make([]error, len(compareIdx))
	d.compareAll(compareIdx, deltas, matches, errs)

	// Sequential apply-and-enqueue phase, in delta order.
	mi := 0
	for i, pd := range deltas {
		if pd.Dropped {
			d.retractPair(pd.Pair)
			continue
		}
		if mi >= len(compareIdx) || compareIdx[mi] != i {
			continue // already live, nothing to recompute
		}
		if errs[mi] != nil {
			return i, errs[mi]
		}
		d.recordMatch(pd.Pair, matches[mi])
		mi++
	}
	return 0, nil
}

// applyOne folds a single delta inline: the sequential counterpart of
// the parallel phases in applyDeltas.
func (d *Detector) applyOne(c *xmatch.Comparer, pd ssr.PairDelta) error {
	if pd.Dropped {
		d.retractPair(pd.Pair)
		return nil
	}
	if _, ok := d.live[pd.Pair]; ok {
		// Already live (values are immutable while resident), nothing
		// to recompute.
		return nil
	}
	if d.eng.filter != nil && !d.eng.filter.Admit(pd.Pair) {
		return nil // provably class U: skip verification
	}
	m, err := d.eng.compare(c, pd.Pair)
	if err != nil {
		return err
	}
	d.recordMatch(pd.Pair, m)
	return nil
}

// recordMatch applies one freshly compared pair to the live state and
// enqueues its add delta.
func (d *Detector) recordMatch(p verify.Pair, m Match) {
	d.compared++
	d.live[p] = m
	d.indexPair(p.A, p)
	d.indexPair(p.B, p)
	d.enqueueDelta(MatchDelta{Kind: DeltaAdd, Match: m})
}

// compareAll computes the match of deltas[compareIdx[j]] into
// matches[j] (or errs[j]), fanning the work across the engine's
// workers. Each worker owns a pooled comparer (the fold scratch is
// not shareable) while all matchers memoize into the shared bounded
// cache; comparison functions are deterministic, so the results are
// identical to an inline run. Work is handed out pair by pair via an
// atomic cursor so uneven comparison costs still balance.
func (d *Detector) compareAll(compareIdx []int, deltas []ssr.PairDelta, matches []Match, errs []error) {
	workers := d.eng.workers
	if workers > len(compareIdx) {
		workers = len(compareIdx)
	}
	for len(d.comparers) < workers {
		d.comparers = append(d.comparers, d.eng.newComparer())
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(c *xmatch.Comparer) {
			defer wg.Done()
			for {
				j := int(next.Add(1)) - 1
				if j >= len(compareIdx) {
					return
				}
				matches[j], errs[j] = d.eng.compare(c, deltas[compareIdx[j]].Pair)
			}
		}(d.comparers[w])
	}
	wg.Wait()
}

// indexPair records a live pair under one member tuple.
func (d *Detector) indexPair(id string, p verify.Pair) {
	set := d.pairsOf[id]
	if set == nil {
		set = map[verify.Pair]struct{}{}
		d.pairsOf[id] = set
	}
	set[p] = struct{}{}
}

// retractPair removes a live pair from both indexes and enqueues the
// drop; unknown pairs are ignored.
func (d *Detector) retractPair(p verify.Pair) {
	m, ok := d.live[p]
	if !ok {
		return
	}
	delete(d.live, p)
	for _, id := range []string{p.A, p.B} {
		if set := d.pairsOf[id]; set != nil {
			delete(set, p)
			if len(set) == 0 {
				delete(d.pairsOf, id)
			}
		}
	}
	d.dropped++
	d.enqueueDelta(MatchDelta{Kind: DeltaDrop, Match: m})
}

// enqueueDelta buffers one delta for delivery outside the state lock
// (callers hold d.mu); drainEmits delivers after the lock is
// released. Both delegate to the shared EmitQueue.
func (d *Detector) enqueueDelta(md MatchDelta) { d.emits.Enqueue(md) }

func (d *Detector) drainEmits() { d.emits.Drain() }

// Flush materializes the current classified state as an exact Result —
// the same Result Detect would produce on the resident relation:
// every live pair in deterministic order with similarity and class,
// the declared M and P sets, and the arithmetic search-space size.
func (d *Detector) Flush() *Result {
	d.mu.Lock()
	defer d.mu.Unlock()
	res := &Result{
		Matches:    verify.PairSet{},
		Possible:   verify.PairSet{},
		Compared:   make([]verify.Pair, 0, len(d.live)),
		ByPair:     make(map[verify.Pair]Match, len(d.live)),
		TotalPairs: ssr.TotalPairs(len(d.eng.xr.Tuples)),
	}
	for p, m := range d.live {
		res.Compared = append(res.Compared, p)
		res.ByPair[p] = m
		switch m.Class {
		case decision.M:
			res.Matches[p] = true
		case decision.P:
			res.Possible[p] = true
		}
	}
	sort.Slice(res.Compared, func(i, j int) bool {
		if res.Compared[i].A != res.Compared[j].A {
			return res.Compared[i].A < res.Compared[j].A
		}
		return res.Compared[i].B < res.Compared[j].B
	})
	return res
}

// Resident returns the resident tuple stored for id — the
// standardized deep copy the detector compares, not the instance the
// caller passed to Add. Downstream consumers (the resolve.Integrator)
// fuse these exact tuples so that incremental fusion is bit-identical
// to the batch pipeline's. The returned tuple is shared with the
// detector and must be treated as read-only; resident values are
// immutable, so the pointer stays valid until the tuple is removed.
func (d *Detector) Resident(id string) (*pdb.XTuple, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	x, ok := d.eng.byID[id]
	return x, ok
}

// ResidentIDs returns the IDs of all resident tuples in sorted order.
// Shard routers use it after durable recovery to rebuild their
// ID-to-shard admission map from the engines themselves.
func (d *Detector) ResidentIDs() []string {
	d.mu.Lock()
	ids := make([]string, 0, len(d.eng.byID))
	for id := range d.eng.byID {
		ids = append(ids, id)
	}
	d.mu.Unlock()
	sort.Strings(ids)
	return ids
}

// Len returns the resident tuple count.
func (d *Detector) Len() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.eng.xr.Tuples)
}

// Stats summarizes the detector's state and cumulative work.
func (d *Detector) Stats() DetectorStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	st := DetectorStats{
		Residents:  len(d.eng.xr.Tuples),
		Compared:   d.compared,
		Dropped:    d.dropped,
		Live:       len(d.live),
		TotalPairs: ssr.TotalPairs(len(d.eng.xr.Tuples)),
		Stopped:    d.emits.Stopped(),
	}
	for _, m := range d.live {
		switch m.Class {
		case decision.M:
			st.Matches++
		case decision.P:
			st.Possible++
		}
	}
	if ei, ok := d.idx.(ssr.EpochIndex); ok {
		stale := ei.Staleness()
		st.Staleness = &stale
	}
	if d.eng.cache != nil {
		st.Cache = d.eng.cache.Stats()
	}
	if d.eng.filter != nil {
		fs := d.eng.filter.Stats()
		st.FilterActive = true
		st.Enumerated = int(fs.Enumerated)
		st.Filtered = int(fs.Filtered)
	}
	return st
}
