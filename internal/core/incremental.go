package core

import (
	"fmt"
	"sort"
	"sync"

	"probdedup/internal/avm"
	"probdedup/internal/decision"
	"probdedup/internal/pdb"
	"probdedup/internal/prepare"
	"probdedup/internal/ssr"
	"probdedup/internal/verify"
	"probdedup/internal/xmatch"
)

// DeltaKind distinguishes the two changes an online detection run can
// make to its classified pair set.
type DeltaKind int

const (
	// DeltaAdd reports a pair that entered the compared set, with its
	// freshly computed similarity and class.
	DeltaAdd DeltaKind = iota
	// DeltaDrop reports a pair that left the compared set — because a
	// tuple was removed, or because a later insertion pushed the pair
	// out of a sorted-neighborhood window. Match holds the pair's last
	// decision.
	DeltaDrop
)

// String names the kind.
func (k DeltaKind) String() string {
	if k == DeltaDrop {
		return "drop"
	}
	return "add"
}

// MatchDelta is one change to the detector's classified pair set,
// emitted through the callback as it happens.
type MatchDelta struct {
	Kind DeltaKind
	Match
}

// DetectorStats summarizes the state and cumulative work of a
// Detector.
type DetectorStats struct {
	// Residents is the current number of resident tuples.
	Residents int
	// Compared counts the pair comparisons performed since
	// construction (re-entering pairs are re-compared).
	Compared int
	// Dropped counts the pairs retracted since construction.
	Dropped int
	// Live, Matches and Possible are the current classified set sizes.
	Live, Matches, Possible int
	// TotalPairs is the unreduced search-space size of the resident
	// relation, n(n-1)/2.
	TotalPairs int
	// Stopped reports that the emit callback ended delta delivery.
	Stopped bool
	// Cache holds the shared similarity cache counters (zero value
	// when memoization is disabled).
	Cache avm.CacheStats
}

// Detector is the long-lived online detection engine: tuples arrive
// (and leave) one at a time, and each arrival is compared only against
// the candidates produced by incremental index maintenance
// (ssr.IncrementalIndex) instead of re-running the batch pipeline.
// Add-one-at-a-time is equivalent to batch Detect: after any sequence
// of Add and Remove calls, Flush returns exactly the Result Detect
// would produce on the resident relation, for every reduction method
// that supports incremental maintenance (cross product, SNMCertain,
// BlockingCertain, BlockingAlternatives, and pruned compositions of
// them).
//
// The detector reuses the batch engine's machinery: one bounded
// similarity cache (Options.CacheCapacity) shared across the
// detector's lifetime, the fold-based comparison kernel, and the
// configured decision model. Comparison runs sequentially on the
// caller's goroutine — per-arrival candidate sets are small (a window
// or a block), so Options.Workers is ignored.
//
// Unlike DetectStream, the detector retains per-pair state (the
// current classified set) so it can retract decisions on Remove and
// answer Flush exactly; memory grows with the live candidate pair
// count. All methods are safe for concurrent use; the emit callback
// is invoked with the detector's lock held and must not call back
// into it.
type Detector struct {
	mu       sync.Mutex
	eng      *engine
	comparer *xmatch.Comparer
	idx      ssr.IncrementalIndex
	std      *prepare.Standardizer
	live     map[verify.Pair]Match
	// pairsOf indexes the live pairs by member tuple, so Remove
	// retracts in O(degree) instead of sweeping the whole live set.
	pairsOf map[string]map[verify.Pair]struct{}
	// posOf locates a resident tuple in eng.xr.Tuples for O(1)
	// swap-removal; nothing in the detector depends on tuple order.
	posOf    map[string]int
	emit     func(MatchDelta) bool
	stopped  bool
	compared int
	dropped  int
}

// NewDetector builds an empty online detection engine over the given
// schema. Options are validated exactly as in Detect (thresholds,
// comparison function arity, decision model arity); additionally the
// reduction method must support incremental maintenance (see
// ssr.IncrementalOf). emit receives every change to the classified
// pair set as it happens and may be nil when only Flush snapshots are
// needed; a false return permanently stops delta delivery (state
// maintenance continues).
func NewDetector(schema []string, opts Options, emit func(MatchDelta) bool) (*Detector, error) {
	xr := pdb.NewXRelation("detector", schema...)
	eng, err := newEngine(xr, opts)
	if err != nil {
		return nil, err
	}
	idx, err := ssr.IncrementalOf(opts.Reduction)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	return &Detector{
		eng:      eng,
		comparer: eng.newComparer(),
		idx:      idx,
		std:      opts.Standardizer,
		live:     map[verify.Pair]Match{},
		pairsOf:  map[string]map[verify.Pair]struct{}{},
		posOf:    map[string]int{},
		emit:     emit,
	}, nil
}

// Add inserts one tuple: it is standardized (when a Standardizer is
// configured), validated, registered with the incremental index, and
// compared against each candidate pair the index yields. Deltas are
// emitted as they are found. The tuple is deep-copied, so the caller
// may keep mutating its own instance.
func (d *Detector) Add(x *pdb.XTuple) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.addLocked(x)
}

// AddBatch inserts the tuples in order, stopping at the first error.
func (d *Detector) AddBatch(xs []*pdb.XTuple) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, x := range xs {
		if err := d.addLocked(x); err != nil {
			return err
		}
	}
	return nil
}

func (d *Detector) addLocked(x *pdb.XTuple) error {
	if x == nil {
		return fmt.Errorf("core: Add of nil x-tuple")
	}
	if d.std != nil {
		x = d.std.XTuple(x)
	} else {
		x = x.Clone()
	}
	if err := x.Validate(len(d.eng.xr.Schema)); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	if _, dup := d.eng.byID[x.ID]; dup {
		return fmt.Errorf("core: duplicate tuple ID %q", x.ID)
	}
	d.eng.byID[x.ID] = x
	d.posOf[x.ID] = len(d.eng.xr.Tuples)
	d.eng.xr.Append(x)

	var firstErr error
	d.idx.Insert(x, func(pd ssr.PairDelta) bool {
		if err := d.applyDelta(pd); err != nil {
			firstErr = err
			return false
		}
		return true
	})
	return firstErr
}

// Remove drops the tuple from the resident relation: the index yields
// a retraction for every candidate pair involving it (plus, for
// windowed reductions, re-entrant neighbor pairs, which are
// re-compared), and a defensive sweep guarantees that no pair decision
// involving the removed tuple survives in the detector's state — so a
// later re-Add with the same ID is classified from scratch, never from
// a stale pair decision. The shared avm.Cache needs no invalidation:
// its entries are keyed by attribute and value content, not tuple
// identity, and similarities of values are immutable. Removing an
// unknown ID is an error.
func (d *Detector) Remove(id string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.eng.byID[id]; !ok {
		return fmt.Errorf("core: Remove of unknown tuple ID %q", id)
	}

	var firstErr error
	d.idx.Remove(id, func(pd ssr.PairDelta) bool {
		if err := d.applyDelta(pd); err != nil {
			firstErr = err
			return false
		}
		return true
	})

	// Defensive sweep: the index contract already retracts every pair
	// of id, but a buggy user-defined IncrementalMethod must not be
	// able to leave stale decisions behind. The per-tuple pair index
	// makes this O(degree), not O(live set).
	if rest := d.pairsOf[id]; len(rest) > 0 {
		pairs := make([]verify.Pair, 0, len(rest))
		for p := range rest {
			pairs = append(pairs, p)
		}
		for _, p := range pairs {
			d.retractPair(p)
		}
	}
	delete(d.pairsOf, id)

	delete(d.eng.byID, id)
	// Swap-remove from the resident slice: O(1), order is irrelevant
	// (Flush sorts pairs, the indexes keep their own order).
	ts := d.eng.xr.Tuples
	i, last := d.posOf[id], len(ts)-1
	ts[i] = ts[last]
	d.posOf[ts[i].ID] = i
	d.eng.xr.Tuples = ts[:last]
	ts[last] = nil
	delete(d.posOf, id)
	return firstErr
}

// applyDelta folds one index delta into the classified set, comparing
// added pairs and retracting dropped ones.
func (d *Detector) applyDelta(pd ssr.PairDelta) error {
	if pd.Dropped {
		d.retractPair(pd.Pair)
		return nil
	}
	if _, ok := d.live[pd.Pair]; ok {
		// Already live (values are immutable while resident), nothing
		// to recompute.
		return nil
	}
	m, err := d.eng.compare(d.comparer, pd.Pair)
	if err != nil {
		return err
	}
	d.compared++
	d.live[pd.Pair] = m
	d.indexPair(pd.Pair.A, pd.Pair)
	d.indexPair(pd.Pair.B, pd.Pair)
	d.emitDelta(MatchDelta{Kind: DeltaAdd, Match: m})
	return nil
}

// indexPair records a live pair under one member tuple.
func (d *Detector) indexPair(id string, p verify.Pair) {
	set := d.pairsOf[id]
	if set == nil {
		set = map[verify.Pair]struct{}{}
		d.pairsOf[id] = set
	}
	set[p] = struct{}{}
}

// retractPair removes a live pair from both indexes and emits the
// drop; unknown pairs are ignored.
func (d *Detector) retractPair(p verify.Pair) {
	m, ok := d.live[p]
	if !ok {
		return
	}
	delete(d.live, p)
	for _, id := range []string{p.A, p.B} {
		if set := d.pairsOf[id]; set != nil {
			delete(set, p)
			if len(set) == 0 {
				delete(d.pairsOf, id)
			}
		}
	}
	d.dropped++
	d.emitDelta(MatchDelta{Kind: DeltaDrop, Match: m})
}

// emitDelta forwards one delta unless delivery was stopped.
func (d *Detector) emitDelta(md MatchDelta) {
	if d.emit == nil || d.stopped {
		return
	}
	if !d.emit(md) {
		d.stopped = true
	}
}

// Flush materializes the current classified state as an exact Result —
// the same Result Detect would produce on the resident relation:
// every live pair in deterministic order with similarity and class,
// the declared M and P sets, and the arithmetic search-space size.
func (d *Detector) Flush() *Result {
	d.mu.Lock()
	defer d.mu.Unlock()
	res := &Result{
		Matches:    verify.PairSet{},
		Possible:   verify.PairSet{},
		Compared:   make([]verify.Pair, 0, len(d.live)),
		ByPair:     make(map[verify.Pair]Match, len(d.live)),
		TotalPairs: ssr.TotalPairs(len(d.eng.xr.Tuples)),
	}
	for p, m := range d.live {
		res.Compared = append(res.Compared, p)
		res.ByPair[p] = m
		switch m.Class {
		case decision.M:
			res.Matches[p] = true
		case decision.P:
			res.Possible[p] = true
		}
	}
	sort.Slice(res.Compared, func(i, j int) bool {
		if res.Compared[i].A != res.Compared[j].A {
			return res.Compared[i].A < res.Compared[j].A
		}
		return res.Compared[i].B < res.Compared[j].B
	})
	return res
}

// Len returns the resident tuple count.
func (d *Detector) Len() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.eng.xr.Tuples)
}

// Stats summarizes the detector's state and cumulative work.
func (d *Detector) Stats() DetectorStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	st := DetectorStats{
		Residents:  len(d.eng.xr.Tuples),
		Compared:   d.compared,
		Dropped:    d.dropped,
		Live:       len(d.live),
		TotalPairs: ssr.TotalPairs(len(d.eng.xr.Tuples)),
		Stopped:    d.stopped,
	}
	for _, m := range d.live {
		switch m.Class {
		case decision.M:
			st.Matches++
		case decision.P:
			st.Possible++
		}
	}
	if d.eng.cache != nil {
		st.Cache = d.eng.cache.Stats()
	}
	return st
}
