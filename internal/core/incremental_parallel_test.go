package core

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"probdedup/internal/decision"
	"probdedup/internal/keys"
	"probdedup/internal/pdb"
	"probdedup/internal/ssr"
	"probdedup/internal/strsim"
	"probdedup/internal/verify"
)

// foldDeltas returns an emit callback folding the delta stream into
// set, plus the set. The callback deliberately uses no synchronization
// of its own: the detector guarantees sequential invocation, and the
// race detector verifies that guarantee in the concurrent tests.
func foldDeltas() (func(MatchDelta) bool, map[verify.Pair]Match) {
	folded := map[verify.Pair]Match{}
	return func(md MatchDelta) bool {
		if md.Kind == DeltaDrop {
			delete(folded, md.Pair)
		} else {
			folded[md.Pair] = md.Match
		}
		return true
	}, folded
}

// TestDetectorAddBatchParallelEquivalence is the tentpole determinism
// proof: for every incremental-capable reduction, parallel AddBatch
// (Workers=4, whole relation and chunked) ≡ a sequential Add loop
// (Workers=1) ≡ batch Detect on the same shuffled relation — and the
// net delta stream emitted by the batched path folds to the flushed
// state.
func TestDetectorAddBatchParallelEquivalence(t *testing.T) {
	u := shuffledUnion(t, 40, 13)
	for name, reduction := range incrementalReductions(t, u.Schema) {
		t.Run(name, func(t *testing.T) {
			opts := incrementalOpts(reduction)
			batch, err := Detect(u, opts)
			if err != nil {
				t.Fatal(err)
			}

			seqOpts := opts
			seqOpts.Workers = 1
			seq, err := NewDetector(u.Schema, seqOpts, nil)
			if err != nil {
				t.Fatal(err)
			}
			for _, x := range u.Tuples {
				if err := seq.Add(x); err != nil {
					t.Fatal(err)
				}
			}
			sameResult(t, seq.Flush(), batch)

			for _, chunk := range []int{len(u.Tuples), 7} {
				emit, folded := foldDeltas()
				par, err := NewDetector(u.Schema, opts, emit)
				if err != nil {
					t.Fatal(err)
				}
				for lo := 0; lo < len(u.Tuples); lo += chunk {
					hi := min(lo+chunk, len(u.Tuples))
					if err := par.AddBatch(u.Tuples[lo:hi]); err != nil {
						t.Fatal(err)
					}
				}
				res := par.Flush()
				sameResult(t, res, batch)
				if len(folded) != len(res.ByPair) {
					t.Fatalf("chunk %d: folded deltas hold %d pairs, flush %d", chunk, len(folded), len(res.ByPair))
				}
				for p, m := range folded {
					if rm := res.ByPair[p]; rm != m {
						t.Fatalf("chunk %d: folded pair %v = %+v, flush %+v", chunk, p, m, rm)
					}
				}
			}
		})
	}
}

// TestDetectorEmitReentrancy is the deadlock regression test for the
// emit-outside-lock contract: a callback that re-enters the detector
// — Stats, Len, Flush, and a follow-up Add — must complete instead of
// deadlocking on the state lock. The whole scenario runs under a
// timeout guard so a regression fails fast instead of hanging the
// suite.
func TestDetectorEmitReentrancy(t *testing.T) {
	schema := []string{"name", "job", "age"}
	opts := incrementalOpts(nil)
	done := make(chan error, 1)
	go func() {
		var det *Detector
		var reentered atomic.Bool
		var deltas atomic.Int64
		emit := func(md MatchDelta) bool {
			deltas.Add(1)
			// Re-enter through every read path on every delta…
			st := det.Stats()
			if st.Residents != det.Len() {
				done <- fmt.Errorf("re-entrant Stats/Len disagree: %d vs %d", st.Residents, det.Len())
				return false
			}
			det.Flush()
			// …and through the mutating paths exactly once.
			if reentered.CompareAndSwap(false, true) {
				if err := det.Add(pdb.NewXTuple("reentrant", pdb.NewAlt(1, "Johnson", "pilot", "44"))); err != nil {
					done <- fmt.Errorf("re-entrant Add: %w", err)
					return false
				}
			}
			return true
		}
		var err error
		det, err = NewDetector(schema, opts, emit)
		if err != nil {
			done <- err
			return
		}
		if err := det.AddBatch([]*pdb.XTuple{
			pdb.NewXTuple("a", pdb.NewAlt(1, "Johnson", "pilot", "44")),
			pdb.NewXTuple("b", pdb.NewAlt(1, "Johnson", "pilot", "44")),
			pdb.NewXTuple("c", pdb.NewAlt(1, "Jonson", "pilot", "44")),
		}); err != nil {
			done <- err
			return
		}
		if n := deltas.Load(); n == 0 {
			done <- errors.New("no deltas delivered")
			return
		}
		// The re-entrant tuple became resident and its deltas (pairs
		// with a, b, c) were delivered by the active drainer.
		if det.Len() != 4 {
			done <- fmt.Errorf("residents = %d, want 4 (re-entrant Add lost)", det.Len())
			return
		}
		if live := det.Stats().Live; live != 6 {
			done <- fmt.Errorf("live pairs = %d, want 6 (cross product over 4 tuples)", live)
			return
		}
		done <- nil
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("deadlock: re-entrant emit callback did not complete within 30s")
	}
}

// TestDetectorAddBatchPartialApply pins the BatchError contract down:
// AddBatch stops at the first invalid tuple, reports its batch
// position through a typed *BatchError, and leaves exactly the
// successful prefix resident — equivalent to having added the prefix
// alone.
func TestDetectorAddBatchPartialApply(t *testing.T) {
	schema := []string{"name", "job", "age"}
	mk := func(id, name string) *pdb.XTuple {
		return pdb.NewXTuple(id, pdb.NewAlt(1, name, "pilot", "44"))
	}
	for _, tc := range []struct {
		name  string
		batch []*pdb.XTuple
		index int
		cause string
	}{
		{
			name: "arity",
			batch: []*pdb.XTuple{
				mk("a", "Johnson"), mk("b", "Jonson"),
				pdb.NewXTuple("short", pdb.NewAlt(1, "only-one-attr")),
				mk("d", "Johnsen"),
			},
			index: 2,
			cause: "attributes",
		},
		{
			name: "nil tuple",
			batch: []*pdb.XTuple{
				mk("a", "Johnson"), nil, mk("c", "Jonson"),
			},
			index: 1,
			cause: "nil",
		},
		{
			name: "intra-batch duplicate ID",
			batch: []*pdb.XTuple{
				mk("a", "Johnson"), mk("b", "Jonson"), mk("a", "Miller"), mk("d", "Johnsen"),
			},
			index: 2,
			cause: "duplicate",
		},
	} {
		t.Run(tc.name, func(t *testing.T) {
			opts := incrementalOpts(nil)
			det, err := NewDetector(schema, opts, nil)
			if err != nil {
				t.Fatal(err)
			}
			err = det.AddBatch(tc.batch)
			var be *BatchError
			if !errors.As(err, &be) {
				t.Fatalf("error %v (%T) is not a *BatchError", err, err)
			}
			if be.Index != tc.index {
				t.Fatalf("BatchError.Index = %d, want %d", be.Index, tc.index)
			}
			if !strings.Contains(be.Err.Error(), tc.cause) {
				t.Fatalf("cause %q does not mention %q", be.Err, tc.cause)
			}
			if det.Len() != tc.index {
				t.Fatalf("residents = %d, want the successful prefix %d", det.Len(), tc.index)
			}

			// The flushed state equals a detector fed the prefix alone.
			want, err := NewDetector(schema, opts, nil)
			if err != nil {
				t.Fatal(err)
			}
			if err := want.AddBatch(tc.batch[:tc.index]); err != nil {
				t.Fatal(err)
			}
			sameResult(t, det.Flush(), want.Flush())

			// The detector stays usable after the failure.
			if err := det.Add(mk("later", "Johnson")); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestDetectorRemoveUnknownID makes the not-found behavior explicit:
// remove-before-add and remove-twice both fail with ErrUnknownID and
// change nothing.
func TestDetectorRemoveUnknownID(t *testing.T) {
	schema := []string{"name", "job", "age"}
	det, err := NewDetector(schema, incrementalOpts(nil), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := det.Remove("never-added"); !errors.Is(err, ErrUnknownID) {
		t.Fatalf("remove-before-add: error %v does not wrap ErrUnknownID", err)
	}
	x := pdb.NewXTuple("a", pdb.NewAlt(1, "Johnson", "pilot", "44"))
	if err := det.Add(x); err != nil {
		t.Fatal(err)
	}
	if err := det.Add(pdb.NewXTuple("b", pdb.NewAlt(1, "Jonson", "pilot", "44"))); err != nil {
		t.Fatal(err)
	}
	if err := det.Remove("a"); err != nil {
		t.Fatal(err)
	}
	if err := det.Remove("a"); !errors.Is(err, ErrUnknownID) {
		t.Fatalf("remove-twice: error %v does not wrap ErrUnknownID", err)
	}
	if st := det.Stats(); st.Residents != 1 || st.Live != 0 {
		t.Fatalf("failed removals changed state: %+v", st)
	}
}

// TestDetectorConcurrentCallers races Add, AddBatch, Remove, Flush,
// Stats and Len on one detector from several goroutines under the
// race detector, with an emit callback that folds the delta stream
// WITHOUT synchronization of its own — validating the sequential
// emit-invocation guarantee. Each goroutine owns a disjoint ID
// partition so the surviving resident set is deterministic; the final
// Flush must equal batch Detect over the survivors. Reductions whose
// candidate set is insertion-order independent (blocking, cross
// product) keep the oracle exact under arbitrary interleavings.
func TestDetectorConcurrentCallers(t *testing.T) {
	u := shuffledUnion(t, 36, 19)
	def, err := keys.ParseDef("name:3+job:2", u.Schema)
	if err != nil {
		t.Fatal(err)
	}
	for name, reduction := range map[string]ssr.Method{
		"cross-product":    nil,
		"blocking-certain": ssr.BlockingCertain{Key: def},
	} {
		t.Run(name, func(t *testing.T) {
			opts := incrementalOpts(reduction)
			emit, folded := foldDeltas()
			var inCallback atomic.Bool
			guarded := func(md MatchDelta) bool {
				if !inCallback.CompareAndSwap(false, true) {
					t.Error("emit callback invoked concurrently with itself")
				}
				defer inCallback.Store(false)
				return emit(md)
			}
			det, err := NewDetector(u.Schema, opts, guarded)
			if err != nil {
				t.Fatal(err)
			}

			const workers = 4
			var wg sync.WaitGroup
			for g := 0; g < workers; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					var mine []*pdb.XTuple
					for i := g; i < len(u.Tuples); i += workers {
						mine = append(mine, u.Tuples[i])
					}
					// Half arrives one at a time, half as one batch;
					// every third of the singles is retired again.
					half := len(mine) / 2
					for j, x := range mine[:half] {
						if err := det.Add(x); err != nil {
							t.Error(err)
							return
						}
						if j%3 == 0 {
							if err := det.Remove(x.ID); err != nil {
								t.Error(err)
								return
							}
						}
						det.Stats()
						det.Len()
					}
					if err := det.AddBatch(mine[half:]); err != nil {
						t.Error(err)
						return
					}
					det.Flush()
				}(g)
			}
			wg.Wait()

			// Deterministic survivor set: per goroutine, the first
			// half loses every third tuple.
			rest := pdb.NewXRelation(u.Name, u.Schema...)
			for g := 0; g < workers; g++ {
				var mine []*pdb.XTuple
				for i := g; i < len(u.Tuples); i += workers {
					mine = append(mine, u.Tuples[i])
				}
				half := len(mine) / 2
				for j, x := range mine[:half] {
					if j%3 != 0 {
						rest.Append(x)
					}
				}
				rest.Append(mine[half:]...)
			}
			batch, err := Detect(rest, opts)
			if err != nil {
				t.Fatal(err)
			}
			res := det.Flush()
			sameResult(t, res, batch)
			if len(folded) != len(res.ByPair) {
				t.Fatalf("folded deltas hold %d pairs, flush %d", len(folded), len(res.ByPair))
			}
			for p, m := range folded {
				if rm := res.ByPair[p]; rm != m {
					t.Fatalf("folded pair %v = %+v, flush %+v", p, m, rm)
				}
			}
		})
	}
}

// churnyIndex wraps the cross-product index and, once a first pair
// exists, prefixes every later insertion's deltas with a
// drop-then-re-add of that pair. That sequence is legal under the
// IncrementalIndex contract (the maintained set ends up identical —
// deltas per pair alternate) and is exactly the shape the parallel
// verification phase must not mishandle: the re-add needs a
// comparison because the pair is retracted by the time it applies,
// even though it is live when the batch is collected.
type churnyIndex struct {
	inner ssr.IncrementalIndex
	first *verify.Pair
}

func (c *churnyIndex) Insert(x *pdb.XTuple, yield func(ssr.PairDelta) bool) bool {
	if c.first != nil {
		if !yield(ssr.PairDelta{Pair: *c.first, Dropped: true}) {
			return false
		}
		if !yield(ssr.PairDelta{Pair: *c.first}) {
			return false
		}
	}
	return c.inner.Insert(x, func(pd ssr.PairDelta) bool {
		if c.first == nil && !pd.Dropped {
			p := pd.Pair
			c.first = &p
		}
		return yield(pd)
	})
}

func (c *churnyIndex) Remove(id string, yield func(ssr.PairDelta) bool) bool {
	return c.inner.Remove(id, yield)
}

func (c *churnyIndex) Len() int { return c.inner.Len() }

// churnyMethod is a user-defined IncrementalMethod built on the cross
// product.
type churnyMethod struct{ ssr.CrossProduct }

func (churnyMethod) Incremental() (ssr.IncrementalIndex, error) {
	inner, err := ssr.CrossProduct{}.Incremental()
	if err != nil {
		return nil, err
	}
	return &churnyIndex{inner: inner}, nil
}

// TestDetectorParallelDropReAddDelta is the regression test for the
// parallel verification phase against a user-defined index that
// drops and re-adds one pair within a single delta sequence: the
// classified state must be identical at Workers 1 and 4 (the
// sequential path re-compares the re-added pair; the parallel path
// must project liveness through the slice to reach the same answer),
// and the churned pair must survive.
func TestDetectorParallelDropReAddDelta(t *testing.T) {
	u := shuffledUnion(t, 25, 31)
	results := map[int]*Result{}
	for _, workers := range []int{1, 4} {
		opts := incrementalOpts(churnyMethod{})
		opts.Workers = workers
		det, err := NewDetector(u.Schema, opts, nil)
		if err != nil {
			t.Fatal(err)
		}
		// Single Adds: later insertions each yield enough cross-product
		// deltas (plus the churn prefix) to cross the inline threshold,
		// so the Workers=4 run exercises the parallel path.
		for _, x := range u.Tuples {
			if err := det.Add(x); err != nil {
				t.Fatal(err)
			}
		}
		results[workers] = det.Flush()
	}
	if len(results[1].Compared) != ssr.TotalPairs(len(u.Tuples)) {
		t.Fatalf("sequential run holds %d pairs, want the full cross product %d",
			len(results[1].Compared), ssr.TotalPairs(len(u.Tuples)))
	}
	sameResult(t, results[4], results[1])
}

// TestDetectorWorkersDoNotChangeDeltaStream checks the documented
// contract that Workers only changes throughput: the same AddBatch
// sequence emits the identical net delta stream (same pairs, same
// payloads) at Workers 1 and 4 — order included, because state
// updates are applied sequentially in delta order either way.
func TestDetectorWorkersDoNotChangeDeltaStream(t *testing.T) {
	u := shuffledUnion(t, 30, 23)
	def, err := keys.ParseDef("name:3+job:2", u.Schema)
	if err != nil {
		t.Fatal(err)
	}
	streams := map[int][]MatchDelta{}
	for _, workers := range []int{1, 4} {
		opts := Options{
			Compare:   []strsim.Func{strsim.Levenshtein, strsim.Levenshtein, strsim.Levenshtein},
			Reduction: ssr.SNMCertain{Key: def, Window: 4},
			Final:     decision.Thresholds{Lambda: 0.6, Mu: 0.8},
			Workers:   workers,
		}
		var got []MatchDelta
		det, err := NewDetector(u.Schema, opts, func(md MatchDelta) bool {
			got = append(got, md)
			return true
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := det.AddBatch(u.Tuples); err != nil {
			t.Fatal(err)
		}
		streams[workers] = got
	}
	if len(streams[1]) != len(streams[4]) {
		t.Fatalf("delta stream lengths differ: %d (workers=1) vs %d (workers=4)", len(streams[1]), len(streams[4]))
	}
	for i := range streams[1] {
		if streams[1][i] != streams[4][i] {
			t.Fatalf("delta %d differs: %+v (workers=1) vs %+v (workers=4)", i, streams[1][i], streams[4][i])
		}
	}
}
