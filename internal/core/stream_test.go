package core

import (
	"math"
	"strings"
	"testing"

	"probdedup/internal/dataset"
	"probdedup/internal/decision"
	"probdedup/internal/keys"
	"probdedup/internal/pdb"
	"probdedup/internal/ssr"
	"probdedup/internal/strsim"
	"probdedup/internal/verify"
	"probdedup/internal/xmatch"
)

func streamOptions() Options {
	return Options{
		Compare: []strsim.Func{strsim.Levenshtein, strsim.Levenshtein, strsim.Levenshtein},
		AltModel: decision.SimpleModel{
			Phi: decision.WeightedSum(0.4, 0.3, 0.3),
			T:   decision.Thresholds{Lambda: 0.6, Mu: 0.8},
		},
		Derivation: xmatch.SimilarityBased{Conditioned: true},
		Final:      decision.Thresholds{Lambda: 0.6, Mu: 0.8},
	}
}

// collectStream runs DetectStream and gathers the emitted matches.
func collectStream(t *testing.T, xr *pdb.XRelation, opts Options) (map[verify.Pair]Match, StreamStats) {
	t.Helper()
	got := map[verify.Pair]Match{}
	stats, err := DetectStream(xr, opts, func(m Match) bool {
		if _, dup := got[m.Pair]; dup {
			t.Fatalf("pair %v emitted twice", m.Pair)
		}
		got[m.Pair] = m
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	return got, stats
}

// assertSameResults checks a streamed result set against a
// materialized Detect run: identical pairs, similarities, classes.
func assertSameResults(t *testing.T, res *Result, got map[verify.Pair]Match, stats StreamStats) {
	t.Helper()
	if len(got) != len(res.Compared) {
		t.Fatalf("streamed %d pairs, Detect compared %d", len(got), len(res.Compared))
	}
	if stats.Compared != len(res.Compared) {
		t.Fatalf("stats.Compared %d, want %d", stats.Compared, len(res.Compared))
	}
	if stats.TotalPairs != res.TotalPairs {
		t.Fatalf("stats.TotalPairs %d, want %d", stats.TotalPairs, res.TotalPairs)
	}
	if stats.Matches != len(res.Matches) || stats.Possible != len(res.Possible) {
		t.Fatalf("stats sets M=%d P=%d, want M=%d P=%d",
			stats.Matches, stats.Possible, len(res.Matches), len(res.Possible))
	}
	for p, want := range res.ByPair {
		m, ok := got[p]
		if !ok {
			t.Fatalf("pair %v missing from stream", p)
		}
		if math.Abs(m.Sim-want.Sim) > 1e-12 || m.Class != want.Class {
			t.Fatalf("pair %v differs: stream %v/%v, detect %v/%v",
				p, m.Sim, m.Class, want.Sim, want.Class)
		}
	}
}

// TestDetectStreamMatchesDetect asserts across reductions and worker
// counts that the streaming path classifies exactly like Detect —
// satellite requirement together with TestParallelDetectMatchesSequential,
// exercised under -race in CI.
func TestDetectStreamMatchesDetect(t *testing.T) {
	d := dataset.Generate(dataset.DefaultConfig(50, 23))
	u := d.Union()
	def, err := keys.ParseDef("name:3+job:2", u.Schema)
	if err != nil {
		t.Fatal(err)
	}
	reductions := map[string]ssr.Method{
		"cross-product":         nil,
		"snm-ranked":            ssr.SNMRanked{Key: def, Window: 5},
		"snm-alternatives":      ssr.SNMAlternatives{Key: def, Window: 5},
		"blocking-certain":      ssr.BlockingCertain{Key: def},
		"blocking-alternatives": ssr.BlockingAlternatives{Key: def},
		"blocking-cluster":      ssr.BlockingCluster{Key: def, K: 8, Seed: 1},
		"adapter-only":          firstLastMethod{},
	}
	for name, red := range reductions {
		opts := streamOptions()
		opts.Reduction = red
		seq, err := Detect(u, opts)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, workers := range []int{1, 4, 32} {
			opts.Workers = workers
			got, stats := collectStream(t, u, opts)
			assertSameResults(t, seq, got, stats)
			if stats.Stopped {
				t.Fatalf("%s workers=%d: run reported stopped", name, workers)
			}
			// The parallel Detect must also equal the sequential one.
			par, err := Detect(u, opts)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", name, workers, err)
			}
			for i := range seq.Compared {
				if par.Compared[i] != seq.Compared[i] {
					t.Fatalf("%s workers=%d: Compared order diverges at %d", name, workers, i)
				}
			}
		}
	}
}

// firstLastMethod is a Method without a Streamer implementation; it
// forces the StreamOf adapter path through the engine.
type firstLastMethod struct{}

func (firstLastMethod) Name() string { return "first-last" }

func (firstLastMethod) Candidates(xr *pdb.XRelation) verify.PairSet {
	s := verify.PairSet{}
	if n := len(xr.Tuples); n > 1 {
		s.Add(xr.Tuples[0].ID, xr.Tuples[n-1].ID)
	}
	return s
}

// TestDetectStreamLargeBlocking is the scale acceptance check: a
// ≥10k-tuple relation streams through a blocking reduction with
// per-block fan-out and classifies exactly like Detect, while the
// engine never builds the global candidate pair set.
func TestDetectStreamLargeBlocking(t *testing.T) {
	if testing.Short() {
		t.Skip("large corpus")
	}
	d := dataset.Generate(dataset.DefaultConfig(6500, 9))
	u := d.Union()
	if len(u.Tuples) < 10_000 {
		t.Fatalf("corpus has %d tuples, want >= 10000", len(u.Tuples))
	}
	def, err := keys.ParseDef("name:5+job:3", u.Schema)
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{
		Compare:   []strsim.Func{strsim.NormalizedHamming, strsim.NormalizedHamming, strsim.NormalizedHamming},
		Reduction: ssr.BlockingCertain{Key: def},
		Final:     decision.Thresholds{Lambda: 0.6, Mu: 0.8},
		Workers:   8,
	}
	matches, possible := verify.PairSet{}, verify.PairSet{}
	stats, err := DetectStream(u, opts, func(m Match) bool {
		switch m.Class {
		case decision.M:
			matches[m.Pair] = true
		case decision.P:
			possible[m.Pair] = true
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Partitions < 2 {
		t.Fatalf("expected block fan-out, got %d partitions", stats.Partitions)
	}
	if want := ssr.TotalPairs(len(u.Tuples)); stats.TotalPairs != want {
		t.Fatalf("TotalPairs %d, want %d", stats.TotalPairs, want)
	}

	opts.Workers = 4
	res, err := Detect(u, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != len(res.Matches) || len(possible) != len(res.Possible) {
		t.Fatalf("stream M=%d P=%d, detect M=%d P=%d",
			len(matches), len(possible), len(res.Matches), len(res.Possible))
	}
	for p := range res.Matches {
		if !matches[p] {
			t.Fatalf("match %v missing from stream", p)
		}
	}
	for p := range res.Possible {
		if !possible[p] {
			t.Fatalf("possible %v missing from stream", p)
		}
	}
}

// TestDetectStreamEarlyStop asserts that emit returning false ends the
// run promptly in both the sequential and the parallel engine.
func TestDetectStreamEarlyStop(t *testing.T) {
	d := dataset.Generate(dataset.DefaultConfig(50, 23))
	u := d.Union()
	for _, workers := range []int{1, 4} {
		opts := streamOptions()
		opts.Workers = workers
		emitted := 0
		stats, err := DetectStream(u, opts, func(Match) bool {
			emitted++
			return emitted < 10
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !stats.Stopped {
			t.Fatalf("workers=%d: Stopped not set", workers)
		}
		if emitted != 10 || stats.Compared != 10 {
			t.Fatalf("workers=%d: emitted %d, stats.Compared %d, want 10", workers, emitted, stats.Compared)
		}
	}
}

// bogusMethod emits a candidate pair that references no tuple of the
// relation — the engine must fail cleanly in both modes.
type bogusMethod struct{}

func (bogusMethod) Name() string { return "bogus" }

func (bogusMethod) Candidates(xr *pdb.XRelation) verify.PairSet {
	return verify.NewPairSet(verify.Pair{A: "no-such-a", B: "no-such-b"})
}

func TestDetectStreamErrors(t *testing.T) {
	d := dataset.Generate(dataset.DefaultConfig(20, 23))
	u := d.Union()

	// Invalid thresholds are rejected before any work.
	if _, err := DetectStream(u, Options{Final: decision.Thresholds{Lambda: 1, Mu: 0}}, func(Match) bool { return true }); err == nil {
		t.Fatal("want threshold error")
	}

	for _, workers := range []int{1, 4} {
		opts := streamOptions()
		opts.Workers = workers
		opts.Reduction = bogusMethod{}
		_, err := DetectStream(u, opts, func(Match) bool { return true })
		if err == nil || !strings.Contains(err.Error(), "unknown tuples") {
			t.Fatalf("workers=%d: err = %v, want unknown-tuples error", workers, err)
		}
		if _, err := Detect(u, opts); err == nil {
			t.Fatalf("workers=%d: Detect must propagate the error", workers)
		}
	}
}

// TestDetectStreamTinyRelations guards the degenerate shapes: no
// pairs, fewer pairs than workers — the pipeline must terminate.
func TestDetectStreamTinyRelations(t *testing.T) {
	one := pdb.NewXRelation("one", "a").Append(pdb.NewXTuple("t", pdb.NewAlt(1, "x")))
	for _, workers := range []int{1, 8} {
		opts := Options{Final: decision.Thresholds{Lambda: 0.4, Mu: 0.7}, Workers: workers}
		stats, err := DetectStream(one, opts, func(Match) bool { return true })
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if stats.Compared != 0 || stats.TotalPairs != 0 {
			t.Fatalf("workers=%d: stats %+v", workers, stats)
		}
	}
}
