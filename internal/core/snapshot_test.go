package core

import (
	"errors"
	"math"
	"strings"
	"testing"

	"probdedup/internal/avm"
	"probdedup/internal/decision"
	"probdedup/internal/keys"
	"probdedup/internal/pdb"
	"probdedup/internal/ssr"
	"probdedup/internal/verify"
)

// snapshotFixture drives a detector through a mixed schedule (adds,
// batched adds, removals, reseals) and returns it with its input.
func snapshotFixture(t *testing.T, red ssr.Method, entities int, seed int64) (*Detector, *pdb.XRelation, Options) {
	t.Helper()
	u := shuffledUnion(t, entities, seed)
	opts := incrementalOpts(red)
	det, err := NewDetector(u.Schema, opts, nil)
	if err != nil {
		t.Fatal(err)
	}
	half := len(u.Tuples) / 2
	for i, x := range u.Tuples[:half] {
		if err := det.Add(x); err != nil {
			t.Fatal(err)
		}
		if i%5 == 4 {
			if err := det.Remove(x.ID); err != nil {
				t.Fatal(err)
			}
		}
		if i%7 == 6 {
			if err := det.Reseal(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := det.AddBatch(u.Tuples[half : half+4]); err != nil {
		t.Fatal(err)
	}
	return det, u, opts
}

// TestSnapshotRestoreRoundTrip pins the snapshot contract on an exact
// tier and on the bounded-staleness tier: the restored detector
// reports the identical classified pair set, counters, and residents,
// and then behaves bit-identically on further operations.
func TestSnapshotRestoreRoundTrip(t *testing.T) {
	schema := shuffledUnion(t, 4, 1).Schema
	reds := incrementalReductions(t, schema)
	def, err := keys.ParseDef("name:3+job:2", schema)
	if err != nil {
		t.Fatal(err)
	}
	reds["blocking-cluster"] = ssr.BlockingCluster{Key: def, K: 4, Seed: 1, MaxDrift: 0.5}
	for name, red := range reds {
		red := red
		t.Run(name, func(t *testing.T) {
			det, u, opts := snapshotFixture(t, red, 30, 11)
			st := det.SnapshotState()
			restored, err := RestoreDetector(opts, nil, st)
			if err != nil {
				t.Fatalf("restore: %v", err)
			}
			sameResult(t, restored.Flush(), det.Flush())
			// The memo cache is deliberately ephemeral: it is rebuilt on
			// demand, so its counters are excluded from the equality.
			a, b := restored.Stats(), det.Stats()
			a.Cache, b.Cache = avm.CacheStats{}, avm.CacheStats{}
			if (a.Staleness == nil) != (b.Staleness == nil) {
				t.Fatalf("staleness presence diverges: %+v vs %+v", a.Staleness, b.Staleness)
			}
			if a.Staleness != nil && *a.Staleness != *b.Staleness {
				t.Fatalf("staleness diverges: %+v vs %+v", *a.Staleness, *b.Staleness)
			}
			a.Staleness, b.Staleness = nil, nil
			if a != b {
				t.Fatalf("stats diverge: %+v vs %+v", a, b)
			}
			if restored.Len() != det.Len() {
				t.Fatalf("Len %d vs %d", restored.Len(), det.Len())
			}
			// Future behavior: identical fold on both engines.
			half := len(u.Tuples) / 2
			for _, x := range u.Tuples[half+4 : half+10] {
				if err := det.Add(x); err != nil {
					t.Fatal(err)
				}
				if err := restored.Add(x); err != nil {
					t.Fatal(err)
				}
			}
			if err := det.Reseal(); err != nil {
				t.Fatal(err)
			}
			if err := restored.Reseal(); err != nil {
				t.Fatal(err)
			}
			rm := u.Tuples[half].ID
			if err := det.Remove(rm); err != nil {
				t.Fatal(err)
			}
			if err := restored.Remove(rm); err != nil {
				t.Fatal(err)
			}
			sameResult(t, restored.Flush(), det.Flush())
		})
	}
}

// TestSnapshotIsStable: a taken snapshot is unaffected by later
// detector operations (the slices are fresh copies).
func TestSnapshotIsStable(t *testing.T) {
	det, u, _ := snapshotFixture(t, nil, 20, 13)
	st := det.SnapshotState()
	nres, npairs := len(st.Residents), len(st.Pairs)
	if err := det.AddBatch(u.Tuples[len(u.Tuples)-4:]); err != nil {
		t.Fatal(err)
	}
	if err := det.Remove(st.Residents[0].ID); err != nil {
		t.Fatal(err)
	}
	if len(st.Residents) != nres || len(st.Pairs) != npairs {
		t.Fatalf("snapshot mutated by later operations: %d/%d residents, %d/%d pairs",
			len(st.Residents), nres, len(st.Pairs), npairs)
	}
}

// TestRestoreDetectorRejectsCorrupt: a hostile or damaged snapshot
// fails loudly with a named problem, never a panic.
func TestRestoreDetectorRejectsCorrupt(t *testing.T) {
	schema := shuffledUnion(t, 4, 1).Schema
	exact := incrementalReductions(t, schema)["blocking-certain"]
	def, err := keys.ParseDef("name:3+job:2", schema)
	if err != nil {
		t.Fatal(err)
	}
	stateful := ssr.BlockingCluster{Key: def, K: 4, Seed: 1, MaxDrift: 0.5}
	base := func() *DetectorState {
		det, _, _ := snapshotFixture(t, exact, 20, 17)
		return det.SnapshotState()
	}
	cases := []struct {
		name   string
		mutate func(st *DetectorState)
		errSub string
	}{
		{"nil resident", func(st *DetectorState) { st.Residents[0] = nil }, "nil resident"},
		{"duplicate resident", func(st *DetectorState) { st.Residents[1] = st.Residents[0] }, "twice"},
		{"non-canonical pair", func(st *DetectorState) {
			p := &st.Pairs[0].Pair
			p.A, p.B = p.B, p.A
		}, "canonical"},
		{"pair references ghost", func(st *DetectorState) { st.Pairs[0].Pair.B = "zzzz-ghost" }, "non-resident"},
		{"duplicate pair", func(st *DetectorState) { st.Pairs[1] = st.Pairs[0] }, "twice"},
		{"unknown class", func(st *DetectorState) { st.Pairs[0].Class = decision.Class(99) }, "class"},
		{"NaN similarity", func(st *DetectorState) { st.Pairs[0].Sim = math.NaN() }, "NaN"},
		{"negative counters", func(st *DetectorState) { st.Compared = -1 }, "negative"},
		{"epoch state on exact tier", func(st *DetectorState) { st.Epoch = &ssr.EpochState{} }, "epoch"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			st := base()
			if len(st.Pairs) < 2 || len(st.Residents) < 2 {
				t.Fatalf("fixture too small: %d pairs, %d residents", len(st.Pairs), len(st.Residents))
			}
			c.mutate(st)
			if _, err := RestoreDetector(incrementalOpts(exact), nil, st); err == nil {
				t.Fatal("corrupt snapshot accepted")
			} else if !strings.Contains(err.Error(), c.errSub) {
				t.Fatalf("error %q does not mention %q", err, c.errSub)
			}
		})
	}

	// The converse tier mismatch: a bounded-staleness reduction must
	// refuse a snapshot without epoch state.
	det, _, _ := snapshotFixture(t, stateful, 20, 17)
	st := det.SnapshotState()
	st.Epoch = nil
	if _, err := RestoreDetector(incrementalOpts(stateful), nil, st); err == nil ||
		!strings.Contains(err.Error(), "epoch") {
		t.Fatalf("missing epoch state: %v", err)
	}
}

// TestBatchErrorAndDeltaKindStrings covers the small diagnostic
// surfaces used by the durable WAL layer.
func TestBatchErrorAndDeltaKindStrings(t *testing.T) {
	cause := errors.New("boom")
	be := &BatchError{Index: 3, Err: cause}
	if !strings.Contains(be.Error(), "3") || !strings.Contains(be.Error(), "boom") {
		t.Fatalf("BatchError.Error() = %q", be.Error())
	}
	if !errors.Is(be, cause) {
		t.Fatal("BatchError does not unwrap its cause")
	}
	if DeltaAdd.String() != "add" || DeltaDrop.String() != "drop" {
		t.Fatalf("DeltaKind strings: %q, %q", DeltaAdd, DeltaDrop)
	}
}

// TestResidentLookup covers the Resident accessor the integrator and
// the durable layer rely on.
func TestResidentLookup(t *testing.T) {
	det, u, _ := snapshotFixture(t, nil, 10, 19)
	var someID string
	for _, x := range u.Tuples[:3] {
		if _, ok := det.Resident(x.ID); ok {
			someID = x.ID
			break
		}
	}
	if someID == "" {
		t.Fatal("no resident found among the first arrivals")
	}
	x, ok := det.Resident(someID)
	if !ok || x.ID != someID {
		t.Fatalf("Resident(%q) = %v, %t", someID, x, ok)
	}
	if _, ok := det.Resident("zzzz-ghost"); ok {
		t.Fatal("ghost resident found")
	}
	_ = verify.Pair{}
}
