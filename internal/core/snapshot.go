package core

import (
	"fmt"
	"math"
	"sort"

	"probdedup/internal/decision"
	"probdedup/internal/pdb"
	"probdedup/internal/prepare"
	"probdedup/internal/ssr"
)

// DetectorState is the portable snapshot of a Detector's live state —
// everything a recovered detector cannot re-derive from its Options:
// the resident tuples in arrival order (already standardized; the
// incremental-index contract ties candidate tie-breaking to insertion
// order), every live pair decision, the cumulative work counters, and
// the placement state of a bounded-staleness reduction index. What is
// deliberately absent is re-derived on restore: exact-tier index state
// and the pre-filter summaries are pure functions of the residents in
// insertion order, and the symbol plane is content-addressed, so
// re-interning assigns equivalent (if differently numbered) symbols.
type DetectorState struct {
	// Schema is the detector's attribute names.
	Schema []string
	// Residents holds the standardized resident tuples in arrival
	// order. The slices and tuples are shared with the live detector —
	// read-only by contract (resident tuples are immutable).
	Residents []*pdb.XTuple
	// Pairs lists every live classified pair sorted by (A, B).
	Pairs []Match
	// Compared and Dropped are the cumulative work counters.
	Compared, Dropped int
	// Epoch is the bounded-staleness placement state
	// (ssr.StatefulEpochIndex); nil for exact-tier reductions.
	Epoch *ssr.EpochState
}

// SnapshotState captures the detector's live state for a durable
// snapshot. The returned state shares the resident tuples with the
// detector (they are immutable while resident and stay valid after
// removal); the slices themselves are fresh copies, so concurrent
// detector operations never mutate a taken snapshot.
func (d *Detector) SnapshotState() *DetectorState {
	d.mu.Lock()
	defer d.mu.Unlock()
	st := &DetectorState{
		Schema:    append([]string(nil), d.eng.xr.Schema...),
		Residents: append([]*pdb.XTuple(nil), d.eng.xr.Tuples...),
		Pairs:     make([]Match, 0, len(d.live)),
		Compared:  d.compared,
		Dropped:   d.dropped,
	}
	sort.Slice(st.Residents, func(i, j int) bool {
		return d.seqOf[st.Residents[i].ID] < d.seqOf[st.Residents[j].ID]
	})
	for _, m := range d.live {
		st.Pairs = append(st.Pairs, m)
	}
	sort.Slice(st.Pairs, func(i, j int) bool {
		if st.Pairs[i].Pair.A != st.Pairs[j].Pair.A {
			return st.Pairs[i].Pair.A < st.Pairs[j].Pair.A
		}
		return st.Pairs[i].Pair.B < st.Pairs[j].Pair.B
	})
	if ei, ok := d.idx.(ssr.StatefulEpochIndex); ok {
		st.Epoch = ei.ExportEpochState()
	}
	return st
}

// RestoreDetector rebuilds a detector from a snapshot taken with
// SnapshotState, bit-identically: the same resident relation, live
// pair set, index state and counters, so every future operation
// behaves exactly as it would have on the original. opts must be the
// configuration the snapshot was taken under (the snapshot records
// state, not configuration). The restore produces no emitted deltas —
// the snapshot's pairs were already reported when they entered the
// live set.
//
// Restoring re-runs no comparisons: residents are re-registered in
// arrival order (re-interning the symbol plane and re-summarizing the
// pre-filter), exact-tier index state is re-derived by re-inserting
// them — the index contract makes the maintained candidate set a pure
// function of the residents in insertion order — and the live pair
// decisions are installed directly from the snapshot. A
// bounded-staleness index restores its persisted placement state
// instead (ssr.StatefulEpochIndex). The state is validated as it is
// applied; untrusted snapshots (a corrupt or crafted file) fail with
// an error, never a panic.
func RestoreDetector(opts Options, emit func(MatchDelta) bool, st *DetectorState) (*Detector, error) {
	d, err := NewDetector(st.Schema, opts, emit)
	if err != nil {
		return nil, err
	}
	_, stateful := d.idx.(ssr.StatefulEpochIndex)
	if stateful != (st.Epoch != nil) && len(st.Residents) > 0 {
		return nil, fmt.Errorf("core: snapshot epoch state (present=%t) does not match reduction tier (bounded-staleness=%t)",
			st.Epoch != nil, stateful)
	}
	for _, x := range st.Residents {
		if x == nil {
			return nil, fmt.Errorf("core: snapshot contains a nil resident")
		}
		x = x.Clone()
		if err := x.Validate(len(st.Schema)); err != nil {
			return nil, fmt.Errorf("core: snapshot resident: %w", err)
		}
		if _, dup := d.eng.byID[x.ID]; dup {
			return nil, fmt.Errorf("core: snapshot lists resident %q twice", x.ID)
		}
		if d.eng.symtab != nil {
			prepare.InternXTuple(d.eng.symtab, x)
		}
		d.register(x)
		if !stateful {
			// Discarded deltas: the maintained candidate set is what the
			// restore is after; the pair decisions come from the snapshot.
			d.idx.Insert(x, func(ssr.PairDelta) bool { return true })
		}
	}
	if stateful && st.Epoch != nil {
		err := d.idx.(ssr.StatefulEpochIndex).RestoreEpochState(st.Epoch, func(id string) (*pdb.XTuple, bool) {
			x, ok := d.eng.byID[id]
			return x, ok
		})
		if err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
	}
	for _, m := range st.Pairs {
		p := m.Pair
		if p.A >= p.B {
			return nil, fmt.Errorf("core: snapshot pair (%q,%q) is not in canonical order", p.A, p.B)
		}
		if _, ok := d.eng.byID[p.A]; !ok {
			return nil, fmt.Errorf("core: snapshot pair references non-resident tuple %q", p.A)
		}
		if _, ok := d.eng.byID[p.B]; !ok {
			return nil, fmt.Errorf("core: snapshot pair references non-resident tuple %q", p.B)
		}
		if _, dup := d.live[p]; dup {
			return nil, fmt.Errorf("core: snapshot lists pair (%q,%q) twice", p.A, p.B)
		}
		switch m.Class {
		case decision.M, decision.P, decision.U:
		default:
			return nil, fmt.Errorf("core: snapshot pair (%q,%q) has unknown class %d", p.A, p.B, int(m.Class))
		}
		if math.IsNaN(m.Sim) {
			return nil, fmt.Errorf("core: snapshot pair (%q,%q) has NaN similarity", p.A, p.B)
		}
		d.live[p] = m
		d.indexPair(p.A, p)
		d.indexPair(p.B, p)
	}
	if st.Compared < 0 || st.Dropped < 0 {
		return nil, fmt.Errorf("core: snapshot has negative work counters")
	}
	d.compared, d.dropped = st.Compared, st.Dropped
	return d, nil
}
