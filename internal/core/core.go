package core

import (
	"fmt"
	"sort"

	"probdedup/internal/avm"
	"probdedup/internal/decision"
	"probdedup/internal/pdb"
	"probdedup/internal/prepare"
	"probdedup/internal/ssr"
	"probdedup/internal/strsim"
	"probdedup/internal/verify"
	"probdedup/internal/xmatch"
)

// Options configures a detection run. Zero-value fields fall back to
// sensible defaults (see Detect).
type Options struct {
	// Standardizer is the optional data-preparation step.
	Standardizer *prepare.Standardizer
	// Compare holds one comparison function per attribute; defaults to
	// normalized Hamming (the paper's running choice) on every attribute.
	Compare []strsim.Func
	// Reduction is the search-space reduction method; nil compares all
	// pairs.
	Reduction ssr.Method
	// AltModel is the decision model applied per alternative-tuple pair;
	// defaults to the equal-weight SimpleModel with the Final thresholds.
	AltModel decision.Model
	// Derivation is the x-tuple derivation function ϑ; defaults to the
	// similarity-based conditional expectation (Eq. 6).
	Derivation xmatch.Derivation
	// Final classifies the derived x-tuple similarity into {M,P,U}.
	Final decision.Thresholds
	// Workers parallelizes the matching/decision stage across goroutines
	// (0 or 1 means sequential). Candidate pairs are streamed to the
	// workers in batches; reductions that partition their search space
	// (the blocking variants) are additionally enumerated block by
	// block in parallel. All workers share one bounded similarity
	// cache (see CacheCapacity), so they hit each other's memoized
	// value pairs; comparison functions are deterministic, so results
	// are identical to a sequential run.
	Workers int
	// CacheCapacity bounds the run's shared similarity cache (memoized
	// value pairs across all workers): 0 means
	// avm.DefaultCacheCapacity, a negative value disables memoization.
	// The bound holds regardless of the worker count; when it is
	// exceeded, least-recently-inserted-ish entries are evicted and
	// simply recomputed on demand.
	CacheCapacity int
	// Nulls overrides the ⊥ semantics of attribute value matching; nil
	// means the paper's sim(⊥,⊥)=1, sim(a,⊥)=0 (ablation hook, DESIGN.md
	// §5).
	Nulls *avm.NullSemantics
	// PreFilter enables the symbol-plane candidate pre-filter: between
	// candidate enumeration and verification, pairs whose derived
	// similarity provably cannot reach Final.Lambda are skipped
	// (ssr.PreFilter). The filter is sound by construction — the M and
	// P sets are bit-identical with it on or off; only the number of
	// verified pairs shrinks. When the configuration cannot be bounded
	// (an opaque AltModel, an unboundable Derivation, ⊥ similarities
	// outside [0,1]) the filter is silently inert; StreamStats and
	// DetectorStats report FilterActive.
	PreFilter bool
	// FilterQ is the gram size of the precomputed symbol statistics
	// the pre-filter's q-gram count filters use; 0 means 2. Larger
	// sizes reject less on short values; sizes above sym.MaxExactQ
	// fall back to hashed grams (still sound).
	FilterQ int
	// Durability configures the durable online engines (wal.OpenDurable
	// and the probdedup façade); the batch pipeline and the plain
	// in-memory Detector/Integrator ignore it.
	Durability Durability
}

// Durability configures the durable online engines: state lives in a
// write-ahead-logged, snapshot-rotated directory, and recovery replays
// the log tail through the ordinary fold paths so a recovered engine
// is bit-identical to one that never crashed.
type Durability struct {
	// Dir is the state directory; used when the open call does not name
	// one explicitly.
	Dir string
	// FsyncEvery is the group-commit grain: one fsync per this many
	// logged operations (0 or 1 syncs every operation). Operations
	// since the last sync may be lost in a crash — recovery still
	// yields a consistent prefix of the operation history.
	FsyncEvery int
	// SnapshotEveryOps rotates the log automatically: after this many
	// operations since the last snapshot, the next operation triggers a
	// checkpoint (0 disables automatic checkpoints; Checkpoint and
	// Close still snapshot on demand).
	SnapshotEveryOps int
}

// Match is one compared pair with its derived similarity and class.
type Match struct {
	Pair  verify.Pair
	Sim   float64
	Class decision.Class
}

// Result is the outcome of a detection run.
type Result struct {
	// Matches and Possible are the declared sets M and P.
	Matches, Possible verify.PairSet
	// Compared lists every candidate pair in deterministic order.
	Compared []verify.Pair
	// ByPair gives similarity and class per compared pair.
	ByPair map[verify.Pair]Match
	// TotalPairs is the unreduced search-space size.
	TotalPairs int
}

// Detect runs the pipeline over an x-relation (typically the union of the
// sources to integrate). It is layered on the streaming engine (see
// DetectStream) and materializes the exact result: every compared pair
// in deterministic order, with similarity and class per pair. Use
// DetectStream directly when the result sets need not be retained.
func Detect(xr *pdb.XRelation, opts Options) (*Result, error) {
	res, _, err := DetectWithStats(xr, opts)
	return res, err
}

// DetectWithStats is Detect additionally returning the run's
// StreamStats — cache counters, pre-filter effectiveness, partition
// fan-out — without changing the materialized Result.
func DetectWithStats(xr *pdb.XRelation, opts Options) (*Result, StreamStats, error) {
	res := &Result{
		Matches:  verify.PairSet{},
		Possible: verify.PairSet{},
		ByPair:   map[verify.Pair]Match{},
	}
	stats, err := DetectStream(xr, opts, func(m Match) bool {
		res.Compared = append(res.Compared, m.Pair)
		res.ByPair[m.Pair] = m
		switch m.Class {
		case decision.M:
			res.Matches[m.Pair] = true
		case decision.P:
			res.Possible[m.Pair] = true
		}
		return true
	})
	if err != nil {
		return nil, stats, err
	}
	res.TotalPairs = stats.TotalPairs
	sort.Slice(res.Compared, func(i, j int) bool {
		if res.Compared[i].A != res.Compared[j].A {
			return res.Compared[i].A < res.Compared[j].A
		}
		return res.Compared[i].B < res.Compared[j].B
	})
	return res, stats, nil
}

// DetectRelations lifts two dependency-free relations, unions them, and
// runs Detect — the common "integrate two probabilistic sources" entry
// point (the paper's ℛ1/ℛ2 scenario).
func DetectRelations(r1, r2 *pdb.Relation, opts Options) (*Result, error) {
	x1 := r1.ToXRelation()
	x2 := r2.ToXRelation()
	u, err := x1.Union(r1.Name+"+"+r2.Name, x2)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	return Detect(u, opts)
}

// Verify executes the verification step (Sec. III-E) against ground truth.
// The effectiveness is measured over the compared pairs; duplicates pruned
// by the reduction step count as false negatives, which Evaluate sees via
// the full universe.
func (r *Result) Verify(truth verify.PairSet, universe []verify.Pair) verify.Report {
	if universe == nil {
		universe = r.Compared
	}
	return verify.Evaluate(r.Matches, r.Possible, truth, universe)
}

// Reduction reports the search-space reduction achieved by the run.
func (r *Result) Reduction(truth verify.PairSet) verify.Reduction {
	trueIn := 0
	for _, p := range r.Compared {
		if truth[p] {
			trueIn++
		}
	}
	return verify.Reduction{
		CandidatePairs:   len(r.Compared),
		TotalPairs:       r.TotalPairs,
		TrueInCandidates: trueIn,
		TrueTotal:        len(truth),
	}
}
