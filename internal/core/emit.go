package core

import (
	"sync"
	"sync/atomic"
)

// EmitQueue is the delivery pipeline shared by the online engines
// (Detector match deltas, resolve's Integrator entity deltas): items
// are buffered in state-change order while the owner holds its state
// lock and delivered strictly outside it, by exactly one active
// drainer at a time, so the callback can re-enter the owner freely. A
// re-entrant call finds draining set, enqueues its items and returns;
// the active drainer picks them up before exiting. Every mutating
// operation calls Drain after releasing the state lock, so no item is
// ever stranded: either that call delivers it, or the drainer that
// was active when it was enqueued does. A false return from the
// callback permanently stops delivery; a nil callback disables the
// queue entirely.
type EmitQueue[T any] struct {
	emit     func(T) bool
	mu       sync.Mutex
	queue    []T
	draining bool
	stopped  atomic.Bool
}

// NewEmitQueue builds a queue delivering through emit (nil disables
// delivery; Enqueue and Drain become no-ops).
func NewEmitQueue[T any](emit func(T) bool) *EmitQueue[T] {
	return &EmitQueue[T]{emit: emit}
}

// Enqueue buffers items for delivery. Callers hold their own state
// lock, so the queue order is exactly the state-change order across
// all goroutines.
func (q *EmitQueue[T]) Enqueue(items ...T) {
	if q.emit == nil || len(items) == 0 || q.stopped.Load() {
		return
	}
	q.mu.Lock()
	q.queue = append(q.queue, items...)
	q.mu.Unlock()
}

// Drain delivers queued items in order, exactly one goroutine at a
// time, with no owner lock held.
func (q *EmitQueue[T]) Drain() {
	if q.emit == nil {
		return
	}
	for {
		q.mu.Lock()
		if q.draining || len(q.queue) == 0 {
			q.mu.Unlock()
			return
		}
		q.draining = true
		batch := q.queue
		q.queue = nil
		q.mu.Unlock()

		for _, item := range batch {
			if q.stopped.Load() {
				break
			}
			if !q.emit(item) {
				q.stopped.Store(true)
			}
		}

		q.mu.Lock()
		q.draining = false
		if len(q.queue) == 0 {
			// Reclaim the delivered batch's backing array so
			// steady-state emission (one small queue per operation)
			// allocates nothing.
			q.queue = batch[:0]
		}
		q.mu.Unlock()
	}
}

// Stopped reports that the callback ended delivery.
func (q *EmitQueue[T]) Stopped() bool { return q.stopped.Load() }
