package core

import (
	"math"
	"testing"

	"probdedup/internal/dataset"
	"probdedup/internal/decision"
	"probdedup/internal/pdb"
	"probdedup/internal/strsim"
	"probdedup/internal/xmatch"
)

func TestParallelDetectMatchesSequential(t *testing.T) {
	d := dataset.Generate(dataset.DefaultConfig(50, 23))
	u := d.Union()
	base := Options{
		Compare: []strsim.Func{strsim.Levenshtein, strsim.Levenshtein, strsim.Levenshtein},
		AltModel: decision.SimpleModel{
			Phi: decision.WeightedSum(0.4, 0.3, 0.3),
			T:   decision.Thresholds{Lambda: 0.6, Mu: 0.8},
		},
		Derivation: xmatch.SimilarityBased{Conditioned: true},
		Final:      decision.Thresholds{Lambda: 0.6, Mu: 0.8},
	}
	seq, err := Detect(u, base)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 16, 1000} {
		opts := base
		opts.Workers = workers
		par, err := Detect(u, opts)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(par.Compared) != len(seq.Compared) {
			t.Fatalf("workers=%d: compared %d vs %d", workers, len(par.Compared), len(seq.Compared))
		}
		for p, sm := range seq.ByPair {
			pm, ok := par.ByPair[p]
			if !ok {
				t.Fatalf("workers=%d: pair %v missing", workers, p)
			}
			if math.Abs(pm.Sim-sm.Sim) > 1e-12 || pm.Class != sm.Class {
				t.Fatalf("workers=%d: pair %v differs (%v/%v vs %v/%v)",
					workers, p, pm.Sim, pm.Class, sm.Sim, sm.Class)
			}
		}
		if len(par.Matches) != len(seq.Matches) || len(par.Possible) != len(seq.Possible) {
			t.Fatalf("workers=%d: set sizes differ", workers)
		}
	}
}

func TestParallelDetectEmptyCandidates(t *testing.T) {
	// A single-tuple relation yields no pairs; workers > pairs must not
	// panic.
	u := pdb.NewXRelation("one", "a").Append(pdb.NewXTuple("t", pdb.NewAlt(1, "x")))
	opts := Options{Final: decision.Thresholds{Lambda: 0.4, Mu: 0.7}, Workers: 8}
	res, err := Detect(u, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Compared) != 0 {
		t.Fatalf("compared %d", len(res.Compared))
	}
}
