package core

import (
	"fmt"
	"testing"

	"probdedup/internal/avm"
	"probdedup/internal/decision"
	"probdedup/internal/verify"
)

// TestPreFilterEquivalence is the soundness proof of the candidate
// pre-filter at the engine level: over a shuffled synthetic relation,
// for every incremental-capable reduction and for Workers ∈ {1, 4},
// a filtered run must declare exactly the M and P sets of the
// unfiltered run — same pairs, same similarities, same classes — and
// may differ only by verifying fewer pairs. Every pair the filter
// skipped is re-checked against the unfiltered run's full
// verification: it must have been classified U (below Tλ), i.e. the
// filter only ever discards provable non-matches. The counter
// contract Enumerated = Compared + Filtered is pinned alongside.
func TestPreFilterEquivalence(t *testing.T) {
	u := shuffledUnion(t, 40, 11)
	for name, reduction := range incrementalReductions(t, u.Schema) {
		for _, workers := range []int{1, 4} {
			t.Run(fmt.Sprintf("%s/workers=%d", name, workers), func(t *testing.T) {
				opts := incrementalOpts(reduction)
				opts.Workers = workers
				plain, plainStats, err := DetectWithStats(u, opts)
				if err != nil {
					t.Fatal(err)
				}
				opts.PreFilter = true
				filtered, filtStats, err := DetectWithStats(u, opts)
				if err != nil {
					t.Fatal(err)
				}

				if !filtStats.FilterActive {
					t.Fatal("FilterActive = false; the default configuration must be boundable")
				}
				if plainStats.FilterActive || plainStats.Filtered != 0 {
					t.Fatalf("unfiltered run reports filter work: %+v", plainStats)
				}
				if filtStats.Enumerated != filtStats.Compared+filtStats.Filtered {
					t.Fatalf("Enumerated %d != Compared %d + Filtered %d",
						filtStats.Enumerated, filtStats.Compared, filtStats.Filtered)
				}
				if plainStats.Enumerated != plainStats.Compared {
					t.Fatalf("unfiltered Enumerated %d != Compared %d", plainStats.Enumerated, plainStats.Compared)
				}

				// The declared sets are bit-identical.
				samePairSet(t, "M", filtered.Matches, plain.Matches)
				samePairSet(t, "P", filtered.Possible, plain.Possible)
				// Every verified pair agrees exactly with the unfiltered run.
				for p, fm := range filtered.ByPair {
					pm, ok := plain.ByPair[p]
					if !ok {
						t.Fatalf("pair %v verified only with the filter on", p)
					}
					if fm.Sim != pm.Sim || fm.Class != pm.Class {
						t.Fatalf("pair %v: filtered (%v,%v), unfiltered (%v,%v)",
							p, fm.Sim, fm.Class, pm.Sim, pm.Class)
					}
				}
				// Every skipped pair was a provable non-match: the
				// unfiltered run's full (slow) verification classified it U.
				skipped := 0
				for p, pm := range plain.ByPair {
					if _, ok := filtered.ByPair[p]; ok {
						continue
					}
					skipped++
					if pm.Class != decision.U {
						t.Fatalf("filter skipped pair %v with class %v (sim %v)", p, pm.Class, pm.Sim)
					}
					if pm.Sim >= opts.Final.Lambda {
						t.Fatalf("filter skipped pair %v with sim %v >= Tλ %v", p, pm.Sim, opts.Final.Lambda)
					}
				}
				if skipped != filtStats.Filtered {
					t.Fatalf("skipped %d pairs but Filtered = %d", skipped, filtStats.Filtered)
				}
			})
		}
	}
}

// samePairSet fails unless the two pair sets are identical.
func samePairSet(t *testing.T, what string, got, want verify.PairSet) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d pairs, want %d", what, len(got), len(want))
	}
	for p := range want {
		if !got[p] {
			t.Fatalf("%s: pair %v missing", what, p)
		}
	}
}

// TestPreFilterDetectorEquivalesBatch proves the incremental path of
// the filter: a Detector with PreFilter on, fed the shuffled relation
// in batches (parallel verification), must Flush exactly the result
// of the unfiltered batch Detect — the filter state is maintained
// under Insert and the Admit decisions match the batch run's.
func TestPreFilterDetectorEquivalesBatch(t *testing.T) {
	u := shuffledUnion(t, 35, 19)
	for name, reduction := range incrementalReductions(t, u.Schema) {
		t.Run(name, func(t *testing.T) {
			opts := incrementalOpts(reduction)
			plain, err := Detect(u, opts)
			if err != nil {
				t.Fatal(err)
			}
			opts.PreFilter = true
			det, err := NewDetector(u.Schema, opts, nil)
			if err != nil {
				t.Fatal(err)
			}
			if err := det.AddBatch(u.Tuples); err != nil {
				t.Fatal(err)
			}
			res := det.Flush()
			samePairSet(t, "M", res.Matches, plain.Matches)
			samePairSet(t, "P", res.Possible, plain.Possible)
			st := det.Stats()
			if !st.FilterActive {
				t.Fatal("FilterActive = false")
			}
			if st.Enumerated < st.Filtered {
				t.Fatalf("Enumerated %d < Filtered %d", st.Enumerated, st.Filtered)
			}
		})
	}
}

// TestPreFilterRemoveKeepsStateConsistent exercises the filter's
// Remove path: retiring and re-adding tuples must leave the Detector's
// declared sets exactly where a batch run of the final resident
// relation lands them, with the filter consulted throughout.
func TestPreFilterRemoveKeepsStateConsistent(t *testing.T) {
	u := shuffledUnion(t, 25, 7)
	opts := incrementalOpts(nil)
	opts.PreFilter = true
	det, err := NewDetector(u.Schema, opts, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := det.AddBatch(u.Tuples); err != nil {
		t.Fatal(err)
	}
	// Retire every third tuple, then re-add it.
	for i := 0; i < len(u.Tuples); i += 3 {
		if err := det.Remove(u.Tuples[i].ID); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < len(u.Tuples); i += 3 {
		if err := det.Add(u.Tuples[i].Clone()); err != nil {
			t.Fatal(err)
		}
	}
	plain, err := Detect(u, incrementalOpts(nil))
	if err != nil {
		t.Fatal(err)
	}
	res := det.Flush()
	samePairSet(t, "M", res.Matches, plain.Matches)
	samePairSet(t, "P", res.Possible, plain.Possible)
}

// TestPreFilterInertOnOpaqueModel pins the graceful degradation
// contract: with an AltModel the bound machinery cannot see through,
// PreFilter must stay silently inert (FilterActive false, nothing
// filtered) and the result must be untouched.
func TestPreFilterInertOnOpaqueModel(t *testing.T) {
	u := shuffledUnion(t, 15, 3)
	opts := incrementalOpts(nil)
	opts.AltModel = decision.SimpleModel{
		Phi: func(v avm.Vector) float64 {
			s := 0.0
			for _, x := range v {
				s += x
			}
			return s / float64(len(v))
		},
		T: decision.Thresholds{Lambda: 0.6, Mu: 0.8},
	}
	plain, err := Detect(u, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.PreFilter = true
	filtered, stats, err := DetectWithStats(u, opts)
	if err != nil {
		t.Fatal(err)
	}
	if stats.FilterActive || stats.Filtered != 0 {
		t.Fatalf("filter should be inert on an opaque model: %+v", stats)
	}
	sameResult(t, filtered, plain)
}

// TestPreFilterQGramSizes sweeps FilterQ: every gram size must keep
// the declared sets bit-identical (larger sizes may just filter less,
// and sizes above sym.MaxExactQ exercise the hashed-gram fallback).
func TestPreFilterQGramSizes(t *testing.T) {
	u := shuffledUnion(t, 30, 5)
	opts := incrementalOpts(nil)
	plain, err := Detect(u, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []int{1, 2, 3, 4, 5} {
		opts.PreFilter = true
		opts.FilterQ = q
		filtered, stats, err := DetectWithStats(u, opts)
		if err != nil {
			t.Fatal(err)
		}
		if !stats.FilterActive {
			t.Fatalf("q=%d: filter inactive", q)
		}
		samePairSet(t, "M", filtered.Matches, plain.Matches)
		samePairSet(t, "P", filtered.Possible, plain.Possible)
	}
}
