package codec

import (
	"bytes"
	"strings"
	"testing"

	"probdedup/internal/paperdata"
	"probdedup/internal/pdb"
)

func TestJSONRelationRoundTrip(t *testing.T) {
	for _, r := range []*pdb.Relation{paperdata.R1(), paperdata.R2()} {
		var buf bytes.Buffer
		if err := EncodeRelationJSON(&buf, r); err != nil {
			t.Fatal(err)
		}
		back, err := DecodeRelationJSON(&buf)
		if err != nil {
			t.Fatalf("%s: %v", r.Name, err)
		}
		if back.String() != r.String() {
			t.Fatalf("round trip mismatch:\n%s\nvs\n%s", back, r)
		}
	}
}

func TestJSONXRelationRoundTrip(t *testing.T) {
	for _, r := range []*pdb.XRelation{paperdata.R3(), paperdata.R4(), paperdata.R34()} {
		var buf bytes.Buffer
		if err := EncodeXRelationJSON(&buf, r); err != nil {
			t.Fatal(err)
		}
		back, err := DecodeXRelationJSON(&buf)
		if err != nil {
			t.Fatalf("%s: %v", r.Name, err)
		}
		if back.String() != r.String() {
			t.Fatalf("round trip mismatch:\n%s\nvs\n%s", back, r)
		}
	}
}

func TestJSONNullEncoding(t *testing.T) {
	// ⊥ mass appears as an entry with "v": null.
	r := pdb.NewRelation("R", "a").Append(
		pdb.NewTuple("t1", 1,
			pdb.MustDist(pdb.Alternative{Value: pdb.V("x"), P: 0.6})))
	var buf bytes.Buffer
	if err := EncodeRelationJSON(&buf, r); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"v": null`) {
		t.Fatalf("⊥ not encoded:\n%s", buf.String())
	}
	back, err := DecodeRelationJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got := back.Tuples[0].Attrs[0].NullP(); got < 0.39 || got > 0.41 {
		t.Fatalf("⊥ mass lost: %v", got)
	}
}

func TestJSONLiteralWithOmittedP(t *testing.T) {
	src := `{
	  "name": "R",
	  "schema": ["a"],
	  "tuples": [{"id": "t1", "p": 1, "attrs": [[{"v": "x"}]]}]
	}`
	r, err := DecodeRelationJSON(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if !r.Tuples[0].Attrs[0].IsCertain() {
		t.Fatalf("omitted p must mean certainty: %v", r.Tuples[0].Attrs[0])
	}
}

func TestJSONDecodeErrors(t *testing.T) {
	cases := []struct{ name, src string }{
		{"syntax", `{`},
		{"bad prob sum", `{"name":"R","schema":["a"],"tuples":[{"id":"t1","p":1,"attrs":[[{"v":"x","p":0.9},{"v":"y","p":0.3}]]}]}`},
		{"zero tuple p", `{"name":"R","schema":["a"],"tuples":[{"id":"t1","p":0,"attrs":[[{"v":"x"}]]}]}`},
		{"arity", `{"name":"R","schema":["a","b"],"tuples":[{"id":"t1","p":1,"attrs":[[{"v":"x"}]]}]}`},
	}
	for _, c := range cases {
		if _, err := DecodeRelationJSON(strings.NewReader(c.src)); err == nil {
			t.Errorf("%s: want error", c.name)
		}
	}
	if _, err := DecodeXRelationJSON(strings.NewReader(`{"name":"R","schema":["a"],"xtuples":[{"id":"t","alts":[]}]}`)); err == nil {
		t.Error("x-tuple without alternatives must fail validation")
	}
}
