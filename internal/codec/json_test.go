package codec

import (
	"bytes"
	"strings"
	"testing"

	"probdedup/internal/paperdata"
	"probdedup/internal/pdb"
)

func TestJSONRelationRoundTrip(t *testing.T) {
	for _, r := range []*pdb.Relation{paperdata.R1(), paperdata.R2()} {
		var buf bytes.Buffer
		if err := EncodeRelationJSON(&buf, r); err != nil {
			t.Fatal(err)
		}
		back, err := DecodeRelationJSON(&buf)
		if err != nil {
			t.Fatalf("%s: %v", r.Name, err)
		}
		if back.String() != r.String() {
			t.Fatalf("round trip mismatch:\n%s\nvs\n%s", back, r)
		}
	}
}

func TestJSONXRelationRoundTrip(t *testing.T) {
	for _, r := range []*pdb.XRelation{paperdata.R3(), paperdata.R4(), paperdata.R34()} {
		var buf bytes.Buffer
		if err := EncodeXRelationJSON(&buf, r); err != nil {
			t.Fatal(err)
		}
		back, err := DecodeXRelationJSON(&buf)
		if err != nil {
			t.Fatalf("%s: %v", r.Name, err)
		}
		if back.String() != r.String() {
			t.Fatalf("round trip mismatch:\n%s\nvs\n%s", back, r)
		}
	}
}

func TestJSONNullEncoding(t *testing.T) {
	// ⊥ mass appears as an entry with "v": null.
	r := pdb.NewRelation("R", "a").Append(
		pdb.NewTuple("t1", 1,
			pdb.MustDist(pdb.Alternative{Value: pdb.V("x"), P: 0.6})))
	var buf bytes.Buffer
	if err := EncodeRelationJSON(&buf, r); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"v": null`) {
		t.Fatalf("⊥ not encoded:\n%s", buf.String())
	}
	back, err := DecodeRelationJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got := back.Tuples[0].Attrs[0].NullP(); got < 0.39 || got > 0.41 {
		t.Fatalf("⊥ mass lost: %v", got)
	}
}

func TestJSONLiteralWithOmittedP(t *testing.T) {
	src := `{
	  "name": "R",
	  "schema": ["a"],
	  "tuples": [{"id": "t1", "p": 1, "attrs": [[{"v": "x"}]]}]
	}`
	r, err := DecodeRelationJSON(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if !r.Tuples[0].Attrs[0].IsCertain() {
		t.Fatalf("omitted p must mean certainty: %v", r.Tuples[0].Attrs[0])
	}
}

func TestJSONDecodeErrors(t *testing.T) {
	cases := []struct{ name, src string }{
		{"syntax", `{`},
		{"bad prob sum", `{"name":"R","schema":["a"],"tuples":[{"id":"t1","p":1,"attrs":[[{"v":"x","p":0.9},{"v":"y","p":0.3}]]}]}`},
		{"zero tuple p", `{"name":"R","schema":["a"],"tuples":[{"id":"t1","p":0,"attrs":[[{"v":"x"}]]}]}`},
		{"arity", `{"name":"R","schema":["a","b"],"tuples":[{"id":"t1","p":1,"attrs":[[{"v":"x"}]]}]}`},
	}
	for _, c := range cases {
		if _, err := DecodeRelationJSON(strings.NewReader(c.src)); err == nil {
			t.Errorf("%s: want error", c.name)
		}
	}
	if _, err := DecodeXRelationJSON(strings.NewReader(`{"name":"R","schema":["a"],"xtuples":[{"id":"t","alts":[]}]}`)); err == nil {
		t.Error("x-tuple without alternatives must fail validation")
	}
}

func TestXTupleJSONRoundTrip(t *testing.T) {
	x := pdb.NewXTuple("t41",
		pdb.NewAltDists(0.6, pdb.Certain("John"), pdb.MustDist(
			pdb.Alternative{Value: pdb.V("pilot"), P: 0.7})),
		pdb.NewAlt(0.4, "Jon", "pilot"),
	)
	var buf bytes.Buffer
	if err := EncodeXTupleJSON(&buf, x); err != nil {
		t.Fatal(err)
	}
	line := buf.String()
	if strings.Count(line, "\n") != 1 || !strings.HasSuffix(line, "\n") {
		t.Fatalf("not a single NDJSON line: %q", line)
	}
	back, err := DecodeXTupleJSON([]byte(line))
	if err != nil {
		t.Fatal(err)
	}
	if back.ID != x.ID || len(back.Alts) != len(x.Alts) {
		t.Fatalf("roundtrip mismatch: %v vs %v", back, x)
	}
	if err := back.Validate(2); err != nil {
		t.Fatal(err)
	}
	if got, want := back.Alts[0].P, 0.6; got != want {
		t.Fatalf("alt[0].P = %v, want %v", got, want)
	}
}

func TestXTupleJSONLiftsTupleForm(t *testing.T) {
	x, err := DecodeXTupleJSON([]byte(`{"id":"a","p":0.8,"attrs":[[{"v":"Tim","p":0.9}],[{"v":"pilot"}]]}`))
	if err != nil {
		t.Fatal(err)
	}
	if len(x.Alts) != 1 || x.Alts[0].P != 0.8 {
		t.Fatalf("lift mismatch: %+v", x)
	}
	if err := x.Validate(2); err != nil {
		t.Fatal(err)
	}
	// Omitted p means a certainly-present tuple.
	x2, err := DecodeXTupleJSON([]byte(`{"id":"b","attrs":[[{"v":"Tim"}],[{"v":"pilot"}]]}`))
	if err != nil {
		t.Fatal(err)
	}
	if x2.P() != 1 {
		t.Fatalf("P = %v, want 1", x2.P())
	}
	if _, err := DecodeXTupleJSON([]byte("{broken")); err == nil {
		t.Fatal("want an error for malformed JSON")
	}
	// Mixing the x-tuple form with top-level p/attrs is ambiguous and
	// must error instead of silently dropping the membership.
	for _, mixed := range []string{
		`{"id":"m","p":0.5,"alts":[{"p":1,"values":[[{"v":"Tim"}]]}]}`,
		`{"id":"m","attrs":[[{"v":"Tim"}]],"alts":[{"p":1,"values":[[{"v":"Tim"}]]}]}`,
	} {
		if _, err := DecodeXTupleJSON([]byte(mixed)); err == nil {
			t.Fatalf("want an error for mixed form %s", mixed)
		}
	}
}
