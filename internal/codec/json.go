package codec

import (
	"encoding/json"
	"fmt"
	"io"

	"probdedup/internal/pdb"
)

// JSON wire format. Attribute cells are arrays of {v, p} objects; a missing
// "v" (null entry) carries explicit ⊥ probability mass; certain values may
// be written as a single-element array with p omitted (meaning 1).

type jsonAlt struct {
	V *string  `json:"v"` // nil = ⊥
	P *float64 `json:"p,omitempty"`
}

type jsonDist []jsonAlt

type jsonTuple struct {
	ID    string     `json:"id"`
	P     float64    `json:"p"`
	Attrs []jsonDist `json:"attrs"`
}

type jsonRelation struct {
	Name   string      `json:"name"`
	Schema []string    `json:"schema"`
	Tuples []jsonTuple `json:"tuples"`
}

type jsonXAlt struct {
	P      float64    `json:"p"`
	Values []jsonDist `json:"values"`
}

type jsonXTuple struct {
	ID   string     `json:"id"`
	Alts []jsonXAlt `json:"alts"`
}

type jsonXRelation struct {
	Name   string       `json:"name"`
	Schema []string     `json:"schema"`
	Tuples []jsonXTuple `json:"xtuples"`
}

func distToJSON(d pdb.Dist) jsonDist {
	out := make(jsonDist, 0, d.Len()+1)
	for _, a := range d.Alternatives() {
		v := a.Value.S()
		p := a.P
		out = append(out, jsonAlt{V: &v, P: &p})
	}
	if np := d.NullP(); np > pdb.Eps {
		p := np
		out = append(out, jsonAlt{V: nil, P: &p})
	}
	return out
}

func distFromJSON(jd jsonDist) (pdb.Dist, error) {
	alts := make([]pdb.Alternative, 0, len(jd))
	for _, ja := range jd {
		p := 1.0
		if ja.P != nil {
			p = *ja.P
		}
		v := pdb.Null
		if ja.V != nil {
			v = pdb.V(*ja.V)
		}
		alts = append(alts, pdb.Alternative{Value: v, P: p})
	}
	return pdb.NewDist(alts...)
}

// EncodeRelationJSON writes a dependency-free relation as JSON.
func EncodeRelationJSON(w io.Writer, r *pdb.Relation) error {
	jr := jsonRelation{Name: r.Name, Schema: r.Schema}
	for _, t := range r.Tuples {
		jt := jsonTuple{ID: t.ID, P: t.P}
		for _, d := range t.Attrs {
			jt.Attrs = append(jt.Attrs, distToJSON(d))
		}
		jr.Tuples = append(jr.Tuples, jt)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(jr)
}

// DecodeRelationJSON reads a dependency-free relation from JSON.
func DecodeRelationJSON(r io.Reader) (*pdb.Relation, error) {
	var jr jsonRelation
	if err := json.NewDecoder(r).Decode(&jr); err != nil {
		return nil, fmt.Errorf("codec: %w", err)
	}
	rel := pdb.NewRelation(jr.Name, jr.Schema...)
	for _, jt := range jr.Tuples {
		attrs := make([]pdb.Dist, 0, len(jt.Attrs))
		for i, jd := range jt.Attrs {
			d, err := distFromJSON(jd)
			if err != nil {
				return nil, fmt.Errorf("codec: tuple %s attribute %d: %w", jt.ID, i, err)
			}
			attrs = append(attrs, d)
		}
		rel.Append(pdb.NewTuple(jt.ID, jt.P, attrs...))
	}
	if err := rel.Validate(); err != nil {
		return nil, err
	}
	return rel, nil
}

// EncodeXRelationJSON writes an x-relation as JSON.
func EncodeXRelationJSON(w io.Writer, r *pdb.XRelation) error {
	jr := jsonXRelation{Name: r.Name, Schema: r.Schema}
	for _, x := range r.Tuples {
		jx := jsonXTuple{ID: x.ID}
		for _, alt := range x.Alts {
			ja := jsonXAlt{P: alt.P}
			for _, d := range alt.Values {
				ja.Values = append(ja.Values, distToJSON(d))
			}
			jx.Alts = append(jx.Alts, ja)
		}
		jr.Tuples = append(jr.Tuples, jx)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(jr)
}

// DecodeXRelationJSON reads an x-relation from JSON.
func DecodeXRelationJSON(r io.Reader) (*pdb.XRelation, error) {
	var jr jsonXRelation
	if err := json.NewDecoder(r).Decode(&jr); err != nil {
		return nil, fmt.Errorf("codec: %w", err)
	}
	rel := pdb.NewXRelation(jr.Name, jr.Schema...)
	for _, jx := range jr.Tuples {
		x := &pdb.XTuple{ID: jx.ID}
		for ai, ja := range jx.Alts {
			values := make([]pdb.Dist, 0, len(ja.Values))
			for i, jd := range ja.Values {
				d, err := distFromJSON(jd)
				if err != nil {
					return nil, fmt.Errorf("codec: x-tuple %s alt %d attribute %d: %w", jx.ID, ai, i, err)
				}
				values = append(values, d)
			}
			x.Alts = append(x.Alts, pdb.Alt{Values: values, P: ja.P})
		}
		rel.Append(x)
	}
	if err := rel.Validate(); err != nil {
		return nil, err
	}
	return rel, nil
}

// jsonAnyTuple is the NDJSON line format of one tuple: either the
// x-tuple form ("alts") or the dependency-free form ("attrs" with an
// optional membership probability "p", lifted to a one-alternative
// x-tuple).
type jsonAnyTuple struct {
	ID    string     `json:"id"`
	P     *float64   `json:"p,omitempty"`
	Alts  []jsonXAlt `json:"alts,omitempty"`
	Attrs []jsonDist `json:"attrs,omitempty"`
}

// EncodeXTupleJSON writes one x-tuple as a single JSON line (the
// NDJSON unit consumed by pdedup -follow).
func EncodeXTupleJSON(w io.Writer, x *pdb.XTuple) error {
	jx := jsonXTuple{ID: x.ID}
	for _, alt := range x.Alts {
		ja := jsonXAlt{P: alt.P}
		for _, d := range alt.Values {
			ja.Values = append(ja.Values, distToJSON(d))
		}
		jx.Alts = append(jx.Alts, ja)
	}
	data, err := json.Marshal(jx)
	if err != nil {
		return fmt.Errorf("codec: %w", err)
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// DecodeXTupleJSON reads one tuple from a JSON document (typically
// one NDJSON line): the x-tuple form {"id","alts":[{"p","values"}]}
// is taken as is; the dependency-free form {"id","p","attrs"} is
// lifted losslessly to a one-alternative x-tuple whose attribute
// values stay uncertain. The tuple is not validated against a schema
// — the consumer knows the arity (pdb.XTuple.Validate).
func DecodeXTupleJSON(data []byte) (*pdb.XTuple, error) {
	var jt jsonAnyTuple
	if err := json.Unmarshal(data, &jt); err != nil {
		return nil, fmt.Errorf("codec: %w", err)
	}
	x := &pdb.XTuple{ID: jt.ID}
	if len(jt.Alts) > 0 {
		// Membership lives on the alternatives in the x-tuple form; a
		// top-level "p" or "attrs" alongside "alts" is ambiguous and
		// must not be dropped silently.
		if jt.P != nil || len(jt.Attrs) > 0 {
			return nil, fmt.Errorf("codec: tuple %s mixes the x-tuple form (alts) with the dependency-free form (p/attrs)", jt.ID)
		}
		for ai, ja := range jt.Alts {
			values := make([]pdb.Dist, 0, len(ja.Values))
			for i, jd := range ja.Values {
				d, err := distFromJSON(jd)
				if err != nil {
					return nil, fmt.Errorf("codec: x-tuple %s alt %d attribute %d: %w", jt.ID, ai, i, err)
				}
				values = append(values, d)
			}
			x.Alts = append(x.Alts, pdb.Alt{Values: values, P: ja.P})
		}
		return x, nil
	}
	p := 1.0
	if jt.P != nil {
		p = *jt.P
	}
	values := make([]pdb.Dist, 0, len(jt.Attrs))
	for i, jd := range jt.Attrs {
		d, err := distFromJSON(jd)
		if err != nil {
			return nil, fmt.Errorf("codec: tuple %s attribute %d: %w", jt.ID, i, err)
		}
		values = append(values, d)
	}
	x.Alts = []pdb.Alt{{Values: values, P: p}}
	return x, nil
}
