package codec

import (
	"bytes"
	"testing"

	"probdedup/internal/dataset"
)

// TestQuickRoundTripRandomCorpora round-trips randomly generated relations
// through both codecs: encode(decode(encode(x))) must be stable and the
// decoded relation must render identically.
func TestQuickRoundTripRandomCorpora(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		cfg := dataset.DefaultConfig(10, seed)
		cfg.UncertainRate = 0.8 // stress distributions
		cfg.NullRate = 0.4      // stress ⊥ encoding
		d := dataset.Generate(cfg)

		// Text codec, dependency-free.
		var buf bytes.Buffer
		if err := EncodeRelation(&buf, d.A); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		back, err := DecodeRelation(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, buf.String())
		}
		if back.String() != d.A.String() {
			t.Fatalf("seed %d: text relation round trip mismatch", seed)
		}
		var buf2 bytes.Buffer
		if err := EncodeRelation(&buf2, back); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
			t.Fatalf("seed %d: text encoding not stable", seed)
		}

		// Text codec, x-relation.
		buf.Reset()
		if err := EncodeXRelation(&buf, d.XA); err != nil {
			t.Fatal(err)
		}
		xback, err := DecodeXRelation(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if xback.String() != d.XA.String() {
			t.Fatalf("seed %d: text x-relation round trip mismatch", seed)
		}

		// JSON codec, both flavours.
		buf.Reset()
		if err := EncodeRelationJSON(&buf, d.B); err != nil {
			t.Fatal(err)
		}
		jback, err := DecodeRelationJSON(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if jback.String() != d.B.String() {
			t.Fatalf("seed %d: json relation round trip mismatch", seed)
		}
		buf.Reset()
		if err := EncodeXRelationJSON(&buf, d.XB); err != nil {
			t.Fatal(err)
		}
		jxback, err := DecodeXRelationJSON(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if jxback.String() != d.XB.String() {
			t.Fatalf("seed %d: json x-relation round trip mismatch", seed)
		}
	}
}
