// Package codec reads and writes probabilistic relations and x-relations in
// a line-oriented text format used by the command-line tools and examples.
//
// Format (tab-separated cells, '#' starts a comment line):
//
//	relation R1
//	schema	name	job
//	t11	1.0	Tim	machinist:0.7|mechanic:0.2
//	t12	1.0	John:0.5|Johan:0.5	baker:0.7|confectioner:0.3
//
//	xrelation R3
//	schema	name	job
//	xtuple	t31
//	alt	0.7	John	pilot
//	alt	0.3	Johan	musician:0.5|muralist:0.5
//
// An attribute cell is either a bare value (certain), "_" (certain ⊥), or a
// '|'-separated list of value:probability alternatives whose probabilities
// sum to at most 1 (the remainder is ⊥ mass). Values must not contain tab,
// '|' or ':'.
package codec

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"probdedup/internal/pdb"
)

// EncodeRelation writes a dependency-free relation.
func EncodeRelation(w io.Writer, r *pdb.Relation) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "relation %s\n", r.Name)
	fmt.Fprintf(bw, "schema\t%s\n", strings.Join(r.Schema, "\t"))
	for _, t := range r.Tuples {
		cells := make([]string, 0, len(t.Attrs)+2)
		cells = append(cells, t.ID, formatProb(t.P))
		for _, d := range t.Attrs {
			cells = append(cells, encodeDist(d))
		}
		fmt.Fprintln(bw, strings.Join(cells, "\t"))
	}
	return bw.Flush()
}

// EncodeXRelation writes an x-relation.
func EncodeXRelation(w io.Writer, r *pdb.XRelation) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "xrelation %s\n", r.Name)
	fmt.Fprintf(bw, "schema\t%s\n", strings.Join(r.Schema, "\t"))
	for _, x := range r.Tuples {
		fmt.Fprintf(bw, "xtuple\t%s\n", x.ID)
		for _, alt := range x.Alts {
			cells := make([]string, 0, len(alt.Values)+2)
			cells = append(cells, "alt", formatProb(alt.P))
			for _, d := range alt.Values {
				cells = append(cells, encodeDist(d))
			}
			fmt.Fprintln(bw, strings.Join(cells, "\t"))
		}
	}
	return bw.Flush()
}

func formatProb(p float64) string {
	return strconv.FormatFloat(p, 'g', -1, 64)
}

func encodeDist(d pdb.Dist) string {
	if d.Len() == 0 {
		return "_"
	}
	if d.IsCertain() {
		return d.Alternatives()[0].Value.S()
	}
	parts := make([]string, 0, d.Len())
	for _, a := range d.Alternatives() {
		parts = append(parts, fmt.Sprintf("%s:%s", a.Value.S(), formatProb(a.P)))
	}
	return strings.Join(parts, "|")
}

// DecodeRelation parses a dependency-free relation.
func DecodeRelation(r io.Reader) (*pdb.Relation, error) {
	p := &parser{s: bufio.NewScanner(r)}
	name, err := p.header("relation")
	if err != nil {
		return nil, err
	}
	schema, err := p.schema()
	if err != nil {
		return nil, err
	}
	rel := pdb.NewRelation(name, schema...)
	for p.next() {
		cells := strings.Split(p.line, "\t")
		if len(cells) != len(schema)+2 {
			return nil, p.errf("tuple line has %d cells, want %d", len(cells), len(schema)+2)
		}
		prob, err := strconv.ParseFloat(cells[1], 64)
		if err != nil {
			return nil, p.errf("bad tuple probability %q", cells[1])
		}
		attrs := make([]pdb.Dist, len(schema))
		for i, cell := range cells[2:] {
			d, err := decodeDist(cell)
			if err != nil {
				return nil, p.errf("attribute %d: %v", i, err)
			}
			attrs[i] = d
		}
		rel.Append(pdb.NewTuple(cells[0], prob, attrs...))
	}
	if err := p.s.Err(); err != nil {
		return nil, err
	}
	if err := rel.Validate(); err != nil {
		return nil, err
	}
	return rel, nil
}

// DecodeXRelation parses an x-relation.
func DecodeXRelation(r io.Reader) (*pdb.XRelation, error) {
	p := &parser{s: bufio.NewScanner(r)}
	name, err := p.header("xrelation")
	if err != nil {
		return nil, err
	}
	schema, err := p.schema()
	if err != nil {
		return nil, err
	}
	rel := pdb.NewXRelation(name, schema...)
	var cur *pdb.XTuple
	flush := func() {
		if cur != nil {
			rel.Append(cur)
			cur = nil
		}
	}
	for p.next() {
		cells := strings.Split(p.line, "\t")
		switch cells[0] {
		case "xtuple":
			if len(cells) != 2 {
				return nil, p.errf("xtuple line needs exactly an ID")
			}
			flush()
			cur = &pdb.XTuple{ID: cells[1]}
		case "alt":
			if cur == nil {
				return nil, p.errf("alt line before any xtuple")
			}
			if len(cells) != len(schema)+2 {
				return nil, p.errf("alt line has %d cells, want %d", len(cells), len(schema)+2)
			}
			prob, err := strconv.ParseFloat(cells[1], 64)
			if err != nil {
				return nil, p.errf("bad alternative probability %q", cells[1])
			}
			values := make([]pdb.Dist, len(schema))
			for i, cell := range cells[2:] {
				d, err := decodeDist(cell)
				if err != nil {
					return nil, p.errf("attribute %d: %v", i, err)
				}
				values[i] = d
			}
			cur.Alts = append(cur.Alts, pdb.Alt{Values: values, P: prob})
		default:
			return nil, p.errf("unexpected line %q", p.line)
		}
	}
	flush()
	if err := p.s.Err(); err != nil {
		return nil, err
	}
	if err := rel.Validate(); err != nil {
		return nil, err
	}
	return rel, nil
}

func decodeDist(cell string) (pdb.Dist, error) {
	if cell == "_" {
		return pdb.CertainNull(), nil
	}
	if !strings.Contains(cell, ":") {
		if cell == "" {
			return pdb.Dist{}, fmt.Errorf("empty attribute cell")
		}
		return pdb.Certain(cell), nil
	}
	var alts []pdb.Alternative
	for _, part := range strings.Split(cell, "|") {
		v, ps, ok := strings.Cut(part, ":")
		if !ok {
			return pdb.Dist{}, fmt.Errorf("alternative %q missing probability", part)
		}
		prob, err := strconv.ParseFloat(ps, 64)
		if err != nil {
			return pdb.Dist{}, fmt.Errorf("bad probability in %q", part)
		}
		val := pdb.V(v)
		if v == "_" {
			val = pdb.Null
		}
		alts = append(alts, pdb.Alternative{Value: val, P: prob})
	}
	return pdb.NewDist(alts...)
}

type parser struct {
	s    *bufio.Scanner
	line string
	n    int
}

// next advances to the next non-empty, non-comment line.
func (p *parser) next() bool {
	for p.s.Scan() {
		p.n++
		p.line = strings.TrimRight(p.s.Text(), "\r\n")
		trimmed := strings.TrimSpace(p.line)
		if trimmed == "" || strings.HasPrefix(trimmed, "#") {
			continue
		}
		return true
	}
	return false
}

func (p *parser) errf(format string, args ...interface{}) error {
	return fmt.Errorf("line %d: %s", p.n, fmt.Sprintf(format, args...))
}

func (p *parser) header(kind string) (string, error) {
	if !p.next() {
		return "", fmt.Errorf("codec: empty input")
	}
	fields := strings.Fields(p.line)
	if len(fields) != 2 || fields[0] != kind {
		return "", p.errf("expected %q header, got %q", kind, p.line)
	}
	return fields[1], nil
}

func (p *parser) schema() ([]string, error) {
	if !p.next() {
		return nil, fmt.Errorf("codec: missing schema line")
	}
	cells := strings.Split(p.line, "\t")
	if cells[0] != "schema" || len(cells) < 2 {
		return nil, p.errf("expected schema line, got %q", p.line)
	}
	return cells[1:], nil
}
