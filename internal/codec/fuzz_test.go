package codec

import (
	"bytes"
	"strings"
	"testing"
)

// Fuzz targets: decoding arbitrary input must never panic, and anything
// that decodes successfully must re-encode and decode to the same
// relation (round-trip closure).

func FuzzDecodeRelation(f *testing.F) {
	f.Add("relation R\nschema\tname\tjob\nt1\t1.0\tTim\tmachinist:0.7|mechanic:0.2\n")
	f.Add("relation R\nschema\ta\nt1\t0.5\t_\n")
	f.Add("# comment\nrelation X\nschema\ta\tb\n")
	f.Add("relation R\nschema\ta\nt1\tNaN\tx\n")
	f.Add("relation R\nschema\ta\nt1\t1.0\tx:abc\n")
	f.Add("")
	f.Fuzz(func(t *testing.T, src string) {
		r, err := DecodeRelation(strings.NewReader(src))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := EncodeRelation(&buf, r); err != nil {
			t.Fatalf("decoded relation failed to encode: %v", err)
		}
		back, err := DecodeRelation(&buf)
		if err != nil {
			t.Fatalf("re-decode failed: %v\n%s", err, buf.String())
		}
		if back.String() != r.String() {
			t.Fatalf("round trip changed the relation")
		}
	})
}

func FuzzDecodeXRelation(f *testing.F) {
	f.Add("xrelation R\nschema\tname\tjob\nxtuple\tt1\nalt\t0.7\tJohn\tpilot\n")
	f.Add("xrelation R\nschema\ta\nxtuple\tt\nalt\t0.5\tx:0.5|_:0.5\n")
	f.Add("xrelation R\nschema\ta\nalt\t1\tx\n")
	f.Add("xrelation R\nschema\ta\nxtuple\tt\nalt\t2\tx\n")
	f.Fuzz(func(t *testing.T, src string) {
		r, err := DecodeXRelation(strings.NewReader(src))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := EncodeXRelation(&buf, r); err != nil {
			t.Fatalf("decoded x-relation failed to encode: %v", err)
		}
		if _, err := DecodeXRelation(&buf); err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
	})
}

// FuzzDecodeXTupleJSON covers the NDJSON tuple line — the untrusted
// unit pdedup -follow reads from stdin: decoding arbitrary bytes must
// never panic, and every accepted tuple must reach a round-trip fixed
// point — decode→encode→decode yields a tuple whose re-encoding is
// byte-identical (the encoded form is canonical).
func FuzzDecodeXTupleJSON(f *testing.F) {
	f.Add(`{"id":"t1","alts":[{"p":1,"values":[[{"v":"Tim"}],[{"v":"pilot"}]]}]}`)
	f.Add(`{"id":"t2","p":0.8,"attrs":[[{"v":"x","p":0.5},{"v":null,"p":0.5}]]}`)
	f.Add(`{"id":"t3","alts":[{"p":0.7,"values":[[{"v":"a"}]]},{"p":0.3,"values":[[{"v":"b"}]]}]}`)
	f.Add(`{"id":"bad","p":1,"alts":[{"p":1,"values":[[{"v":"x"}]]}]}`)
	f.Add(`{"id":"t4","attrs":[]}`)
	f.Add(`{}`)
	f.Add(`[`)
	f.Add(``)
	f.Fuzz(func(t *testing.T, src string) {
		x, err := DecodeXTupleJSON([]byte(src))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := EncodeXTupleJSON(&buf, x); err != nil {
			t.Fatalf("decoded x-tuple failed to encode: %v", err)
		}
		once := buf.String()
		back, err := DecodeXTupleJSON(buf.Bytes())
		if err != nil {
			t.Fatalf("re-decode failed: %v\n%s", err, once)
		}
		buf.Reset()
		if err := EncodeXTupleJSON(&buf, back); err != nil {
			t.Fatalf("re-decoded x-tuple failed to encode: %v", err)
		}
		if buf.String() != once {
			t.Fatalf("decode→encode→decode is not a fixed point:\nfirst:  %ssecond: %s", once, buf.String())
		}
	})
}

func FuzzDecodeRelationJSON(f *testing.F) {
	f.Add(`{"name":"R","schema":["a"],"tuples":[{"id":"t1","p":1,"attrs":[[{"v":"x"}]]}]}`)
	f.Add(`{"name":"R","schema":["a"],"tuples":[{"id":"t1","p":1,"attrs":[[{"v":null,"p":1}]]}]}`)
	f.Add(`{}`)
	f.Add(`[`)
	f.Fuzz(func(t *testing.T, src string) {
		r, err := DecodeRelationJSON(strings.NewReader(src))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := EncodeRelationJSON(&buf, r); err != nil {
			t.Fatalf("decoded relation failed to encode: %v", err)
		}
	})
}
