package codec

import (
	"bytes"
	"strings"
	"testing"
)

// Fuzz targets: decoding arbitrary input must never panic, and anything
// that decodes successfully must re-encode and decode to the same
// relation (round-trip closure).

func FuzzDecodeRelation(f *testing.F) {
	f.Add("relation R\nschema\tname\tjob\nt1\t1.0\tTim\tmachinist:0.7|mechanic:0.2\n")
	f.Add("relation R\nschema\ta\nt1\t0.5\t_\n")
	f.Add("# comment\nrelation X\nschema\ta\tb\n")
	f.Add("relation R\nschema\ta\nt1\tNaN\tx\n")
	f.Add("relation R\nschema\ta\nt1\t1.0\tx:abc\n")
	f.Add("")
	f.Fuzz(func(t *testing.T, src string) {
		r, err := DecodeRelation(strings.NewReader(src))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := EncodeRelation(&buf, r); err != nil {
			t.Fatalf("decoded relation failed to encode: %v", err)
		}
		back, err := DecodeRelation(&buf)
		if err != nil {
			t.Fatalf("re-decode failed: %v\n%s", err, buf.String())
		}
		if back.String() != r.String() {
			t.Fatalf("round trip changed the relation")
		}
	})
}

func FuzzDecodeXRelation(f *testing.F) {
	f.Add("xrelation R\nschema\tname\tjob\nxtuple\tt1\nalt\t0.7\tJohn\tpilot\n")
	f.Add("xrelation R\nschema\ta\nxtuple\tt\nalt\t0.5\tx:0.5|_:0.5\n")
	f.Add("xrelation R\nschema\ta\nalt\t1\tx\n")
	f.Add("xrelation R\nschema\ta\nxtuple\tt\nalt\t2\tx\n")
	f.Fuzz(func(t *testing.T, src string) {
		r, err := DecodeXRelation(strings.NewReader(src))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := EncodeXRelation(&buf, r); err != nil {
			t.Fatalf("decoded x-relation failed to encode: %v", err)
		}
		if _, err := DecodeXRelation(&buf); err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
	})
}

func FuzzDecodeRelationJSON(f *testing.F) {
	f.Add(`{"name":"R","schema":["a"],"tuples":[{"id":"t1","p":1,"attrs":[[{"v":"x"}]]}]}`)
	f.Add(`{"name":"R","schema":["a"],"tuples":[{"id":"t1","p":1,"attrs":[[{"v":null,"p":1}]]}]}`)
	f.Add(`{}`)
	f.Add(`[`)
	f.Fuzz(func(t *testing.T, src string) {
		r, err := DecodeRelationJSON(strings.NewReader(src))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := EncodeRelationJSON(&buf, r); err != nil {
			t.Fatalf("decoded relation failed to encode: %v", err)
		}
	})
}
