package codec

import (
	"bytes"
	"strings"
	"testing"

	"probdedup/internal/paperdata"
	"probdedup/internal/pdb"
)

func TestRelationRoundTrip(t *testing.T) {
	for _, r := range []*pdb.Relation{paperdata.R1(), paperdata.R2()} {
		var buf bytes.Buffer
		if err := EncodeRelation(&buf, r); err != nil {
			t.Fatal(err)
		}
		back, err := DecodeRelation(&buf)
		if err != nil {
			t.Fatalf("%s: %v\n%s", r.Name, err, buf.String())
		}
		if back.String() != r.String() {
			t.Fatalf("round trip mismatch:\n%s\nvs\n%s", back, r)
		}
	}
}

func TestXRelationRoundTrip(t *testing.T) {
	for _, r := range []*pdb.XRelation{paperdata.R3(), paperdata.R4(), paperdata.R34()} {
		var buf bytes.Buffer
		if err := EncodeXRelation(&buf, r); err != nil {
			t.Fatal(err)
		}
		back, err := DecodeXRelation(&buf)
		if err != nil {
			t.Fatalf("%s: %v\n%s", r.Name, err, buf.String())
		}
		if back.String() != r.String() {
			t.Fatalf("round trip mismatch:\n%s\nvs\n%s", back, r)
		}
	}
}

func TestDecodeRelationLiteral(t *testing.T) {
	src := `# paper relation R1
relation R1
schema	name	job
t11	1.0	Tim	machinist:0.7|mechanic:0.2

t13	0.6	Tim:0.6|Tom:0.4	machinist
`
	r, err := DecodeRelation(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Tuples) != 2 || r.Name != "R1" {
		t.Fatalf("decoded %v", r)
	}
	t11 := r.TupleByID("t11")
	if t11.Attrs[1].P(pdb.V("machinist")) != 0.7 {
		t.Fatalf("t11.job = %v", t11.Attrs[1])
	}
	if t11.Attrs[0].String() != "Tim" {
		t.Fatalf("t11.name = %v", t11.Attrs[0])
	}
}

func TestDecodeNullCells(t *testing.T) {
	src := "relation R\nschema\ta\nt1\t1.0\t_\n"
	r, err := DecodeRelation(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if !r.Tuples[0].Attrs[0].IsCertain() || r.Tuples[0].Attrs[0].NullP() != 1 {
		t.Fatalf("cell _ must decode to certain ⊥, got %v", r.Tuples[0].Attrs[0])
	}
	// Explicit null alternative inside a distribution.
	src2 := "relation R\nschema\ta\nt1\t1.0\tx:0.5|_:0.5\n"
	r2, err := DecodeRelation(strings.NewReader(src2))
	if err != nil {
		t.Fatal(err)
	}
	if r2.Tuples[0].Attrs[0].NullP() != 0.5 {
		t.Fatalf("⊥ mass = %v", r2.Tuples[0].Attrs[0].NullP())
	}
}

func TestDecodeErrors(t *testing.T) {
	cases := []struct{ name, src string }{
		{"empty", ""},
		{"wrong header", "xrelation R\nschema\ta\n"},
		{"missing schema", "relation R\nt1\t1.0\tx\n"},
		{"cell count", "relation R\nschema\ta\tb\nt1\t1.0\tx\n"},
		{"bad prob", "relation R\nschema\ta\nt1\tabc\tx\n"},
		{"bad alt prob", "relation R\nschema\ta\nt1\t1.0\tx:zz\n"},
		{"prob sum", "relation R\nschema\ta\nt1\t1.0\tx:0.9|y:0.3\n"},
		{"dup id", "relation R\nschema\ta\nt1\t1.0\tx\nt1\t1.0\ty\n"},
		{"empty cell", "relation R\nschema\ta\nt1\t1.0\t\n"},
	}
	for _, c := range cases {
		if _, err := DecodeRelation(strings.NewReader(c.src)); err == nil {
			t.Errorf("%s: want error", c.name)
		}
	}
	xcases := []struct{ name, src string }{
		{"alt before xtuple", "xrelation R\nschema\ta\nalt\t1.0\tx\n"},
		{"bad line", "xrelation R\nschema\ta\nbogus\tfoo\n"},
		{"xtuple arity", "xrelation R\nschema\ta\nxtuple\tt1\textra\n"},
		{"alt cells", "xrelation R\nschema\ta\tb\nxtuple\tt1\nalt\t1.0\tx\n"},
		{"no alts", "xrelation R\nschema\ta\nxtuple\tt1\n"},
	}
	for _, c := range xcases {
		if _, err := DecodeXRelation(strings.NewReader(c.src)); err == nil {
			t.Errorf("%s: want error", c.name)
		}
	}
}

func TestErrorsCarryLineNumbers(t *testing.T) {
	src := "relation R\nschema\ta\n# comment\nt1\tbad\tx\n"
	_, err := DecodeRelation(strings.NewReader(src))
	if err == nil || !strings.Contains(err.Error(), "line 4") {
		t.Fatalf("want line 4 in error, got %v", err)
	}
}
