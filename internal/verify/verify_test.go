package verify

import (
	"math"
	"strings"
	"testing"
)

func almost(a, b float64) bool { return math.Abs(a-b) <= 1e-9 }

func TestNewPairCanonical(t *testing.T) {
	if NewPair("b", "a") != NewPair("a", "b") {
		t.Fatal("pair must canonicalize order")
	}
	s := PairSet{}
	s.Add("x", "a")
	if !s.Has("a", "x") || !s.Has("x", "a") {
		t.Fatal("Has must be order-insensitive")
	}
}

func TestPairSetSorted(t *testing.T) {
	s := NewPairSet(Pair{"c", "d"}, Pair{"b", "a"}, Pair{"a", "c"})
	got := s.Sorted()
	want := []Pair{{"a", "b"}, {"a", "c"}, {"c", "d"}}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sorted %v, want %v", got, want)
		}
	}
}

func TestEvaluateConfusion(t *testing.T) {
	truth := NewPairSet(Pair{"a", "b"}, Pair{"c", "d"}, Pair{"e", "f"})
	matches := NewPairSet(Pair{"a", "b"}, Pair{"x", "y"}) // 1 TP, 1 FP
	possible := NewPairSet(Pair{"c", "d"})                // 1 possible dup
	universe := []Pair{
		{"a", "b"}, {"c", "d"}, {"e", "f"}, {"x", "y"}, {"p", "q"},
	}
	r := Evaluate(matches, possible, truth, universe)
	if r.TP != 1 || r.FP != 1 || r.FN != 1 || r.TN != 1 || r.Possible != 1 || r.PossibleDuplicates != 1 {
		t.Fatalf("report %+v", r)
	}
	if !almost(r.Precision(), 0.5) || !almost(r.Recall(), 0.5) || !almost(r.F1(), 0.5) {
		t.Fatalf("P=%v R=%v F1=%v", r.Precision(), r.Recall(), r.F1())
	}
	if !almost(r.FalsePositivePct(), 0.5) || !almost(r.FalseNegativePct(), 0.5) {
		t.Fatalf("FP%%=%v FN%%=%v", r.FalsePositivePct(), r.FalseNegativePct())
	}
	if !strings.Contains(r.String(), "precision=0.5000") {
		t.Fatalf("String: %s", r)
	}
}

func TestEvaluateEdgeCases(t *testing.T) {
	// No declarations at all → precision 1 (vacuous), recall 0 if dups
	// exist.
	truth := NewPairSet(Pair{"a", "b"})
	r := Evaluate(PairSet{}, PairSet{}, truth, []Pair{{"a", "b"}})
	if !almost(r.Precision(), 1) || !almost(r.Recall(), 0) || !almost(r.F1(), 0) {
		t.Fatalf("%+v: P=%v R=%v", r, r.Precision(), r.Recall())
	}
	// No true duplicates → recall 1, FN% 0.
	r2 := Evaluate(PairSet{}, PairSet{}, PairSet{}, []Pair{{"a", "b"}})
	if !almost(r2.Recall(), 1) || !almost(r2.FalseNegativePct(), 0) {
		t.Fatalf("recall=%v", r2.Recall())
	}
}

func TestReductionMeasures(t *testing.T) {
	r := Reduction{CandidatePairs: 10, TotalPairs: 100, TrueInCandidates: 4, TrueTotal: 5}
	if !almost(r.ReductionRatio(), 0.9) {
		t.Errorf("RR = %v", r.ReductionRatio())
	}
	if !almost(r.PairsCompleteness(), 0.8) {
		t.Errorf("PC = %v", r.PairsCompleteness())
	}
	if !almost(r.PairQuality(), 0.4) {
		t.Errorf("PQ = %v", r.PairQuality())
	}
	if !strings.Contains(r.String(), "RR=0.9000") {
		t.Errorf("String: %s", r)
	}
	// Degenerate cases.
	zero := Reduction{}
	if !almost(zero.PairsCompleteness(), 1) || !almost(zero.PairQuality(), 1) || !almost(zero.ReductionRatio(), 0) {
		t.Error("degenerate reduction measures")
	}
}

func TestTable(t *testing.T) {
	tab := NewTable("method", "precision", "n")
	tab.AddRow("snm", 0.91234, 100)
	tab.AddRow("blocking-with-long-name", 1.0, 2)
	s := tab.String()
	if !strings.Contains(s, "method") || !strings.Contains(s, "0.9123") || !strings.Contains(s, "blocking-with-long-name") {
		t.Fatalf("table:\n%s", s)
	}
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table has %d lines", len(lines))
	}
}
