// Package verify implements the verification step of Sec. III-E: recall,
// precision, false negative percentage, false positive percentage and
// F1-measure of a duplicate detection run, plus the standard quality
// measures of search-space reduction methods (reduction ratio, pairs
// completeness, pair quality).
package verify

import (
	"fmt"
	"sort"
	"strings"
)

// Pair is an unordered tuple-ID pair; use NewPair so that (a,b) and (b,a)
// are the same key.
type Pair struct {
	A, B string
}

// NewPair returns the canonical ordering of a pair.
func NewPair(a, b string) Pair {
	if b < a {
		a, b = b, a
	}
	return Pair{A: a, B: b}
}

// PairSet is a set of unordered pairs.
type PairSet map[Pair]bool

// NewPairSet builds a set from pairs.
func NewPairSet(pairs ...Pair) PairSet {
	s := make(PairSet, len(pairs))
	for _, p := range pairs {
		s[NewPair(p.A, p.B)] = true
	}
	return s
}

// Add inserts a pair in canonical form.
func (s PairSet) Add(a, b string) { s[NewPair(a, b)] = true }

// Has reports membership in either order.
func (s PairSet) Has(a, b string) bool { return s[NewPair(a, b)] }

// Sorted returns the pairs in lexicographic order (for deterministic
// output).
func (s PairSet) Sorted() []Pair {
	out := make([]Pair, 0, len(s))
	for p := range s {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		return out[i].B < out[j].B
	})
	return out
}

// Report holds the effectiveness measures of one detection run.
type Report struct {
	// TP, FP, FN, TN are the confusion counts over compared pairs, where
	// "positive" means declared match (set M). Possible matches (set P) are
	// counted separately and excluded from the confusion matrix.
	TP, FP, FN, TN int
	// Possible is |P|: pairs deferred to clerical review.
	Possible int
	// PossibleDuplicates counts the members of P that are true duplicates.
	PossibleDuplicates int
}

// Evaluate compares declared matches M and possible matches P against the
// ground truth over the given universe of compared pairs. Pairs in the
// universe that appear in neither M nor P count as declared non-matches.
func Evaluate(matches, possible, truth PairSet, universe []Pair) Report {
	var r Report
	for _, p := range universe {
		isDup := truth[NewPair(p.A, p.B)]
		switch {
		case matches[NewPair(p.A, p.B)]:
			if isDup {
				r.TP++
			} else {
				r.FP++
			}
		case possible[NewPair(p.A, p.B)]:
			r.Possible++
			if isDup {
				r.PossibleDuplicates++
			}
		default:
			if isDup {
				r.FN++
			} else {
				r.TN++
			}
		}
	}
	return r
}

// Precision is TP/(TP+FP); 1.0 when nothing was declared.
func (r Report) Precision() float64 {
	if r.TP+r.FP == 0 {
		return 1
	}
	return float64(r.TP) / float64(r.TP+r.FP)
}

// Recall is TP/(TP+FN); 1.0 when no true duplicates exist.
func (r Report) Recall() float64 {
	if r.TP+r.FN == 0 {
		return 1
	}
	return float64(r.TP) / float64(r.TP+r.FN)
}

// F1 is the harmonic mean of precision and recall.
func (r Report) F1() float64 {
	p, q := r.Precision(), r.Recall()
	if p+q == 0 {
		return 0
	}
	return 2 * p * q / (p + q)
}

// FalsePositivePct is FP / declared matches.
func (r Report) FalsePositivePct() float64 {
	if r.TP+r.FP == 0 {
		return 0
	}
	return float64(r.FP) / float64(r.TP+r.FP)
}

// FalseNegativePct is FN / true duplicates.
func (r Report) FalseNegativePct() float64 {
	if r.TP+r.FN == 0 {
		return 0
	}
	return float64(r.FN) / float64(r.TP+r.FN)
}

// String renders the report as one summary line.
func (r Report) String() string {
	return fmt.Sprintf("TP=%d FP=%d FN=%d TN=%d |P|=%d precision=%.4f recall=%.4f F1=%.4f",
		r.TP, r.FP, r.FN, r.TN, r.Possible, r.Precision(), r.Recall(), r.F1())
}

// Reduction holds the quality measures of a search-space reduction method.
type Reduction struct {
	// CandidatePairs is the number of pairs the method emits.
	CandidatePairs int
	// TotalPairs is the size of the full cross product n(n-1)/2 (plus
	// cross-source pairs when applicable).
	TotalPairs int
	// TrueInCandidates counts true duplicate pairs among the candidates.
	TrueInCandidates int
	// TrueTotal counts all true duplicate pairs.
	TrueTotal int
}

// ReductionRatio is 1 − candidates/total: the fraction of comparisons
// avoided.
func (r Reduction) ReductionRatio() float64 {
	if r.TotalPairs == 0 {
		return 0
	}
	return 1 - float64(r.CandidatePairs)/float64(r.TotalPairs)
}

// PairsCompleteness is the fraction of true duplicate pairs retained by the
// reduction (the recall upper bound any downstream decision model can
// reach).
func (r Reduction) PairsCompleteness() float64 {
	if r.TrueTotal == 0 {
		return 1
	}
	return float64(r.TrueInCandidates) / float64(r.TrueTotal)
}

// PairQuality is the fraction of candidates that are true duplicates.
func (r Reduction) PairQuality() float64 {
	if r.CandidatePairs == 0 {
		return 1
	}
	return float64(r.TrueInCandidates) / float64(r.CandidatePairs)
}

// String renders the reduction measures as one summary line.
func (r Reduction) String() string {
	return fmt.Sprintf("candidates=%d/%d RR=%.4f PC=%.4f PQ=%.4f",
		r.CandidatePairs, r.TotalPairs, r.ReductionRatio(), r.PairsCompleteness(), r.PairQuality())
}

// Table is a minimal fixed-width text table builder used by the experiment
// harness to print paper-style result tables.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table { return &Table{header: header} }

// AddRow appends a row; values are formatted with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			for pad := len(c); pad < widths[i]; pad++ {
				b.WriteByte(' ')
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}
