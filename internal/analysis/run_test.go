package analysis

import (
	"errors"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

const runSrc = `package p

func A() {}

//pdlint:allow fake -- line-above form silences the decl below
func B() {}

func C() {} //pdlint:allow other -- a different analyzer's allow does not silence fake

func D() {} //pdlint:allow fake -- same-line form silences this decl
`

// checkSrc type-checks an import-free source string into a Package.
func checkSrc(t *testing.T, src string) *Package {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fake.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := newInfo()
	pkg, err := (&types.Config{}).Check("p", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatalf("type-check: %v", err)
	}
	return &Package{ImportPath: "p", Fset: fset, Files: []*ast.File{f}, Pkg: pkg, Info: info}
}

// fakeAnalyzer reports one diagnostic per function declaration, in
// reverse source order so the sorting contract is exercised.
var fakeAnalyzer = &Analyzer{
	Name: "fake",
	Doc:  "reports every function declaration",
	Run: func(pass *Pass) error {
		var decls []*ast.FuncDecl
		for _, f := range pass.Files {
			for _, d := range f.Decls {
				if fd, ok := d.(*ast.FuncDecl); ok {
					decls = append(decls, fd)
				}
			}
		}
		for i := len(decls) - 1; i >= 0; i-- {
			pass.Reportf(decls[i].Name.Pos(), "func %s declared", decls[i].Name.Name)
		}
		return nil
	},
}

func TestRunAnalyzersSuppressionAndOrder(t *testing.T) {
	pkg := checkSrc(t, runSrc)
	findings, err := RunAnalyzers(pkg, []*Analyzer{fakeAnalyzer})
	if err != nil {
		t.Fatalf("RunAnalyzers: %v", err)
	}
	// B (line-above allow) and D (same-line allow) are suppressed; C's
	// allow names a different analyzer and keeps the finding.
	var got []string
	for _, f := range findings {
		got = append(got, f.Message)
	}
	want := []string{"func A declared", "func C declared"}
	if len(got) != len(want) {
		t.Fatalf("findings %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("findings %v, want %v", got, want)
		}
	}
	if findings[0].Pos.Line >= findings[1].Pos.Line {
		t.Errorf("findings not in line order: %v then %v", findings[0].Pos, findings[1].Pos)
	}
	if findings[0].Analyzer != "fake" {
		t.Errorf("finding attributed to %q, want fake", findings[0].Analyzer)
	}
}

func TestRunAnalyzersError(t *testing.T) {
	pkg := checkSrc(t, "package p\n")
	boom := &Analyzer{Name: "boom", Doc: "always fails", Run: func(*Pass) error {
		return errors.New("exploded")
	}}
	if _, err := RunAnalyzers(pkg, []*Analyzer{boom}); err == nil {
		t.Fatal("analyzer error was swallowed")
	}
}

func TestParseAllow(t *testing.T) {
	cases := []struct {
		text string
		name string
		ok   bool
	}{
		{"//pdlint:allow nowallclock -- reason", "nowallclock", true},
		{"// pdlint:allow maporderdet -- spaced form", "maporderdet", true},
		{"//pdlint:allow emitunderlock", "emitunderlock", true},
		{"//pdlint:allow", "", false},
		{"// ordinary comment", "", false},
		{"//pdlint:deny x", "", false},
	}
	for _, c := range cases {
		name, ok := parseAllow(c.text)
		if name != c.name || ok != c.ok {
			t.Errorf("parseAllow(%q) = (%q, %v), want (%q, %v)", c.text, name, ok, c.name, c.ok)
		}
	}
}

func TestSuppressedMisses(t *testing.T) {
	sites := allowSites{"a.go": {3: {"fake": true}}}
	cases := []struct {
		file string
		line int
		name string
		want bool
	}{
		{"a.go", 3, "fake", true},
		{"a.go", 3, "other", false},
		{"a.go", 4, "fake", false},
		{"b.go", 3, "fake", false},
	}
	for _, c := range cases {
		pos := token.Position{Filename: c.file, Line: c.line}
		if got := sites.suppressed(pos, c.name); got != c.want {
			t.Errorf("suppressed(%s:%d, %s) = %v, want %v", c.file, c.line, c.name, got, c.want)
		}
	}
}

// TestRunAnalyzersTiebreaks drives the comparator's column and
// analyzer-name branches with two analyzers reporting at identical
// and column-shifted positions.
func TestRunAnalyzersTiebreaks(t *testing.T) {
	pkg := checkSrc(t, "package p\n\nfunc A() {}\n")
	at := func(name string, off token.Pos) *Analyzer {
		return &Analyzer{Name: name, Doc: "reports at a fixed position", Run: func(pass *Pass) error {
			pass.Reportf(pass.Files[0].Package+off, "from %s", name)
			return nil
		}}
	}
	findings, err := RunAnalyzers(pkg, []*Analyzer{at("zeta", 0), at("alpha", 0), at("mid", 2)})
	if err != nil {
		t.Fatalf("RunAnalyzers: %v", err)
	}
	var got []string
	for _, f := range findings {
		got = append(got, f.Analyzer)
	}
	want := []string{"alpha", "zeta", "mid"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order %v, want %v", got, want)
		}
	}
}
