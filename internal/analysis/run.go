package analysis

import (
	"fmt"
	"sort"
)

// RunAnalyzers executes each analyzer over the package, applies
// //pdlint:allow suppression, and returns the surviving findings in
// file/line/column order.
func RunAnalyzers(pkg *Package, analyzers []*Analyzer) ([]Finding, error) {
	allows := collectAllows(pkg)
	var findings []Finding
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Pkg,
			Info:     pkg.Info,
		}
		pass.report = func(d Diagnostic) {
			pos := pkg.Fset.Position(d.Pos)
			if allows.suppressed(pos, a.Name) {
				return
			}
			findings = append(findings, Finding{Analyzer: a.Name, Pos: pos, Message: d.Message})
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %v", pkg.ImportPath, a.Name, err)
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return findings, nil
}
