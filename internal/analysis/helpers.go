package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Unparen strips redundant parentheses.
func Unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// Callee resolves the object a call invokes: a *types.Func for direct
// function/method calls, a *types.Var for calls of stored function
// values (fields, locals, parameters), nil for indirect calls through
// arbitrary expressions or type conversions.
func Callee(info *types.Info, call *ast.CallExpr) types.Object {
	switch fun := Unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[fun]
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			return sel.Obj()
		}
		// Package-qualified reference (pkg.F).
		return info.Uses[fun.Sel]
	}
	return nil
}

// CalleeName returns the bare name of the called function, method or
// stored callback, or "" for unresolvable calls.
func CalleeName(info *types.Info, call *ast.CallExpr) string {
	if obj := Callee(info, call); obj != nil {
		return obj.Name()
	}
	return ""
}

// ReceiverTypeName returns the defined-type name of a method's
// receiver (pointer stripped), or "" for plain functions.
func ReceiverTypeName(f *types.Func) string {
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

// ExprKey renders a stable textual key for simple expressions
// (identifiers and selector chains), so lock and unlock calls on the
// same mutex pair up. Expressions beyond that vocabulary key by
// position, which makes them unique — a conservative choice that
// never pairs two different mutexes.
func ExprKey(fset *token.FileSet, e ast.Expr) string {
	switch e := Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return ExprKey(fset, e.X) + "." + e.Sel.Name
	case *ast.IndexExpr:
		return ExprKey(fset, e.X) + "[" + ExprKey(fset, e.Index) + "]"
	case *ast.BasicLit:
		return e.Value
	default:
		return fmt.Sprintf("@%v", fset.Position(e.Pos()))
	}
}

// IsFunctionLocal reports whether obj is declared inside a function
// (locals and parameters) rather than at package scope or as a struct
// field.
func IsFunctionLocal(pkg *types.Package, obj types.Object) bool {
	v, ok := obj.(*types.Var)
	if !ok || v.IsField() {
		return false
	}
	scope := v.Parent()
	return scope != nil && scope != types.Universe && scope != pkg.Scope()
}
