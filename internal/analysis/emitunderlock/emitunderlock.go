// Package emitunderlock proves the PR 4 emit-delivery invariant: no
// emit sink — a stored callback field (emit, onDelta), a call of a
// func-typed value so named, an EmitQueue.Drain, or any function in
// the package that transitively reaches one — may be called while a
// sync.Mutex or sync.RWMutex acquired in the same function is held.
// Emit callbacks are allowed to re-enter the engine (Stats, Len,
// Flush, Add, Remove), so delivering one under the state lock is a
// self-deadlock waiting for the first re-entrant consumer.
package emitunderlock

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"probdedup/internal/analysis"
)

// Analyzer flags emit delivery under a held mutex.
var Analyzer = &analysis.Analyzer{
	Name: "emitunderlock",
	Doc: "report calls of emit callbacks, EmitQueue drains, or functions reaching them " +
		"while a sync.Mutex/RWMutex locked in the same function is held " +
		"(the PR 4 emit-under-mutex deadlock class)",
	Run: run,
}

func run(pass *analysis.Pass) error {
	decls := funcDecls(pass)
	sinks := sinkFuncs(pass, decls)
	for _, fd := range decls {
		scanBody(pass, sinks, fd.Body)
	}
	// Closure bodies form their own lock scopes: a lock taken by the
	// enclosing function is invisible here (the closure may run on any
	// goroutine), and locks the closure takes itself are checked.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				scanBody(pass, sinks, lit.Body)
			}
			return true
		})
	}
	return nil
}

// funcDecls lists the package's function and method declarations with
// bodies.
func funcDecls(pass *analysis.Pass) []*ast.FuncDecl {
	var decls []*ast.FuncDecl
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				decls = append(decls, fd)
			}
		}
	}
	return decls
}

// sinkFuncs computes, to a fixpoint, the package functions that reach
// an emit sink: the base sinks are recognized syntactically by
// sinkDesc, and any function whose body contains a sink call becomes
// a sink for its own callers (d.drainEmits() is as forbidden under
// d.mu as d.emits.Drain() itself).
func sinkFuncs(pass *analysis.Pass, decls []*ast.FuncDecl) map[types.Object]bool {
	sinks := map[types.Object]bool{}
	for changed := true; changed; {
		changed = false
		for _, fd := range decls {
			obj := pass.Info.Defs[fd.Name]
			if obj == nil || sinks[obj] {
				continue
			}
			found := false
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if found {
					return false
				}
				if call, ok := n.(*ast.CallExpr); ok && sinkDesc(pass, sinks, call) != "" {
					found = true
				}
				return !found
			})
			if found {
				sinks[obj] = true
				changed = true
			}
		}
	}
	return sinks
}

// sinkDesc classifies a call as an emit sink and describes it, or
// returns "".
func sinkDesc(pass *analysis.Pass, sinks map[types.Object]bool, call *ast.CallExpr) string {
	obj := analysis.Callee(pass.Info, call)
	if obj == nil {
		return ""
	}
	if v, ok := obj.(*types.Var); ok {
		if _, isFunc := v.Type().Underlying().(*types.Signature); isFunc {
			if name := v.Name(); name == "emit" || name == "onDelta" {
				return "the stored " + name + " callback"
			}
		}
		return ""
	}
	fn, ok := obj.(*types.Func)
	if !ok {
		return ""
	}
	if fn.Name() == "Drain" && analysis.ReceiverTypeName(fn) == "EmitQueue" {
		return "EmitQueue.Drain"
	}
	if sinks[fn] {
		return fn.Name() + " (which delivers emits)"
	}
	return ""
}

// event is one lock-relevant step of a function body, keyed by the
// mutex expression's textual form.
type event struct {
	pos  token.Pos
	kind int // evLock, evUnlock, evDeferUnlock, evSink
	key  string
	desc string
}

const (
	evLock = iota
	evUnlock
	evDeferUnlock
	evSink
)

// scanBody walks one function body in source order, tracking which
// mutexes are held, and reports every sink call inside a held region.
// Nested closures are skipped (they get their own scan). The walk is
// linear in source position — an Unlock on an early-return branch
// conservatively ends the region, trading a few false negatives on
// unbalanced control flow for zero flow-analysis false positives.
func scanBody(pass *analysis.Pass, sinks map[types.Object]bool, body *ast.BlockStmt) {
	var events []event
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return n.Body == body // descend only into the scanned body itself
		case *ast.DeferStmt:
			// A deferred unlock holds the mutex to the end of the
			// function; a deferred sink runs, by LIFO order, before any
			// unlock deferred earlier — its registration point is the
			// position whose held-set it sees.
			if kind, key := lockOp(pass, n.Call); kind == evUnlock {
				events = append(events, event{pos: n.Pos(), kind: evDeferUnlock, key: key})
			} else if desc := sinkDesc(pass, sinks, n.Call); desc != "" {
				events = append(events, event{pos: n.Pos(), kind: evSink, desc: desc})
			}
			return false
		case *ast.CallExpr:
			if kind, key := lockOp(pass, n); kind == evLock || kind == evUnlock {
				events = append(events, event{pos: n.Pos(), kind: kind, key: key})
			} else if desc := sinkDesc(pass, sinks, n); desc != "" {
				events = append(events, event{pos: n.Pos(), kind: evSink, desc: desc})
			}
		}
		return true
	})
	sort.Slice(events, func(i, j int) bool { return events[i].pos < events[j].pos })

	held := map[string]bool{}
	deferred := map[string]bool{}
	for _, ev := range events {
		switch ev.kind {
		case evLock:
			held[ev.key] = true
		case evUnlock:
			if !deferred[ev.key] {
				delete(held, ev.key)
			}
		case evDeferUnlock:
			deferred[ev.key] = true
		case evSink:
			if len(held) > 0 {
				keys := make([]string, 0, len(held))
				for k := range held {
					keys = append(keys, k)
				}
				sort.Strings(keys)
				pass.Reportf(ev.pos,
					"%s called while %s is held; emits must be delivered outside the lock "+
						"(emit callbacks may re-enter the engine — PR 4 deadlock class)",
					ev.desc, strings.Join(keys, ", "))
			}
		}
	}
}

// lockOp classifies a call as a sync.Mutex/RWMutex acquire or release
// and returns the mutex expression's key. The method object, not the
// receiver expression's type, is inspected, so locks reached through
// struct embedding (d.Lock() with an embedded sync.Mutex) key on the
// embedding value.
func lockOp(pass *analysis.Pass, call *ast.CallExpr) (int, string) {
	fn, ok := analysis.Callee(pass.Info, call).(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return -1, ""
	}
	recv := analysis.ReceiverTypeName(fn)
	if recv != "Mutex" && recv != "RWMutex" {
		return -1, ""
	}
	sel, ok := analysis.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return -1, ""
	}
	key := analysis.ExprKey(pass.Fset, sel.X)
	switch fn.Name() {
	case "Lock", "RLock", "TryLock", "TryRLock":
		return evLock, key
	case "Unlock", "RUnlock":
		return evUnlock, key
	}
	return -1, ""
}
