package emitunderlock_test

import (
	"testing"

	"probdedup/internal/analysis/analysistest"
	"probdedup/internal/analysis/emitunderlock"
)

func TestEmitUnderLock(t *testing.T) {
	analysistest.Run(t, "../testdata", emitunderlock.Analyzer, "emitunderlock")
}
