package noinlinebound_test

import (
	"testing"

	"probdedup/internal/analysis/analysistest"
	"probdedup/internal/analysis/noinlinebound"
)

func TestNoinlineBound(t *testing.T) {
	analysistest.Run(t, "../testdata", noinlinebound.Analyzer, "noinlinebound")
}
