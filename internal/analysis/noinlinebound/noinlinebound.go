// Package noinlinebound proves the PR 7 bound-registration
// invariant: strsim.RegisterBound keys similarity upper bounds by a
// comparison function's code pointer, and every closure a constructor
// returns shares the constructor body's single code pointer ONLY
// while the constructor is not inlined. An inlined constructor mints
// a distinct code symbol per call site, so BoundFor would silently
// miss the registered bound and the candidate pre-filter would
// degrade to admit-all. Every constructor whose result is passed to
// RegisterBound must therefore carry //go:noinline.
package noinlinebound

import (
	"go/ast"
	"go/types"
	"strings"

	"probdedup/internal/analysis"
)

// Analyzer flags bound-registered constructors without //go:noinline.
var Analyzer = &analysis.Analyzer{
	Name: "noinlinebound",
	Doc: "report compare-func constructors whose result is registered with " +
		"RegisterBound but whose declaration lacks //go:noinline: inlining would " +
		"change the closure's code pointer and break BoundFor lookup (PR 7)",
	Run: run,
}

func run(pass *analysis.Pass) error {
	decls := map[types.Object]*ast.FuncDecl{}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok {
				if obj := pass.Info.Defs[fd.Name]; obj != nil {
					decls[obj] = fd
				}
			}
		}
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || analysis.CalleeName(pass.Info, call) != "RegisterBound" || len(call.Args) < 1 {
				return true
			}
			ctor, ok := analysis.Unparen(call.Args[0]).(*ast.CallExpr)
			if !ok {
				return true // direct function references have stable code symbols
			}
			obj := analysis.Callee(pass.Info, ctor)
			fd, ok := decls[obj]
			if !ok {
				return true // cross-package constructor: directives not visible here
			}
			if !hasNoinline(fd) {
				pass.Reportf(ctor.Pos(),
					"constructor %s is registered with RegisterBound but lacks //go:noinline; "+
						"inlining gives each returned closure a distinct code pointer and "+
						"BoundFor would miss the bound (PR 7 code-pointer-lookup requirement)",
					obj.Name())
			}
			return true
		})
	}
	return nil
}

// hasNoinline reports whether the declaration's comment group carries
// the //go:noinline directive.
func hasNoinline(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.TrimSpace(c.Text) == "//go:noinline" {
			return true
		}
	}
	return false
}
