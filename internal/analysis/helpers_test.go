package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

const helperSrc = `package p

type T struct{ F func() }

func (t *T) M() {}

var global int

func use(t *T, f func()) int {
	t.M()
	f()
	t.F()
	local := 1
	return local + global
}
`

func TestCalleeResolution(t *testing.T) {
	pkg := checkSrc(t, helperSrc)
	var calls []*ast.CallExpr
	ast.Inspect(pkg.Files[0], func(n ast.Node) bool {
		if c, ok := n.(*ast.CallExpr); ok {
			calls = append(calls, c)
		}
		return true
	})
	if len(calls) != 3 {
		t.Fatalf("found %d calls, want 3", len(calls))
	}

	m, ok := Callee(pkg.Info, calls[0]).(*types.Func)
	if !ok {
		t.Fatalf("t.M() resolved to %T, want *types.Func", Callee(pkg.Info, calls[0]))
	}
	if got := ReceiverTypeName(m); got != "T" {
		t.Errorf("ReceiverTypeName(M) = %q, want T", got)
	}
	if got := CalleeName(pkg.Info, calls[0]); got != "M" {
		t.Errorf("CalleeName(t.M()) = %q, want M", got)
	}

	fObj := Callee(pkg.Info, calls[1])
	if _, ok := fObj.(*types.Var); !ok {
		t.Fatalf("f() resolved to %T, want *types.Var", fObj)
	}
	if !IsFunctionLocal(pkg.Pkg, fObj) {
		t.Error("parameter f reported as non-local")
	}

	fieldObj := Callee(pkg.Info, calls[2])
	if got := fieldObj.Name(); got != "F" {
		t.Errorf("t.F() resolved to %q, want field F", got)
	}
	if IsFunctionLocal(pkg.Pkg, fieldObj) {
		t.Error("struct field F reported as function-local")
	}

	globalObj := pkg.Pkg.Scope().Lookup("global")
	if IsFunctionLocal(pkg.Pkg, globalObj) {
		t.Error("package-level var reported as function-local")
	}
	useFn := pkg.Pkg.Scope().Lookup("use").(*types.Func)
	if got := ReceiverTypeName(useFn); got != "" {
		t.Errorf("ReceiverTypeName(plain func) = %q, want empty", got)
	}
}

func TestExprKey(t *testing.T) {
	cases := []struct {
		src, want string
	}{
		{"a", "a"},
		{"(a)", "a"},
		{"a.b.c", "a.b.c"},
		{"m[k]", "m[k]"},
		{`"lit"`, `"lit"`},
	}
	fset := token.NewFileSet()
	for _, c := range cases {
		e, err := parser.ParseExprFrom(fset, "key.go", c.src, 0)
		if err != nil {
			t.Fatalf("parse %q: %v", c.src, err)
		}
		if got := ExprKey(fset, e); got != c.want {
			t.Errorf("ExprKey(%q) = %q, want %q", c.src, got, c.want)
		}
	}
	// Expressions beyond the vocabulary key by position: unique, never
	// pairing two different mutexes.
	e, err := parser.ParseExprFrom(fset, "key.go", "a+b", 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := ExprKey(fset, e); !strings.HasPrefix(got, "@key.go:") {
		t.Errorf("ExprKey(a+b) = %q, want positional @key.go:... form", got)
	}
}

func TestUnparen(t *testing.T) {
	inner := &ast.Ident{Name: "x"}
	wrapped := ast.Expr(&ast.ParenExpr{X: &ast.ParenExpr{X: inner}})
	if got := Unparen(wrapped); got != ast.Expr(inner) {
		t.Errorf("Unparen did not strip nested parens: %T", got)
	}
}

func TestCalleeIndirect(t *testing.T) {
	pkg := checkSrc(t, `package p

func use(fns []func() int) int { return fns[0]() }
`)
	var call *ast.CallExpr
	ast.Inspect(pkg.Files[0], func(n ast.Node) bool {
		if c, ok := n.(*ast.CallExpr); ok {
			call = c
		}
		return true
	})
	if obj := Callee(pkg.Info, call); obj != nil {
		t.Errorf("indirect call resolved to %v, want nil", obj)
	}
	if name := CalleeName(pkg.Info, call); name != "" {
		t.Errorf("CalleeName(indirect) = %q, want empty", name)
	}
}
