package analysis

import (
	"go/token"
	"strings"
)

// allowSites indexes //pdlint:allow directives: file name → line →
// set of allowed analyzer names. A directive silences diagnostics of
// that analyzer on its own line (trailing comment) and on the line
// directly below it (comment-above form).
type allowSites map[string]map[int]map[string]bool

// collectAllows scans a package's comments for //pdlint:allow
// directives.
func collectAllows(p *Package) allowSites {
	sites := allowSites{}
	for _, f := range p.Files {
		for _, group := range f.Comments {
			for _, c := range group.List {
				name, ok := parseAllow(c.Text)
				if !ok {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				for _, line := range []int{pos.Line, pos.Line + 1} {
					byLine := sites[pos.Filename]
					if byLine == nil {
						byLine = map[int]map[string]bool{}
						sites[pos.Filename] = byLine
					}
					set := byLine[line]
					if set == nil {
						set = map[string]bool{}
						byLine[line] = set
					}
					set[name] = true
				}
			}
		}
	}
	return sites
}

// parseAllow extracts the analyzer name of one //pdlint:allow
// directive comment, tolerating a space after the slashes. Everything
// after the name (conventionally "-- reason") is ignored.
func parseAllow(text string) (string, bool) {
	body := strings.TrimSpace(strings.TrimPrefix(text, "//"))
	rest, ok := strings.CutPrefix(body, "pdlint:allow")
	if !ok {
		return "", false
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return "", false
	}
	return fields[0], true
}

// suppressed reports whether a diagnostic of analyzer at pos is
// silenced by a directive.
func (s allowSites) suppressed(pos token.Position, analyzer string) bool {
	byLine := s[pos.Filename]
	if byLine == nil {
		return false
	}
	return byLine[pos.Line][analyzer]
}
