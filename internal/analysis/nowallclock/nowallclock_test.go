package nowallclock_test

import (
	"testing"

	"probdedup/internal/analysis/analysistest"
	"probdedup/internal/analysis/nowallclock"
)

func TestNoWallClock(t *testing.T) {
	analysistest.Run(t, "../testdata", nowallclock.Analyzer, "nowallclock")
}
