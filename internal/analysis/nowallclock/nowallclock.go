// Package nowallclock proves the reproducibility invariant behind
// Flush ≡ Detect/Resolve and the WAL's replay ≡ never-crashed
// guarantee: non-test engine code must not read the wall clock
// (time.Now) or the global math/rand generators, because replaying
// the same operation sequence must rebuild bit-identical state.
// Randomness is fine when seeded explicitly (rand.New(rand.NewSource
// (seed))); time is fine when it arrives as input. Intentional
// wall-clock reads (benchmark timing) carry a //pdlint:allow
// nowallclock annotation with a reason.
package nowallclock

import (
	"go/ast"
	"go/types"

	"probdedup/internal/analysis"
)

// Analyzer flags wall-clock and ambient-randomness reads.
var Analyzer = &analysis.Analyzer{
	Name: "nowallclock",
	Doc: "report time.Now and global math/rand uses in non-test code: replay " +
		"determinism (Flush ≡ Detect/Resolve, WAL recovery) requires state to be " +
		"a pure function of the operation sequence",
	Run: run,
}

// seededConstructors are the math/rand entry points that are pure
// functions of their explicit arguments.
var seededConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true,
	"NewChaCha8": true,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
				return true // methods (e.g. on an explicit *rand.Rand) are fine
			}
			switch fn.Pkg().Path() {
			case "time":
				if fn.Name() == "Now" {
					pass.Reportf(sel.Pos(),
						"time.Now in non-test code breaks replay determinism "+
							"(Flush ≡ Detect/Resolve); take the time as input or "+
							"annotate //pdlint:allow nowallclock with a reason")
				}
			case "math/rand", "math/rand/v2":
				if !seededConstructors[fn.Name()] {
					pass.Reportf(sel.Pos(),
						"global math/rand function %s uses ambient seed state and breaks "+
							"replay determinism; use an explicit rand.New(rand.NewSource(seed)) "+
							"or annotate //pdlint:allow nowallclock with a reason", fn.Name())
				}
			}
			return true
		})
	}
	return nil
}
