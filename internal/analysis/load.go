package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Pkg        *types.Package
	Info       *types.Info
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	DepOnly    bool
	Standard   bool
	Error      *struct{ Err string }
}

// goList invokes the go command in dir and decodes the JSON package
// stream. extra are arguments placed after `go list -e -json=...`.
func goList(dir string, extra ...string) ([]listPkg, error) {
	args := append([]string{
		"list", "-e", "-export", "-deps",
		"-json=ImportPath,Dir,GoFiles,Export,DepOnly,Standard,Error",
	}, extra...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}
	var pkgs []listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// exportImporter satisfies the type-checker's import needs from the
// compiler export data `go list -export` left in the build cache, so
// only the analyzed package itself is parsed from source.
func exportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok || file == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}

// Load resolves package patterns (e.g. "./...") relative to dir,
// parses and type-checks every matched non-test package from source,
// and resolves its imports from build-cache export data. The go
// command does the heavy lifting of pattern expansion and dependency
// compilation; testdata directories are excluded by its standard
// rules.
func Load(dir string, patterns ...string) ([]*Package, error) {
	listed, err := goList(dir, patterns...)
	if err != nil {
		return nil, err
	}
	exports := map[string]string{}
	var roots []listPkg
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		switch {
		case p.Error != nil:
			if !p.DepOnly {
				return nil, fmt.Errorf("package %s: %s", p.ImportPath, p.Error.Err)
			}
		case !p.DepOnly && !p.Standard && len(p.GoFiles) > 0:
			roots = append(roots, p)
		}
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i].ImportPath < roots[j].ImportPath })

	fset := token.NewFileSet()
	imp := exportImporter(fset, exports)
	pkgs := make([]*Package, 0, len(roots))
	for _, p := range roots {
		files, err := parseFiles(fset, p.Dir, p.GoFiles)
		if err != nil {
			return nil, err
		}
		info := newInfo()
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(p.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("type-checking %s: %v", p.ImportPath, err)
		}
		pkgs = append(pkgs, &Package{
			ImportPath: p.ImportPath,
			Dir:        p.Dir,
			Fset:       fset,
			Files:      files,
			Pkg:        tpkg,
			Info:       info,
		})
	}
	return pkgs, nil
}

// LoadDir loads a single directory of Go files that is NOT part of
// the module build — an analysistest fixture under testdata. Imports
// (standard library or module-internal) are resolved by running
// `go list -export` on the import paths the files mention, from
// inside dir so the enclosing module supplies the context.
func LoadDir(dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	var files []*ast.File
	var names []string
	for _, e := range entries {
		if e.IsDir() || filepath.Ext(e.Name()) != ".go" {
			continue
		}
		names = append(names, e.Name())
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	imports := map[string]bool{}
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
		for _, spec := range f.Imports {
			imports[importPathOf(spec)] = true
		}
	}
	exports := map[string]string{}
	if len(imports) > 0 {
		paths := make([]string, 0, len(imports))
		for p := range imports {
			paths = append(paths, p)
		}
		sort.Strings(paths)
		listed, err := goList(dir, paths...)
		if err != nil {
			return nil, err
		}
		for _, p := range listed {
			if p.Export != "" {
				exports[p.ImportPath] = p.Export
			}
		}
	}
	info := newInfo()
	conf := types.Config{Importer: exportImporter(fset, exports)}
	path := filepath.Base(dir)
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", dir, err)
	}
	return &Package{
		ImportPath: path,
		Dir:        dir,
		Fset:       fset,
		Files:      files,
		Pkg:        tpkg,
		Info:       info,
	}, nil
}

func parseFiles(fset *token.FileSet, dir string, names []string) ([]*ast.File, error) {
	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

func importPathOf(spec *ast.ImportSpec) string {
	s := spec.Path.Value
	return s[1 : len(s)-1] // strip the quotes of the literal
}
