// Package snapshotescape proves the PR 5 defensive-copy contract on
// the emit boundary: a *Delta struct handed to consumers must not
// alias engine-owned slices or maps, because consumers may legally
// reorder, truncate or mutate what they receive (batch Resolve's
// output explicitly allows it). Fields of reference-carrying type in
// a *Delta composite literal must therefore be built from a
// snapshot*/clone*/copy* helper, a fresh literal/make/append, or a
// local variable — never read straight out of a field, map or global
// of the live engine state.
package snapshotescape

import (
	"go/ast"
	"go/types"
	"strings"

	"probdedup/internal/analysis"
)

// Analyzer flags engine state aliased into emitted delta structs.
var Analyzer = &analysis.Analyzer{
	Name: "snapshotescape",
	Doc: "report reference-carrying fields of emitted *Delta literals whose value " +
		"aliases engine-owned state instead of passing through a snapshot*/clone* " +
		"helper (the PR 5 snapshotEntity defensive-copy contract)",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			lit, ok := n.(*ast.CompositeLit)
			if !ok {
				return true
			}
			tv, ok := pass.Info.Types[lit]
			if !ok {
				return true
			}
			named, ok := types.Unalias(tv.Type).(*types.Named)
			if !ok || !strings.HasSuffix(named.Obj().Name(), "Delta") {
				return true
			}
			st, ok := named.Underlying().(*types.Struct)
			if !ok {
				return true
			}
			checkLiteral(pass, named.Obj().Name(), st, lit)
			return true
		})
	}
	return nil
}

// checkLiteral validates every reference-carrying field of one *Delta
// composite literal, in keyed or positional form.
func checkLiteral(pass *analysis.Pass, typeName string, st *types.Struct, lit *ast.CompositeLit) {
	for i, elt := range lit.Elts {
		var field *types.Var
		value := elt
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			key, ok := kv.Key.(*ast.Ident)
			if !ok {
				continue
			}
			for j := 0; j < st.NumFields(); j++ {
				if st.Field(j).Name() == key.Name {
					field = st.Field(j)
					break
				}
			}
			value = kv.Value
		} else if i < st.NumFields() {
			field = st.Field(i)
		}
		if field == nil || !carriesRefs(field.Type(), map[*types.Named]bool{}) {
			continue
		}
		if ok, how := freshValue(pass, value); !ok {
			pass.Reportf(value.Pos(),
				"field %s of emitted %s %s; consumers may mutate deltas, so pass "+
					"engine state through a snapshot*/clone* helper "+
					"(PR 5 defensive-copy contract)", field.Name(), typeName, how)
		}
	}
}

// carriesRefs reports whether a value of type t shares mutable
// backing storage when copied: slices, maps, channels and pointers
// do, and so does any struct or array containing one. Strings are
// immutable and interfaces/functions are treated as opaque.
func carriesRefs(t types.Type, seen map[*types.Named]bool) bool {
	switch t := types.Unalias(t).(type) {
	case *types.Named:
		if seen[t] {
			return false
		}
		seen[t] = true
		return carriesRefs(t.Underlying(), seen)
	case *types.Slice, *types.Map, *types.Chan, *types.Pointer:
		return true
	case *types.Array:
		return carriesRefs(t.Elem(), seen)
	case *types.Struct:
		for i := 0; i < t.NumFields(); i++ {
			if carriesRefs(t.Field(i).Type(), seen) {
				return true
			}
		}
	}
	return false
}

// snapshotHelper recognizes the defensive-copy vocabulary by name.
func snapshotHelper(name string) bool {
	l := strings.ToLower(name)
	return strings.HasPrefix(l, "snapshot") || strings.HasPrefix(l, "clone") || strings.HasPrefix(l, "copy")
}

// freshValue decides whether the expression yields storage the
// consumer may own. Allowed: nil, fresh literals, make/new/append,
// snapshot-family calls, conversions of such, and plain local
// variables (the function built them for this delta). Flagged with a
// description: selector/index reads of stored state, package-level
// variables, and calls that do not look like copy helpers.
func freshValue(pass *analysis.Pass, e ast.Expr) (bool, string) {
	switch e := analysis.Unparen(e).(type) {
	case *ast.Ident:
		obj := pass.Info.ObjectOf(e)
		if obj == nil || obj.Name() == "nil" {
			return true, ""
		}
		if analysis.IsFunctionLocal(pass.Pkg, obj) {
			return true, ""
		}
		return false, "reads the package-level variable " + e.Name
	case *ast.CompositeLit:
		return true, ""
	case *ast.UnaryExpr:
		if e.Op.String() == "&" {
			return freshValue(pass, e.X)
		}
	case *ast.CallExpr:
		switch fun := analysis.Unparen(e.Fun).(type) {
		case *ast.Ident:
			if _, isBuiltin := pass.Info.Uses[fun].(*types.Builtin); isBuiltin {
				return true, "" // make, new, append — fresh backing storage
			}
			if _, isType := pass.Info.Uses[fun].(*types.TypeName); isType {
				return freshValue(pass, e.Args[0]) // conversion: as fresh as its operand
			}
		}
		if name := analysis.CalleeName(pass.Info, e); name != "" {
			if snapshotHelper(name) {
				return true, ""
			}
			return false, "is built by " + name + ", which does not look like a snapshot/clone/copy helper"
		}
		return false, "is built by an indirect call the analyzer cannot prove fresh"
	case *ast.SelectorExpr:
		return false, "aliases " + analysis.ExprKey(pass.Fset, e)
	case *ast.IndexExpr:
		return false, "aliases " + analysis.ExprKey(pass.Fset, e)
	}
	return false, "cannot be proven to own its storage"
}
