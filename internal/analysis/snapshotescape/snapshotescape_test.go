package snapshotescape_test

import (
	"testing"

	"probdedup/internal/analysis/analysistest"
	"probdedup/internal/analysis/snapshotescape"
)

func TestSnapshotEscape(t *testing.T) {
	analysistest.Run(t, "../testdata", snapshotescape.Analyzer, "snapshotescape")
}
