// Package analysis is the repo's static-analysis framework: a small,
// dependency-free re-implementation of the golang.org/x/tools
// go/analysis vocabulary (Analyzer, Pass, Diagnostic) plus a package
// loader built on `go list -export` and the standard go/types
// importer. It exists because the engine's correctness invariants —
// deterministic M/P/U classification at any worker count, emit
// delivery outside the state lock, defensive copies on the emit
// boundary, wall-clock-free reproducibility, //go:noinline bound
// constructors — are properties of whole bug *classes* that runtime
// tests can only sample one instance of. The analyzers under
// internal/analysis/... prove them at `go vet` time; cmd/pdlint is
// the multichecker binary CI gates on.
//
// A diagnostic at a site that is intentionally exempt is silenced by
// a directive comment on the same line or the line directly above:
//
//	//pdlint:allow <analyzer> -- reason
//
// The reason is mandatory by convention (reviewers reject bare
// allows); the framework only requires the analyzer name.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check, mirroring the x/tools
// go/analysis shape so the checks port unchanged if the dependency
// ever becomes available.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //pdlint:allow directives. Lower-case, no spaces.
	Name string
	// Doc is the one-paragraph description printed by pdlint -help,
	// stating the invariant the analyzer proves and the PR that
	// established it.
	Doc string
	// Run executes the check over one package and reports findings
	// through pass.Reportf.
	Run func(pass *Pass) error
}

// Pass carries one analyzed package into an Analyzer's Run.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files are the package's non-test source files, parsed with
	// comments.
	Files []*ast.File
	// Pkg and Info are the type-checked package and its full
	// expression/object resolution.
	Pkg  *types.Package
	Info *types.Info

	report func(Diagnostic)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding, positioned in the pass's FileSet.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Finding is a resolved diagnostic: positioned, attributed to its
// analyzer, and already past suppression filtering.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// String renders the conventional file:line:col: message (analyzer)
// form consumed by editors and CI logs.
func (f Finding) String() string {
	return fmt.Sprintf("%s: %s (%s)", f.Pos, f.Message, f.Analyzer)
}
