package analysistest

import (
	"fmt"
	"strings"
	"testing"

	"probdedup/internal/analysis"
	"probdedup/internal/analysis/nowallclock"
)

// recorder satisfies TB and captures what a real *testing.T would
// print, so the runner itself is testable. Fatalf panics with a
// sentinel to reproduce testing.T's stop-the-test semantics.
type recorder struct {
	errors []string
	fatals []string
}

type fatalStop struct{}

func (r *recorder) Helper() {}

func (r *recorder) Errorf(format string, args ...any) {
	r.errors = append(r.errors, fmt.Sprintf(format, args...))
}

func (r *recorder) Fatalf(format string, args ...any) {
	r.fatals = append(r.fatals, fmt.Sprintf(format, args...))
	panic(fatalStop{})
}

// record runs fn against a fresh recorder, absorbing the Fatalf panic.
func record(fn func(r *recorder)) *recorder {
	r := &recorder{}
	func() {
		defer func() {
			if p := recover(); p != nil {
				if _, ok := p.(fatalStop); !ok {
					panic(p)
				}
			}
		}()
		fn(r)
	}()
	return r
}

func TestRunCleanFixture(t *testing.T) {
	r := record(func(r *recorder) {
		Run(r, "../testdata", nowallclock.Analyzer, "nowallclock")
	})
	if len(r.errors) != 0 || len(r.fatals) != 0 {
		t.Fatalf("clean fixture produced errors=%v fatals=%v", r.errors, r.fatals)
	}
}

func TestRunReportsMissedExpectations(t *testing.T) {
	silent := &analysis.Analyzer{
		Name: "nowallclock",
		Doc:  "reports nothing; every fixture want must fail",
		Run:  func(*analysis.Pass) error { return nil },
	}
	r := record(func(r *recorder) {
		Run(r, "../testdata", silent, "nowallclock")
	})
	if len(r.errors) == 0 {
		t.Fatal("silent analyzer satisfied a fixture full of want comments")
	}
	for _, e := range r.errors {
		if !strings.Contains(e, "no diagnostic matching") {
			t.Errorf("unexpected error kind: %s", e)
		}
	}
}

func TestRunReportsUnexpectedDiagnostics(t *testing.T) {
	noisy := &analysis.Analyzer{
		Name: "noisy",
		Doc:  "reports at the package clause, where no want comment lives",
		Run: func(pass *analysis.Pass) error {
			pass.Reportf(pass.Files[0].Package, "bogus finding")
			return nil
		},
	}
	r := record(func(r *recorder) {
		Run(r, "../testdata", noisy, "nowallclock")
	})
	found := false
	for _, e := range r.errors {
		if strings.Contains(e, "unexpected diagnostic") && strings.Contains(e, "bogus finding") {
			found = true
		}
	}
	if !found {
		t.Fatalf("unexpected diagnostic not reported; errors: %v", r.errors)
	}
}

func TestRunMissingFixture(t *testing.T) {
	r := record(func(r *recorder) {
		Run(r, "../testdata", nowallclock.Analyzer, "no-such-fixture")
	})
	if len(r.fatals) != 1 {
		t.Fatalf("missing fixture: fatals=%v", r.fatals)
	}
}

func TestSplitPatterns(t *testing.T) {
	good := []struct {
		body string
		want []string
	}{
		{"`one`", []string{"one"}},
		{"`one` `two`", []string{"one", "two"}},
		{`"escaped \" quote"`, []string{`escaped " quote`}},
		{"`back` \"mixed\"", []string{"back", "mixed"}},
	}
	for _, c := range good {
		got, err := splitPatterns(c.body)
		if err != nil {
			t.Errorf("splitPatterns(%q): %v", c.body, err)
			continue
		}
		if len(got) != len(c.want) {
			t.Errorf("splitPatterns(%q) = %v, want %v", c.body, got, c.want)
			continue
		}
		for i := range c.want {
			if got[i] != c.want[i] {
				t.Errorf("splitPatterns(%q) = %v, want %v", c.body, got, c.want)
			}
		}
	}
	for _, bad := range []string{"`unterminated", `"unterminated`, "bare words"} {
		if _, err := splitPatterns(bad); err == nil {
			t.Errorf("splitPatterns(%q) succeeded, want error", bad)
		}
	}
}
