// Package analysistest runs an analyzer over fixture packages under a
// testdata/src tree and checks its diagnostics against `// want`
// expectations embedded in the fixtures, mirroring the x/tools
// package of the same name: a comment
//
//	// want `regexp` `another`
//
// on line N expects every listed pattern to match some diagnostic
// reported on line N of that file, and any diagnostic with no
// matching expectation fails the test. //pdlint:allow suppression is
// applied before matching, so fixtures can also demonstrate that a
// directive silences a finding.
package analysistest

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"

	"probdedup/internal/analysis"
)

// TB is the subset of testing.TB the runner needs; taking the
// interface keeps the runner testable against a recorder.
type TB interface {
	Helper()
	Errorf(format string, args ...any)
	Fatalf(format string, args ...any)
}

// expectation is one `// want` pattern awaiting a diagnostic.
type expectation struct {
	file    string
	line    int
	rx      *regexp.Regexp
	matched bool
}

// Run loads each fixture package testdata/src/<pkg>, applies the
// analyzer and checks the findings against the fixtures' `// want`
// comments.
func Run(t TB, testdata string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	for _, pkg := range pkgs {
		dir := filepath.Join(testdata, "src", pkg)
		loaded, err := analysis.LoadDir(dir)
		if err != nil {
			t.Fatalf("loading fixture %s: %v", dir, err)
		}
		findings, err := analysis.RunAnalyzers(loaded, []*analysis.Analyzer{a})
		if err != nil {
			t.Fatalf("running %s on %s: %v", a.Name, dir, err)
		}
		wants, err := collectWants(loaded)
		if err != nil {
			t.Fatalf("fixture %s: %v", dir, err)
		}
		for _, f := range findings {
			if !consume(wants, f) {
				t.Errorf("%s: unexpected diagnostic: %s", pkg, f)
			}
		}
		for _, w := range wants {
			if !w.matched {
				t.Errorf("%s: %s:%d: no diagnostic matching %q", pkg, w.file, w.line, w.rx)
			}
		}
	}
}

// consume marks the matching expectation for one finding, if any.
// Several findings may satisfy the same expectation (the pattern
// describes the line, not a single occurrence).
func consume(wants []*expectation, f analysis.Finding) bool {
	ok := false
	for _, w := range wants {
		if w.file == filepath.Base(f.Pos.Filename) && w.line == f.Pos.Line && w.rx.MatchString(f.Message) {
			w.matched = true
			ok = true
		}
	}
	return ok
}

// collectWants extracts the `// want` expectations of a fixture
// package.
func collectWants(p *analysis.Package) ([]*expectation, error) {
	var wants []*expectation
	for _, f := range p.Files {
		for _, group := range f.Comments {
			for _, c := range group.List {
				body, ok := strings.CutPrefix(strings.TrimSpace(strings.TrimPrefix(c.Text, "//")), "want ")
				if !ok {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				patterns, err := splitPatterns(body)
				if err != nil {
					return nil, fmt.Errorf("%s:%d: %v", pos.Filename, pos.Line, err)
				}
				for _, pat := range patterns {
					rx, err := regexp.Compile(pat)
					if err != nil {
						return nil, fmt.Errorf("%s:%d: bad want pattern: %v", pos.Filename, pos.Line, err)
					}
					wants = append(wants, &expectation{
						file: filepath.Base(pos.Filename),
						line: pos.Line,
						rx:   rx,
					})
				}
			}
		}
	}
	return wants, nil
}

// splitPatterns parses the space-separated Go string literals
// (quoted or backquoted) of a want comment body.
func splitPatterns(body string) ([]string, error) {
	var patterns []string
	rest := strings.TrimSpace(body)
	for rest != "" {
		var lit string
		switch rest[0] {
		case '`':
			end := strings.IndexByte(rest[1:], '`')
			if end < 0 {
				return nil, fmt.Errorf("unterminated backquoted pattern in %q", body)
			}
			lit, rest = rest[:end+2], rest[end+2:]
		case '"':
			end := -1
			for i := 1; i < len(rest); i++ {
				if rest[i] == '\\' {
					i++
					continue
				}
				if rest[i] == '"' {
					end = i
					break
				}
			}
			if end < 0 {
				return nil, fmt.Errorf("unterminated quoted pattern in %q", body)
			}
			lit, rest = rest[:end+1], rest[end+1:]
		default:
			return nil, fmt.Errorf("want patterns must be quoted or backquoted, got %q", rest)
		}
		s, err := strconv.Unquote(lit)
		if err != nil {
			return nil, fmt.Errorf("bad pattern literal %s: %v", lit, err)
		}
		patterns = append(patterns, s)
		rest = strings.TrimSpace(rest)
	}
	return patterns, nil
}
