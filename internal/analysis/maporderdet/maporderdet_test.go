package maporderdet_test

import (
	"testing"

	"probdedup/internal/analysis/analysistest"
	"probdedup/internal/analysis/maporderdet"
)

func TestMapOrderDet(t *testing.T) {
	analysistest.Run(t, "../testdata", maporderdet.Analyzer, "maporderdet")
}
