// Package maporderdet proves the determinism invariant of the emit
// and encoding boundaries (ARCHITECTURE.md: byte-identical delta
// streams and results at every worker count): iterating a Go map
// yields a random order, so values flowing out of a `for range` over
// a map must pass through a sort before they reach an order-sensitive
// sink — an emit callback, an emit-queue enqueue, an encoder, fmt
// output, or a returned Result/Resolution.
package maporderdet

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"probdedup/internal/analysis"
)

// Analyzer flags map-iteration order leaking into deterministic
// outputs.
var Analyzer = &analysis.Analyzer{
	Name: "maporderdet",
	Doc: "report `for range` over a map whose iteration order can reach an emit " +
		"callback, an encoder, fmt output, or a returned Result/Resolution " +
		"without an intervening sort.* call (determinism invariant)",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				checkFunc(pass, fd.Type, fd.Body)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				checkFunc(pass, lit.Type, lit.Body)
			}
			return true
		})
	}
	return nil
}

// checkFunc examines one function body: each map-range loop is
// checked for direct sinks in its body, and each slice variable the
// loop appends to is traced through the statements after the loop for
// a sink use not preceded by a sort.
func checkFunc(pass *analysis.Pass, ftype *ast.FuncType, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			return lit.Body == body // nested closures get their own checkFunc
		}
		rs, ok := n.(*ast.RangeStmt)
		if !ok || !isMapRange(pass, rs) {
			return true
		}
		if desc := directSink(pass, rs.Body); desc != "" {
			pass.Reportf(rs.Pos(),
				"iteration over a map feeds %s in nondeterministic order; "+
					"collect and sort.* first (determinism invariant)", desc)
			return true
		}
		for _, target := range appendTargets(pass, rs.Body) {
			sortPos, sinkPos, desc := traceAfter(pass, ftype, body, rs, target)
			if sinkPos.IsValid() && (!sortPos.IsValid() || sortPos > sinkPos) {
				pass.Reportf(rs.Pos(),
					"map iteration order flows through %q into %s without a sort.* call; "+
						"sort it before the sink (determinism invariant)", target.Name(), desc)
				break
			}
		}
		return true
	})
}

func isMapRange(pass *analysis.Pass, rs *ast.RangeStmt) bool {
	tv, ok := pass.Info.Types[rs.X]
	if !ok || tv.Type == nil {
		return false
	}
	_, isMap := types.Unalias(tv.Type).Underlying().(*types.Map)
	return isMap
}

// directSink finds an order-sensitive call inside the loop body
// itself — every iteration emits, encodes or prints, so no later sort
// can repair the order.
func directSink(pass *analysis.Pass, body *ast.BlockStmt) string {
	var desc string
	ast.Inspect(body, func(n ast.Node) bool {
		if desc != "" {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			desc = sinkCallDesc(pass, call)
		}
		return desc == ""
	})
	return desc
}

// sinkCallDesc classifies an order-sensitive consumer call.
func sinkCallDesc(pass *analysis.Pass, call *ast.CallExpr) string {
	obj := analysis.Callee(pass.Info, call)
	if obj == nil {
		return ""
	}
	name := obj.Name()
	if v, ok := obj.(*types.Var); ok {
		if _, isFunc := v.Type().Underlying().(*types.Signature); !isFunc {
			return ""
		}
	} else if _, ok := obj.(*types.Func); !ok {
		return ""
	}
	switch {
	case name == "emit" || name == "onDelta":
		return "the " + name + " callback"
	case name == "Enqueue" || strings.HasPrefix(name, "enqueue"):
		return "emit queueing via " + name
	case strings.HasPrefix(name, "Encode") || strings.HasPrefix(name, "encode"),
		strings.HasPrefix(name, "Marshal"):
		return "encoder " + name
	}
	if fn, ok := obj.(*types.Func); ok && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" &&
		strings.HasPrefix(strings.TrimPrefix(name, "F"), "Print") {
		return "output via fmt." + name
	}
	return ""
}

// appendTargets collects the local slice variables the loop body
// grows with v = append(v, ...).
func appendTargets(pass *analysis.Pass, body *ast.BlockStmt) []*types.Var {
	var targets []*types.Var
	seen := map[*types.Var]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, lhs := range as.Lhs {
			if i >= len(as.Rhs) {
				break
			}
			id, ok := analysis.Unparen(lhs).(*ast.Ident)
			if !ok {
				continue
			}
			call, ok := analysis.Unparen(as.Rhs[i]).(*ast.CallExpr)
			if !ok || !isBuiltin(pass, call, "append") {
				continue
			}
			obj := pass.Info.ObjectOf(id)
			if v, ok := obj.(*types.Var); ok && !seen[v] {
				seen[v] = true
				targets = append(targets, v)
			}
		}
		return true
	})
	return targets
}

func isBuiltin(pass *analysis.Pass, call *ast.CallExpr, name string) bool {
	id, ok := analysis.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = pass.Info.Uses[id].(*types.Builtin)
	return ok
}

// traceAfter scans the function's statements after the range loop for
// the first sort of the target variable and its first sink use, in
// source order. sortPos/sinkPos stay invalid when absent.
func traceAfter(pass *analysis.Pass, ftype *ast.FuncType, body *ast.BlockStmt, rs *ast.RangeStmt, target *types.Var) (sortPos, sinkPos token.Pos, desc string) {
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		if n.End() <= rs.End() {
			return false // entirely before or inside the loop
		}
		if n.Pos() <= rs.End() {
			return true // spans the loop; only descend
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if usesVar(pass, n.Args, target) {
				if isSortCall(pass, n) {
					if !sortPos.IsValid() {
						sortPos = n.Pos()
					}
				} else if d := sinkCallDesc(pass, n); d != "" && !sinkPos.IsValid() {
					sinkPos, desc = n.Pos(), d
				}
			}
		case *ast.CompositeLit:
			if tn := resultTypeName(pass.Info.Types[n].Type); tn != "" && containsVar(pass, n, target) && !sinkPos.IsValid() {
				sinkPos, desc = n.Pos(), "a "+tn+" literal"
			}
		case *ast.ReturnStmt:
			if tn := resultsNamed(pass, ftype); tn != "" && containsVar(pass, n, target) && !sinkPos.IsValid() {
				sinkPos, desc = n.Pos(), "the returned "+tn
			}
		}
		return true
	})
	return sortPos, sinkPos, desc
}

// isSortCall recognizes calls into the sort and slices packages.
func isSortCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	fn, ok := analysis.Callee(pass.Info, call).(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	path := fn.Pkg().Path()
	return path == "sort" || path == "slices"
}

func usesVar(pass *analysis.Pass, args []ast.Expr, target *types.Var) bool {
	for _, a := range args {
		if containsVar(pass, a, target) {
			return true
		}
	}
	return false
}

func containsVar(pass *analysis.Pass, n ast.Node, target *types.Var) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pass.Info.ObjectOf(id) == target {
			found = true
		}
		return !found
	})
	return found
}

// resultTypeName reports "Result" or "Resolution" when t is (a
// pointer to) a named type so called.
func resultTypeName(t types.Type) string {
	if t == nil {
		return ""
	}
	t = types.Unalias(t)
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	if named, ok := t.(*types.Named); ok {
		if n := named.Obj().Name(); n == "Result" || n == "Resolution" {
			return n
		}
	}
	return ""
}

// resultsNamed reports whether the function returns a Result or
// Resolution (possibly behind a pointer), naming the first such type.
func resultsNamed(pass *analysis.Pass, ftype *ast.FuncType) string {
	if ftype.Results == nil {
		return ""
	}
	for _, field := range ftype.Results.List {
		tv, ok := pass.Info.Types[field.Type]
		if !ok {
			continue
		}
		if tn := resultTypeName(tv.Type); tn != "" {
			return tn
		}
	}
	return ""
}
