package analysis

import (
	"go/token"
	"strings"
	"testing"
)

func TestLoadSelf(t *testing.T) {
	pkgs, err := Load(".", ".")
	if err != nil {
		t.Fatalf("Load(.): %v", err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("Load(.) returned %d packages, want 1", len(pkgs))
	}
	p := pkgs[0]
	if p.Pkg.Name() != "analysis" {
		t.Errorf("package name %q, want analysis", p.Pkg.Name())
	}
	if !strings.HasSuffix(p.ImportPath, "internal/analysis") {
		t.Errorf("import path %q", p.ImportPath)
	}
	if len(p.Files) == 0 {
		t.Error("no parsed files")
	}
	if p.Info == nil || len(p.Info.Defs) == 0 {
		t.Error("type info not populated")
	}
}

func TestLoadPatternExpansion(t *testing.T) {
	pkgs, err := Load("..", "./analysis/...")
	if err != nil {
		t.Fatalf("Load(./analysis/...): %v", err)
	}
	if len(pkgs) < 6 { // framework + analysistest + five analyzers, minus any future pruning
		t.Fatalf("expected the analyzer suite packages, got %d", len(pkgs))
	}
	for _, p := range pkgs {
		if strings.Contains(p.ImportPath, "testdata") {
			t.Errorf("testdata package leaked into Load results: %s", p.ImportPath)
		}
	}
}

func TestLoadBadDir(t *testing.T) {
	if _, err := Load("/nonexistent-analysis-dir", "."); err == nil {
		t.Fatal("Load in a nonexistent directory succeeded")
	}
}

func TestLoadDirFixture(t *testing.T) {
	p, err := LoadDir("testdata/src/nowallclock")
	if err != nil {
		t.Fatalf("LoadDir: %v", err)
	}
	if p.Pkg.Name() != "nowallclock" {
		t.Errorf("package name %q, want nowallclock", p.Pkg.Name())
	}
	if len(p.Files) == 0 {
		t.Error("no parsed files")
	}
}

func TestLoadDirNoGoFiles(t *testing.T) {
	if _, err := LoadDir("testdata"); err == nil {
		t.Fatal("LoadDir on a directory with no Go files succeeded")
	}
}

func TestLoadDirMissing(t *testing.T) {
	if _, err := LoadDir("testdata/src/doesnotexist"); err == nil {
		t.Fatal("LoadDir on a missing directory succeeded")
	}
}

func TestFindingString(t *testing.T) {
	f := Finding{
		Analyzer: "nowallclock",
		Pos:      token.Position{Filename: "a.go", Line: 3, Column: 7},
		Message:  "time.Now in non-test code",
	}
	got := f.String()
	want := "a.go:3:7: time.Now in non-test code (nowallclock)"
	if got != want {
		t.Errorf("Finding.String() = %q, want %q", got, want)
	}
}

func TestExportImporterMissing(t *testing.T) {
	imp := exportImporter(token.NewFileSet(), map[string]string{})
	if _, err := imp.Import("fmt"); err == nil {
		t.Fatal("import with no export data succeeded")
	}
}
