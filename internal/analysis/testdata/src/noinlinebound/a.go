// Package noinlinebound fixtures: bound registrations keyed by
// constructor code pointers, with and without the //go:noinline that
// keeps those pointers stable (PR 7).
package noinlinebound

// Func mirrors strsim.Func.
type Func func(a, b string) float64

// SimBound mirrors strsim.SimBound.
type SimBound func(la, lb int) float64

// RegisterBound mirrors strsim.RegisterBound: the bound is keyed by
// f's code pointer.
func RegisterBound(f Func, b SimBound) {}

// GoodCtor keeps one code pointer for every closure it returns.
//
//go:noinline
func GoodCtor(q int) Func {
	return func(a, b string) float64 { return float64(q) }
}

// BadCtor may be inlined: each call site would mint its own closure
// symbol and the registered bound would never be found.
func BadCtor(q int) Func {
	return func(a, b string) float64 { return float64(q) }
}

// Exact is a plain function — its symbol is stable without any
// directive.
func Exact(a, b string) float64 { return 1 }

func bound(la, lb int) float64 { return 1 }

func init() {
	RegisterBound(GoodCtor(2), bound)
	RegisterBound(BadCtor(2), bound) // want `constructor BadCtor is registered with RegisterBound but lacks //go:noinline`
	RegisterBound(Exact, bound)
	RegisterBound(BadCtor(3), bound) //pdlint:allow noinlinebound -- fixture: registered once, never constructed elsewhere
}
