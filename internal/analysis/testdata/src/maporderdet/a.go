// Package maporderdet fixtures: map iteration order leaking into
// emits, encoders, fmt output and returned Result/Resolution values,
// against the sorted (legal) forms.
package maporderdet

import (
	"fmt"
	"sort"
)

// Result mirrors core.Result as an order-sensitive return type.
type Result struct{ IDs []string }

// Resolution mirrors resolve.Resolution.
type Resolution struct{ IDs []string }

type encoder struct{}

func (encoder) Encode(v any) error { return nil }

// BadDirectEmit emits from inside the map loop — no later sort can
// repair the delivery order.
func BadDirectEmit(emit func(string) bool, m map[string]string) {
	for _, v := range m { // want `feeds the emit callback in nondeterministic order`
		emit(v)
	}
}

// BadDirectPrint prints per iteration; golden CLI transcripts would
// flap.
func BadDirectPrint(m map[string]int) {
	for k, v := range m { // want `feeds output via fmt\.Printf in nondeterministic order`
		fmt.Printf("%s=%d\n", k, v)
	}
}

// BadDirectEncode streams map entries straight into an encoder.
func BadDirectEncode(enc encoder, m map[string]int) {
	for k := range m { // want `feeds encoder Encode in nondeterministic order`
		_ = enc.Encode(k)
	}
}

// BadReturnResult accumulates in map order and returns it inside a
// Result without sorting.
func BadReturnResult(m map[string]bool) *Result {
	var ids []string
	for id := range m { // want `flows through "ids" into the returned Result without a sort`
		ids = append(ids, id)
	}
	return &Result{IDs: ids}
}

// BadEnqueue hands the unsorted accumulation to an emit queue.
func BadEnqueue(enqueue func(...string), m map[string]bool) {
	var out []string
	for id := range m { // want `flows through "out" into emit queueing via enqueue without a sort`
		out = append(out, id)
	}
	enqueue(out...)
}

// GoodSortedResult is the mandated shape: collect, sort, then sink.
func GoodSortedResult(m map[string]bool) *Result {
	var ids []string
	for id := range m {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return &Result{IDs: ids}
}

// GoodSortSlice covers the comparator form feeding a Resolution.
func GoodSortSlice(m map[string]bool) Resolution {
	var ids []string
	for id := range m {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return Resolution{IDs: ids}
}

// GoodSliceRange: ranging over a slice is ordered; no finding.
func GoodSliceRange(emit func(string) bool, ids []string) {
	for _, id := range ids {
		emit(id)
	}
}

// GoodInternalUse: map iteration feeding another map or a counter is
// order-insensitive.
func GoodInternalUse(m map[string]int) int {
	sum := 0
	inverse := map[int]string{}
	for k, v := range m {
		sum += v
		inverse[v] = k
	}
	return sum
}

// SuppressedPrint documents an intentional exception (e.g. debug-only
// output).
func SuppressedPrint(m map[string]int) {
	for k := range m { //pdlint:allow maporderdet -- fixture: debug dump, order explicitly irrelevant
		fmt.Println(k)
	}
}
