// Package nowallclock fixtures: wall-clock and ambient-randomness
// reads versus the explicit-seed and injected-time forms that keep
// replay deterministic.
package nowallclock

import (
	"math/rand"
	"time"
)

// BadWallClock reads the wall clock.
func BadWallClock() int64 {
	return time.Now().UnixNano() // want `time\.Now in non-test code breaks replay determinism`
}

// BadGlobalRand draws from the ambient generator.
func BadGlobalRand() int {
	return rand.Intn(10) // want `global math/rand function Intn uses ambient seed state`
}

// BadGlobalShuffle covers the statement form.
func BadGlobalShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `global math/rand function Shuffle uses ambient seed state`
}

// BadValueReference: storing the function is as bad as calling it.
var clock = time.Now // want `time\.Now in non-test code breaks replay determinism`

// GoodSeeded: explicit seeds are pure functions of their inputs, and
// methods on the local generator are deterministic.
func GoodSeeded(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(10)
}

// GoodInjectedTime takes the instant as input.
func GoodInjectedTime(now time.Time) int64 {
	return now.Unix()
}

// SuppressedTiming documents the benchmark-timing exception.
func SuppressedTiming() time.Time {
	return time.Now() //pdlint:allow nowallclock -- fixture: wall time measured for reporting only, never stored in state
}
