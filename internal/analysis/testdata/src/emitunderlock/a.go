// Package emitunderlock fixtures: re-introductions of the PR 4
// emit-under-mutex deadlock, the patterns that are safe, and a
// justified suppression.
package emitunderlock

import "sync"

// EmitQueue mirrors core.EmitQueue: buffered under its own mutex,
// delivered outside it.
type EmitQueue struct {
	mu   sync.Mutex
	q    []int
	emit func(int) bool
}

// Drain is the canonical negative case: its emit calls happen strictly
// between the locked regions, exactly like core.EmitQueue.Drain.
func (q *EmitQueue) Drain() {
	for {
		q.mu.Lock()
		if len(q.q) == 0 {
			q.mu.Unlock()
			return
		}
		batch := q.q
		q.q = nil
		q.mu.Unlock()

		for _, item := range batch {
			q.emit(item)
		}

		q.mu.Lock()
		q.mu.Unlock()
	}
}

type Detector struct {
	mu      sync.Mutex
	rw      sync.RWMutex
	emits   *EmitQueue
	emit    func(int) bool
	onDelta func(int) bool
}

// BadDrainUnderLock re-introduces the PR 4 deadlock: draining the
// queue while the state mutex is held.
func (d *Detector) BadDrainUnderLock() {
	d.mu.Lock()
	d.emits.Drain() // want `EmitQueue\.Drain called while d\.mu is held`
	d.mu.Unlock()
}

// BadCallbackUnderDefer holds the lock to the end of the function via
// defer, so the direct callback call is under it.
func (d *Detector) BadCallbackUnderDefer() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.emit(1) // want `the stored emit callback called while d\.mu is held`
}

// BadOnDeltaUnderRLock: a read lock blocks writers, so a re-entrant
// callback deadlocks all the same.
func (d *Detector) BadOnDeltaUnderRLock() {
	d.rw.RLock()
	d.onDelta(2) // want `the stored onDelta callback called while d\.rw is held`
	d.rw.RUnlock()
}

// drainEmits is the one-hop wrapper every engine has; calling it under
// the lock is the same bug.
func (d *Detector) drainEmits() { d.emits.Drain() }

// BadTransitive reaches the drain through the wrapper.
func (d *Detector) BadTransitive() {
	d.mu.Lock()
	d.drainEmits() // want `drainEmits \(which delivers emits\) called while d\.mu is held`
	d.mu.Unlock()
}

// GoodDrainAfterUnlock is the mandated pattern: mutate under the
// lock, deliver after releasing it.
func (d *Detector) GoodDrainAfterUnlock() {
	d.mu.Lock()
	d.mu.Unlock()
	d.emits.Drain()
}

// GoodRelock: delivery between two locked regions is outside both.
func (d *Detector) GoodRelock() {
	d.mu.Lock()
	d.mu.Unlock()
	d.emit(3)
	d.mu.Lock()
	d.mu.Unlock()
}

// GoodClosureScope: the closure runs on its own goroutine schedule;
// the lock taken by the enclosing function is not attributed to it,
// and its own balanced lock/unlock precedes the emit.
func (d *Detector) GoodClosureScope() func() {
	d.mu.Lock()
	defer d.mu.Unlock()
	return func() {
		d.mu.Lock()
		d.mu.Unlock()
		d.emit(4)
	}
}

// BadClosureOwnLock: the closure holds a lock it took itself.
func (d *Detector) BadClosureOwnLock() func() {
	return func() {
		d.mu.Lock()
		defer d.mu.Unlock()
		d.emit(5) // want `the stored emit callback called while d\.mu is held`
	}
}

// SuppressedDrain documents an intentional exception.
func (d *Detector) SuppressedDrain() {
	d.mu.Lock()
	d.emits.Drain() //pdlint:allow emitunderlock -- fixture: delivery is re-entrancy-safe here by construction
	d.mu.Unlock()
}
