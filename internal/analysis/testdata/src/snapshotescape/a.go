// Package snapshotescape fixtures: emitted *Delta literals aliasing
// live engine state versus the defensive-copy forms PR 5 mandates.
package snapshotescape

// Entity mirrors resolve.Entity: the Members slice is the aliasing
// hazard.
type Entity struct {
	ID      string
	Members []string
}

// EntityDelta mirrors resolve.EntityDelta — an emitted struct with
// reference-carrying fields.
type EntityDelta struct {
	Kind   int
	Entity Entity
	From   []string
}

// FlatDelta has no reference-carrying fields; its literals are never
// checked.
type FlatDelta struct {
	Kind int
	Sim  float64
}

type component struct {
	entity Entity
}

type engine struct {
	comps map[string]*component
	last  Entity
}

// snapshotEntity is the blessed helper: it hands out a private copy.
func snapshotEntity(e Entity) Entity {
	e.Members = append([]string(nil), e.Members...)
	return e
}

// passthrough returns its argument unchanged — same aliasing, wrong
// name.
func passthrough(e Entity) Entity { return e }

// BadFieldAlias re-introduces the PR 5 bug: the live component's
// entity (and its Members backing array) escapes into the delta.
func BadFieldAlias(c *component) EntityDelta {
	return EntityDelta{Kind: 1, Entity: c.entity} // want `field Entity of emitted EntityDelta aliases c\.entity`
}

// BadIndexAlias reads the live state through a map index.
func BadIndexAlias(e *engine, id string) EntityDelta {
	return EntityDelta{Kind: 1, From: e.comps[id].entity.Members} // want `field From of emitted EntityDelta aliases`
}

// BadPositional covers the unkeyed literal form.
func BadPositional(c *component) EntityDelta {
	return EntityDelta{1, c.entity, nil} // want `field Entity of emitted EntityDelta aliases c\.entity`
}

// BadOpaqueCall: a call that is not named like a copy helper proves
// nothing about ownership.
func BadOpaqueCall(c *component) EntityDelta {
	return EntityDelta{Kind: 1, Entity: passthrough(c.entity)} // want `field Entity of emitted EntityDelta is built by passthrough`
}

// GoodSnapshot is the mandated form.
func GoodSnapshot(c *component) EntityDelta {
	return EntityDelta{Kind: 1, Entity: snapshotEntity(c.entity)}
}

// GoodLocal: locally assembled values are the function's own.
func GoodLocal(ids []string) EntityDelta {
	var from []string
	for _, id := range ids {
		from = append(from, id)
	}
	return EntityDelta{Kind: 2, From: from}
}

// GoodFresh: literals, nil and append copies own their storage.
func GoodFresh(c *component) EntityDelta {
	return EntityDelta{
		Kind:   3,
		Entity: Entity{ID: c.entity.ID},
		From:   append([]string(nil), c.entity.Members...),
	}
}

// GoodFlat: FlatDelta carries no references, so plain copies are
// safe.
func GoodFlat(e *engine) FlatDelta {
	return FlatDelta{Kind: 4, Sim: 0.5}
}

// SuppressedAlias documents an intentional exception.
func SuppressedAlias(c *component) EntityDelta {
	return EntityDelta{Kind: 5, Entity: c.entity} //pdlint:allow snapshotescape -- fixture: the component is already dead, nothing else can mutate it
}

// members is a named slice; conversions are as fresh as their operand.
type members []string

// PtrDelta carries a pointer field and a channel field.
type PtrDelta struct {
	Entity *Entity
	Done   chan struct{}
}

// TreeDelta is self-referential: carriesRefs must terminate on the
// recursive type and still see the pointer.
type TreeDelta struct {
	Child *TreeDelta
}

// ArrayDelta holds a fixed array of strings: copied by value, no
// shared backing storage, so literals are never checked.
type ArrayDelta struct {
	Top [4]string
}

// GoodConversion: converting a local keeps its freshness.
func GoodConversion(ids []string) EntityDelta {
	local := append([]string(nil), ids...)
	return EntityDelta{Kind: 6, From: members(local)}
}

// GoodAddrLiteral: taking the address of a fresh literal is fresh.
func GoodAddrLiteral() PtrDelta {
	return PtrDelta{Entity: &Entity{ID: "x"}, Done: make(chan struct{})}
}

// BadAddrField: &engine-state is the sharpest alias of all.
func BadAddrField(c *component) PtrDelta {
	return PtrDelta{Entity: &c.entity} // want `field Entity of emitted PtrDelta aliases c\.entity`
}

// BadIndirectCall: a computed function value proves nothing about the
// ownership of what it returns.
func BadIndirectCall(fns []func() []string) EntityDelta {
	return EntityDelta{Kind: 7, From: fns[0]()} // want `field From of emitted EntityDelta is built by an indirect call`
}

// BadSliceExpr: re-slicing shares the backing array; the analyzer
// cannot prove the operand is consumer-owned.
func BadSliceExpr(ids []string) EntityDelta {
	return EntityDelta{Kind: 8, From: ids[1:]} // want `field From of emitted EntityDelta cannot be proven to own its storage`
}

// GoodRecursive: a fresh child literal under a recursive delta type.
func GoodRecursive() TreeDelta {
	return TreeDelta{Child: &TreeDelta{}}
}

type treeHolder struct{ root *TreeDelta }

// BadRecursive: the recursive pointer field still aliases when read
// from stored state.
func BadRecursive(h *treeHolder) TreeDelta {
	return TreeDelta{Child: h.root} // want `field Child of emitted TreeDelta aliases h\.root`
}

// GoodArray: array fields copy by value; no finding even from engine
// state.
func GoodArray(h *treeHolder, a [4]string) ArrayDelta {
	return ArrayDelta{Top: a}
}
