package rank

import "sort"

// MedianKey returns the item's median key value: the smallest key at which
// the cumulative (conditioned) key probability reaches one half. Unlike the
// expected rank, the median is robust against low-probability outlier
// alternatives — a tuple with 60% of its mass on "Joh…" keeps the median
// "Joh…" even if the remaining 40% scatters across the alphabet. The
// EXPERIMENTS.md S02 ablation motivates this variant: expected-position
// orderings collapse on multi-modal key distributions with independent
// noise.
func MedianKey(it Item) string {
	if len(it.Keys) == 0 {
		return ""
	}
	sorted := append([]keyProb(nil), toKeyProbs(it)...)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a].key < sorted[b].key })
	total := 0.0
	for _, kp := range sorted {
		total += kp.p
	}
	if total <= 0 {
		return sorted[0].key
	}
	acc := 0.0
	for _, kp := range sorted {
		acc += kp.p
		if acc >= total/2 {
			return kp.key
		}
	}
	return sorted[len(sorted)-1].key
}

type keyProb struct {
	key string
	p   float64
}

func toKeyProbs(it Item) []keyProb {
	out := make([]keyProb, len(it.Keys))
	for i, kp := range it.Keys {
		out[i] = keyProb{key: kp.Key, p: kp.P}
	}
	return out
}

// MedianOrder sorts item indices by median key (ties by most probable key,
// then ID). It shares the O(N log N) complexity of Order.
func MedianOrder(items []Item) []int {
	medians := make([]string, len(items))
	for i, it := range items {
		medians[i] = MedianKey(it)
	}
	idx := make([]int, len(items))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		ia, ib := idx[a], idx[b]
		if medians[ia] != medians[ib] {
			return medians[ia] < medians[ib]
		}
		ka, kb := topKey(items[ia]), topKey(items[ib])
		if ka != kb {
			return ka < kb
		}
		return items[ia].ID < items[ib].ID
	})
	return idx
}
