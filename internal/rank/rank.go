// Package rank orders tuples by uncertain key values, the fourth
// sorted-neighborhood approach of Sec. V-A: instead of forcing certain key
// values, tuples are sorted with a ranking function for probabilistic data.
//
// The implemented ranking is the expected-rank semantics (Cormode, Li, Yi;
// ICDE 2009, the paper's ref [35]), computed exactly in O(N log N) where N
// is the total number of key alternatives — matching the O(n·log n)
// complexity the paper cites for PRF^e-style ranking functions [37]:
//
//	E[rank(t)] = Σ over t's key values k of P(key_t = k) ·
//	             Σ_{s≠t} ( P(key_s < k) + ½·P(key_s = k) )
//
// Key distributions are conditioned on tuple membership so that every
// tuple's key mass sums to one (membership must not influence detection).
package rank

import (
	"sort"

	"probdedup/internal/keys"
)

// Item is a tuple identifier with its (conditioned) probabilistic key value.
type Item struct {
	ID   string
	Keys []keys.KeyProb
}

// ExpectedRanks computes E[rank] for every item. The expectation treats
// ties as contributing half a position, the standard convention.
//
// The computation builds a Universe by adding items in slice order and
// evaluating RankOf on each — the exact code path the incremental
// maintenance in internal/ssr uses, so batch and online expected ranks are
// bit-identical for the same item sequence.
func ExpectedRanks(items []Item) []float64 {
	u := NewUniverse()
	for _, it := range items {
		u.Add(it)
	}
	out := make([]float64, len(items))
	for i, it := range items {
		out[i] = u.RankOf(it)
	}
	return out
}

// Order returns the item indices sorted by expected rank (ascending), ties
// broken by most probable key string, then by ID for determinism. This is
// the tuple order the uncertain-key sorted neighborhood method uses
// (Fig. 13 right).
func Order(items []Item) []int {
	ranks := ExpectedRanks(items)
	idx := make([]int, len(items))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		ia, ib := idx[a], idx[b]
		if ranks[ia] != ranks[ib] {
			return ranks[ia] < ranks[ib]
		}
		ka, kb := topKey(items[ia]), topKey(items[ib])
		if ka != kb {
			return ka < kb
		}
		return items[ia].ID < items[ib].ID
	})
	return idx
}

func topKey(it Item) string {
	if len(it.Keys) == 0 {
		return ""
	}
	return it.Keys[0].Key
}

// ModeOrder is the baseline that sorts by each item's most probable key
// value only (ties by ID) — equivalent to resolving uncertainty before
// sorting and therefore blind to low-probability key values.
func ModeOrder(items []Item) []int {
	idx := make([]int, len(items))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		ka, kb := topKey(items[idx[a]]), topKey(items[idx[b]])
		if ka != kb {
			return ka < kb
		}
		return items[idx[a]].ID < items[idx[b]].ID
	})
	return idx
}
