package rank

import "sort"

// Universe is the incrementally maintained global key-mass table behind the
// expected-rank semantics: for every distinct key string it tracks the total
// probability mass across all member items and the cumulative mass strictly
// below the key. Add, Remove and RankOf together support exact online
// maintenance of the expected-rank order: RankOf evaluates the same
// summation, over the same values, in the same order as the batch
// ExpectedRanks, so a Universe grown by Add calls over items in relation
// order yields bit-identical ranks to a from-scratch batch computation over
// that relation.
//
// Item IDs must be unique across members; contributions are attributed by
// ID so that an item's own mass can be excluded from its rank.
type Universe struct {
	keys    []string    // distinct keys, ascending
	contrib [][]contrib // per key: contributions in arrival order
	total   []float64   // per key: left-fold sum of contrib masses
	below   []float64   // per key: total mass strictly below the key
	members int
}

type contrib struct {
	id string
	p  float64
}

// NewUniverse returns an empty key-mass table.
func NewUniverse() *Universe { return &Universe{} }

// Members reports how many items currently contribute mass.
func (u *Universe) Members() int { return u.members }

// keyIndex locates k in the sorted key list, reporting whether it is
// present.
func (u *Universe) keyIndex(k string) (int, bool) {
	i := sort.SearchStrings(u.keys, k)
	return i, i < len(u.keys) && u.keys[i] == k
}

// insertKeyAt splices an empty entry for key k at position i.
func (u *Universe) insertKeyAt(i int, k string) {
	u.keys = append(u.keys, "")
	copy(u.keys[i+1:], u.keys[i:])
	u.keys[i] = k
	u.contrib = append(u.contrib, nil)
	copy(u.contrib[i+1:], u.contrib[i:])
	u.contrib[i] = nil
	u.total = append(u.total, 0)
	copy(u.total[i+1:], u.total[i:])
	u.total[i] = 0
	u.below = append(u.below, 0)
	copy(u.below[i+1:], u.below[i:])
}

// removeKeyAt splices the key at position i out of the table.
func (u *Universe) removeKeyAt(i int) {
	u.keys = append(u.keys[:i], u.keys[i+1:]...)
	u.contrib = append(u.contrib[:i], u.contrib[i+1:]...)
	u.total = append(u.total[:i], u.total[i+1:]...)
	u.below = append(u.below[:i], u.below[i+1:]...)
}

// rebuildBelow recomputes the strictly-below prefix sums from the first
// touched key onward. The accumulation is the same ascending left fold the
// batch computation uses, so the values match it bit for bit.
func (u *Universe) rebuildBelow(from int) {
	running := 0.0
	if from > 0 {
		running = u.below[from-1] + u.total[from-1]
	}
	for i := from; i < len(u.keys); i++ {
		u.below[i] = running
		running += u.total[i]
	}
}

// Add registers the item's key mass. Adding an item twice corrupts the
// table; callers guard against duplicate IDs.
func (u *Universe) Add(it Item) {
	minTouched := len(u.keys)
	for _, kp := range it.Keys {
		i, ok := u.keyIndex(kp.Key)
		if !ok {
			u.insertKeyAt(i, kp.Key)
		}
		u.contrib[i] = append(u.contrib[i], contrib{it.ID, kp.P})
		u.total[i] += kp.P
		if i < minTouched {
			minTouched = i
		}
	}
	u.rebuildBelow(minTouched)
	u.members++
}

// Remove withdraws the item's key mass. The per-key total is re-summed over
// the surviving contributions in arrival order, so it equals the value a
// from-scratch build over the surviving items would produce.
func (u *Universe) Remove(it Item) {
	minTouched := len(u.keys)
	for _, kp := range it.Keys {
		i, ok := u.keyIndex(kp.Key)
		if !ok {
			continue
		}
		cs := u.contrib[i]
		for j, c := range cs {
			if c.id == it.ID {
				cs = append(cs[:j], cs[j+1:]...)
				break
			}
		}
		if len(cs) == 0 {
			u.removeKeyAt(i)
		} else {
			u.contrib[i] = cs
			sum := 0.0
			for _, c := range cs {
				sum += c.p
			}
			u.total[i] = sum
		}
		if i < minTouched {
			minTouched = i
		}
	}
	if minTouched < len(u.keys) {
		u.rebuildBelow(minTouched)
	}
	u.members--
}

// OwnStats is an item's own-mass exclusion tables — the mass the item
// itself holds strictly below and exactly at each of its own keys. The
// tables depend only on the item's distribution, never on the universe,
// so callers that rank the same item repeatedly precompute them once.
type OwnStats struct {
	below map[string]float64
	at    map[string]float64
}

// OwnStatsOf precomputes the item's own-mass exclusion tables by the
// same ascending own-key accumulation the batch computation does.
func OwnStatsOf(it Item) OwnStats {
	ownSorted := append([]keyProb(nil), toKeyProbs(it)...)
	sort.Slice(ownSorted, func(a, b int) bool { return ownSorted[a].key < ownSorted[b].key })
	own := OwnStats{below: map[string]float64{}, at: map[string]float64{}}
	acc := 0.0
	for _, kp := range ownSorted {
		own.below[kp.key] = acc
		own.at[kp.key] += kp.p
		acc += kp.p
	}
	return own
}

// RankOf evaluates the expected rank of a current member:
//
//	E[rank(t)] = Σ over t's keys k of P_t(k) · (othersBelow(k) + ½·othersAt(k))
//
// The item must have been Added (its own mass is subtracted out). The
// summation order mirrors ExpectedRanks exactly.
func (u *Universe) RankOf(it Item) float64 {
	return u.RankOfWith(it, OwnStatsOf(it))
}

// RankOfWith is RankOf with the item's own-mass tables supplied by the
// caller — bit-identical to RankOf, minus the per-call precomputation.
func (u *Universe) RankOfWith(it Item, own OwnStats) float64 {
	e := 0.0
	for _, kp := range it.Keys {
		i, ok := u.keyIndex(kp.Key)
		if !ok {
			continue
		}
		othersBelow := u.below[i] - own.below[kp.Key]
		othersAt := u.total[i] - own.at[kp.Key]
		e += kp.P * (othersBelow + 0.5*othersAt)
	}
	return e
}

// SpanOverlaps reports whether the item's key span [min, max] intersects
// the closed key range [lo, hi]. Only items whose span overlaps an
// inserted or removed item's span can change relative expected-rank order;
// every other item's rank either stays bit-identical (all keys strictly
// below) or shifts uniformly by exactly one position (all keys strictly
// above), which preserves order — see the incremental SNMRanked notes in
// internal/ssr.
func SpanOverlaps(it Item, lo, hi string) bool {
	min, max := KeySpan(it)
	return min <= hi && max >= lo
}

// KeySpan returns the lexicographically smallest and largest key the item
// has mass on. Empty-key items span ["", ""].
func KeySpan(it Item) (string, string) {
	if len(it.Keys) == 0 {
		return "", ""
	}
	min, max := it.Keys[0].Key, it.Keys[0].Key
	for _, kp := range it.Keys[1:] {
		if kp.Key < min {
			min = kp.Key
		}
		if kp.Key > max {
			max = kp.Key
		}
	}
	return min, max
}
