package rank

import (
	"fmt"
	"math/rand"
	"testing"

	"probdedup/internal/keys"
)

// randItems draws items with rng-valued key masses, the same shape the key
// derivation produces for generated corpora.
func randItems(rng *rand.Rand, n int) []Item {
	letters := []string{"al", "bo", "ci", "du", "ek", "fi", "go", "hu"}
	items := make([]Item, n)
	for i := range items {
		k := 1 + rng.Intn(3)
		var kps []keys.KeyProb
		seen := map[string]bool{}
		rem := 1.0
		for j := 0; j < k; j++ {
			key := letters[rng.Intn(len(letters))]
			if seen[key] {
				continue
			}
			seen[key] = true
			p := rem
			if j < k-1 {
				p = rng.Float64() * rem
			}
			rem -= p
			kps = append(kps, keys.KeyProb{Key: key, P: p})
		}
		if len(kps) == 0 {
			kps = []keys.KeyProb{{Key: letters[i%len(letters)], P: 1}}
		}
		items[i] = Item{ID: fmt.Sprintf("t%03d", i), Keys: kps}
	}
	return items
}

// TestUniverseMatchesBatchBitwise grows a universe one item at a time and
// checks after every step that RankOf over the current members equals a
// from-scratch ExpectedRanks over the same sequence, bit for bit. This is
// the property the incremental SNMRanked index in internal/ssr relies on.
func TestUniverseMatchesBatchBitwise(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		items := randItems(rng, 30)
		u := NewUniverse()
		var members []Item
		for _, it := range items {
			u.Add(it)
			members = append(members, it)
			batch := ExpectedRanks(members)
			for i, m := range members {
				if got := u.RankOf(m); got != batch[i] {
					t.Fatalf("seed %d after adding %s: RankOf(%s)=%v, batch=%v",
						seed, it.ID, m.ID, got, batch[i])
				}
			}
		}
	}
}

// TestUniverseRemoveMatchesBatchBitwise interleaves removals: after
// removing an item, ranks over the survivors (in original insertion order)
// must equal a from-scratch batch over that survivor sequence, bit for bit.
func TestUniverseRemoveMatchesBatchBitwise(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(100 + seed))
		items := randItems(rng, 25)
		u := NewUniverse()
		for _, it := range items {
			u.Add(it)
		}
		members := append([]Item(nil), items...)
		for len(members) > 1 {
			victim := rng.Intn(len(members))
			u.Remove(members[victim])
			members = append(members[:victim], members[victim+1:]...)
			batch := ExpectedRanks(members)
			for i, m := range members {
				if got := u.RankOf(m); got != batch[i] {
					t.Fatalf("seed %d with %d members: RankOf(%s)=%v, batch=%v",
						seed, len(members), m.ID, got, batch[i])
				}
			}
		}
	}
}

func TestUniverseEmptyAndSpan(t *testing.T) {
	u := NewUniverse()
	if u.Members() != 0 {
		t.Fatal("fresh universe has members")
	}
	it := Item{ID: "a", Keys: []keys.KeyProb{{Key: "m", P: 0.5}, {Key: "c", P: 0.5}}}
	u.Add(it)
	if u.Members() != 1 {
		t.Fatal("member count")
	}
	if got := u.RankOf(it); got != 0 {
		t.Fatalf("lone item rank %v", got)
	}
	min, max := KeySpan(it)
	if min != "c" || max != "m" {
		t.Fatalf("span [%s,%s]", min, max)
	}
	if !SpanOverlaps(it, "a", "d") || !SpanOverlaps(it, "d", "e") || SpanOverlaps(it, "n", "z") {
		t.Fatal("span overlap")
	}
	if min, max := KeySpan(Item{ID: "x"}); min != "" || max != "" {
		t.Fatal("empty span")
	}
	u.Remove(it)
	if u.Members() != 0 || len(u.keys) != 0 {
		t.Fatal("universe not empty after removal")
	}
	// Removing a key the universe never saw is a no-op.
	u.Add(it)
	u.Remove(Item{ID: "z", Keys: []keys.KeyProb{{Key: "zz", P: 1}}})
	if got := u.RankOf(it); got != 0 {
		t.Fatalf("rank after foreign removal %v", got)
	}
}
