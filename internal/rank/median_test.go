package rank

import (
	"testing"

	"probdedup/internal/keys"
)

func TestMedianKey(t *testing.T) {
	cases := []struct {
		name string
		item Item
		want string
	}{
		{"certain", Item{ID: "a", Keys: []keys.KeyProb{{Key: "k", P: 1}}}, "k"},
		{"majority", Item{ID: "a", Keys: []keys.KeyProb{
			{Key: "zzz", P: 0.4}, {Key: "aaa", P: 0.6}}}, "aaa"},
		{"outlier-robust", Item{ID: "a", Keys: []keys.KeyProb{
			{Key: "Joh", P: 0.6}, {Key: "Zzz", P: 0.2}, {Key: "Aaa", P: 0.2}}}, "Joh"},
		{"empty", Item{ID: "a"}, ""},
		{"exact-half", Item{ID: "a", Keys: []keys.KeyProb{
			{Key: "a", P: 0.5}, {Key: "b", P: 0.5}}}, "a"},
	}
	for _, c := range cases {
		if got := MedianKey(c.item); got != c.want {
			t.Errorf("%s: MedianKey = %q, want %q", c.name, got, c.want)
		}
	}
}

func TestMedianOrderRobustAgainstOutliers(t *testing.T) {
	// Two duplicates share 60% mass on "Joh…" but have independent noise
	// alternatives at opposite ends of the key space. Expected-rank
	// ordering pulls them apart; median ordering keeps them adjacent.
	items := []Item{
		{ID: "dup1", Keys: []keys.KeyProb{{Key: "Johpi", P: 0.6}, {Key: "Aaaaa", P: 0.4}}},
		{ID: "dup2", Keys: []keys.KeyProb{{Key: "Johpi", P: 0.6}, {Key: "Zzzzz", P: 0.4}}},
		{ID: "x1", Keys: []keys.KeyProb{{Key: "Bbbbb", P: 1}}},
		{ID: "x2", Keys: []keys.KeyProb{{Key: "Ccccc", P: 1}}},
		{ID: "x3", Keys: []keys.KeyProb{{Key: "Ddddd", P: 1}}},
		{ID: "x4", Keys: []keys.KeyProb{{Key: "Eeeee", P: 1}}},
		{ID: "x5", Keys: []keys.KeyProb{{Key: "Fffff", P: 1}}},
	}
	med := MedianOrder(items)
	pos := map[string]int{}
	for i, idx := range med {
		pos[items[idx].ID] = i
	}
	if d := pos["dup1"] - pos["dup2"]; d != 1 && d != -1 {
		t.Fatalf("median order separates the duplicates: %v", med)
	}
}

func TestMedianOrderIsPermutation(t *testing.T) {
	items := r34Items()
	order := MedianOrder(items)
	seen := map[int]bool{}
	for _, i := range order {
		if seen[i] || i < 0 || i >= len(items) {
			t.Fatalf("not a permutation: %v", order)
		}
		seen[i] = true
	}
}
