package rank

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"probdedup/internal/keys"
	"probdedup/internal/paperdata"
)

func almost(a, b float64) bool { return math.Abs(a-b) <= 1e-9 }

// r34Items builds the ranking input of Fig. 13: the conditioned key
// distributions of ℛ34 under the paper's key name:3+job:2.
func r34Items() []Item {
	def := keys.NewDef(keys.Part{Attr: 0, Prefix: 3}, keys.Part{Attr: 1, Prefix: 2})
	r := paperdata.R34()
	items := make([]Item, 0, len(r.Tuples))
	for _, x := range r.Tuples {
		items = append(items, Item{ID: x.ID, Keys: def.XTupleKeyDist(x, true)})
	}
	return items
}

func TestE08Fig13RankedOrder(t *testing.T) {
	// Fig. 13 (right): ranking by the uncertain key values orders ℛ34 as
	// t32, t31, t41, t43, t42.
	items := r34Items()
	order := Order(items)
	got := make([]string, len(order))
	for i, idx := range order {
		got[i] = items[idx].ID
	}
	want := []string{"t32", "t31", "t41", "t43", "t42"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ranked order %v, want %v", got, want)
		}
	}
}

func TestExpectedRanksAgainstBruteForce(t *testing.T) {
	// Exact expected rank by enumerating all key-assignment combinations.
	items := []Item{
		{ID: "a", Keys: []keys.KeyProb{{Key: "b", P: 0.5}, {Key: "d", P: 0.5}}},
		{ID: "b", Keys: []keys.KeyProb{{Key: "c", P: 1.0}}},
		{ID: "c", Keys: []keys.KeyProb{{Key: "a", P: 0.3}, {Key: "e", P: 0.7}}},
	}
	got := ExpectedRanks(items)
	want := bruteForceExpectedRanks(items)
	for i := range want {
		if !almost(got[i], want[i]) {
			t.Errorf("item %d: %v, want %v", i, got[i], want[i])
		}
	}
}

func TestExpectedRanksWithTies(t *testing.T) {
	// Two items sharing a certain key: each expects half a position from
	// the other.
	items := []Item{
		{ID: "a", Keys: []keys.KeyProb{{Key: "k", P: 1}}},
		{ID: "b", Keys: []keys.KeyProb{{Key: "k", P: 1}}},
		{ID: "c", Keys: []keys.KeyProb{{Key: "z", P: 1}}},
	}
	got := ExpectedRanks(items)
	if !almost(got[0], 0.5) || !almost(got[1], 0.5) || !almost(got[2], 2) {
		t.Fatalf("ranks = %v", got)
	}
}

func bruteForceExpectedRanks(items []Item) []float64 {
	n := len(items)
	exp := make([]float64, n)
	var rec func(i int, assign []string, p float64)
	rec = func(i int, assign []string, p float64) {
		if i == n {
			for a := 0; a < n; a++ {
				r := 0.0
				for b := 0; b < n; b++ {
					if b == a {
						continue
					}
					if assign[b] < assign[a] {
						r++
					} else if assign[b] == assign[a] {
						r += 0.5
					}
				}
				exp[a] += p * r
			}
			return
		}
		for _, kp := range items[i].Keys {
			assign[i] = kp.Key
			rec(i+1, assign, p*kp.P)
		}
	}
	rec(0, make([]string, n), 1)
	return exp
}

func TestQuickExpectedRanksMatchBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	letters := []string{"a", "b", "c", "d", "e"}
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.Intn(3)
		items := make([]Item, n)
		for i := range items {
			k := 1 + rng.Intn(3)
			rem := 1.0
			var kps []keys.KeyProb
			seen := map[string]bool{}
			for j := 0; j < k; j++ {
				key := letters[rng.Intn(len(letters))]
				if seen[key] {
					continue
				}
				seen[key] = true
				p := rem
				if j < k-1 {
					p = rng.Float64() * rem
				}
				rem -= p
				if p > 1e-9 {
					kps = append(kps, keys.KeyProb{Key: key, P: p})
				}
			}
			if len(kps) == 0 {
				kps = []keys.KeyProb{{Key: "a", P: 1}}
			}
			// Renormalize to 1 so brute force interprets them as exhaustive.
			total := 0.0
			for _, kp := range kps {
				total += kp.P
			}
			for j := range kps {
				kps[j].P /= total
			}
			items[i] = Item{ID: string(rune('A' + i)), Keys: kps}
		}
		got := ExpectedRanks(items)
		want := bruteForceExpectedRanks(items)
		for i := range want {
			if !almost(got[i], want[i]) {
				t.Fatalf("trial %d item %d: got %v want %v (items=%v)", trial, i, got[i], want[i], items)
			}
		}
	}
}

func TestOrderIsPermutation(t *testing.T) {
	items := r34Items()
	order := Order(items)
	if len(order) != len(items) {
		t.Fatalf("order length %d", len(order))
	}
	seen := map[int]bool{}
	for _, i := range order {
		if i < 0 || i >= len(items) || seen[i] {
			t.Fatalf("order %v is not a permutation", order)
		}
		seen[i] = true
	}
}

func TestModeOrder(t *testing.T) {
	items := r34Items()
	order := ModeOrder(items)
	// Mode keys: t31→Johpi, t32→Jimba, t41→Johpi, t42→Tomme, t43→Seapi.
	got := make([]string, len(order))
	for i, idx := range order {
		got[i] = items[idx].ID
	}
	want := []string{"t32", "t31", "t41", "t43", "t42"} // Jimba,Johpi,Johpi,Seapi,Tomme
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("mode order %v, want %v", got, want)
		}
	}
	// Mode order must be sorted by mode key.
	ks := make([]string, len(order))
	for i, idx := range order {
		ks[i] = items[idx].Keys[0].Key
	}
	if !sort.StringsAreSorted(ks) {
		t.Fatalf("mode keys not sorted: %v", ks)
	}
}

func TestEmptyAndSingleton(t *testing.T) {
	if got := ExpectedRanks(nil); len(got) != 0 {
		t.Fatal("nil items")
	}
	single := []Item{{ID: "a", Keys: []keys.KeyProb{{Key: "x", P: 1}}}}
	if got := ExpectedRanks(single); !almost(got[0], 0) {
		t.Fatalf("single item rank %v", got[0])
	}
	if got := Order(single); len(got) != 1 || got[0] != 0 {
		t.Fatalf("single order %v", got)
	}
}
