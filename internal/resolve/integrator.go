package resolve

import (
	"fmt"
	"sort"
	"sync"

	"probdedup/internal/core"
	"probdedup/internal/decision"
	"probdedup/internal/lineage"
	"probdedup/internal/pdb"
	"probdedup/internal/verify"
)

// EntityDeltaKind classifies one change to the live entity set.
type EntityDeltaKind int

const (
	// EntityCreated reports a brand-new entity none of whose members
	// belonged to a resident entity before (a fresh arrival, or a batch
	// of fresh arrivals matching among themselves).
	EntityCreated EntityDeltaKind = iota
	// EntityMerged reports an entity that absorbed the members of one
	// or more prior entities (From), possibly together with fresh
	// arrivals.
	EntityMerged
	// EntitySplit reports an entity holding a strict subset of one
	// prior entity's members (From) — a match drop or a tuple removal
	// disconnected the component.
	EntitySplit
	// EntityRefused reports an entity whose membership is unchanged
	// but whose integration context was re-derived: an
	// uncertain-duplicate partner appeared, disappeared, or changed
	// identity, so the entity's lineage and confidence may differ.
	EntityRefused
	// EntityRetired reports an entity that left the result because its
	// last member was removed.
	EntityRetired
)

// String names the kind (the wire form of pdedup -follow -integrate).
func (k EntityDeltaKind) String() string {
	switch k {
	case EntityCreated:
		return "created"
	case EntityMerged:
		return "merged"
	case EntitySplit:
		return "split"
	case EntityRefused:
		return "refused"
	case EntityRetired:
		return "retired"
	}
	return fmt.Sprintf("EntityDeltaKind(%d)", int(k))
}

// EntityDelta is one change to the live integrated result, emitted by
// an Integrator as tuples arrive and leave.
type EntityDelta struct {
	// Kind classifies the change.
	Kind EntityDeltaKind
	// Entity is the entity's state after the change; for
	// EntityRetired, its last state before leaving the result.
	Entity Entity
	// From lists the prior entity IDs this entity replaced, in sorted
	// order: the absorbed entities of a merge, or the split origin.
	// Nil for created, refused and retired events.
	From []string
}

// IntegratorStats summarizes an Integrator's state and cumulative
// work.
type IntegratorStats struct {
	// Detector holds the composed online detection engine's stats.
	Detector core.DetectorStats
	// Entities is the current number of resolved entities.
	Entities int
	// Events counts the entity deltas enqueued since construction.
	Events int
	// Stopped reports that the emit callback ended delta delivery.
	Stopped bool
}

// component is one live connected component of the declared-match
// graph: its members (sorted by tuple ID) and their fused entity.
type component struct {
	members []string
	entity  Entity
}

// Integrator is the long-lived online integration engine — the
// incremental form of Resolve, one layer above the Detector. Tuples
// arrive (Add/AddBatch) and leave (Remove); a composed core.Detector
// maintains the classified pair set and the Integrator folds its
// MatchDelta stream into a live Resolution: declared matches (M)
// maintain entity membership through component-local rebuilds (only
// the connected components an operation touches are re-grouped and
// re-fused, never the whole relation), and possible matches (P) are
// kept as uncertain duplicates whose lineage and confidences are
// re-derived per touched entity.
//
// The exactness contract extends the Detector's one layer up: after
// any sequence of Add, AddBatch and Remove calls, Flush returns
// exactly the Resolution the batch Resolve would produce over
// core.Detect on the resident relation, at any Options.Workers
// setting. Per-arrival cost is proportional to the touched components
// and their uncertain-duplicate neighborhoods, not to the resident
// count.
//
// The emit callback receives typed EntityDelta events (created,
// merged, split, refused, retired) in a deterministic order per
// operation, sequentially, outside the integrator's lock — it may
// call back into the integrator. All methods are safe for concurrent
// use.
type Integrator struct {
	mu  sync.Mutex
	det *core.Detector
	cal Calibration

	// tuples holds the standardized resident tuples, shared read-only
	// with the detector (core.Detector.Resident).
	tuples map[string]*pdb.XTuple
	// madj is the declared-match (M) adjacency — edges define the
	// entity components. padj is the possible-match (P) adjacency,
	// used to find the entities whose uncertain-duplicate context an
	// operation touches. ppairs holds the live possible matches.
	madj   map[string]map[string]struct{}
	padj   map[string]map[string]struct{}
	ppairs map[verify.Pair]core.Match
	// compOf locates every resident tuple's live component.
	compOf map[string]*component
	ncomps int
	events int

	// pending collects the detector's match deltas during one
	// operation; the detector delivers them before Add/AddBatch/Remove
	// return. Guarded by mu.
	pending []core.MatchDelta

	// emits buffers entity deltas in state-change order under mu and
	// delivers them strictly outside it, one goroutine at a time, so
	// the callback can re-enter the integrator (the Detector's
	// delivery pipeline, shared via core.EmitQueue).
	emits *core.EmitQueue[EntityDelta]
}

// NewIntegrator builds an empty online integration engine over the
// given schema, composing a core.Detector internally (opts are
// validated exactly as in core.NewDetector; the reduction method must
// support incremental maintenance). Uncertain-duplicate probabilities
// are calibrated like batch Resolve's default: LinearCalibration over
// opts.Final with lo=0.1, hi=0.9.
//
// emit receives every entity delta as it happens and may be nil when
// only Flush snapshots are needed; returning false permanently stops
// delta delivery (state maintenance continues).
func NewIntegrator(schema []string, opts core.Options, emit func(EntityDelta) bool) (*Integrator, error) {
	ig := &Integrator{
		cal:    LinearCalibration(opts.Final, 0.1, 0.9),
		tuples: map[string]*pdb.XTuple{},
		madj:   map[string]map[string]struct{}{},
		padj:   map[string]map[string]struct{}{},
		ppairs: map[verify.Pair]core.Match{},
		compOf: map[string]*component{},
		emits:  core.NewEmitQueue(emit),
	}
	det, err := core.NewDetector(schema, opts, func(md core.MatchDelta) bool {
		ig.pending = append(ig.pending, md)
		return true
	})
	if err != nil {
		return nil, err
	}
	ig.det = det
	return ig, nil
}

// Add inserts one tuple: the composed detector classifies it against
// its incremental candidates, and the resulting match deltas are
// folded into the live entity set — rebuilding only the touched
// components. Entity deltas are emitted after the state update,
// outside the integrator's lock.
func (ig *Integrator) Add(x *pdb.XTuple) error {
	ig.mu.Lock()
	err := ig.addLocked(x)
	ig.mu.Unlock()
	ig.drainEvents()
	return err
}

func (ig *Integrator) addLocked(x *pdb.XTuple) error {
	ig.pending = ig.pending[:0]
	if err := ig.det.Add(x); err != nil {
		return err
	}
	t, _ := ig.det.Resident(x.ID)
	ig.tuples[x.ID] = t
	return ig.applyOp(ig.pending, []string{x.ID}, "")
}

// AddBatch inserts the tuples as one unit of work: the detector
// verifies the batch's net pair deltas (fanning out across
// Options.Workers) and the integrator folds them into the entity set
// with one component rebuild. The emitted entity-delta stream is the
// batch's net effect. On failure the detector's partial-apply
// boundary holds (see core.Detector.AddBatch); the tuples that did
// become resident are integrated before the error is returned.
func (ig *Integrator) AddBatch(xs []*pdb.XTuple) error {
	ig.mu.Lock()
	err := ig.addBatchLocked(xs)
	ig.mu.Unlock()
	ig.drainEvents()
	return err
}

func (ig *Integrator) addBatchLocked(xs []*pdb.XTuple) error {
	ig.pending = ig.pending[:0]
	batchErr := ig.det.AddBatch(xs)
	var added []string
	for _, x := range xs {
		if x == nil {
			continue
		}
		if _, already := ig.tuples[x.ID]; already {
			continue
		}
		if t, ok := ig.det.Resident(x.ID); ok {
			ig.tuples[x.ID] = t
			added = append(added, x.ID)
		}
	}
	if err := ig.applyOp(ig.pending, added, ""); err != nil {
		return err
	}
	return batchErr
}

// Remove drops the tuple: the detector retracts its pair decisions,
// and the component it belonged to is rebuilt without it — splitting
// it when the removal disconnects the match graph, retiring the
// entity when the last member leaves. Removing an ID that is not
// resident fails with an error wrapping core.ErrUnknownID and changes
// nothing.
func (ig *Integrator) Remove(id string) error {
	ig.mu.Lock()
	err := ig.removeLocked(id)
	ig.mu.Unlock()
	ig.drainEvents()
	return err
}

func (ig *Integrator) removeLocked(id string) error {
	ig.pending = ig.pending[:0]
	if err := ig.det.Remove(id); err != nil {
		return err
	}
	err := ig.applyOp(ig.pending, nil, id)
	delete(ig.tuples, id)
	delete(ig.compOf, id)
	delete(ig.madj, id)
	delete(ig.padj, id)
	return err
}

// snapshotEntity returns an entity whose Members slice is the
// caller's own copy: events and Flush results may be reordered or
// truncated by consumers (batch Resolve's output allows it), and
// handing out the live component's backing array would let such a
// mutation corrupt the incremental state.
func snapshotEntity(e Entity) Entity {
	e.Members = append([]string(nil), e.Members...)
	return e
}

// addEdge records an undirected edge in an adjacency map.
func addEdge(adj map[string]map[string]struct{}, a, b string) {
	for _, e := range [2][2]string{{a, b}, {b, a}} {
		set := adj[e[0]]
		if set == nil {
			set = map[string]struct{}{}
			adj[e[0]] = set
		}
		set[e[1]] = struct{}{}
	}
}

// delEdge removes an undirected edge, dropping empty adjacency sets.
func delEdge(adj map[string]map[string]struct{}, a, b string) {
	for _, e := range [2][2]string{{a, b}, {b, a}} {
		if set := adj[e[0]]; set != nil {
			delete(set, e[1])
			if len(set) == 0 {
				delete(adj, e[0])
			}
		}
	}
}

// applyOp folds one operation's match deltas into the live entity
// state: the M/P graphs are updated delta by delta, then the
// components an M-edge change, arrival or removal touches are rebuilt
// locally (re-grouped via the match adjacency, re-fused per
// component), and typed entity deltas are enqueued in a deterministic
// order — retirements first, then membership changes, then refusals,
// each sorted by entity ID. removed names a tuple the detector
// already dropped; added lists tuple IDs that became resident in this
// operation.
func (ig *Integrator) applyOp(deltas []core.MatchDelta, added []string, removed string) error {
	// Phase 1: graph maintenance. dirty collects components whose
	// membership may change; refused collects components whose
	// uncertain-duplicate context changed without a membership change.
	dirty := map[*component]bool{}
	refused := map[*component]bool{}
	mark := func(id string) {
		if c := ig.compOf[id]; c != nil {
			dirty[c] = true
		}
	}
	markRefused := func(p verify.Pair) {
		ca, cb := ig.compOf[p.A], ig.compOf[p.B]
		// Intra-component possible matches carry no uncertainty in the
		// result (Resolve ignores them), and endpoints without a
		// component yet are fresh arrivals the rebuild phase covers.
		if ca != nil && cb != nil && ca != cb {
			refused[ca] = true
			refused[cb] = true
		}
	}
	for _, md := range deltas {
		a, b := md.Pair.A, md.Pair.B
		switch {
		case md.Class == decision.M && md.Kind == core.DeltaAdd:
			addEdge(ig.madj, a, b)
			mark(a)
			mark(b)
		case md.Class == decision.M && md.Kind == core.DeltaDrop:
			delEdge(ig.madj, a, b)
			mark(a)
			mark(b)
		case md.Class == decision.P && md.Kind == core.DeltaAdd:
			ig.ppairs[md.Pair] = md.Match
			addEdge(ig.padj, a, b)
			markRefused(md.Pair)
		case md.Class == decision.P && md.Kind == core.DeltaDrop:
			delete(ig.ppairs, md.Pair)
			delEdge(ig.padj, a, b)
			markRefused(md.Pair)
		}
		// Class U pairs never appear in the integrated result.
	}
	if removed != "" {
		mark(removed)
	}

	// Phase 2: component-local rebuild. The affected universe is the
	// union of the dirty components' members (minus the removed
	// tuple) plus the fresh arrivals; match edges never cross from a
	// touched component to an untouched one without both being dirty,
	// so re-grouping within this universe is exact.
	affected := map[string]bool{}
	oldComps := make([]*component, 0, len(dirty))
	for c := range dirty {
		oldComps = append(oldComps, c)
		for _, m := range c.members {
			if m != removed {
				affected[m] = true
			}
		}
	}
	for _, id := range added {
		affected[id] = true
	}

	// Snapshot the old assignment for event classification. oldFull is
	// the old component's complete member count (removed tuple
	// included) — the reference for the unchanged-membership check —
	// while oldLive counts survivors, detecting retirement.
	oldEntityOf := map[string]string{} // surviving member → old entity ID
	oldFull := map[string]int{}        // old entity ID → full member count
	oldLive := map[string]int{}        // old entity ID → surviving member count
	oldEntity := map[string]Entity{}   // old entity ID → entity snapshot
	oldCompByID := map[string]*component{}
	for _, c := range oldComps {
		oldEntity[c.entity.ID] = c.entity
		oldCompByID[c.entity.ID] = c
		oldFull[c.entity.ID] = len(c.members)
		n := 0
		for _, m := range c.members {
			if m == removed {
				continue
			}
			oldEntityOf[m] = c.entity.ID
			n++
		}
		oldLive[c.entity.ID] = n
	}

	// Re-group the affected universe over the match adjacency,
	// deterministically (seeds in sorted order, members sorted).
	ids := make([]string, 0, len(affected))
	for id := range affected {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	assigned := map[string]bool{}
	var groups [][]string
	for _, id := range ids {
		if assigned[id] {
			continue
		}
		assigned[id] = true
		members := []string{}
		stack := []string{id}
		for len(stack) > 0 {
			cur := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			members = append(members, cur)
			for n := range ig.madj[cur] {
				if !assigned[n] {
					assigned[n] = true
					stack = append(stack, n)
				}
			}
		}
		sort.Strings(members)
		groups = append(groups, members)
	}

	// Phase 3: rebuild and classify. Components whose membership is
	// unchanged are reused (no re-fusion, no membership event); the
	// rest are re-fused and reported as created/merged/split.
	var events []EntityDelta
	isNew := map[*component]bool{}
	reused := map[*component]bool{}
	built := 0
	for _, members := range groups {
		srcsSet := map[string]bool{}
		fromOld := 0
		for _, m := range members {
			if eid, ok := oldEntityOf[m]; ok {
				srcsSet[eid] = true
				fromOld++
			}
		}
		srcs := make([]string, 0, len(srcsSet))
		for eid := range srcsSet {
			srcs = append(srcs, eid)
		}
		sort.Strings(srcs)

		if len(srcs) == 1 && fromOld == len(members) && oldFull[srcs[0]] == len(members) {
			// Identical membership: the component survives as is (an
			// added or dropped match edge inside it changed nothing).
			reused[oldCompByID[srcs[0]]] = true
			continue
		}
		e, err := buildEntity(members, ig.tuples)
		if err != nil {
			return fmt.Errorf("resolve: re-fusing component %v: %w", members, err)
		}
		c := &component{members: members, entity: e}
		for _, m := range members {
			ig.compOf[m] = c
		}
		isNew[c] = true
		built++
		kind := EntityCreated
		var from []string
		switch {
		case fromOld == 0:
			kind = EntityCreated
		case len(srcs) >= 2 || fromOld < len(members):
			kind = EntityMerged
			from = srcs
		default:
			kind = EntitySplit
			from = srcs
		}
		events = append(events, EntityDelta{Kind: kind, Entity: snapshotEntity(e), From: from})
	}

	// Retired: a dirty component none of whose members survive — the
	// removed tuple was its last member.
	for eid, n := range oldLive {
		if n == 0 {
			events = append(events, EntityDelta{Kind: EntityRetired, Entity: snapshotEntity(oldEntity[eid])})
		}
	}
	ig.ncomps += built + len(reused) - len(oldComps)

	// Phase 4: refusal propagation. A rebuilt component's entity ID
	// changed, so every uncertain-duplicate partner of its members
	// holds a renamed dup symbol: unchanged components P-adjacent to a
	// new component are re-derived. Dead components (replaced or
	// retired) and new ones (already reported) are filtered out.
	dead := map[*component]bool{}
	for _, c := range oldComps {
		if !reused[c] {
			dead[c] = true
		}
	}
	for c := range isNew {
		for _, m := range c.members {
			for n := range ig.padj[m] {
				if cn := ig.compOf[n]; cn != nil && cn != c {
					refused[cn] = true
				}
			}
		}
	}
	var refusedEvents []EntityDelta
	for c := range refused {
		if dead[c] || isNew[c] {
			continue
		}
		refusedEvents = append(refusedEvents, EntityDelta{Kind: EntityRefused, Entity: snapshotEntity(c.entity)})
	}

	// Phase 5: deterministic event order — retirements, then
	// membership changes, then refusals, each sorted by entity ID.
	rank := func(k EntityDeltaKind) int {
		if k == EntityRetired {
			return 0
		}
		return 1
	}
	sort.SliceStable(events, func(i, j int) bool {
		ri, rj := rank(events[i].Kind), rank(events[j].Kind)
		if ri != rj {
			return ri < rj
		}
		return events[i].Entity.ID < events[j].Entity.ID
	})
	sort.Slice(refusedEvents, func(i, j int) bool {
		return refusedEvents[i].Entity.ID < refusedEvents[j].Entity.ID
	})
	events = append(events, refusedEvents...)
	ig.enqueueEvents(events)
	return nil
}

// enqueueEvents buffers one operation's entity deltas for delivery
// outside the state lock (callers hold ig.mu); drainEvents delivers
// after the lock is released. Both delegate to the shared
// core.EmitQueue.
func (ig *Integrator) enqueueEvents(events []EntityDelta) {
	ig.events += len(events)
	ig.emits.Enqueue(events...)
}

func (ig *Integrator) drainEvents() { ig.emits.Drain() }

// Flush materializes the live integrated state as an exact Resolution
// — the same Resolution batch Resolve would produce over core.Detect
// on the resident relation: canonical entity and member order,
// uncertain duplicates with lineage symbols declared in sorted order,
// and the lineage-annotated result relation.
func (ig *Integrator) Flush() (*Resolution, error) {
	ig.mu.Lock()
	defer ig.mu.Unlock()
	seen := map[*component]bool{}
	var entities []Entity // nil when empty, matching batch Resolve's zero value
	for _, c := range ig.compOf {
		if !seen[c] {
			seen[c] = true
			entities = append(entities, snapshotEntity(c.entity))
		}
	}
	sort.Slice(entities, func(i, j int) bool { return entities[i].Members[0] < entities[j].Members[0] })
	r := &Resolution{Universe: lineage.NewUniverse(), Entities: entities}
	if err := finishResolution(r, ig.ppairs, ig.cal); err != nil {
		return nil, err
	}
	return r, nil
}

// FlushResult exposes the composed detector's exact pairwise Result
// on the residents (see core.Detector.Flush).
func (ig *Integrator) FlushResult() *core.Result {
	return ig.det.Flush()
}

// Len returns the resident tuple count.
func (ig *Integrator) Len() int {
	return ig.det.Len()
}

// ResidentIDs returns the IDs of all resident tuples in sorted order.
func (ig *Integrator) ResidentIDs() []string {
	return ig.det.ResidentIDs()
}

// Stats summarizes the integrator's state and cumulative work.
func (ig *Integrator) Stats() IntegratorStats {
	det := ig.det.Stats()
	ig.mu.Lock()
	defer ig.mu.Unlock()
	return IntegratorStats{
		Detector: det,
		Entities: ig.ncomps,
		Events:   ig.events,
		Stopped:  ig.emits.Stopped(),
	}
}
