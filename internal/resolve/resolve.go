// Package resolve turns pairwise duplicate decisions into an integrated
// probabilistic result — the entity-resolution / data-fusion step the
// paper's Sec. VI sketches:
//
//   - declared matches (set M) are grouped into entities by transitive
//     closure and fused into single probabilistic x-tuples,
//   - possible matches (set P) across entities are kept as *uncertain
//     duplicates*: the result contains both the merged representation and
//     the separate representations as mutually exclusive sets of tuples,
//     wired up with ULDB-style lineage over a "dup(a,b)" symbol whose
//     probability is calibrated from the pair's similarity.
package resolve

import (
	"fmt"
	"sort"

	"probdedup/internal/core"
	"probdedup/internal/decision"
	"probdedup/internal/fusion"
	"probdedup/internal/lineage"
	"probdedup/internal/pdb"
	"probdedup/internal/verify"
)

// Calibration maps a derived similarity to the probability that the pair
// is truly a duplicate (used for possible matches). It must return values
// in [0,1].
type Calibration func(sim float64) float64

// LinearCalibration interpolates linearly between the thresholds: sim ≤ Tλ
// maps to lo, sim ≥ Tμ maps to hi. The default for Resolve uses lo=0.1 and
// hi=0.9 — a possible match near Tμ is an almost-certain duplicate.
func LinearCalibration(t decision.Thresholds, lo, hi float64) Calibration {
	return func(sim float64) float64 {
		switch {
		case t.Mu == t.Lambda && sim == t.Lambda:
			return (lo + hi) / 2
		case sim <= t.Lambda:
			return lo
		case sim >= t.Mu:
			return hi
		default:
			frac := (sim - t.Lambda) / (t.Mu - t.Lambda)
			return lo + frac*(hi-lo)
		}
	}
}

// Entity is one resolved real-world entity.
type Entity struct {
	// ID is the fused tuple ID (member IDs joined with '+').
	ID string
	// Members are the source tuple IDs merged into this entity.
	Members []string
	// Tuple is the fused probabilistic representation.
	Tuple *pdb.XTuple
}

// UncertainDuplicate is a possible match between two resolved entities.
type UncertainDuplicate struct {
	// A and B are entity IDs.
	A, B string
	// Sym is the lineage symbol "dup(A,B)".
	Sym string
	// P is the calibrated duplicate probability.
	P float64
	// Merged is the fused representation valid when Sym is true.
	Merged *pdb.XTuple
}

// LTuple is a result tuple with lineage.
type LTuple struct {
	Tuple   *pdb.XTuple
	Lineage lineage.Expr
}

// Resolution is the integrated probabilistic result.
type Resolution struct {
	// Entities are the fused certain-duplicate groups.
	Entities []Entity
	// Uncertain lists the possible matches retained as uncertainty in the
	// result.
	Uncertain []UncertainDuplicate
	// Universe holds the lineage symbols (one per uncertain duplicate).
	Universe *lineage.Universe
	// Tuples is the lineage-annotated result relation: entities unaffected
	// by uncertain duplicates carry lineage ⊤; an uncertain pair (A,B)
	// contributes merged(A,B) with lineage dup(A,B) and A, B each with
	// lineage ¬dup(A,B).
	Tuples []LTuple
}

// Resolve builds the integrated result from a detection run on the given
// x-relation. cal may be nil (LinearCalibration over opts' final
// thresholds with lo=0.1, hi=0.9 is used).
//
// The result is canonical: member order inside an entity, entity order,
// uncertain-duplicate order and lineage symbol declaration order all
// derive from sorted tuple/entity IDs, so the same resident tuples and
// the same match sets produce the same Resolution regardless of tuple
// order or map iteration — the contract the incremental Integrator's
// Flush reproduces.
func Resolve(xr *pdb.XRelation, res *core.Result, final decision.Thresholds, cal Calibration) (*Resolution, error) {
	if cal == nil {
		cal = LinearCalibration(final, 0.1, 0.9)
	}
	byID := make(map[string]*pdb.XTuple, len(xr.Tuples))
	ids := make([]string, 0, len(xr.Tuples))
	for _, x := range xr.Tuples {
		byID[x.ID] = x
		ids = append(ids, x.ID)
	}

	// 1+2. Transitive closure over declared matches, one fused entity
	// per group.
	r := &Resolution{Universe: lineage.NewUniverse()}
	for _, members := range matchGroups(ids, res.Matches) {
		e, err := buildEntity(members, byID)
		if err != nil {
			return nil, err
		}
		r.Entities = append(r.Entities, e)
	}

	// 3+4. Uncertain duplicates, lineage and the result relation.
	if err := finishResolution(r, possibleOf(res), cal); err != nil {
		return nil, err
	}
	return r, nil
}

// matchGroups partitions the tuple IDs into transitive-closure groups
// over the declared matches. Each group is sorted by tuple ID and the
// groups are sorted by their smallest member — the canonical order
// every caller (batch and incremental) agrees on.
func matchGroups(ids []string, matches verify.PairSet) [][]string {
	uf := newUnionFind()
	for _, id := range ids {
		uf.add(id)
	}
	for p := range matches {
		uf.union(p.A, p.B)
	}
	groups := map[string][]string{}
	for _, id := range ids {
		root := uf.find(id)
		groups[root] = append(groups[root], id)
	}
	out := make([][]string, 0, len(groups))
	for _, members := range groups {
		sort.Strings(members)
		out = append(out, members)
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}

// possibleOf extracts the possible matches of a detection result as a
// pair → match map, the form the per-component steps consume.
func possibleOf(res *core.Result) map[verify.Pair]core.Match {
	possible := make(map[verify.Pair]core.Match, len(res.Possible))
	for p := range res.Possible {
		possible[p] = res.ByPair[p]
	}
	return possible
}

// buildEntity fuses one member group (sorted by ID) into an Entity —
// the per-component unit of step 2, reused by the incremental
// Integrator to re-fuse only touched components.
func buildEntity(members []string, byID map[string]*pdb.XTuple) (Entity, error) {
	fused, err := fuseMembers(members, byID)
	if err != nil {
		return Entity{}, err
	}
	return Entity{ID: fused.ID, Members: members, Tuple: fused}, nil
}

// finishResolution derives the cross-entity sections of a Resolution
// whose Entities are already built: uncertain duplicates with lineage
// symbols (step 3) and the lineage-annotated result relation (step 4).
// possible holds the detection run's possible matches per pair. The
// output is deterministic: uncertain pairs are processed in sorted
// entity-ID order, which also fixes the universe's declaration order
// and the ¬dup conjunction order of every entity's lineage.
func finishResolution(r *Resolution, possible map[verify.Pair]core.Match, cal Calibration) error {
	// Index the entities once, after the slice has stopped growing (so
	// the pointers stay valid): by entity ID for the merge lookups of
	// step 3, and by member tuple ID for mapping possible matches to
	// entities.
	entitiesByID := make(map[string]*Entity, len(r.Entities))
	entityOf := map[string]*Entity{} // source tuple ID → entity
	for i := range r.Entities {
		e := &r.Entities[i]
		entitiesByID[e.ID] = e
		for _, m := range e.Members {
			entityOf[m] = e
		}
	}

	// 3. Possible matches across distinct entities become uncertain
	// duplicates with lineage. Multiple P pairs between the same two
	// entities collapse to the strongest one.
	strongest := map[verify.Pair]core.Match{}
	for p, m := range possible {
		ea, eb := entityOf[p.A], entityOf[p.B]
		if ea == nil || eb == nil || ea.ID == eb.ID {
			continue
		}
		key := verify.NewPair(ea.ID, eb.ID)
		if cur, ok := strongest[key]; !ok || m.Sim > cur.Sim {
			strongest[key] = m
		}
	}
	var keys []verify.Pair
	for k := range strongest {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].A != keys[j].A {
			return keys[i].A < keys[j].A
		}
		return keys[i].B < keys[j].B
	})
	uncertainEntity := map[string]lineage.Expr{} // entity ID → ¬dup ∧ ¬dup …
	for _, key := range keys {
		m := strongest[key]
		ea, eb := key.A, key.B
		symID := fmt.Sprintf("dup(%s,%s)", ea, eb)
		p := cal(m.Sim)
		sym, err := r.Universe.Declare(symID, p)
		if err != nil {
			return err
		}
		merged, err := fusion.MergeXTuples(ea+"+"+eb, entitiesByID[ea].Tuple, entitiesByID[eb].Tuple, 1, 1)
		if err != nil {
			return err
		}
		r.Uncertain = append(r.Uncertain, UncertainDuplicate{
			A: ea, B: eb, Sym: symID, P: p, Merged: merged,
		})
		r.Tuples = append(r.Tuples, LTuple{Tuple: merged, Lineage: sym})
		for _, eid := range []string{ea, eb} {
			neg := lineage.Not(lineage.Var(symID))
			if ex, ok := uncertainEntity[eid]; ok {
				uncertainEntity[eid] = lineage.And(ex, neg)
			} else {
				uncertainEntity[eid] = neg
			}
		}
	}

	// 4. Entity tuples: lineage ⊤ unless touched by an uncertain duplicate.
	for i := range r.Entities {
		e := &r.Entities[i]
		lin, ok := uncertainEntity[e.ID]
		if !ok {
			lin = lineage.True
		}
		r.Tuples = append(r.Tuples, LTuple{Tuple: e.Tuple, Lineage: lin})
	}
	return nil
}

// fuseMembers merges the member tuples pairwise with equal source
// weights, folding in the canonical sorted-ID order the members arrive
// in — never in map-iteration order, so two runs over the same input
// produce bit-identical fused tuples. The fused ID is the member IDs
// joined with '+'.
func fuseMembers(members []string, byID map[string]*pdb.XTuple) (*pdb.XTuple, error) {
	cur := deannotate(byID[members[0]])
	if len(members) == 1 {
		return cur, nil
	}
	weight := 1.0
	for _, m := range members[1:] {
		next, err := fusion.MergeXTuples(cur.ID+"+"+m, cur, deannotate(byID[m]), weight, 1)
		if err != nil {
			return nil, err
		}
		cur = next
		weight++
	}
	return cur, nil
}

// deannotate deep-copies a member tuple with engine-internal value
// annotations (interned symbols, see internal/sym) stripped. Fused
// tuples are derived artifacts: they must compare bit-identical across
// pipelines regardless of which detection engine — batch, online, or
// none — held the members, and symbol annotations are engine-local.
func deannotate(x *pdb.XTuple) *pdb.XTuple {
	y := x.Clone()
	for ai := range y.Alts {
		vals := y.Alts[ai].Values
		for i := range vals {
			vals[i] = vals[i].Annotate(func(v pdb.Value) pdb.Value { return pdb.V(v.S()) })
		}
	}
	return y
}

// Confidence returns P(tuple in result) for a lineage-annotated tuple.
func (r *Resolution) Confidence(t LTuple) (float64, error) {
	return r.Universe.Probability(t.Lineage)
}

// CheckExclusive verifies the Sec. VI invariant: for every uncertain
// duplicate, the merged tuple and each separate entity tuple are mutually
// exclusive.
func (r *Resolution) CheckExclusive() error {
	byTupleID := map[string]LTuple{}
	for _, t := range r.Tuples {
		byTupleID[t.Tuple.ID] = t
	}
	for _, ud := range r.Uncertain {
		merged := byTupleID[ud.Merged.ID]
		for _, eid := range []string{ud.A, ud.B} {
			sep, ok := byTupleID[eid]
			if !ok {
				return fmt.Errorf("resolve: entity %s missing from result", eid)
			}
			ex, err := r.Universe.MutuallyExclusive(merged.Lineage, sep.Lineage)
			if err != nil {
				return err
			}
			if !ex {
				return fmt.Errorf("resolve: %s and %s are not mutually exclusive", ud.Merged.ID, eid)
			}
		}
	}
	return nil
}

// unionFind is a tiny disjoint-set structure over string IDs.
type unionFind struct {
	parent map[string]string
	rank   map[string]int
}

func newUnionFind() *unionFind {
	return &unionFind{parent: map[string]string{}, rank: map[string]int{}}
}

func (u *unionFind) add(id string) {
	if _, ok := u.parent[id]; !ok {
		u.parent[id] = id
	}
}

func (u *unionFind) find(id string) string {
	for u.parent[id] != id {
		u.parent[id] = u.parent[u.parent[id]]
		id = u.parent[id]
	}
	return id
}

func (u *unionFind) union(a, b string) {
	ra, rb := u.find(a), u.find(b)
	if ra == rb {
		return
	}
	if u.rank[ra] < u.rank[rb] {
		ra, rb = rb, ra
	}
	u.parent[rb] = ra
	if u.rank[ra] == u.rank[rb] {
		u.rank[ra]++
	}
}
