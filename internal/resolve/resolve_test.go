package resolve

import (
	"math"
	"reflect"
	"testing"

	"probdedup/internal/core"
	"probdedup/internal/decision"
	"probdedup/internal/paperdata"
	"probdedup/internal/pdb"
	"probdedup/internal/strsim"
	"probdedup/internal/verify"
	"probdedup/internal/xmatch"
)

func almost(a, b float64) bool { return math.Abs(a-b) <= 1e-9 }

// detectR34 runs the paper pipeline on ℛ34 and returns union + result.
func detectR34(t *testing.T) (*pdb.XRelation, *core.Result, decision.Thresholds) {
	t.Helper()
	xr := paperdata.R34()
	final := decision.Thresholds{Lambda: 0.4, Mu: 0.7}
	res, err := core.Detect(xr, core.Options{
		Compare: []strsim.Func{strsim.NormalizedHamming, strsim.NormalizedHamming},
		AltModel: decision.SimpleModel{
			Phi: decision.WeightedSum(0.8, 0.2),
			T:   final,
		},
		Derivation: xmatch.SimilarityBased{Conditioned: true},
		Final:      final,
	})
	if err != nil {
		t.Fatal(err)
	}
	return xr, res, final
}

func TestResolvePaperR34(t *testing.T) {
	xr, res, final := detectR34(t)
	r, err := Resolve(xr, res, final, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Every source tuple belongs to exactly one entity.
	seen := map[string]int{}
	for _, e := range r.Entities {
		for _, m := range e.Members {
			seen[m]++
		}
	}
	for _, x := range xr.Tuples {
		if seen[x.ID] != 1 {
			t.Fatalf("tuple %s in %d entities", x.ID, seen[x.ID])
		}
	}
	// Matches imply co-membership.
	entityOf := map[string]string{}
	for _, e := range r.Entities {
		for _, m := range e.Members {
			entityOf[m] = e.ID
		}
	}
	for p := range res.Matches {
		if entityOf[p.A] != entityOf[p.B] {
			t.Fatalf("matched pair %v split across entities", p)
		}
	}
	// Lineage invariant (Sec. VI): merged vs separate mutually exclusive.
	if err := r.CheckExclusive(); err != nil {
		t.Fatal(err)
	}
	// Fused entity tuples validate.
	for _, e := range r.Entities {
		if err := e.Tuple.Validate(len(xr.Schema)); err != nil {
			t.Fatalf("entity %s: %v", e.ID, err)
		}
	}
}

func TestResolveUncertainDuplicates(t *testing.T) {
	// Craft a result with one match and one possible match.
	xr := pdb.NewXRelation("X", "name", "job").Append(
		pdb.NewXTuple("a", pdb.NewAlt(1, "John", "pilot")),
		pdb.NewXTuple("b", pdb.NewAlt(1, "John", "pilot")),
		pdb.NewXTuple("c", pdb.NewAlt(1, "Johan", "pilot")),
	)
	final := decision.Thresholds{Lambda: 0.4, Mu: 0.7}
	res := &core.Result{
		Matches:  verify.NewPairSet(verify.Pair{A: "a", B: "b"}),
		Possible: verify.NewPairSet(verify.Pair{A: "b", B: "c"}),
		ByPair: map[verify.Pair]core.Match{
			verify.NewPair("b", "c"): {Pair: verify.NewPair("b", "c"), Sim: 0.55, Class: decision.P},
		},
		Compared:   []verify.Pair{verify.NewPair("a", "b"), verify.NewPair("b", "c")},
		TotalPairs: 3,
	}
	r, err := Resolve(xr, res, final, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Entities) != 2 {
		t.Fatalf("entities = %d, want 2 (a+b, c)", len(r.Entities))
	}
	if len(r.Uncertain) != 1 {
		t.Fatalf("uncertain = %d", len(r.Uncertain))
	}
	ud := r.Uncertain[0]
	// Calibration: 0.55 halfway between 0.4 and 0.7 → 0.1 + 0.5·0.8 = 0.5.
	if !almost(ud.P, 0.5) {
		t.Fatalf("calibrated P = %v", ud.P)
	}
	// Result contains merged + two separates with correct confidences.
	confidences := map[string]float64{}
	for _, lt := range r.Tuples {
		p, err := r.Confidence(lt)
		if err != nil {
			t.Fatal(err)
		}
		confidences[lt.Tuple.ID] = p
	}
	if !almost(confidences[ud.Merged.ID], 0.5) {
		t.Fatalf("merged confidence = %v", confidences[ud.Merged.ID])
	}
	if !almost(confidences[ud.A], 0.5) || !almost(confidences[ud.B], 0.5) {
		t.Fatalf("separate confidences = %v, %v", confidences[ud.A], confidences[ud.B])
	}
	if err := r.CheckExclusive(); err != nil {
		t.Fatal(err)
	}
}

func TestResolveTransitiveClosure(t *testing.T) {
	xr := pdb.NewXRelation("X", "a").Append(
		pdb.NewXTuple("1", pdb.NewAlt(1, "x")),
		pdb.NewXTuple("2", pdb.NewAlt(1, "x")),
		pdb.NewXTuple("3", pdb.NewAlt(1, "x")),
		pdb.NewXTuple("4", pdb.NewAlt(1, "y")),
	)
	res := &core.Result{
		Matches: verify.NewPairSet(
			verify.Pair{A: "1", B: "2"},
			verify.Pair{A: "2", B: "3"},
		),
		Possible: verify.PairSet{},
		ByPair:   map[verify.Pair]core.Match{},
	}
	r, err := Resolve(xr, res, decision.Thresholds{Lambda: 0.4, Mu: 0.7}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Entities) != 2 {
		t.Fatalf("entities = %d, want {1,2,3} and {4}", len(r.Entities))
	}
	var big Entity
	for _, e := range r.Entities {
		if len(e.Members) == 3 {
			big = e
		}
	}
	if big.ID == "" {
		t.Fatal("transitive group missing")
	}
	if !almost(big.Tuple.P(), 1.0) {
		t.Fatalf("fused p(t) = %v", big.Tuple.P())
	}
}

func TestResolvePossibleInsideEntityIgnored(t *testing.T) {
	// A possible match between two tuples already merged by M must not
	// create an uncertain duplicate.
	xr := pdb.NewXRelation("X", "a").Append(
		pdb.NewXTuple("1", pdb.NewAlt(1, "x")),
		pdb.NewXTuple("2", pdb.NewAlt(1, "x")),
	)
	res := &core.Result{
		Matches:  verify.NewPairSet(verify.Pair{A: "1", B: "2"}),
		Possible: verify.NewPairSet(verify.Pair{A: "1", B: "2"}),
		ByPair: map[verify.Pair]core.Match{
			verify.NewPair("1", "2"): {Sim: 0.5, Class: decision.P},
		},
	}
	r, err := Resolve(xr, res, decision.Thresholds{Lambda: 0.4, Mu: 0.7}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Uncertain) != 0 {
		t.Fatalf("uncertain = %d, want 0", len(r.Uncertain))
	}
	if len(r.Tuples) != 1 || r.Tuples[0].Lineage != nil && r.Tuples[0].Lineage.String() != "⊤" {
		t.Fatalf("result tuples %v", r.Tuples)
	}
}

// TestResolveDeterministicFusion is the regression test for the
// member-fold order: fuseMembers folds in canonical sorted-ID order
// (never map-iteration order), so two runs over the same input — and
// runs over a shuffled relation — produce identical fused tuples,
// entity lists, lineage and confidences, bit for bit.
func TestResolveDeterministicFusion(t *testing.T) {
	xr, res, final := detectR34(t)
	first, err := Resolve(xr, res, final, nil)
	if err != nil {
		t.Fatal(err)
	}
	for run := 0; run < 5; run++ {
		again, err := Resolve(xr, res, final, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(again, first) {
			t.Fatalf("run %d differs from first run\n--- again ---\n%s--- first ---\n%s",
				run, renderResolution(again), renderResolution(first))
		}
	}
	// Canonical order also makes the result independent of tuple order:
	// reverse the relation (the match sets are order-free pair sets).
	rev := pdb.NewXRelation(xr.Name, xr.Schema...)
	for i := len(xr.Tuples) - 1; i >= 0; i-- {
		rev.Append(xr.Tuples[i])
	}
	shuffled, err := Resolve(rev, res, final, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(shuffled, first) {
		t.Fatalf("reversed relation changed the resolution\n--- reversed ---\n%s--- first ---\n%s",
			renderResolution(shuffled), renderResolution(first))
	}
}

func TestLinearCalibration(t *testing.T) {
	cal := LinearCalibration(decision.Thresholds{Lambda: 0.4, Mu: 0.8}, 0.1, 0.9)
	cases := []struct{ sim, want float64 }{
		{0.0, 0.1}, {0.4, 0.1}, {0.6, 0.5}, {0.8, 0.9}, {1.0, 0.9},
	}
	for _, c := range cases {
		if got := cal(c.sim); !almost(got, c.want) {
			t.Errorf("cal(%v) = %v, want %v", c.sim, got, c.want)
		}
	}
	// Degenerate thresholds.
	deg := LinearCalibration(decision.Thresholds{Lambda: 0.5, Mu: 0.5}, 0, 1)
	if got := deg(0.5); !almost(got, 0.5) {
		t.Errorf("degenerate cal = %v", got)
	}
}

func TestResolveEntityWithTwoUncertainDuplicates(t *testing.T) {
	xr := pdb.NewXRelation("X", "a").Append(
		pdb.NewXTuple("a", pdb.NewAlt(1, "x")),
		pdb.NewXTuple("b", pdb.NewAlt(1, "x")),
		pdb.NewXTuple("c", pdb.NewAlt(1, "x")),
	)
	res := &core.Result{
		Matches: verify.PairSet{},
		Possible: verify.NewPairSet(
			verify.Pair{A: "a", B: "b"},
			verify.Pair{A: "a", B: "c"},
		),
		ByPair: map[verify.Pair]core.Match{
			verify.NewPair("a", "b"): {Sim: 0.5, Class: decision.P},
			verify.NewPair("a", "c"): {Sim: 0.6, Class: decision.P},
		},
	}
	r, err := Resolve(xr, res, decision.Thresholds{Lambda: 0.4, Mu: 0.7}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Uncertain) != 2 {
		t.Fatalf("uncertain = %d", len(r.Uncertain))
	}
	if err := r.CheckExclusive(); err != nil {
		t.Fatal(err)
	}
	// Entity a's separate tuple requires both dup symbols false:
	// confidence (1-p1)(1-p2).
	var aConf float64
	for _, lt := range r.Tuples {
		if lt.Tuple.ID == "a" {
			aConf, err = r.Confidence(lt)
			if err != nil {
				t.Fatal(err)
			}
		}
	}
	p1 := LinearCalibration(decision.Thresholds{Lambda: 0.4, Mu: 0.7}, 0.1, 0.9)(0.5)
	p2 := LinearCalibration(decision.Thresholds{Lambda: 0.4, Mu: 0.7}, 0.1, 0.9)(0.6)
	if !almost(aConf, (1-p1)*(1-p2)) {
		t.Fatalf("a confidence = %v, want %v", aConf, (1-p1)*(1-p2))
	}
}
