package resolve

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"probdedup/internal/core"
	"probdedup/internal/decision"
	"probdedup/internal/keys"
	"probdedup/internal/pdb"
	"probdedup/internal/prepare"
	"probdedup/internal/ssr"
	"probdedup/internal/strsim"
	"probdedup/internal/xmatch"
)

// integratorOpts is the shared pipeline configuration of the
// equivalence tests: one string attribute plus a job attribute,
// Levenshtein everywhere, thresholds that produce all three classes
// on the generator's value pools.
func integratorOpts(t *testing.T, reduction ssr.Method, workers int, std *prepare.Standardizer) core.Options {
	t.Helper()
	final := decision.Thresholds{Lambda: 0.5, Mu: 0.82}
	return core.Options{
		Standardizer: std,
		Compare:      []strsim.Func{strsim.Levenshtein, strsim.Levenshtein},
		AltModel:     decision.SimpleModel{Phi: decision.WeightedSum(0.6, 0.4), T: final},
		Derivation:   xmatch.SimilarityBased{Conditioned: true},
		Final:        final,
		Reduction:    reduction,
		Workers:      workers,
	}
}

// keyDef parses a key definition or fails the test.
func keyDef(t *testing.T, spec string) keys.Def {
	t.Helper()
	def, err := keys.ParseDef(spec, []string{"name", "job"})
	if err != nil {
		t.Fatal(err)
	}
	return def
}

// randomTuple draws a probabilistic person tuple from small value
// pools with typo variants, so declared, possible and non-matches all
// occur and blocking/SNM keys collide.
func randomTuple(rng *rand.Rand, id string) *pdb.XTuple {
	names := []string{"johnson", "jonson", "johnsen", "miller", "muller", "smith", "smyth", "baker"}
	jobs := []string{"pilot", "pilott", "baker", "mechanic", "mechanik"}
	name := names[rng.Intn(len(names))]
	job := jobs[rng.Intn(len(jobs))]
	if rng.Intn(3) == 0 {
		alt := names[rng.Intn(len(names))]
		return pdb.NewXTuple(id,
			pdb.NewAlt(0.7, name, job),
			pdb.NewAlt(0.3, alt, job))
	}
	return pdb.NewXTuple(id, pdb.NewAlt(1, name, job))
}

// batchReference computes the batch pipeline's Resolution over the
// residents: core.Detect then Resolve, on the relation in arrival
// order. When a standardizer is configured the relation is
// standardized first, because that is the data the integrator fuses
// (Detect re-standardizing is a no-op for idempotent transforms).
func batchReference(t *testing.T, residents []*pdb.XTuple, opts core.Options) *Resolution {
	t.Helper()
	xr := pdb.NewXRelation("ref", "name", "job")
	xr.Append(residents...)
	if opts.Standardizer != nil {
		xr = opts.Standardizer.XRelation(xr)
	}
	res, err := core.Detect(xr, opts)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Resolve(xr, res, opts.Final, nil)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// renderResolution is the human-readable form printed when the
// equivalence check fails.
func renderResolution(r *Resolution) string {
	var b strings.Builder
	for _, e := range r.Entities {
		fmt.Fprintf(&b, "entity %s members=%v tuple=%s\n", e.ID, e.Members, e.Tuple)
	}
	for _, ud := range r.Uncertain {
		fmt.Fprintf(&b, "uncertain %s|%s sym=%s p=%v merged=%s\n", ud.A, ud.B, ud.Sym, ud.P, ud.Merged)
	}
	for _, s := range r.Universe.Symbols() {
		fmt.Fprintf(&b, "sym %s p=%v\n", s.ID, s.P)
	}
	for _, lt := range r.Tuples {
		conf, err := r.Confidence(lt)
		if err != nil {
			fmt.Fprintf(&b, "tuple %s lineage=%s conf=ERR:%v\n", lt.Tuple.ID, lt.Lineage, err)
			continue
		}
		fmt.Fprintf(&b, "tuple %s lineage=%s conf=%v\n", lt.Tuple.ID, lt.Lineage, conf)
	}
	return b.String()
}

// requireEqualResolution asserts deep (bit-identical floats included)
// equality of two resolutions.
func requireEqualResolution(t *testing.T, label string, got, want *Resolution) {
	t.Helper()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("%s: incremental resolution diverged from batch\n--- incremental ---\n%s--- batch ---\n%s",
			label, renderResolution(got), renderResolution(want))
	}
}

// scheduleConfig is one randomized-equivalence scenario.
type scheduleConfig struct {
	name      string
	reduction func(t *testing.T) ssr.Method
	std       *prepare.Standardizer
	workers   int
}

func scheduleConfigs() []scheduleConfig {
	return []scheduleConfig{
		{name: "cross", reduction: func(t *testing.T) ssr.Method { return nil }},
		{name: "blocking", reduction: func(t *testing.T) ssr.Method {
			return ssr.BlockingCertain{Key: keyDef(t, "name:3")}
		}},
		{name: "snm-window", reduction: func(t *testing.T) ssr.Method {
			return ssr.SNMCertain{Key: keyDef(t, "name:4+job:2"), Window: 3}
		}},
		{name: "pruned-blocking", reduction: func(t *testing.T) ssr.Method {
			return ssr.NewFilter(ssr.BlockingCertain{Key: keyDef(t, "name:2")}, ssr.Pruning{MaxDiff: map[int]int{0: 3}})
		}},
		{name: "cross-standardized-workers", reduction: func(t *testing.T) ssr.Method { return nil },
			std:     prepare.NewStandardizer(prepare.TrimSpace, prepare.TrimSpace),
			workers: 4},
	}
}

// TestIntegratorEquivalesBatchResolveOnRandomSchedules is the
// property-based exactness proof: over ≥50 random operation schedules
// (shuffled insert orders, interleaved removals, re-adds, batch
// arrivals, and sorted-neighborhood window churn), the integrator's
// Flush after EVERY operation equals batch Resolve over core.Detect
// on the residents — same entities, fused tuples, uncertain
// duplicates, lineage and confidences, bit-identical floats.
func TestIntegratorEquivalesBatchResolveOnRandomSchedules(t *testing.T) {
	const seedsPerConfig = 11 // 5 configs × 11 seeds = 55 schedules
	for _, cfg := range scheduleConfigs() {
		cfg := cfg
		t.Run(cfg.name, func(t *testing.T) {
			t.Parallel()
			for seed := int64(0); seed < seedsPerConfig; seed++ {
				runRandomSchedule(t, cfg, seed)
			}
		})
	}
}

func runRandomSchedule(t *testing.T, cfg scheduleConfig, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	opts := integratorOpts(t, cfg.reduction(t), cfg.workers, cfg.std)
	ig, err := NewIntegrator([]string{"name", "job"}, opts, nil)
	if err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}

	var residents []*pdb.XTuple
	removed := map[string]*pdb.XTuple{}
	next := 0
	newTuple := func() *pdb.XTuple {
		x := randomTuple(rng, fmt.Sprintf("t%03d", next))
		next++
		return x
	}
	addResident := func(x *pdb.XTuple) { residents = append(residents, x) }
	dropResident := func(id string) *pdb.XTuple {
		for i, x := range residents {
			if x.ID == id {
				residents = append(residents[:i], residents[i+1:]...)
				return x
			}
		}
		t.Fatalf("seed %d: resident %s missing from shadow state", seed, id)
		return nil
	}

	const ops = 34
	for op := 0; op < ops; op++ {
		switch k := rng.Intn(10); {
		case k < 4 || len(residents) == 0: // add one fresh tuple
			x := newTuple()
			if err := ig.Add(x); err != nil {
				t.Fatalf("seed %d op %d: Add: %v", seed, op, err)
			}
			addResident(x)
		case k < 6: // add a batch of fresh tuples
			n := 2 + rng.Intn(5)
			batch := make([]*pdb.XTuple, n)
			for i := range batch {
				batch[i] = newTuple()
			}
			if err := ig.AddBatch(batch); err != nil {
				t.Fatalf("seed %d op %d: AddBatch: %v", seed, op, err)
			}
			for _, x := range batch {
				addResident(x)
			}
		case k < 9: // remove a random resident
			id := residents[rng.Intn(len(residents))].ID
			if err := ig.Remove(id); err != nil {
				t.Fatalf("seed %d op %d: Remove(%s): %v", seed, op, id, err)
			}
			removed[id] = dropResident(id)
		default: // re-add a previously removed tuple (drop/re-add churn)
			var ids []string
			for id := range removed {
				ids = append(ids, id)
			}
			if len(ids) == 0 {
				x := newTuple()
				if err := ig.Add(x); err != nil {
					t.Fatalf("seed %d op %d: Add: %v", seed, op, err)
				}
				addResident(x)
				break
			}
			id := ids[rng.Intn(len(ids))]
			x := removed[id]
			delete(removed, id)
			if err := ig.Add(x); err != nil {
				t.Fatalf("seed %d op %d: re-Add(%s): %v", seed, op, id, err)
			}
			addResident(x)
		}

		got, err := ig.Flush()
		if err != nil {
			t.Fatalf("seed %d op %d: Flush: %v", seed, op, err)
		}
		want := batchReference(t, residents, opts)
		requireEqualResolution(t, fmt.Sprintf("%s seed %d op %d (%d residents)", cfg.name, seed, op, len(residents)), got, want)
	}
}

// TestIntegratorEntityDeltaStreamWorkerInvariant replays one schedule
// at several Options.Workers settings and requires the emitted entity
// delta stream to be identical — the integrator's analogue of the
// detector's worker-invariance contract.
func TestIntegratorEntityDeltaStreamWorkerInvariant(t *testing.T) {
	streamAt := func(workers int) []string {
		var events []string
		opts := integratorOpts(t, nil, workers, nil)
		ig, err := NewIntegrator([]string{"name", "job"}, opts, func(ev EntityDelta) bool {
			events = append(events, fmt.Sprintf("%s %s members=%v from=%v", ev.Kind, ev.Entity.ID, ev.Entity.Members, ev.From))
			return true
		})
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(7))
		var batch []*pdb.XTuple
		for i := 0; i < 40; i++ {
			batch = append(batch, randomTuple(rng, fmt.Sprintf("t%03d", i)))
		}
		// A large batch (40 tuples, cross product → 780 pairs) forces
		// the detector's parallel verification phase at workers > 1.
		if err := ig.AddBatch(batch); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 10; i++ {
			if err := ig.Remove(fmt.Sprintf("t%03d", rng.Intn(40))); err != nil {
				t.Fatal(err)
			}
			if err := ig.Add(randomTuple(rng, fmt.Sprintf("r%03d", i))); err != nil {
				t.Fatal(err)
			}
		}
		return events
	}
	want := streamAt(1)
	if len(want) == 0 {
		t.Fatal("schedule produced no entity deltas; test is vacuous")
	}
	for _, workers := range []int{2, 4, 8} {
		got := streamAt(workers)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d changed the entity delta stream\ngot:  %v\nwant: %v", workers, got, want)
		}
	}
}

// TestIntegratorEntityDeltaKinds pins the typed event contract on a
// hand-built scenario covering all five kinds.
func TestIntegratorEntityDeltaKinds(t *testing.T) {
	final := decision.Thresholds{Lambda: 0.5, Mu: 0.9}
	opts := core.Options{
		Compare:    []strsim.Func{strsim.Levenshtein},
		AltModel:   decision.SimpleModel{Phi: decision.WeightedSum(1), T: final},
		Derivation: xmatch.SimilarityBased{Conditioned: true},
		Final:      final,
	}
	var events []string
	ig, err := NewIntegrator([]string{"name"}, opts, func(ev EntityDelta) bool {
		events = append(events, fmt.Sprintf("%s %s from=%v", ev.Kind, ev.Entity.ID, ev.From))
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	step := func(want ...string) {
		t.Helper()
		if !reflect.DeepEqual(events, want) {
			t.Fatalf("events = %q, want %q", events, want)
		}
		events = nil
	}

	// Fresh singleton: created.
	mustDo(t, ig.Add(pdb.NewXTuple("a", pdb.NewAlt(1, "johnson"))))
	step("created a from=[]")
	// Identical value matches (sim 1 ≥ μ): entity a absorbs b.
	mustDo(t, ig.Add(pdb.NewXTuple("b", pdb.NewAlt(1, "johnson"))))
	step("merged a+b from=[a]")
	// A possible match (λ < sim < μ) against the fused entity: the new
	// singleton is created and a+b is re-derived (uncertain partner).
	mustDo(t, ig.Add(pdb.NewXTuple("c", pdb.NewAlt(1, "johnsen"))))
	step("created c from=[]", "refused a+b from=[]")
	// Removing b splits nothing (a remains) but shrinks the entity:
	// split; c's uncertain partner is renamed: refused.
	mustDo(t, ig.Remove("b"))
	step("split a from=[a+b]", "refused c from=[]")
	// Removing a retires its entity and re-derives c.
	mustDo(t, ig.Remove("a"))
	step("retired a from=[]", "refused c from=[]")

	st := ig.Stats()
	if st.Entities != 1 || st.Events != 8 {
		t.Fatalf("stats = %+v, want 1 entity, 8 events", st)
	}
}

func mustDo(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}

// TestIntegratorEmitReentrancyAndStop checks the two callback
// contracts: the callback may call back into the integrator, and a
// false return permanently stops delivery while state maintenance
// continues.
func TestIntegratorEmitReentrancyAndStop(t *testing.T) {
	final := decision.Thresholds{Lambda: 0.5, Mu: 0.9}
	opts := core.Options{
		Compare:    []strsim.Func{strsim.Levenshtein},
		AltModel:   decision.SimpleModel{Phi: decision.WeightedSum(1), T: final},
		Derivation: xmatch.SimilarityBased{Conditioned: true},
		Final:      final,
	}
	calls := 0
	var ig *Integrator
	ig, err := NewIntegrator([]string{"name"}, opts, func(ev EntityDelta) bool {
		calls++
		// Re-enter: snapshots must not deadlock.
		if _, err := ig.Flush(); err != nil {
			t.Errorf("re-entrant Flush: %v", err)
		}
		ig.Len()
		ig.Stats()
		return calls < 2 // stop after the second event
	})
	if err != nil {
		t.Fatal(err)
	}
	mustDo(t, ig.Add(pdb.NewXTuple("a", pdb.NewAlt(1, "johnson"))))
	mustDo(t, ig.Add(pdb.NewXTuple("b", pdb.NewAlt(1, "johnson"))))
	mustDo(t, ig.Add(pdb.NewXTuple("c", pdb.NewAlt(1, "miller"))))
	if calls != 2 {
		t.Fatalf("emit calls = %d, want 2 (stopped)", calls)
	}
	if !ig.Stats().Stopped {
		t.Fatal("Stopped not reported")
	}
	// State kept up regardless of the stop.
	r, err := ig.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Entities) != 2 {
		t.Fatalf("entities = %d, want 2", len(r.Entities))
	}
}

// TestIntegratorBatchPartialApply mirrors the detector's BatchError
// boundary: the successful prefix of a failing batch is integrated.
func TestIntegratorBatchPartialApply(t *testing.T) {
	final := decision.Thresholds{Lambda: 0.5, Mu: 0.9}
	opts := core.Options{
		Compare:    []strsim.Func{strsim.Levenshtein},
		AltModel:   decision.SimpleModel{Phi: decision.WeightedSum(1), T: final},
		Derivation: xmatch.SimilarityBased{Conditioned: true},
		Final:      final,
	}
	ig, err := NewIntegrator([]string{"name"}, opts, nil)
	if err != nil {
		t.Fatal(err)
	}
	batch := []*pdb.XTuple{
		pdb.NewXTuple("a", pdb.NewAlt(1, "johnson")),
		pdb.NewXTuple("b", pdb.NewAlt(1, "johnson")),
		nil, // validation failure at index 2
		pdb.NewXTuple("d", pdb.NewAlt(1, "miller")),
	}
	if err := ig.AddBatch(batch); err == nil {
		t.Fatal("AddBatch accepted a nil tuple")
	}
	r, err := ig.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Entities) != 1 || r.Entities[0].ID != "a+b" {
		t.Fatalf("entities after partial batch = %+v, want one a+b", r.Entities)
	}
	xr := pdb.NewXRelation("ref", "name").Append(batch[0], batch[1])
	res, err := core.Detect(xr, opts)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := Resolve(xr, res, final, nil)
	if err != nil {
		t.Fatal(err)
	}
	requireEqualResolution(t, "partial batch", r, ref)
}
