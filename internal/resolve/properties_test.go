package resolve

import (
	"testing"

	"probdedup/internal/core"
	"probdedup/internal/dataset"
	"probdedup/internal/decision"
	"probdedup/internal/strsim"
	"probdedup/internal/xmatch"
)

// TestQuickResolveOnRandomCorpora checks the structural invariants of the
// resolution on randomly generated corpora: entities partition the source
// tuples, fused tuples validate, lineage is exclusive, and confidences are
// probabilities.
func TestQuickResolveOnRandomCorpora(t *testing.T) {
	final := decision.Thresholds{Lambda: 0.6, Mu: 0.8}
	for seed := int64(0); seed < 6; seed++ {
		d := dataset.Generate(dataset.DefaultConfig(20, seed))
		u := d.Union()
		res, err := core.Detect(u, core.Options{
			Compare:    []strsim.Func{strsim.Levenshtein, strsim.Levenshtein, strsim.Levenshtein},
			AltModel:   decision.SimpleModel{Phi: decision.WeightedSum(0.4, 0.3, 0.3), T: final},
			Derivation: xmatch.SimilarityBased{Conditioned: true},
			Final:      final,
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		r, err := Resolve(u, res, final, nil)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		// Partition.
		seen := map[string]int{}
		for _, e := range r.Entities {
			if err := e.Tuple.Validate(len(u.Schema)); err != nil {
				t.Fatalf("seed %d entity %s: %v", seed, e.ID, err)
			}
			for _, m := range e.Members {
				seen[m]++
			}
		}
		for _, x := range u.Tuples {
			if seen[x.ID] != 1 {
				t.Fatalf("seed %d: tuple %s in %d entities", seed, x.ID, seen[x.ID])
			}
		}
		// Lineage invariants.
		if err := r.CheckExclusive(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, lt := range r.Tuples {
			p, err := r.Confidence(lt)
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			if p < -1e-9 || p > 1+1e-9 {
				t.Fatalf("seed %d: confidence %v", seed, p)
			}
		}
		// Uncertain duplicates reference existing entities and carry
		// calibrated probabilities strictly inside (0,1).
		entityIDs := map[string]bool{}
		for _, e := range r.Entities {
			entityIDs[e.ID] = true
		}
		for _, ud := range r.Uncertain {
			if !entityIDs[ud.A] || !entityIDs[ud.B] {
				t.Fatalf("seed %d: uncertain pair references missing entity", seed)
			}
			if ud.P <= 0 || ud.P >= 1 {
				t.Fatalf("seed %d: calibrated P = %v", seed, ud.P)
			}
			if err := ud.Merged.Validate(len(u.Schema)); err != nil {
				t.Fatalf("seed %d merged %s: %v", seed, ud.Merged.ID, err)
			}
		}
	}
}
