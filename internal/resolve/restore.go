package resolve

import (
	"probdedup/internal/core"
	"probdedup/internal/decision"
	"probdedup/internal/pdb"
	"probdedup/internal/verify"
)

// SnapshotState captures the composed detector's live state for a
// durable snapshot (see core.Detector.SnapshotState). The integrator
// persists nothing of its own: the match graph, the entity components
// and the uncertain-duplicate context are all deterministic functions
// of the resident tuples and the live pair decisions, so
// RestoreIntegrator rebuilds them from the detector state — the same
// derivation batch Resolve runs, keeping recovery correct by
// construction.
func (ig *Integrator) SnapshotState() *core.DetectorState {
	return ig.det.SnapshotState()
}

// Reseal forces the composed detector's bounded-staleness reduction
// index to seal its epoch now (see core.Detector.Reseal) and folds the
// resulting pair churn into the live entity set like any other
// operation: re-blocked pairs may merge entities, vanished ones may
// split them, and the emit callback sees the corresponding entity
// deltas. For exact-tier reductions Reseal is a no-op.
func (ig *Integrator) Reseal() error {
	ig.mu.Lock()
	err := ig.resealLocked()
	ig.mu.Unlock()
	ig.drainEvents()
	return err
}

func (ig *Integrator) resealLocked() error {
	ig.pending = ig.pending[:0]
	err := ig.det.Reseal()
	if aerr := ig.applyOp(ig.pending, nil, ""); err == nil {
		err = aerr
	}
	return err
}

// RestoreIntegrator rebuilds an online integration engine from a
// detector snapshot taken with SnapshotState, bit-identically: the
// composed detector is restored (core.RestoreDetector), and the match
// graph plus entity components are re-derived from the restored pair
// decisions through the same grouping and fusion steps batch Resolve
// uses. opts must be the configuration the snapshot was taken under.
// The restore emits no entity deltas; the first post-restore operation
// reports changes relative to the restored state, exactly as the
// never-crashed engine would have.
func RestoreIntegrator(opts core.Options, emit func(EntityDelta) bool, st *core.DetectorState) (*Integrator, error) {
	ig := &Integrator{
		cal:    LinearCalibration(opts.Final, 0.1, 0.9),
		tuples: map[string]*pdb.XTuple{},
		madj:   map[string]map[string]struct{}{},
		padj:   map[string]map[string]struct{}{},
		ppairs: map[verify.Pair]core.Match{},
		compOf: map[string]*component{},
		emits:  core.NewEmitQueue(emit),
	}
	det, err := core.RestoreDetector(opts, func(md core.MatchDelta) bool {
		ig.pending = append(ig.pending, md)
		return true
	}, st)
	if err != nil {
		return nil, err
	}
	ig.det = det

	ids := make([]string, 0, len(st.Residents))
	for _, x := range st.Residents {
		t, ok := det.Resident(x.ID)
		if !ok {
			// RestoreDetector registered every snapshot resident; this is
			// unreachable but kept loud rather than silently divergent.
			return nil, core.ErrUnknownID
		}
		ig.tuples[x.ID] = t
		ids = append(ids, x.ID)
	}
	matches := verify.PairSet{}
	for _, m := range st.Pairs {
		switch m.Class {
		case decision.M:
			matches[m.Pair] = true
			addEdge(ig.madj, m.Pair.A, m.Pair.B)
		case decision.P:
			ig.ppairs[m.Pair] = m
			addEdge(ig.padj, m.Pair.A, m.Pair.B)
		}
	}
	for _, members := range matchGroups(ids, matches) {
		e, err := buildEntity(members, ig.tuples)
		if err != nil {
			return nil, err
		}
		c := &component{members: members, entity: e}
		for _, m := range members {
			ig.compOf[m] = c
		}
		ig.ncomps++
	}
	return ig, nil
}
