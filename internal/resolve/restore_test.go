package resolve

import (
	"math/rand"
	"strings"
	"testing"

	"probdedup/internal/core"
	"probdedup/internal/pdb"
	"probdedup/internal/ssr"
)

// restoreFixture drives a live integrator through a mixed schedule and
// returns it alongside the tuples applied, so tests can replay the
// same future on a restored twin.
func restoreFixture(t *testing.T, red ssr.Method, n int, seed int64) (*Integrator, []*pdb.XTuple) {
	t.Helper()
	opts := integratorOpts(t, red, 1, nil)
	ig, err := NewIntegrator([]string{"name", "job"}, opts, nil)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	var xs []*pdb.XTuple
	for i := 0; i < n; i++ {
		xs = append(xs, randomTuple(rng, tupleID(i)))
	}
	for i, x := range xs[:n/2] {
		if err := ig.Add(x); err != nil {
			t.Fatal(err)
		}
		if i%6 == 5 {
			if err := ig.Remove(x.ID); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := ig.AddBatch(xs[n/2 : n/2+3]); err != nil {
		t.Fatal(err)
	}
	return ig, xs
}

func tupleID(i int) string {
	return string(rune('a'+i/26)) + string(rune('a'+i%26))
}

// TestRestoreIntegratorRoundTrip: restoring the integrator's snapshot
// yields a bit-identical Resolution, identical stats and pairwise
// result, and the restored engine then tracks the live one exactly —
// including across removals, batches and (on the bounded-staleness
// tier) an epoch reseal.
func TestRestoreIntegratorRoundTrip(t *testing.T) {
	cases := []struct {
		name string
		red  func(t *testing.T) ssr.Method
	}{
		{"blocking-certain", func(t *testing.T) ssr.Method {
			return ssr.BlockingCertain{Key: keyDef(t, "name:3")}
		}},
		{"snm-certain", func(t *testing.T) ssr.Method {
			return ssr.SNMCertain{Key: keyDef(t, "name:4+job:2"), Window: 3}
		}},
		{"blocking-cluster", func(t *testing.T) ssr.Method {
			return ssr.BlockingCluster{Key: keyDef(t, "name:3+job:2"), K: 3, Seed: 1, MaxDrift: 0.5}
		}},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			ig, xs := restoreFixture(t, c.red(t), 30, 7)
			opts := integratorOpts(t, c.red(t), 1, nil)
			st := ig.SnapshotState()
			restored, err := RestoreIntegrator(opts, nil, st)
			if err != nil {
				t.Fatalf("restore: %v", err)
			}
			liveR, err := ig.Flush()
			if err != nil {
				t.Fatal(err)
			}
			restoredR, err := restored.Flush()
			if err != nil {
				t.Fatal(err)
			}
			requireEqualResolution(t, "post-restore", restoredR, liveR)
			if restored.Len() != ig.Len() {
				t.Fatalf("Len %d vs %d", restored.Len(), ig.Len())
			}
			sameFlushResult(t, restored.FlushResult(), ig.FlushResult())
			if a, b := restored.Stats().Entities, ig.Stats().Entities; a != b {
				t.Fatalf("entity count %d vs %d", a, b)
			}

			// Future behavior on both engines, with an epoch flip.
			for _, x := range xs[18:24] {
				if err := ig.Add(x); err != nil {
					t.Fatal(err)
				}
				if err := restored.Add(x); err != nil {
					t.Fatal(err)
				}
			}
			if err := ig.Reseal(); err != nil {
				t.Fatal(err)
			}
			if err := restored.Reseal(); err != nil {
				t.Fatal(err)
			}
			rm := xs[18].ID
			if err := ig.Remove(rm); err != nil {
				t.Fatal(err)
			}
			if err := restored.Remove(rm); err != nil {
				t.Fatal(err)
			}
			liveR, err = ig.Flush()
			if err != nil {
				t.Fatal(err)
			}
			restoredR, err = restored.Flush()
			if err != nil {
				t.Fatal(err)
			}
			requireEqualResolution(t, "post-continuation", restoredR, liveR)
		})
	}
}

// sameFlushResult compares the detectors' pairwise results by the
// classified pair map (the stable part of core.Result).
func sameFlushResult(t *testing.T, got, want *core.Result) {
	t.Helper()
	if len(got.ByPair) != len(want.ByPair) {
		t.Fatalf("pair count %d vs %d", len(got.ByPair), len(want.ByPair))
	}
	for p, wm := range want.ByPair {
		gm, ok := got.ByPair[p]
		if !ok || gm.Sim != wm.Sim || gm.Class != wm.Class {
			t.Fatalf("pair %v: %+v vs %+v", p, gm, wm)
		}
	}
}

// TestRestoreIntegratorRejectsCorrupt: RestoreIntegrator surfaces the
// detector layer's snapshot validation rather than building a
// half-consistent entity graph.
func TestRestoreIntegratorRejectsCorrupt(t *testing.T) {
	red := ssr.BlockingCertain{Key: keyDef(t, "name:3")}
	ig, _ := restoreFixture(t, red, 20, 9)
	st := ig.SnapshotState()
	if len(st.Residents) < 2 {
		t.Fatalf("fixture too small: %d residents", len(st.Residents))
	}
	st.Residents[1] = st.Residents[0]
	opts := integratorOpts(t, red, 1, nil)
	if _, err := RestoreIntegrator(opts, nil, st); err == nil ||
		!strings.Contains(err.Error(), "twice") {
		t.Fatalf("corrupt snapshot: %v", err)
	}
}

// TestRestoreIntegratorEmitsNothing: recovery itself is silent; the
// first post-restore operation emits deltas relative to the restored
// state only.
func TestRestoreIntegratorEmitsNothing(t *testing.T) {
	red := ssr.BlockingCertain{Key: keyDef(t, "name:3")}
	ig, xs := restoreFixture(t, red, 20, 11)
	st := ig.SnapshotState()
	var deltas []EntityDelta
	restored, err := RestoreIntegrator(integratorOpts(t, red, 1, nil), func(d EntityDelta) bool {
		deltas = append(deltas, d)
		return true
	}, st)
	if err != nil {
		t.Fatal(err)
	}
	if len(deltas) != 0 {
		t.Fatalf("restore emitted %d entity deltas", len(deltas))
	}
	if err := restored.Add(xs[len(xs)-1]); err != nil {
		t.Fatal(err)
	}
	if len(deltas) == 0 {
		t.Fatal("post-restore operation emitted nothing")
	}
}
