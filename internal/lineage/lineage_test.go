package lineage

import (
	"math"
	"strings"
	"testing"
)

func almost(a, b float64) bool { return math.Abs(a-b) <= 1e-9 }

func TestDeclareAndProbability(t *testing.T) {
	u := NewUniverse()
	a, err := u.Declare("a", 0.3)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := u.Declare("b", 0.5)

	cases := []struct {
		e    Expr
		want float64
	}{
		{True, 1},
		{a, 0.3},
		{Not(a), 0.7},
		{And(a, b), 0.15},
		{Or(a, b), 0.3 + 0.5 - 0.15},
		{And(a, Not(a)), 0},
		{Or(a, Not(a)), 1},
		{And(), 1},
		{And(a), 0.3},
		{Or(a), 0.3},
		{Not(And(a, b)), 0.85},
	}
	for i, c := range cases {
		got, err := u.Probability(c.e)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if !almost(got, c.want) {
			t.Errorf("case %d (%s): P = %v, want %v", i, c.e, got, c.want)
		}
	}
}

func TestSharedSymbolsAreCorrelated(t *testing.T) {
	// P(a ∧ (a ∨ b)) must be P(a), not P(a)·P(a∨b).
	u := NewUniverse()
	a, _ := u.Declare("a", 0.4)
	b, _ := u.Declare("b", 0.5)
	got, err := u.Probability(And(a, Or(a, b)))
	if err != nil {
		t.Fatal(err)
	}
	if !almost(got, 0.4) {
		t.Fatalf("P = %v, want 0.4", got)
	}
}

func TestDeclareErrors(t *testing.T) {
	u := NewUniverse()
	if _, err := u.Declare("", 0.5); err == nil {
		t.Error("empty ID must fail")
	}
	if _, err := u.Declare("x", -0.1); err == nil {
		t.Error("negative probability must fail")
	}
	if _, err := u.Declare("x", 1.1); err == nil {
		t.Error("probability > 1 must fail")
	}
}

func TestUndeclaredSymbol(t *testing.T) {
	u := NewUniverse()
	if _, err := u.Probability(Var("ghost")); err == nil {
		t.Fatal("undeclared symbol must fail")
	}
}

func TestRedeclareOverwrites(t *testing.T) {
	u := NewUniverse()
	a, _ := u.Declare("a", 0.2)
	if _, err := u.Declare("a", 0.8); err != nil {
		t.Fatal(err)
	}
	got, _ := u.Probability(a)
	if !almost(got, 0.8) {
		t.Fatalf("P = %v after redeclare", got)
	}
	if n := len(u.Symbols()); n != 1 {
		t.Fatalf("symbols = %d", n)
	}
}

func TestMutuallyExclusive(t *testing.T) {
	u := NewUniverse()
	a, _ := u.Declare("a", 0.5)
	b, _ := u.Declare("b", 0.5)
	ex, err := u.MutuallyExclusive(a, Not(a))
	if err != nil || !ex {
		t.Fatalf("a and ¬a must be exclusive (err=%v)", err)
	}
	ex, err = u.MutuallyExclusive(a, b)
	if err != nil || ex {
		t.Fatalf("independent symbols are not exclusive (err=%v)", err)
	}
}

func TestString(t *testing.T) {
	u := NewUniverse()
	a, _ := u.Declare("dup(x,y)", 0.5)
	s := And(a, Not(Var("dup(x,y)"))).String()
	for _, want := range []string{"dup(x,y)", "¬", "∧"} {
		if !strings.Contains(s, want) {
			t.Errorf("String %q missing %q", s, want)
		}
	}
	if True.String() != "⊤" {
		t.Errorf("True renders %q", True.String())
	}
}

func TestSymbolsOrder(t *testing.T) {
	u := NewUniverse()
	u.Declare("z", 0.1)
	u.Declare("a", 0.2)
	syms := u.Symbols()
	if syms[0].ID != "z" || syms[1].ID != "a" {
		t.Fatalf("declaration order lost: %v", syms)
	}
}
