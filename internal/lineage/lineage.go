// Package lineage implements a small ULDB-style boolean lineage algebra
// (Trio's concept, referenced in Sec. VI of the paper): result tuples carry
// lineage expressions over independent boolean symbols, which makes
// mutually exclusive sets of tuples representable — the mechanism the paper
// proposes for modelling uncertainty *arising from duplicate detection
// itself* ("two tuples are duplicates with only a low confidence") directly
// in the probabilistic result.
//
// Symbols are independent Bernoulli variables. Expressions are built from
// symbols with And, Or and Not. Probability evaluation enumerates the
// symbols occurring in the expression (exact; intended for the small
// per-entity expressions duplicate detection produces — typically one or
// two symbols each).
package lineage

import (
	"fmt"
	"sort"
	"strings"
)

// Sym is a boolean lineage symbol ("the pair (a,b) is truly a duplicate").
type Sym struct {
	// ID identifies the symbol, e.g. "dup(a,b)".
	ID string
	// P is the probability that the symbol is true.
	P float64
}

// Expr is a boolean lineage expression.
type Expr interface {
	// syms collects the IDs of all symbols in the expression.
	syms(into map[string]bool)
	// eval evaluates under an assignment.
	eval(assign map[string]bool) bool
	// String renders the expression.
	String() string
}

// True is the always-true lineage (base tuples).
var True Expr = truth{}

type truth struct{}

func (truth) syms(map[string]bool)      {}
func (truth) eval(map[string]bool) bool { return true }
func (truth) String() string            { return "⊤" }

type symRef struct{ id string }

func (s symRef) syms(into map[string]bool)   { into[s.id] = true }
func (s symRef) eval(a map[string]bool) bool { return a[s.id] }
func (s symRef) String() string              { return s.id }

type not struct{ e Expr }

func (n not) syms(into map[string]bool)   { n.e.syms(into) }
func (n not) eval(a map[string]bool) bool { return !n.e.eval(a) }
func (n not) String() string              { return "¬" + n.e.String() }

type nary struct {
	and  bool
	args []Expr
}

func (n nary) syms(into map[string]bool) {
	for _, a := range n.args {
		a.syms(into)
	}
}

func (n nary) eval(a map[string]bool) bool {
	for _, arg := range n.args {
		v := arg.eval(a)
		if n.and && !v {
			return false
		}
		if !n.and && v {
			return true
		}
	}
	return n.and
}

func (n nary) String() string {
	op := " ∨ "
	if n.and {
		op = " ∧ "
	}
	parts := make([]string, len(n.args))
	for i, a := range n.args {
		parts[i] = a.String()
	}
	return "(" + strings.Join(parts, op) + ")"
}

// Var references a symbol in an expression.
func Var(id string) Expr { return symRef{id: id} }

// Not negates an expression.
func Not(e Expr) Expr { return not{e: e} }

// And conjoins expressions (True for zero arguments).
func And(es ...Expr) Expr {
	if len(es) == 0 {
		return True
	}
	if len(es) == 1 {
		return es[0]
	}
	return nary{and: true, args: es}
}

// Or disjoins expressions (never-true for zero arguments is not needed; Or
// of one argument is the argument itself).
func Or(es ...Expr) Expr {
	if len(es) == 1 {
		return es[0]
	}
	return nary{and: false, args: es}
}

// Universe is a set of independent symbols with probabilities.
type Universe struct {
	syms map[string]float64
	ids  []string
}

// NewUniverse creates an empty symbol universe.
func NewUniverse() *Universe {
	return &Universe{syms: map[string]float64{}}
}

// Declare registers a symbol and returns a reference to it. Redeclaring an
// existing ID overwrites its probability.
func (u *Universe) Declare(id string, p float64) (Expr, error) {
	if id == "" {
		return nil, fmt.Errorf("lineage: empty symbol ID")
	}
	if p < 0 || p > 1 {
		return nil, fmt.Errorf("lineage: symbol %q probability %v outside [0,1]", id, p)
	}
	if _, ok := u.syms[id]; !ok {
		u.ids = append(u.ids, id)
	}
	u.syms[id] = p
	return symRef{id: id}, nil
}

// Symbols returns the declared symbols in declaration order.
func (u *Universe) Symbols() []Sym {
	out := make([]Sym, len(u.ids))
	for i, id := range u.ids {
		out[i] = Sym{ID: id, P: u.syms[id]}
	}
	return out
}

// Probability computes P(e true) exactly by enumerating the assignments of
// the symbols occurring in e. Symbols not declared in the universe are an
// error. The expression size is expected to be small (duplicate-detection
// lineage uses one or two symbols per tuple); the cost is O(2^k · |e|) for
// k distinct symbols.
func (u *Universe) Probability(e Expr) (float64, error) {
	present := map[string]bool{}
	e.syms(present)
	var ids []string
	for id := range present {
		if _, ok := u.syms[id]; !ok {
			return 0, fmt.Errorf("lineage: undeclared symbol %q", id)
		}
		ids = append(ids, id)
	}
	sort.Strings(ids)
	total := 0.0
	n := len(ids)
	for mask := 0; mask < 1<<n; mask++ {
		assign := make(map[string]bool, n)
		p := 1.0
		for i, id := range ids {
			if mask&(1<<i) != 0 {
				assign[id] = true
				p *= u.syms[id]
			} else {
				p *= 1 - u.syms[id]
			}
		}
		if p > 0 && e.eval(assign) {
			total += p
		}
	}
	return total, nil
}

// MutuallyExclusive reports whether two expressions can never be true
// together under any assignment of the union of their symbols (used to
// check the paper's "mutually exclusive sets of tuples" invariant).
func (u *Universe) MutuallyExclusive(a, b Expr) (bool, error) {
	p, err := u.Probability(And(a, b))
	if err != nil {
		return false, err
	}
	// With probabilities strictly inside (0,1) every satisfiable
	// conjunction has positive probability; clamp symbols at exactly 0/1
	// are treated as unsatisfiable in that direction, which matches the
	// world semantics.
	return p == 0, nil
}
