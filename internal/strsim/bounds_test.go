package strsim

import (
	"fmt"
	"math/rand"
	"testing"

	"probdedup/internal/sym"
)

// boundedFuncs enumerates every comparison function with a registered
// bound, paired with a concrete instance to evaluate. Closure families
// (BandedLevenshtein, the q-gram constructors) contribute several
// instances per registration, because one registered bound must be
// sound for every instance sharing the code pointer.
func boundedFuncs() map[string]Func {
	return map[string]Func{
		"Exact":                  Exact,
		"NormalizedHamming":      NormalizedHamming,
		"Levenshtein":            Levenshtein,
		"BandedLevenshtein(1)":   BandedLevenshtein(1),
		"BandedLevenshtein(3)":   BandedLevenshtein(3),
		"DamerauLevenshtein":     DamerauLevenshtein,
		"Jaro":                   Jaro,
		"JaroWinkler":            JaroWinkler,
		"CommonPrefix":           CommonPrefix,
		"LongestCommonSubstring": LongestCommonSubstring,
		"QGramDice(1)":           QGramDice(1),
		"QGramDice(2)":           QGramDice(2),
		"QGramDice(3)":           QGramDice(3),
		"QGramDice(4)":           QGramDice(4),
		"QGramJaccard(2)":        QGramJaccard(2),
		"QGramJaccard(5)":        QGramJaccard(5),
	}
}

// TestRegisteredBoundsAreSound is the property underpinning the whole
// candidate pre-filter: for every registered bound and random string
// pairs (short words, shared prefixes, multi-byte runes, empties), the
// bound computed from symbol statistics alone must dominate the actual
// similarity — at every gram size a table can be built with.
func TestRegisteredBoundsAreSound(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	alphabet := []rune("abcdeé漢 #x")
	word := func() string {
		n := rng.Intn(10)
		rs := make([]rune, n)
		for i := range rs {
			rs[i] = alphabet[rng.Intn(len(alphabet))]
		}
		return string(rs)
	}
	pairs := [][2]string{
		{"", ""}, {"", "a"}, {"abc", "abc"}, {"abc", "abd"},
		{"martha", "marhta"}, {"dixon", "dicksonx"},
		{"aaaa", "aaaaaaaaaa"}, {"é", "e"},
	}
	for i := 0; i < 400; i++ {
		pairs = append(pairs, [2]string{word(), word()})
	}
	for _, q := range []int{1, 2, 3, 4} {
		tab := sym.NewTable(q)
		for name, f := range boundedFuncs() {
			bound, ok := BoundFor(f)
			if !ok {
				t.Fatalf("%s: no bound registered", name)
			}
			for _, p := range pairs {
				a, b := p[0], p[1]
				sa := tab.Stats(tab.Intern(a))
				sb := tab.Stats(tab.Intern(b))
				actual := f(a, b)
				ub := bound(sa, sb)
				if ub < actual {
					t.Fatalf("q=%d %s(%q, %q) = %v exceeds bound %v", q, name, a, b, actual, ub)
				}
				if ub != bound(sb, sa) {
					t.Fatalf("q=%d %s(%q, %q): bound is asymmetric", q, name, a, b)
				}
			}
		}
	}
}

// TestBoundsGuardUninterned: a bound consulted with zero (un-interned)
// Stats must claim no information (1), never a rejection.
func TestBoundsGuardUninterned(t *testing.T) {
	tab := sym.NewTable(2)
	st := tab.Stats(tab.Intern("hello"))
	for name, f := range boundedFuncs() {
		bound, ok := BoundFor(f)
		if !ok {
			t.Fatalf("%s: no bound registered", name)
		}
		if got := bound(sym.Stats{}, st); got != 1 {
			t.Fatalf("%s: bound(zero, x) = %v, want 1", name, got)
		}
		if got := bound(st, sym.Stats{}); got != 1 {
			t.Fatalf("%s: bound(x, zero) = %v, want 1", name, got)
		}
	}
}

// TestBoundForUnregistered: an arbitrary custom Func has no bound.
func TestBoundForUnregistered(t *testing.T) {
	custom := func(a, b string) float64 { return 0.5 }
	if _, ok := BoundFor(custom); ok {
		t.Fatal("custom func unexpectedly has a bound")
	}
}

// TestBoundsRejectObviousNonMatches pins that the machinery actually
// filters (not just soundly returns 1): disjoint-gram strings must get
// a strict sub-1 bound for the edit family and 0 for CommonPrefix.
func TestBoundsRejectObviousNonMatches(t *testing.T) {
	tab := sym.NewTable(2)
	sa := tab.Stats(tab.Intern("aaaaaaaa"))
	sb := tab.Stats(tab.Intern("zzzzzzzz"))
	cases := map[string]struct {
		f   Func
		max float64
	}{
		"Levenshtein":  {Levenshtein, 0.5},
		"Damerau":      {DamerauLevenshtein, 0.7},
		"CommonPrefix": {CommonPrefix, 0},
		"Exact":        {Exact, 0},
		"LCS":          {LongestCommonSubstring, 0.2},
	}
	for name, c := range cases {
		bound, ok := BoundFor(c.f)
		if !ok {
			t.Fatalf("%s: no bound", name)
		}
		if got := bound(sa, sb); got > c.max {
			t.Fatalf("%s: bound %v, want ≤ %v", name, got, c.max)
		}
	}
}

// TestPackedQGramKernelsMatchStringKernels pins the q ≤ sym.MaxExactQ
// fast path of QGramDice/QGramJaccard to the string-based kernels bit
// for bit (the constructors switch implementations on q).
func TestPackedQGramKernelsMatchStringKernels(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	word := func() string {
		b := make([]byte, rng.Intn(9))
		for i := range b {
			b[i] = byte('a' + rng.Intn(4))
		}
		return string(b)
	}
	for q := 1; q <= sym.MaxExactQ; q++ {
		dice := QGramDice(q)
		jac := QGramJaccard(q)
		for i := 0; i < 300; i++ {
			a, b := word(), word()
			ga, gb := qgrams(a, q), qgrams(b, q)
			wantDice := func() float64 {
				if len(ga) == 0 && len(gb) == 0 {
					return 1
				}
				if len(ga) == 0 || len(gb) == 0 {
					return 0
				}
				common := 0
				counts := map[string]int{}
				for _, g := range ga {
					counts[g]++
				}
				for _, g := range gb {
					if counts[g] > 0 {
						counts[g]--
						common++
					}
				}
				return 2 * float64(common) / float64(len(ga)+len(gb))
			}()
			if got := dice(a, b); got != wantDice {
				t.Fatalf("QGramDice(%d)(%q, %q) = %v, want %v", q, a, b, got, wantDice)
			}
			if got, want := jac(a, b), jac(b, a); got != want {
				t.Fatalf("QGramJaccard(%d) asymmetric on (%q, %q): %v vs %v", q, a, b, got, want)
			}
		}
	}
}

func init() {
	// Guard against accidental init-order surprises in the registry:
	// every built-in must be bounded by the time tests run.
	for _, f := range []Func{Exact, Levenshtein, Jaro} {
		if _, ok := BoundFor(f); !ok {
			panic(fmt.Sprintf("bound registry incomplete: %T", f))
		}
	}
}
