package strsim

import (
	"math"
	"math/rand"
	"testing"
)

// referenceLevenshtein is the straightforward full-matrix implementation
// the allocation-free kernels are checked against.
func referenceLevenshtein(a, b string) int {
	ra, rb := []rune(a), []rune(b)
	la, lb := len(ra), len(rb)
	rows := make([][]int, la+1)
	for i := range rows {
		rows[i] = make([]int, lb+1)
		rows[i][0] = i
	}
	for j := 0; j <= lb; j++ {
		rows[0][j] = j
	}
	for i := 1; i <= la; i++ {
		for j := 1; j <= lb; j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			rows[i][j] = min3(rows[i][j-1]+1, rows[i-1][j]+1, rows[i-1][j-1]+cost)
		}
	}
	return rows[la][lb]
}

// randWord draws a short word over the given alphabet (non-ASCII
// alphabets exercise the rune path).
func randWord(r *rand.Rand, alphabet []rune, maxLen int) string {
	n := r.Intn(maxLen + 1)
	out := make([]rune, n)
	for i := range out {
		out[i] = alphabet[r.Intn(len(alphabet))]
	}
	return string(out)
}

var (
	asciiAlphabet   = []rune("abcde")
	unicodeAlphabet = []rune("äöüßéñ日本")
)

func TestLevenshteinAgainstReference(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for _, alphabet := range [][]rune{asciiAlphabet, unicodeAlphabet} {
		for i := 0; i < 500; i++ {
			a, b := randWord(r, alphabet, 12), randWord(r, alphabet, 12)
			want := referenceLevenshtein(a, b)
			n := max2(RuneLen(a), RuneLen(b))
			wantSim := 1.0
			if n > 0 {
				wantSim = 1 - float64(want)/float64(n)
			}
			if got := Levenshtein(a, b); math.Abs(got-wantSim) > 1e-12 {
				t.Fatalf("Levenshtein(%q,%q) = %v, want %v", a, b, got, wantSim)
			}
		}
	}
}

func TestLevenshteinWithin(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for _, alphabet := range [][]rune{asciiAlphabet, unicodeAlphabet} {
		for i := 0; i < 500; i++ {
			a, b := randWord(r, alphabet, 12), randWord(r, alphabet, 12)
			want := referenceLevenshtein(a, b)
			for k := 0; k <= 12; k++ {
				d, ok := LevenshteinWithin(a, b, k)
				if want <= k {
					if !ok || d != want {
						t.Fatalf("LevenshteinWithin(%q,%q,%d) = (%d,%v), want (%d,true)", a, b, k, d, ok, want)
					}
				} else if ok || d != k+1 {
					t.Fatalf("LevenshteinWithin(%q,%q,%d) = (%d,%v), want (%d,false)", a, b, k, d, ok, k+1)
				}
			}
		}
	}
	if d, ok := LevenshteinWithin("x", "y", -1); ok || d != 0 {
		t.Fatalf("negative bound: (%d,%v)", d, ok)
	}
	if d, ok := LevenshteinWithin("", "", 0); !ok || d != 0 {
		t.Fatalf("empty strings: (%d,%v)", d, ok)
	}
}

func TestBandedLevenshtein(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	for _, minSim := range []float64{0, 0.3, 0.6, 0.8, 1} {
		f := BandedLevenshtein(minSim)
		for i := 0; i < 500; i++ {
			a, b := randWord(r, asciiAlphabet, 10), randWord(r, asciiAlphabet, 10)
			full := Levenshtein(a, b)
			got := f(a, b)
			if full >= minSim {
				if math.Abs(got-full) > 1e-12 {
					t.Fatalf("minSim=%v: f(%q,%q) = %v, want %v", minSim, a, b, got, full)
				}
			} else if got != 0 {
				t.Fatalf("minSim=%v: f(%q,%q) = %v, want 0 (full %v)", minSim, a, b, got, full)
			}
		}
		if got := f("same", "same"); got != 1 {
			t.Fatalf("minSim=%v: identity = %v", minSim, got)
		}
	}
}

// TestKernelsASCIIvsRunePath checks that the byte fast path and the rune
// path agree wherever both apply, by comparing pure-ASCII inputs against
// the same words with every 'a' replaced by 'ä' on both sides (an
// order-preserving rune substitution keeps all kernels invariant).
func TestKernelsASCIIvsRunePath(t *testing.T) {
	funcs := map[string]Func{
		"hamming": NormalizedHamming,
		"lev":     Levenshtein,
		"osa":     DamerauLevenshtein,
		"jaro":    Jaro,
		"jw":      JaroWinkler,
		"lcs":     LongestCommonSubstring,
		"prefix":  CommonPrefix,
	}
	widen := func(s string) string {
		out := []rune(s)
		for i, r := range out {
			if r == 'a' {
				out[i] = 'ä'
			}
		}
		return string(out)
	}
	r := rand.New(rand.NewSource(17))
	for name, f := range funcs {
		for i := 0; i < 300; i++ {
			a, b := randWord(r, asciiAlphabet, 10), randWord(r, asciiAlphabet, 10)
			if got, want := f(widen(a), widen(b)), f(a, b); math.Abs(got-want) > 1e-12 {
				t.Fatalf("%s: rune path %q/%q = %v, ASCII path %q/%q = %v", name, widen(a), widen(b), got, a, b, want)
			}
		}
	}
}

// TestKernelsConcurrent hammers the pooled scratch from many goroutines;
// run with -race to catch sharing bugs.
func TestKernelsConcurrent(t *testing.T) {
	funcs := []Func{NormalizedHamming, Levenshtein, DamerauLevenshtein, Jaro, JaroWinkler, LongestCommonSubstring, CommonPrefix, BandedLevenshtein(0.5)}
	done := make(chan bool)
	for g := 0; g < 8; g++ {
		go func(seed int64) {
			r := rand.New(rand.NewSource(seed))
			ok := true
			for i := 0; i < 200; i++ {
				a, b := randWord(r, asciiAlphabet, 8), randWord(r, unicodeAlphabet, 8)
				for _, f := range funcs {
					v := f(a, b)
					if v < -1e-12 || v > 1+1e-12 || math.IsNaN(v) {
						ok = false
					}
				}
			}
			done <- ok
		}(int64(g))
	}
	for g := 0; g < 8; g++ {
		if !<-done {
			t.Fatal("kernel returned a value outside [0,1] under concurrency")
		}
	}
}

func TestKernelsAllocationFree(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items under -race, so allocation counts are unreliable")
	}
	cases := []struct {
		name string
		f    Func
	}{
		{"hamming", NormalizedHamming},
		{"lev", Levenshtein},
		{"osa", DamerauLevenshtein},
		{"jaro", Jaro},
		{"lcs", LongestCommonSubstring},
		{"prefix", CommonPrefix},
		{"banded", BandedLevenshtein(0.6)},
	}
	for _, c := range cases {
		// Warm the pool, then require zero allocations on the ASCII path.
		c.f("machinist", "mechanic")
		avg := testing.AllocsPerRun(100, func() { c.f("machinist", "mechanic") })
		if avg != 0 {
			t.Errorf("%s: %v allocs/op on the ASCII path, want 0", c.name, avg)
		}
	}
}

func TestSoundexGoldenCases(t *testing.T) {
	// The classic American Soundex edge cases (NARA coding examples):
	// H/W transparency (Ashcraft, Pfister), vowel separation (Tymczak,
	// Honeyman), repeated letters and padding.
	cases := map[string]string{
		"Robert":     "R163",
		"Rupert":     "R163",
		"Ashcraft":   "A261", // S and C around H collapse into one code
		"Ashcroft":   "A261",
		"Tymczak":    "T522", // Z and K coded separately across the vowel A
		"Pfister":    "P236", // F after initial P collapses (both code 1)
		"Honeyman":   "H555",
		"Jackson":    "J250",
		"Washington": "W252",
		"Gutierrez":  "G362",
		"VanDeusen":  "V532",
		"Lee":        "L000",
		"":           "0000",
		"123":        "0000",
	}
	for in, want := range cases {
		if got := SoundexCode(in); got != want {
			t.Errorf("SoundexCode(%q) = %q, want %q", in, got, want)
		}
	}
}
