package strsim

import (
	"math"
	"strconv"
)

// NumericAbs returns a comparison function for numeric attribute values:
// sim(a,b) = max(0, 1 − |a−b|/scale). Values that fail to parse as floats
// fall back to Exact, so mixed domains degrade gracefully. The scale must
// be positive; it is the difference at which similarity reaches zero
// (e.g. 5.0 for stellar magnitudes, 10 for ages).
func NumericAbs(scale float64) Func {
	if scale <= 0 || math.IsNaN(scale) {
		scale = 1
	}
	return func(a, b string) float64 {
		fa, errA := strconv.ParseFloat(a, 64)
		fb, errB := strconv.ParseFloat(b, 64)
		if errA != nil || errB != nil {
			return Exact(a, b)
		}
		d := math.Abs(fa-fb) / scale
		if d >= 1 {
			return 0
		}
		return 1 - d
	}
}

// NumericRelative returns a comparison function using relative difference:
// sim(a,b) = max(0, 1 − |a−b|/max(|a|,|b|)). Two zeros are fully similar;
// non-numeric values fall back to Exact.
func NumericRelative(a, b string) float64 {
	fa, errA := strconv.ParseFloat(a, 64)
	fb, errB := strconv.ParseFloat(b, 64)
	if errA != nil || errB != nil {
		return Exact(a, b)
	}
	den := math.Max(math.Abs(fa), math.Abs(fb))
	if den == 0 {
		return 1
	}
	d := math.Abs(fa-fb) / den
	if d >= 1 {
		return 0
	}
	return 1 - d
}
