package strsim

import "strings"

// SoundexCode returns the four-character American Soundex code of s
// ("Robert" → "R163"). Non-letter runes are ignored; an empty or letterless
// input yields "0000".
func SoundexCode(s string) string {
	s = strings.ToUpper(s)
	var letters []byte
	for _, r := range s {
		if r >= 'A' && r <= 'Z' {
			letters = append(letters, byte(r))
		}
	}
	if len(letters) == 0 {
		return "0000"
	}
	code := []byte{letters[0]}
	prev := soundexDigit(letters[0])
	for _, c := range letters[1:] {
		d := soundexDigit(c)
		switch {
		case d == 0:
			// Letters without a digit split into two classes. Vowels
			// (A,E,I,O,U) and Y act as separators: they reset prev, so two
			// consonants of the same class around a vowel are coded twice
			// (Tymczak → T522). H and W are transparent: they keep prev, so
			// two consonants of the same class around an H or W collapse
			// into one code (the NARA rule, Ashcraft → A261, not A226).
			if c != 'H' && c != 'W' {
				prev = 0
			}
		case d != prev:
			code = append(code, byte('0'+d))
			prev = d
		}
		if len(code) == 4 {
			break
		}
	}
	for len(code) < 4 {
		code = append(code, '0')
	}
	return string(code)
}

func soundexDigit(c byte) int {
	switch c {
	case 'B', 'F', 'P', 'V':
		return 1
	case 'C', 'G', 'J', 'K', 'Q', 'S', 'X', 'Z':
		return 2
	case 'D', 'T':
		return 3
	case 'L':
		return 4
	case 'M', 'N':
		return 5
	case 'R':
		return 6
	}
	return 0
}

// Soundex returns the fraction of agreeing positions of the two Soundex
// codes (1 for identical codes, 0.25 steps otherwise). This gives a crude
// phonetic ("semantic") similarity usable as a comparison function.
func Soundex(a, b string) float64 {
	ca, cb := SoundexCode(a), SoundexCode(b)
	match := 0
	for i := 0; i < 4; i++ {
		if ca[i] == cb[i] {
			match++
		}
	}
	return float64(match) / 4
}

// Glossary is a semantic comparison function backed by synonym groups: two
// values in the same group are fully similar (Sec. III-C's "semantic means",
// e.g. glossaries or ontologies). Lookup is case-insensitive. Values not
// covered by the glossary fall back to the provided comparison function.
type Glossary struct {
	group    map[string]int
	fallback Func
}

// NewGlossary builds a glossary from synonym groups.
func NewGlossary(fallback Func, groups ...[]string) *Glossary {
	g := &Glossary{group: make(map[string]int), fallback: fallback}
	for i, grp := range groups {
		for _, w := range grp {
			g.group[strings.ToLower(w)] = i + 1
		}
	}
	return g
}

// Sim is the comparison function of the glossary.
func (g *Glossary) Sim(a, b string) float64 {
	ga := g.group[strings.ToLower(a)]
	gb := g.group[strings.ToLower(b)]
	if ga != 0 && ga == gb {
		return 1
	}
	if g.fallback != nil {
		return g.fallback(a, b)
	}
	return Exact(a, b)
}
