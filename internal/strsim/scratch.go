package strsim

import (
	"sync"
	"unicode/utf8"
)

// The comparison functions run on every cache miss of the attribute value
// matching hot path, typically from many detection workers at once. They
// therefore share per-goroutine scratch space through a sync.Pool instead
// of allocating rune buffers and DP rows per call: in steady state the
// kernels are allocation-free.
//
// ASCII inputs (the overwhelmingly common case for names, jobs, codes)
// additionally skip the []rune conversion entirely and index the strings
// byte by byte.

// scratch is the reusable working memory of one comparison call.
type scratch struct {
	ba, bb []byte
	ra, rb []rune
	row0   []int
	row1   []int
	row2   []int
	ma, mb []bool
}

var scratchPool = sync.Pool{New: func() any { return new(scratch) }}

// getScratch borrows a scratch buffer from the pool.
func getScratch() *scratch { return scratchPool.Get().(*scratch) }

// put returns the scratch buffer to the pool.
func (s *scratch) put() { scratchPool.Put(s) }

// isASCII reports whether s contains only single-byte runes.
func isASCII(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] >= utf8.RuneSelf {
			return false
		}
	}
	return true
}

// runesInto decodes s into buf (reusing its capacity) and returns the
// filled slice.
func runesInto(buf []rune, s string) []rune {
	buf = buf[:0]
	for _, r := range s {
		buf = append(buf, r)
	}
	return buf
}

// bytesInto copies an ASCII s into buf (reusing its capacity) and returns
// the filled slice.
func bytesInto(buf []byte, s string) []byte {
	return append(buf[:0], s...)
}

// intRow returns a zeroed-capacity int row of length n, growing buf as
// needed.
func intRow(buf []int, n int) []int {
	if cap(buf) < n {
		return make([]int, n)
	}
	return buf[:n]
}

// boolRow returns a false-initialized bool row of length n, growing buf
// as needed.
func boolRow(buf []bool, n int) []bool {
	if cap(buf) < n {
		buf = make([]bool, n)
	} else {
		buf = buf[:n]
		for i := range buf {
			buf[i] = false
		}
	}
	return buf
}
