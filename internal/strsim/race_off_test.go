//go:build !race

package strsim

const raceEnabled = false
