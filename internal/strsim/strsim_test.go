package strsim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) <= 1e-9 }

func TestNormalizedHammingPaperValues(t *testing.T) {
	// The three values the paper derives with the normalized Hamming
	// distance (Sec. IV-A and IV-B).
	cases := []struct {
		a, b string
		want float64
	}{
		{"Tim", "Kim", 2.0 / 3},
		{"machinist", "mechanic", 5.0 / 9},
		{"Jim", "Tom", 1.0 / 3},
		{"Tim", "Tim", 1},
		{"baker", "mechanic", 0},
		{"Tim", "Tom", 2.0 / 3},
		{"Jim", "Tim", 2.0 / 3},
	}
	for _, c := range cases {
		if got := NormalizedHamming(c.a, c.b); !almost(got, c.want) {
			t.Errorf("NormalizedHamming(%q,%q) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestLevenshtein(t *testing.T) {
	cases := []struct {
		a, b string
		want float64
	}{
		{"kitten", "sitting", 1 - 3.0/7},
		{"", "", 1},
		{"", "abc", 0},
		{"abc", "abc", 1},
		{"flaw", "lawn", 1 - 2.0/4},
	}
	for _, c := range cases {
		if got := Levenshtein(c.a, c.b); !almost(got, c.want) {
			t.Errorf("Levenshtein(%q,%q) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestDamerauLevenshtein(t *testing.T) {
	// A transposition costs 1, not 2.
	if got := DamerauLevenshtein("ab", "ba"); !almost(got, 0.5) {
		t.Errorf("DamerauLevenshtein(ab,ba) = %v, want 0.5", got)
	}
	if got, lev := DamerauLevenshtein("Tmi", "Tim"), Levenshtein("Tmi", "Tim"); got <= lev {
		t.Errorf("transposition must score higher than plain Levenshtein: %v vs %v", got, lev)
	}
}

func TestJaro(t *testing.T) {
	cases := []struct {
		a, b string
		want float64
	}{
		{"MARTHA", "MARHTA", 0.944444444444},
		{"DIXON", "DICKSONX", 0.766666666667},
		{"", "", 1},
		{"a", "", 0},
		{"same", "same", 1},
		{"abc", "xyz", 0},
	}
	for _, c := range cases {
		if got := Jaro(c.a, c.b); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Jaro(%q,%q) = %.12f, want %.12f", c.a, c.b, got, c.want)
		}
	}
}

func TestJaroWinkler(t *testing.T) {
	// Classic reference value.
	if got := JaroWinkler("MARTHA", "MARHTA"); math.Abs(got-0.961111111111) > 1e-9 {
		t.Errorf("JaroWinkler(MARTHA,MARHTA) = %.12f", got)
	}
	// Winkler boost only helps with a common prefix.
	if JaroWinkler("abcd", "abce") <= Jaro("abcd", "abce") {
		t.Error("prefix boost missing")
	}
	if got := JaroWinkler("x", "x"); !almost(got, 1) {
		t.Errorf("identical = %v", got)
	}
}

func TestQGramDice(t *testing.T) {
	f := QGramDice(2)
	if got := f("abc", "abc"); !almost(got, 1) {
		t.Errorf("identical = %v", got)
	}
	if got := f("abc", "xyz"); !almost(got, 0) {
		t.Errorf("disjoint = %v", got)
	}
	if got := f("", ""); !almost(got, 1) {
		t.Errorf("empty = %v", got)
	}
	if got := f("a", ""); !almost(got, 0) {
		t.Errorf("one empty = %v", got)
	}
	// Padded bigrams of "ab": {#a, ab, b#}; of "ac": {#a, ac, c#} → 2*1/6.
	if got := f("ab", "ac"); !almost(got, 1.0/3) {
		t.Errorf("ab/ac = %v, want 1/3", got)
	}
}

func TestQGramJaccard(t *testing.T) {
	f := QGramJaccard(2)
	if got := f("ab", "ac"); !almost(got, 1.0/5) {
		t.Errorf("ab/ac = %v, want 1/5", got)
	}
	if got := f("night", "night"); !almost(got, 1) {
		t.Errorf("identical = %v", got)
	}
}

func TestLongestCommonSubstring(t *testing.T) {
	cases := []struct {
		a, b string
		want float64
	}{
		{"machinist", "mechanist", 6.0 / 9}, // "chanist" no: "hanist"? lcs is "hanist"? see test below
		{"abc", "abc", 1},
		{"abc", "xyz", 0},
		{"", "", 1},
	}
	// Verify the first case by construction: machinist vs mechanist share
	// "hanist"? machinist = ma-chinist, mechanist = me-chanist; longest
	// common contiguous run: "nist" (4) vs "ist"… compute expected with a
	// tiny oracle instead of guessing.
	cases[0].want = float64(lcsOracle("machinist", "mechanist")) / 9
	for _, c := range cases {
		if got := LongestCommonSubstring(c.a, c.b); !almost(got, c.want) {
			t.Errorf("LCS(%q,%q) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func lcsOracle(a, b string) int {
	ra, rb := []rune(a), []rune(b)
	best := 0
	for i := range ra {
		for j := range rb {
			k := 0
			for i+k < len(ra) && j+k < len(rb) && ra[i+k] == rb[j+k] {
				k++
			}
			if k > best {
				best = k
			}
		}
	}
	return best
}

func TestCommonPrefix(t *testing.T) {
	if got := CommonPrefix("Johpi", "Johmu"); !almost(got, 3.0/5) {
		t.Errorf("CommonPrefix = %v", got)
	}
	if got := CommonPrefix("", ""); !almost(got, 1) {
		t.Errorf("empty = %v", got)
	}
}

func TestTokenJaccard(t *testing.T) {
	if got := TokenJaccard("john a smith", "john b smith"); !almost(got, 2.0/4) {
		t.Errorf("TokenJaccard = %v", got)
	}
	if got := TokenJaccard("", ""); !almost(got, 1) {
		t.Errorf("empty = %v", got)
	}
	if got := TokenJaccard("a", ""); !almost(got, 0) {
		t.Errorf("one empty = %v", got)
	}
}

func TestTokenCosine(t *testing.T) {
	if got := TokenCosine("a b", "a b"); !almost(got, 1) {
		t.Errorf("identical = %v", got)
	}
	if got := TokenCosine("a", "b"); !almost(got, 0) {
		t.Errorf("disjoint = %v", got)
	}
	// ("a a b") vs ("a b"): dot = 2*1+1*1 = 3; norms sqrt(5), sqrt(2).
	want := 3 / (math.Sqrt(5) * math.Sqrt(2))
	if got := TokenCosine("a a b", "a b"); !almost(got, want) {
		t.Errorf("cosine = %v want %v", got, want)
	}
}

func TestMongeElkan(t *testing.T) {
	f := MongeElkan(JaroWinkler)
	if got := f("peter christen", "christen peter"); !almost(got, 1) {
		t.Errorf("token reorder must be fully similar, got %v", got)
	}
	if got := f("", ""); !almost(got, 1) {
		t.Errorf("empty = %v", got)
	}
	if got := f("x", ""); !almost(got, 0) {
		t.Errorf("one empty = %v", got)
	}
}

func TestSoundexCode(t *testing.T) {
	cases := []struct{ in, want string }{
		{"Robert", "R163"},
		{"Rupert", "R163"},
		{"Ashcraft", "A261"},
		{"Ashcroft", "A261"},
		{"Tymczak", "T522"},
		{"Pfister", "P236"},
		{"Honeyman", "H555"},
		{"", "0000"},
		{"123", "0000"},
	}
	for _, c := range cases {
		if got := SoundexCode(c.in); got != c.want {
			t.Errorf("SoundexCode(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestSoundexSim(t *testing.T) {
	if got := Soundex("Robert", "Rupert"); !almost(got, 1) {
		t.Errorf("phonetic twins = %v", got)
	}
	if got := Soundex("Robert", "Xylophone"); got >= 1 {
		t.Errorf("unrelated = %v", got)
	}
}

func TestGlossary(t *testing.T) {
	g := NewGlossary(NormalizedHamming,
		[]string{"machinist", "mechanic", "mechanist"},
		[]string{"baker", "confectioner", "confectionist"},
	)
	if got := g.Sim("machinist", "mechanic"); !almost(got, 1) {
		t.Errorf("same group = %v", got)
	}
	if got := g.Sim("MACHINIST", "Mechanic"); !almost(got, 1) {
		t.Errorf("case-insensitive = %v", got)
	}
	if got := g.Sim("machinist", "baker"); !almost(got, NormalizedHamming("machinist", "baker")) {
		t.Errorf("cross-group must fall back, got %v", got)
	}
	gNoFallback := NewGlossary(nil, []string{"a", "b"})
	if got := gNoFallback.Sim("x", "x"); !almost(got, 1) {
		t.Errorf("nil fallback must use Exact, got %v", got)
	}
}

func TestClamp(t *testing.T) {
	bad := func(a, b string) float64 { return 1.5 }
	if got := Clamp(bad)("x", "y"); !almost(got, 1) {
		t.Errorf("clamp high = %v", got)
	}
	neg := func(a, b string) float64 { return -3 }
	if got := Clamp(neg)("x", "y"); !almost(got, 0) {
		t.Errorf("clamp low = %v", got)
	}
	nan := func(a, b string) float64 { return math.NaN() }
	if got := Clamp(nan)("x", "y"); !almost(got, 0) {
		t.Errorf("clamp NaN = %v", got)
	}
}

// allFuncs enumerates every comparison function for property testing.
func allFuncs() map[string]Func {
	return map[string]Func{
		"exact":     Exact,
		"hamming":   NormalizedHamming,
		"lev":       Levenshtein,
		"damerau":   DamerauLevenshtein,
		"jaro":      Jaro,
		"jw":        JaroWinkler,
		"dice2":     QGramDice(2),
		"jaccard2":  QGramJaccard(2),
		"lcs":       LongestCommonSubstring,
		"prefix":    CommonPrefix,
		"tokjac":    TokenJaccard,
		"tokcos":    TokenCosine,
		"mongelkan": MongeElkan(Jaro),
		"soundex":   Soundex,
	}
}

func TestQuickComparisonFunctionContracts(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	words := func() string {
		n := r.Intn(10)
		b := make([]byte, n)
		for i := range b {
			b[i] = byte('a' + r.Intn(4)) // small alphabet → collisions
		}
		return string(b)
	}
	for name, f := range allFuncs() {
		f := f
		prop := func() bool {
			a, b := words(), words()
			sab, sba := f(a, b), f(b, a)
			if math.Abs(sab-sba) > 1e-9 {
				return false // symmetry
			}
			if sab < 0 || sab > 1+1e-9 {
				return false // range
			}
			if f(a, a) < 1-1e-9 {
				return false // identity
			}
			return true
		}
		if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}
