//go:build race

package strsim

// raceEnabled reports that the race detector is active; the allocation
// tests skip because sync.Pool intentionally drops items under -race.
const raceEnabled = true
