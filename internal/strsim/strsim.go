// Package strsim provides normalized comparison functions for certain
// (non-probabilistic) string values, the building blocks of attribute value
// matching (Sec. III-C of the paper). Every function returns a similarity in
// [0,1] with sim(x,x)=1 and sim symmetric.
//
// The paper's running examples use the normalized Hamming similarity
// (e.g. sim(Tim,Kim)=2/3, sim(machinist,mechanic)=5/9, sim(Jim,Tom)=1/3),
// implemented here as NormalizedHamming.
//
// The edit-distance, Jaro and Hamming kernels are allocation-free in
// steady state: ASCII inputs are copied into pooled byte buffers without a
// []rune conversion, non-ASCII inputs decode into pooled rune buffers, and
// the DP rows come from the same pool (see scratch.go). All functions are
// safe for concurrent use.
package strsim

import (
	"math"
	"strings"
	"unicode/utf8"

	"probdedup/internal/sym"
)

// Func is a normalized comparison function on certain values.
// Implementations must be symmetric, return values in [0,1], and return 1
// for equal inputs.
type Func func(a, b string) float64

// charElem is the element type the kernels are generic over: byte for the
// ASCII fast path, rune for decoded non-ASCII inputs. Each kernel is
// instantiated once per element type, so the hot ASCII path never pays
// for UTF-8 decoding.
type charElem interface{ ~byte | ~rune }

// Exact returns 1 if the strings are identical and 0 otherwise.
func Exact(a, b string) float64 {
	if a == b {
		return 1
	}
	return 0
}

// NormalizedHamming returns the fraction of positions (over the longer
// string's rune length) holding identical runes. Positions beyond the
// shorter string count as mismatches. This is the comparison function used
// in the paper's worked examples.
func NormalizedHamming(a, b string) float64 {
	if isASCII(a) && isASCII(b) {
		// Read-only O(n) scan: index the strings directly, no pool trip.
		la, lb := len(a), len(b)
		if la == 0 && lb == 0 {
			return 1
		}
		matches := 0
		for i := 0; i < la && i < lb; i++ {
			if a[i] == b[i] {
				matches++
			}
		}
		return float64(matches) / float64(max2(la, lb))
	}
	s := getScratch()
	s.ra, s.rb = runesInto(s.ra, a), runesInto(s.rb, b)
	sim := hammingSim(s.ra, s.rb)
	s.put()
	return sim
}

func hammingSim(a, b []rune) float64 {
	la, lb := len(a), len(b)
	if la == 0 && lb == 0 {
		return 1
	}
	matches := 0
	for i := 0; i < la && i < lb; i++ {
		if a[i] == b[i] {
			matches++
		}
	}
	return float64(matches) / float64(max2(la, lb))
}

// Levenshtein returns 1 − editDistance/maxLen, where editDistance counts
// unit-cost insertions, deletions and substitutions.
func Levenshtein(a, b string) float64 {
	if a == b {
		return 1
	}
	s := getScratch()
	var d, n int
	if isASCII(a) && isASCII(b) {
		s.ba, s.bb = bytesInto(s.ba, a), bytesInto(s.bb, b)
		d, n = levenshteinDistance(s.ba, s.bb, s), max2(len(a), len(b))
	} else {
		s.ra, s.rb = runesInto(s.ra, a), runesInto(s.rb, b)
		d, n = levenshteinDistance(s.ra, s.rb, s), max2(len(s.ra), len(s.rb))
	}
	s.put()
	return 1 - float64(d)/float64(n)
}

func levenshteinDistance[E charElem](a, b []E, s *scratch) int {
	la, lb := len(a), len(b)
	if la == 0 {
		return lb
	}
	if lb == 0 {
		return la
	}
	prev := intRow(s.row0, lb+1)
	cur := intRow(s.row1, lb+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= la; i++ {
		cur[0] = i
		ai := a[i-1]
		for j := 1; j <= lb; j++ {
			cost := 1
			if ai == b[j-1] {
				cost = 0
			}
			cur[j] = min3(cur[j-1]+1, prev[j]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	s.row0, s.row1 = prev, cur
	return prev[lb]
}

// LevenshteinWithin reports the unit-cost edit distance of a and b when it
// is at most maxDist. It computes only the 2·maxDist+1 diagonal band of
// the DP matrix and exits as soon as every cell of a row exceeds the
// bound, so rejecting dissimilar strings costs O(maxDist·maxLen) instead
// of O(len(a)·len(b)). The second result reports whether the distance is
// within the bound; when it is false the first result is maxDist+1 (a
// lower bound on the true distance).
func LevenshteinWithin(a, b string, maxDist int) (int, bool) {
	if a == b {
		return 0, maxDist >= 0
	}
	if maxDist < 0 {
		return maxDist + 1, false
	}
	s := getScratch()
	var d int
	var ok bool
	if isASCII(a) && isASCII(b) {
		s.ba, s.bb = bytesInto(s.ba, a), bytesInto(s.bb, b)
		d, ok = bandedDistance(s.ba, s.bb, maxDist, s)
	} else {
		s.ra, s.rb = runesInto(s.ra, a), runesInto(s.rb, b)
		d, ok = bandedDistance(s.ra, s.rb, maxDist, s)
	}
	s.put()
	if !ok {
		d = maxDist + 1
	}
	return d, ok
}

// bandedDistance runs the Levenshtein DP restricted to the diagonal band
// |i−j| ≤ k. Cells outside the band are ≥ k+1 by construction, so the
// band plus a one-cell sentinel on each side computes the exact distance
// whenever it is ≤ k.
func bandedDistance[E charElem](a, b []E, k int, s *scratch) (int, bool) {
	la, lb := len(a), len(b)
	if la-lb > k || lb-la > k {
		return k + 1, false
	}
	if la == 0 || lb == 0 {
		return la + lb, true // within k by the length check
	}
	prev := intRow(s.row0, lb+1)
	cur := intRow(s.row1, lb+1)
	hi0 := k
	if hi0 > lb {
		hi0 = lb
	}
	for j := 0; j <= hi0; j++ {
		prev[j] = j
	}
	if hi0+1 <= lb {
		prev[hi0+1] = k + 1 // sentinel one past the band
	}
	for i := 1; i <= la; i++ {
		lo := i - k
		if lo < 1 {
			lo = 1
		}
		hi := i + k
		if hi > lb {
			hi = lb
		}
		if lo == 1 {
			cur[0] = i
		} else {
			cur[lo-1] = k + 1 // left sentinel: outside the band
		}
		rowMin := k + 1
		ai := a[i-1]
		for j := lo; j <= hi; j++ {
			cost := 1
			if ai == b[j-1] {
				cost = 0
			}
			v := min3(cur[j-1]+1, prev[j]+1, prev[j-1]+cost)
			cur[j] = v
			if v < rowMin {
				rowMin = v
			}
		}
		if rowMin > k {
			s.row0, s.row1 = prev, cur
			return k + 1, false
		}
		if hi+1 <= lb {
			cur[hi+1] = k + 1 // right sentinel for the next row's prev[j]
		}
		prev, cur = cur, prev
	}
	s.row0, s.row1 = prev, cur
	d := prev[lb]
	return d, d <= k
}

// BandedLevenshtein returns a thresholded variant of Levenshtein for
// decision models that only act on similarities ≥ minSim: pairs whose
// true Levenshtein similarity is at least minSim get exactly that
// similarity, while more dissimilar pairs short-circuit to 0 through the
// banded early-exit distance (LevenshteinWithin), skipping most of the DP
// matrix. The collapse to 0 below minSim makes the function cheaper but
// non-linear; use it only when everything below minSim is classified
// identically anyway (e.g. minSim ≤ the model's Tλ).
//
// Kept out of the inliner: the bound registry (bounds.go) keys
// comparison functions by code pointer, and inlining a constructor
// clones its closure literal into every caller — each clone gets its
// own code symbol and the registered bound would never be found again.
//
//go:noinline
func BandedLevenshtein(minSim float64) Func {
	if minSim < 0 {
		minSim = 0
	}
	if minSim > 1 {
		minSim = 1
	}
	return func(a, b string) float64 {
		if a == b {
			return 1
		}
		n := RuneLen(a)
		if m := RuneLen(b); m > n {
			n = m
		}
		// sim ≥ minSim ⟺ d ≤ (1−minSim)·n.
		k := int((1 - minSim) * float64(n) * (1 + 1e-12))
		d, ok := LevenshteinWithin(a, b, k)
		if !ok {
			return 0
		}
		return 1 - float64(d)/float64(n)
	}
}

// DamerauLevenshtein returns 1 − distance/maxLen where the distance
// additionally allows transposition of two adjacent runes (the
// optimal-string-alignment variant).
func DamerauLevenshtein(a, b string) float64 {
	if a == b {
		return 1
	}
	s := getScratch()
	var d, n int
	if isASCII(a) && isASCII(b) {
		s.ba, s.bb = bytesInto(s.ba, a), bytesInto(s.bb, b)
		d, n = osaDistance(s.ba, s.bb, s), max2(len(a), len(b))
	} else {
		s.ra, s.rb = runesInto(s.ra, a), runesInto(s.rb, b)
		d, n = osaDistance(s.ra, s.rb, s), max2(len(s.ra), len(s.rb))
	}
	s.put()
	return 1 - float64(d)/float64(n)
}

// osaDistance keeps only the three DP rows the OSA recurrence can reach
// (i−2, i−1, i) instead of the full matrix.
func osaDistance[E charElem](a, b []E, s *scratch) int {
	la, lb := len(a), len(b)
	if la == 0 {
		return lb
	}
	if lb == 0 {
		return la
	}
	prev2 := intRow(s.row0, lb+1)
	prev := intRow(s.row1, lb+1)
	cur := intRow(s.row2, lb+1)
	for j := 0; j <= lb; j++ {
		prev[j] = j
	}
	for i := 1; i <= la; i++ {
		cur[0] = i
		ai := a[i-1]
		for j := 1; j <= lb; j++ {
			cost := 1
			if ai == b[j-1] {
				cost = 0
			}
			v := min3(cur[j-1]+1, prev[j]+1, prev[j-1]+cost)
			if i > 1 && j > 1 && ai == b[j-2] && a[i-2] == b[j-1] {
				if t := prev2[j-2] + 1; t < v {
					v = t
				}
			}
			cur[j] = v
		}
		prev2, prev, cur = prev, cur, prev2
	}
	s.row0, s.row1, s.row2 = prev2, prev, cur
	return prev[lb]
}

// Jaro returns the Jaro similarity.
func Jaro(a, b string) float64 {
	s := getScratch()
	var sim float64
	if isASCII(a) && isASCII(b) {
		s.ba, s.bb = bytesInto(s.ba, a), bytesInto(s.bb, b)
		sim = jaroSim(s.ba, s.bb, s)
	} else {
		s.ra, s.rb = runesInto(s.ra, a), runesInto(s.rb, b)
		sim = jaroSim(s.ra, s.rb, s)
	}
	s.put()
	return sim
}

func jaroSim[E charElem](a, b []E, s *scratch) float64 {
	la, lb := len(a), len(b)
	if la == 0 && lb == 0 {
		return 1
	}
	if la == 0 || lb == 0 {
		return 0
	}
	window := max2(la, lb)/2 - 1
	if window < 0 {
		window = 0
	}
	matchedA := boolRow(s.ma, la)
	matchedB := boolRow(s.mb, lb)
	s.ma, s.mb = matchedA, matchedB
	matches := 0
	for i := 0; i < la; i++ {
		lo := i - window
		if lo < 0 {
			lo = 0
		}
		hi := i + window
		if hi >= lb {
			hi = lb - 1
		}
		for j := lo; j <= hi; j++ {
			if !matchedB[j] && a[i] == b[j] {
				matchedA[i] = true
				matchedB[j] = true
				matches++
				break
			}
		}
	}
	if matches == 0 {
		return 0
	}
	transpositions := 0
	j := 0
	for i := 0; i < la; i++ {
		if !matchedA[i] {
			continue
		}
		for !matchedB[j] {
			j++
		}
		if a[i] != b[j] {
			transpositions++
		}
		j++
	}
	m := float64(matches)
	t := float64(transpositions) / 2
	return (m/float64(la) + m/float64(lb) + (m-t)/m) / 3
}

// JaroWinkler returns the Jaro–Winkler similarity with the standard prefix
// scale 0.1 over at most 4 common leading runes.
func JaroWinkler(a, b string) float64 {
	j := Jaro(a, b)
	prefix := 0
	for prefix < 4 {
		ra, na := utf8.DecodeRuneInString(a)
		rb, nb := utf8.DecodeRuneInString(b)
		if na == 0 || nb == 0 || ra != rb {
			break
		}
		prefix++
		a, b = a[na:], b[nb:]
	}
	s := j + float64(prefix)*0.1*(1-j)
	if s > 1 {
		return 1
	}
	return s
}

// QGramDice returns a Func computing the Dice coefficient over q-gram
// multisets: 2·|common| / (|Qa|+|Qb|). Strings shorter than q are padded on
// both sides with q−1 occurrences of '#' so single-rune strings still
// produce grams.
// QGramDice is kept out of the inliner for the same bound-registry
// reason as BandedLevenshtein.
//
//go:noinline
func QGramDice(q int) Func {
	if q >= 1 && q <= sym.MaxExactQ {
		// The packed encoding is injective for these gram sizes, so the
		// sorted-merge kernel is bit-identical to the string kernel and
		// avoids per-gram string allocations.
		return func(a, b string) float64 {
			return sym.Dice(sym.PackedQGrams(a, q), sym.PackedQGrams(b, q))
		}
	}
	return func(a, b string) float64 {
		ga, gb := qgrams(a, q), qgrams(b, q)
		if len(ga) == 0 && len(gb) == 0 {
			return 1
		}
		if len(ga) == 0 || len(gb) == 0 {
			return 0
		}
		common := multisetIntersection(ga, gb)
		return 2 * float64(common) / float64(len(ga)+len(gb))
	}
}

// QGramJaccard returns a Func computing the Jaccard coefficient over q-gram
// multisets: |common| / (|Qa|+|Qb|−|common|).
// QGramJaccard is kept out of the inliner for the same bound-registry
// reason as BandedLevenshtein.
//
//go:noinline
func QGramJaccard(q int) Func {
	if q >= 1 && q <= sym.MaxExactQ {
		return func(a, b string) float64 {
			return sym.Jaccard(sym.PackedQGrams(a, q), sym.PackedQGrams(b, q))
		}
	}
	return func(a, b string) float64 {
		ga, gb := qgrams(a, q), qgrams(b, q)
		if len(ga) == 0 && len(gb) == 0 {
			return 1
		}
		if len(ga) == 0 || len(gb) == 0 {
			return 0
		}
		common := multisetIntersection(ga, gb)
		return float64(common) / float64(len(ga)+len(gb)-common)
	}
}

func qgrams(s string, q int) []string {
	if q < 1 {
		q = 1
	}
	if s == "" {
		return nil
	}
	pad := strings.Repeat("#", q-1)
	r := []rune(pad + s + pad)
	if len(r) < q {
		return nil
	}
	out := make([]string, 0, len(r)-q+1)
	for i := 0; i+q <= len(r); i++ {
		out = append(out, string(r[i:i+q]))
	}
	return out
}

func multisetIntersection(a, b []string) int {
	counts := make(map[string]int, len(a))
	for _, g := range a {
		counts[g]++
	}
	common := 0
	for _, g := range b {
		if counts[g] > 0 {
			counts[g]--
			common++
		}
	}
	return common
}

// LongestCommonSubstring returns |lcs(a,b)| / maxLen, the length of the
// longest contiguous shared substring normalized by the longer string.
func LongestCommonSubstring(a, b string) float64 {
	s := getScratch()
	var sim float64
	if isASCII(a) && isASCII(b) {
		s.ba, s.bb = bytesInto(s.ba, a), bytesInto(s.bb, b)
		sim = lcsSim(s.ba, s.bb, s)
	} else {
		s.ra, s.rb = runesInto(s.ra, a), runesInto(s.rb, b)
		sim = lcsSim(s.ra, s.rb, s)
	}
	s.put()
	return sim
}

func lcsSim[E charElem](a, b []E, s *scratch) float64 {
	la, lb := len(a), len(b)
	if la == 0 && lb == 0 {
		return 1
	}
	if la == 0 || lb == 0 {
		return 0
	}
	prev := intRow(s.row0, lb+1)
	cur := intRow(s.row1, lb+1)
	for j := range prev {
		prev[j] = 0
	}
	best := 0
	for i := 1; i <= la; i++ {
		cur[0] = 0
		ai := a[i-1]
		for j := 1; j <= lb; j++ {
			if ai == b[j-1] {
				cur[j] = prev[j-1] + 1
				if cur[j] > best {
					best = cur[j]
				}
			} else {
				cur[j] = 0
			}
		}
		prev, cur = cur, prev
	}
	s.row0, s.row1 = prev, cur
	return float64(best) / float64(max2(la, lb))
}

// CommonPrefix returns |commonPrefix| / maxLen.
func CommonPrefix(a, b string) float64 {
	if isASCII(a) && isASCII(b) {
		// Read-only O(n) scan: index the strings directly, no pool trip.
		la, lb := len(a), len(b)
		if la == 0 && lb == 0 {
			return 1
		}
		p := 0
		for p < la && p < lb && a[p] == b[p] {
			p++
		}
		return float64(p) / float64(max2(la, lb))
	}
	s := getScratch()
	s.ra, s.rb = runesInto(s.ra, a), runesInto(s.rb, b)
	sim := prefixSim(s.ra, s.rb)
	s.put()
	return sim
}

func prefixSim(a, b []rune) float64 {
	la, lb := len(a), len(b)
	if la == 0 && lb == 0 {
		return 1
	}
	p := 0
	for p < la && p < lb && a[p] == b[p] {
		p++
	}
	return float64(p) / float64(max2(la, lb))
}

// Clamp wraps f so results are forced into [0,1] and NaN becomes 0. Useful
// when composing third-party comparison functions.
func Clamp(f Func) Func {
	return func(a, b string) float64 {
		v := f(a, b)
		if math.IsNaN(v) || v < 0 {
			return 0
		}
		if v > 1 {
			return 1
		}
		return v
	}
}

// RuneLen reports the rune length of s; exposed for key specs that cut
// prefixes of uncertain values.
func RuneLen(s string) int { return utf8.RuneCountInString(s) }

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}

func max2(a, b int) int {
	if a > b {
		return a
	}
	return b
}
