// Package strsim provides normalized comparison functions for certain
// (non-probabilistic) string values, the building blocks of attribute value
// matching (Sec. III-C of the paper). Every function returns a similarity in
// [0,1] with sim(x,x)=1 and sim symmetric.
//
// The paper's running examples use the normalized Hamming similarity
// (e.g. sim(Tim,Kim)=2/3, sim(machinist,mechanic)=5/9, sim(Jim,Tom)=1/3),
// implemented here as NormalizedHamming.
package strsim

import (
	"math"
	"strings"
	"unicode/utf8"
)

// Func is a normalized comparison function on certain values.
// Implementations must be symmetric, return values in [0,1], and return 1
// for equal inputs.
type Func func(a, b string) float64

// Exact returns 1 if the strings are identical and 0 otherwise.
func Exact(a, b string) float64 {
	if a == b {
		return 1
	}
	return 0
}

// NormalizedHamming returns the fraction of positions (over the longer
// string's rune length) holding identical runes. Positions beyond the
// shorter string count as mismatches. This is the comparison function used
// in the paper's worked examples.
func NormalizedHamming(a, b string) float64 {
	ra, rb := []rune(a), []rune(b)
	if len(ra) == 0 && len(rb) == 0 {
		return 1
	}
	n := len(ra)
	if len(rb) > n {
		n = len(rb)
	}
	matches := 0
	for i := 0; i < len(ra) && i < len(rb); i++ {
		if ra[i] == rb[i] {
			matches++
		}
	}
	return float64(matches) / float64(n)
}

// Levenshtein returns 1 − editDistance/maxLen, where editDistance counts
// unit-cost insertions, deletions and substitutions.
func Levenshtein(a, b string) float64 {
	ra, rb := []rune(a), []rune(b)
	if len(ra) == 0 && len(rb) == 0 {
		return 1
	}
	d := levenshteinDistance(ra, rb)
	n := len(ra)
	if len(rb) > n {
		n = len(rb)
	}
	return 1 - float64(d)/float64(n)
}

func levenshteinDistance(a, b []rune) int {
	if len(a) == 0 {
		return len(b)
	}
	if len(b) == 0 {
		return len(a)
	}
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		for j := 1; j <= len(b); j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			cur[j] = min3(cur[j-1]+1, prev[j]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}

// DamerauLevenshtein returns 1 − distance/maxLen where the distance
// additionally allows transposition of two adjacent runes (the
// optimal-string-alignment variant).
func DamerauLevenshtein(a, b string) float64 {
	ra, rb := []rune(a), []rune(b)
	if len(ra) == 0 && len(rb) == 0 {
		return 1
	}
	d := osaDistance(ra, rb)
	n := len(ra)
	if len(rb) > n {
		n = len(rb)
	}
	return 1 - float64(d)/float64(n)
}

func osaDistance(a, b []rune) int {
	la, lb := len(a), len(b)
	if la == 0 {
		return lb
	}
	if lb == 0 {
		return la
	}
	rows := make([][]int, la+1)
	for i := range rows {
		rows[i] = make([]int, lb+1)
		rows[i][0] = i
	}
	for j := 0; j <= lb; j++ {
		rows[0][j] = j
	}
	for i := 1; i <= la; i++ {
		for j := 1; j <= lb; j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			rows[i][j] = min3(rows[i][j-1]+1, rows[i-1][j]+1, rows[i-1][j-1]+cost)
			if i > 1 && j > 1 && a[i-1] == b[j-2] && a[i-2] == b[j-1] {
				if t := rows[i-2][j-2] + 1; t < rows[i][j] {
					rows[i][j] = t
				}
			}
		}
	}
	return rows[la][lb]
}

// Jaro returns the Jaro similarity.
func Jaro(a, b string) float64 {
	ra, rb := []rune(a), []rune(b)
	la, lb := len(ra), len(rb)
	if la == 0 && lb == 0 {
		return 1
	}
	if la == 0 || lb == 0 {
		return 0
	}
	window := max2(la, lb)/2 - 1
	if window < 0 {
		window = 0
	}
	matchedA := make([]bool, la)
	matchedB := make([]bool, lb)
	matches := 0
	for i := 0; i < la; i++ {
		lo := i - window
		if lo < 0 {
			lo = 0
		}
		hi := i + window
		if hi >= lb {
			hi = lb - 1
		}
		for j := lo; j <= hi; j++ {
			if !matchedB[j] && ra[i] == rb[j] {
				matchedA[i] = true
				matchedB[j] = true
				matches++
				break
			}
		}
	}
	if matches == 0 {
		return 0
	}
	transpositions := 0
	j := 0
	for i := 0; i < la; i++ {
		if !matchedA[i] {
			continue
		}
		for !matchedB[j] {
			j++
		}
		if ra[i] != rb[j] {
			transpositions++
		}
		j++
	}
	m := float64(matches)
	t := float64(transpositions) / 2
	return (m/float64(la) + m/float64(lb) + (m-t)/m) / 3
}

// JaroWinkler returns the Jaro–Winkler similarity with the standard prefix
// scale 0.1 over at most 4 common leading runes.
func JaroWinkler(a, b string) float64 {
	j := Jaro(a, b)
	prefix := 0
	ra, rb := []rune(a), []rune(b)
	for prefix < len(ra) && prefix < len(rb) && prefix < 4 && ra[prefix] == rb[prefix] {
		prefix++
	}
	s := j + float64(prefix)*0.1*(1-j)
	if s > 1 {
		return 1
	}
	return s
}

// QGramDice returns a Func computing the Dice coefficient over q-gram
// multisets: 2·|common| / (|Qa|+|Qb|). Strings shorter than q are padded on
// both sides with q−1 occurrences of '#' so single-rune strings still
// produce grams.
func QGramDice(q int) Func {
	return func(a, b string) float64 {
		ga, gb := qgrams(a, q), qgrams(b, q)
		if len(ga) == 0 && len(gb) == 0 {
			return 1
		}
		if len(ga) == 0 || len(gb) == 0 {
			return 0
		}
		common := multisetIntersection(ga, gb)
		return 2 * float64(common) / float64(len(ga)+len(gb))
	}
}

// QGramJaccard returns a Func computing the Jaccard coefficient over q-gram
// multisets: |common| / (|Qa|+|Qb|−|common|).
func QGramJaccard(q int) Func {
	return func(a, b string) float64 {
		ga, gb := qgrams(a, q), qgrams(b, q)
		if len(ga) == 0 && len(gb) == 0 {
			return 1
		}
		if len(ga) == 0 || len(gb) == 0 {
			return 0
		}
		common := multisetIntersection(ga, gb)
		return float64(common) / float64(len(ga)+len(gb)-common)
	}
}

func qgrams(s string, q int) []string {
	if q < 1 {
		q = 1
	}
	if s == "" {
		return nil
	}
	pad := strings.Repeat("#", q-1)
	r := []rune(pad + s + pad)
	if len(r) < q {
		return nil
	}
	out := make([]string, 0, len(r)-q+1)
	for i := 0; i+q <= len(r); i++ {
		out = append(out, string(r[i:i+q]))
	}
	return out
}

func multisetIntersection(a, b []string) int {
	counts := make(map[string]int, len(a))
	for _, g := range a {
		counts[g]++
	}
	common := 0
	for _, g := range b {
		if counts[g] > 0 {
			counts[g]--
			common++
		}
	}
	return common
}

// LongestCommonSubstring returns |lcs(a,b)| / maxLen, the length of the
// longest contiguous shared substring normalized by the longer string.
func LongestCommonSubstring(a, b string) float64 {
	ra, rb := []rune(a), []rune(b)
	if len(ra) == 0 && len(rb) == 0 {
		return 1
	}
	if len(ra) == 0 || len(rb) == 0 {
		return 0
	}
	best := 0
	prev := make([]int, len(rb)+1)
	cur := make([]int, len(rb)+1)
	for i := 1; i <= len(ra); i++ {
		for j := 1; j <= len(rb); j++ {
			if ra[i-1] == rb[j-1] {
				cur[j] = prev[j-1] + 1
				if cur[j] > best {
					best = cur[j]
				}
			} else {
				cur[j] = 0
			}
		}
		prev, cur = cur, prev
		for j := range cur {
			cur[j] = 0
		}
	}
	n := max2(len(ra), len(rb))
	return float64(best) / float64(n)
}

// CommonPrefix returns |commonPrefix| / maxLen.
func CommonPrefix(a, b string) float64 {
	ra, rb := []rune(a), []rune(b)
	if len(ra) == 0 && len(rb) == 0 {
		return 1
	}
	n := max2(len(ra), len(rb))
	p := 0
	for p < len(ra) && p < len(rb) && ra[p] == rb[p] {
		p++
	}
	return float64(p) / float64(n)
}

// Clamp wraps f so results are forced into [0,1] and NaN becomes 0. Useful
// when composing third-party comparison functions.
func Clamp(f Func) Func {
	return func(a, b string) float64 {
		v := f(a, b)
		if math.IsNaN(v) || v < 0 {
			return 0
		}
		if v > 1 {
			return 1
		}
		return v
	}
}

// RuneLen reports the rune length of s; exposed for key specs that cut
// prefixes of uncertain values.
func RuneLen(s string) int { return utf8.RuneCountInString(s) }

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}

func max2(a, b int) int {
	if a > b {
		return a
	}
	return b
}
