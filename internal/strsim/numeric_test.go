package strsim

import (
	"math"
	"testing"
)

func TestNumericAbs(t *testing.T) {
	f := NumericAbs(10)
	cases := []struct {
		a, b string
		want float64
	}{
		{"5", "5", 1},
		{"5", "10", 0.5},
		{"0", "10", 0},
		{"0", "25", 0},
		{"-5", "5", 0},
		{"1.5", "2.5", 0.9},
		{"abc", "abc", 1}, // fallback Exact
		{"abc", "abd", 0}, // fallback Exact
		{"5", "abc", 0},   // mixed → Exact
	}
	for _, c := range cases {
		if got := f(c.a, c.b); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("NumericAbs(10)(%q,%q) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
	// Bad scale falls back to 1.
	g := NumericAbs(-3)
	if got := g("1", "1.5"); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("bad scale handling: %v", got)
	}
}

func TestNumericRelative(t *testing.T) {
	cases := []struct {
		a, b string
		want float64
	}{
		{"100", "110", 1 - 10.0/110},
		{"0", "0", 1},
		{"0", "5", 0},
		{"-10", "10", 0},
		{"x", "x", 1},
	}
	for _, c := range cases {
		if got := NumericRelative(c.a, c.b); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("NumericRelative(%q,%q) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestNumericContracts(t *testing.T) {
	for _, f := range []Func{NumericAbs(7), NumericRelative} {
		for _, pair := range [][2]string{{"3", "9"}, {"1.5", "-2"}, {"a", "3"}} {
			if math.Abs(f(pair[0], pair[1])-f(pair[1], pair[0])) > 1e-9 {
				t.Errorf("asymmetric on %v", pair)
			}
			s := f(pair[0], pair[1])
			if s < 0 || s > 1 {
				t.Errorf("out of range on %v: %v", pair, s)
			}
			if f(pair[0], pair[0]) != 1 {
				t.Errorf("identity broken for %q", pair[0])
			}
		}
	}
}
