package strsim

import "testing"

var benchPairs = [][2]string{
	{"machinist", "mechanist"},
	{"Tim", "Kim"},
	{"confectioner", "confectionist"},
	{"Johannes Albrecht", "Johann Albrecht"},
}

func benchFunc(b *testing.B, f Func) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, p := range benchPairs {
			_ = f(p[0], p[1])
		}
	}
}

func BenchmarkNormalizedHamming(b *testing.B)  { benchFunc(b, NormalizedHamming) }
func BenchmarkLevenshtein(b *testing.B)        { benchFunc(b, Levenshtein) }
func BenchmarkBandedLevenshtein(b *testing.B)  { benchFunc(b, BandedLevenshtein(0.8)) }
func BenchmarkDamerauLevenshtein(b *testing.B) { benchFunc(b, DamerauLevenshtein) }
func BenchmarkJaro(b *testing.B)               { benchFunc(b, Jaro) }
func BenchmarkJaroWinkler(b *testing.B)        { benchFunc(b, JaroWinkler) }
func BenchmarkQGramDice2(b *testing.B)         { benchFunc(b, QGramDice(2)) }
func BenchmarkLCS(b *testing.B)                { benchFunc(b, LongestCommonSubstring) }
func BenchmarkMongeElkanJaro(b *testing.B)     { benchFunc(b, MongeElkan(Jaro)) }
func BenchmarkSoundex(b *testing.B)            { benchFunc(b, Soundex) }
