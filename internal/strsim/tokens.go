package strsim

import (
	"math"
	"strings"
)

// TokenJaccard returns the Jaccard coefficient over whitespace-separated
// token sets.
func TokenJaccard(a, b string) float64 {
	ta, tb := tokenSet(a), tokenSet(b)
	if len(ta) == 0 && len(tb) == 0 {
		return 1
	}
	if len(ta) == 0 || len(tb) == 0 {
		return 0
	}
	inter := 0
	for tok := range ta {
		if tb[tok] {
			inter++
		}
	}
	return float64(inter) / float64(len(ta)+len(tb)-inter)
}

// TokenCosine returns the cosine similarity over whitespace-separated token
// count vectors.
func TokenCosine(a, b string) float64 {
	ca, cb := tokenCounts(a), tokenCounts(b)
	if len(ca) == 0 && len(cb) == 0 {
		return 1
	}
	if len(ca) == 0 || len(cb) == 0 {
		return 0
	}
	dot := 0.0
	for tok, na := range ca {
		if nb, ok := cb[tok]; ok {
			dot += float64(na * nb)
		}
	}
	return dot / (l2(ca) * l2(cb))
}

// MongeElkan returns a Func computing the Monge–Elkan similarity: the mean,
// over tokens of the first string, of the best inner similarity against any
// token of the second string, symmetrized by averaging both directions.
func MongeElkan(inner Func) Func {
	oneWay := func(a, b string) float64 {
		ta, tb := strings.Fields(a), strings.Fields(b)
		if len(ta) == 0 && len(tb) == 0 {
			return 1
		}
		if len(ta) == 0 || len(tb) == 0 {
			return 0
		}
		sum := 0.0
		for _, x := range ta {
			best := 0.0
			for _, y := range tb {
				if s := inner(x, y); s > best {
					best = s
				}
			}
			sum += best
		}
		return sum / float64(len(ta))
	}
	return func(a, b string) float64 {
		return (oneWay(a, b) + oneWay(b, a)) / 2
	}
}

func tokenSet(s string) map[string]bool {
	out := make(map[string]bool)
	for _, tok := range strings.Fields(s) {
		out[tok] = true
	}
	return out
}

func tokenCounts(s string) map[string]int {
	out := make(map[string]int)
	for _, tok := range strings.Fields(s) {
		out[tok]++
	}
	return out
}

func l2(c map[string]int) float64 {
	sum := 0.0
	for _, n := range c {
		sum += float64(n * n)
	}
	return math.Sqrt(sum)
}
