package strsim

import (
	"reflect"

	"probdedup/internal/sym"
)

// This file gives the candidate pre-filter (internal/ssr) sound
// similarity upper bounds: for each comparison function it can bound,
// BoundFor returns a SimBound deriving from two values' precomputed
// symbol statistics (rune length, padded q-gram multiset, gram
// signature — see internal/sym) a value provably ≥ the function's
// result on the underlying strings. The bounds are the classic
// length and q-gram count filters of approximate string joins
// (PPJoin-family): an edit operation changes at most q padded grams
// (q+1 for a transposition), so gram-multiset overlap lower-bounds
// edit similarity from above. Hashed grams (q > sym.MaxExactQ) can
// only merge distinct grams, over-counting overlap — the bounds stay
// sound, they just reject less.

// SimBound bounds a comparison function from symbol statistics: it
// must return a value ≥ f(a, b) for the strings the two Stats were
// computed from. Bounds are consulted only for interned values; a
// SimBound must return 1 (no information) when either Stats is zero.
type SimBound func(a, b sym.Stats) float64

// boundRegistry maps a Func's code pointer to its bound. Populated
// only in init, read-only afterwards, hence safe for concurrent use.
var boundRegistry = map[uintptr]SimBound{}

func funcPtr(f Func) uintptr { return reflect.ValueOf(f).Pointer() }

// RegisterBound associates a sound upper bound with a comparison
// function, keyed by the function's code pointer. Closures returned by
// one constructor share a single code pointer regardless of the
// captured parameters, so a registered bound MUST be sound for every
// instance the constructor can return (the built-in registrations
// are). Not safe to call concurrently with BoundFor; register at init
// time.
func RegisterBound(f Func, b SimBound) { boundRegistry[funcPtr(f)] = b }

// BoundFor returns the registered upper bound of f. Callers must treat
// a missing bound as "no information" (upper bound 1).
func BoundFor(f Func) (SimBound, bool) {
	b, ok := boundRegistry[funcPtr(f)]
	return b, ok
}

// guard wraps a bound so zero (un-interned) Stats yield 1.
func guard(b SimBound) SimBound {
	return func(x, y sym.Stats) float64 {
		if x.Sym == sym.NoSym || y.Sym == sym.NoSym {
			return 1
		}
		return b(x, y)
	}
}

func init() {
	RegisterBound(Exact, guard(boundExact))
	RegisterBound(NormalizedHamming, guard(boundMinOverMax))
	RegisterBound(Levenshtein, guard(boundLevenshtein))
	// Every BandedLevenshtein closure returns either the exact
	// Levenshtein similarity or 0, so the Levenshtein bound is sound
	// for all instances (they share one code pointer).
	RegisterBound(BandedLevenshtein(0), guard(boundLevenshtein))
	RegisterBound(DamerauLevenshtein, guard(boundOSA))
	RegisterBound(Jaro, guard(boundJaro))
	RegisterBound(JaroWinkler, guard(boundJaroWinkler))
	RegisterBound(CommonPrefix, guard(boundCommonPrefix))
	RegisterBound(LongestCommonSubstring, guard(boundLCS))
	// The q-gram closures capture their gram size, which the shared
	// code pointer cannot expose, so only the q-independent envelope is
	// sound: 1 in general, 0 when exactly one side is empty. Both the
	// packed (q ≤ sym.MaxExactQ) and the string-kernel closure families
	// are registered.
	RegisterBound(QGramDice(2), guard(boundEmptyOrOne))
	RegisterBound(QGramDice(sym.MaxExactQ+1), guard(boundEmptyOrOne))
	RegisterBound(QGramJaccard(2), guard(boundEmptyOrOne))
	RegisterBound(QGramJaccard(sym.MaxExactQ+1), guard(boundEmptyOrOne))
}

// boundExact: distinct symbols are distinct strings, so Exact is 0.
func boundExact(a, b sym.Stats) float64 {
	if a.Sym == b.Sym {
		return 1
	}
	return 0
}

// boundMinOverMax bounds any function whose value is at most
// matchingPositions/maxLen with matchingPositions ≤ minLen
// (NormalizedHamming, and the fallback inside other bounds).
func boundMinOverMax(a, b sym.Stats) float64 {
	mn, mx := minMaxLen(a, b)
	if mx == 0 {
		return 1 // both empty: equal strings
	}
	if mn == 0 {
		return 0
	}
	return float64(mn) / float64(mx)
}

// gramOverlap returns the gram-multiset overlap of two stats and
// whether gram information is usable (same positive gram size on both
// sides). The signature pre-check skips the merge when the overlap is
// provably empty.
func gramOverlap(a, b sym.Stats) (int, bool) {
	if a.Q <= 0 || a.Q != b.Q {
		return 0, false
	}
	if a.Sig&b.Sig == 0 {
		return 0, true
	}
	return sym.Overlap(a.Grams, b.Grams), true
}

// editLB lower-bounds the edit distance of the two strings: the length
// filter |la−lb|, strengthened by the count filter ⌈(Gmax−overlap)/perOp⌉
// when gram statistics are available. perOp is the maximum number of
// padded grams one edit operation can change: q for unit edits, q+1
// when adjacent transposition is also allowed.
func editLB(a, b sym.Stats, transpositions bool) int {
	lb := a.Len - b.Len
	if lb < 0 {
		lb = -lb
	}
	overlap, ok := gramOverlap(a, b)
	if !ok {
		return lb
	}
	gmax := len(a.Grams)
	if len(b.Grams) > gmax {
		gmax = len(b.Grams)
	}
	perOp := a.Q
	if transpositions {
		perOp++
	}
	if diff := gmax - overlap; diff > 0 {
		if g := (diff + perOp - 1) / perOp; g > lb {
			return g
		}
	}
	return lb
}

// boundEditSim turns an edit-distance lower bound into a similarity
// upper bound 1 − edLB/maxLen.
func boundEditSim(a, b sym.Stats, transpositions bool) float64 {
	_, mx := minMaxLen(a, b)
	if mx == 0 {
		return 1 // both empty: equal strings
	}
	ub := 1 - float64(editLB(a, b, transpositions))/float64(mx)
	if ub < 0 {
		return 0
	}
	return ub
}

func boundLevenshtein(a, b sym.Stats) float64 { return boundEditSim(a, b, false) }

func boundOSA(a, b sym.Stats) float64 { return boundEditSim(a, b, true) }

// fpSlack absorbs floating-point drift between a bound and the kernel
// it dominates: the Jaro family sums three individually rounded terms,
// so the mathematically equal bound can land a few ulps below the
// kernel's value. Only bounds built from multi-term sums need it;
// the single-division bounds are monotone in their integer numerators
// and never drift.
const fpSlack = 1e-12

// boundJaro: Jaro matches at most minLen runes, so
// m/la + m/lb ≤ 1 + min/max and (m−t)/m ≤ 1.
func boundJaro(a, b sym.Stats) float64 {
	mn, mx := minMaxLen(a, b)
	if mx == 0 {
		return 1
	}
	if mn == 0 {
		return 0
	}
	ub := (2+float64(mn)/float64(mx))/3 + fpSlack
	if ub > 1 {
		return 1
	}
	return ub
}

// boundJaroWinkler: jw = j + p·0.1·(1−j) is increasing in both j and
// the common-prefix length p, with p ≤ min(4, minLen) — and p = 0 when
// the gram overlap is provably empty, because the first padded gram of
// each string determines its first rune.
func boundJaroWinkler(a, b sym.Stats) float64 {
	mn, mx := minMaxLen(a, b)
	if mx == 0 {
		return 1
	}
	if mn == 0 {
		return 0
	}
	j := (2 + float64(mn)/float64(mx)) / 3
	pmax := 4
	if mn < pmax {
		pmax = mn
	}
	if overlap, ok := gramOverlap(a, b); ok && overlap == 0 {
		pmax = 0
	}
	ub := j + float64(pmax)*0.1*(1-j) + fpSlack
	if ub > 1 {
		return 1
	}
	return ub
}

// boundCommonPrefix: the common prefix is at most minLen runes, and
// empty when the gram overlap is provably empty (shared first rune ⇒
// shared first padded gram).
func boundCommonPrefix(a, b sym.Stats) float64 {
	mn, mx := minMaxLen(a, b)
	if mx == 0 {
		return 1
	}
	if mn == 0 {
		return 0
	}
	if overlap, ok := gramOverlap(a, b); ok && overlap == 0 {
		return 0
	}
	return float64(mn) / float64(mx)
}

// boundLCS: a common substring of length L ≥ q contributes L−q+1
// shared interior grams, so L ≤ overlap+q−1; without usable grams the
// substring is at most minLen.
func boundLCS(a, b sym.Stats) float64 {
	mn, mx := minMaxLen(a, b)
	if mx == 0 {
		return 1
	}
	if mn == 0 {
		return 0
	}
	lcs := mn
	if overlap, ok := gramOverlap(a, b); ok {
		if lim := overlap + a.Q - 1; lim < lcs {
			lcs = lim
		}
	}
	if lcs < 0 {
		lcs = 0
	}
	return float64(lcs) / float64(mx)
}

// boundEmptyOrOne is the q-independent envelope of the q-gram
// coefficients: 1 in general (both empty compare as 1), 0 when exactly
// one side is empty.
func boundEmptyOrOne(a, b sym.Stats) float64 {
	mn, mx := minMaxLen(a, b)
	if mn == 0 && mx > 0 {
		return 0
	}
	return 1
}

func minMaxLen(a, b sym.Stats) (int, int) {
	if a.Len < b.Len {
		return a.Len, b.Len
	}
	return b.Len, a.Len
}
