package ssr

import (
	"reflect"
	"strings"
	"testing"

	"probdedup/internal/pdb"
	"probdedup/internal/verify"
)

// epochStateFixture drives a cluster index through inserts, removals
// and reseals, and returns it with its resident tuple map.
func epochStateFixture(t *testing.T, nInsert int) (BlockingCluster, EpochIndex, map[string]*pdb.XTuple, *pdb.XRelation) {
	t.Helper()
	u := shuffledUnion(40, 31)
	m := clusterTestMethod(t, u.Schema)
	idx := epochIndexOf(t, m)
	resident := map[string]*pdb.XTuple{}
	on := func(PairDelta) bool { return true }
	for i, x := range u.Tuples[:nInsert] {
		idx.Insert(x, on)
		resident[x.ID] = x
		if i%9 == 8 {
			idx.Reseal(on)
		}
		if i%7 == 6 {
			idx.Remove(x.ID, on)
			delete(resident, x.ID)
		}
	}
	return m, idx, resident, u
}

// TestEpochStateExportRestoreRoundTrip pins the durable-snapshot
// contract of the bounded-staleness tier: restoring an exported
// EpochState into a fresh index reproduces the exported state exactly,
// and the restored index then behaves bit-identically — same deltas on
// future inserts, removals and reseals.
func TestEpochStateExportRestoreRoundTrip(t *testing.T) {
	m, idx, resident, u := epochStateFixture(t, 30)
	st := idx.(StatefulEpochIndex).ExportEpochState()

	idx2 := epochIndexOf(t, m)
	err := idx2.(StatefulEpochIndex).RestoreEpochState(st, func(id string) (*pdb.XTuple, bool) {
		x, ok := resident[id]
		return x, ok
	})
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	if idx2.Len() != idx.Len() {
		t.Fatalf("restored Len=%d, want %d", idx2.Len(), idx.Len())
	}
	if st2 := idx2.(StatefulEpochIndex).ExportEpochState(); !reflect.DeepEqual(st, st2) {
		t.Fatalf("re-export diverges:\n%+v\nvs\n%+v", st, st2)
	}

	// Future behavior: both indexes must emit identical delta sequences
	// for the same operations, including across an epoch flip.
	var got, want []PairDelta
	collectA := func(d PairDelta) bool { want = append(want, d); return true }
	collectB := func(d PairDelta) bool { got = append(got, d); return true }
	for _, x := range u.Tuples[30:36] {
		idx.Insert(x, collectA)
		idx2.Insert(x, collectB)
	}
	idx.Reseal(collectA)
	idx2.Reseal(collectB)
	for _, x := range u.Tuples[30:33] {
		idx.Remove(x.ID, collectA)
		idx2.Remove(x.ID, collectB)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("restored index delta stream diverges:\n%v\nvs\n%v", got, want)
	}
}

// TestEpochStateRestoreEmpty: restoring the export of an untouched
// index keeps the fresh zero state.
func TestEpochStateRestoreEmpty(t *testing.T) {
	u := shuffledUnion(4, 3)
	m := clusterTestMethod(t, u.Schema)
	st := epochIndexOf(t, m).(StatefulEpochIndex).ExportEpochState()
	idx := epochIndexOf(t, m)
	if err := idx.(StatefulEpochIndex).RestoreEpochState(st, func(string) (*pdb.XTuple, bool) { return nil, false }); err != nil {
		t.Fatalf("empty restore: %v", err)
	}
	if idx.Len() != 0 {
		t.Fatalf("Len=%d after empty restore", idx.Len())
	}
	// The next insertion must seal epoch 1 exactly like a never-
	// persisted index.
	maintained := verify.PairSet{}
	on := func(d PairDelta) bool { applyDelta(t, maintained, d); return true }
	for _, x := range u.Tuples {
		idx.Insert(x, on)
	}
	idx.Reseal(on)
	if d := diffSets(maintained, m.Candidates(u)); len(d) != 0 {
		t.Fatalf("post-restore behavior diverges from batch: %v", d)
	}
}

// TestEpochStateRestoreRejectsCorrupt: every validation failure is
// loud, names the problem, and leaves the target index untouched.
func TestEpochStateRestoreRejectsCorrupt(t *testing.T) {
	m, idx, resident, _ := epochStateFixture(t, 20)
	good := idx.(StatefulEpochIndex).ExportEpochState()
	lookup := func(id string) (*pdb.XTuple, bool) {
		x, ok := resident[id]
		return x, ok
	}
	cases := []struct {
		name   string
		mutate func(st *EpochState)
		errSub string
	}{
		{"label count mismatch", func(st *EpochState) { st.Labels = st.Labels[:1] }, "labels"},
		{"zero k", func(st *EpochState) { st.K = 0 }, "inconsistent clustering"},
		{"centroid count mismatch", func(st *EpochState) { st.Centroids = st.Centroids[:1] }, "inconsistent clustering"},
		{"label out of range", func(st *EpochState) { st.Labels[0] = len(st.Centroids) }, "outside"},
		{"negative label", func(st *EpochState) { st.Labels[0] = -1 }, "outside"},
		{"unsorted embedding keys", func(st *EpochState) {
			st.EmbeddingKeys[0], st.EmbeddingKeys[1] = st.EmbeddingKeys[1], st.EmbeddingKeys[0]
		}, "not sorted"},
		{"duplicate embedding keys", func(st *EpochState) { st.EmbeddingKeys[1] = st.EmbeddingKeys[0] }, "duplicate"},
		{"duplicate arrival", func(st *EpochState) { st.Arrivals[1] = st.Arrivals[0] }, "twice"},
		{"non-resident arrival", func(st *EpochState) { st.Arrivals[0] = "ghost" }, "non-resident"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			st := &EpochState{
				Epoch:         good.Epoch,
				K:             good.K,
				Drifted:       good.Drifted,
				Centroids:     append([]float64(nil), good.Centroids...),
				EmbeddingKeys: append([]string(nil), good.EmbeddingKeys...),
				Arrivals:      append([]string(nil), good.Arrivals...),
				Labels:        append([]int(nil), good.Labels...),
			}
			c.mutate(st)
			fresh := epochIndexOf(t, m)
			err := fresh.(StatefulEpochIndex).RestoreEpochState(st, lookup)
			if err == nil {
				t.Fatal("corrupt state accepted")
			}
			if !strings.Contains(err.Error(), c.errSub) {
				t.Fatalf("error %q does not mention %q", err, c.errSub)
			}
			if fresh.Len() != 0 {
				t.Fatalf("failed restore left %d residents behind", fresh.Len())
			}
		})
	}

	// Restoring onto a used index is refused.
	if err := idx.(StatefulEpochIndex).RestoreEpochState(good, lookup); err == nil ||
		!strings.Contains(err.Error(), "non-fresh") {
		t.Fatalf("restore on non-fresh index: %v", err)
	}
}
