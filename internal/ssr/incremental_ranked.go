package ssr

import (
	"sort"

	"probdedup/internal/keys"
	"probdedup/internal/pdb"
	"probdedup/internal/rank"
	"probdedup/internal/verify"
)

// windowSeq maintains a totally ordered sequence of unique tuple IDs and
// the exact sorted-neighborhood pair set over it: every splice records the
// window-pair deltas it causes (straddling pairs pushed out or pulled back
// in, neighbor pairs of the spliced ID). It is the ordering-agnostic core
// shared by the incremental SNMRanked strategies; the caller owns the
// comparator and all splice positions — including removal positions, so
// the sequence never pays for id→position bookkeeping (the caller finds
// them by binary search under its own order).
type windowSeq struct {
	window int
	ids    []string
}

func newWindowSeq(window int) *windowSeq {
	if window < 2 {
		window = 2 // mirror windowStream's minimum
	}
	return &windowSeq{window: window}
}

// insertAt splices id in at position p, appending the caused window-pair
// deltas: straddling pairs at distance exactly window-1 drop, and the new
// ID pairs with its window neighbors on both sides.
func (s *windowSeq) insertAt(p int, id string, deltas *[]PairDelta) {
	w := s.window
	for a := p - w + 1; a <= p-1; a++ {
		b := a + w - 1
		if a < 0 || b >= len(s.ids) {
			continue
		}
		*deltas = append(*deltas, PairDelta{Pair: verify.NewPair(s.ids[a], s.ids[b]), Dropped: true})
	}
	for a := p - 1; a >= 0 && a >= p-w+1; a-- {
		*deltas = append(*deltas, PairDelta{Pair: verify.NewPair(s.ids[a], id)})
	}
	for b := p; b < len(s.ids) && b <= p+w-2; b++ {
		*deltas = append(*deltas, PairDelta{Pair: verify.NewPair(id, s.ids[b])})
	}
	s.ids = append(s.ids, "")
	copy(s.ids[p+1:], s.ids[p:])
	s.ids[p] = id
}

// removeAt splices the ID at position p out, appending the caused
// deltas: every window pair of the ID drops, and straddling pairs at
// distance exactly window re-enter.
func (s *windowSeq) removeAt(p int, deltas *[]PairDelta) {
	id := s.ids[p]
	w := s.window
	for j := p - w + 1; j <= p+w-1; j++ {
		if j == p || j < 0 || j >= len(s.ids) {
			continue
		}
		*deltas = append(*deltas, PairDelta{Pair: verify.NewPair(s.ids[j], id), Dropped: true})
	}
	for a := p - w + 1; a <= p-1; a++ {
		b := a + w
		if a < 0 || b >= len(s.ids) {
			continue
		}
		*deltas = append(*deltas, PairDelta{Pair: verify.NewPair(s.ids[a], s.ids[b])})
	}
	s.ids = append(s.ids[:p], s.ids[p+1:]...)
}

// coalescePairDeltas nets out intra-operation churn: per pair, deltas
// alternate add/drop (the indexes maintain exact sets), so an even count
// cancels and an odd count nets to the first kind. Surviving deltas keep
// first-affected order, the same convention as InsertBatch.
func coalescePairDeltas(deltas []PairDelta) []PairDelta {
	if len(deltas) <= 1 {
		return deltas
	}
	type churn struct {
		firstDropped bool
		count        int
	}
	seen := map[verify.Pair]*churn{}
	var order []verify.Pair
	for _, d := range deltas {
		c := seen[d.Pair]
		if c == nil {
			c = &churn{firstDropped: d.Dropped}
			seen[d.Pair] = c
			order = append(order, d.Pair)
		}
		c.count++
	}
	out := make([]PairDelta, 0, len(order))
	for _, p := range order {
		c := seen[p]
		if c.count%2 == 0 {
			continue
		}
		out = append(out, PairDelta{Pair: p, Dropped: c.firstDropped})
	}
	return out
}

// ---- Sorted neighborhood over ranked uncertain keys ----

// snmRankedIndex maintains the exact SNMRanked window pair set online for
// all three rank strategies.
//
// MedianKey and ModeKey order by per-tuple statistics that never change
// once computed, so insertion is a plain ordered splice.
//
// ExpectedRank is the interesting case: a tuple's expected rank depends on
// the whole relation's key-mass table (rank.Universe). The index exploits
// a locality property of the expected-rank semantics: when a tuple with
// key span [lo, hi] arrives or departs, a resident whose own key span lies
// entirely below lo keeps a bit-identical rank, and one entirely above hi
// shifts by exactly one position — and any strictly-above resident already
// ranks at least one full position after any strictly-below one (for s
// strictly below t, every third item contributes at least as much rank
// mass to t as to s, and t gains a full unit from s itself, so
// E[rank(t)] ≥ E[rank(s)] + 1). Both effects preserve relative order, so
// only residents whose span overlaps [lo, hi] ("movers") can change
// position. Movers are plentiful on fuzzy keys (any shared key mass
// overlaps spans) but few of them actually change relative order, so
// after the universe update the index re-checks order only at
// mover-adjacent positions — two non-movers can never reorder, so
// clean mover-adjacent pairs imply the whole sequence is still sorted
// — and splices out exactly the movers caught out of order
// (extractDisordered), re-placing that handful by binary search under
// the new ranks. Intra-operation churn cancels via coalescePairDeltas.
//
// Rank values are evaluated through the same rank.Universe code path the
// batch ExpectedRanks uses, over contributions in the same arrival order,
// so incremental and batch ranks agree bit for bit and the maintained
// order equals the batch RankedIDs order of the residents in insertion
// order.
type snmRankedIndex struct {
	key      keys.Def
	strategy RankStrategy
	seq      *windowSeq
	items    map[string]rank.Item
	uni      *rank.Universe           // ExpectedRank only
	own      map[string]rank.OwnStats // per-resident own-mass tables
	sortKey  map[string]string        // MedianKey/ModeKey: static primary key
	rankMemo map[string]float64       // per-operation expected-rank memo
}

// Incremental implements IncrementalMethod.
func (m SNMRanked) Incremental() (IncrementalIndex, error) {
	idx := &snmRankedIndex{
		key:      m.Key,
		strategy: m.Strategy,
		seq:      newWindowSeq(m.Window),
		items:    map[string]rank.Item{},
		sortKey:  map[string]string{},
	}
	if m.Strategy == ExpectedRank {
		idx.uni = rank.NewUniverse()
		idx.own = map[string]rank.OwnStats{}
	}
	return idx, nil
}

func (s *snmRankedIndex) Len() int { return len(s.seq.ids) }

func itemTopKey(it rank.Item) string {
	if len(it.Keys) == 0 {
		return ""
	}
	return it.Keys[0].Key
}

// rankOf memoizes expected ranks within one operation (the universe is
// stable between mutations, so memoized values stay valid).
func (s *snmRankedIndex) rankOf(id string) float64 {
	if r, ok := s.rankMemo[id]; ok {
		return r
	}
	r := s.uni.RankOfWith(s.items[id], s.own[id])
	s.rankMemo[id] = r
	return r
}

// less is the strategy's strict total order — the same comparator the
// batch RankedIDs sort uses, with the unique tuple ID as final tiebreak.
func (s *snmRankedIndex) less(a, b string) bool {
	switch s.strategy {
	case MedianKey:
		if ka, kb := s.sortKey[a], s.sortKey[b]; ka != kb {
			return ka < kb
		}
		if ta, tb := itemTopKey(s.items[a]), itemTopKey(s.items[b]); ta != tb {
			return ta < tb
		}
		return a < b
	case ModeKey:
		if ka, kb := s.sortKey[a], s.sortKey[b]; ka != kb {
			return ka < kb
		}
		return a < b
	default:
		if ra, rb := s.rankOf(a), s.rankOf(b); ra != rb {
			return ra < rb
		}
		if ta, tb := itemTopKey(s.items[a]), itemTopKey(s.items[b]); ta != tb {
			return ta < tb
		}
		return a < b
	}
}

// place splices id into its sorted position.
func (s *snmRankedIndex) place(id string, deltas *[]PairDelta) {
	p := sort.Search(len(s.seq.ids), func(i int) bool { return s.less(id, s.seq.ids[i]) })
	s.seq.insertAt(p, id, deltas)
}

// locate finds a resident's current position by binary search under the
// strategy order — valid only while the ranks backing the order are
// unchanged since the resident was last placed, which is why every
// splice-out happens before the universe mutates.
func (s *snmRankedIndex) locate(id string) int {
	return sort.Search(len(s.seq.ids), func(i int) bool { return !s.less(s.seq.ids[i], id) })
}

// moverSet returns the residents whose key span overlaps [lo, hi],
// skipping skipID. Only these can have changed relative expected-rank
// order after the universe mutation.
func (s *snmRankedIndex) moverSet(lo, hi, skipID string) map[string]bool {
	movers := map[string]bool{}
	for _, id := range s.seq.ids {
		if id != skipID && rank.SpanOverlaps(s.items[id], lo, hi) {
			movers[id] = true
		}
	}
	return movers
}

// extractDisordered splices out exactly the movers that ended up out of
// order under the new (post-mutation) ranks, and returns them in
// extraction order for re-placement. Each round scans the adjacent
// pairs involving a mover — two non-movers can never reorder, so clean
// mover-adjacent pairs imply global sortedness — and extracts the
// mover side(s) of every violation; extraction creates new adjacencies,
// so rounds repeat until the scan is clean. Movers that kept their
// order are never touched, which is the common case even when the
// mover set spans most of the relation.
func (s *snmRankedIndex) extractDisordered(movers map[string]bool, deltas *[]PairDelta) []string {
	var out []string
	for {
		ids := s.seq.ids
		var bad []int
		for i := 1; i < len(ids); i++ {
			if !movers[ids[i-1]] && !movers[ids[i]] {
				continue
			}
			if s.less(ids[i], ids[i-1]) {
				if movers[ids[i-1]] && (len(bad) == 0 || bad[len(bad)-1] != i-1) {
					bad = append(bad, i-1)
				}
				if movers[ids[i]] {
					bad = append(bad, i)
				}
			}
		}
		if len(bad) == 0 {
			return out
		}
		for i := len(bad) - 1; i >= 0; i-- {
			out = append(out, s.seq.ids[bad[i]])
			s.seq.removeAt(bad[i], deltas)
		}
	}
}

func (s *snmRankedIndex) Insert(x *pdb.XTuple, yield func(PairDelta) bool) bool {
	it := rank.Item{ID: x.ID, Keys: s.key.XTupleKeyDist(x, true)}
	var deltas []PairDelta
	if s.strategy == ExpectedRank {
		lo, hi := rank.KeySpan(it)
		movers := s.moverSet(lo, hi, "")
		s.uni.Add(it)
		s.items[x.ID] = it
		s.own[x.ID] = rank.OwnStatsOf(it)
		s.rankMemo = map[string]float64{}
		moved := s.extractDisordered(movers, &deltas)
		s.place(x.ID, &deltas)
		for _, id := range moved {
			s.place(id, &deltas)
		}
	} else {
		s.items[x.ID] = it
		if s.strategy == MedianKey {
			s.sortKey[x.ID] = rank.MedianKey(it)
		} else {
			s.sortKey[x.ID] = itemTopKey(it)
		}
		s.place(x.ID, &deltas)
	}
	for _, d := range coalescePairDeltas(deltas) {
		if !yield(d) {
			return false
		}
	}
	return true
}

func (s *snmRankedIndex) Remove(id string, yield func(PairDelta) bool) bool {
	it, ok := s.items[id]
	if !ok {
		return true
	}
	var deltas []PairDelta
	if s.strategy == ExpectedRank {
		lo, hi := rank.KeySpan(it)
		idPos := s.locate(id) // old ranks still valid here
		movers := s.moverSet(lo, hi, id)
		s.seq.removeAt(idPos, &deltas)
		s.uni.Remove(it)
		delete(s.items, id)
		delete(s.own, id)
		s.rankMemo = map[string]float64{}
		for _, mid := range s.extractDisordered(movers, &deltas) {
			s.place(mid, &deltas)
		}
	} else {
		s.seq.removeAt(s.locate(id), &deltas)
		delete(s.items, id)
		delete(s.sortKey, id)
	}
	for _, d := range coalescePairDeltas(deltas) {
		if !yield(d) {
			return false
		}
	}
	return true
}

// Interface conformance check.
var _ IncrementalMethod = SNMRanked{}
