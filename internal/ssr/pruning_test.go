package ssr

import (
	"testing"

	"probdedup/internal/paperdata"
	"probdedup/internal/pdb"
)

func TestPruningKeepsLengthCompatiblePairs(t *testing.T) {
	xr := pdb.NewXRelation("X", "name", "job").Append(
		pdb.NewXTuple("short", pdb.NewAlt(1, "Tim", "mechanic")),
		pdb.NewXTuple("short2", pdb.NewAlt(1, "Tom", "mechanic")),
		pdb.NewXTuple("long", pdb.NewAlt(1, "Maximiliane", "mechanic")),
	)
	p := Pruning{MaxDiff: map[int]int{0: 2}}
	c := p.Candidates(xr)
	if !c.Has("short", "short2") {
		t.Fatal("similar lengths must survive")
	}
	if c.Has("short", "long") || c.Has("short2", "long") {
		t.Fatalf("length difference 8 > 2 must prune: %v", c.Sorted())
	}
}

func TestPruningUncertaintyAware(t *testing.T) {
	// One alternative is long, but a second alternative has a compatible
	// length: the pair must survive (some world could match).
	xr := pdb.NewXRelation("X", "name").Append(
		pdb.NewXTuple("a", pdb.NewAlt(1, "Tim")),
		pdb.NewXTuple("b",
			pdb.NewAlt(0.5, "Maximiliane"),
			pdb.NewAlt(0.5, "Tom")),
	)
	c := Pruning{MaxDiff: map[int]int{0: 1}}.Candidates(xr)
	if !c.Has("a", "b") {
		t.Fatal("alternative with compatible length must keep the pair")
	}
}

func TestPruningNullLength(t *testing.T) {
	// ⊥ counts as length 0, so a ⊥-possible attribute is compatible with
	// short values.
	xr := pdb.NewXRelation("X", "name").Append(
		pdb.NewXTuple("a", pdb.NewAltDists(1, pdb.MustDist(
			pdb.Alternative{Value: pdb.V("Maximiliane"), P: 0.5}))), // ⊥ 0.5
		pdb.NewXTuple("b", pdb.NewAltDists(1, pdb.CertainNull())),
	)
	c := Pruning{MaxDiff: map[int]int{0: 0}}.Candidates(xr)
	if !c.Has("a", "b") {
		t.Fatal("⊥/⊥ lengths must be compatible")
	}
}

func TestPruningUnconstrained(t *testing.T) {
	xr := paperdata.R34()
	c := Pruning{}.Candidates(xr)
	if len(c) != len(AllPairs(xr)) {
		t.Fatalf("no constraints must keep all pairs: %d", len(c))
	}
}

func TestFilterComposition(t *testing.T) {
	xr := paperdata.R34()
	inner := SNMAlternatives{Key: paperKey(), Window: 2}
	f := NewFilter(inner, Pruning{MaxDiff: map[int]int{0: 10}})
	if f.Name() != "snm-alternatives+pruned" {
		t.Fatalf("name %q", f.Name())
	}
	// A permissive filter keeps everything the inner method emits.
	in := inner.Candidates(xr)
	out := f.Candidates(xr)
	if len(out) != len(in) {
		t.Fatalf("permissive filter changed candidates: %d vs %d", len(out), len(in))
	}
	// A strict filter shrinks the set but never adds pairs.
	strict := NewFilter(inner, Pruning{MaxDiff: map[int]int{0: 0}})
	sc := strict.Candidates(xr)
	for p := range sc {
		if !in[p] {
			t.Fatalf("filter invented pair %v", p)
		}
	}
	if len(sc) >= len(in) {
		t.Fatalf("strict filter did not prune (%d vs %d)", len(sc), len(in))
	}
}

func TestSNMRankedStrategies(t *testing.T) {
	xr := paperdata.R34()
	exp := SNMRanked{Key: paperKey(), Window: 2}
	med := SNMRanked{Key: paperKey(), Window: 2, Strategy: MedianKey}
	mod := SNMRanked{Key: paperKey(), Window: 2, Strategy: ModeKey}
	if exp.Name() != "snm-ranked" || med.Name() != "snm-ranked-median" || mod.Name() != "snm-ranked-mode" {
		t.Fatalf("names: %q %q %q", exp.Name(), med.Name(), mod.Name())
	}
	for _, m := range []SNMRanked{exp, med, mod} {
		ids := m.RankedIDs(xr)
		if len(ids) != len(xr.Tuples) {
			t.Fatalf("%s: %v", m.Name(), ids)
		}
		seen := map[string]bool{}
		for _, id := range ids {
			if seen[id] {
				t.Fatalf("%s: duplicate %s", m.Name(), id)
			}
			seen[id] = true
		}
		if len(m.Candidates(xr)) == 0 {
			t.Fatalf("%s: no candidates", m.Name())
		}
	}
	// Median ordering on ℛ34: median keys are Johpi(t31), Jimme(t32)?
	// t32's sorted keys: Jimba .4, Jimme .2, Timme .3 → cumulative at
	// Jimba = .4/.9 < .5, Jimme = .6/.9 ≥ .5 → median Jimme.
	ids := med.RankedIDs(xr)
	if ids[0] != "t32" {
		t.Fatalf("median order %v", ids)
	}
}
