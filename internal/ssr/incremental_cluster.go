package ssr

import (
	"math"
	"math/rand"

	"probdedup/internal/cluster"
	"probdedup/internal/pdb"
	"probdedup/internal/verify"
)

// defaultMaxDrift is the drift fraction an incremental BlockingCluster
// tolerates before resealing its epoch (see BlockingCluster.MaxDrift).
const defaultMaxDrift = 0.25

// blockingClusterIndex maintains the BlockingCluster candidate set on
// the bounded-staleness tier (EpochIndex).
//
// UK-means clustering depends globally on the whole relation — the key
// universe, the embedding and the centroids all move with every tuple —
// so exact maintenance would re-cluster from scratch per arrival. The
// epoch scheme bounds that cost: a reseal runs the batch clustering
// (bitwise: same items in insertion order, fresh rng from Seed) and
// freezes its embedding and centroids. Between reseals an arriving
// tuple is embedded in the frozen space and joins the block of its
// nearest centroid — an O(k) decision — and a departing tuple just
// leaves its block. Each such stale placement counts toward drift;
// when drift exceeds MaxDrift·residents, the index reseals inside the
// same operation, so the epoch flip reaches consumers as ordinary pair
// deltas (re-blocked pairs net out via coalescePairDeltas).
type blockingClusterIndex struct {
	method   BlockingCluster
	maxDrift float64

	arrivals []string
	items    map[string]cluster.Item

	epoch     int
	k         int
	emb       *cluster.Embedding
	centroids []float64
	labelOf   map[string]int
	blocks    map[int][]string
	drifted   int

	deltas []PairDelta
}

// Incremental implements IncrementalMethod.
func (m BlockingCluster) Incremental() (IncrementalIndex, error) {
	maxDrift := m.MaxDrift
	if maxDrift <= 0 {
		maxDrift = defaultMaxDrift
	}
	return &blockingClusterIndex{
		method:   m,
		maxDrift: maxDrift,
		items:    map[string]cluster.Item{},
		labelOf:  map[string]int{},
		blocks:   map[int][]string{},
	}, nil
}

func (b *blockingClusterIndex) Len() int { return len(b.arrivals) }

// Epoch implements EpochIndex.
func (b *blockingClusterIndex) Epoch() int { return b.epoch }

// Staleness implements EpochIndex.
func (b *blockingClusterIndex) Staleness() Staleness {
	return Staleness{
		Epoch:     b.epoch,
		Residents: len(b.arrivals),
		Drifted:   b.drifted,
		Bound:     b.maxDrift,
	}
}

// nearestCentroid picks the closest centroid by squared distance, ties
// to the lowest index — the same rule as the UK-means assignment loop.
func nearestCentroid(centroids []float64, p float64) int {
	best, bestD := 0, math.Inf(1)
	for c, ct := range centroids {
		if d := (p - ct) * (p - ct); d < bestD {
			best, bestD = c, d
		}
	}
	return best
}

// reseal runs the batch clustering over the residents in insertion
// order and rebuilds the blocks, recording the pair churn as deltas
// (unchanged pairs cancel in coalescePairDeltas). It freezes the new
// epoch's embedding and centroids and resets the drift counter.
func (b *blockingClusterIndex) reseal() {
	// Withdraw the old blocks' pairs.
	for c := 0; c < b.k; c++ {
		members := b.blocks[c]
		for i := 0; i < len(members); i++ {
			for j := i + 1; j < len(members); j++ {
				b.deltas = append(b.deltas, PairDelta{Pair: verify.NewPair(members[i], members[j]), Dropped: true})
			}
		}
	}
	// Re-cluster exactly as the batch Partitions does.
	items := make([]cluster.Item, len(b.arrivals))
	for i, id := range b.arrivals {
		items[i] = b.items[id]
	}
	k := b.method.K
	if k <= 0 {
		k = len(items) / 8
		if k < 2 {
			k = 2
		}
	}
	c := cluster.UKMeans(items, k, 0, rand.New(rand.NewSource(b.method.Seed)))
	b.k = c.K
	b.centroids = c.Centroids
	b.emb = cluster.NewEmbedding(items)
	b.labelOf = make(map[string]int, len(items))
	b.blocks = map[int][]string{}
	for i, a := range c.Assign {
		id := items[i].ID
		for _, other := range b.blocks[a] {
			b.deltas = append(b.deltas, PairDelta{Pair: verify.NewPair(other, id)})
		}
		b.blocks[a] = append(b.blocks[a], id)
		b.labelOf[id] = a
	}
	b.drifted = 0
	b.epoch++
}

// maybeReseal reseals in-band once the drift bound is crossed.
func (b *blockingClusterIndex) maybeReseal() {
	if float64(b.drifted) > b.maxDrift*float64(len(b.arrivals)) {
		b.reseal()
	}
}

// flushDeltas coalesces and delivers the op-local deltas.
func (b *blockingClusterIndex) flushDeltas(yield func(PairDelta) bool) bool {
	deltas := coalescePairDeltas(b.deltas)
	b.deltas = b.deltas[:0]
	for _, d := range deltas {
		if !yield(d) {
			return false
		}
	}
	return true
}

func (b *blockingClusterIndex) Insert(x *pdb.XTuple, yield func(PairDelta) bool) bool {
	it := cluster.Item{ID: x.ID, Keys: b.method.Key.XTupleKeyDist(x, true)}
	b.items[x.ID] = it
	b.arrivals = append(b.arrivals, x.ID)
	if b.emb == nil {
		b.reseal()
	} else {
		c := nearestCentroid(b.centroids, b.emb.Pos(it.Keys))
		for _, other := range b.blocks[c] {
			b.deltas = append(b.deltas, PairDelta{Pair: verify.NewPair(other, x.ID)})
		}
		b.blocks[c] = append(b.blocks[c], x.ID)
		b.labelOf[x.ID] = c
		b.drifted++
		b.maybeReseal()
	}
	return b.flushDeltas(yield)
}

func (b *blockingClusterIndex) Remove(id string, yield func(PairDelta) bool) bool {
	if _, ok := b.items[id]; !ok {
		return true
	}
	delete(b.items, id)
	b.arrivals = removeID(b.arrivals, id)
	c := b.labelOf[id]
	delete(b.labelOf, id)
	b.blocks[c] = removeID(b.blocks[c], id)
	for _, other := range b.blocks[c] {
		b.deltas = append(b.deltas, PairDelta{Pair: verify.NewPair(other, id), Dropped: true})
	}
	if len(b.arrivals) == 0 {
		// Empty index: clear the epoch state so the next insertion
		// seals a fresh epoch.
		b.k = 0
		b.emb = nil
		b.centroids = nil
		b.blocks = map[int][]string{}
		b.drifted = 0
	} else {
		b.drifted++
		b.maybeReseal()
	}
	return b.flushDeltas(yield)
}

// Reseal implements EpochIndex.
func (b *blockingClusterIndex) Reseal(yield func(PairDelta) bool) bool {
	if len(b.arrivals) == 0 {
		return true
	}
	b.reseal()
	return b.flushDeltas(yield)
}

// Interface conformance checks.
var (
	_ IncrementalMethod = BlockingCluster{}
	_ EpochIndex        = (*blockingClusterIndex)(nil)
)
