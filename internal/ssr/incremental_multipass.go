package ssr

import (
	"sort"
	"strconv"
	"strings"

	"probdedup/internal/keys"
	"probdedup/internal/pdb"
	"probdedup/internal/verify"
	"probdedup/internal/worlds"
)

// pairLedger refcounts how many independent sources (kept-window position
// pairs, per-world passes) currently cover each candidate pair and records
// the 0↔positive transitions as deltas — the incremental form of the
// executed-matching set (Fig. 12).
type pairLedger struct {
	counts map[verify.Pair]int
	deltas []PairDelta
}

func newPairLedger() *pairLedger { return &pairLedger{counts: map[verify.Pair]int{}} }

// bump counts one more coverage of the pair; the first yields an add.
// Same-ID pairs are ignored (windowStream skips them).
func (l *pairLedger) bump(a, b string) {
	if a == b {
		return
	}
	p := verify.NewPair(a, b)
	l.counts[p]++
	if l.counts[p] == 1 {
		l.deltas = append(l.deltas, PairDelta{Pair: p})
	}
}

// drop removes one coverage; the last yields a drop.
func (l *pairLedger) drop(a, b string) {
	if a == b {
		return
	}
	p := verify.NewPair(a, b)
	l.counts[p]--
	if l.counts[p] == 0 {
		delete(l.counts, p)
		l.deltas = append(l.deltas, PairDelta{Pair: p, Dropped: true})
	}
}

// flush coalesces and delivers the accumulated transition deltas.
func (l *pairLedger) flush(yield func(PairDelta) bool) bool {
	deltas := coalescePairDeltas(l.deltas)
	l.deltas = l.deltas[:0]
	for _, d := range deltas {
		if !yield(d) {
			return false
		}
	}
	return true
}

// ---- Multi-pass sorted neighborhood over possible worlds ----

// mpWorld is one selected possible world of the incremental multi-pass
// index: the per-resident raw choice indices that identify it, its sorted
// (key, arrival-order) entry list, and the window pair set of its pass.
type mpWorld struct {
	rawIdx  []int
	entries []KeyEntry
	pairs   verify.PairSet
}

// snmMultiPassIndex maintains the exact SNMMultiPass candidate set online
// by composing one SNMCertain-style pass per selected possible world.
//
// Per resident it caches the conditioned choice list (raw enumeration
// order and the stable probability-sorted order the top-k expansion
// uses), so re-running the world selection after every operation goes
// through the exact same list-level code path (worlds.TopKIdx /
// EnumerateIdx / DissimilarIdx) as the batch method — selected worlds,
// probabilities and fallback behavior agree bit for bit with
// selectWorlds over the residents in insertion order.
//
// Worlds are identified by their raw choice-index vectors. After an
// insertion, a new world whose first n components match a previously
// selected world extends it: the pass index is reused (or cloned when
// several children share a parent) and only the new tuple is spliced in.
// After a removal, old worlds match new ones by dropping the removed
// component. Unmatched new worlds are built from scratch; old worlds
// that left the selection retire. The union over passes is refcounted by
// a pairLedger, so candidate pairs enter and leave the maintained set
// exactly as the batch executed-matching union does.
type snmMultiPassIndex struct {
	method    SNMMultiPass
	window    int
	key       keys.Def
	arrivals  []string
	raw       [][]worlds.Choice
	sorted    [][]worlds.Choice
	s2r       [][]int    // sorted position -> raw position
	choiceKey [][]string // raw position -> sorting key of the choice
	worlds    []*mpWorld
	ledger    *pairLedger
}

// Incremental implements IncrementalMethod.
func (m SNMMultiPass) Incremental() (IncrementalIndex, error) {
	w := m.Window
	if w < 2 {
		w = 2 // mirror windowStream's minimum
	}
	return &snmMultiPassIndex{
		method: m,
		window: w,
		key:    m.Key,
		ledger: newPairLedger(),
	}, nil
}

func (s *snmMultiPassIndex) Len() int { return len(s.arrivals) }

// sigOf renders a choice-index vector as a map key.
func sigOf(idx []int) string {
	var b strings.Builder
	for _, v := range idx {
		b.WriteString(strconv.Itoa(v))
		b.WriteByte(',')
	}
	return b.String()
}

// selectRaw re-runs the method's world selection over the cached choice
// lists and converts the result to raw-basis index vectors.
func (s *snmMultiPassIndex) selectRaw() [][]int {
	var sts []worlds.WorldIdx
	sortedBasis := true
	switch s.method.Select {
	case TopWorlds:
		sts = worlds.TopKIdx(s.sorted, s.method.K)
	case DissimilarWorlds:
		sts = worlds.DissimilarIdx(s.sorted, s.method.K, 4*s.method.K)
	default:
		limit := s.method.MaxWorlds
		if limit <= 0 {
			limit = 100_000
		}
		var err error
		sts, err = worlds.EnumerateIdx(s.raw, limit)
		if err != nil {
			// Same fallback as the batch selection: the most probable
			// worlds when enumeration is infeasible.
			sts = worlds.TopKIdx(s.sorted, 1024)
		} else {
			sortedBasis = false
		}
	}
	out := make([][]int, len(sts))
	for i, st := range sts {
		ri := make([]int, len(st.Idx))
		for t, j := range st.Idx {
			if sortedBasis {
				ri[t] = s.s2r[t][j]
			} else {
				ri[t] = j
			}
		}
		out[i] = ri
	}
	return out
}

// worldIDs projects the entry IDs of a world's pass in sorted order.
func worldIDs(entries []KeyEntry) []string {
	ids := make([]string, len(entries))
	for i, e := range entries {
		ids[i] = e.ID
	}
	return ids
}

// applyWorldDelta folds one pass-level window delta into the world's
// pair set and the global union ledger.
func (s *snmMultiPassIndex) applyWorldDelta(w *mpWorld, d PairDelta) {
	if d.Dropped {
		delete(w.pairs, d.Pair)
		s.ledger.drop(d.Pair.A, d.Pair.B)
	} else {
		w.pairs[d.Pair] = true
		s.ledger.bump(d.Pair.A, d.Pair.B)
	}
}

// worldInsert splices (k, id) into the world's pass with the standard
// sorted-neighborhood window delta math.
func (s *snmMultiPassIndex) worldInsert(w *mpWorld, id, k string) {
	p := sort.Search(len(w.entries), func(i int) bool { return w.entries[i].Key > k })
	win := s.window
	var ds []PairDelta
	for a := p - win + 1; a <= p-1; a++ {
		b := a + win - 1
		if a < 0 || b >= len(w.entries) {
			continue
		}
		ds = append(ds, PairDelta{Pair: verify.NewPair(w.entries[a].ID, w.entries[b].ID), Dropped: true})
	}
	for a := p - 1; a >= 0 && a >= p-win+1; a-- {
		ds = append(ds, PairDelta{Pair: verify.NewPair(w.entries[a].ID, id)})
	}
	for b := p; b < len(w.entries) && b <= p+win-2; b++ {
		ds = append(ds, PairDelta{Pair: verify.NewPair(id, w.entries[b].ID)})
	}
	w.entries = append(w.entries, KeyEntry{})
	copy(w.entries[p+1:], w.entries[p:])
	w.entries[p] = KeyEntry{Key: k, ID: id}
	for _, d := range ds {
		s.applyWorldDelta(w, d)
	}
}

// worldRemove splices id out of the world's pass.
func (s *snmMultiPassIndex) worldRemove(w *mpWorld, id string) {
	p := -1
	for i, e := range w.entries {
		if e.ID == id {
			p = i
			break
		}
	}
	if p < 0 {
		return
	}
	win := s.window
	var ds []PairDelta
	for j := p - win + 1; j <= p+win-1; j++ {
		if j == p || j < 0 || j >= len(w.entries) {
			continue
		}
		ds = append(ds, PairDelta{Pair: verify.NewPair(w.entries[j].ID, id), Dropped: true})
	}
	for a := p - win + 1; a <= p-1; a++ {
		b := a + win
		if a < 0 || b >= len(w.entries) {
			continue
		}
		ds = append(ds, PairDelta{Pair: verify.NewPair(w.entries[a].ID, w.entries[b].ID)})
	}
	w.entries = append(w.entries[:p], w.entries[p+1:]...)
	for _, d := range ds {
		s.applyWorldDelta(w, d)
	}
}

// worldBuild constructs a world's pass from scratch over all residents.
func (s *snmMultiPassIndex) worldBuild(rawIdx []int) *mpWorld {
	ents := make([]KeyEntry, len(s.arrivals))
	for t, id := range s.arrivals {
		ents[t] = KeyEntry{Key: s.choiceKey[t][rawIdx[t]], ID: id}
	}
	sort.SliceStable(ents, func(a, b int) bool { return ents[a].Key < ents[b].Key })
	w := &mpWorld{rawIdx: rawIdx, entries: ents, pairs: verify.PairSet{}}
	windowStream(worldIDs(ents), s.window, func(p verify.Pair) bool {
		w.pairs[p] = true
		s.ledger.bump(p.A, p.B)
		return true
	})
	return w
}

// worldClone builds a world around a copy of an existing pass entry list
// and registers its pair coverage with the ledger (deterministically, by
// re-streaming the window pairs of the entry list).
func (s *snmMultiPassIndex) worldClone(entries []KeyEntry) *mpWorld {
	w := &mpWorld{
		entries: append([]KeyEntry(nil), entries...),
		pairs:   verify.PairSet{},
	}
	windowStream(worldIDs(w.entries), s.window, func(p verify.Pair) bool {
		w.pairs[p] = true
		s.ledger.bump(p.A, p.B)
		return true
	})
	return w
}

// worldRetire withdraws a departing world's pair coverage
// (deterministically, via the window stream of its entries).
func (s *snmMultiPassIndex) worldRetire(w *mpWorld) {
	windowStream(worldIDs(w.entries), s.window, func(p verify.Pair) bool {
		s.ledger.drop(p.A, p.B)
		return true
	})
}

// registerTuple caches the tuple's choice lists (raw and sorted bases),
// the sorted→raw permutation and the per-choice sorting keys.
func (s *snmMultiPassIndex) registerTuple(x *pdb.XTuple) {
	raw := worlds.Choices(x, true)
	perm := make([]int, len(raw))
	for i := range perm {
		perm[i] = i
	}
	sort.SliceStable(perm, func(a, b int) bool { return raw[perm[a]].P > raw[perm[b]].P })
	sortedCs := make([]worlds.Choice, len(raw))
	for si, ri := range perm {
		sortedCs[si] = raw[ri]
	}
	ck := make([]string, len(raw))
	for j, c := range raw {
		ck[j] = s.key.FromValues(c.Values)
	}
	s.arrivals = append(s.arrivals, x.ID)
	s.raw = append(s.raw, raw)
	s.sorted = append(s.sorted, sortedCs)
	s.s2r = append(s.s2r, perm)
	s.choiceKey = append(s.choiceKey, ck)
}

func (s *snmMultiPassIndex) Insert(x *pdb.XTuple, yield func(PairDelta) bool) bool {
	oldWorlds := s.worlds
	oldBySig := make(map[string]*mpWorld, len(oldWorlds))
	for _, w := range oldWorlds {
		oldBySig[sigOf(w.rawIdx)] = w
	}
	s.registerTuple(x)
	n := len(s.arrivals) - 1 // resident count before this insertion
	newSel := s.selectRaw()

	// Count children per parent so multi-child parents are snapshotted
	// before the first child mutates them in place.
	children := map[*mpWorld]int{}
	for _, ri := range newSel {
		if parent := oldBySig[sigOf(ri[:n])]; parent != nil {
			children[parent]++
		}
	}
	snapshots := map[*mpWorld][]KeyEntry{}
	for parent, c := range children {
		if c > 1 {
			snapshots[parent] = append([]KeyEntry(nil), parent.entries...)
		}
	}

	newWorlds := make([]*mpWorld, 0, len(newSel))
	used := map[*mpWorld]int{}
	for _, ri := range newSel {
		parent := oldBySig[sigOf(ri[:n])]
		var w *mpWorld
		switch {
		case parent == nil:
			w = s.worldBuild(ri)
			newWorlds = append(newWorlds, w)
			continue
		case used[parent] == 0:
			w = parent
		default:
			// Later children clone the parent's pre-insertion pass.
			w = s.worldClone(snapshots[parent])
		}
		used[parent]++
		w.rawIdx = ri
		s.worldInsert(w, x.ID, s.choiceKey[n][ri[n]])
		newWorlds = append(newWorlds, w)
	}
	for _, w := range oldWorlds {
		if used[w] == 0 {
			s.worldRetire(w)
		}
	}
	s.worlds = newWorlds
	return s.ledger.flush(yield)
}

func (s *snmMultiPassIndex) Remove(id string, yield func(PairDelta) bool) bool {
	pos := -1
	for i, a := range s.arrivals {
		if a == id {
			pos = i
			break
		}
	}
	if pos < 0 {
		return true
	}
	oldWorlds := s.worlds
	s.arrivals = append(s.arrivals[:pos], s.arrivals[pos+1:]...)
	s.raw = append(s.raw[:pos], s.raw[pos+1:]...)
	s.sorted = append(s.sorted[:pos], s.sorted[pos+1:]...)
	s.s2r = append(s.s2r[:pos], s.s2r[pos+1:]...)
	s.choiceKey = append(s.choiceKey[:pos], s.choiceKey[pos+1:]...)
	newSel := s.selectRaw()

	// Old worlds match new ones by dropping the removed component.
	oldByReduced := map[string][]*mpWorld{}
	for _, w := range oldWorlds {
		reduced := make([]int, 0, len(w.rawIdx)-1)
		reduced = append(reduced, w.rawIdx[:pos]...)
		reduced = append(reduced, w.rawIdx[pos+1:]...)
		sig := sigOf(reduced)
		oldByReduced[sig] = append(oldByReduced[sig], w)
	}
	newWorlds := make([]*mpWorld, 0, len(newSel))
	used := map[*mpWorld]bool{}
	for _, ri := range newSel {
		var w *mpWorld
		for _, cand := range oldByReduced[sigOf(ri)] {
			if !used[cand] {
				w = cand
				break
			}
		}
		if w == nil {
			newWorlds = append(newWorlds, s.worldBuild(ri))
			continue
		}
		used[w] = true
		w.rawIdx = ri
		s.worldRemove(w, id)
		newWorlds = append(newWorlds, w)
	}
	for _, w := range oldWorlds {
		if !used[w] {
			s.worldRetire(w)
		}
	}
	s.worlds = newWorlds
	return s.ledger.flush(yield)
}

// Interface conformance check.
var _ IncrementalMethod = SNMMultiPass{}
