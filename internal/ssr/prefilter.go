package ssr

import (
	"fmt"
	"sync"
	"sync/atomic"

	"probdedup/internal/avm"
	"probdedup/internal/decision"
	"probdedup/internal/pdb"
	"probdedup/internal/strsim"
	"probdedup/internal/sym"
	"probdedup/internal/verify"
	"probdedup/internal/xmatch"
)

// PreFilter is the symbol-plane candidate pre-filter: it sits between
// candidate enumeration (the search space reduction methods) and
// verification (the full Fig. 6 comparison) and rejects pairs that
// provably cannot reach the final lower threshold Tλ — pairs whose
// classification is therefore U no matter what the comparison computes.
// It generalizes the Pruning length heuristic into a sound, always-on
// filter built from three bound layers:
//
//  1. per attribute, a similarity upper bound from the precomputed
//     symbol statistics of the values (length and q-gram count filters,
//     strsim.BoundFor), maximized over the alternative values and ⊥
//     combinations — an upper bound of the Eq. 5 expectation, which is
//     a convex combination of exactly those terms;
//  2. the decision model folds the per-attribute bounds into a
//     per-cell similarity bound (decision.UpperBounded);
//  3. the derivation folds the cell bound into a bound on the derived
//     x-tuple similarity (xmatch.Bounded).
//
// A pair is filtered only when that final bound lies strictly below Tλ,
// so the M and P result sets are bit-identical with the filter on or
// off; only the number of verified (Compared) pairs shrinks. Tuples are
// summarized once at Insert into per-attribute signature slices, so
// Admit performs no table lookups and no string work.
//
// A PreFilter is safe for concurrent use: Admit takes only a read lock
// plus two atomic counters, Insert/Remove a write lock.
type PreFilter struct {
	table  *sym.Table
	bounds []strsim.SimBound // per attribute; nil = no bound known (UB 1)
	model  decision.UpperBounded
	derive xmatch.Bounded
	lambda float64
	nulls  avm.NullSemantics

	mu   sync.RWMutex
	sigs map[string]*tupleSig

	enumerated atomic.Uint64
	filtered   atomic.Uint64

	vecs sync.Pool // *[]float64 scratch for the per-attribute bound vector
}

// PreFilterConfig carries everything NewPreFilter needs to prove the
// filter sound for one engine configuration.
type PreFilterConfig struct {
	// Table is the run's symbol table (stats of interned values).
	Table *sym.Table
	// Funcs are the per-attribute comparison functions; attributes whose
	// function has no registered bound contribute the trivial bound 1.
	Funcs []strsim.Func
	// Model is the per-alternative decision model; it must implement
	// decision.UpperBounded.
	Model decision.Model
	// Derive is the similarity derivation; it must implement
	// xmatch.Bounded.
	Derive xmatch.Derivation
	// Lambda is the final classification's Tλ: pairs provably below it
	// are non-matches and get filtered.
	Lambda float64
	// Nulls is the ⊥ semantics used by attribute value matching.
	Nulls avm.NullSemantics
}

// tupleSig is the per-tuple summary Admit works on.
type tupleSig struct {
	attrs []attrSig
}

// attrSig summarizes one attribute of one x-tuple across all its
// alternatives: the symbol statistics of every distinct value and
// whether any alternative's distribution carries ⊥ mass.
type attrSig struct {
	stats   []sym.Stats
	hasNull bool
}

// NewPreFilter validates that the configuration supports sound
// filtering and returns the filter, or an error describing the first
// obstruction (an opaque decision model, an unboundable derivation, or
// ⊥ semantics outside [0,1]). Callers typically treat the error as
// "run unfiltered".
func NewPreFilter(cfg PreFilterConfig) (*PreFilter, error) {
	if cfg.Table == nil {
		return nil, fmt.Errorf("ssr: pre-filter needs a symbol table")
	}
	model, ok := cfg.Model.(decision.UpperBounded)
	if !ok {
		return nil, fmt.Errorf("ssr: decision model %T cannot bound its similarity", cfg.Model)
	}
	derive, ok := cfg.Derive.(xmatch.Bounded)
	if !ok {
		return nil, fmt.Errorf("ssr: derivation %T cannot bound its similarity", cfg.Derive)
	}
	if cfg.Nulls.NullNull < 0 || cfg.Nulls.NullNull > 1 || cfg.Nulls.NullValue < 0 || cfg.Nulls.NullValue > 1 {
		return nil, fmt.Errorf("ssr: pre-filter needs ⊥ similarities in [0,1], got %+v", cfg.Nulls)
	}
	bounds := make([]strsim.SimBound, len(cfg.Funcs))
	for k, f := range cfg.Funcs {
		if b, ok := strsim.BoundFor(f); ok {
			bounds[k] = b
		}
	}
	pf := &PreFilter{
		table:  cfg.Table,
		bounds: bounds,
		model:  model,
		derive: derive,
		lambda: cfg.Lambda,
		nulls:  cfg.Nulls,
		sigs:   map[string]*tupleSig{},
	}
	pf.vecs.New = func() any {
		v := make([]float64, len(bounds))
		return &v
	}
	return pf, nil
}

// Insert summarizes the (interned) x-tuple so later Admit calls can
// bound pairs involving it. Inserting an ID again replaces its
// signature.
func (f *PreFilter) Insert(x *pdb.XTuple) {
	sig := f.signature(x)
	f.mu.Lock()
	f.sigs[x.ID] = sig
	f.mu.Unlock()
}

// Remove drops the signature of the tuple.
func (f *PreFilter) Remove(id string) {
	f.mu.Lock()
	delete(f.sigs, id)
	f.mu.Unlock()
}

// Len returns the number of summarized tuples.
func (f *PreFilter) Len() int {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return len(f.sigs)
}

// signature builds the per-attribute summary, deduplicating value
// stats by symbol. Values without a symbol contribute the zero Stats,
// which every bound treats as "no information" — sound, just useless.
func (f *PreFilter) signature(x *pdb.XTuple) *tupleSig {
	sig := &tupleSig{attrs: make([]attrSig, len(f.bounds))}
	for _, alt := range x.Alts {
		for k := range f.bounds {
			if k >= len(alt.Values) {
				continue
			}
			as := &sig.attrs[k]
			d := alt.Values[k]
			if d.NullP() > pdb.Eps {
				as.hasNull = true
			}
			for _, a := range d.Alternatives() {
				st := f.table.Stats(a.Value.Sym())
				dup := false
				for _, have := range as.stats {
					if have.Sym == st.Sym {
						dup = true
						break
					}
				}
				if !dup {
					as.stats = append(as.stats, st)
				}
			}
		}
	}
	return sig
}

// Admit reports whether the pair must be verified. It returns false
// only when the derived-similarity upper bound lies strictly below Tλ,
// i.e. when verification would certainly classify the pair U. Pairs
// with a missing signature on either side are always admitted.
func (f *PreFilter) Admit(p verify.Pair) bool {
	f.enumerated.Add(1)
	f.mu.RLock()
	s1, ok1 := f.sigs[p.A]
	s2, ok2 := f.sigs[p.B]
	f.mu.RUnlock()
	if !ok1 || !ok2 {
		return true
	}
	vp := f.vecs.Get().(*[]float64)
	hi := *vp
	for k := range f.bounds {
		hi[k] = f.attrUB(k, &s1.attrs[k], &s2.attrs[k])
	}
	cellUB := f.model.SimilarityUpperBound(hi)
	f.vecs.Put(vp)
	if cellUB < 0 {
		cellUB = 0
	}
	if f.derive.SimUpperBound(cellUB, f.model) < f.lambda {
		f.filtered.Add(1)
		return false
	}
	return true
}

// attrUB bounds the Eq. 5 attribute similarity over every alternative
// pair of the two tuples: the expectation is a convex combination of
// value-pair similarities and ⊥ terms, so its maximum term bounds it.
func (f *PreFilter) attrUB(k int, a, b *attrSig) float64 {
	best := 0.0
	if a.hasNull && b.hasNull && f.nulls.NullNull > best {
		best = f.nulls.NullNull
	}
	if ((a.hasNull && len(b.stats) > 0) || (b.hasNull && len(a.stats) > 0)) && f.nulls.NullValue > best {
		best = f.nulls.NullValue
	}
	if len(a.stats) > 0 && len(b.stats) > 0 {
		bound := f.bounds[k]
		if bound == nil {
			return 1
		}
		for _, sa := range a.stats {
			for _, sb := range b.stats {
				if v := bound(sa, sb); v > best {
					if v >= 1 {
						return 1
					}
					best = v
				}
			}
		}
	}
	if best > 1 {
		best = 1
	}
	return best
}

// FilterStats are the cumulative counters of one PreFilter.
type FilterStats struct {
	// Enumerated counts the pairs presented to Admit.
	Enumerated uint64
	// Filtered counts the pairs rejected (provably class U).
	Filtered uint64
}

// Stats returns a snapshot of the counters.
func (f *PreFilter) Stats() FilterStats {
	return FilterStats{
		Enumerated: f.enumerated.Load(),
		Filtered:   f.filtered.Load(),
	}
}
