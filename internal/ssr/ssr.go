package ssr

import (
	"sort"

	"probdedup/internal/fusion"
	"probdedup/internal/keys"
	"probdedup/internal/pdb"
	"probdedup/internal/rank"
	"probdedup/internal/verify"
)

// Method reduces the search space of an x-relation to candidate pairs.
// Every method of this package also implements Streamer (see stream.go)
// so candidates can be enumerated without materializing the set.
type Method interface {
	// Name identifies the method in reports and benchmarks.
	Name() string
	// Candidates returns the set of tuple pairs to compare.
	Candidates(xr *pdb.XRelation) verify.PairSet
}

// AllPairs returns every unordered tuple pair of the relation (the
// universe against which reduction is measured).
func AllPairs(xr *pdb.XRelation) []verify.Pair {
	var out []verify.Pair
	for i := 0; i < len(xr.Tuples); i++ {
		for j := i + 1; j < len(xr.Tuples); j++ {
			out = append(out, verify.NewPair(xr.Tuples[i].ID, xr.Tuples[j].ID))
		}
	}
	return out
}

// CrossProduct is the exhaustive baseline: compare everything with
// everything.
type CrossProduct struct{}

// Name implements Method.
func (CrossProduct) Name() string { return "cross-product" }

// Candidates implements Method.
func (m CrossProduct) Candidates(xr *pdb.XRelation) verify.PairSet {
	return collectPairs(m, xr)
}

// sortedIDsByKey sorts the tuples of a certain relation by their key value
// (stable on insertion order) and returns the tuple IDs in sorted order —
// the core of the classical sorted neighborhood method.
func sortedIDsByKey(r *pdb.Relation, def keys.Def) []string {
	ents := make([]KeyEntry, len(r.Tuples))
	for i, t := range r.Tuples {
		ents[i] = KeyEntry{Key: def.FromCertainTuple(t), ID: t.ID}
	}
	return sortEntryIDs(ents)
}

// sortedIDsByResolvedKey orders the x-relation by conflict-resolved keys
// computed tuple by tuple — equivalent to resolving the whole relation
// first (fusion.ResolveRelation) and sorting it, without materializing
// the certain relation.
func sortedIDsByResolvedKey(xr *pdb.XRelation, strategy fusion.Strategy, def keys.Def) []string {
	ents := make([]KeyEntry, len(xr.Tuples))
	for i, x := range xr.Tuples {
		ents[i] = KeyEntry{Key: def.FromValues(strategy.ResolveX(x)), ID: x.ID}
	}
	return sortEntryIDs(ents)
}

// sortEntryIDs stable-sorts the entries by key and projects the IDs.
func sortEntryIDs(ents []KeyEntry) []string {
	sort.SliceStable(ents, func(a, b int) bool { return ents[a].Key < ents[b].Key })
	ids := make([]string, len(ents))
	for i, e := range ents {
		ids[i] = e.ID
	}
	return ids
}

// WorldSelection chooses which possible worlds a multi-pass method visits.
type WorldSelection int

const (
	// AllWorlds enumerates every possible world (guarded by MaxWorlds).
	AllWorlds WorldSelection = iota
	// TopWorlds takes the K most probable worlds.
	TopWorlds
	// DissimilarWorlds takes K highly probable, pairwise dissimilar worlds
	// (Sec. V-A.1's careful selection).
	DissimilarWorlds
)

// SNMMultiPass is approach V-A.1: one sorted-neighborhood pass per selected
// possible world. Only worlds containing all tuples are considered (tuple
// membership must not influence detection), which the conditioned world
// space guarantees.
type SNMMultiPass struct {
	Key    keys.Def
	Window int
	// Select picks the world subset; K bounds TopWorlds/DissimilarWorlds.
	Select WorldSelection
	K      int
	// MaxWorlds guards full enumeration (default 100000).
	MaxWorlds int
}

// Name implements Method.
func (m SNMMultiPass) Name() string {
	switch m.Select {
	case TopWorlds:
		return "snm-multipass-top"
	case DissimilarWorlds:
		return "snm-multipass-dissimilar"
	default:
		return "snm-multipass-all"
	}
}

// Candidates implements Method.
func (m SNMMultiPass) Candidates(xr *pdb.XRelation) verify.PairSet {
	return collectPairs(m, xr)
}

// SNMCertain is approach V-A.2: create certain key values by conflict
// resolution, then run the classical single-pass sorted neighborhood
// method. With the MostProbable strategy this equals a single pass over the
// most probable world, so its matchings are a subset of SNMMultiPass's.
type SNMCertain struct {
	Key      keys.Def
	Window   int
	Strategy fusion.Strategy
}

// Name implements Method.
func (m SNMCertain) Name() string { return "snm-certain" }

// Candidates implements Method.
func (m SNMCertain) Candidates(xr *pdb.XRelation) verify.PairSet {
	return collectPairs(m, xr)
}

// SNMAlternatives is approach V-A.3 (Figs. 11–12): every tuple contributes
// one key value per alternative (identical key values of one tuple merge);
// the combined entry list is sorted; of neighboring entries referencing the
// same tuple all but one are omitted; the window then slides over the
// remaining entries while an executed-matching set prevents matching a pair
// twice.
type SNMAlternatives struct {
	Key    keys.Def
	Window int
}

// Name implements Method.
func (m SNMAlternatives) Name() string { return "snm-alternatives" }

// SortedEntries exposes the sorted (key, tupleID) list after the
// same-tuple-neighbor omission — the right-hand side of Fig. 11 — mainly
// for tests and the experiment harness.
func (m SNMAlternatives) SortedEntries(xr *pdb.XRelation) []KeyEntry {
	var ents []KeyEntry
	for _, x := range xr.Tuples {
		for _, kp := range m.Key.XTupleKeyDist(x, false) {
			ents = append(ents, KeyEntry{Key: kp.Key, ID: x.ID})
		}
	}
	sort.SliceStable(ents, func(a, b int) bool { return ents[a].Key < ents[b].Key })
	// Omit entries whose predecessor references the same tuple.
	kept := ents[:0]
	for _, e := range ents {
		if n := len(kept); n > 0 && kept[n-1].ID == e.ID {
			continue
		}
		kept = append(kept, e)
	}
	return kept
}

// Candidates implements Method.
func (m SNMAlternatives) Candidates(xr *pdb.XRelation) verify.PairSet {
	return collectPairs(m, xr)
}

// KeyEntry is one (key value, tuple) row of the sorting-alternatives
// relation.
type KeyEntry struct {
	Key string
	ID  string
}

// SNMRanked is approach V-A.4 (Fig. 13): keep the key values uncertain and
// order the tuples with a probabilistic ranking function (expected rank,
// O(n log n)), then window as usual. Each tuple occurs exactly once in the
// sorted sequence.
type SNMRanked struct {
	Key    keys.Def
	Window int
	// Strategy selects the ordering: ExpectedRank (default, the paper's
	// ranking-function approach), MedianKey (robust variant) or ModeKey.
	Strategy RankStrategy
}

// Name implements Method.
func (m SNMRanked) Name() string {
	if m.Strategy == ExpectedRank {
		return "snm-ranked"
	}
	return "snm-ranked-" + m.Strategy.String()
}

// RankedIDs returns the tuple IDs in rank order (Fig. 13 right for the
// default expected-rank strategy).
func (m SNMRanked) RankedIDs(xr *pdb.XRelation) []string {
	items := make([]rank.Item, len(xr.Tuples))
	for i, x := range xr.Tuples {
		items[i] = rank.Item{ID: x.ID, Keys: m.Key.XTupleKeyDist(x, true)}
	}
	var order []int
	switch m.Strategy {
	case MedianKey:
		order = rank.MedianOrder(items)
	case ModeKey:
		order = rank.ModeOrder(items)
	default:
		order = rank.Order(items)
	}
	ids := make([]string, len(order))
	for i, idx := range order {
		ids[i] = items[idx].ID
	}
	return ids
}

// Candidates implements Method.
func (m SNMRanked) Candidates(xr *pdb.XRelation) verify.PairSet {
	return collectPairs(m, xr)
}

// BlockingCertain is classical blocking over conflict-resolved certain key
// values (Sec. V-B).
type BlockingCertain struct {
	Key      keys.Def
	Strategy fusion.Strategy
}

// Name implements Method.
func (m BlockingCertain) Name() string { return "blocking-certain" }

// Candidates implements Method.
func (m BlockingCertain) Candidates(xr *pdb.XRelation) verify.PairSet {
	return collectPairs(m, xr)
}

// BlockingAlternatives inserts an x-tuple into the block of every key value
// of every alternative (Fig. 14). Multiple insertions of one tuple into the
// same block collapse to one.
type BlockingAlternatives struct {
	Key keys.Def
}

// Name implements Method.
func (m BlockingAlternatives) Name() string { return "blocking-alternatives" }

// Blocks exposes the block structure (key value → member tuple IDs, each
// member once) for tests and the experiment harness.
func (m BlockingAlternatives) Blocks(xr *pdb.XRelation) map[string][]string {
	blocks := map[string][]string{}
	seen := map[string]map[string]bool{}
	for _, x := range xr.Tuples {
		for _, kp := range m.Key.XTupleKeyDist(x, false) {
			if seen[kp.Key] == nil {
				seen[kp.Key] = map[string]bool{}
			}
			if seen[kp.Key][x.ID] {
				continue
			}
			seen[kp.Key][x.ID] = true
			blocks[kp.Key] = append(blocks[kp.Key], x.ID)
		}
	}
	return blocks
}

// Candidates implements Method.
func (m BlockingAlternatives) Candidates(xr *pdb.XRelation) verify.PairSet {
	return collectPairs(m, xr)
}

// BlockingCluster partitions tuples into K blocks by clustering their
// uncertain key values (UK-means over expected key positions), the
// clustering option of Sec. V-B.
type BlockingCluster struct {
	Key keys.Def
	// K is the number of blocks (default: n/8, at least 2).
	K int
	// Seed makes the clustering deterministic.
	Seed int64
	// MaxDrift bounds the staleness of the incremental index: the
	// fraction of residents that may be placed by nearest-centroid
	// assignment (instead of a full re-clustering) before the index
	// reseals its epoch in-band. Zero means the default of 0.25. The
	// batch path ignores it.
	MaxDrift float64
}

// Name implements Method.
func (m BlockingCluster) Name() string { return "blocking-cluster" }

// Candidates implements Method.
func (m BlockingCluster) Candidates(xr *pdb.XRelation) verify.PairSet {
	return collectPairs(m, xr)
}

// Measure computes the reduction quality of a method against ground
// truth. The method's candidates are streamed, not materialized, and
// the universe size is computed arithmetically.
func Measure(m Method, xr *pdb.XRelation, truth verify.PairSet) verify.Reduction {
	cands, trueIn := 0, 0
	StreamOf(m).EnumeratePairs(xr, func(p verify.Pair) bool {
		cands++
		if truth[p] {
			trueIn++
		}
		return true
	})
	return verify.Reduction{
		CandidatePairs:   cands,
		TotalPairs:       TotalPairs(len(xr.Tuples)),
		TrueInCandidates: trueIn,
		TrueTotal:        len(truth),
	}
}
