package ssr

import (
	"testing"

	"probdedup/internal/dataset"
	"probdedup/internal/keys"
	"probdedup/internal/pdb"
	"probdedup/internal/verify"
)

// allMethods instantiates every reduction method for property testing.
func allMethods(def keys.Def) []Method {
	return []Method{
		CrossProduct{},
		SNMCertain{Key: def, Window: 5},
		SNMAlternatives{Key: def, Window: 5},
		SNMRanked{Key: def, Window: 5},
		SNMRanked{Key: def, Window: 5, Strategy: MedianKey},
		SNMRanked{Key: def, Window: 5, Strategy: ModeKey},
		SNMMultiPass{Key: def, Window: 5, Select: TopWorlds, K: 4},
		SNMMultiPass{Key: def, Window: 5, Select: DissimilarWorlds, K: 4},
		BlockingCertain{Key: def},
		BlockingAlternatives{Key: def},
		BlockingCluster{Key: def, K: 6, Seed: 3},
		NewFilter(SNMAlternatives{Key: def, Window: 5}, Pruning{MaxDiff: map[int]int{0: 3}}),
	}
}

// TestQuickMethodContracts checks, on random corpora, that every method:
// emits canonical pairs referencing existing tuples, never self-pairs,
// never exceeds the cross product, and is deterministic.
func TestQuickMethodContracts(t *testing.T) {
	def := keys.NewDef(keys.Part{Attr: 0, Prefix: 3}, keys.Part{Attr: 1, Prefix: 2})
	for seed := int64(0); seed < 8; seed++ {
		d := dataset.Generate(dataset.DefaultConfig(25, seed))
		u := d.Union()
		ids := map[string]bool{}
		for _, x := range u.Tuples {
			ids[x.ID] = true
		}
		full := CrossProduct{}.Candidates(u)
		for _, m := range allMethods(def) {
			c1 := m.Candidates(u)
			for p := range c1 {
				if p.A == p.B {
					t.Fatalf("seed %d %s: self pair %v", seed, m.Name(), p)
				}
				if p.A > p.B {
					t.Fatalf("seed %d %s: non-canonical pair %v", seed, m.Name(), p)
				}
				if !ids[p.A] || !ids[p.B] {
					t.Fatalf("seed %d %s: unknown tuple in %v", seed, m.Name(), p)
				}
				if !full[p] {
					t.Fatalf("seed %d %s: pair %v outside cross product", seed, m.Name(), p)
				}
			}
			c2 := m.Candidates(u)
			if len(c1) != len(c2) {
				t.Fatalf("seed %d %s: nondeterministic sizes %d vs %d", seed, m.Name(), len(c1), len(c2))
			}
			for p := range c1 {
				if !c2[p] {
					t.Fatalf("seed %d %s: nondeterministic pair set", seed, m.Name())
				}
			}
		}
	}
}

// TestQuickSNMWindowMonotone checks that enlarging the window never removes
// candidates for the single-order SNM variants.
func TestQuickSNMWindowMonotone(t *testing.T) {
	def := keys.NewDef(keys.Part{Attr: 0, Prefix: 3}, keys.Part{Attr: 1, Prefix: 2})
	for seed := int64(0); seed < 5; seed++ {
		d := dataset.Generate(dataset.DefaultConfig(20, seed))
		u := d.Union()
		for _, mk := range []func(w int) Method{
			func(w int) Method { return SNMCertain{Key: def, Window: w} },
			func(w int) Method { return SNMAlternatives{Key: def, Window: w} },
			func(w int) Method { return SNMRanked{Key: def, Window: w} },
			func(w int) Method { return SNMRanked{Key: def, Window: w, Strategy: MedianKey} },
		} {
			small := mk(3).Candidates(u)
			large := mk(6).Candidates(u)
			name := mk(3).Name()
			for p := range small {
				if !large[p] {
					t.Fatalf("seed %d %s: window 6 lost pair %v of window 3", seed, name, p)
				}
			}
		}
	}
}

// TestQuickMultiPassMonotoneInWorlds checks that more top worlds never
// reduce the candidate set.
func TestQuickMultiPassMonotoneInWorlds(t *testing.T) {
	def := keys.NewDef(keys.Part{Attr: 0, Prefix: 3}, keys.Part{Attr: 1, Prefix: 2})
	for seed := int64(0); seed < 5; seed++ {
		d := dataset.Generate(dataset.DefaultConfig(15, seed))
		u := d.Union()
		prev := verify.PairSet{}
		for _, k := range []int{1, 2, 4, 8} {
			cur := SNMMultiPass{Key: def, Window: 4, Select: TopWorlds, K: k}.Candidates(u)
			for p := range prev {
				if !cur[p] {
					t.Fatalf("seed %d: k=%d lost pair %v", seed, k, p)
				}
			}
			prev = cur
		}
	}
}

// TestBlockingPartitions checks that certain blocking partitions tuples:
// every tuple appears in exactly one block, so blocks cover disjoint pairs.
func TestBlockingPartitions(t *testing.T) {
	def := keys.NewDef(keys.Part{Attr: 0, Prefix: 2})
	xr := pdb.NewXRelation("X", "name", "job")
	for _, n := range []string{"Anna", "Anton", "Bert", "Berta", "Cleo"} {
		xr.Append(pdb.NewXTuple("t"+n, pdb.NewAlt(1, n, "job")))
	}
	cands := BlockingCertain{Key: def}.Candidates(xr)
	// Blocks: An{Anna,Anton}, Be{Bert,Berta}, Cl{Cleo} → exactly 2 pairs.
	if len(cands) != 2 || !cands.Has("tAnna", "tAnton") || !cands.Has("tBert", "tBerta") {
		t.Fatalf("blocking pairs %v", cands.Sorted())
	}
}
