package ssr

import (
	"errors"
	"fmt"
	"sort"

	"probdedup/internal/fusion"
	"probdedup/internal/keys"
	"probdedup/internal/pdb"
	"probdedup/internal/verify"
)

// PairDelta is one change to a maintained candidate pair set: a pair
// that entered the set, or (Dropped) a pair that left it. SNM-style
// indexes produce drops when a later insertion pushes two neighbors
// out of the window; blocking indexes only drop pairs on Remove.
type PairDelta struct {
	Pair verify.Pair
	// Dropped marks a pair that left the candidate set.
	Dropped bool
}

// IncrementalIndex maintains a reduction method's candidate pair set
// under tuple insertion and removal, without re-enumerating the search
// space. The contract is exact, not approximate: after any sequence of
// Insert and Remove calls, the accumulated set (apply adds, apply
// drops) equals the batch candidate set of the method over the
// resident tuples in their insertion order — Insert-one-at-a-time is
// equivalent to Candidates on the same relation.
//
// Structural updates are applied unconditionally; a yield returning
// false only truncates delta delivery, it does not roll the index
// back. Indexes are not safe for concurrent use; the detection engine
// serializes access.
type IncrementalIndex interface {
	// Insert registers the tuple and yields the candidate pair deltas
	// it causes: new pairs with resident tuples, plus (for windowed
	// methods) resident pairs the insertion pushed out of the window.
	// It returns false if a yield call stopped delivery early.
	Insert(x *pdb.XTuple, yield func(PairDelta) bool) bool
	// Remove unregisters the tuple and yields the deltas: a drop for
	// every candidate pair involving id, plus (for windowed methods)
	// resident pairs the removal pulled back into the window. Removing
	// an unknown id is a no-op that yields nothing.
	Remove(id string, yield func(PairDelta) bool) bool
	// Len is the resident tuple count.
	Len() int
}

// Staleness reports how far a bounded-staleness index has drifted from
// its last exact reseal.
type Staleness struct {
	// Epoch counts the epochs sealed so far.
	Epoch int
	// Residents is the current resident tuple count.
	Residents int
	// Drifted counts the operations placed by stale decisions since
	// the last reseal.
	Drifted int
	// Bound is the drift fraction (of Residents) that forces an
	// in-band reseal; Drifted/Residents never exceeds it after an
	// operation completes.
	Bound float64
}

// EpochIndex is the bounded-staleness tier of the incremental
// contract. An exact-tier IncrementalIndex reproduces the batch
// candidate set after every operation; an EpochIndex is guaranteed to
// match the batch set only at epoch boundaries, immediately after a
// reseal. Between boundaries it places arrivals with cheap stale
// decisions (nearest-centroid assignment against the sealed epoch's
// centroids) and bounds the drift: once more than Bound of the
// residents were placed by stale decisions, the index reseals in-band
// — inside the Insert or Remove that crossed the bound — so epoch
// transitions surface as ordinary pair deltas on the same yield path
// and downstream consumers need no special casing.
type EpochIndex interface {
	IncrementalIndex
	// Epoch is the number of epochs sealed so far.
	Epoch() int
	// Staleness reports the current drift relative to the bound.
	Staleness() Staleness
	// Reseal forces an epoch boundary now: the index recomputes its
	// placement decisions from scratch — batch-identical over the
	// residents in insertion order — and yields the net pair deltas.
	// After Reseal the maintained set equals the batch candidate set
	// of the residents.
	Reseal(yield func(PairDelta) bool) bool
}

// BatchDelta is one net candidate-pair change of a batch insertion.
// Source is the batch position (0-based) of the insertion that
// settled the pair's final membership — the attribution callers need
// to map a delta (or a failure while applying it) back to a tuple of
// the batch.
type BatchDelta struct {
	PairDelta
	Source int
}

// InsertBatch registers the tuples with the index in order and
// returns the net pair deltas of the whole batch: intra-batch churn
// cancels out (a pair admitted by one insertion and pushed out of a
// sorted-neighborhood window by a later one never surfaces), and each
// surviving pair appears exactly once, in first-affected order.
// Folding the result into a candidate set yields exactly the state
// that folding every Insert's deltas one at a time would — the
// equivalence the incremental engine's determinism tests prove — but
// the deduplicated form lets the expensive downstream verification
// fan out over distinct pairs only.
//
// Structural updates are applied unconditionally for every tuple;
// the caller is expected to have validated the batch first.
func InsertBatch(idx IncrementalIndex, xs []*pdb.XTuple) []BatchDelta {
	// Per pair, deltas alternate add/drop (the index maintains an
	// exact set), so an even delta count nets to no change and an odd
	// count nets to the first (= last) kind.
	type churn struct {
		firstDropped bool
		count        int
		source       int
	}
	seen := map[verify.Pair]*churn{}
	var order []verify.Pair
	for i, x := range xs {
		idx.Insert(x, func(pd PairDelta) bool {
			c := seen[pd.Pair]
			if c == nil {
				c = &churn{firstDropped: pd.Dropped}
				seen[pd.Pair] = c
				order = append(order, pd.Pair)
			}
			c.count++
			c.source = i
			return true
		})
	}
	out := make([]BatchDelta, 0, len(order))
	for _, p := range order {
		c := seen[p]
		if c.count%2 == 0 {
			continue
		}
		out = append(out, BatchDelta{
			PairDelta: PairDelta{Pair: p, Dropped: c.firstDropped},
			Source:    c.source,
		})
	}
	return out
}

// IncrementalMethod is a Method that can maintain its candidate set
// online. IncrementalOf dispatches to it, so user-defined methods can
// opt into the incremental detection engine.
type IncrementalMethod interface {
	Method
	// Incremental returns a fresh, empty index maintaining this
	// method's candidate set.
	Incremental() (IncrementalIndex, error)
}

// ErrNotIncremental reports that a reduction method cannot maintain
// its candidate set online. IncrementalOf wraps it with the concrete
// method's name; match it with errors.Is.
var ErrNotIncremental = errors.New("does not support incremental maintenance")

// IncrementalOf returns an empty incremental index for the method. A
// nil method maintains the cross product, mirroring the detection
// engine's default. Every built-in reduction method is incremental:
// most on the exact tier (the maintained set equals the batch
// candidate set after every operation), BlockingCluster on the
// bounded-staleness tier (equality holds at epoch boundaries; see
// EpochIndex). Third-party methods that do not implement
// IncrementalMethod get an error wrapping ErrNotIncremental.
func IncrementalOf(m Method) (IncrementalIndex, error) {
	if m == nil {
		return CrossProduct{}.incremental(), nil
	}
	if im, ok := m.(IncrementalMethod); ok {
		return im.Incremental()
	}
	return nil, fmt.Errorf("ssr: reduction %q %w", m.Name(), ErrNotIncremental)
}

// ---- Cross product ----

// crossIndex pairs every arriving tuple with every resident.
type crossIndex struct {
	ids []string
	pos map[string]int
}

func (CrossProduct) incremental() *crossIndex {
	return &crossIndex{pos: map[string]int{}}
}

// Incremental implements IncrementalMethod.
func (m CrossProduct) Incremental() (IncrementalIndex, error) { return m.incremental(), nil }

func (c *crossIndex) Insert(x *pdb.XTuple, yield func(PairDelta) bool) bool {
	c.pos[x.ID] = len(c.ids)
	c.ids = append(c.ids, x.ID)
	for _, id := range c.ids[:len(c.ids)-1] {
		if !yield(PairDelta{Pair: verify.NewPair(id, x.ID)}) {
			return false
		}
	}
	return true
}

func (c *crossIndex) Remove(id string, yield func(PairDelta) bool) bool {
	p, ok := c.pos[id]
	if !ok {
		return true
	}
	c.ids = append(c.ids[:p], c.ids[p+1:]...)
	delete(c.pos, id)
	for i := p; i < len(c.ids); i++ {
		c.pos[c.ids[i]] = i
	}
	for _, other := range c.ids {
		if !yield(PairDelta{Pair: verify.NewPair(other, id), Dropped: true}) {
			return false
		}
	}
	return true
}

func (c *crossIndex) Len() int { return len(c.ids) }

// ---- Blocking over conflict-resolved keys ----

// blockingCertainIndex is the persistent key→bucket map of
// BlockingCertain: a tuple joins exactly one block and pairs with its
// co-members; blocks only grow under insertion, so no pair ever drops
// until its tuple is removed.
type blockingCertainIndex struct {
	key      keys.Def
	strategy fusion.Strategy
	blocks   map[string][]string
	keyOf    map[string]string
}

// Incremental implements IncrementalMethod.
func (m BlockingCertain) Incremental() (IncrementalIndex, error) {
	strategy := m.Strategy
	if strategy == nil {
		strategy = fusion.MostProbable{}
	}
	return &blockingCertainIndex{
		key:      m.Key,
		strategy: strategy,
		blocks:   map[string][]string{},
		keyOf:    map[string]string{},
	}, nil
}

func (b *blockingCertainIndex) Insert(x *pdb.XTuple, yield func(PairDelta) bool) bool {
	k := b.key.FromValues(b.strategy.ResolveX(x))
	members := b.blocks[k]
	b.blocks[k] = append(members, x.ID)
	b.keyOf[x.ID] = k
	for _, id := range members {
		if !yield(PairDelta{Pair: verify.NewPair(id, x.ID)}) {
			return false
		}
	}
	return true
}

func (b *blockingCertainIndex) Remove(id string, yield func(PairDelta) bool) bool {
	k, ok := b.keyOf[id]
	if !ok {
		return true
	}
	delete(b.keyOf, id)
	b.blocks[k] = removeID(b.blocks[k], id)
	if len(b.blocks[k]) == 0 {
		delete(b.blocks, k)
	}
	for _, other := range b.blocks[k] {
		if !yield(PairDelta{Pair: verify.NewPair(other, id), Dropped: true}) {
			return false
		}
	}
	return true
}

func (b *blockingCertainIndex) Len() int { return len(b.keyOf) }

// removeID deletes the first occurrence of id, preserving order.
func removeID(members []string, id string) []string {
	for i, m := range members {
		if m == id {
			return append(members[:i], members[i+1:]...)
		}
	}
	return members
}

// ---- Blocking with per-alternative keys ----

// blockingAlternativesIndex maintains Fig. 14's multi-membership
// blocks: a tuple joins the block of every alternative key value and
// pairs once with every tuple sharing at least one block. Per-insert
// deduplication replaces the batch path's canonical-block rule.
type blockingAlternativesIndex struct {
	key    keys.Def
	blocks map[string][]string
	keysOf map[string][]string
}

// Incremental implements IncrementalMethod.
func (m BlockingAlternatives) Incremental() (IncrementalIndex, error) {
	return &blockingAlternativesIndex{
		key:    m.Key,
		blocks: map[string][]string{},
		keysOf: map[string][]string{},
	}, nil
}

// blockKeys returns the distinct block keys of the tuple in
// deterministic order.
func (b *blockingAlternativesIndex) blockKeys(x *pdb.XTuple) []string {
	seen := map[string]bool{}
	var ks []string
	for _, kp := range b.key.XTupleKeyDist(x, false) {
		if !seen[kp.Key] {
			seen[kp.Key] = true
			ks = append(ks, kp.Key)
		}
	}
	sort.Strings(ks)
	return ks
}

func (b *blockingAlternativesIndex) Insert(x *pdb.XTuple, yield func(PairDelta) bool) bool {
	ks := b.blockKeys(x)
	b.keysOf[x.ID] = ks
	paired := map[string]bool{}
	var counterparts []string
	for _, k := range ks {
		for _, id := range b.blocks[k] {
			if !paired[id] {
				paired[id] = true
				counterparts = append(counterparts, id)
			}
		}
		b.blocks[k] = append(b.blocks[k], x.ID)
	}
	for _, id := range counterparts {
		if !yield(PairDelta{Pair: verify.NewPair(id, x.ID)}) {
			return false
		}
	}
	return true
}

func (b *blockingAlternativesIndex) Remove(id string, yield func(PairDelta) bool) bool {
	ks, ok := b.keysOf[id]
	if !ok {
		return true
	}
	delete(b.keysOf, id)
	dropped := map[string]bool{}
	var counterparts []string
	for _, k := range ks {
		b.blocks[k] = removeID(b.blocks[k], id)
		for _, other := range b.blocks[k] {
			if !dropped[other] {
				dropped[other] = true
				counterparts = append(counterparts, other)
			}
		}
		if len(b.blocks[k]) == 0 {
			delete(b.blocks, k)
		}
	}
	for _, other := range counterparts {
		if !yield(PairDelta{Pair: verify.NewPair(other, id), Dropped: true}) {
			return false
		}
	}
	return true
}

func (b *blockingAlternativesIndex) Len() int { return len(b.keysOf) }

// ---- Sorted neighborhood over conflict-resolved keys ----

// snmCertainIndex keeps the conflict-resolved key entries in sorted
// order (ties by insertion order, matching the batch method's stable
// sort) and maintains the exact window pair set: inserting a tuple
// adds its window neighbors and drops the straddling pairs its
// insertion pushed exactly one position out of the window; removing a
// tuple drops its window pairs and re-adds the straddling pairs the
// removal pulled back in. Insertion is a binary search plus an O(n)
// slice shift — cheap in practice (a memmove of small structs) but
// not logarithmic; see the package benchmarks.
type snmCertainIndex struct {
	key      keys.Def
	strategy fusion.Strategy
	window   int
	entries  []KeyEntry
	keyOf    map[string]string
}

// Incremental implements IncrementalMethod.
func (m SNMCertain) Incremental() (IncrementalIndex, error) {
	strategy := m.Strategy
	if strategy == nil {
		strategy = fusion.MostProbable{}
	}
	w := m.Window
	if w < 2 {
		w = 2 // mirror windowStream's minimum
	}
	return &snmCertainIndex{
		key:      m.Key,
		strategy: strategy,
		window:   w,
		keyOf:    map[string]string{},
	}, nil
}

func (s *snmCertainIndex) Len() int { return len(s.entries) }

// position locates the entry of id via its remembered key: binary
// search to the key's run, then a short scan.
func (s *snmCertainIndex) position(id string) (int, bool) {
	k, ok := s.keyOf[id]
	if !ok {
		return 0, false
	}
	i := sort.Search(len(s.entries), func(i int) bool { return s.entries[i].Key >= k })
	for ; i < len(s.entries) && s.entries[i].Key == k; i++ {
		if s.entries[i].ID == id {
			return i, true
		}
	}
	return 0, false
}

func (s *snmCertainIndex) Insert(x *pdb.XTuple, yield func(PairDelta) bool) bool {
	k := s.key.FromValues(s.strategy.ResolveX(x))
	// Upper bound: after all equal keys, reproducing the stable sort of
	// the batch method for the same arrival order.
	p := sort.Search(len(s.entries), func(i int) bool { return s.entries[i].Key > k })
	w := s.window

	// Deltas are computed against the pre-insertion ordering, then the
	// entry is spliced in, then the deltas are delivered (structural
	// updates must not depend on the yield outcome).
	var deltas []PairDelta
	// Straddling pairs at distance exactly w-1 move to distance w: out.
	for a := p - w + 1; a <= p-1; a++ {
		b := a + w - 1
		if a < 0 || b >= len(s.entries) {
			continue
		}
		deltas = append(deltas, PairDelta{Pair: verify.NewPair(s.entries[a].ID, s.entries[b].ID), Dropped: true})
	}
	// The new tuple pairs with its w-1 predecessors and successors.
	for a := p - 1; a >= 0 && a >= p-w+1; a-- {
		deltas = append(deltas, PairDelta{Pair: verify.NewPair(s.entries[a].ID, x.ID)})
	}
	for b := p; b < len(s.entries) && b <= p+w-2; b++ {
		deltas = append(deltas, PairDelta{Pair: verify.NewPair(x.ID, s.entries[b].ID)})
	}

	s.entries = append(s.entries, KeyEntry{})
	copy(s.entries[p+1:], s.entries[p:])
	s.entries[p] = KeyEntry{Key: k, ID: x.ID}
	s.keyOf[x.ID] = k

	for _, d := range deltas {
		if !yield(d) {
			return false
		}
	}
	return true
}

func (s *snmCertainIndex) Remove(id string, yield func(PairDelta) bool) bool {
	p, ok := s.position(id)
	if !ok {
		return true
	}
	w := s.window

	var deltas []PairDelta
	// Every window pair of the removed tuple drops.
	for j := p - w + 1; j <= p+w-1; j++ {
		if j == p || j < 0 || j >= len(s.entries) {
			continue
		}
		deltas = append(deltas, PairDelta{Pair: verify.NewPair(s.entries[j].ID, id), Dropped: true})
	}
	// Straddling pairs at distance exactly w move to distance w-1: in.
	for a := p - w + 1; a <= p-1; a++ {
		b := a + w
		if a < 0 || b >= len(s.entries) {
			continue
		}
		deltas = append(deltas, PairDelta{Pair: verify.NewPair(s.entries[a].ID, s.entries[b].ID)})
	}

	s.entries = append(s.entries[:p], s.entries[p+1:]...)
	delete(s.keyOf, id)

	for _, d := range deltas {
		if !yield(d) {
			return false
		}
	}
	return true
}

// ---- Length-pruned composition ----

// filteredIndex wraps an inner incremental index with the length
// filter of Filter/Pruning: per-tuple length profiles are computed
// once at insertion, and deltas of pairs the filter rejects are
// suppressed in both directions, so the maintained set equals the
// batch Filter candidates.
type filteredIndex struct {
	inner    IncrementalIndex
	prune    Pruning
	profiles map[string]map[int]map[int]bool
}

// Incremental implements IncrementalMethod: the composition is
// incremental exactly when the inner method is.
func (f Filter) Incremental() (IncrementalIndex, error) {
	inner, err := IncrementalOf(f.Inner)
	if err != nil {
		return nil, fmt.Errorf("ssr: %s: %w", f.Name(), err)
	}
	return &filteredIndex{
		inner:    inner,
		prune:    f.Prune,
		profiles: map[string]map[int]map[int]bool{},
	}, nil
}

// profile computes the per-attribute length profile of one tuple —
// the unit of Pruning.lengthProfiles.
func (f *filteredIndex) profile(x *pdb.XTuple) map[int]map[int]bool {
	xr := pdb.XRelation{Tuples: []*pdb.XTuple{x}}
	return f.prune.lengthProfiles(&xr)[0]
}

// keep reports whether the filter admits the pair.
func (f *filteredIndex) keep(p verify.Pair) bool {
	pa, oka := f.profiles[p.A]
	pb, okb := f.profiles[p.B]
	if !oka || !okb {
		return false
	}
	return compatibleLengths(f.prune.MaxDiff, pa, pb)
}

// relay forwards admitted deltas only.
func (f *filteredIndex) relay(yield func(PairDelta) bool) func(PairDelta) bool {
	return func(d PairDelta) bool {
		if !f.keep(d.Pair) {
			return true
		}
		return yield(d)
	}
}

func (f *filteredIndex) Insert(x *pdb.XTuple, yield func(PairDelta) bool) bool {
	f.profiles[x.ID] = f.profile(x)
	return f.inner.Insert(x, f.relay(yield))
}

func (f *filteredIndex) Remove(id string, yield func(PairDelta) bool) bool {
	// The profile is dropped after delivery: drops of pairs involving
	// id must still see its profile to be admitted consistently.
	ok := f.inner.Remove(id, f.relay(yield))
	delete(f.profiles, id)
	return ok
}

func (f *filteredIndex) Len() int { return f.inner.Len() }

// Interface conformance checks.
var (
	_ IncrementalMethod = CrossProduct{}
	_ IncrementalMethod = SNMCertain{}
	_ IncrementalMethod = BlockingCertain{}
	_ IncrementalMethod = BlockingAlternatives{}
	_ IncrementalMethod = Filter{}
)
