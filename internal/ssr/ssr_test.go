package ssr

import (
	"testing"

	"probdedup/internal/fusion"
	"probdedup/internal/keys"
	"probdedup/internal/paperdata"
	"probdedup/internal/pdb"
	"probdedup/internal/verify"
	"probdedup/internal/worlds"
)

// paperKey is the paper's sorting key: name:3+job:2.
func paperKey() keys.Def {
	return keys.NewDef(keys.Part{Attr: 0, Prefix: 3}, keys.Part{Attr: 1, Prefix: 2})
}

// fig14Key is the paper's blocking key: name:1+job:1.
func fig14Key() keys.Def {
	return keys.NewDef(keys.Part{Attr: 0, Prefix: 1}, keys.Part{Attr: 1, Prefix: 1})
}

func TestAllPairs(t *testing.T) {
	r := paperdata.R34()
	all := AllPairs(r)
	// The paper counts "ten possible x-tuple matchings of ℛ34 (intra- as
	// well as intersource)": C(5,2) = 10.
	if len(all) != 10 {
		t.Fatalf("|all pairs| = %d, want 10", len(all))
	}
}

func TestCrossProduct(t *testing.T) {
	r := paperdata.R34()
	c := CrossProduct{}.Candidates(r)
	if len(c) != 10 {
		t.Fatalf("cross product %d pairs", len(c))
	}
}

func TestWindowPairs(t *testing.T) {
	out := verify.PairSet{}
	windowStream([]string{"a", "b", "c", "d"}, 3, func(p verify.Pair) bool {
		out[p] = true
		return true
	})
	want := verify.NewPairSet(
		verify.Pair{A: "a", B: "b"}, verify.Pair{A: "b", B: "c"},
		verify.Pair{A: "c", B: "d"}, verify.Pair{A: "a", B: "c"},
		verify.Pair{A: "b", B: "d"},
	)
	if len(out) != len(want) {
		t.Fatalf("got %v", out.Sorted())
	}
	for p := range want {
		if !out[p] {
			t.Fatalf("missing %v", p)
		}
	}
	// Window below 2 behaves as 2; same-ID entries never pair, so only the
	// adjacent (a,b) pair remains.
	out2 := verify.PairSet{}
	windowStream([]string{"a", "a", "b"}, 1, func(p verify.Pair) bool {
		out2[p] = true
		return true
	})
	if len(out2) != 1 || !out2.Has("a", "b") {
		t.Fatalf("got %v", out2.Sorted())
	}
}

// E05: multi-pass sorting orders of the two worlds of Fig. 8 match Fig. 9.
func TestE05MultiPassWorldOrders(t *testing.T) {
	xr := paperdata.R34()
	def := paperKey()

	// Find the two specific worlds of Fig. 8 among the conditioned worlds.
	wantI1 := map[string][2]string{
		"t31": {"John", "pilot"}, "t32": {"Tim", "mechanic"},
		"t41": {"Johan", "pianist"}, "t42": {"Tom", "mechanic"}, "t43": {"Sean", "pilot"},
	}
	wantI2 := map[string][2]string{
		"t31": {"Johan", "musician"}, "t32": {"Jim", "mechanic"},
		"t41": {"John", "pilot"}, "t42": {"Tom", "mechanic"}, "t43": {"John", ""},
	}
	var orderI1, orderI2 []string
	worlds.ForEach(xr, true, func(w worlds.World) bool {
		r := worlds.Materialize(xr, w)
		if matchesWorld(r, wantI1) {
			orderI1 = sortedIDsByKey(r, def)
		}
		if matchesWorld(r, wantI2) {
			orderI2 = sortedIDsByKey(r, def)
		}
		return true
	})
	// Fig. 9 left: Johpi t31, Johpi t41, Seapi t43, Timme t32, Tomme t42.
	assertOrder(t, "I1", orderI1, []string{"t31", "t41", "t43", "t32", "t42"})
	// Fig. 9 right: Jimme t32, Joh t43, Johmu t31, Johpi t41, Tomme t42.
	assertOrder(t, "I2", orderI2, []string{"t32", "t43", "t31", "t41", "t42"})
}

func matchesWorld(r *pdb.Relation, want map[string][2]string) bool {
	if len(r.Tuples) != len(want) {
		return false
	}
	for _, tu := range r.Tuples {
		w, ok := want[tu.ID]
		if !ok {
			return false
		}
		name := tu.Attrs[0].String()
		job := tu.Attrs[1].String()
		if job == "⊥" {
			job = ""
		}
		if name != w[0] || job != w[1] {
			return false
		}
	}
	return true
}

func assertOrder(t *testing.T, label string, got, want []string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: order %v, want %v", label, got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: order %v, want %v", label, got, want)
		}
	}
}

// E06: certain keys via the most probable alternatives give Fig. 10's
// sorted order, and the matchings are a subset of the multi-pass ones.
func TestE06CertainKeys(t *testing.T) {
	xr := paperdata.R34()
	m := SNMCertain{Key: paperKey(), Window: 2}
	// Fig. 10 order: Jimba t32, Johpi t31, Johpi t41, Seapi t43, Tomme t42.
	r := fusion.ResolveRelation(fusion.MostProbable{}, xr)
	assertOrder(t, "fig10", sortedIDsByKey(r, paperKey()), []string{"t32", "t31", "t41", "t43", "t42"})

	certain := m.Candidates(xr)
	multi := SNMMultiPass{Key: paperKey(), Window: 2, Select: AllWorlds}.Candidates(xr)
	for p := range certain {
		if !multi[p] {
			t.Fatalf("certain-key matching %v not produced by multi-pass", p)
		}
	}
	if len(certain) >= len(multi) {
		t.Fatalf("certain (%d) should be a strict subset of multi-pass (%d) here", len(certain), len(multi))
	}
}

// E07: sorting alternatives (Figs. 11–12) with window 2 yields exactly the
// paper's five matchings, each once.
func TestE07SortingAlternatives(t *testing.T) {
	xr := paperdata.R34()
	m := SNMAlternatives{Key: paperKey(), Window: 2}

	// The sorted entry list after omission (Fig. 11 right, kept rows).
	ents := m.SortedEntries(xr)
	wantEnts := []KeyEntry{
		{"Jimba", "t32"}, {"Joh", "t43"}, {"Johmu", "t31"},
		{"Johpi", "t41"}, {"Seapi", "t43"}, {"Timme", "t32"}, {"Tomme", "t42"},
	}
	if len(ents) != len(wantEnts) {
		t.Fatalf("entries %v, want %v", ents, wantEnts)
	}
	for i, w := range wantEnts {
		if ents[i] != w {
			t.Fatalf("entry %d = %v, want %v", i, ents[i], w)
		}
	}

	got := m.Candidates(xr)
	want := verify.NewPairSet(
		verify.Pair{A: "t32", B: "t43"},
		verify.Pair{A: "t43", B: "t31"},
		verify.Pair{A: "t31", B: "t41"},
		verify.Pair{A: "t41", B: "t43"},
		verify.Pair{A: "t32", B: "t42"},
	)
	if len(got) != 5 {
		t.Fatalf("matchings %v, want the paper's 5", got.Sorted())
	}
	for p := range want {
		if !got[p] {
			t.Fatalf("missing matching %v; got %v", p, got.Sorted())
		}
	}
}

// E08: ranked uncertain keys order ℛ34 as in Fig. 13.
func TestE08RankedOrder(t *testing.T) {
	m := SNMRanked{Key: paperKey(), Window: 2}
	assertOrder(t, "fig13", m.RankedIDs(paperdata.R34()),
		[]string{"t32", "t31", "t41", "t43", "t42"})
	cands := m.Candidates(paperdata.R34())
	// Window 2 over 5 tuples gives 4 pairs.
	if len(cands) != 4 {
		t.Fatalf("candidates %v", cands.Sorted())
	}
}

// E09: blocking with alternative key values (Fig. 14) produces six blocks
// and exactly three matchings forming the paper's chain structure.
func TestE09BlockingAlternatives(t *testing.T) {
	xr := paperdata.R34()
	m := BlockingAlternatives{Key: fig14Key()}
	blocks := m.Blocks(xr)
	wantBlocks := map[string][]string{
		"Jp": {"t31", "t41"},
		"Jm": {"t31", "t32"},
		"Tm": {"t32", "t42"},
		"Jb": {"t32"},
		"J":  {"t43"},
		"Sp": {"t43"},
	}
	if len(blocks) != len(wantBlocks) {
		t.Fatalf("blocks %v, want %v", blocks, wantBlocks)
	}
	for k, members := range wantBlocks {
		got := blocks[k]
		if len(got) != len(members) {
			t.Fatalf("block %q = %v, want %v", k, got, members)
		}
		seen := map[string]bool{}
		for _, id := range got {
			seen[id] = true
		}
		for _, id := range members {
			if !seen[id] {
				t.Fatalf("block %q = %v, want %v", k, got, members)
			}
		}
	}
	cands := m.Candidates(xr)
	want := verify.NewPairSet(
		verify.Pair{A: "t31", B: "t41"},
		verify.Pair{A: "t31", B: "t32"},
		verify.Pair{A: "t32", B: "t42"},
	)
	if len(cands) != 3 {
		t.Fatalf("matchings %v, want 3", cands.Sorted())
	}
	for p := range want {
		if !cands[p] {
			t.Fatalf("missing %v; got %v", p, cands.Sorted())
		}
	}
}

func TestBlockingCertain(t *testing.T) {
	xr := paperdata.R34()
	cands := BlockingCertain{Key: paperKey()}.Candidates(xr)
	// Resolved keys: Jimba, Johpi, Johpi, Seapi, Tomme → single pair
	// (t31,t41).
	if len(cands) != 1 || !cands.Has("t31", "t41") {
		t.Fatalf("blocking-certain = %v", cands.Sorted())
	}
}

func TestBlockingCluster(t *testing.T) {
	xr := paperdata.R34()
	m := BlockingCluster{Key: paperKey(), K: 2, Seed: 1}
	cands := m.Candidates(xr)
	if len(cands) == 0 {
		t.Fatal("cluster blocking produced no candidates")
	}
	// Deterministic across runs with the same seed.
	again := m.Candidates(xr)
	if len(again) != len(cands) {
		t.Fatal("cluster blocking not deterministic")
	}
	for p := range cands {
		if !again[p] {
			t.Fatal("cluster blocking not deterministic")
		}
	}
	// Default K derivation works.
	if got := (BlockingCluster{Key: paperKey(), Seed: 1}).Candidates(xr); len(got) == 0 {
		t.Fatal("default-K cluster blocking empty")
	}
}

func TestSNMMultiPassSelectors(t *testing.T) {
	xr := paperdata.R34()
	all := SNMMultiPass{Key: paperKey(), Window: 2, Select: AllWorlds}.Candidates(xr)
	top := SNMMultiPass{Key: paperKey(), Window: 2, Select: TopWorlds, K: 3}.Candidates(xr)
	dis := SNMMultiPass{Key: paperKey(), Window: 2, Select: DissimilarWorlds, K: 3}.Candidates(xr)
	if len(top) == 0 || len(dis) == 0 || len(all) == 0 {
		t.Fatal("empty candidate sets")
	}
	// Subset relations: any selected-world pass is a subset of all-worlds.
	for p := range top {
		if !all[p] {
			t.Fatalf("top-worlds pair %v missing from all-worlds", p)
		}
	}
	for p := range dis {
		if !all[p] {
			t.Fatalf("dissimilar-worlds pair %v missing from all-worlds", p)
		}
	}
	// MaxWorlds guard falls back gracefully.
	guarded := SNMMultiPass{Key: paperKey(), Window: 2, Select: AllWorlds, MaxWorlds: 2}.Candidates(xr)
	if len(guarded) == 0 {
		t.Fatal("guarded multi-pass empty")
	}
}

func TestMeasure(t *testing.T) {
	xr := paperdata.R34()
	truth := verify.NewPairSet(verify.Pair{A: "t31", B: "t41"}, verify.Pair{A: "t32", B: "t42"})
	red := Measure(BlockingAlternatives{Key: fig14Key()}, xr, truth)
	if red.TotalPairs != 10 || red.CandidatePairs != 3 {
		t.Fatalf("reduction %+v", red)
	}
	if red.TrueInCandidates != 2 || red.TrueTotal != 2 {
		t.Fatalf("reduction %+v", red)
	}
	if red.PairsCompleteness() != 1.0 {
		t.Fatalf("PC = %v", red.PairsCompleteness())
	}
}

func TestMethodNamesUnique(t *testing.T) {
	ms := []Method{
		CrossProduct{},
		SNMMultiPass{Select: AllWorlds}, SNMMultiPass{Select: TopWorlds},
		SNMMultiPass{Select: DissimilarWorlds},
		SNMCertain{}, SNMAlternatives{}, SNMRanked{},
		BlockingCertain{}, BlockingAlternatives{}, BlockingCluster{},
	}
	seen := map[string]bool{}
	for _, m := range ms {
		if m.Name() == "" || seen[m.Name()] {
			t.Errorf("duplicate or empty method name %q", m.Name())
		}
		seen[m.Name()] = true
	}
}
