package ssr

import (
	"testing"

	"probdedup/internal/dataset"
	"probdedup/internal/keys"
	"probdedup/internal/paperdata"
	"probdedup/internal/pdb"
	"probdedup/internal/verify"
)

// streamMethods returns every reduction method of the package,
// configured against the given schema.
func streamMethods(def keys.Def) []Method {
	prune := Pruning{MaxDiff: map[int]int{0: 4}}
	return []Method{
		CrossProduct{},
		SNMMultiPass{Key: def, Window: 3, Select: TopWorlds, K: 4},
		SNMCertain{Key: def, Window: 3},
		SNMAlternatives{Key: def, Window: 3},
		SNMRanked{Key: def, Window: 3},
		SNMRanked{Key: def, Window: 3, Strategy: MedianKey},
		BlockingCertain{Key: def},
		BlockingAlternatives{Key: def},
		BlockingCluster{Key: def, K: 8, Seed: 1},
		prune,
		NewFilter(SNMAlternatives{Key: def, Window: 3}, prune),
	}
}

func streamCorpus(t *testing.T) (*pdb.XRelation, keys.Def) {
	t.Helper()
	d := dataset.Generate(dataset.DefaultConfig(40, 7))
	u := d.Union()
	def, err := keys.ParseDef("name:3+job:2", u.Schema)
	if err != nil {
		t.Fatal(err)
	}
	return u, def
}

// TestStreamMatchesCandidates asserts for every method that the
// streamed pairs equal the materialized set, with no pair yielded
// twice.
func TestStreamMatchesCandidates(t *testing.T) {
	u, def := streamCorpus(t)
	for _, m := range streamMethods(def) {
		s, ok := m.(Streamer)
		if !ok {
			t.Fatalf("%s does not stream", m.Name())
		}
		want := m.Candidates(u)
		got := verify.PairSet{}
		completed := s.EnumeratePairs(u, func(p verify.Pair) bool {
			if got[p] {
				t.Fatalf("%s: pair %v yielded twice", m.Name(), p)
			}
			if p != verify.NewPair(p.A, p.B) {
				t.Fatalf("%s: pair %v not canonical", m.Name(), p)
			}
			got[p] = true
			return true
		})
		if !completed {
			t.Fatalf("%s: enumeration reported an early stop", m.Name())
		}
		if len(got) != len(want) {
			t.Fatalf("%s: streamed %d pairs, candidates %d", m.Name(), len(got), len(want))
		}
		for p := range want {
			if !got[p] {
				t.Fatalf("%s: pair %v missing from stream", m.Name(), p)
			}
		}
	}
}

// TestStreamEarlyStop asserts that yield returning false stops the
// enumeration immediately and is reported by the return value.
func TestStreamEarlyStop(t *testing.T) {
	u, def := streamCorpus(t)
	for _, m := range streamMethods(def) {
		s := m.(Streamer)
		if len(m.Candidates(u)) < 2 {
			continue
		}
		seen := 0
		completed := s.EnumeratePairs(u, func(verify.Pair) bool {
			seen++
			return seen < 2
		})
		if completed {
			t.Fatalf("%s: early stop not reported", m.Name())
		}
		if seen != 2 {
			t.Fatalf("%s: %d pairs yielded after stop at 2", m.Name(), seen)
		}
	}
}

// TestPartitionsCoverCandidates asserts for every blocking variant
// that the union of the partitions equals Candidates with no overlap —
// the invariant that lets the engine fan out per block without a
// global executed set.
func TestPartitionsCoverCandidates(t *testing.T) {
	u, def := streamCorpus(t)
	for _, m := range []Partitioner{
		BlockingCertain{Key: def},
		BlockingAlternatives{Key: def},
		BlockingCluster{Key: def, K: 8, Seed: 1},
	} {
		want := m.Candidates(u)
		got := verify.PairSet{}
		for _, part := range m.Partitions(u) {
			if part.Size < 2 {
				t.Fatalf("%s: singleton partition %q emitted", m.Name(), part.Label)
			}
			part.Enumerate(func(p verify.Pair) bool {
				if got[p] {
					t.Fatalf("%s: pair %v in two partitions", m.Name(), p)
				}
				got[p] = true
				return true
			})
		}
		if len(got) != len(want) {
			t.Fatalf("%s: partitions yielded %d pairs, candidates %d", m.Name(), len(got), len(want))
		}
		for p := range want {
			if !got[p] {
				t.Fatalf("%s: pair %v missing from partitions", m.Name(), p)
			}
		}
	}
}

// TestBlockingAlternativesSharedBlocks pins the canonical-block rule
// on a handcrafted relation where two tuples share two blocks: the
// pair must surface exactly once, in the smaller key's partition.
func TestBlockingAlternativesSharedBlocks(t *testing.T) {
	xr := pdb.NewXRelation("shared", "name")
	xr.Append(pdb.NewXTuple("t1", pdb.NewAlt(0.5, "anna"), pdb.NewAlt(0.5, "berta")))
	xr.Append(pdb.NewXTuple("t2", pdb.NewAlt(0.5, "anna"), pdb.NewAlt(0.5, "berta")))
	def := keys.NewDef(keys.Part{Attr: 0, Prefix: 3})
	m := BlockingAlternatives{Key: def}

	if want := m.Candidates(xr); len(want) != 1 || !want.Has("t1", "t2") {
		t.Fatalf("candidates %v", want.Sorted())
	}
	var yieldedIn []string
	for _, part := range m.Partitions(xr) {
		label := part.Label
		part.Enumerate(func(p verify.Pair) bool {
			yieldedIn = append(yieldedIn, label)
			return true
		})
	}
	if len(yieldedIn) != 1 || yieldedIn[0] != "ann" {
		t.Fatalf("pair yielded in %v, want exactly once in the smallest shared key 'ann'", yieldedIn)
	}
}

// TestStreamOfAdapter wraps a plain Method (no Streamer) and asserts
// the adapter replays the candidate set.
func TestStreamOfAdapter(t *testing.T) {
	u := paperdata.R34()
	m := plainMethod{}
	if _, ok := Method(m).(Streamer); ok {
		t.Fatal("plainMethod must not implement Streamer for this test")
	}
	s := StreamOf(m)
	got := verify.PairSet{}
	s.EnumeratePairs(u, func(p verify.Pair) bool {
		got[p] = true
		return true
	})
	want := m.Candidates(u)
	if len(got) != len(want) {
		t.Fatalf("adapter streamed %d pairs, want %d", len(got), len(want))
	}
	// Early stop through the adapter.
	n := 0
	if s.EnumeratePairs(u, func(verify.Pair) bool { n++; return false }) {
		t.Fatal("adapter must report early stop")
	}
	if n != 1 {
		t.Fatalf("adapter yielded %d pairs after stop", n)
	}
	// A Streamer passes through unchanged.
	if _, adapted := StreamOf(CrossProduct{}).(adaptedStreamer); adapted {
		t.Fatal("StreamOf must not wrap a native Streamer")
	}
	// A nil method streams the cross product, like the engine's nil
	// Options.Reduction default.
	nilPairs := 0
	StreamOf(nil).EnumeratePairs(u, func(verify.Pair) bool { nilPairs++; return true })
	if want := TotalPairs(len(u.Tuples)); nilPairs != want {
		t.Fatalf("StreamOf(nil) yielded %d pairs, want cross product %d", nilPairs, want)
	}
}

// plainMethod is a Method without streaming support: the first and
// last tuple form the only candidate pair.
type plainMethod struct{}

func (plainMethod) Name() string { return "plain" }

func (plainMethod) Candidates(xr *pdb.XRelation) verify.PairSet {
	s := verify.PairSet{}
	if n := len(xr.Tuples); n > 1 {
		s.Add(xr.Tuples[0].ID, xr.Tuples[n-1].ID)
	}
	return s
}

// TestFilterDropsForeignPairs pins the Filter's set-intersection
// semantics: a wrapped method emitting pairs with IDs outside the
// relation has them dropped silently, as in the materialized path.
func TestFilterDropsForeignPairs(t *testing.T) {
	u, _ := streamCorpus(t)
	f := NewFilter(foreignPairMethod{}, Pruning{MaxDiff: map[int]int{0: 100}})
	if c := f.Candidates(u); len(c) != 0 {
		t.Fatalf("foreign pairs survived the filter: %v", c.Sorted())
	}
	n := 0
	f.EnumeratePairs(u, func(verify.Pair) bool { n++; return true })
	if n != 0 {
		t.Fatalf("stream yielded %d foreign pairs", n)
	}
}

// foreignPairMethod emits a pair referencing IDs outside the relation.
type foreignPairMethod struct{}

func (foreignPairMethod) Name() string { return "foreign" }

func (foreignPairMethod) Candidates(*pdb.XRelation) verify.PairSet {
	return verify.NewPairSet(verify.Pair{A: "ghost-a", B: "ghost-b"})
}

// TestTotalPairs checks the arithmetic pair count against AllPairs.
func TestTotalPairs(t *testing.T) {
	u, _ := streamCorpus(t)
	if got, want := TotalPairs(len(u.Tuples)), len(AllPairs(u)); got != want {
		t.Fatalf("TotalPairs(%d) = %d, want %d", len(u.Tuples), got, want)
	}
	for n, want := range map[int]int{0: 0, 1: 0, 2: 1, 5: 10, 6: 15} {
		if got := TotalPairs(n); got != want {
			t.Fatalf("TotalPairs(%d) = %d, want %d", n, got, want)
		}
	}
}
