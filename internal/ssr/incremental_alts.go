package ssr

import (
	"sort"

	"probdedup/internal/keys"
	"probdedup/internal/pdb"
)

// snmAltsIndex maintains the exact SNMAlternatives candidate set online.
//
// The batch method (Figs. 11–12) sorts one entry per distinct alternative
// key of every tuple, omits entries whose predecessor references the same
// tuple, windows over the kept entries, and dedups pairs with an
// executed-matching set. The index mirrors that construction exactly:
//
//   - entries is the full sorted entry list (ties in arrival order,
//     matching the batch stable sort for the same insertion order);
//   - the kept flag of an entry is a local property of its predecessor, so
//     every entry splice rechecks only the spliced position and its
//     successor;
//   - the ledger tracks, per distinct-ID pair, how many kept-window
//     position pairs currently cover it (the executed-matching set,
//     refcounted). A pair enters the candidate set when its count rises
//     from zero and leaves when it returns to zero; intra-operation churn
//     cancels via coalescePairDeltas.
type snmAltsIndex struct {
	key     keys.Def
	window  int
	entries []altEntry
	kept    []string // IDs of kept entries, in entry order
	keysOf  map[string][]string
	ledger  *pairLedger
}

type altEntry struct {
	key  string
	id   string
	kept bool
}

// Incremental implements IncrementalMethod.
func (m SNMAlternatives) Incremental() (IncrementalIndex, error) {
	w := m.Window
	if w < 2 {
		w = 2 // mirror windowStream's minimum
	}
	return &snmAltsIndex{
		key:    m.Key,
		window: w,
		keysOf: map[string][]string{},
		ledger: newPairLedger(),
	}, nil
}

func (s *snmAltsIndex) Len() int { return len(s.keysOf) }

// keptIndexOf counts the kept entries strictly before entry position
// fpos — the position the entry holds (or would hold) in the kept list.
func (s *snmAltsIndex) keptIndexOf(fpos int) int {
	n := 0
	for i := 0; i < fpos; i++ {
		if s.entries[i].kept {
			n++
		}
	}
	return n
}

// insertKept splices id into the kept list at kpos and accounts the
// window occurrences: straddling position pairs at distance exactly
// window-1 lose their occurrence, the new entry gains occurrences with
// its window neighbors.
func (s *snmAltsIndex) insertKept(kpos int, id string) {
	w := s.window
	for a := kpos - w + 1; a <= kpos-1; a++ {
		b := a + w - 1
		if a < 0 || b >= len(s.kept) {
			continue
		}
		s.ledger.drop(s.kept[a], s.kept[b])
	}
	for a := kpos - w + 1; a <= kpos-1; a++ {
		if a < 0 {
			continue
		}
		s.ledger.bump(s.kept[a], id)
	}
	for b := kpos; b < len(s.kept) && b <= kpos+w-2; b++ {
		s.ledger.bump(id, s.kept[b])
	}
	s.kept = append(s.kept, "")
	copy(s.kept[kpos+1:], s.kept[kpos:])
	s.kept[kpos] = id
}

// removeKept splices the kept entry at kpos out: its window occurrences
// vanish and straddling position pairs at distance exactly window regain
// one.
func (s *snmAltsIndex) removeKept(kpos int) {
	w := s.window
	id := s.kept[kpos]
	for j := kpos - w + 1; j <= kpos+w-1; j++ {
		if j == kpos || j < 0 || j >= len(s.kept) {
			continue
		}
		s.ledger.drop(s.kept[j], id)
	}
	for a := kpos - w + 1; a <= kpos-1; a++ {
		b := a + w
		if a < 0 || b >= len(s.kept) {
			continue
		}
		s.ledger.bump(s.kept[a], s.kept[b])
	}
	s.kept = append(s.kept[:kpos], s.kept[kpos+1:]...)
}

// insertEntry splices one (key, id) entry into the full list at fpos and
// maintains the kept statuses of the new entry and its successor (the
// only entries whose predecessor changed).
func (s *snmAltsIndex) insertEntry(fpos int, key, id string) {
	s.entries = append(s.entries, altEntry{})
	copy(s.entries[fpos+1:], s.entries[fpos:])
	s.entries[fpos] = altEntry{key: key, id: id}

	if succ := fpos + 1; succ < len(s.entries) {
		e := &s.entries[succ]
		if newKept := e.id != id; newKept != e.kept {
			if e.kept {
				s.removeKept(s.keptIndexOf(succ))
			} else {
				s.insertKept(s.keptIndexOf(succ), e.id)
			}
			e.kept = newKept
		}
	}
	if kept := fpos == 0 || s.entries[fpos-1].id != id; kept {
		s.insertKept(s.keptIndexOf(fpos), id)
		s.entries[fpos].kept = true
	}
}

// removeEntry splices the entry at fpos out and rechecks its successor.
func (s *snmAltsIndex) removeEntry(fpos int) {
	if s.entries[fpos].kept {
		s.removeKept(s.keptIndexOf(fpos))
	}
	s.entries = append(s.entries[:fpos], s.entries[fpos+1:]...)

	if fpos < len(s.entries) {
		e := &s.entries[fpos]
		if newKept := fpos == 0 || s.entries[fpos-1].id != e.id; newKept != e.kept {
			if newKept {
				s.insertKept(s.keptIndexOf(fpos), e.id)
			} else {
				s.removeKept(s.keptIndexOf(fpos))
			}
			e.kept = newKept
		}
	}
}

func (s *snmAltsIndex) Insert(x *pdb.XTuple, yield func(PairDelta) bool) bool {
	kps := s.key.XTupleKeyDist(x, false)
	ks := make([]string, len(kps))
	for i, kp := range kps {
		ks[i] = kp.Key
	}
	s.keysOf[x.ID] = ks
	for _, k := range ks {
		// Upper bound: after all equal keys, reproducing the batch
		// stable sort for the same arrival order.
		fpos := sort.Search(len(s.entries), func(i int) bool { return s.entries[i].key > k })
		s.insertEntry(fpos, k, x.ID)
	}
	return s.ledger.flush(yield)
}

func (s *snmAltsIndex) Remove(id string, yield func(PairDelta) bool) bool {
	ks, ok := s.keysOf[id]
	if !ok {
		return true
	}
	delete(s.keysOf, id)
	for _, k := range ks {
		i := sort.Search(len(s.entries), func(i int) bool { return s.entries[i].key >= k })
		for ; i < len(s.entries) && s.entries[i].key == k; i++ {
			if s.entries[i].id == id {
				s.removeEntry(i)
				break
			}
		}
	}
	return s.ledger.flush(yield)
}

// Interface conformance check.
var _ IncrementalMethod = SNMAlternatives{}
