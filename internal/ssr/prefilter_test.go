package ssr

import (
	"strings"
	"testing"

	"probdedup/internal/avm"
	"probdedup/internal/decision"
	"probdedup/internal/pdb"
	"probdedup/internal/prepare"
	"probdedup/internal/strsim"
	"probdedup/internal/sym"
	"probdedup/internal/verify"
	"probdedup/internal/xmatch"
)

// unboundedDerivation implements xmatch.Derivation but not
// xmatch.Bounded — the obstruction NewPreFilter must report.
type unboundedDerivation struct{}

func (unboundedDerivation) Name() string { return "unbounded" }
func (unboundedDerivation) Sim(x1, x2 *pdb.XTuple, mat avm.Matrix, model decision.Model) float64 {
	return 0
}

// filterFixture builds a PreFilter over two-attribute tuples with
// Levenshtein comparisons, the explicit weighted-sum model, and the
// paper's ⊥ semantics.
func filterFixture(t *testing.T, lambda float64) (*PreFilter, *sym.Table) {
	t.Helper()
	tab := sym.NewTable(2)
	pf, err := NewPreFilter(PreFilterConfig{
		Table:  tab,
		Funcs:  []strsim.Func{strsim.Levenshtein, strsim.Levenshtein},
		Model:  decision.WeightedSumModel{Weights: decision.EqualWeights(2), T: decision.Thresholds{Lambda: lambda, Mu: 0.9}},
		Derive: xmatch.SimilarityBased{Conditioned: true},
		Lambda: lambda,
		Nulls:  avm.PaperNulls,
	})
	if err != nil {
		t.Fatal(err)
	}
	return pf, tab
}

// internedTuple builds and interns a one-alternative tuple.
func internedTuple(tab *sym.Table, id string, values ...string) *pdb.XTuple {
	x := pdb.NewXTuple(id, pdb.NewAlt(1, values...))
	prepare.InternXTuple(tab, x)
	return x
}

func TestNewPreFilterErrors(t *testing.T) {
	tab := sym.NewTable(2)
	base := PreFilterConfig{
		Table:  tab,
		Funcs:  []strsim.Func{strsim.Levenshtein},
		Model:  decision.WeightedSumModel{Weights: decision.EqualWeights(1), T: decision.Thresholds{Lambda: 0.7, Mu: 0.9}},
		Derive: xmatch.SimilarityBased{Conditioned: true},
		Lambda: 0.7,
		Nulls:  avm.PaperNulls,
	}
	cases := map[string]struct {
		mutate func(*PreFilterConfig)
		want   string
	}{
		"nil table": {
			func(c *PreFilterConfig) { c.Table = nil },
			"symbol table",
		},
		"opaque model": {
			func(c *PreFilterConfig) {
				c.Model = decision.SimpleModel{
					Phi: func(v avm.Vector) float64 { return 0 },
					T:   decision.Thresholds{Lambda: 0.7, Mu: 0.9},
				}
			},
			"cannot bound",
		},
		"unboundable derivation": {
			func(c *PreFilterConfig) { c.Derive = unboundedDerivation{} },
			"cannot bound",
		},
		"nulls below zero": {
			func(c *PreFilterConfig) { c.Nulls = avm.NullSemantics{NullNull: -0.1} },
			"[0,1]",
		},
		"nulls above one": {
			func(c *PreFilterConfig) { c.Nulls = avm.NullSemantics{NullNull: 1, NullValue: 1.5} },
			"[0,1]",
		},
	}
	for name, c := range cases {
		cfg := base
		c.mutate(&cfg)
		pf, err := NewPreFilter(cfg)
		if err == nil || pf != nil {
			t.Fatalf("%s: NewPreFilter = %v, %v; want error", name, pf, err)
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Fatalf("%s: error %q does not mention %q", name, err, c.want)
		}
	}
	if _, err := NewPreFilter(base); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}

func TestPreFilterInsertRemoveLen(t *testing.T) {
	pf, tab := filterFixture(t, 0.7)
	if pf.Len() != 0 {
		t.Fatalf("fresh filter Len = %d", pf.Len())
	}
	pf.Insert(internedTuple(tab, "a", "alpha", "pilot"))
	pf.Insert(internedTuple(tab, "b", "beta", "nurse"))
	if pf.Len() != 2 {
		t.Fatalf("Len = %d, want 2", pf.Len())
	}
	// Re-inserting an ID replaces its signature, not adds one.
	pf.Insert(internedTuple(tab, "a", "alphonse", "pilot"))
	if pf.Len() != 2 {
		t.Fatalf("Len after re-insert = %d, want 2", pf.Len())
	}
	pf.Remove("a")
	pf.Remove("a") // idempotent
	if pf.Len() != 1 {
		t.Fatalf("Len after remove = %d, want 1", pf.Len())
	}
}

// TestAdmitMissingSignature: pairs with an unknown side are always
// admitted — the filter may only reject what it can bound.
func TestAdmitMissingSignature(t *testing.T) {
	pf, tab := filterFixture(t, 0.99)
	pf.Insert(internedTuple(tab, "known", "aaaaaaaaaa", "bbbbbbbbbb"))
	for _, p := range []verify.Pair{
		{A: "known", B: "ghost"},
		{A: "ghost", B: "known"},
		{A: "ghost", B: "phantom"},
	} {
		if !pf.Admit(p) {
			t.Fatalf("pair %v with missing signature was rejected", p)
		}
	}
	st := pf.Stats()
	if st.Enumerated != 3 || st.Filtered != 0 {
		t.Fatalf("stats = %+v, want 3 enumerated, 0 filtered", st)
	}
}

// TestAdmitFiltersProvableNonMatch: gram-disjoint long values under a
// high Tλ must be rejected, and near-identical values admitted, with
// the counters tracking both outcomes.
func TestAdmitFiltersProvableNonMatch(t *testing.T) {
	pf, tab := filterFixture(t, 0.8)
	pf.Insert(internedTuple(tab, "a", "aaaaaaaaaaaa", "cccccccccccc"))
	pf.Insert(internedTuple(tab, "z", "zzzzzzzzzzzz", "xxxxxxxxxxxx"))
	pf.Insert(internedTuple(tab, "a2", "aaaaaaaaaaab", "cccccccccccc"))
	if pf.Admit(verify.Pair{A: "a", B: "z"}) {
		t.Fatal("disjoint pair admitted under Tλ=0.8")
	}
	if !pf.Admit(verify.Pair{A: "a", B: "a2"}) {
		t.Fatal("near-duplicate pair rejected")
	}
	st := pf.Stats()
	if st.Enumerated != 2 || st.Filtered != 1 {
		t.Fatalf("stats = %+v, want 2 enumerated, 1 filtered", st)
	}
}

// TestAdmitNullMassRaisesBound: ⊥ mass contributes the configured ⊥
// similarities to the attribute bound. With NullValue = 1, a ⊥-heavy
// attribute can no longer prove a non-match that the value bound alone
// would have rejected.
func TestAdmitNullMassRaisesBound(t *testing.T) {
	tab := sym.NewTable(2)
	mkFilter := func(nulls avm.NullSemantics) *PreFilter {
		pf, err := NewPreFilter(PreFilterConfig{
			Table:  tab,
			Funcs:  []strsim.Func{strsim.Levenshtein, strsim.Levenshtein},
			Model:  decision.WeightedSumModel{Weights: decision.EqualWeights(2), T: decision.Thresholds{Lambda: 0.8, Mu: 0.9}},
			Derive: xmatch.SimilarityBased{Conditioned: true},
			Lambda: 0.8,
			Nulls:  nulls,
		})
		if err != nil {
			t.Fatal(err)
		}
		return pf
	}
	// Attribute 0 carries half ⊥ mass on both sides, attribute 1 matches
	// exactly — so the pair's fate rests on what ⊥~value is worth.
	halfNull := func(id, v0, v1 string) *pdb.XTuple {
		x := pdb.NewXTuple(id, pdb.NewAltDists(1,
			pdb.MustDist(pdb.Alternative{Value: pdb.V(v0), P: 0.5}),
			pdb.MustDist(pdb.Alternative{Value: pdb.V(v1), P: 1}),
		))
		prepare.InternXTuple(tab, x)
		return x
	}
	pair := verify.Pair{A: "p", B: "q"}

	strict := mkFilter(avm.NullSemantics{NullNull: 0, NullValue: 0})
	strict.Insert(halfNull("p", "aaaaaaaaaaaa", "same"))
	strict.Insert(halfNull("q", "zzzzzzzzzzzz", "same"))
	if strict.Admit(pair) {
		t.Fatal("with ⊥≈0 semantics the disjoint attribute should reject the pair")
	}

	lax := mkFilter(avm.NullSemantics{NullNull: 1, NullValue: 1})
	lax.Insert(halfNull("p", "aaaaaaaaaaaa", "same"))
	lax.Insert(halfNull("q", "zzzzzzzzzzzz", "same"))
	if !lax.Admit(pair) {
		t.Fatal("with ⊥≈1 semantics the bound cannot prove a non-match")
	}
}

// TestAdmitUnregisteredFuncIsTrivial: an attribute compared by a
// function without a registered bound contributes the trivial bound 1,
// so a single such attribute under equal weights keeps every pair
// above Tλ = 0.5.
func TestAdmitUnregisteredFuncIsTrivial(t *testing.T) {
	tab := sym.NewTable(2)
	custom := func(a, b string) float64 { return 0 }
	pf, err := NewPreFilter(PreFilterConfig{
		Table:  tab,
		Funcs:  []strsim.Func{custom, strsim.Levenshtein},
		Model:  decision.WeightedSumModel{Weights: decision.EqualWeights(2), T: decision.Thresholds{Lambda: 0.5, Mu: 0.9}},
		Derive: xmatch.SimilarityBased{Conditioned: true},
		Lambda: 0.5,
		Nulls:  avm.PaperNulls,
	})
	if err != nil {
		t.Fatal(err)
	}
	pf.Insert(internedTuple(tab, "a", "aaaaaaaaaaaa", "cccccccccccc"))
	pf.Insert(internedTuple(tab, "z", "zzzzzzzzzzzz", "xxxxxxxxxxxx"))
	if !pf.Admit(verify.Pair{A: "a", B: "z"}) {
		t.Fatal("pair rejected although one attribute is unboundable: (1+0)/2 ≥ 0.5")
	}
}

// TestAdmitMaximizesOverAlternatives: the attribute bound is the
// maximum over all alternative value pairs, so one matching
// alternative on each side must keep the pair admitted even when the
// more probable alternatives are disjoint.
func TestAdmitMaximizesOverAlternatives(t *testing.T) {
	pf, tab := filterFixture(t, 0.8)
	twoAlt := func(id, main, alt string) *pdb.XTuple {
		x := pdb.NewXTuple(id,
			pdb.NewAlt(0.7, main, "shared-job"),
			pdb.NewAlt(0.3, alt, "shared-job"),
		)
		prepare.InternXTuple(tab, x)
		return x
	}
	pf.Insert(twoAlt("a", "aaaaaaaaaaaa", "common-value"))
	pf.Insert(twoAlt("z", "zzzzzzzzzzzz", "common-value"))
	if !pf.Admit(verify.Pair{A: "a", B: "z"}) {
		t.Fatal("pair with an exactly matching alternative was rejected")
	}
	// Without the shared alternative the same pair is provably below Tλ.
	pf.Insert(internedTuple(tab, "a1", "aaaaaaaaaaaa", "shared-job"))
	pf.Insert(internedTuple(tab, "z1", "zzzzzzzzzzzz", "shared-job"))
	if pf.Admit(verify.Pair{A: "a1", B: "z1"}) {
		t.Fatal("disjoint-name pair admitted")
	}
}
