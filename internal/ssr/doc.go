// Package ssr implements the search-space reduction methods of Sec. V,
// adapted to probabilistic data. Every method consumes an x-relation (a
// dependency-free relation is lifted first) and emits the set of candidate
// tuple pairs that the decision model should compare.
//
// Sorted neighborhood (Sec. V-A):
//
//  1. SNMMultiPass    — one pass per possible world (all, top-k probable, or
//     greedily dissimilar worlds), union of the per-world matchings.
//  2. SNMCertain      — certain key values via a conflict resolution
//     strategy (most probable alternative ≡ most probable world).
//  3. SNMAlternatives — one key value per tuple alternative; neighboring
//     same-tuple keys are omitted; an executed-matching matrix prevents
//     duplicate matchings (Figs. 11–12).
//  4. SNMRanked       — uncertain key values ranked with an expected-rank
//     function in O(n log n) (Fig. 13).
//
// Blocking (Sec. V-B):
//
//  5. BlockingCertain      — conflict-resolved certain keys, classical
//     blocking.
//  6. BlockingAlternatives — an x-tuple joins the block of every
//     alternative key value (Fig. 14).
//  7. BlockingCluster      — clustering of uncertain key values (UK-means).
//
// CrossProduct is the no-reduction baseline, and Pruning/Filter add the
// length-filter heuristic Sec. III-B lists alongside SNM and blocking.
//
// Beyond batch Candidates, methods expose two enumeration refinements:
// every method implements Streamer (candidate pairs one at a time,
// nothing materialized), and the blocking variants implement
// Partitioner (independent per-block units the engine fans out
// concurrently).
//
// For continuous arrivals, IncrementalIndex maintains a method's
// candidate set online: inserting a tuple yields exactly the pairs it
// forms (and, for windowed methods, the straddling pairs pushed out of
// the window), removing one retracts its pairs (and re-admits window
// neighbors). Every built-in method is incremental, on one of two
// tiers. On the exact tier — every method except BlockingCluster —
// the maintained set equals the batch candidate set over the resident
// tuples after every operation: insert-one-at-a-time ≡ Candidates.
// BlockingCluster is on the bounded-staleness tier (EpochIndex):
// between epoch reseals arrivals are placed by a cheap stale rule
// (nearest sealed centroid) and equality with Candidates is
// guaranteed only at epoch boundaries, while Staleness bounds how
// many residents a stale decision placed — crossing the bound
// triggers an in-band reseal whose net deltas ride the ordinary
// Insert/Remove yield stream. Methods that implement neither
// IncrementalMethod tier fail IncrementalOf with an error wrapping
// ErrNotIncremental.
package ssr
