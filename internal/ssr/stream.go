package ssr

import (
	"math/rand"
	"sort"
	"strconv"

	"probdedup/internal/cluster"
	"probdedup/internal/fusion"
	"probdedup/internal/pdb"
	"probdedup/internal/verify"
	"probdedup/internal/worlds"
)

// Streamer is a Method that can enumerate its candidate pairs one at a
// time instead of materializing them as a set. Every pair is yielded
// exactly once (in canonical order, see verify.NewPair); enumeration
// stops early when yield returns false.
//
// All reduction methods of this package implement Streamer. Candidates
// is layered on EnumeratePairs, so the streamed and the materialized
// pair sets are identical by construction.
//
// Most streamers run in memory proportional to the relation. Two are
// algorithm-bound exceptions: SNMMultiPass and SNMAlternatives keep
// the paper's executed-matching set (Fig. 12) while enumerating, which
// grows with the emitted pair count; the StreamOf adapter for plain
// Methods materializes Candidates once before replaying it.
type Streamer interface {
	Method
	// EnumeratePairs yields each candidate pair once. It returns false
	// if a yield call stopped the enumeration early, true otherwise.
	EnumeratePairs(xr *pdb.XRelation, yield func(verify.Pair) bool) bool
}

// Partition is one independent unit of candidate enumeration: a block
// whose pairs can be enumerated (and compared) concurrently with every
// other partition. Partitions of one Partitions() call never yield the
// same pair twice, so no cross-partition deduplication is needed.
type Partition struct {
	// Label identifies the partition (typically the block key).
	Label string
	// Size is the number of member tuples.
	Size int
	// Enumerate yields the partition's candidate pairs; it returns
	// false if a yield call stopped the enumeration early.
	Enumerate func(yield func(verify.Pair) bool) bool
}

// Partitioner is a Method whose search space decomposes into
// independent partitions — the blocking variants of Sec. V-B. The
// detection engine fans out one partition per unit of work so blocks
// match-and-decide concurrently.
type Partitioner interface {
	Method
	// Partitions splits the candidate space into independent units.
	// The union of all partitions equals Candidates, without overlap.
	Partitions(xr *pdb.XRelation) []Partition
}

// TotalPairs returns the size n(n-1)/2 of the unreduced search space
// over n tuples, in O(1) — use this instead of len(AllPairs(xr)) when
// only the count is needed.
func TotalPairs(n int) int { return n * (n - 1) / 2 }

// StreamOf returns m itself when it already streams, or an adapter
// that materializes m.Candidates once and replays the set. The adapter
// keeps arbitrary user-defined Methods usable with the streaming
// engine; its enumeration order is unspecified. A nil method means no
// reduction and streams the cross product, mirroring the detection
// engine's default.
func StreamOf(m Method) Streamer {
	if m == nil {
		return CrossProduct{}
	}
	if s, ok := m.(Streamer); ok {
		return s
	}
	return adaptedStreamer{m}
}

type adaptedStreamer struct{ Method }

func (a adaptedStreamer) EnumeratePairs(xr *pdb.XRelation, yield func(verify.Pair) bool) bool {
	for p := range a.Method.Candidates(xr) {
		if !yield(p) {
			return false
		}
	}
	return true
}

// collectPairs materializes a stream into a PairSet — the shared
// implementation of every method's Candidates.
func collectPairs(s Streamer, xr *pdb.XRelation) verify.PairSet {
	out := verify.PairSet{}
	s.EnumeratePairs(xr, func(p verify.Pair) bool {
		out[p] = true
		return true
	})
	return out
}

// windowStream slides a window of the given size over ordered tuple
// IDs and yields all pairs of IDs co-occurring in a window. Same-ID
// pairs are skipped. When every ID occurs once in ids (SNMCertain,
// SNMRanked), each unordered pair is yielded at most once.
func windowStream(ids []string, window int, yield func(verify.Pair) bool) bool {
	if window < 2 {
		window = 2
	}
	for i := range ids {
		lo := i - (window - 1)
		if lo < 0 {
			lo = 0
		}
		for j := lo; j < i; j++ {
			if ids[j] != ids[i] {
				if !yield(verify.NewPair(ids[j], ids[i])) {
					return false
				}
			}
		}
	}
	return true
}

// dedupYield wraps yield with an executed-matching set (Fig. 12): a
// pair already seen is skipped instead of yielded again. Used by the
// variants whose raw window passes can revisit a pair (multi-pass over
// worlds, per-alternative keys).
func dedupYield(seen verify.PairSet, yield func(verify.Pair) bool) func(verify.Pair) bool {
	return func(p verify.Pair) bool {
		if seen[p] {
			return true
		}
		seen[p] = true
		return yield(p)
	}
}

// ---- Streamer implementations ----

// EnumeratePairs implements Streamer.
func (CrossProduct) EnumeratePairs(xr *pdb.XRelation, yield func(verify.Pair) bool) bool {
	for i := 0; i < len(xr.Tuples); i++ {
		for j := i + 1; j < len(xr.Tuples); j++ {
			if !yield(verify.NewPair(xr.Tuples[i].ID, xr.Tuples[j].ID)) {
				return false
			}
		}
	}
	return true
}

// EnumeratePairs implements Streamer. The executed-matching set spans
// the per-world passes, so a pair found in several worlds is yielded
// once.
func (m SNMMultiPass) EnumeratePairs(xr *pdb.XRelation, yield func(verify.Pair) bool) bool {
	y := dedupYield(verify.PairSet{}, yield)
	for _, w := range m.selectWorlds(xr) {
		r := worlds.Materialize(xr, w)
		if !windowStream(sortedIDsByKey(r, m.Key), m.Window, y) {
			return false
		}
	}
	return true
}

// selectWorlds picks the world subset the multi-pass method visits.
func (m SNMMultiPass) selectWorlds(xr *pdb.XRelation) []worlds.World {
	switch m.Select {
	case TopWorlds:
		return worlds.TopK(xr, true, m.K)
	case DissimilarWorlds:
		return worlds.Dissimilar(xr, true, m.K, 4*m.K)
	default:
		limit := m.MaxWorlds
		if limit <= 0 {
			limit = 100_000
		}
		all, err := worlds.Enumerate(xr, true, limit)
		if err != nil {
			// Fall back to the most probable worlds when enumeration is
			// infeasible; the method stays total.
			all = worlds.TopK(xr, true, 1024)
		}
		return all
	}
}

// EnumeratePairs implements Streamer. Each tuple occurs once in the
// conflict-resolved ordering, so no deduplication is needed.
func (m SNMCertain) EnumeratePairs(xr *pdb.XRelation, yield func(verify.Pair) bool) bool {
	strategy := m.Strategy
	if strategy == nil {
		strategy = fusion.MostProbable{}
	}
	return windowStream(sortedIDsByResolvedKey(xr, strategy, m.Key), m.Window, yield)
}

// EnumeratePairs implements Streamer. A tuple occurs once per distinct
// alternative key, so the executed-matching set (Fig. 12) prevents a
// pair from being yielded twice.
func (m SNMAlternatives) EnumeratePairs(xr *pdb.XRelation, yield func(verify.Pair) bool) bool {
	kept := m.SortedEntries(xr)
	ids := make([]string, len(kept))
	for i, e := range kept {
		ids[i] = e.ID
	}
	return windowStream(ids, m.Window, dedupYield(verify.PairSet{}, yield))
}

// EnumeratePairs implements Streamer. Each tuple occurs once in the
// ranked ordering, so no deduplication is needed.
func (m SNMRanked) EnumeratePairs(xr *pdb.XRelation, yield func(verify.Pair) bool) bool {
	return windowStream(m.RankedIDs(xr), m.Window, yield)
}

// EnumeratePairs implements Streamer.
func (m BlockingCertain) EnumeratePairs(xr *pdb.XRelation, yield func(verify.Pair) bool) bool {
	return enumeratePartitions(m.Partitions(xr), yield)
}

// EnumeratePairs implements Streamer.
func (m BlockingAlternatives) EnumeratePairs(xr *pdb.XRelation, yield func(verify.Pair) bool) bool {
	return enumeratePartitions(m.Partitions(xr), yield)
}

// EnumeratePairs implements Streamer.
func (m BlockingCluster) EnumeratePairs(xr *pdb.XRelation, yield func(verify.Pair) bool) bool {
	return enumeratePartitions(m.Partitions(xr), yield)
}

// EnumeratePairs implements Streamer.
func (p Pruning) EnumeratePairs(xr *pdb.XRelation, yield func(verify.Pair) bool) bool {
	perTuple := p.lengthProfiles(xr)
	for i := 0; i < len(xr.Tuples); i++ {
		for j := i + 1; j < len(xr.Tuples); j++ {
			if compatibleLengths(p.MaxDiff, perTuple[i], perTuple[j]) {
				if !yield(verify.NewPair(xr.Tuples[i].ID, xr.Tuples[j].ID)) {
					return false
				}
			}
		}
	}
	return true
}

// EnumeratePairs implements Streamer: the inner method's stream is
// filtered pair by pair against the precomputed length profiles, so
// neither side is materialized.
func (f Filter) EnumeratePairs(xr *pdb.XRelation, yield func(verify.Pair) bool) bool {
	keep := f.Prune.keepFunc(xr)
	return StreamOf(f.Inner).EnumeratePairs(xr, func(p verify.Pair) bool {
		if !keep(p.A, p.B) {
			return true
		}
		return yield(p)
	})
}

// ---- Partitioner implementations (blocking variants) ----

// enumeratePartitions streams the partitions sequentially.
func enumeratePartitions(parts []Partition, yield func(verify.Pair) bool) bool {
	for _, part := range parts {
		if !part.Enumerate(yield) {
			return false
		}
	}
	return true
}

// blockPartition builds the partition of one disjoint block: all
// intra-block pairs.
func blockPartition(label string, members []string) Partition {
	return Partition{
		Label: label,
		Size:  len(members),
		Enumerate: func(yield func(verify.Pair) bool) bool {
			for i := 0; i < len(members); i++ {
				for j := i + 1; j < len(members); j++ {
					if members[i] != members[j] {
						if !yield(verify.NewPair(members[i], members[j])) {
							return false
						}
					}
				}
			}
			return true
		},
	}
}

// disjointPartitions converts a map of disjoint blocks into partitions
// in deterministic (sorted-label) order, skipping singleton blocks.
func disjointPartitions(blocks map[string][]string) []Partition {
	labels := make([]string, 0, len(blocks))
	for k := range blocks {
		if len(blocks[k]) > 1 {
			labels = append(labels, k)
		}
	}
	sort.Strings(labels)
	parts := make([]Partition, len(labels))
	for i, k := range labels {
		parts[i] = blockPartition(k, blocks[k])
	}
	return parts
}

// Partitions implements Partitioner: conflict-resolved keys yield
// disjoint blocks. The keys are computed tuple by tuple, without
// materializing the resolved relation.
func (m BlockingCertain) Partitions(xr *pdb.XRelation) []Partition {
	strategy := m.Strategy
	if strategy == nil {
		strategy = fusion.MostProbable{}
	}
	blocks := map[string][]string{}
	for _, x := range xr.Tuples {
		k := m.Key.FromValues(strategy.ResolveX(x))
		blocks[k] = append(blocks[k], x.ID)
	}
	return disjointPartitions(blocks)
}

// Partitions implements Partitioner: one block per cluster of the
// uncertain key values (disjoint by construction).
func (m BlockingCluster) Partitions(xr *pdb.XRelation) []Partition {
	items := make([]cluster.Item, len(xr.Tuples))
	for i, x := range xr.Tuples {
		items[i] = cluster.Item{ID: x.ID, Keys: m.Key.XTupleKeyDist(x, true)}
	}
	k := m.K
	if k <= 0 {
		k = len(items) / 8
		if k < 2 {
			k = 2
		}
	}
	c := cluster.UKMeans(items, k, 0, rand.New(rand.NewSource(m.Seed)))
	blocks := map[string][]string{}
	for i, b := range c.Assign {
		label := "b" + strconv.Itoa(b)
		blocks[label] = append(blocks[label], items[i].ID)
	}
	return disjointPartitions(blocks)
}

// Partitions implements Partitioner. An x-tuple joins the block of
// every alternative key value (Fig. 14), so two tuples can share more
// than one block; a pair is yielded only in the lexicographically
// smallest key block the two tuples share. That canonical-block rule
// makes the partitions overlap-free without a global executed set, so
// blocks stay independently enumerable.
func (m BlockingAlternatives) Partitions(xr *pdb.XRelation) []Partition {
	blocks := m.Blocks(xr)
	// Per tuple, the sorted list of keys under which it was blocked.
	keysOf := make(map[string][]string, len(xr.Tuples))
	for k, members := range blocks {
		for _, id := range members {
			keysOf[id] = append(keysOf[id], k)
		}
	}
	for _, ks := range keysOf {
		sort.Strings(ks)
	}
	labels := make([]string, 0, len(blocks))
	for k, members := range blocks {
		if len(members) > 1 {
			labels = append(labels, k)
		}
	}
	sort.Strings(labels)
	parts := make([]Partition, len(labels))
	for i, k := range labels {
		label, members := k, blocks[k]
		parts[i] = Partition{
			Label: label,
			Size:  len(members),
			Enumerate: func(yield func(verify.Pair) bool) bool {
				for i := 0; i < len(members); i++ {
					for j := i + 1; j < len(members); j++ {
						if members[i] == members[j] {
							continue
						}
						if first, ok := firstCommonKey(keysOf[members[i]], keysOf[members[j]]); !ok || first != label {
							continue
						}
						if !yield(verify.NewPair(members[i], members[j])) {
							return false
						}
					}
				}
				return true
			},
		}
	}
	return parts
}

// firstCommonKey merge-walks two sorted key lists and returns their
// smallest common element.
func firstCommonKey(a, b []string) (string, bool) {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			return a[i], true
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return "", false
}

// Interface conformance checks.
var (
	_ Streamer = CrossProduct{}
	_ Streamer = SNMMultiPass{}
	_ Streamer = SNMCertain{}
	_ Streamer = SNMAlternatives{}
	_ Streamer = SNMRanked{}
	_ Streamer = BlockingCertain{}
	_ Streamer = BlockingAlternatives{}
	_ Streamer = BlockingCluster{}
	_ Streamer = Pruning{}
	_ Streamer = Filter{}

	_ Partitioner = BlockingCertain{}
	_ Partitioner = BlockingAlternatives{}
	_ Partitioner = BlockingCluster{}
)
