package ssr

import (
	"fmt"
	"sort"

	"probdedup/internal/cluster"
	"probdedup/internal/pdb"
)

// EpochState is the persistable placement state of a bounded-staleness
// reduction index (EpochIndex). Exact-tier indexes are pure functions
// of the resident tuples in insertion order and re-derive their state
// on recovery; an epoch index is not — its frozen embedding and
// centroids were computed over the sealed epoch's residents, some of
// which may have left since, so mid-epoch placements cannot be
// re-derived from the current residents alone. EpochState captures
// exactly that irreproducible remainder: the epoch counter, the frozen
// cluster geometry, and every resident's current block label in
// insertion order. Per-resident key distributions are NOT part of the
// state — they are recomputed from the resident tuples on restore.
type EpochState struct {
	// Epoch is the reseal counter.
	Epoch int
	// K is the sealed epoch's cluster count.
	K int
	// Drifted counts the stale placements since the last reseal.
	Drifted int
	// Centroids holds the frozen cluster centers in the embedded key
	// space, indexed by block label.
	Centroids []float64
	// EmbeddingKeys is the frozen key universe of the sealed epoch's
	// embedding, sorted and duplicate-free.
	EmbeddingKeys []string
	// Arrivals lists the resident tuple IDs in insertion order.
	Arrivals []string
	// Labels holds each resident's block label, parallel to Arrivals.
	Labels []int
}

// StatefulEpochIndex is an EpochIndex whose placement state can be
// exported for a durable snapshot and restored into a freshly
// constructed index. RestoreEpochState must be called at most once, on
// an index that has seen no Insert or Remove; resident resolves a
// tuple ID to its resident x-tuple so the index can recompute its
// per-item key distributions. After a successful restore the index
// behaves bit-identically to the one the state was exported from: same
// maintained candidate set, same future placements, reseals and drift
// accounting.
type StatefulEpochIndex interface {
	EpochIndex
	ExportEpochState() *EpochState
	RestoreEpochState(st *EpochState, resident func(string) (*pdb.XTuple, bool)) error
}

// ExportEpochState implements StatefulEpochIndex.
func (b *blockingClusterIndex) ExportEpochState() *EpochState {
	st := &EpochState{
		Epoch:     b.epoch,
		K:         b.k,
		Drifted:   b.drifted,
		Centroids: append([]float64(nil), b.centroids...),
		Arrivals:  append([]string(nil), b.arrivals...),
		Labels:    make([]int, len(b.arrivals)),
	}
	if b.emb != nil {
		st.EmbeddingKeys = append([]string(nil), b.emb.Keys()...)
	}
	for i, id := range b.arrivals {
		st.Labels[i] = b.labelOf[id]
	}
	return st
}

// RestoreEpochState implements StatefulEpochIndex. The state is
// validated before any of it is applied, so a corrupt snapshot fails
// loudly and leaves the index untouched. Block member order is not
// persisted because it is derivable: Insert appends to both arrivals
// and its block, and Remove preserves relative order in both, so every
// block's member order is the arrival order filtered by label.
func (b *blockingClusterIndex) RestoreEpochState(st *EpochState, resident func(string) (*pdb.XTuple, bool)) error {
	if len(b.arrivals) != 0 || b.emb != nil {
		return fmt.Errorf("ssr: RestoreEpochState on a non-fresh index")
	}
	if len(st.Arrivals) != len(st.Labels) {
		return fmt.Errorf("ssr: epoch state has %d arrivals but %d labels", len(st.Arrivals), len(st.Labels))
	}
	if len(st.Arrivals) == 0 {
		// Empty index: keep the fresh zero state so the next insertion
		// seals epoch 1, exactly like a never-persisted index.
		return nil
	}
	if st.K <= 0 || len(st.Centroids) != st.K {
		return fmt.Errorf("ssr: epoch state with %d residents has an inconsistent clustering (k=%d, %d centroids)",
			len(st.Arrivals), st.K, len(st.Centroids))
	}
	for i, l := range st.Labels {
		if l < 0 || l >= len(st.Centroids) {
			return fmt.Errorf("ssr: epoch state label %d of %q outside [0,%d)", l, st.Arrivals[i], len(st.Centroids))
		}
	}
	if !sort.StringsAreSorted(st.EmbeddingKeys) {
		return fmt.Errorf("ssr: epoch state embedding keys are not sorted")
	}
	for i := 1; i < len(st.EmbeddingKeys); i++ {
		if st.EmbeddingKeys[i] == st.EmbeddingKeys[i-1] {
			return fmt.Errorf("ssr: epoch state embedding keys contain duplicate %q", st.EmbeddingKeys[i])
		}
	}
	items := make(map[string]cluster.Item, len(st.Arrivals))
	for _, id := range st.Arrivals {
		if _, dup := items[id]; dup {
			return fmt.Errorf("ssr: epoch state lists %q twice", id)
		}
		x, ok := resident(id)
		if !ok {
			return fmt.Errorf("ssr: epoch state references non-resident tuple %q", id)
		}
		items[id] = cluster.Item{ID: id, Keys: b.method.Key.XTupleKeyDist(x, true)}
	}

	b.items = items
	b.arrivals = append([]string(nil), st.Arrivals...)
	b.epoch = st.Epoch
	b.k = st.K
	b.drifted = st.Drifted
	b.centroids = append([]float64(nil), st.Centroids...)
	b.emb = cluster.NewEmbeddingFromKeys(st.EmbeddingKeys)
	b.labelOf = make(map[string]int, len(st.Arrivals))
	b.blocks = map[int][]string{}
	for i, id := range st.Arrivals {
		l := st.Labels[i]
		b.labelOf[id] = l
		b.blocks[l] = append(b.blocks[l], id)
	}
	return nil
}

// Interface conformance check.
var _ StatefulEpochIndex = (*blockingClusterIndex)(nil)
