package ssr

import (
	"probdedup/internal/pdb"
	"probdedup/internal/strsim"
	"probdedup/internal/verify"
)

// RankStrategy selects the ordering used by SNMRanked.
type RankStrategy int

const (
	// ExpectedRank orders by the expected-rank semantics (the default; the
	// paper's ranking-function approach, Fig. 13).
	ExpectedRank RankStrategy = iota
	// MedianKey orders by the median key value — robust against
	// low-probability outlier alternatives (see the EXPERIMENTS.md S02
	// ablation).
	MedianKey
	// ModeKey orders by the most probable key value only.
	ModeKey
)

// String names the strategy.
func (s RankStrategy) String() string {
	switch s {
	case MedianKey:
		return "median"
	case ModeKey:
		return "mode"
	default:
		return "expected"
	}
}

// Pruning is the length-filter pruning heuristic Sec. III-B lists alongside
// SNM and blocking: a pair survives only if, for every configured
// attribute, some pair of alternative values has a rune-length difference
// of at most MaxDiff. Length difference lower-bounds the edit distance, so
// for normalized Levenshtein-style comparisons the pruned pairs provably
// cannot reach high similarity. Uncertainty-aware: an x-tuple's attribute
// contributes the lengths of every alternative value (a pair is kept if
// *any* world could make it similar).
type Pruning struct {
	// MaxDiff[attr] is the maximum admissible rune-length difference for
	// the attribute; attributes missing from the map are unconstrained.
	MaxDiff map[int]int
}

// Name implements Method.
func (p Pruning) Name() string { return "pruning-length" }

// Candidates implements Method.
func (p Pruning) Candidates(xr *pdb.XRelation) verify.PairSet {
	return collectPairs(p, xr)
}

// lengthProfiles precomputes, per tuple and constrained attribute, the
// set of observed rune lengths (small ints).
func (p Pruning) lengthProfiles(xr *pdb.XRelation) []map[int]map[int]bool {
	perTuple := make([]map[int]map[int]bool, len(xr.Tuples))
	for i, x := range xr.Tuples {
		perTuple[i] = map[int]map[int]bool{}
		for attr := range p.MaxDiff {
			ls := map[int]bool{}
			for _, alt := range x.Alts {
				if attr >= len(alt.Values) {
					continue
				}
				for _, a := range alt.Values[attr].Alternatives() {
					ls[strsim.RuneLen(a.Value.S())] = true
				}
				if alt.Values[attr].NullP() > pdb.Eps {
					ls[0] = true
				}
			}
			perTuple[i][attr] = ls
		}
	}
	return perTuple
}

// keepFunc returns a predicate over tuple-ID pairs that reports whether
// the pair survives the length filter; the profiles are computed once.
// Pairs referencing IDs outside the relation are dropped, matching the
// set-intersection semantics of the materialized Filter.
func (p Pruning) keepFunc(xr *pdb.XRelation) func(a, b string) bool {
	perTuple := p.lengthProfiles(xr)
	index := make(map[string]int, len(xr.Tuples))
	for i, x := range xr.Tuples {
		index[x.ID] = i
	}
	return func(a, b string) bool {
		ia, oka := index[a]
		ib, okb := index[b]
		if !oka || !okb {
			return false
		}
		return compatibleLengths(p.MaxDiff, perTuple[ia], perTuple[ib])
	}
}

func compatibleLengths(maxDiff map[int]int, a, b map[int]map[int]bool) bool {
	for attr, diff := range maxDiff {
		ok := false
		for la := range a[attr] {
			for lb := range b[attr] {
				d := la - lb
				if d < 0 {
					d = -d
				}
				if d <= diff {
					ok = true
					break
				}
			}
			if ok {
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// Filter wraps another reduction method and intersects its candidates with
// the pruning filter — the composition the paper's Sec. III-B implies
// (heuristics can be stacked).
type Filter struct {
	Inner  Method
	Prune  Pruning
	suffix string
}

// NewFilter composes a reduction method with length pruning.
func NewFilter(inner Method, prune Pruning) Filter {
	return Filter{Inner: inner, Prune: prune, suffix: "+pruned"}
}

// Name implements Method.
func (f Filter) Name() string { return f.Inner.Name() + f.suffix }

// Candidates implements Method.
func (f Filter) Candidates(xr *pdb.XRelation) verify.PairSet {
	return collectPairs(f, xr)
}
