package ssr

import (
	"math/rand"
	"testing"

	"probdedup/internal/keys"
	"probdedup/internal/pdb"
	"probdedup/internal/verify"
)

func clusterTestMethod(t *testing.T, schema []string) BlockingCluster {
	t.Helper()
	def, err := keys.ParseDef("name:3+job:2", schema)
	if err != nil {
		t.Fatal(err)
	}
	return BlockingCluster{Key: def, K: 4, Seed: 1}
}

// epochIndexOf builds the incremental index and asserts it is on the
// bounded-staleness tier.
func epochIndexOf(t *testing.T, m BlockingCluster) EpochIndex {
	t.Helper()
	idx, err := IncrementalOf(m)
	if err != nil {
		t.Fatal(err)
	}
	ei, ok := idx.(EpochIndex)
	if !ok {
		t.Fatalf("blocking-cluster index is not an EpochIndex: %T", idx)
	}
	return ei
}

// TestBlockingClusterResealMatchesBatch pins the epoch-boundary
// contract: right after a Reseal, the maintained set equals the batch
// candidate set of the residents in insertion order — also after
// interleaved removals.
func TestBlockingClusterResealMatchesBatch(t *testing.T) {
	u := shuffledUnion(40, 23)
	m := clusterTestMethod(t, u.Schema)
	idx := epochIndexOf(t, m)
	maintained := verify.PairSet{}
	on := func(d PairDelta) bool {
		applyDelta(t, maintained, d)
		return true
	}
	for _, x := range u.Tuples {
		idx.Insert(x, on)
	}
	idx.Reseal(on)
	if d := diffSets(maintained, m.Candidates(u)); len(d) != 0 {
		t.Fatalf("resealed set diverges from batch: %v", d[:min(len(d), 8)])
	}

	rest := pdb.NewXRelation(u.Name, u.Schema...)
	for i, x := range u.Tuples {
		if i%3 == 0 {
			idx.Remove(x.ID, on)
			continue
		}
		rest.Append(x)
	}
	idx.Reseal(on)
	if idx.Len() != len(rest.Tuples) {
		t.Fatalf("Len = %d, want %d", idx.Len(), len(rest.Tuples))
	}
	if d := diffSets(maintained, m.Candidates(rest)); len(d) != 0 {
		t.Fatalf("resealed set diverges from batch after removals: %v", d[:min(len(d), 8)])
	}
}

// TestBlockingClusterStalenessBound is the staleness-bound property
// test: under a random insert/remove schedule, the reported drift
// never exceeds the configured bound after any operation, the reseal
// itself is in-band (no call beyond Insert/Remove needed), and every
// delta stream stays set-consistent across epoch flips.
func TestBlockingClusterStalenessBound(t *testing.T) {
	u := shuffledUnion(60, 29)
	for _, maxDrift := range []float64{0, 0.1, 0.5} {
		m := clusterTestMethod(t, u.Schema)
		m.MaxDrift = maxDrift
		want := maxDrift
		if want <= 0 {
			want = defaultMaxDrift
		}
		idx := epochIndexOf(t, m)
		maintained := verify.PairSet{}
		on := func(d PairDelta) bool {
			applyDelta(t, maintained, d)
			return true
		}
		rng := rand.New(rand.NewSource(31))
		var resident []*pdb.XTuple
		next := 0
		check := func(op string) {
			st := idx.Staleness()
			if st.Bound != want {
				t.Fatalf("Staleness().Bound = %v, want %v", st.Bound, want)
			}
			if st.Residents != len(resident) || st.Residents != idx.Len() {
				t.Fatalf("Staleness().Residents = %d, want %d", st.Residents, len(resident))
			}
			if float64(st.Drifted) > st.Bound*float64(st.Residents) {
				t.Fatalf("after %s: drift %d exceeds bound %v of %d residents",
					op, st.Drifted, st.Bound, st.Residents)
			}
			if st.Epoch != idx.Epoch() {
				t.Fatalf("Staleness().Epoch = %d, Epoch() = %d", st.Epoch, idx.Epoch())
			}
		}
		for op := 0; op < 3*len(u.Tuples); op++ {
			if next < len(u.Tuples) && (len(resident) == 0 || rng.Intn(3) != 0) {
				x := u.Tuples[next]
				next++
				resident = append(resident, x)
				idx.Insert(x, on)
				check("insert")
				continue
			}
			if len(resident) == 0 {
				continue
			}
			i := rng.Intn(len(resident))
			idx.Remove(resident[i].ID, on)
			resident = append(resident[:i], resident[i+1:]...)
			check("remove")
		}
		if idx.Epoch() < 2 {
			t.Fatalf("expected several epochs under the schedule, got %d", idx.Epoch())
		}
	}
}

// TestBlockingClusterRecallCurve measures the recall-vs-batch curve of
// the bounded-staleness tier: at every prefix of an online insertion
// stream, the maintained candidate set is scored against the batch
// candidate set of the same residents with verify.Reduction (the batch
// set is the truth, so PairsCompleteness is the recall). The curve must
// return to exactly 1 at every epoch boundary, and a tighter drift
// bound must not average worse than a looser one.
func TestBlockingClusterRecallCurve(t *testing.T) {
	u := shuffledUnion(50, 43)
	meanRecall := map[float64]float64{}
	for _, maxDrift := range []float64{0.1, 0.5} {
		m := clusterTestMethod(t, u.Schema)
		m.MaxDrift = maxDrift
		idx := epochIndexOf(t, m)
		maintained := verify.PairSet{}
		on := func(d PairDelta) bool {
			applyDelta(t, maintained, d)
			return true
		}
		resident := pdb.NewXRelation(u.Name, u.Schema...)
		tab := verify.NewTable("n", "epoch", "drifted", "recall")
		var sum float64
		points := 0
		for _, x := range u.Tuples {
			epochBefore := idx.Epoch()
			idx.Insert(x, on)
			resident.Append(x)
			batch := m.Candidates(resident)
			red := verify.Reduction{
				TotalPairs: len(resident.Tuples) * (len(resident.Tuples) - 1) / 2,
				TrueTotal:  len(batch),
			}
			for p := range maintained {
				red.CandidatePairs++
				if batch[p] {
					red.TrueInCandidates++
				}
			}
			recall := red.PairsCompleteness()
			st := idx.Staleness()
			tab.AddRow(red.TotalPairs, st.Epoch, st.Drifted, recall)
			if idx.Epoch() > epochBefore && recall != 1 {
				t.Fatalf("n=%d: recall %v right after an epoch reseal, want exactly 1",
					len(resident.Tuples), recall)
			}
			sum += recall
			points++
		}
		meanRecall[maxDrift] = sum / float64(points)
		t.Logf("MaxDrift=%v mean recall %.4f over %d points\n%s",
			maxDrift, meanRecall[maxDrift], points, tab)
	}
	if meanRecall[0.1] < meanRecall[0.5] {
		t.Fatalf("tighter bound averaged worse recall: MaxDrift=0.1 %.4f < MaxDrift=0.5 %.4f",
			meanRecall[0.1], meanRecall[0.5])
	}
	for d, r := range meanRecall {
		if r < 0.5 {
			t.Fatalf("MaxDrift=%v: mean recall %.4f collapsed below 0.5", d, r)
		}
	}
}

// TestBlockingClusterManualResealIdempotent checks that Reseal is a
// fixed point: resealing twice in a row yields no deltas the second
// time and leaves the set untouched.
func TestBlockingClusterManualResealIdempotent(t *testing.T) {
	u := shuffledUnion(20, 37)
	m := clusterTestMethod(t, u.Schema)
	idx := epochIndexOf(t, m)
	maintained := verify.PairSet{}
	on := func(d PairDelta) bool {
		applyDelta(t, maintained, d)
		return true
	}
	for _, x := range u.Tuples {
		idx.Insert(x, on)
	}
	idx.Reseal(on)
	before := idx.Epoch()
	n := 0
	idx.Reseal(func(d PairDelta) bool {
		n++
		return true
	})
	if n != 0 {
		t.Fatalf("second Reseal yielded %d deltas, want 0", n)
	}
	if idx.Epoch() != before+1 {
		t.Fatalf("Epoch after manual reseal = %d, want %d", idx.Epoch(), before+1)
	}
	if idx.Staleness().Drifted != 0 {
		t.Fatalf("Drifted after reseal = %d, want 0", idx.Staleness().Drifted)
	}
}
