package ssr

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"probdedup/internal/dataset"
	"probdedup/internal/keys"
	"probdedup/internal/pdb"
	"probdedup/internal/verify"
	"probdedup/internal/worlds"
)

// incrementalTestMethods returns every incremental-capable method
// configured over the synthetic schema (name, job, age).
func incrementalTestMethods(t *testing.T, schema []string) []Method {
	t.Helper()
	def, err := keys.ParseDef("name:3+job:2", schema)
	if err != nil {
		t.Fatal(err)
	}
	return []Method{
		nil, // engine default: cross product
		CrossProduct{},
		SNMCertain{Key: def, Window: 4},
		SNMCertain{Key: def, Window: 1}, // normalized to the minimum window
		SNMRanked{Key: def, Window: 4},
		SNMRanked{Key: def, Window: 3, Strategy: MedianKey},
		SNMRanked{Key: def, Window: 3, Strategy: ModeKey},
		SNMAlternatives{Key: def, Window: 4},
		SNMMultiPass{Key: def, Window: 3, Select: TopWorlds, K: 3},
		SNMMultiPass{Key: def, Window: 3, Select: DissimilarWorlds, K: 2},
		BlockingCertain{Key: def},
		BlockingAlternatives{Key: def},
		NewFilter(SNMCertain{Key: def, Window: 5}, Pruning{MaxDiff: map[int]int{0: 3}}),
	}
}

// shuffledUnion builds a shuffled synthetic x-relation.
func shuffledUnion(entities int, seed int64) *pdb.XRelation {
	d := dataset.Generate(dataset.DefaultConfig(entities, seed))
	u := d.Union()
	rng := rand.New(rand.NewSource(seed + 1))
	rng.Shuffle(len(u.Tuples), func(i, j int) {
		u.Tuples[i], u.Tuples[j] = u.Tuples[j], u.Tuples[i]
	})
	return u
}

// applyDelta folds one delta into the maintained set, failing on
// inconsistent deltas (dropping an absent pair, re-adding a present
// one).
func applyDelta(t *testing.T, set verify.PairSet, d PairDelta) {
	t.Helper()
	if d.Pair.A == d.Pair.B {
		t.Fatalf("self pair %v", d.Pair)
	}
	if d.Dropped {
		if !set[d.Pair] {
			t.Fatalf("dropped pair %v not in maintained set", d.Pair)
		}
		delete(set, d.Pair)
		return
	}
	if set[d.Pair] {
		t.Fatalf("added pair %v already in maintained set", d.Pair)
	}
	set[d.Pair] = true
}

// diffSets reports the symmetric difference, empty when equal.
func diffSets(a, b verify.PairSet) []string {
	var out []string
	for p := range a {
		if !b[p] {
			out = append(out, "only-left "+p.A+","+p.B)
		}
	}
	for p := range b {
		if !a[p] {
			out = append(out, "only-right "+p.A+","+p.B)
		}
	}
	return out
}

// TestIncrementalInsertEquivalence proves the core contract: inserting
// a shuffled relation tuple by tuple and folding the deltas yields
// exactly the batch candidate set of the same relation, for every
// incremental-capable method.
func TestIncrementalInsertEquivalence(t *testing.T) {
	u := shuffledUnion(40, 7)
	for _, m := range incrementalTestMethods(t, u.Schema) {
		name := "nil"
		if m != nil {
			name = m.Name()
		}
		t.Run(name, func(t *testing.T) {
			idx, err := IncrementalOf(m)
			if err != nil {
				t.Fatal(err)
			}
			maintained := verify.PairSet{}
			for _, x := range u.Tuples {
				idx.Insert(x, func(d PairDelta) bool {
					applyDelta(t, maintained, d)
					return true
				})
			}
			if idx.Len() != len(u.Tuples) {
				t.Fatalf("Len = %d, want %d", idx.Len(), len(u.Tuples))
			}
			batch := StreamOf(m).Candidates(u)
			if d := diffSets(maintained, batch); len(d) != 0 {
				t.Fatalf("maintained set diverges from batch (%d deltas): %v", len(d), d[:min(len(d), 8)])
			}
		})
	}
}

// TestIncrementalRemoveEquivalence removes a third of the tuples after
// insertion and checks the maintained set equals the batch candidates
// of the remaining relation (original relative order preserved).
func TestIncrementalRemoveEquivalence(t *testing.T) {
	u := shuffledUnion(40, 11)
	for _, m := range incrementalTestMethods(t, u.Schema) {
		name := "nil"
		if m != nil {
			name = m.Name()
		}
		t.Run(name, func(t *testing.T) {
			idx, err := IncrementalOf(m)
			if err != nil {
				t.Fatal(err)
			}
			maintained := verify.PairSet{}
			on := func(d PairDelta) bool {
				applyDelta(t, maintained, d)
				return true
			}
			for _, x := range u.Tuples {
				idx.Insert(x, on)
			}
			rest := pdb.NewXRelation(u.Name, u.Schema...)
			for i, x := range u.Tuples {
				if i%3 == 0 {
					idx.Remove(x.ID, on)
					continue
				}
				rest.Append(x)
			}
			if idx.Len() != len(rest.Tuples) {
				t.Fatalf("Len = %d, want %d", idx.Len(), len(rest.Tuples))
			}
			batch := StreamOf(m).Candidates(rest)
			if d := diffSets(maintained, batch); len(d) != 0 {
				t.Fatalf("maintained set diverges from batch after removals: %v", d[:min(len(d), 8)])
			}
		})
	}
}

// TestIncrementalRemoveDropsAllPairsOfID checks the Remove contract
// directly: every maintained pair involving the removed id is yielded
// as a drop.
func TestIncrementalRemoveDropsAllPairsOfID(t *testing.T) {
	u := shuffledUnion(25, 13)
	for _, m := range incrementalTestMethods(t, u.Schema) {
		name := "nil"
		if m != nil {
			name = m.Name()
		}
		t.Run(name, func(t *testing.T) {
			idx, err := IncrementalOf(m)
			if err != nil {
				t.Fatal(err)
			}
			maintained := verify.PairSet{}
			on := func(d PairDelta) bool {
				applyDelta(t, maintained, d)
				return true
			}
			for _, x := range u.Tuples {
				idx.Insert(x, on)
			}
			victim := u.Tuples[len(u.Tuples)/2].ID
			idx.Remove(victim, on)
			for p := range maintained {
				if p.A == victim || p.B == victim {
					t.Fatalf("pair %v involving removed id survived", p)
				}
			}
			// Removing an unknown id is a silent no-op.
			before := len(maintained)
			idx.Remove("no-such-id", on)
			if len(maintained) != before {
				t.Fatal("removing an unknown id changed the maintained set")
			}
		})
	}
}

// TestSNMWindowDriftAndReentry exercises the windowed index's
// hand-constructed drop and re-entry mechanics: a pair of adjacent
// keys drops when a key lands between them, and re-enters when that
// key is removed again.
func TestSNMWindowDriftAndReentry(t *testing.T) {
	schema := []string{"name"}
	def, err := keys.ParseDef("name", schema)
	if err != nil {
		t.Fatal(err)
	}
	m := SNMCertain{Key: def, Window: 2}
	idx, err := IncrementalOf(m)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(id, name string) *pdb.XTuple {
		return pdb.NewXTuple(id, pdb.NewAlt(1, name))
	}
	maintained := verify.PairSet{}
	on := func(d PairDelta) bool {
		applyDelta(t, maintained, d)
		return true
	}
	idx.Insert(mk("a", "Anna"), on)
	idx.Insert(mk("c", "Cleo"), on)
	ac := verify.NewPair("a", "c")
	if !maintained[ac] {
		t.Fatal("adjacent pair (a,c) missing")
	}
	// b lands between a and c: (a,c) drifts out of the window.
	idx.Insert(mk("b", "Bert"), on)
	if maintained[ac] {
		t.Fatal("pair (a,c) should have dropped when b landed between")
	}
	if !maintained[verify.NewPair("a", "b")] || !maintained[verify.NewPair("b", "c")] {
		t.Fatal("new neighbor pairs of b missing")
	}
	// Removing b pulls (a,c) back into the window.
	idx.Remove("b", on)
	if !maintained[ac] {
		t.Fatal("pair (a,c) should have re-entered when b was removed")
	}
	if len(maintained) != 1 {
		t.Fatalf("maintained = %v, want only (a,c)", maintained)
	}
}

// TestInsertBatchNetEquivalence proves the batched enumeration
// contract: chunking a shuffled relation through InsertBatch and
// folding the net deltas yields exactly the batch candidate set, for
// every incremental-capable method and several chunk sizes. applyDelta
// additionally enforces that net deltas are consistent with the
// maintained set (no drop of an absent pair, no re-add of a present
// one) — i.e. each batch's deltas really are deduplicated net changes.
func TestInsertBatchNetEquivalence(t *testing.T) {
	u := shuffledUnion(40, 17)
	for _, chunk := range []int{1, 7, len(u.Tuples)} {
		for _, m := range incrementalTestMethods(t, u.Schema) {
			name := "nil"
			if m != nil {
				name = m.Name()
			}
			t.Run(fmt.Sprintf("%s/chunk=%d", name, chunk), func(t *testing.T) {
				idx, err := IncrementalOf(m)
				if err != nil {
					t.Fatal(err)
				}
				maintained := verify.PairSet{}
				for lo := 0; lo < len(u.Tuples); lo += chunk {
					hi := min(lo+chunk, len(u.Tuples))
					for _, d := range InsertBatch(idx, u.Tuples[lo:hi]) {
						if d.Source < 0 || d.Source >= hi-lo {
							t.Fatalf("delta %v attributes to batch position %d of %d", d.Pair, d.Source, hi-lo)
						}
						applyDelta(t, maintained, d.PairDelta)
					}
				}
				if idx.Len() != len(u.Tuples) {
					t.Fatalf("Len = %d, want %d", idx.Len(), len(u.Tuples))
				}
				batch := StreamOf(m).Candidates(u)
				if d := diffSets(maintained, batch); len(d) != 0 {
					t.Fatalf("maintained set diverges from batch: %v", d[:min(len(d), 8)])
				}
			})
		}
	}
}

// TestInsertBatchCancelsWindowChurn pins the dedup behavior down on
// the hand-constructed window-drift case: inserting a, c, then b (which
// lands between them, window 2) in ONE batch must never surface the
// intra-batch churn pair (a,c) — it entered and left within the batch —
// while sequential insertion yields both its add and its drop.
func TestInsertBatchCancelsWindowChurn(t *testing.T) {
	schema := []string{"name"}
	def, err := keys.ParseDef("name", schema)
	if err != nil {
		t.Fatal(err)
	}
	m := SNMCertain{Key: def, Window: 2}
	mk := func(id, name string) *pdb.XTuple {
		return pdb.NewXTuple(id, pdb.NewAlt(1, name))
	}
	tuples := []*pdb.XTuple{mk("a", "Anna"), mk("c", "Cleo"), mk("b", "Bert")}

	seq, err := IncrementalOf(m)
	if err != nil {
		t.Fatal(err)
	}
	var raw []PairDelta
	for _, x := range tuples {
		seq.Insert(x, func(d PairDelta) bool {
			raw = append(raw, d)
			return true
		})
	}
	churned := 0
	for _, d := range raw {
		if d.Pair == verify.NewPair("a", "c") {
			churned++
		}
	}
	if churned != 2 {
		t.Fatalf("sequential insertion yielded %d deltas for the churn pair (a,c), want add+drop", churned)
	}

	idx, err := IncrementalOf(m)
	if err != nil {
		t.Fatal(err)
	}
	net := InsertBatch(idx, tuples)
	want := map[verify.Pair]int{ // pair -> settling batch position
		verify.NewPair("a", "b"): 2,
		verify.NewPair("b", "c"): 2,
	}
	if len(net) != len(want) {
		t.Fatalf("net deltas = %v, want exactly the pairs of b", net)
	}
	for _, d := range net {
		if d.Dropped {
			t.Fatalf("net delta %v is a drop, want only adds", d.Pair)
		}
		src, ok := want[d.Pair]
		if !ok {
			t.Fatalf("unexpected net pair %v (intra-batch churn leaked?)", d.Pair)
		}
		if d.Source != src {
			t.Fatalf("pair %v attributed to batch position %d, want %d", d.Pair, d.Source, src)
		}
	}
}

// nonIncrementalMethod is a third-party Method without an Incremental
// hook, standing in for user code that has not opted in.
type nonIncrementalMethod struct{}

func (nonIncrementalMethod) Name() string                                { return "third-party" }
func (nonIncrementalMethod) Candidates(xr *pdb.XRelation) verify.PairSet { return verify.PairSet{} }

// TestIncrementalOfCoverage checks that every built-in reduction method
// supports incremental maintenance — the formerly batch-only ones
// included — and that methods without the hook fail with the typed
// ErrNotIncremental sentinel (wrapped with the method's name).
func TestIncrementalOfCoverage(t *testing.T) {
	def := keys.NewDef(keys.Part{Attr: 0, Prefix: 3})
	for _, m := range []Method{
		CrossProduct{},
		SNMCertain{Key: def, Window: 3},
		SNMRanked{Key: def, Window: 3},
		SNMRanked{Key: def, Window: 3, Strategy: MedianKey},
		SNMRanked{Key: def, Window: 3, Strategy: ModeKey},
		SNMAlternatives{Key: def, Window: 3},
		SNMMultiPass{Key: def, Window: 3},
		BlockingCertain{Key: def},
		BlockingAlternatives{Key: def},
		BlockingCluster{Key: def},
		NewFilter(SNMRanked{Key: def, Window: 3}, Pruning{}),
	} {
		if _, err := IncrementalOf(m); err != nil {
			t.Errorf("%s: expected incremental support, got %v", m.Name(), err)
		}
	}
	for _, m := range []Method{
		nonIncrementalMethod{},
		NewFilter(nonIncrementalMethod{}, Pruning{}),
	} {
		_, err := IncrementalOf(m)
		if err == nil {
			t.Fatalf("%s: expected an error, got nil", m.Name())
		}
		if !errors.Is(err, ErrNotIncremental) {
			t.Errorf("%s: error %q does not wrap ErrNotIncremental", m.Name(), err)
		}
		if !strings.Contains(err.Error(), "third-party") {
			t.Errorf("%s: error %q does not name the method", m.Name(), err)
		}
	}
}

// TestIncrementalEarlyStopKeepsStructure verifies that a yield
// returning false truncates delta delivery but leaves the structural
// update applied.
func TestIncrementalEarlyStopKeepsStructure(t *testing.T) {
	def := keys.NewDef(keys.Part{Attr: 0, Prefix: 3})
	idx, err := IncrementalOf(BlockingCertain{Key: def})
	if err != nil {
		t.Fatal(err)
	}
	mk := func(id, name string) *pdb.XTuple {
		return pdb.NewXTuple(id, pdb.NewAlt(1, name))
	}
	idx.Insert(mk("a", "Tim"), func(PairDelta) bool { return true })
	idx.Insert(mk("b", "Tim"), func(PairDelta) bool { return true })
	if ok := idx.Insert(mk("c", "Tim"), func(PairDelta) bool { return false }); ok {
		t.Fatal("expected early-stopped Insert to report false")
	}
	if idx.Len() != 3 {
		t.Fatalf("Len = %d after early stop, want 3", idx.Len())
	}
}

// TestIncrementalMultiPassWorldSelection pins the all-worlds multipass
// configurations at a scale where full enumeration is feasible, covering
// both the EnumerateIdx success path and the top-k fallback for an
// infeasible MaxWorlds — including the mid-stream switches between the
// two bases as the relation grows past (and, via removals, shrinks back
// under) the world limit.
func TestIncrementalMultiPassWorldSelection(t *testing.T) {
	u := shuffledUnion(3, 19)
	def, err := keys.ParseDef("name:3+job:2", u.Schema)
	if err != nil {
		t.Fatal(err)
	}
	lists := make([][]worlds.Choice, len(u.Tuples))
	for i, x := range u.Tuples {
		lists[i] = worlds.Choices(x, true)
	}
	const feasible = 1_000_000
	if c := worlds.CountOf(lists); c >= feasible {
		t.Fatalf("dataset has %g worlds; shrink it so enumeration stays feasible", c)
	}
	for _, m := range []Method{
		SNMMultiPass{Key: def, Window: 3, MaxWorlds: feasible}, // enumeration succeeds
		SNMMultiPass{Key: def, Window: 3, MaxWorlds: 8},        // falls back to top worlds
	} {
		t.Run(fmt.Sprintf("%s-max%d", m.Name(), m.(SNMMultiPass).MaxWorlds), func(t *testing.T) {
			idx, err := IncrementalOf(m)
			if err != nil {
				t.Fatal(err)
			}
			maintained := verify.PairSet{}
			on := func(d PairDelta) bool {
				applyDelta(t, maintained, d)
				return true
			}
			for _, x := range u.Tuples {
				idx.Insert(x, on)
			}
			if d := diffSets(maintained, StreamOf(m).Candidates(u)); len(d) != 0 {
				t.Fatalf("maintained set diverges from batch: %v", d[:min(len(d), 8)])
			}
			rest := pdb.NewXRelation(u.Name, u.Schema...)
			for i, x := range u.Tuples {
				if i%2 == 0 {
					idx.Remove(x.ID, on)
					continue
				}
				rest.Append(x)
			}
			if d := diffSets(maintained, StreamOf(m).Candidates(rest)); len(d) != 0 {
				t.Fatalf("maintained set diverges from batch after removals: %v", d[:min(len(d), 8)])
			}
		})
	}
}
