package pdb

import (
	"fmt"
	"math"
	"strings"
)

// Tuple is a probabilistic tuple of the dependency-free model (Sec. IV-A):
// every attribute value is an independent random variable (a Dist) and the
// tuple carries a membership probability P (tuple level uncertainty).
type Tuple struct {
	// ID identifies the tuple across the pipeline (e.g. "t11"). IDs must be
	// unique within a relation.
	ID string
	// Attrs holds one distribution per schema attribute, by position.
	Attrs []Dist
	// P is the tuple membership probability p(t) ∈ (0,1].
	P float64
}

// NewTuple builds a tuple with membership probability p.
func NewTuple(id string, p float64, attrs ...Dist) *Tuple {
	return &Tuple{ID: id, Attrs: attrs, P: p}
}

// Validate checks the tuple against the given schema width.
func (t *Tuple) Validate(nattrs int) error {
	if t.ID == "" {
		return fmt.Errorf("pdb: tuple has empty ID")
	}
	if len(t.Attrs) != nattrs {
		return fmt.Errorf("pdb: tuple %s has %d attributes, schema has %d", t.ID, len(t.Attrs), nattrs)
	}
	if !(t.P > 0 && t.P <= 1+Eps) || math.IsNaN(t.P) {
		return fmt.Errorf("pdb: tuple %s has membership probability %v outside (0,1]", t.ID, t.P)
	}
	for i, d := range t.Attrs {
		if err := d.Validate(); err != nil {
			return fmt.Errorf("pdb: tuple %s attribute %d: %w", t.ID, i, err)
		}
	}
	return nil
}

// Clone returns a deep-enough copy (Dists are immutable, so sharing them is
// safe; the attribute slice is copied).
func (t *Tuple) Clone() *Tuple {
	attrs := make([]Dist, len(t.Attrs))
	copy(attrs, t.Attrs)
	return &Tuple{ID: t.ID, Attrs: attrs, P: t.P}
}

// String renders the tuple in the paper's tabular notation.
func (t *Tuple) String() string {
	parts := make([]string, len(t.Attrs))
	for i, d := range t.Attrs {
		parts[i] = d.String()
	}
	return fmt.Sprintf("%s(%s | p=%.4g)", t.ID, strings.Join(parts, ", "), t.P)
}

// Relation is a probabilistic relation of the dependency-free model: a named
// schema plus a list of probabilistic tuples.
type Relation struct {
	Name   string
	Schema []string
	Tuples []*Tuple
}

// NewRelation builds an empty relation with the given schema.
func NewRelation(name string, schema ...string) *Relation {
	return &Relation{Name: name, Schema: schema}
}

// Append adds tuples to the relation and returns it for chaining.
func (r *Relation) Append(ts ...*Tuple) *Relation {
	r.Tuples = append(r.Tuples, ts...)
	return r
}

// AttrIndex returns the position of the named attribute, or -1.
func (r *Relation) AttrIndex(name string) int {
	for i, a := range r.Schema {
		if a == name {
			return i
		}
	}
	return -1
}

// TupleByID returns the tuple with the given ID, or nil.
func (r *Relation) TupleByID(id string) *Tuple {
	for _, t := range r.Tuples {
		if t.ID == id {
			return t
		}
	}
	return nil
}

// Validate checks schema consistency, ID uniqueness and per-tuple invariants.
func (r *Relation) Validate() error {
	if len(r.Schema) == 0 {
		return fmt.Errorf("pdb: relation %s has empty schema", r.Name)
	}
	seen := make(map[string]bool, len(r.Tuples))
	for _, t := range r.Tuples {
		if err := t.Validate(len(r.Schema)); err != nil {
			return err
		}
		if seen[t.ID] {
			return fmt.Errorf("pdb: relation %s has duplicate tuple ID %s", r.Name, t.ID)
		}
		seen[t.ID] = true
	}
	return nil
}

// Clone deep-copies the relation.
func (r *Relation) Clone() *Relation {
	nr := &Relation{Name: r.Name, Schema: append([]string(nil), r.Schema...)}
	nr.Tuples = make([]*Tuple, len(r.Tuples))
	for i, t := range r.Tuples {
		nr.Tuples[i] = t.Clone()
	}
	return nr
}

// String renders the relation as a small table.
func (r *Relation) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s(%s)\n", r.Name, strings.Join(r.Schema, ", "))
	for _, t := range r.Tuples {
		fmt.Fprintf(&b, "  %s\n", t)
	}
	return b.String()
}
