package pdb

import (
	"fmt"
	"math"
	"strings"
)

// Alt is one alternative tuple tⁱ of an x-tuple. Alternatives of an x-tuple
// are mutually exclusive. Individual attribute values of an alternative may
// themselves be uncertain (a Dist), which is how the paper represents
// pattern values such as 'mu*' inside an alternative.
type Alt struct {
	// Values holds one distribution per schema attribute, by position.
	Values []Dist
	// P is the probability of this alternative; Σ over the x-tuple's
	// alternatives must be ≤ 1.
	P float64
}

// NewAlt builds an alternative from certain string values.
func NewAlt(p float64, values ...string) Alt {
	vs := make([]Dist, len(values))
	for i, s := range values {
		vs[i] = Certain(s)
	}
	return Alt{Values: vs, P: p}
}

// NewAltDists builds an alternative whose attribute values may be uncertain.
func NewAltDists(p float64, values ...Dist) Alt {
	return Alt{Values: append([]Dist(nil), values...), P: p}
}

// XTuple is a Trio/ULDB x-tuple: one or more mutually exclusive alternative
// tuples (Sec. IV-B). If the alternative probabilities sum to less than one
// the x-tuple is a "maybe" x-tuple (marked '?' in the paper's figures) and
// the remainder is the probability that no alternative belongs to the
// relation.
type XTuple struct {
	// ID identifies the x-tuple (e.g. "t32"). IDs must be unique within an
	// x-relation.
	ID string
	// Alts are the mutually exclusive alternatives t¹..tⁿ.
	Alts []Alt
}

// NewXTuple builds an x-tuple.
func NewXTuple(id string, alts ...Alt) *XTuple {
	return &XTuple{ID: id, Alts: alts}
}

// P returns the x-tuple membership probability p(t) = Σ p(tʲ).
func (x *XTuple) P() float64 {
	p := 0.0
	for _, a := range x.Alts {
		p += a.P
	}
	return p
}

// Maybe reports whether non-existence of the whole x-tuple is possible,
// i.e. p(t) < 1 (the paper's '?').
func (x *XTuple) Maybe() bool { return x.P() < 1-Eps }

// NormalizedAltP returns p(tⁱ)/p(t), the alternative probability conditioned
// on the x-tuple belonging to its relation. This is the conditioning /
// scaling of Sec. IV-B: tuple membership must not influence duplicate
// detection.
func (x *XTuple) NormalizedAltP(i int) float64 {
	pt := x.P()
	if pt <= Eps {
		return 0
	}
	return x.Alts[i].P / pt
}

// MostProbableAlt returns the index of the most probable alternative.
// Ties are broken by the lower index, making the choice deterministic.
func (x *XTuple) MostProbableAlt() int {
	best, bestP := 0, math.Inf(-1)
	for i, a := range x.Alts {
		if a.P > bestP+Eps {
			best, bestP = i, a.P
		}
	}
	return best
}

// Validate checks the x-tuple against the given schema width.
func (x *XTuple) Validate(nattrs int) error {
	if x.ID == "" {
		return fmt.Errorf("pdb: x-tuple has empty ID")
	}
	if len(x.Alts) == 0 {
		return fmt.Errorf("pdb: x-tuple %s has no alternatives", x.ID)
	}
	total := 0.0
	for i, a := range x.Alts {
		if len(a.Values) != nattrs {
			return fmt.Errorf("pdb: x-tuple %s alternative %d has %d attributes, schema has %d", x.ID, i, len(a.Values), nattrs)
		}
		if !(a.P > 0 && a.P <= 1+Eps) || math.IsNaN(a.P) {
			return fmt.Errorf("pdb: x-tuple %s alternative %d has probability %v outside (0,1]", x.ID, i, a.P)
		}
		for j, d := range a.Values {
			if err := d.Validate(); err != nil {
				return fmt.Errorf("pdb: x-tuple %s alternative %d attribute %d: %w", x.ID, i, j, err)
			}
		}
		total += a.P
	}
	if total > 1+Eps {
		return fmt.Errorf("pdb: x-tuple %s alternative probabilities sum to %v > 1", x.ID, total)
	}
	return nil
}

// Clone deep-copies the x-tuple.
func (x *XTuple) Clone() *XTuple {
	alts := make([]Alt, len(x.Alts))
	for i, a := range x.Alts {
		alts[i] = Alt{Values: append([]Dist(nil), a.Values...), P: a.P}
	}
	return &XTuple{ID: x.ID, Alts: alts}
}

// String renders the x-tuple in the paper's notation, one alternative per
// line, with a trailing '?' for maybe x-tuples.
func (x *XTuple) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s{", x.ID)
	for i, a := range x.Alts {
		if i > 0 {
			b.WriteString("; ")
		}
		parts := make([]string, len(a.Values))
		for j, d := range a.Values {
			parts[j] = d.String()
		}
		fmt.Fprintf(&b, "(%s | %.4g)", strings.Join(parts, ", "), a.P)
	}
	b.WriteString("}")
	if x.Maybe() {
		b.WriteString(" ?")
	}
	return b.String()
}

// XRelation is a relation containing x-tuples.
type XRelation struct {
	Name   string
	Schema []string
	Tuples []*XTuple
}

// NewXRelation builds an empty x-relation with the given schema.
func NewXRelation(name string, schema ...string) *XRelation {
	return &XRelation{Name: name, Schema: schema}
}

// Append adds x-tuples and returns the relation for chaining.
func (r *XRelation) Append(ts ...*XTuple) *XRelation {
	r.Tuples = append(r.Tuples, ts...)
	return r
}

// AttrIndex returns the position of the named attribute, or -1.
func (r *XRelation) AttrIndex(name string) int {
	for i, a := range r.Schema {
		if a == name {
			return i
		}
	}
	return -1
}

// TupleByID returns the x-tuple with the given ID, or nil.
func (r *XRelation) TupleByID(id string) *XTuple {
	for _, t := range r.Tuples {
		if t.ID == id {
			return t
		}
	}
	return nil
}

// Validate checks schema consistency, ID uniqueness and per-x-tuple
// invariants.
func (r *XRelation) Validate() error {
	if len(r.Schema) == 0 {
		return fmt.Errorf("pdb: x-relation %s has empty schema", r.Name)
	}
	seen := make(map[string]bool, len(r.Tuples))
	for _, t := range r.Tuples {
		if err := t.Validate(len(r.Schema)); err != nil {
			return err
		}
		if seen[t.ID] {
			return fmt.Errorf("pdb: x-relation %s has duplicate x-tuple ID %s", r.Name, t.ID)
		}
		seen[t.ID] = true
	}
	return nil
}

// Clone deep-copies the x-relation.
func (r *XRelation) Clone() *XRelation {
	nr := &XRelation{Name: r.Name, Schema: append([]string(nil), r.Schema...)}
	nr.Tuples = make([]*XTuple, len(r.Tuples))
	for i, t := range r.Tuples {
		nr.Tuples[i] = t.Clone()
	}
	return nr
}

// Union returns a new x-relation containing the x-tuples of r followed by
// those of o (the paper's ℛ34 = ℛ3 ∪ ℛ4). Schemas must have equal width;
// the receiver's schema names win.
func (r *XRelation) Union(name string, o *XRelation) (*XRelation, error) {
	if len(r.Schema) != len(o.Schema) {
		return nil, fmt.Errorf("pdb: union of schemas with widths %d and %d", len(r.Schema), len(o.Schema))
	}
	u := &XRelation{Name: name, Schema: append([]string(nil), r.Schema...)}
	u.Tuples = append(u.Tuples, r.Tuples...)
	u.Tuples = append(u.Tuples, o.Tuples...)
	return u, nil
}

// String renders the x-relation as a small table.
func (r *XRelation) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s(%s)\n", r.Name, strings.Join(r.Schema, ", "))
	for _, t := range r.Tuples {
		fmt.Fprintf(&b, "  %s\n", t)
	}
	return b.String()
}

// ToXRelation lifts a dependency-free Relation into the x-tuple model.
// Each tuple becomes an x-tuple with a single alternative carrying the
// tuple's attribute distributions and probability p(t). This embedding
// preserves the possible-world semantics for duplicate detection because
// per-alternative attribute values may themselves be uncertain.
func (r *Relation) ToXRelation() *XRelation {
	xr := &XRelation{Name: r.Name, Schema: append([]string(nil), r.Schema...)}
	xr.Tuples = make([]*XTuple, len(r.Tuples))
	for i, t := range r.Tuples {
		xr.Tuples[i] = &XTuple{
			ID:   t.ID,
			Alts: []Alt{{Values: append([]Dist(nil), t.Attrs...), P: t.P}},
		}
	}
	return xr
}

// ExpandAlternatives converts a dependency-free tuple into an x-tuple whose
// alternatives enumerate the cross product of the attribute distributions
// (each combination becomes one alternative with the product probability,
// scaled by p(t)). Useful for small tuples when an algorithm needs explicit
// alternatives; the number of alternatives is the product of the support
// sizes.
func (t *Tuple) ExpandAlternatives() *XTuple {
	combos := []Alt{{Values: nil, P: t.P}}
	for _, d := range t.Attrs {
		support := d.Support()
		next := make([]Alt, 0, len(combos)*len(support))
		for _, c := range combos {
			for _, a := range support {
				vals := make([]Dist, len(c.Values)+1)
				copy(vals, c.Values)
				if a.Value.IsNull() {
					vals[len(c.Values)] = CertainNull()
				} else {
					vals[len(c.Values)] = Certain(a.Value.S())
				}
				next = append(next, Alt{Values: vals, P: c.P * a.P})
			}
		}
		combos = next
	}
	return &XTuple{ID: t.ID, Alts: combos}
}
