package pdb

import "fmt"

// Value is a single domain value of an attribute. The zero Value is the
// non-existence marker ⊥ (Null): it denotes that the corresponding property
// of the represented real-world object does not exist.
//
// A Value may additionally carry an interned symbol (see internal/sym):
// a dense uint32 annotation the detection engine attaches at
// standardization time so downstream layers (the similarity cache, the
// candidate pre-filter) can key and compare values by integer instead of
// by string. The symbol is pure metadata — Equal, String and every other
// observer ignore it.
type Value struct {
	s      string
	exists bool
	sym    uint32
}

// Null is the non-existence marker ⊥.
var Null = Value{}

// V returns a regular (existing) domain value.
func V(s string) Value { return Value{s: s, exists: true} }

// IsNull reports whether v is the non-existence marker ⊥.
func (v Value) IsNull() bool { return !v.exists }

// Sym returns the interned symbol of the value, or 0 when the value was
// never interned (including ⊥, which is represented by null mass, not a
// symbol).
func (v Value) Sym() uint32 { return v.sym }

// WithSym returns a copy of v annotated with the interned symbol. ⊥ is
// returned unchanged: non-existence has no symbol.
func (v Value) WithSym(sym uint32) Value {
	if v.IsNull() {
		return v
	}
	v.sym = sym
	return v
}

// S returns the string form of the value. It returns "" for ⊥; use IsNull to
// distinguish ⊥ from an empty string value created with V("").
func (v Value) S() string { return v.s }

// Equal reports whether two values denote the same domain element. Two ⊥
// values are equal: they refer to the same real-world fact, namely that the
// property does not exist (Sec. IV-A of the paper).
func (v Value) Equal(w Value) bool {
	if v.IsNull() || w.IsNull() {
		return v.IsNull() && w.IsNull()
	}
	return v.s == w.s
}

// String implements fmt.Stringer. ⊥ prints as "⊥".
func (v Value) String() string {
	if v.IsNull() {
		return "⊥"
	}
	return v.s
}

// Format implements fmt.Formatter so that %q quotes the underlying string.
func (v Value) Format(f fmt.State, verb rune) {
	switch verb {
	case 'q':
		if v.IsNull() {
			fmt.Fprint(f, "⊥")
			return
		}
		fmt.Fprintf(f, "%q", v.s)
	default:
		fmt.Fprint(f, v.String())
	}
}
