package pdb

import (
	"strings"
	"testing"
)

// PaperR1 builds the probabilistic relation ℛ1 of Fig. 4.
func PaperR1() *Relation {
	r := NewRelation("R1", "name", "job")
	r.Append(
		NewTuple("t11", 1.0, Certain("Tim"),
			MustDist(Alternative{V("machinist"), 0.7}, Alternative{V("mechanic"), 0.2})),
		NewTuple("t12", 1.0,
			MustDist(Alternative{V("John"), 0.5}, Alternative{V("Johan"), 0.5}),
			MustDist(Alternative{V("baker"), 0.7}, Alternative{V("confectioner"), 0.3})),
		NewTuple("t13", 0.6,
			MustDist(Alternative{V("Tim"), 0.6}, Alternative{V("Tom"), 0.4}),
			Certain("machinist")),
	)
	return r
}

// PaperR2 builds the probabilistic relation ℛ2 of Fig. 4.
func PaperR2() *Relation {
	r := NewRelation("R2", "name", "job")
	r.Append(
		NewTuple("t21", 1.0,
			MustDist(Alternative{V("John"), 0.7}, Alternative{V("Jon"), 0.3}),
			Certain("confectionist")),
		NewTuple("t22", 0.8,
			MustDist(Alternative{V("Tim"), 0.7}, Alternative{V("Kim"), 0.3}),
			Certain("mechanic")),
		NewTuple("t23", 0.7, Certain("Timothy"),
			MustDist(Alternative{V("mechanist"), 0.8}, Alternative{V("engineer"), 0.2})),
	)
	return r
}

func TestPaperRelationsValidate(t *testing.T) {
	for _, r := range []*Relation{PaperR1(), PaperR2()} {
		if err := r.Validate(); err != nil {
			t.Errorf("%s: %v", r.Name, err)
		}
	}
}

func TestRelationAccessors(t *testing.T) {
	r := PaperR1()
	if r.AttrIndex("job") != 1 || r.AttrIndex("name") != 0 || r.AttrIndex("zzz") != -1 {
		t.Fatal("AttrIndex broken")
	}
	if r.TupleByID("t12") == nil || r.TupleByID("nope") != nil {
		t.Fatal("TupleByID broken")
	}
}

func TestRelationValidateErrors(t *testing.T) {
	r := NewRelation("bad", "a")
	r.Append(NewTuple("t1", 1.0, Certain("x")), NewTuple("t1", 1.0, Certain("y")))
	if err := r.Validate(); err == nil || !strings.Contains(err.Error(), "duplicate tuple ID") {
		t.Fatalf("want duplicate ID error, got %v", err)
	}

	r2 := NewRelation("bad2", "a", "b")
	r2.Append(NewTuple("t1", 1.0, Certain("x")))
	if err := r2.Validate(); err == nil {
		t.Fatal("want arity error")
	}

	r3 := NewRelation("bad3", "a")
	r3.Append(NewTuple("t1", 0, Certain("x")))
	if err := r3.Validate(); err == nil {
		t.Fatal("want p(t)=0 error")
	}

	r4 := NewRelation("bad4")
	if err := r4.Validate(); err == nil {
		t.Fatal("want empty schema error")
	}

	r5 := NewRelation("bad5", "a")
	r5.Append(NewTuple("", 1.0, Certain("x")))
	if err := r5.Validate(); err == nil {
		t.Fatal("want empty ID error")
	}
}

func TestRelationClone(t *testing.T) {
	r := PaperR1()
	c := r.Clone()
	c.Tuples[0].P = 0.123
	c.Tuples[0].Attrs[0] = Certain("changed")
	if r.Tuples[0].P != 1.0 || r.Tuples[0].Attrs[0].String() != "Tim" {
		t.Fatal("Clone must not share mutable state")
	}
}

func TestTupleString(t *testing.T) {
	tu := PaperR1().Tuples[0]
	s := tu.String()
	for _, want := range []string{"t11", "Tim", "machinist", "p=1"} {
		if !strings.Contains(s, want) {
			t.Errorf("tuple string %q missing %q", s, want)
		}
	}
}

func TestRelationString(t *testing.T) {
	s := PaperR1().String()
	if !strings.Contains(s, "R1(name, job)") || !strings.Contains(s, "t13") {
		t.Fatalf("relation string missing parts: %q", s)
	}
}
