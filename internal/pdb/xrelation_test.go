package pdb

import (
	"strings"
	"testing"
)

// PaperR3 builds the x-relation ℛ3 of Fig. 5. The pattern value 'mu*' of
// t31's second alternative is expanded to a small uniform distribution as
// described in Sec. IV-B.
func PaperR3() *XRelation {
	r := NewXRelation("R3", "name", "job")
	r.Append(
		NewXTuple("t31",
			NewAlt(0.7, "John", "pilot"),
			NewAltDists(0.3, Certain("Johan"), Uniform("musician", "muralist"))),
		NewXTuple("t32",
			NewAlt(0.3, "Tim", "mechanic"),
			NewAlt(0.2, "Jim", "mechanic"),
			NewAlt(0.4, "Jim", "baker")),
	)
	return r
}

// PaperR4 builds the x-relation ℛ4 of Fig. 5.
func PaperR4() *XRelation {
	r := NewXRelation("R4", "name", "job")
	r.Append(
		NewXTuple("t41",
			NewAlt(0.8, "John", "pilot"),
			NewAlt(0.2, "Johan", "pianist")),
		NewXTuple("t42", NewAlt(0.8, "Tom", "mechanic")),
		NewXTuple("t43",
			NewAltDists(0.2, Certain("John"), CertainNull()),
			NewAlt(0.6, "Sean", "pilot")),
	)
	return r
}

func TestPaperXRelationsValidate(t *testing.T) {
	for _, r := range []*XRelation{PaperR3(), PaperR4()} {
		if err := r.Validate(); err != nil {
			t.Errorf("%s: %v", r.Name, err)
		}
	}
}

func TestXTupleMembershipAndMaybe(t *testing.T) {
	r3, r4 := PaperR3(), PaperR4()
	cases := []struct {
		x     *XTuple
		p     float64
		maybe bool
	}{
		{r3.TupleByID("t31"), 1.0, false},
		{r3.TupleByID("t32"), 0.9, true}, // marked '?' in Fig. 5
		{r4.TupleByID("t41"), 1.0, false},
		{r4.TupleByID("t42"), 0.8, true},
		{r4.TupleByID("t43"), 0.8, true},
	}
	for _, c := range cases {
		if !almost(c.x.P(), c.p) {
			t.Errorf("%s: p(t)=%v want %v", c.x.ID, c.x.P(), c.p)
		}
		if c.x.Maybe() != c.maybe {
			t.Errorf("%s: maybe=%v want %v", c.x.ID, c.x.Maybe(), c.maybe)
		}
	}
}

func TestNormalizedAltP(t *testing.T) {
	// Conditioning of Sec. IV-B: p(t¹32)/p(t32) = 0.3/0.9.
	t32 := PaperR3().TupleByID("t32")
	want := []float64{0.3 / 0.9, 0.2 / 0.9, 0.4 / 0.9}
	total := 0.0
	for i, w := range want {
		got := t32.NormalizedAltP(i)
		if !almost(got, w) {
			t.Errorf("alt %d: %v want %v", i, got, w)
		}
		total += got
	}
	if !almost(total, 1) {
		t.Errorf("normalized probabilities must sum to 1, got %v", total)
	}
}

func TestMostProbableAlt(t *testing.T) {
	t32 := PaperR3().TupleByID("t32")
	if got := t32.MostProbableAlt(); got != 2 {
		t.Fatalf("most probable alternative of t32 is (Jim,baker)=index 2, got %d", got)
	}
	t41 := PaperR4().TupleByID("t41")
	if got := t41.MostProbableAlt(); got != 0 {
		t.Fatalf("most probable alternative of t41 is index 0, got %d", got)
	}
}

func TestXTupleValidateErrors(t *testing.T) {
	cases := []struct {
		name string
		x    *XTuple
	}{
		{"no alts", NewXTuple("t")},
		{"empty id", NewXTuple("", NewAlt(1, "a", "b"))},
		{"sum>1", NewXTuple("t", NewAlt(0.7, "a", "b"), NewAlt(0.6, "c", "d"))},
		{"zero p", NewXTuple("t", NewAlt(0, "a", "b"))},
		{"arity", NewXTuple("t", NewAlt(1, "a"))},
	}
	for _, c := range cases {
		if err := c.x.Validate(2); err == nil {
			t.Errorf("%s: want error", c.name)
		}
	}
}

func TestXRelationUnion(t *testing.T) {
	u, err := PaperR3().Union("R34", PaperR4())
	if err != nil {
		t.Fatal(err)
	}
	if len(u.Tuples) != 5 {
		t.Fatalf("|R34| = %d, want 5", len(u.Tuples))
	}
	if err := u.Validate(); err != nil {
		t.Fatal(err)
	}
	// Union with mismatched width fails.
	bad := NewXRelation("w", "only")
	if _, err := PaperR3().Union("x", bad); err == nil {
		t.Fatal("want width mismatch error")
	}
}

func TestXTupleClone(t *testing.T) {
	x := PaperR3().TupleByID("t32")
	c := x.Clone()
	c.Alts[0].P = 0.99
	c.Alts[0].Values[0] = Certain("changed")
	if x.Alts[0].P != 0.3 || x.Alts[0].Values[0].String() != "Tim" {
		t.Fatal("Clone must not share mutable state")
	}
}

func TestXTupleString(t *testing.T) {
	s := PaperR3().TupleByID("t32").String()
	if !strings.Contains(s, "?") {
		t.Fatalf("maybe x-tuple must print '?': %q", s)
	}
	if !strings.Contains(s, "Tim") || !strings.Contains(s, "baker") {
		t.Fatalf("x-tuple string missing values: %q", s)
	}
}

func TestToXRelation(t *testing.T) {
	xr := PaperR1().ToXRelation()
	if err := xr.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(xr.Tuples) != 3 {
		t.Fatalf("len=%d", len(xr.Tuples))
	}
	x := xr.TupleByID("t13")
	if len(x.Alts) != 1 || !almost(x.Alts[0].P, 0.6) {
		t.Fatalf("lifting must keep p(t): %v", x)
	}
	if !almost(x.Alts[0].Values[0].P(V("Tim")), 0.6) {
		t.Fatal("lifting must keep attribute distributions")
	}
}

func TestExpandAlternatives(t *testing.T) {
	// t11: name certain Tim, job {machinist .7, mechanic .2, ⊥ .1}
	tu := PaperR1().TupleByID("t11")
	x := tu.ExpandAlternatives()
	if len(x.Alts) != 3 {
		t.Fatalf("expected 3 combinations, got %d", len(x.Alts))
	}
	if !almost(x.P(), 1.0) {
		t.Fatalf("expansion must preserve p(t): %v", x.P())
	}
	// Combination probabilities are products.
	var pm, pc, pn float64
	for _, a := range x.Alts {
		switch {
		case a.Values[1].String() == "machinist":
			pm = a.P
		case a.Values[1].String() == "mechanic":
			pc = a.P
		case a.Values[1].String() == "⊥":
			pn = a.P
		}
	}
	if !almost(pm, 0.7) || !almost(pc, 0.2) || !almost(pn, 0.1) {
		t.Fatalf("combination probabilities wrong: %v %v %v", pm, pc, pn)
	}
	// p(t) scaling: t13 has p=0.6 and two name values.
	x13 := PaperR1().TupleByID("t13").ExpandAlternatives()
	if !almost(x13.P(), 0.6) {
		t.Fatalf("p(t13) expansion = %v", x13.P())
	}
	if err := x13.Validate(2); err != nil {
		t.Fatal(err)
	}
}
