package pdb

import (
	"fmt"
	"strings"
	"testing"
)

func TestValueSymAnnotation(t *testing.T) {
	v := V("machinist")
	if v.Sym() != 0 {
		t.Fatalf("fresh value carries symbol %d", v.Sym())
	}
	w := v.WithSym(7)
	if w.Sym() != 7 || w.S() != "machinist" || w.IsNull() {
		t.Fatalf("annotated value = %+v", w)
	}
	// Annotation is metadata: equality and rendering ignore it.
	if !v.Equal(w) || v.String() != w.String() {
		t.Fatal("symbol annotation changed observable behavior")
	}
	// ⊥ has no symbol: WithSym returns it unchanged.
	if n := Null.WithSym(9); !n.IsNull() || n.Sym() != 0 {
		t.Fatalf("⊥.WithSym = %+v", n)
	}
}

func TestValueFormat(t *testing.T) {
	if got := fmt.Sprintf("%q", V("a b")); got != `"a b"` {
		t.Fatalf("%%q = %s", got)
	}
	if got := fmt.Sprintf("%q", Null); got != "⊥" {
		t.Fatalf("%%q of ⊥ = %s", got)
	}
	if got := fmt.Sprintf("%v", V("x")); got != "x" {
		t.Fatalf("%%v = %s", got)
	}
}

func TestDistAnnotate(t *testing.T) {
	d := MustDist(
		Alternative{Value: V("a"), P: 0.5},
		Alternative{Value: V("b"), P: 0.3},
	)
	in := d.Annotate(func(v Value) Value { return v.WithSym(uint32(len(v.S()))) })
	// Probabilities, order and ⊥ mass are copied verbatim.
	if !in.Equal(d) {
		t.Fatalf("Annotate changed content: %v vs %v", in, d)
	}
	if got := in.NullP(); got != d.NullP() {
		t.Fatalf("⊥ mass changed: %v vs %v", got, d.NullP())
	}
	alts := in.Alternatives()
	if alts[0].Value.Sym() != 1 || alts[1].Value.Sym() != 1 {
		t.Fatalf("annotations missing: %+v", alts)
	}
	// The copy shares nothing: the original stays clean.
	if d.Alternatives()[0].Value.Sym() != 0 {
		t.Fatal("Annotate mutated the receiver")
	}
	// Empty distribution round-trips as-is.
	var empty Dist
	if got := empty.Annotate(func(v Value) Value { return v.WithSym(1) }); got.Len() != 0 {
		t.Fatalf("empty Annotate = %v", got)
	}
}

func TestXRelationCloneIndependence(t *testing.T) {
	r := &XRelation{
		Name:   "r",
		Schema: []string{"name", "job"},
		Tuples: []*XTuple{NewXTuple("t1", NewAlt(1, "John", "pilot"))},
	}
	c := r.Clone()
	// Deep copy: annotating the clone's values leaves the original alone.
	c.Tuples[0].Alts[0].Values[0] = c.Tuples[0].Alts[0].Values[0].Annotate(
		func(v Value) Value { return v.WithSym(3) })
	if r.Tuples[0].Alts[0].Values[0].Alternatives()[0].Value.Sym() != 0 {
		t.Fatal("clone shares alternative storage with the original")
	}
	if s := r.String(); !strings.Contains(s, "r(name, job)") || !strings.Contains(s, "t1") {
		t.Fatalf("String = %q", s)
	}
	if got := r.AttrIndex("job"); got != 1 {
		t.Fatalf("AttrIndex(job) = %d", got)
	}
	if got := r.AttrIndex("missing"); got != -1 {
		t.Fatalf("AttrIndex(missing) = %d", got)
	}
}
