package pdb

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) <= 1e-9 }

func TestValueNullSemantics(t *testing.T) {
	if !Null.IsNull() {
		t.Fatal("Null must be ⊥")
	}
	if V("").IsNull() {
		t.Fatal(`V("") must be an existing empty string, not ⊥`)
	}
	if !Null.Equal(Null) {
		t.Fatal("⊥ must equal ⊥ (same real-world fact)")
	}
	if Null.Equal(V("x")) || V("x").Equal(Null) {
		t.Fatal("⊥ must not equal an existing value")
	}
	if !V("a").Equal(V("a")) || V("a").Equal(V("b")) {
		t.Fatal("value equality broken")
	}
	if Null.String() != "⊥" {
		t.Fatalf("Null string = %q", Null.String())
	}
	var zero Value
	if !zero.IsNull() {
		t.Fatal("zero Value must be ⊥")
	}
}

func TestNewDistBasics(t *testing.T) {
	d, err := NewDist(Alternative{V("machinist"), 0.7}, Alternative{V("mechanic"), 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if got := d.P(V("machinist")); !almost(got, 0.7) {
		t.Fatalf("P(machinist) = %v", got)
	}
	if got := d.NullP(); !almost(got, 0.1) {
		t.Fatalf("paper: t11 is jobless with 10%%; NullP = %v", got)
	}
	if d.IsCertain() {
		t.Fatal("not certain")
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestNewDistFoldsExplicitNull(t *testing.T) {
	d, err := NewDist(Alternative{V("a"), 0.5}, Alternative{Null, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 1 {
		t.Fatalf("explicit ⊥ must fold into remainder, got %d alternatives", d.Len())
	}
	if !almost(d.NullP(), 0.5) {
		t.Fatalf("NullP = %v", d.NullP())
	}
}

func TestNewDistMergesDuplicates(t *testing.T) {
	d, err := NewDist(Alternative{V("a"), 0.3}, Alternative{V("a"), 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 1 || !almost(d.P(V("a")), 0.5) {
		t.Fatalf("got %v", d)
	}
}

func TestNewDistErrors(t *testing.T) {
	cases := []struct {
		name string
		alts []Alternative
	}{
		{"negative", []Alternative{{V("a"), -0.1}}},
		{"sum>1", []Alternative{{V("a"), 0.7}, {V("b"), 0.4}}},
		{"nan", []Alternative{{V("a"), math.NaN()}}},
		{"inf", []Alternative{{V("a"), math.Inf(1)}}},
	}
	for _, c := range cases {
		if _, err := NewDist(c.alts...); err == nil {
			t.Errorf("%s: want error", c.name)
		}
	}
}

func TestCertainAndNull(t *testing.T) {
	c := Certain("Tim")
	if !c.IsCertain() || !almost(c.P(V("Tim")), 1) || !almost(c.NullP(), 0) {
		t.Fatalf("Certain broken: %v", c)
	}
	n := CertainNull()
	if !n.IsCertain() || !almost(n.NullP(), 1) {
		t.Fatalf("CertainNull broken: %v", n)
	}
	if n.String() != "⊥" {
		t.Fatalf("CertainNull string = %q", n.String())
	}
	if c.String() != "Tim" {
		t.Fatalf("Certain string = %q", c.String())
	}
}

func TestUniform(t *testing.T) {
	d := Uniform("musician", "muralist")
	if !almost(d.P(V("musician")), 0.5) || !almost(d.P(V("muralist")), 0.5) {
		t.Fatalf("uniform mu* expansion broken: %v", d)
	}
	// Duplicates merge before splitting mass.
	d2 := Uniform("a", "a", "b")
	if !almost(d2.P(V("a")), 0.5) || !almost(d2.P(V("b")), 0.5) {
		t.Fatalf("uniform with duplicates: %v", d2)
	}
	if Uniform().Len() != 0 {
		t.Fatal("empty uniform must be certain ⊥")
	}
}

func TestMode(t *testing.T) {
	cases := []struct {
		d     Dist
		want  Value
		wantP float64
	}{
		{MustDist(Alternative{V("Tim"), 0.6}, Alternative{V("Tom"), 0.4}), V("Tim"), 0.6},
		{MustDist(Alternative{V("x"), 0.2}), Null, 0.8},
		{CertainNull(), Null, 1},
		// Tie between existing value and ⊥ favours the existing value.
		{MustDist(Alternative{V("x"), 0.5}), V("x"), 0.5},
	}
	for i, c := range cases {
		v, p := c.d.Mode()
		if !v.Equal(c.want) || !almost(p, c.wantP) {
			t.Errorf("case %d: Mode() = (%v,%v), want (%v,%v)", i, v, p, c.want, c.wantP)
		}
	}
}

func TestSupportIncludesNull(t *testing.T) {
	d := MustDist(Alternative{V("a"), 0.7}, Alternative{V("b"), 0.2})
	s := d.Support()
	if len(s) != 3 {
		t.Fatalf("support size %d", len(s))
	}
	if !s[2].Value.IsNull() || !almost(s[2].P, 0.1) {
		t.Fatalf("⊥ must be last with P=0.1, got %v", s[2])
	}
	total := 0.0
	for _, a := range s {
		total += a.P
	}
	if !almost(total, 1) {
		t.Fatalf("support must sum to 1, got %v", total)
	}
}

func TestMapMerges(t *testing.T) {
	d := MustDist(Alternative{V("Tim"), 0.6}, Alternative{V("TIM"), 0.2})
	m := d.Map(func(s string) string { return "tim" })
	if m.Len() != 1 || !almost(m.P(V("tim")), 0.8) || !almost(m.NullP(), 0.2) {
		t.Fatalf("Map merge broken: %v", m)
	}
}

func TestNormalized(t *testing.T) {
	d := MustDist(Alternative{V("a"), 0.3}, Alternative{V("b"), 0.3})
	n := d.Normalized()
	if !almost(n.P(V("a")), 0.5) || !almost(n.NullP(), 0) {
		t.Fatalf("Normalized broken: %v", n)
	}
	if !CertainNull().Normalized().IsCertain() {
		t.Fatal("normalizing certain ⊥ must stay certain ⊥")
	}
	// Idempotence.
	if !n.Normalized().Equal(n) {
		t.Fatal("Normalized must be idempotent")
	}
}

func TestDistEqual(t *testing.T) {
	a := MustDist(Alternative{V("x"), 0.5}, Alternative{V("y"), 0.5})
	b := MustDist(Alternative{V("y"), 0.5}, Alternative{V("x"), 0.5})
	if !a.Equal(b) {
		t.Fatal("order must not matter")
	}
	c := MustDist(Alternative{V("x"), 0.5}, Alternative{V("z"), 0.5})
	if a.Equal(c) {
		t.Fatal("different supports must differ")
	}
}

func TestSortedAlternatives(t *testing.T) {
	d := MustDist(Alternative{V("b"), 0.2}, Alternative{V("a"), 0.6}, Alternative{V("c"), 0.2})
	s := d.SortedAlternatives()
	if s[0].Value.S() != "a" || s[1].Value.S() != "b" || s[2].Value.S() != "c" {
		t.Fatalf("sorted order wrong: %v", s)
	}
}

// randomDist builds a valid random distribution for property tests.
func randomDist(r *rand.Rand) Dist {
	n := r.Intn(5)
	alts := make([]Alternative, 0, n)
	remaining := 1.0
	for i := 0; i < n; i++ {
		p := r.Float64() * remaining
		if p <= Eps {
			continue
		}
		alts = append(alts, Alternative{V(randWord(r)), p})
		remaining -= p
	}
	d, err := NewDist(alts...)
	if err != nil {
		panic(err)
	}
	return d
}

func randWord(r *rand.Rand) string {
	n := 1 + r.Intn(8)
	b := make([]byte, n)
	for i := range b {
		b[i] = byte('a' + r.Intn(26))
	}
	return string(b)
}

func TestQuickDistInvariants(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	f := func() bool {
		d := randomDist(r)
		if d.Validate() != nil {
			return false
		}
		// Support sums to 1.
		total := 0.0
		for _, a := range d.Support() {
			total += a.P
		}
		if !almost(total, 1) {
			return false
		}
		// NullP in [0,1].
		if d.NullP() < 0 || d.NullP() > 1 {
			return false
		}
		// Normalization idempotent and null-free.
		n := d.Normalized()
		if n.Validate() != nil || !n.Normalized().Equal(n) {
			return false
		}
		if n.Len() > 0 && !almost(n.NullP(), 0) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickModeIsArgmax(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	f := func() bool {
		d := randomDist(r)
		v, p := d.Mode()
		for _, a := range d.Support() {
			if a.P > p+1e-9 {
				return false
			}
		}
		return almost(d.P(v), p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
