package pdb

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Eps is the tolerance used when validating probability sums.
const Eps = 1e-9

// Alternative is one (value, probability) entry of a Dist.
type Alternative struct {
	Value Value
	P     float64
}

// Dist is a discrete probability distribution over domain values —
// the representation of one uncertain attribute value (attribute value
// level uncertainty, Sec. IV-A).
//
// Probability mass not assigned to any explicit alternative implicitly
// belongs to ⊥ (non-existence). For example the paper's
// t11.job = {machinist: 0.7, mechanic: 0.2} leaves P(⊥)=0.1: the person is
// jobless with probability 10%.
//
// A Dist never stores an explicit ⊥ alternative; constructors fold explicit
// ⊥ entries into the implicit remainder. The zero Dist is the certain ⊥.
type Dist struct {
	alts []Alternative // existing values only, P>0 each, ΣP ≤ 1
}

// NewDist builds a distribution from alternatives. Explicit ⊥ entries are
// folded into the implicit non-existence remainder; zero-probability entries
// are dropped; duplicate values are merged. It returns an error if any
// probability is negative, NaN, or the total exceeds 1+Eps.
func NewDist(alts ...Alternative) (Dist, error) {
	merged := make(map[string]float64, len(alts))
	order := make([]string, 0, len(alts))
	total := 0.0
	for _, a := range alts {
		if math.IsNaN(a.P) || math.IsInf(a.P, 0) {
			return Dist{}, fmt.Errorf("pdb: alternative %v has non-finite probability %v", a.Value, a.P)
		}
		if a.P < -Eps {
			return Dist{}, fmt.Errorf("pdb: alternative %v has negative probability %v", a.Value, a.P)
		}
		if a.P <= Eps {
			continue
		}
		total += a.P
		if a.Value.IsNull() {
			continue // implicit remainder
		}
		if _, ok := merged[a.Value.S()]; !ok {
			order = append(order, a.Value.S())
		}
		merged[a.Value.S()] += a.P
	}
	if total > 1+Eps {
		return Dist{}, fmt.Errorf("pdb: alternative probabilities sum to %v > 1", total)
	}
	out := make([]Alternative, 0, len(order))
	for _, s := range order {
		out = append(out, Alternative{Value: V(s), P: merged[s]})
	}
	return Dist{alts: out}, nil
}

// MustDist is NewDist but panics on error. Intended for literals in tests
// and examples.
func MustDist(alts ...Alternative) Dist {
	d, err := NewDist(alts...)
	if err != nil {
		panic(err)
	}
	return d
}

// Certain returns the distribution that takes value s with probability 1.
func Certain(s string) Dist { return Dist{alts: []Alternative{{Value: V(s), P: 1}}} }

// CertainNull returns the distribution that is ⊥ with probability 1.
func CertainNull() Dist { return Dist{} }

// Uniform returns the uniform distribution over the given values. It is the
// finite expansion of pattern values such as the paper's 'mu*' (a uniform
// distribution over all jobs starting with "mu"). Duplicates are merged, so
// the result is uniform over the distinct values.
func Uniform(values ...string) Dist {
	if len(values) == 0 {
		return Dist{}
	}
	seen := make(map[string]bool, len(values))
	distinct := values[:0:0]
	for _, s := range values {
		if !seen[s] {
			seen[s] = true
			distinct = append(distinct, s)
		}
	}
	p := 1.0 / float64(len(distinct))
	alts := make([]Alternative, len(distinct))
	for i, s := range distinct {
		alts[i] = Alternative{Value: V(s), P: p}
	}
	return Dist{alts: alts}
}

// Alternatives returns the explicit (existing-value) alternatives in
// insertion order. The caller must not modify the returned slice.
func (d Dist) Alternatives() []Alternative { return d.alts }

// Len returns the number of explicit alternatives.
func (d Dist) Len() int { return len(d.alts) }

// NullP returns the probability of non-existence P(⊥) = 1 − Σ P(alt),
// clamped to [0,1].
func (d Dist) NullP() float64 {
	p := 1.0
	for _, a := range d.alts {
		p -= a.P
	}
	if p < 0 {
		return 0
	}
	if p > 1 {
		return 1
	}
	return p
}

// P returns the probability of the given value, including P(⊥) for Null.
func (d Dist) P(v Value) float64 {
	if v.IsNull() {
		return d.NullP()
	}
	for _, a := range d.alts {
		if a.Value.Equal(v) {
			return a.P
		}
	}
	return 0
}

// IsCertain reports whether d assigns probability ≥ 1−Eps to a single value
// (possibly ⊥).
func (d Dist) IsCertain() bool {
	if len(d.alts) == 0 {
		return true // certain ⊥
	}
	return len(d.alts) == 1 && d.alts[0].P >= 1-Eps
}

// Mode returns the most probable value of d (⊥ if non-existence is the most
// probable outcome) and its probability. Ties are broken in favour of
// existing values, then by insertion order, making the choice deterministic —
// the "metadata based deciding strategy" used for certain key creation in
// Sec. V-A.2.
func (d Dist) Mode() (Value, float64) {
	best, bestP := Null, d.NullP()
	for _, a := range d.alts {
		if a.P > bestP+Eps || (math.Abs(a.P-bestP) <= Eps && best.IsNull()) {
			best, bestP = a.Value, a.P
		}
	}
	return best, bestP
}

// Support returns every outcome of d with positive probability, including ⊥
// when P(⊥) > Eps. The ⊥ outcome, if present, is last.
func (d Dist) Support() []Alternative {
	out := make([]Alternative, 0, len(d.alts)+1)
	out = append(out, d.alts...)
	if np := d.NullP(); np > Eps {
		out = append(out, Alternative{Value: Null, P: np})
	}
	return out
}

// Map returns a new distribution with f applied to every existing value.
// Values mapped to the same result are merged. ⊥ mass is preserved.
func (d Dist) Map(f func(string) string) Dist {
	alts := make([]Alternative, len(d.alts))
	for i, a := range d.alts {
		alts[i] = Alternative{Value: V(f(a.Value.S())), P: a.P}
	}
	nd, err := NewDist(alts...)
	if err != nil {
		// f cannot increase total probability, so NewDist cannot fail.
		panic(err)
	}
	return nd
}

// Annotate returns a copy of d with f applied to every existing value.
// Unlike Map, f must preserve the value's content (same string, still
// existing) and may only attach metadata — an interned symbol, say — so
// no merging happens and probabilities, ordering and ⊥ mass are copied
// verbatim. The copy shares nothing mutable with d, making Annotate
// safe on distributions whose alternative storage is shared with other
// tuples (XTuple.Clone copies Dist headers, not their alternatives).
func (d Dist) Annotate(f func(Value) Value) Dist {
	if len(d.alts) == 0 {
		return d
	}
	alts := make([]Alternative, len(d.alts))
	for i, a := range d.alts {
		alts[i] = Alternative{Value: f(a.Value), P: a.P}
	}
	return Dist{alts: alts}
}

// Normalized returns d scaled so the explicit alternatives sum to 1,
// removing all ⊥ mass. Normalizing a certain-⊥ distribution returns the
// certain-⊥ distribution unchanged.
func (d Dist) Normalized() Dist {
	total := 0.0
	for _, a := range d.alts {
		total += a.P
	}
	if total <= Eps {
		return Dist{}
	}
	alts := make([]Alternative, len(d.alts))
	for i, a := range d.alts {
		alts[i] = Alternative{Value: a.Value, P: a.P / total}
	}
	return Dist{alts: alts}
}

// Equal reports whether two distributions assign the same probabilities to
// the same values within Eps.
func (d Dist) Equal(o Dist) bool {
	if len(d.alts) != len(o.alts) {
		return false
	}
	for _, a := range d.alts {
		if math.Abs(o.P(a.Value)-a.P) > Eps {
			return false
		}
	}
	return math.Abs(d.NullP()-o.NullP()) <= Eps
}

// Validate checks internal invariants (positive probabilities, sum ≤ 1,
// no explicit ⊥, no duplicate values).
func (d Dist) Validate() error {
	total := 0.0
	seen := make(map[string]bool, len(d.alts))
	for _, a := range d.alts {
		if a.Value.IsNull() {
			return fmt.Errorf("pdb: distribution stores explicit ⊥")
		}
		if a.P <= 0 || math.IsNaN(a.P) || math.IsInf(a.P, 0) {
			return fmt.Errorf("pdb: value %q has invalid probability %v", a.Value.S(), a.P)
		}
		if seen[a.Value.S()] {
			return fmt.Errorf("pdb: duplicate value %q", a.Value.S())
		}
		seen[a.Value.S()] = true
		total += a.P
	}
	if total > 1+Eps {
		return fmt.Errorf("pdb: probabilities sum to %v > 1", total)
	}
	return nil
}

// String renders the distribution in the paper's notation, e.g.
// "{Tim: 0.6, Tom: 0.4}". A certain value renders bare; certain ⊥ renders
// as "⊥".
func (d Dist) String() string {
	if len(d.alts) == 0 {
		return "⊥"
	}
	if d.IsCertain() {
		return d.alts[0].Value.S()
	}
	parts := make([]string, 0, len(d.alts))
	for _, a := range d.alts {
		parts = append(parts, fmt.Sprintf("%s: %.4g", a.Value.S(), a.P))
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// SortedAlternatives returns the alternatives ordered by descending
// probability, ties broken by value string, without modifying d.
func (d Dist) SortedAlternatives() []Alternative {
	out := make([]Alternative, len(d.alts))
	copy(out, d.alts)
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].P != out[j].P {
			return out[i].P > out[j].P
		}
		return out[i].Value.S() < out[j].Value.S()
	})
	return out
}
