// Package pdb implements the probabilistic relational data model used
// throughout the library.
//
// The model follows the paper "Duplicate Detection in Probabilistic Data"
// (Panse, van Keulen, de Keijzer, Ritter; ICDE 2010 workshops) and the
// ULDB/Trio fragment it builds on. Uncertainty is represented on two levels:
//
//   - attribute value level: each attribute value is a discrete probability
//     distribution (Dist) over domain values, where any unassigned probability
//     mass denotes non-existence of the value (the paper's ⊥),
//   - tuple level: each tuple carries a membership probability p(t) ∈ (0,1].
//
// Two relation flavours are provided:
//
//   - Relation: tuples whose attribute distributions are mutually independent
//     (the "models without dependencies" of Sec. IV-A),
//   - XRelation: x-tuples consisting of mutually exclusive alternative tuples
//     (the Trio x-tuple concept of Sec. IV-B); an x-tuple whose alternative
//     probabilities sum to less than one is a "maybe" x-tuple.
//
// A theoretical probabilistic database is a set of possible worlds with a
// probability distribution; package worlds enumerates the worlds induced by
// the succinct representations defined here.
package pdb
