package wal

import (
	"errors"
	"fmt"
)

// ErrInjectedFault is the sentinel returned by a FaultFile once its
// crash point is reached.
var ErrInjectedFault = errors.New("wal: injected fault")

// FaultFile wraps a File and simulates a crash at the Nth write: every
// call before the crash point passes through, the crashing write either
// fails outright or tears (persists only a prefix of the buffer before
// failing), and everything after the crash point fails — the process
// is "dead". The fault-injection tests drive a LogWriter through every
// possible crash point and prove recovery from the surviving bytes
// matches an engine that never crashed.
type FaultFile struct {
	F File
	// FailAt is the 1-based index of the write that crashes; 0 disables
	// the fault.
	FailAt int
	// TearBytes is how many leading bytes of the crashing write are
	// persisted before the failure — a torn write. Values at or beyond
	// the buffer length persist the whole buffer and then fail.
	TearBytes int

	writes int
	dead   bool
}

// Write counts calls and injects the configured fault.
func (f *FaultFile) Write(p []byte) (int, error) {
	if f.dead {
		return 0, ErrInjectedFault
	}
	f.writes++
	if f.FailAt > 0 && f.writes >= f.FailAt {
		f.dead = true
		n := f.TearBytes
		if n > len(p) {
			n = len(p)
		}
		if n > 0 {
			if _, err := f.F.Write(p[:n]); err != nil {
				return 0, fmt.Errorf("tearing write: %w", err)
			}
		}
		return n, ErrInjectedFault
	}
	return f.F.Write(p)
}

// Sync passes through until the crash point, then fails.
func (f *FaultFile) Sync() error {
	if f.dead {
		return ErrInjectedFault
	}
	return f.F.Sync()
}

// Close always closes the underlying file so tests do not leak
// descriptors, but reports the injected fault if the file is dead.
func (f *FaultFile) Close() error {
	err := f.F.Close()
	if f.dead {
		return ErrInjectedFault
	}
	return err
}

// Writes reports how many Write calls were attempted.
func (f *FaultFile) Writes() int { return f.writes }

// Dead reports whether the crash point has been reached.
func (f *FaultFile) Dead() bool { return f.dead }
