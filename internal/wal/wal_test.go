package wal

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"probdedup/internal/core"
	"probdedup/internal/dataset"
	"probdedup/internal/decision"
	"probdedup/internal/keys"
	"probdedup/internal/pdb"
	"probdedup/internal/resolve"
	"probdedup/internal/ssr"
	"probdedup/internal/strsim"
)

// testOp is one operation of a generated schedule.
type testOp struct {
	op Op
	x  *pdb.XTuple
	xs []*pdb.XTuple
	id string
}

// genSchedule builds a deterministic random operation schedule over a
// synthetic corpus: mostly arrivals (single and batched), with removals
// of residents and occasional epoch reseals mixed in. The same seed
// always yields the same schedule, so crashed and never-crashed runs
// fold the same operations.
func genSchedule(tb testing.TB, seed int64, n int) ([]string, []testOp) {
	tb.Helper()
	d := dataset.Generate(dataset.DefaultConfig(n, seed))
	u := d.Union()
	rng := rand.New(rand.NewSource(seed*101 + 7))
	rng.Shuffle(len(u.Tuples), func(i, j int) {
		u.Tuples[i], u.Tuples[j] = u.Tuples[j], u.Tuples[i]
	})
	var (
		ops      []testOp
		resident []string
		next     int
	)
	for len(ops) < n && next < len(u.Tuples) {
		switch k := rng.Intn(10); {
		case k < 6 || len(resident) == 0:
			x := u.Tuples[next]
			next++
			resident = append(resident, x.ID)
			ops = append(ops, testOp{op: OpAdd, x: x})
		case k < 8:
			m := 1 + rng.Intn(3)
			if m > len(u.Tuples)-next {
				m = len(u.Tuples) - next
			}
			batch := u.Tuples[next : next+m]
			next += m
			for _, x := range batch {
				resident = append(resident, x.ID)
			}
			ops = append(ops, testOp{op: OpAddBatch, xs: batch})
		case k == 8:
			j := rng.Intn(len(resident))
			id := resident[j]
			resident = append(resident[:j], resident[j+1:]...)
			ops = append(ops, testOp{op: OpRemove, id: id})
		default:
			ops = append(ops, testOp{op: OpReseal})
		}
	}
	return u.Schema, ops
}

// applyOp feeds one schedule operation to an engine.
func applyOp(eng opTarget, op testOp) error {
	switch op.op {
	case OpAdd:
		return eng.Add(op.x)
	case OpAddBatch:
		return eng.AddBatch(op.xs)
	case OpRemove:
		return eng.Remove(op.id)
	default:
		return eng.Reseal()
	}
}

// testOptions is the engine configuration shared by the durability
// tests (the synthetic corpus has a 3-attribute schema).
func testOptions(red ssr.Method) core.Options {
	return core.Options{
		Compare:   []strsim.Func{strsim.Levenshtein, strsim.Levenshtein, strsim.Levenshtein},
		Reduction: red,
		Final:     decision.Thresholds{Lambda: 0.6, Mu: 0.8},
	}
}

// crashReductions are the reduction tiers under crash test: two exact
// tiers and the bounded-staleness epoch tier (BlockingCluster), whose
// index state is persisted rather than re-derived.
func crashReductions(tb testing.TB, schema []string) map[string]ssr.Method {
	tb.Helper()
	def, err := keys.ParseDef("name:3+job:2", schema)
	if err != nil {
		tb.Fatal(err)
	}
	return map[string]ssr.Method{
		"blocking-certain": ssr.BlockingCertain{Key: def},
		"snm-certain":      ssr.SNMCertain{Key: def, Window: 4},
		"blocking-cluster": ssr.BlockingCluster{Key: def, K: 3, Seed: 1, MaxDrift: 0.5},
	}
}

// resultFingerprint canonicalizes a detector Flush bit-exactly: every
// classified pair with raw similarity bits and class, plus the M/P/
// total counts. Two engines in identical state produce identical
// fingerprints; any drifted bit shows up in the diff.
func resultFingerprint(r *core.Result, st core.DetectorStats) string {
	pairs := make([]string, 0, len(r.ByPair))
	for p, m := range r.ByPair {
		pairs = append(pairs, fmt.Sprintf("%s|%s|%016x|%d", p.A, p.B, math.Float64bits(m.Sim), int(m.Class)))
	}
	sort.Strings(pairs)
	return fmt.Sprintf("%s\ntotal=%d m=%d p=%d compared=%d dropped=%d residents=%d\n",
		strings.Join(pairs, "\n"), r.TotalPairs, len(r.Matches), len(r.Possible),
		st.Compared, st.Dropped, st.Residents)
}

// tupleBytes encodes a tuple through the snapshot codec's binary plane
// — symbol-annotation-free and bit-exact, so fused tuples compare
// across engines whose symbol tables numbered differently.
func tupleBytes(x *pdb.XTuple) string {
	e := &encoder{}
	e.xtuple(x)
	return fmt.Sprintf("%x", e.buf)
}

// resolutionFingerprint canonicalizes an integrator Flush: the entity
// partition with fused representations, and the uncertain duplicates
// with calibrated probability bits and merged representations.
func resolutionFingerprint(r *resolve.Resolution) string {
	var b strings.Builder
	for _, e := range r.Entities {
		fmt.Fprintf(&b, "entity %s members=%v tuple=%s\n", e.ID, e.Members, tupleBytes(e.Tuple))
	}
	for _, ud := range r.Uncertain {
		fmt.Fprintf(&b, "uncertain %s|%s sym=%s p=%016x merged=%s\n",
			ud.A, ud.B, ud.Sym, math.Float64bits(ud.P), tupleBytes(ud.Merged))
	}
	fmt.Fprintf(&b, "tuples=%d\n", len(r.Tuples))
	return b.String()
}

// cleanDetectorFingerprint folds a schedule prefix through a fresh
// (never-crashed, non-durable) Detector and fingerprints its Flush.
func cleanDetectorFingerprint(tb testing.TB, schema []string, opts core.Options, ops []testOp) string {
	tb.Helper()
	det, err := core.NewDetector(schema, opts, nil)
	if err != nil {
		tb.Fatal(err)
	}
	for _, op := range ops {
		if err := applyOp(det, op); err != nil {
			tb.Fatalf("clean detector: %v", err)
		}
	}
	return resultFingerprint(det.Flush(), det.Stats())
}

// cleanIntegratorFingerprint is cleanDetectorFingerprint one layer up.
func cleanIntegratorFingerprint(tb testing.TB, schema []string, opts core.Options, ops []testOp) string {
	tb.Helper()
	ig, err := resolve.NewIntegrator(schema, opts, nil)
	if err != nil {
		tb.Fatal(err)
	}
	for _, op := range ops {
		if err := applyOp(ig, op); err != nil {
			tb.Fatalf("clean integrator: %v", err)
		}
	}
	r, err := ig.Flush()
	if err != nil {
		tb.Fatal(err)
	}
	return resolutionFingerprint(r)
}
