package wal

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"probdedup/internal/core"
	"probdedup/internal/pdb"
	"probdedup/internal/resolve"
)

// TestDecodeSnapshotErrorPaths: every structural failure of the
// snapshot codec is a loud error, never a panic or a silently wrong
// state.
func TestDecodeSnapshotErrorPaths(t *testing.T) {
	schema, ops := genSchedule(t, 3, 10)
	opts := testOptions(crashReductions(t, schema)["blocking-certain"])
	det, err := core.NewDetector(schema, opts, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range ops {
		if err := applyOp(det, op); err != nil {
			t.Fatal(err)
		}
	}
	good := EncodeSnapshot(det.SnapshotState(), 10)

	cases := []struct {
		name   string
		mangle func([]byte) []byte
		errSub string
	}{
		{"too short", func(b []byte) []byte { return b[:8] }, "too short"},
		{"bad magic", func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[0] ^= 0xff
			return c
		}, "magic"},
		{"crc flip", func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[len(c)/2] ^= 0x01
			return c
		}, "CRC"},
		{"truncated body", func(b []byte) []byte {
			// Keep the frame valid: cut the body, recompute nothing — the
			// CRC no longer matches, which is the loud path for torn
			// snapshot files.
			return b[:len(b)-12]
		}, "CRC"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, _, err := DecodeSnapshot(c.mangle(good))
			if err == nil {
				t.Fatal("mangled snapshot accepted")
			}
			if !strings.Contains(err.Error(), c.errSub) {
				t.Fatalf("error %q does not mention %q", err, c.errSub)
			}
		})
	}

	// Round trip stays exact for the good bytes.
	st, seq, err := DecodeSnapshot(good)
	if err != nil || seq != 10 {
		t.Fatalf("good snapshot: %v (seq %d)", err, seq)
	}
	if len(st.Schema) != len(schema) {
		t.Fatalf("schema %v", st.Schema)
	}
}

// TestCorruptRecordErrorString pins the diagnostic format operators
// grep for after a refused recovery.
func TestCorruptRecordErrorString(t *testing.T) {
	e := &CorruptRecordError{Offset: 1234, Reason: "CRC mismatch"}
	if s := e.Error(); !strings.Contains(s, "1234") || !strings.Contains(s, "CRC mismatch") {
		t.Fatalf("Error() = %q", s)
	}
}

// TestFaultFileAccessors: the fault-injection wrapper reports its
// write count and crash state.
func TestFaultFileAccessors(t *testing.T) {
	f, err := os.CreateTemp(t.TempDir(), "fault")
	if err != nil {
		t.Fatal(err)
	}
	ff := &FaultFile{F: f, FailAt: 2}
	if ff.Dead() || ff.Writes() != 0 {
		t.Fatalf("fresh fault file: dead=%t writes=%d", ff.Dead(), ff.Writes())
	}
	if _, err := ff.Write([]byte("ok")); err != nil {
		t.Fatal(err)
	}
	if _, err := ff.Write([]byte("boom")); !errors.Is(err, ErrInjectedFault) {
		t.Fatalf("second write: %v", err)
	}
	if !ff.Dead() || ff.Writes() != 2 {
		t.Fatalf("after crash: dead=%t writes=%d", ff.Dead(), ff.Writes())
	}
	if err := ff.Sync(); !errors.Is(err, ErrInjectedFault) {
		t.Fatalf("sync on dead file: %v", err)
	}
	if err := ff.Close(); !errors.Is(err, ErrInjectedFault) {
		t.Fatalf("close on dead file: %v", err)
	}
}

// TestStateDirPathAndGC: Path round-trips, and RemoveObsolete sweeps
// every snapshot and fully-covered segment below the checkpoint.
func TestStateDirPathAndGC(t *testing.T) {
	dir := t.TempDir()
	sd, err := OpenStateDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer sd.Close()
	if sd.Path() != dir {
		t.Fatalf("Path() = %q, want %q", sd.Path(), dir)
	}
	for _, seq := range []uint64{0, 5, 9} {
		if err := sd.WriteSnapshot(seq, EncodeSnapshot(&core.DetectorState{Schema: []string{"a"}}, seq)); err != nil {
			t.Fatal(err)
		}
		f, err := sd.CreateWAL(seq)
		if err != nil {
			t.Fatal(err)
		}
		f.Close()
	}
	if err := sd.RemoveObsolete(9); err != nil {
		t.Fatal(err)
	}
	snaps, err := filepath.Glob(filepath.Join(dir, "snapshot-*.snap"))
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 1 || !strings.Contains(snaps[0], "0000000000000009") {
		t.Fatalf("snapshots after GC: %v", snaps)
	}
	segs, err := sd.WALSegments()
	if err != nil {
		t.Fatal(err)
	}
	// The segment at 5 holds records in (5,9], all covered by the
	// snapshot at 9, so only the live segment survives.
	if len(segs) != 1 || segs[0].StartSeq != 9 {
		t.Fatalf("segments after GC: %+v", segs)
	}
}

// TestDurableNilTuplePaths: nil tuples are rejected by the engine
// without a WAL append, and a nil inside a batch logs only the prefix
// before it — replay rebuilds the identical partial-apply state.
func TestDurableNilTuplePaths(t *testing.T) {
	schema, ops := genSchedule(t, 5, 8)
	opts := testOptions(crashReductions(t, schema)["blocking-certain"])
	dir := t.TempDir()
	dd, err := OpenDurable(dir, schema, opts, nil)
	if err != nil {
		t.Fatal(err)
	}
	seqBefore := dd.Seq()
	if err := dd.Add(nil); err == nil {
		t.Fatal("nil tuple accepted")
	}
	if dd.Seq() != seqBefore {
		t.Fatal("nil tuple reached the WAL")
	}

	var batch []*pdb.XTuple
	for _, op := range ops {
		if op.op == OpAdd {
			batch = append(batch, op.x)
		}
		if len(batch) == 2 {
			break
		}
	}
	_, more := genSchedule(t, 55, 6)
	for _, op := range more {
		if op.op == OpAdd {
			batch = append(batch, nil, op.x)
			break
		}
	}
	err = dd.AddBatch(batch)
	if err == nil {
		t.Fatal("batch with nil tuple accepted")
	}
	var be *core.BatchError
	if !errors.As(err, &be) || be.Index != 2 {
		t.Fatalf("batch error: %v", err)
	}
	fpLive := resultFingerprint(dd.Flush(), dd.Stats())
	if err := dd.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := OpenDurable(dir, schema, opts, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if fp := resultFingerprint(re.Flush(), re.Stats()); fp != fpLive {
		t.Fatalf("partial-apply state diverges after recovery:\n%s\nvs\n%s", fp, fpLive)
	}
}

// TestDurablePassthroughs: the thin accessor surface both wrappers
// forward to their engines.
func TestDurablePassthroughs(t *testing.T) {
	schema, ops := genSchedule(t, 6, 10)
	opts := testOptions(crashReductions(t, schema)["blocking-certain"])

	dd, err := OpenDurable(t.TempDir(), schema, opts, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer dd.Close()
	var someID string
	for _, op := range ops {
		if err := applyOp(dd, op); err != nil {
			t.Fatal(err)
		}
		if op.op == OpAdd && someID == "" {
			someID = op.x.ID
		}
	}
	if dd.Len() == 0 {
		t.Fatal("Len() = 0 after schedule")
	}
	if _, ok := dd.Resident(someID); !ok {
		t.Fatalf("Resident(%q) missing", someID)
	}

	di, err := OpenDurableIntegrator(t.TempDir(), schema, opts, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer di.Close()
	for _, op := range ops {
		if err := applyOp(di, op); err != nil {
			t.Fatal(err)
		}
	}
	if di.Len() != dd.Len() {
		t.Fatalf("integrator Len %d, detector Len %d", di.Len(), dd.Len())
	}
	if r := di.FlushResult(); len(r.ByPair) != len(dd.Flush().ByPair) {
		t.Fatal("FlushResult diverges from the detector view")
	}
	if st := di.Stats(); st.Detector.Residents != di.Len() {
		t.Fatalf("Stats residents %d, Len %d", st.Detector.Residents, di.Len())
	}
}

// TestEmitGateDelivery: deltas flow before a crash, recovery replays
// silently, and post-recovery operations emit again — on both engine
// flavors.
func TestEmitGateDelivery(t *testing.T) {
	schema, all := genSchedule(t, 7, 44)
	ops, extra := all[:40], all[40:]
	opts := testOptions(crashReductions(t, schema)["blocking-certain"])
	dir := t.TempDir()

	var live int
	dd, err := OpenDurable(dir, schema, opts, func(core.MatchDelta) bool { live++; return true })
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range ops {
		if err := applyOp(dd, op); err != nil {
			t.Fatal(err)
		}
	}
	if live == 0 {
		t.Fatal("no match deltas before the crash")
	}
	dd.Abort() // simulated crash: no checkpoint

	var replayed int
	re, err := OpenDurable(dir, schema, opts, func(core.MatchDelta) bool { replayed++; return true })
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if replayed != 0 {
		t.Fatalf("recovery re-emitted %d deltas", replayed)
	}
	for _, op := range extra {
		if err := applyOp(re, op); err != nil {
			t.Fatal(err)
		}
	}
	// Removing a resident that participates in a live pair must emit
	// its drop delta — the gate is open again after recovery.
	for p := range re.Flush().ByPair {
		if err := re.Remove(p.A); err != nil {
			t.Fatal(err)
		}
		break
	}
	if replayed == 0 {
		t.Fatal("post-recovery operations emitted nothing")
	}

	// Integrator flavor: same gate, entity deltas.
	idir := t.TempDir()
	var ientity int
	di, err := OpenDurableIntegrator(idir, schema, opts, func(resolve.EntityDelta) bool { ientity++; return true })
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range ops {
		if err := applyOp(di, op); err != nil {
			t.Fatal(err)
		}
	}
	if ientity == 0 {
		t.Fatal("no entity deltas before the crash")
	}
	di.Abort()
	var ireplayed int
	ri, err := OpenDurableIntegrator(idir, schema, opts, func(resolve.EntityDelta) bool { ireplayed++; return true })
	if err != nil {
		t.Fatal(err)
	}
	defer ri.Close()
	if ireplayed != 0 {
		t.Fatalf("integrator recovery re-emitted %d entity deltas", ireplayed)
	}
}

// TestDecodePayloadErrorPaths drives every decoder failure branch the
// replay CRC check normally hides: truncated fixed-width fields, bad
// varints, hostile counts, invalid distributions, unknown ops and
// trailing bytes.
func TestDecodePayloadErrorPaths(t *testing.T) {
	schema, ops := genSchedule(t, 9, 6)
	var tuple *pdb.XTuple
	for _, op := range ops {
		if op.op == OpAdd {
			tuple = op.x
			break
		}
	}
	good, err := encodePayload(nil, &Record{Seq: 1, Op: OpAdd, Tuple: tuple})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name    string
		payload []byte
		errSub  string
	}{
		{"empty", nil, "truncated"},
		{"seq only", good[:8], "truncated"},
		{"unknown op", append(append([]byte(nil), good[:8]...), 0xee), "unknown op"},
		{"truncated tuple", good[:len(good)-3], "truncated"},
		{"trailing bytes", append(append([]byte(nil), good...), 0x00), "trailing"},
	}
	// A hostile collection count: claim 2^40 batch elements.
	hostile := append([]byte(nil), good[:8]...)
	hostile = append(hostile, byte(OpAddBatch))
	hostile = append(hostile, 0x80, 0x80, 0x80, 0x80, 0x80, 0x01)
	cases = append(cases, struct {
		name    string
		payload []byte
		errSub  string
	}{"hostile count", hostile, "count"})
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := decodePayload(c.payload, len(schema))
			if err == nil {
				t.Fatal("bad payload accepted")
			}
			if !strings.Contains(err.Error(), c.errSub) {
				t.Fatalf("error %q does not mention %q", err, c.errSub)
			}
		})
	}
	// The good payload round-trips.
	rec, err := decodePayload(good, len(schema))
	if err != nil || rec.Seq != 1 || rec.Op != OpAdd || rec.Tuple.ID != tuple.ID {
		t.Fatalf("good payload: %+v, %v", rec, err)
	}
}
