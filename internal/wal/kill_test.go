package wal

import (
	"fmt"
	"os"
	"os/exec"
	"sort"
	"strconv"
	"syscall"
	"testing"

	"probdedup/internal/core"
)

const killOps = 16

// killEnv carries one kill scenario to the subprocess.
type killEnv struct {
	engine  string
	red     string
	seed    int64
	crashAt int
}

func killOptions(tb testing.TB, env killEnv, schema []string) core.Options {
	tb.Helper()
	opts := testOptions(crashReductions(tb, schema)[env.red])
	// FsyncEvery=1 makes every acknowledged op durable, so the survivor
	// set after SIGKILL is exactly the acknowledged prefix. Periodic
	// snapshots put kills both before and after checkpoints.
	opts.Durability = core.Durability{FsyncEvery: 1, SnapshotEveryOps: 5}
	return opts
}

// TestDurableCrashChild is the subprocess half of the kill test: it
// opens a durable engine in the directory named by WAL_CRASH_DIR,
// applies the schedule prefix, then dies by SIGKILL mid-flight —
// no deferred closes, no checkpoint, no flushing.
func TestDurableCrashChild(t *testing.T) {
	dir := os.Getenv("WAL_CRASH_DIR")
	if dir == "" {
		t.Skip("subprocess helper; driven by TestKillAtRandomOp")
	}
	seed, err := strconv.ParseInt(os.Getenv("WAL_CRASH_SEED"), 10, 64)
	if err != nil {
		t.Fatal(err)
	}
	crashAt, err := strconv.Atoi(os.Getenv("WAL_CRASH_AT"))
	if err != nil {
		t.Fatal(err)
	}
	env := killEnv{
		engine:  os.Getenv("WAL_CRASH_ENGINE"),
		red:     os.Getenv("WAL_CRASH_RED"),
		seed:    seed,
		crashAt: crashAt,
	}
	schema, ops := genSchedule(t, env.seed, killOps)
	h := mustOpenHandle(t, env.engine, dir, schema, killOptions(t, env, schema))
	for i, op := range ops[:env.crashAt] {
		if err := applyOp(h.ops, op); err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
	}
	syscall.Kill(os.Getpid(), syscall.SIGKILL)
	t.Fatal("unreachable: SIGKILL did not fire")
}

// TestKillAtRandomOp re-executes the test binary as a child that
// SIGKILLs itself after a seed-chosen number of acknowledged
// operations, then recovers the state directory in-process and
// requires bit-identity with a never-crashed engine fed the same
// acknowledged prefix — and with the never-crashed full run after the
// remaining schedule is folded in. The reduction tier cycles with the
// seed so all three (including the epoch tier) die at least once.
func TestKillAtRandomOp(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses")
	}
	redNames := make([]string, 0, 3)
	{
		schema, _ := genSchedule(t, 0, 4)
		for name := range crashReductions(t, schema) {
			redNames = append(redNames, name)
		}
		sort.Strings(redNames)
	}
	for _, engine := range []string{"detector", "integrator"} {
		for seed := int64(0); seed < 5; seed++ {
			env := killEnv{
				engine: engine,
				red:    redNames[int(seed)%len(redNames)],
				seed:   seed,
				// Deterministic pseudo-random kill point in [1, killOps],
				// spread so different seeds die in different checkpoint
				// phases (SnapshotEveryOps=5).
				crashAt: 1 + int((seed*7+3)%killOps),
			}
			t.Run(fmt.Sprintf("%s/%s/seed%d/op%d", engine, env.red, seed, env.crashAt), func(t *testing.T) {
				t.Parallel()
				dir := t.TempDir()
				cmd := exec.Command(os.Args[0], "-test.run", "^TestDurableCrashChild$", "-test.v")
				cmd.Env = append(os.Environ(),
					"WAL_CRASH_DIR="+dir,
					"WAL_CRASH_ENGINE="+env.engine,
					"WAL_CRASH_RED="+env.red,
					fmt.Sprintf("WAL_CRASH_SEED=%d", env.seed),
					fmt.Sprintf("WAL_CRASH_AT=%d", env.crashAt),
				)
				out, err := cmd.CombinedOutput()
				if err == nil {
					t.Fatalf("child survived SIGKILL?\n%s", out)
				}
				ee, ok := err.(*exec.ExitError)
				if ok && ee.Exited() {
					// A normal (non-signal) exit means the child failed
					// before reaching the kill — surface its output.
					t.Fatalf("child failed before SIGKILL: %v\n%s", err, out)
				}

				schema, ops := genSchedule(t, env.seed, killOps)
				opts := killOptions(t, env, schema)
				h := mustOpenHandle(t, env.engine, dir, schema, opts)
				defer h.d.Abort()
				want := cleanFingerprint(t, env.engine, schema, opts, ops[:env.crashAt])
				if got := h.fp(t); got != want {
					t.Fatalf("recovered state diverges from never-crashed prefix of %d ops\n--- recovered ---\n%s--- want ---\n%s",
						env.crashAt, got, want)
				}
				for i, op := range ops[env.crashAt:] {
					if err := applyOp(h.ops, op); err != nil {
						t.Fatalf("continuation op %d: %v", env.crashAt+i, err)
					}
				}
				wantFinal := cleanFingerprint(t, env.engine, schema, opts, ops)
				if got := h.fp(t); got != wantFinal {
					t.Fatalf("continued run diverges from never-crashed full run\n--- recovered ---\n%s--- want ---\n%s",
						got, wantFinal)
				}
			})
		}
	}
}
