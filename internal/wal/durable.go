package wal

import (
	"errors"
	"fmt"
	"os"
	"sync"
	"sync/atomic"

	"probdedup/internal/core"
	"probdedup/internal/pdb"
	"probdedup/internal/resolve"
)

// ErrClosed reports an operation on a closed durable engine.
var ErrClosed = errors.New("wal: durable engine is closed")

// ErrSchemaMismatch reports a state directory whose snapshot was taken
// under a different schema than the one the engine is being opened
// with. Recovering across a schema change would silently misinterpret
// every persisted distribution, so the open is refused.
var ErrSchemaMismatch = errors.New("wal: state directory schema does not match engine schema")

// engineOps is the operation surface the durability layer logs and
// replays. Both core.Detector and resolve.Integrator satisfy it.
type engineOps interface {
	Add(x *pdb.XTuple) error
	AddBatch(xs []*pdb.XTuple) error
	Remove(id string) error
	Reseal() error
	SnapshotState() *core.DetectorState
}

// emitGate suppresses delta delivery while closed. Replaying the WAL
// re-runs operations whose deltas were already delivered before the
// crash; the gate swallows those duplicates and opens once recovery
// reaches the pre-crash state. Swallowed deltas return true — a false
// return would permanently stop delivery (the emit contract), which is
// not what suppression means.
type emitGate struct {
	open atomic.Bool
}

func gateEmit[T any](g *emitGate, emit func(T) bool) func(T) bool {
	if emit == nil {
		return nil
	}
	return func(v T) bool {
		if !g.open.Load() {
			return true
		}
		return emit(v)
	}
}

// durable is the shared durability mechanics under DurableDetector and
// DurableIntegrator: the log-then-apply protocol, checkpoint rotation
// and recovery. Operations first append a WAL record (a failed append
// rejects the operation with state unchanged), then apply it to the
// in-memory engine; engine-level failures are deliberately logged too,
// because replaying them fails identically, keeping recovery a pure
// fold over the log.
type durable struct {
	mu            sync.Mutex
	eng           engineOps
	sd            *StateDir
	log           *LogWriter
	gate          *emitGate
	nattrs        int
	fsyncEvery    int
	snapshotEvery int
	seq           uint64 // last logged sequence number
	snapSeq       uint64 // sequence covered by the newest snapshot
	segStart      uint64 // start sequence of the live WAL segment
	sinceSnap     int
	closed        bool
}

// openShared locks the state directory, loads the newest snapshot (if
// any), rebuilds the engine through makeFresh/makeRestored, replays
// every WAL segment with the emit gate closed, then opens the gate and
// positions the log for appending. Torn tails are truncated silently;
// interior corruption aborts the open loudly.
func openShared(dir string, schema []string, dur core.Durability, gate *emitGate,
	makeFresh func() (engineOps, error),
	makeRestored func(*core.DetectorState) (engineOps, error),
) (*durable, error) {
	if dir == "" {
		dir = dur.Dir
	}
	if dir == "" {
		return nil, fmt.Errorf("wal: no state directory configured")
	}
	sd, err := OpenStateDir(dir)
	if err != nil {
		return nil, err
	}
	d, err := recoverInDir(sd, schema, dur, gate, makeFresh, makeRestored)
	if err != nil {
		sd.Close()
		return nil, err
	}
	return d, nil
}

func recoverInDir(sd *StateDir, schema []string, dur core.Durability, gate *emitGate,
	makeFresh func() (engineOps, error),
	makeRestored func(*core.DetectorState) (engineOps, error),
) (*durable, error) {
	d := &durable{
		sd:            sd,
		gate:          gate,
		nattrs:        len(schema),
		fsyncEvery:    dur.FsyncEvery,
		snapshotEvery: dur.SnapshotEveryOps,
	}
	snapData, fileSeq, haveSnap, err := sd.LatestSnapshot()
	if err != nil {
		return nil, err
	}
	if haveSnap {
		st, seq, err := DecodeSnapshot(snapData)
		if err != nil {
			return nil, err
		}
		if seq != fileSeq {
			return nil, fmt.Errorf("wal: snapshot file for seq %d records seq %d", fileSeq, seq)
		}
		if !equalSchema(st.Schema, schema) {
			return nil, fmt.Errorf("%w: state has %q, engine has %q", ErrSchemaMismatch, st.Schema, schema)
		}
		d.eng, err = makeRestored(st)
		if err != nil {
			return nil, err
		}
		d.snapSeq = seq
	} else {
		d.eng, err = makeFresh()
		if err != nil {
			return nil, err
		}
	}

	d.seq = d.snapSeq
	segs, err := sd.WALSegments()
	if err != nil {
		return nil, err
	}
	for i, seg := range segs {
		data, err := os.ReadFile(seg.Path)
		if err != nil {
			return nil, fmt.Errorf("wal: %w", err)
		}
		tail, err := ReplayLog(data, d.nattrs, d.snapSeq, func(rec *Record) error {
			// Engine-level failures replay the failures that were logged
			// live; swallowing them keeps the fold deterministic.
			applyRecord(d.eng, rec)
			if rec.Seq > d.seq {
				d.seq = rec.Seq
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		if tail < int64(len(data)) {
			if i != len(segs)-1 {
				// Only the segment being appended to at crash time can have
				// a torn tail; damage anywhere else is corruption.
				return nil, &CorruptRecordError{Offset: tail, Reason: "torn record in non-final WAL segment"}
			}
			if err := sd.TruncateWAL(seg, tail); err != nil {
				return nil, err
			}
		}
	}
	d.sinceSnap = int(d.seq - d.snapSeq)
	gate.open.Store(true)

	var f *os.File
	if len(segs) > 0 {
		f, err = sd.OpenWALAppend(segs[len(segs)-1])
		d.segStart = segs[len(segs)-1].StartSeq
	} else {
		f, err = sd.CreateWAL(d.seq)
		d.segStart = d.seq
	}
	if err != nil {
		return nil, err
	}
	d.log = NewLogWriter(f, d.nattrs, d.fsyncEvery)
	return d, nil
}

func equalSchema(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func applyRecord(eng engineOps, rec *Record) error {
	switch rec.Op {
	case OpAdd:
		return eng.Add(rec.Tuple)
	case OpAddBatch:
		return eng.AddBatch(rec.Batch)
	case OpRemove:
		return eng.Remove(rec.ID)
	case OpReseal:
		return eng.Reseal()
	default:
		return fmt.Errorf("wal: unknown op %d", rec.Op)
	}
}

// logThen runs the log-then-apply protocol for one operation: append
// the record (a failed append rejects the operation before any state
// change), apply it to the engine, and checkpoint when the op budget
// since the last snapshot is spent. apply defaults to replaying rec;
// AddBatch passes a wider application than it logs.
func (d *durable) logThen(rec *Record, apply func() error) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrClosed
	}
	rec.Seq = d.seq + 1
	if err := d.log.Append(rec); err != nil {
		return err // nothing applied; memory and disk still agree
	}
	d.seq++
	d.sinceSnap++
	var err error
	if apply != nil {
		err = apply()
	} else {
		err = applyRecord(d.eng, rec)
	}
	if d.snapshotEvery > 0 && d.sinceSnap >= d.snapshotEvery {
		if cerr := d.checkpointLocked(); err == nil {
			err = cerr
		}
	}
	return err
}

// Add durably inserts one tuple (see core.Detector.Add). A nil tuple
// is rejected by the engine without touching the log.
func (d *durable) Add(x *pdb.XTuple) error {
	if x == nil {
		return d.eng.Add(nil)
	}
	return d.logThen(&Record{Op: OpAdd, Tuple: x}, nil)
}

// AddBatch durably inserts a batch (see core.Detector.AddBatch). The
// logged record holds the prefix before the first nil tuple — the
// engine stops preparing the batch there anyway, so replaying the
// prefix rebuilds the identical partial-apply state.
func (d *durable) AddBatch(xs []*pdb.XTuple) error {
	logged := xs
	for i, x := range xs {
		if x == nil {
			logged = xs[:i]
			break
		}
	}
	return d.logThen(&Record{Op: OpAddBatch, Batch: logged}, func() error {
		return d.eng.AddBatch(xs)
	})
}

// Remove durably retracts a tuple by ID (see core.Detector.Remove).
func (d *durable) Remove(id string) error {
	return d.logThen(&Record{Op: OpRemove, ID: id}, nil)
}

// Reseal durably forces an epoch seal (see core.Detector.Reseal).
func (d *durable) Reseal() error {
	return d.logThen(&Record{Op: OpReseal}, nil)
}

// Checkpoint takes a snapshot of the full live state, installs it
// atomically, starts a fresh WAL segment and garbage-collects files
// the new snapshot makes redundant. After a checkpoint, recovery reads
// the snapshot plus an empty (or short) log tail.
func (d *durable) Checkpoint() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrClosed
	}
	return d.checkpointLocked()
}

func (d *durable) checkpointLocked() error {
	if err := d.log.Sync(); err != nil {
		return err
	}
	data := EncodeSnapshot(d.eng.SnapshotState(), d.seq)
	if err := d.sd.WriteSnapshot(d.seq, data); err != nil {
		return err
	}
	// Rotate only if records were appended since the live segment was
	// opened; otherwise the segment already starts at d.seq (holding no
	// durable records) and recreating it would collide.
	if d.segStart != d.seq {
		f, err := d.sd.CreateWAL(d.seq)
		if err != nil {
			// The snapshot is installed and the old segment still accepts
			// appends; the checkpoint is durable even though rotation failed.
			return err
		}
		old := d.log
		d.log = NewLogWriter(f, d.nattrs, d.fsyncEvery)
		d.segStart = d.seq
		old.Close()
	}
	d.snapSeq = d.seq
	d.sinceSnap = 0
	// GC failures cost disk space, not correctness.
	_ = d.sd.RemoveObsolete(d.snapSeq)
	return nil
}

// Seq returns the sequence number of the last logged operation.
func (d *durable) Seq() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.seq
}

// Close checkpoints the final state and releases the directory. A
// cleanly closed engine reopens by loading one snapshot and replaying
// nothing.
func (d *durable) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return nil
	}
	d.closed = true
	err := d.checkpointLocked()
	if cerr := d.log.Close(); err == nil {
		err = cerr
	}
	if cerr := d.sd.Close(); err == nil {
		err = cerr
	}
	return err
}

// Abort releases the directory without a final checkpoint, leaving
// recovery to the snapshot and log tail already on disk — the closest
// an in-process caller can get to being kill -9'd. The crash tests and
// the recovery benchmark use it; production code wants Close.
func (d *durable) Abort() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return nil
	}
	d.closed = true
	err := d.log.Close()
	if cerr := d.sd.Close(); err == nil {
		err = cerr
	}
	return err
}

// DurableDetector is a core.Detector whose state survives crashes: a
// write-ahead log makes every operation durable before it is applied,
// and periodic snapshots bound recovery time. Recovery is exact —
// reopening after a crash yields a detector whose Flush is
// bit-identical to one that never crashed (minus any final operations
// whose log records did not survive, which were never acknowledged).
type DurableDetector struct {
	*durable
	det *core.Detector
}

// OpenDurable opens (or creates) the durable detector state in dir and
// recovers it: newest snapshot, then the WAL tail, replayed through the
// ordinary Detector fold. Deltas re-generated during replay are not
// re-emitted; emit sees only post-recovery changes. The open fails with
// ErrStateLocked if another process holds dir and ErrSchemaMismatch if
// the persisted state was built under a different schema.
func OpenDurable(dir string, schema []string, opts core.Options, emit func(core.MatchDelta) bool) (*DurableDetector, error) {
	dd := &DurableDetector{}
	gate := &emitGate{}
	gated := gateEmit(gate, emit)
	d, err := openShared(dir, schema, opts.Durability, gate,
		func() (engineOps, error) {
			det, err := core.NewDetector(schema, opts, gated)
			dd.det = det
			return det, err
		},
		func(st *core.DetectorState) (engineOps, error) {
			det, err := core.RestoreDetector(opts, gated, st)
			dd.det = det
			return det, err
		})
	if err != nil {
		return nil, err
	}
	dd.durable = d
	return dd, nil
}

// Flush returns the classified pair set (see core.Detector.Flush).
func (d *DurableDetector) Flush() *core.Result { return d.det.Flush() }

// Stats returns cumulative work counters (see core.Detector.Stats).
func (d *DurableDetector) Stats() core.DetectorStats { return d.det.Stats() }

// Len reports the number of resident tuples.
func (d *DurableDetector) Len() int { return d.det.Len() }

// Resident looks up a resident tuple by ID (see core.Detector.Resident).
func (d *DurableDetector) Resident(id string) (*pdb.XTuple, bool) { return d.det.Resident(id) }

// ResidentIDs returns the sorted resident tuple IDs (see
// core.Detector.ResidentIDs).
func (d *DurableDetector) ResidentIDs() []string { return d.det.ResidentIDs() }

// DurableIntegrator is a resolve.Integrator with the same durability
// contract as DurableDetector: WAL-logged operations, snapshot
// checkpoints, and exact recovery of the live entity set.
type DurableIntegrator struct {
	*durable
	ig *resolve.Integrator
}

// OpenDurableIntegrator opens (or creates) durable online-integration
// state in dir; see OpenDurable for the recovery and error contract.
func OpenDurableIntegrator(dir string, schema []string, opts core.Options, emit func(resolve.EntityDelta) bool) (*DurableIntegrator, error) {
	di := &DurableIntegrator{}
	gate := &emitGate{}
	gated := gateEmit(gate, emit)
	d, err := openShared(dir, schema, opts.Durability, gate,
		func() (engineOps, error) {
			ig, err := resolve.NewIntegrator(schema, opts, gated)
			di.ig = ig
			return ig, err
		},
		func(st *core.DetectorState) (engineOps, error) {
			ig, err := resolve.RestoreIntegrator(opts, gated, st)
			di.ig = ig
			return ig, err
		})
	if err != nil {
		return nil, err
	}
	di.durable = d
	return di, nil
}

// Flush returns the fused entity view (see resolve.Integrator.Flush).
func (d *DurableIntegrator) Flush() (*resolve.Resolution, error) { return d.ig.Flush() }

// FlushResult returns the pair-level view (see
// resolve.Integrator.FlushResult).
func (d *DurableIntegrator) FlushResult() *core.Result { return d.ig.FlushResult() }

// Stats returns cumulative work counters (see
// resolve.Integrator.Stats).
func (d *DurableIntegrator) Stats() resolve.IntegratorStats { return d.ig.Stats() }

// Len reports the number of resident tuples.
func (d *DurableIntegrator) Len() int { return d.ig.Len() }

// ResidentIDs returns the sorted resident tuple IDs (see
// core.Detector.ResidentIDs).
func (d *DurableIntegrator) ResidentIDs() []string { return d.ig.ResidentIDs() }
