// Package wal makes the online engines durable: it persists the state
// the paper's continuous pipeline accumulates (Sec. III's pipeline
// run incrementally — the resident x-relation, the live classified
// pair set of the decision model, and the bounded-staleness reduction
// index of Sec. IV) as a versioned binary snapshot plus a write-ahead
// log, so a crashed process recovers bit-identically to one that
// never crashed.
//
// The durability protocol is log-then-apply: every mutating operation
// (Add, AddBatch, Remove, Reseal) first appends one CRC-framed record
// to the current WAL segment — a failed append rejects the operation
// with engine state unchanged — and only then reaches the in-memory
// engine. Recovery loads the newest intact snapshot and replays the
// tail of the log through the engine's own fold paths, which is what
// makes recovered state exact rather than approximate: replay re-runs
// the same deterministic code the live process ran. Deltas are gated
// during replay (they were already delivered before the crash) and
// flow again from the first post-recovery operation.
//
// On-disk layout, per state directory: a LOCK file held via flock
// (ErrStateLocked when another live process owns it),
// snapshot-<seq>.snap files installed atomically (write temp, fsync,
// rename, fsync directory), and wal-<seq>.log segments whose records
// are framed as [u32 length][u32 CRC32][payload]. A damaged record
// running to the end of the final segment is a torn tail — the crash
// interrupted an unacknowledged write — and is silently truncated;
// the same damage with intact bytes after it is interior corruption
// and recovery refuses loudly with the byte offset
// (*CorruptRecordError).
//
// DurableDetector and DurableIntegrator wrap core.Detector and
// resolve.Integrator with this contract; FaultFile injects write
// failures at chosen points so the crash-recovery equivalence is
// provable at every write boundary rather than assumed.
package wal
