package wal

import (
	"encoding/binary"
	"fmt"
	"math"

	"probdedup/internal/pdb"
)

// The binary plane shared by the snapshot codec and the log records:
// little-endian fixed-width integers for framing fields, uvarints for
// counts and lengths, raw float64 bits for probabilities and
// similarities (bit-exact round trips — recovery must be bit-identical,
// so no decimal formatting anywhere).

// maxCount caps a single decoded collection so a crafted length prefix
// cannot demand an absurd allocation before the remaining-byte check
// even runs. Every element of every collection costs at least one
// encoded byte, so the real guard is remaining(); this bound just keeps
// the arithmetic comfortably inside int range.
const maxCount = 1 << 40

// encoder appends the binary forms to a reusable buffer.
type encoder struct {
	buf []byte
}

func (e *encoder) u32(v uint32) {
	e.buf = binary.LittleEndian.AppendUint32(e.buf, v)
}

func (e *encoder) u64(v uint64) {
	e.buf = binary.LittleEndian.AppendUint64(e.buf, v)
}

func (e *encoder) u8(v byte) {
	e.buf = append(e.buf, v)
}

func (e *encoder) uvarint(v uint64) {
	e.buf = binary.AppendUvarint(e.buf, v)
}

func (e *encoder) f64(v float64) {
	e.u64(math.Float64bits(v))
}

func (e *encoder) str(s string) {
	e.uvarint(uint64(len(s)))
	e.buf = append(e.buf, s...)
}

// dist encodes one attribute distribution: the explicit alternatives
// in insertion order (the ⊥ remainder is implicit, as in pdb.Dist).
func (e *encoder) dist(d pdb.Dist) {
	alts := d.Alternatives()
	e.uvarint(uint64(len(alts)))
	for _, a := range alts {
		e.str(a.Value.S())
		e.f64(a.P)
	}
}

// xtuple encodes one x-tuple against a known schema width (the width
// is context, not payload, so decoding enforces the arity). Symbol
// annotations are not encoded — the symbol plane is content-addressed
// and re-derived on restore.
func (e *encoder) xtuple(x *pdb.XTuple) {
	e.str(x.ID)
	e.uvarint(uint64(len(x.Alts)))
	for _, a := range x.Alts {
		e.f64(a.P)
		for _, d := range a.Values {
			e.dist(d)
		}
	}
}

// decoder walks a byte slice; the first malformed field latches err
// and every later read returns zero values, so call sites stay linear
// and check err once. All counts are validated against the remaining
// bytes before allocating, so arbitrary input can never demand more
// memory than its own length.
type decoder struct {
	buf []byte
	off int
	err error
}

func (d *decoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("wal: offset %d: %s", d.off, fmt.Sprintf(format, args...))
	}
}

func (d *decoder) remaining() int { return len(d.buf) - d.off }

func (d *decoder) u32() uint32 {
	if d.err != nil {
		return 0
	}
	if d.remaining() < 4 {
		d.fail("truncated u32")
		return 0
	}
	v := binary.LittleEndian.Uint32(d.buf[d.off:])
	d.off += 4
	return v
}

func (d *decoder) u64() uint64 {
	if d.err != nil {
		return 0
	}
	if d.remaining() < 8 {
		d.fail("truncated u64")
		return 0
	}
	v := binary.LittleEndian.Uint64(d.buf[d.off:])
	d.off += 8
	return v
}

func (d *decoder) u8() byte {
	if d.err != nil {
		return 0
	}
	if d.remaining() < 1 {
		d.fail("truncated byte")
		return 0
	}
	v := d.buf[d.off]
	d.off++
	return v
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		d.fail("bad uvarint")
		return 0
	}
	d.off += n
	return v
}

// count reads a collection length and proves the remaining bytes can
// hold it (minSize is the smallest possible encoding of one element).
func (d *decoder) count(minSize int) int {
	v := d.uvarint()
	if d.err != nil {
		return 0
	}
	if v > maxCount || int(v) > d.remaining()/minSize {
		d.fail("count %d exceeds remaining input", v)
		return 0
	}
	return int(v)
}

func (d *decoder) f64() float64 {
	return math.Float64frombits(d.u64())
}

func (d *decoder) str() string {
	n := d.count(1)
	if d.err != nil {
		return ""
	}
	s := string(d.buf[d.off : d.off+n])
	d.off += n
	return s
}

// dist decodes one attribute distribution through pdb.NewDist, which
// re-validates the probability mass — a crafted payload cannot smuggle
// in a distribution the engine's own constructors would reject.
func (d *decoder) dist() pdb.Dist {
	n := d.count(9) // 1 length byte + 8 probability bytes minimum
	if d.err != nil {
		return pdb.Dist{}
	}
	alts := make([]pdb.Alternative, 0, n)
	for i := 0; i < n; i++ {
		v := d.str()
		p := d.f64()
		alts = append(alts, pdb.Alternative{Value: pdb.V(v), P: p})
	}
	if d.err != nil {
		return pdb.Dist{}
	}
	dist, err := pdb.NewDist(alts...)
	if err != nil {
		d.fail("%v", err)
		return pdb.Dist{}
	}
	return dist
}

// xtuple decodes one x-tuple with the given schema width.
func (d *decoder) xtuple(nattrs int) *pdb.XTuple {
	id := d.str()
	nalts := d.count(8 + nattrs) // P + one minimal dist per attribute
	if d.err != nil {
		return nil
	}
	x := &pdb.XTuple{ID: id, Alts: make([]pdb.Alt, 0, nalts)}
	for i := 0; i < nalts; i++ {
		a := pdb.Alt{P: d.f64(), Values: make([]pdb.Dist, 0, nattrs)}
		for j := 0; j < nattrs; j++ {
			a.Values = append(a.Values, d.dist())
		}
		if d.err != nil {
			return nil
		}
		x.Alts = append(x.Alts, a)
	}
	return x
}
