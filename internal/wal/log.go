package wal

import (
	"fmt"
	"hash/crc32"
	"io"

	"probdedup/internal/pdb"
)

// Op identifies a logged engine operation.
type Op byte

const (
	// OpAdd logs a single tuple arrival.
	OpAdd Op = 1
	// OpAddBatch logs an atomic batch arrival.
	OpAddBatch Op = 2
	// OpRemove logs a tuple retraction by ID.
	OpRemove Op = 3
	// OpReseal logs a forced epoch seal of a bounded-staleness index.
	OpReseal Op = 4
)

// Record is one logged operation. Exactly one of Tuple, Batch or ID is
// populated, matching Op; OpReseal carries no payload.
type Record struct {
	Seq   uint64
	Op    Op
	Tuple *pdb.XTuple
	Batch []*pdb.XTuple
	ID    string
}

// CorruptRecordError reports a WAL record that fails its CRC or
// structural checks with bytes still following it — interior
// corruption, which recovery must refuse loudly. A damaged record at
// the very end of the log is a torn tail (an interrupted write) and is
// silently dropped instead.
type CorruptRecordError struct {
	Offset int64
	Reason string
}

func (e *CorruptRecordError) Error() string {
	return fmt.Sprintf("wal: corrupt record at offset %d: %s", e.Offset, e.Reason)
}

// Each record is framed as [u32 payload length][u32 CRC32(payload)]
// [payload], payload = u64 seq, u8 op, op-specific body. The frame CRC
// makes torn and corrupted writes distinguishable from valid data.
const frameHeader = 8

// maxRecordLen bounds a single record frame; a length prefix beyond it
// is treated as corruption rather than an allocation request. Batches
// larger than this must be split by the writer (appendRecord enforces
// the same bound on encode).
const maxRecordLen = 1 << 30

func encodePayload(buf []byte, rec *Record) ([]byte, error) {
	e := &encoder{buf: buf}
	e.u64(rec.Seq)
	e.u8(byte(rec.Op))
	switch rec.Op {
	case OpAdd:
		e.xtuple(rec.Tuple)
	case OpAddBatch:
		e.uvarint(uint64(len(rec.Batch)))
		for _, x := range rec.Batch {
			e.xtuple(x)
		}
	case OpRemove:
		e.str(rec.ID)
	case OpReseal:
	default:
		return nil, fmt.Errorf("wal: unknown op %d", rec.Op)
	}
	return e.buf, nil
}

func decodePayload(payload []byte, nattrs int) (*Record, error) {
	d := &decoder{buf: payload}
	rec := &Record{Seq: d.u64(), Op: Op(d.u8())}
	switch rec.Op {
	case OpAdd:
		rec.Tuple = d.xtuple(nattrs)
	case OpAddBatch:
		n := d.count(2)
		for i := 0; i < n && d.err == nil; i++ {
			rec.Batch = append(rec.Batch, d.xtuple(nattrs))
		}
	case OpRemove:
		rec.ID = d.str()
	case OpReseal:
	default:
		d.fail("unknown op %d", rec.Op)
	}
	if d.err != nil {
		return nil, d.err
	}
	if d.off != len(payload) {
		return nil, fmt.Errorf("wal: record has %d trailing payload bytes", len(payload)-d.off)
	}
	return rec, nil
}

// appendRecord frames and appends one record to buf.
func appendRecord(buf []byte, rec *Record) ([]byte, error) {
	start := len(buf)
	buf = append(buf, 0, 0, 0, 0, 0, 0, 0, 0) // frame header placeholder
	buf, err := encodePayload(buf, rec)
	if err != nil {
		return nil, err
	}
	payload := buf[start+frameHeader:]
	if len(payload) > maxRecordLen {
		return nil, fmt.Errorf("wal: record payload %d bytes exceeds limit", len(payload))
	}
	e := &encoder{buf: buf[start:start:cap(buf)]}
	e.u32(uint32(len(payload)))
	e.u32(crc32.ChecksumIEEE(payload))
	return buf, nil
}

// ReplayLog walks one WAL segment, invoking apply for every intact
// record with Seq > skipSeq (records at or below skipSeq predate the
// snapshot being recovered and are decoded but not applied, which also
// verifies their integrity). It returns the byte offset of the end of
// the last intact record, so the caller can truncate a torn tail.
//
// A damaged frame that runs to the end of the data — a truncated
// header, a length prefix pointing past EOF, or a CRC/decode failure on
// the final record — is a torn tail: the crash interrupted that write,
// the operation was never acknowledged, and the record is silently
// dropped. The same damage with intact bytes after it cannot be
// explained by a torn write and surfaces as *CorruptRecordError.
func ReplayLog(data []byte, nattrs int, skipSeq uint64, apply func(*Record) error) (int64, error) {
	off := 0
	for off < len(data) {
		corrupt := func(reason string) (int64, error) {
			return int64(off), &CorruptRecordError{Offset: int64(off), Reason: reason}
		}
		if len(data)-off < frameHeader {
			return int64(off), nil // torn tail: partial frame header
		}
		d := &decoder{buf: data, off: off}
		length := int(d.u32())
		sum := d.u32()
		if length > maxRecordLen {
			// A length this large is never written; if it is not simply a
			// torn header at EOF we cannot even locate the next record.
			return corrupt(fmt.Sprintf("frame length %d exceeds limit", length))
		}
		end := off + frameHeader + length
		if end > len(data) {
			return int64(off), nil // torn tail: payload cut short
		}
		payload := data[off+frameHeader : end]
		rec, err := func() (*Record, error) {
			if got := crc32.ChecksumIEEE(payload); got != sum {
				return nil, fmt.Errorf("CRC mismatch (got %08x, want %08x)", got, sum)
			}
			return decodePayload(payload, nattrs)
		}()
		if err != nil {
			if end == len(data) {
				return int64(off), nil // torn tail: final record damaged
			}
			return corrupt(err.Error())
		}
		if rec.Seq > skipSeq {
			if err := apply(rec); err != nil {
				return int64(off), err
			}
		}
		off = end
	}
	return int64(off), nil
}

// File is the sink a LogWriter appends to. *os.File satisfies it; the
// fault-injection harness substitutes a FaultFile that fails or tears
// writes at a chosen point.
type File interface {
	io.Writer
	Sync() error
	Close() error
}

// LogWriter appends framed records to a WAL segment with group commit:
// every record is a single Write call (so a crash tears at most the
// final record), and fsync is issued once per fsyncEvery appends rather
// than per record. Sync flushes any deferred batch explicitly —
// checkpoints and clean shutdown call it before relying on the log.
type LogWriter struct {
	f          File
	nattrs     int
	fsyncEvery int
	pending    int
	buf        []byte
}

// NewLogWriter wraps an append-positioned file. fsyncEvery <= 1 syncs
// after every record.
func NewLogWriter(f File, nattrs, fsyncEvery int) *LogWriter {
	if fsyncEvery < 1 {
		fsyncEvery = 1
	}
	return &LogWriter{f: f, nattrs: nattrs, fsyncEvery: fsyncEvery}
}

// Append frames rec and writes it in one call. On error the record is
// not durable and the caller must not apply the operation — the
// log-then-apply protocol keeps memory and disk consistent.
func (w *LogWriter) Append(rec *Record) error {
	buf, err := appendRecord(w.buf[:0], rec)
	if err != nil {
		return err
	}
	w.buf = buf[:0]
	if _, err := w.f.Write(buf); err != nil {
		return fmt.Errorf("wal: append: %w", err)
	}
	w.pending++
	if w.pending >= w.fsyncEvery {
		return w.Sync()
	}
	return nil
}

// Sync flushes the current group-commit batch; a no-op when nothing is
// pending.
func (w *LogWriter) Sync() error {
	if w.pending == 0 {
		return nil
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("wal: fsync: %w", err)
	}
	w.pending = 0
	return nil
}

// Close syncs any pending batch and closes the underlying file.
func (w *LogWriter) Close() error {
	err := w.Sync()
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	return err
}
