package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"syscall"
)

// ErrStateLocked reports that another process holds the state
// directory. Durable engines take an exclusive advisory lock so two
// writers can never interleave WAL appends or race a checkpoint.
var ErrStateLocked = errors.New("wal: state directory is locked by another process")

// StateDir owns an on-disk durability directory: the advisory lock,
// the snapshot files (snapshot-<seq>.snap) and the WAL segments
// (wal-<seq>.log, holding records after sequence <seq>).
type StateDir struct {
	path string
	lock *os.File
}

// Segment describes one on-disk WAL segment.
type Segment struct {
	Path string
	// StartSeq is the sequence number the segment starts after: it
	// holds records with Seq > StartSeq.
	StartSeq uint64
}

// OpenStateDir creates the directory if needed and takes the exclusive
// lock, returning ErrStateLocked (wrapped) if another live process
// holds it. The lock is advisory (flock), released on Close or process
// exit — a killed process never leaves a stale lock.
func OpenStateDir(dir string) (*StateDir, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	lock, err := os.OpenFile(filepath.Join(dir, "LOCK"), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	if err := syscall.Flock(int(lock.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		lock.Close()
		return nil, fmt.Errorf("%w: %s", ErrStateLocked, dir)
	}
	return &StateDir{path: dir, lock: lock}, nil
}

// Close releases the directory lock.
func (sd *StateDir) Close() error {
	return sd.lock.Close()
}

// Path returns the directory path.
func (sd *StateDir) Path() string { return sd.path }

func (sd *StateDir) snapshotPath(seq uint64) string {
	return filepath.Join(sd.path, fmt.Sprintf("snapshot-%016x.snap", seq))
}

func (sd *StateDir) walPath(seq uint64) string {
	return filepath.Join(sd.path, fmt.Sprintf("wal-%016x.log", seq))
}

// fsyncDir makes directory-entry changes (renames, creates) durable.
func (sd *StateDir) fsyncDir() error {
	d, err := os.Open(sd.path)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// WriteSnapshot atomically installs an encoded snapshot for seq: write
// to a temp file, fsync it, rename into place, fsync the directory.
// A crash at any point leaves either the old snapshot set or the new
// one — never a partially written file under the final name.
func (sd *StateDir) WriteSnapshot(seq uint64, data []byte) error {
	final := sd.snapshotPath(seq)
	tmp := final + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	_, werr := f.Write(data)
	if werr == nil {
		werr = f.Sync()
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(tmp)
		return fmt.Errorf("wal: snapshot write: %w", werr)
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("wal: %w", err)
	}
	if err := sd.fsyncDir(); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	return nil
}

// LatestSnapshot returns the contents and sequence of the
// highest-numbered snapshot, or ok=false when none exists yet.
func (sd *StateDir) LatestSnapshot() (data []byte, seq uint64, ok bool, err error) {
	seqs, err := sd.listSeqs("snapshot-", ".snap")
	if err != nil || len(seqs) == 0 {
		return nil, 0, false, err
	}
	seq = seqs[len(seqs)-1]
	data, err = os.ReadFile(sd.snapshotPath(seq))
	if err != nil {
		return nil, 0, false, fmt.Errorf("wal: %w", err)
	}
	return data, seq, true, nil
}

// WALSegments lists the WAL segments in ascending start-sequence order.
func (sd *StateDir) WALSegments() ([]Segment, error) {
	seqs, err := sd.listSeqs("wal-", ".log")
	if err != nil {
		return nil, err
	}
	segs := make([]Segment, 0, len(seqs))
	for _, s := range seqs {
		segs = append(segs, Segment{Path: sd.walPath(s), StartSeq: s})
	}
	return segs, nil
}

func (sd *StateDir) listSeqs(prefix, suffix string) ([]uint64, error) {
	entries, err := os.ReadDir(sd.path)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	var seqs []uint64
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
			continue
		}
		hex := strings.TrimSuffix(strings.TrimPrefix(name, prefix), suffix)
		v, err := strconv.ParseUint(hex, 16, 64)
		if err != nil {
			continue // foreign file; leave it alone
		}
		seqs = append(seqs, v)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return seqs, nil
}

// CreateWAL creates a fresh segment starting after seq and makes its
// directory entry durable.
func (sd *StateDir) CreateWAL(seq uint64) (*os.File, error) {
	f, err := os.OpenFile(sd.walPath(seq), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	if err := sd.fsyncDir(); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: %w", err)
	}
	return f, nil
}

// TruncateWAL drops a torn tail discovered during recovery, so the
// next append never lands behind damaged bytes.
func (sd *StateDir) TruncateWAL(seg Segment, size int64) error {
	if err := os.Truncate(seg.Path, size); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	return nil
}

// OpenWALAppend opens an existing segment for appending.
func (sd *StateDir) OpenWALAppend(seg Segment) (*os.File, error) {
	f, err := os.OpenFile(seg.Path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	return f, nil
}

// RemoveObsolete deletes snapshots and WAL segments made redundant by
// a checkpoint at keepSeq: every snapshot below it and every segment
// fully covered by it. Best-effort — a failure here costs disk space,
// not correctness — so errors are returned but the sweep continues.
func (sd *StateDir) RemoveObsolete(keepSeq uint64) error {
	var firstErr error
	if seqs, err := sd.listSeqs("snapshot-", ".snap"); err == nil {
		for _, s := range seqs {
			if s < keepSeq {
				if err := os.Remove(sd.snapshotPath(s)); err != nil && firstErr == nil {
					firstErr = err
				}
			}
		}
	} else if firstErr == nil {
		firstErr = err
	}
	if segs, err := sd.WALSegments(); err == nil {
		// A segment starting at s holds records with Seq > s; it is
		// obsolete only if the NEXT segment also starts at or below
		// keepSeq (i.e. every record it can hold is ≤ keepSeq).
		for i, seg := range segs {
			if i+1 < len(segs) && segs[i+1].StartSeq <= keepSeq {
				if err := os.Remove(seg.Path); err != nil && firstErr == nil {
					firstErr = err
				}
			}
		}
	} else if firstErr == nil {
		firstErr = err
	}
	return firstErr
}
