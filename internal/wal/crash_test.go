package wal

import (
	"errors"
	"fmt"
	"testing"

	"probdedup/internal/core"
	"probdedup/internal/pdb"
)

// opTarget is the schedule surface shared by durable and plain engines.
type opTarget interface {
	Add(x *pdb.XTuple) error
	AddBatch(xs []*pdb.XTuple) error
	Remove(id string) error
	Reseal() error
}

// handle wraps one open durable engine (detector or integrator) with a
// uniform fingerprint surface for the crash tests.
type handle struct {
	ops opTarget
	d   *durable
	fp  func(tb testing.TB) string
}

func openHandle(tb testing.TB, engine, dir string, schema []string, opts core.Options) (*handle, error) {
	tb.Helper()
	switch engine {
	case "detector":
		dd, err := OpenDurable(dir, schema, opts, nil)
		if err != nil {
			return nil, err
		}
		return &handle{ops: dd, d: dd.durable, fp: func(tb testing.TB) string {
			tb.Helper()
			return resultFingerprint(dd.Flush(), dd.Stats())
		}}, nil
	case "integrator":
		dig, err := OpenDurableIntegrator(dir, schema, opts, nil)
		if err != nil {
			return nil, err
		}
		return &handle{ops: dig, d: dig.durable, fp: func(tb testing.TB) string {
			tb.Helper()
			r, err := dig.Flush()
			if err != nil {
				tb.Fatal(err)
			}
			return resolutionFingerprint(r)
		}}, nil
	}
	tb.Fatalf("unknown engine %q", engine)
	return nil, nil
}

func mustOpenHandle(tb testing.TB, engine, dir string, schema []string, opts core.Options) *handle {
	tb.Helper()
	h, err := openHandle(tb, engine, dir, schema, opts)
	if err != nil {
		tb.Fatal(err)
	}
	return h
}

// cleanFingerprint folds a schedule prefix through a never-crashed
// plain engine and fingerprints its Flush.
func cleanFingerprint(tb testing.TB, engine string, schema []string, opts core.Options, ops []testOp) string {
	tb.Helper()
	if engine == "detector" {
		return cleanDetectorFingerprint(tb, schema, opts, ops)
	}
	return cleanIntegratorFingerprint(tb, schema, opts, ops)
}

// TestCrashAtEveryWritePoint is the headline durability proof: for
// both engines × three reduction tiers (including the bounded-
// staleness BlockingCluster) × five schedule seeds, a simulated crash
// is injected at EVERY WAL write — failing outright, tearing the
// record mid-frame, or persisting it fully before failing — and
// recovery from the surviving bytes must be bit-identical to a
// never-crashed engine fed the surviving operation prefix. The
// recovered engine then folds the remaining schedule (including the
// retried lost operation) and must land bit-identically on the
// never-crashed full run — recovery is exact both at the crash point
// and forever after.
func TestCrashAtEveryWritePoint(t *testing.T) {
	const nops = 18
	for _, engine := range []string{"detector", "integrator"} {
		for seed := int64(0); seed < 5; seed++ {
			schema, ops := genSchedule(t, seed, nops)
			for redName, red := range crashReductions(t, schema) {
				red := red
				t.Run(fmt.Sprintf("%s/%s/seed%d", engine, redName, seed), func(t *testing.T) {
					t.Parallel()
					opts := testOptions(red)
					opts.Durability = core.Durability{FsyncEvery: 1 + int(seed)%3}
					// Midpoint checkpoint on odd seeds: half the grid
					// recovers snapshot+tail, half tail-only.
					checkpointAt := -1
					if seed%2 == 1 {
						checkpointAt = len(ops) / 2
					}
					// Never-crashed references: one per surviving prefix
					// length, plus the full run.
					prefixFp := make([]string, len(ops)+1)
					for k := 0; k <= len(ops); k++ {
						prefixFp[k] = cleanFingerprint(t, engine, schema, opts, ops[:k])
					}
					for crash := 1; crash <= len(ops); crash++ {
						tear := 0
						expected := crash - 1
						switch crash % 3 {
						case 1: // torn: a prefix of the frame persists, then dropped
							tear = 4
						case 2: // fully persisted, then the write "fails"
							tear = 1 << 20
							expected = crash
						}
						runCrashCycle(t, engine, schema, opts, ops, crash, tear, expected,
							checkpointAt, prefixFp[expected], prefixFp[len(ops)])
					}
				})
			}
		}
	}
}

// runCrashCycle executes one crash/recover/compare cycle: apply the
// schedule with a FaultFile crashing at the crash-th WAL write, abort,
// reopen, and require the recovered state (and its continuation) to be
// bit-identical to the never-crashed references.
func runCrashCycle(t *testing.T, engine string, schema []string, opts core.Options, ops []testOp,
	crash, tear, expected, checkpointAt int, wantPrefix, wantFinal string) {
	t.Helper()
	dir := t.TempDir()
	h := mustOpenHandle(t, engine, dir, schema, opts)
	var injected *FaultFile
	attempts := 0
	// ensureFault (re-)wraps the current WAL file: a checkpoint rotates
	// the log, so the fault moves with it, with the crash budget reduced
	// by the write attempts already spent.
	ensureFault := func() {
		if cur, ok := h.d.log.f.(*FaultFile); ok && cur == injected {
			return
		}
		injected = &FaultFile{F: h.d.log.f, FailAt: crash - attempts, TearBytes: tear}
		h.d.log.f = injected
	}
	crashed := false
	for i, op := range ops {
		if i == checkpointAt {
			if err := h.d.Checkpoint(); err != nil {
				t.Fatalf("crash=%d: checkpoint: %v", crash, err)
			}
		}
		ensureFault()
		err := applyOp(h.ops, op)
		attempts++
		if err != nil {
			if !errors.Is(err, ErrInjectedFault) {
				t.Fatalf("crash=%d op %d: unexpected error %v", crash, i, err)
			}
			crashed = true
			break
		}
	}
	if !crashed {
		t.Fatalf("crash=%d: fault never fired (%d attempts)", crash, attempts)
	}
	h.d.Abort() // error expected: the file is "dead"

	h2 := mustOpenHandle(t, engine, dir, schema, opts)
	defer h2.d.Abort()
	if got := h2.fp(t); got != wantPrefix {
		t.Fatalf("crash=%d tear=%d: recovered state diverges from never-crashed prefix of %d ops\n--- recovered ---\n%s--- want ---\n%s",
			crash, tear, expected, got, wantPrefix)
	}
	// Continue the schedule (retrying the lost operation, if any): the
	// recovered engine must stay bit-identical to the never-crashed run.
	for i, op := range ops[expected:] {
		if err := applyOp(h2.ops, op); err != nil {
			t.Fatalf("crash=%d: continuation op %d: %v", crash, expected+i, err)
		}
	}
	if got := h2.fp(t); got != wantFinal {
		t.Fatalf("crash=%d tear=%d: continued run diverges from never-crashed full run\n--- recovered ---\n%s--- want ---\n%s",
			crash, tear, got, wantFinal)
	}
}

// TestCrashCycleSchedulesTouchEveryOp sanity-checks the generated
// schedules: across the crash-test seeds every operation kind occurs,
// and the epoch tier sees Reseal ops — otherwise the grid above would
// silently prove less than it claims.
func TestCrashCycleSchedulesTouchEveryOp(t *testing.T) {
	kinds := map[Op]int{}
	for seed := int64(0); seed < 5; seed++ {
		_, ops := genSchedule(t, seed, 18)
		if len(ops) == 0 {
			t.Fatalf("seed %d: empty schedule", seed)
		}
		for _, op := range ops {
			kinds[op.op]++
		}
	}
	for _, k := range []Op{OpAdd, OpAddBatch, OpRemove, OpReseal} {
		if kinds[k] == 0 {
			t.Fatalf("no schedule contains op %d; kinds=%v", k, kinds)
		}
	}
}
