package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"probdedup/internal/core"
	"probdedup/internal/keys"
	"probdedup/internal/ssr"
)

// TestRecoverAtEveryBoundary is the checkpoint-placement property: for
// every operation boundary k, recovery must be bit-identical to a
// never-crashed engine fed ops[:k] regardless of where (or whether) a
// snapshot was taken — tail-only, snapshot-only, or snapshot+tail.
func TestRecoverAtEveryBoundary(t *testing.T) {
	const nops = 12
	for _, engine := range []string{"detector", "integrator"} {
		for _, redName := range []string{"blocking-certain", "blocking-cluster"} {
			for seed := int64(0); seed < 2; seed++ {
				schema, ops := genSchedule(t, seed, nops)
				red := crashReductions(t, schema)[redName]
				t.Run(fmt.Sprintf("%s/%s/seed%d", engine, redName, seed), func(t *testing.T) {
					t.Parallel()
					opts := testOptions(red)
					opts.Durability = core.Durability{FsyncEvery: 1}
					for k := 0; k <= len(ops); k++ {
						want := cleanFingerprint(t, engine, schema, opts, ops[:k])
						for _, shape := range []string{"tail-only", "snapshot-only", "snapshot+tail"} {
							dir := t.TempDir()
							h := mustOpenHandle(t, engine, dir, schema, opts)
							split := k // checkpoint position; k == split means snapshot-only
							if shape == "snapshot+tail" {
								split = k / 2
							}
							for i, op := range ops[:k] {
								if err := applyOp(h.ops, op); err != nil {
									t.Fatalf("k=%d %s op %d: %v", k, shape, i, err)
								}
								if shape != "tail-only" && i+1 == split {
									if err := h.d.Checkpoint(); err != nil {
										t.Fatalf("k=%d %s: checkpoint: %v", k, shape, err)
									}
								}
							}
							if shape == "snapshot-only" {
								if err := h.d.Checkpoint(); err != nil {
									t.Fatalf("k=%d: final checkpoint: %v", k, err)
								}
							}
							if err := h.d.Abort(); err != nil {
								t.Fatalf("k=%d %s: abort: %v", k, shape, err)
							}
							h2 := mustOpenHandle(t, engine, dir, schema, opts)
							if got := h2.fp(t); got != want {
								t.Fatalf("k=%d %s: recovered state diverges\n--- recovered ---\n%s--- want ---\n%s",
									k, shape, got, want)
							}
							if err := h2.d.Abort(); err != nil {
								t.Fatalf("k=%d %s: abort after recovery: %v", k, shape, err)
							}
						}
					}
				})
			}
		}
	}
}

// TestAutoCheckpointEquivalence drives the SnapshotEveryOps trigger:
// with automatic checkpoints firing every few operations, a clean Close
// and reopen must be bit-identical to the never-crashed run, and the
// final WAL tail must be empty (a clean restart replays nothing).
func TestAutoCheckpointEquivalence(t *testing.T) {
	schema, ops := genSchedule(t, 3, 20)
	red := crashReductions(t, schema)["blocking-cluster"]
	opts := testOptions(red)
	opts.Durability = core.Durability{FsyncEvery: 2, SnapshotEveryOps: 4}
	want := cleanFingerprint(t, "detector", schema, opts, ops)

	dir := t.TempDir()
	h := mustOpenHandle(t, "detector", dir, schema, opts)
	for i, op := range ops {
		if err := applyOp(h.ops, op); err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
	}
	seq := h.d.Seq()
	if err := h.d.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	h2 := mustOpenHandle(t, "detector", dir, schema, opts)
	defer h2.d.Abort()
	if got := h2.d.Seq(); got != seq {
		t.Fatalf("sequence not preserved across clean restart: got %d want %d", got, seq)
	}
	if got := h2.fp(t); got != want {
		t.Fatalf("clean restart diverges\n--- recovered ---\n%s--- want ---\n%s", got, want)
	}
	// Close checkpointed, so the live WAL segment must hold no records.
	segs := walSegments(t, dir)
	if n := len(segs); n != 1 {
		t.Fatalf("expected exactly one WAL segment after checkpointed close, got %d", n)
	}
	if fi, err := os.Stat(segs[0]); err != nil || fi.Size() != 0 {
		t.Fatalf("WAL tail not empty after checkpointed close: %v size=%d", err, fi.Size())
	}
}

// walSegments lists the WAL segment paths in a state dir, oldest first.
func walSegments(tb testing.TB, dir string) []string {
	tb.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		tb.Fatal(err)
	}
	var segs []string
	for _, e := range ents {
		if strings.HasPrefix(e.Name(), "wal-") && strings.HasSuffix(e.Name(), ".log") {
			segs = append(segs, filepath.Join(dir, e.Name()))
		}
	}
	return segs
}

// buildDetectorDir folds nops schedule ops into a fresh durable
// detector state dir and returns the dir, the schema, and the schedule.
func buildDetectorDir(tb testing.TB, seed int64, nops int, opts core.Options) (string, []string, []testOp) {
	tb.Helper()
	schema, ops := genSchedule(tb, seed, nops)
	dir := tb.TempDir()
	dd, err := OpenDurable(dir, schema, opts, nil)
	if err != nil {
		tb.Fatal(err)
	}
	for i, op := range ops {
		if err := applyOp(dd, op); err != nil {
			tb.Fatalf("op %d: %v", i, err)
		}
	}
	if err := dd.Abort(); err != nil {
		tb.Fatalf("abort: %v", err)
	}
	return dir, schema, ops
}

// TestTornFinalRecordSilent: a torn final record — trailing garbage or
// a half-written frame — is dropped silently on recovery, the file is
// truncated back to the intact prefix, and the state equals the intact
// prefix exactly.
func TestTornFinalRecordSilent(t *testing.T) {
	def := func(schema []string) ssr.Method {
		d, err := keys.ParseDef("name:3+job:2", schema)
		if err != nil {
			t.Fatal(err)
		}
		return ssr.BlockingCertain{Key: d}
	}
	for _, tc := range []struct {
		name string
		// mangle returns the bytes to write back and how many intact
		// records remain.
		mangle func(data []byte, frames []int) ([]byte, int)
	}{
		{"trailing-garbage", func(data []byte, frames []int) ([]byte, int) {
			return append(data, 0xde, 0xad, 0xbe), len(frames)
		}},
		{"half-header", func(data []byte, frames []int) ([]byte, int) {
			return data[:frames[len(frames)-1]+3], len(frames) - 1
		}},
		{"half-payload", func(data []byte, frames []int) ([]byte, int) {
			return data[:frames[len(frames)-1]+frameHeader+5], len(frames) - 1
		}},
		{"final-crc-flip", func(data []byte, frames []int) ([]byte, int) {
			data[frames[len(frames)-1]+frameHeader+2] ^= 0x40
			return data, len(frames) - 1
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			schema, ops := genSchedule(t, 7, 8)
			opts := testOptions(def(schema))
			opts.Durability = core.Durability{FsyncEvery: 1}
			dir := t.TempDir()
			dd, err := OpenDurable(dir, schema, opts, nil)
			if err != nil {
				t.Fatal(err)
			}
			for i, op := range ops {
				if err := applyOp(dd, op); err != nil {
					t.Fatalf("op %d: %v", i, err)
				}
			}
			if err := dd.Abort(); err != nil {
				t.Fatal(err)
			}
			seg := walSegments(t, dir)[0]
			data, err := os.ReadFile(seg)
			if err != nil {
				t.Fatal(err)
			}
			frames := frameOffsets(t, data)
			if len(frames) != len(ops) {
				t.Fatalf("expected %d frames, got %d", len(ops), len(frames))
			}
			mangled, intact := tc.mangle(append([]byte(nil), data...), frames)
			if err := os.WriteFile(seg, mangled, 0o644); err != nil {
				t.Fatal(err)
			}
			want := cleanDetectorFingerprint(t, schema, opts, ops[:intact])
			dd2, err := OpenDurable(dir, schema, opts, nil)
			if err != nil {
				t.Fatalf("recovery rejected torn tail: %v", err)
			}
			defer dd2.Abort()
			if got := resultFingerprint(dd2.Flush(), dd2.Stats()); got != want {
				t.Fatalf("recovered state does not match intact prefix of %d records\n--- recovered ---\n%s--- want ---\n%s",
					intact, got, want)
			}
			// The damaged tail must have been truncated away.
			fi, err := os.Stat(seg)
			if err != nil {
				t.Fatal(err)
			}
			wantLen := int64(len(data))
			if intact < len(frames) {
				wantLen = int64(frames[intact])
			}
			if fi.Size() != wantLen {
				t.Fatalf("torn tail not truncated: size=%d want %d", fi.Size(), wantLen)
			}
		})
	}
}

// TestCorruptInteriorLoud: damage to any record that is NOT the final
// one is not crash debris — recovery must refuse with a
// *CorruptRecordError carrying the exact byte offset.
func TestCorruptInteriorLoud(t *testing.T) {
	schema, _ := genSchedule(t, 7, 8)
	def, err := keys.ParseDef("name:3+job:2", schema)
	if err != nil {
		t.Fatal(err)
	}
	opts := testOptions(ssr.BlockingCertain{Key: def})
	opts.Durability = core.Durability{FsyncEvery: 1}
	dir, _, _ := buildDetectorDir(t, 7, 8, opts)
	seg := walSegments(t, dir)[0]
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	frames := frameOffsets(t, data)
	if len(frames) < 3 {
		t.Fatalf("need at least 3 frames, got %d", len(frames))
	}
	target := frames[1] // corrupt the second record's payload
	data[target+frameHeader+2] ^= 0x08
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = OpenDurable(dir, schema, opts, nil)
	if err == nil {
		t.Fatal("recovery accepted interior corruption")
	}
	var ce *CorruptRecordError
	if !errors.As(err, &ce) {
		t.Fatalf("want *CorruptRecordError, got %T: %v", err, err)
	}
	if ce.Offset != int64(target) {
		t.Fatalf("corruption offset: got %d, want %d", ce.Offset, target)
	}
}

// frameOffsets walks the WAL framing and returns each record's start
// offset.
func frameOffsets(tb testing.TB, data []byte) []int {
	tb.Helper()
	var offs []int
	off := 0
	for off+frameHeader <= len(data) {
		n := int(binary.LittleEndian.Uint32(data[off:]))
		if off+frameHeader+n > len(data) {
			break
		}
		offs = append(offs, off)
		off += frameHeader + n
	}
	return offs
}

// TestStateDirLocked: a second open of a live state dir must fail with
// ErrStateLocked; after the first owner closes, the dir opens cleanly.
func TestStateDirLocked(t *testing.T) {
	schema, _ := genSchedule(t, 1, 4)
	def, err := keys.ParseDef("name:3+job:2", schema)
	if err != nil {
		t.Fatal(err)
	}
	opts := testOptions(ssr.BlockingCertain{Key: def})
	dir := t.TempDir()
	dd, err := OpenDurable(dir, schema, opts, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDurable(dir, schema, opts, nil); !errors.Is(err, ErrStateLocked) {
		t.Fatalf("second open: want ErrStateLocked, got %v", err)
	}
	if err := dd.Close(); err != nil {
		t.Fatal(err)
	}
	dd2, err := OpenDurable(dir, schema, opts, nil)
	if err != nil {
		t.Fatalf("open after close: %v", err)
	}
	if err := dd2.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestSchemaMismatchRejected: a state dir built under one schema must
// refuse to open under another, identifying both schemas.
func TestSchemaMismatchRejected(t *testing.T) {
	schema, ops := genSchedule(t, 2, 4)
	def, err := keys.ParseDef("name:3+job:2", schema)
	if err != nil {
		t.Fatal(err)
	}
	opts := testOptions(ssr.BlockingCertain{Key: def})
	dir := t.TempDir()
	dd, err := OpenDurable(dir, schema, opts, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range ops {
		if err := applyOp(dd, op); err != nil {
			t.Fatal(err)
		}
	}
	if err := dd.Close(); err != nil {
		t.Fatal(err)
	}
	other := append(append([]string(nil), schema...), "extra")
	wideOpts := testOptions(ssr.BlockingCertain{Key: def})
	wideOpts.Compare = append(wideOpts.Compare, wideOpts.Compare[0])
	if _, err := OpenDurable(dir, other, wideOpts, nil); !errors.Is(err, ErrSchemaMismatch) {
		t.Fatalf("want ErrSchemaMismatch, got %v", err)
	}
	// Same arity, different attribute name: still a mismatch.
	renamed := append([]string(nil), schema...)
	renamed[len(renamed)-1] = "renamed"
	if _, err := OpenDurable(dir, renamed, opts, nil); !errors.Is(err, ErrSchemaMismatch) {
		t.Fatalf("renamed attr: want ErrSchemaMismatch, got %v", err)
	}
}
