package wal

import (
	"fmt"
	"hash/crc32"

	"probdedup/internal/core"
	"probdedup/internal/decision"
	"probdedup/internal/ssr"
	"probdedup/internal/verify"
)

// snapMagic versions the snapshot format; a future layout change gets
// a new magic and a fallback reader.
const snapMagic = "PDSNAPv1"

// EncodeSnapshot serializes a detector state as one self-verifying
// binary snapshot: magic, the operation sequence number the state
// covers, the state body, and a trailing CRC32 over everything
// preceding it. The format is compact and bit-exact — probabilities
// and similarities are stored as raw float64 bits, so a decoded
// snapshot restores the exact state it was taken from.
func EncodeSnapshot(st *core.DetectorState, seq uint64) []byte {
	e := &encoder{buf: make([]byte, 0, 1024)}
	e.buf = append(e.buf, snapMagic...)
	e.u64(seq)
	e.uvarint(uint64(len(st.Schema)))
	for _, s := range st.Schema {
		e.str(s)
	}
	e.uvarint(uint64(len(st.Residents)))
	for _, x := range st.Residents {
		e.xtuple(x)
	}
	e.uvarint(uint64(len(st.Pairs)))
	for _, m := range st.Pairs {
		e.str(m.Pair.A)
		e.str(m.Pair.B)
		e.f64(m.Sim)
		e.u8(byte(m.Class))
	}
	e.uvarint(uint64(st.Compared))
	e.uvarint(uint64(st.Dropped))
	if st.Epoch == nil {
		e.u8(0)
	} else {
		e.u8(1)
		ep := st.Epoch
		e.uvarint(uint64(ep.Epoch))
		e.uvarint(uint64(ep.K))
		e.uvarint(uint64(ep.Drifted))
		e.uvarint(uint64(len(ep.Centroids)))
		for _, c := range ep.Centroids {
			e.f64(c)
		}
		e.uvarint(uint64(len(ep.EmbeddingKeys)))
		for _, k := range ep.EmbeddingKeys {
			e.str(k)
		}
		e.uvarint(uint64(len(ep.Arrivals)))
		for _, id := range ep.Arrivals {
			e.str(id)
		}
		e.uvarint(uint64(len(ep.Labels)))
		for _, l := range ep.Labels {
			e.uvarint(uint64(l))
		}
	}
	e.u32(crc32.ChecksumIEEE(e.buf))
	return e.buf
}

// DecodeSnapshot parses and verifies a binary snapshot, returning the
// detector state and the operation sequence number it covers. The
// trailing CRC is checked before any field is interpreted, so a
// corrupted snapshot fails loudly instead of restoring silently wrong
// state; structural validation here plus the semantic validation in
// core.RestoreDetector means arbitrary input errors out, never panics.
func DecodeSnapshot(data []byte) (*core.DetectorState, uint64, error) {
	if len(data) < len(snapMagic)+8+4 {
		return nil, 0, fmt.Errorf("wal: snapshot too short (%d bytes)", len(data))
	}
	if string(data[:len(snapMagic)]) != snapMagic {
		return nil, 0, fmt.Errorf("wal: snapshot has bad magic %q", data[:len(snapMagic)])
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	d := &decoder{buf: data, off: len(data) - 4}
	if got, want := d.u32(), crc32.ChecksumIEEE(body); got != want {
		return nil, 0, fmt.Errorf("wal: snapshot CRC mismatch (got %08x, want %08x)", got, want)
	}
	_ = tail

	d = &decoder{buf: body, off: len(snapMagic)}
	seq := d.u64()
	st := &core.DetectorState{}
	nschema := d.count(1)
	for i := 0; i < nschema && d.err == nil; i++ {
		st.Schema = append(st.Schema, d.str())
	}
	nres := d.count(2) // minimal tuple: empty ID + zero alternatives
	nattrs := len(st.Schema)
	for i := 0; i < nres && d.err == nil; i++ {
		st.Residents = append(st.Residents, d.xtuple(nattrs))
	}
	npairs := d.count(11) // two 1-byte IDs + sim + class minimum
	for i := 0; i < npairs && d.err == nil; i++ {
		a, b := d.str(), d.str()
		sim := d.f64()
		class := d.u8()
		if class > byte(decision.M) {
			d.fail("unknown pair class %d", class)
			break
		}
		st.Pairs = append(st.Pairs, core.Match{
			Pair:  verify.Pair{A: a, B: b},
			Sim:   sim,
			Class: decision.Class(class),
		})
	}
	st.Compared = int(d.uvarint())
	st.Dropped = int(d.uvarint())
	if d.u8() == 1 {
		ep := &ssr.EpochState{
			Epoch:   int(d.uvarint()),
			K:       int(d.uvarint()),
			Drifted: int(d.uvarint()),
		}
		ncent := d.count(8)
		for i := 0; i < ncent && d.err == nil; i++ {
			ep.Centroids = append(ep.Centroids, d.f64())
		}
		nkeys := d.count(1)
		for i := 0; i < nkeys && d.err == nil; i++ {
			ep.EmbeddingKeys = append(ep.EmbeddingKeys, d.str())
		}
		narr := d.count(1)
		for i := 0; i < narr && d.err == nil; i++ {
			ep.Arrivals = append(ep.Arrivals, d.str())
		}
		nlab := d.count(1)
		for i := 0; i < nlab && d.err == nil; i++ {
			ep.Labels = append(ep.Labels, int(d.uvarint()))
		}
		st.Epoch = ep
	}
	if d.err != nil {
		return nil, 0, d.err
	}
	if d.off != len(body) {
		return nil, 0, fmt.Errorf("wal: snapshot has %d trailing bytes", len(body)-d.off)
	}
	return st, seq, nil
}
