package wal

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"probdedup/internal/keys"
	"probdedup/internal/ssr"
)

// fuzzSnapshotSeeds builds a few structurally valid snapshots (empty,
// exact-tier state, epoch-tier state with centroids) for the fuzz
// corpus, alongside the committed testdata/fuzz seeds.
func fuzzSnapshotSeeds(tb testing.TB) [][]byte {
	tb.Helper()
	var seeds [][]byte
	for _, n := range []int{0, 6, 12} {
		schema, ops := genSchedule(tb, int64(n), n)
		def, err := keys.ParseDef("name:3+job:2", schema)
		if err != nil {
			tb.Fatal(err)
		}
		var red ssr.Method = ssr.BlockingCertain{Key: def}
		if n == 12 {
			red = ssr.BlockingCluster{Key: def, K: 3, Seed: 1, MaxDrift: 0.5}
		}
		dir := tb.TempDir()
		dd, err := OpenDurable(dir, schema, testOptions(red), nil)
		if err != nil {
			tb.Fatal(err)
		}
		for _, op := range ops {
			if err := applyOp(dd, op); err != nil {
				tb.Fatal(err)
			}
		}
		seeds = append(seeds, EncodeSnapshot(dd.det.SnapshotState(), uint64(n)))
		if err := dd.Abort(); err != nil {
			tb.Fatal(err)
		}
	}
	return seeds
}

// TestWriteFuzzSeedCorpus regenerates the committed seed corpora under
// testdata/fuzz/ when PDEDUP_WRITE_FUZZ_CORPUS=1 is set. The committed
// files give CI's fuzz smoke real snapshots and logs to mutate instead
// of starting from empty input.
func TestWriteFuzzSeedCorpus(t *testing.T) {
	if os.Getenv("PDEDUP_WRITE_FUZZ_CORPUS") == "" {
		t.Skip("set PDEDUP_WRITE_FUZZ_CORPUS=1 to regenerate testdata/fuzz")
	}
	write := func(fuzzName string, seeds [][]byte) {
		dir := filepath.Join("testdata", "fuzz", fuzzName)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		for i, s := range seeds {
			body := fmt.Sprintf("go test fuzz v1\n[]byte(%s)\n", strconv.Quote(string(s)))
			if err := os.WriteFile(filepath.Join(dir, fmt.Sprintf("seed-%03d", i)), []byte(body), 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
	snaps := fuzzSnapshotSeeds(t)
	big := snaps[len(snaps)-1]
	flipped := append([]byte(nil), big...)
	flipped[len(flipped)/3] ^= 0x20
	write("FuzzDecodeSnapshot", append(snaps, big[:len(big)/2], flipped))
	logs := fuzzWALSeeds(t)
	corrupt := append([]byte(nil), logs[0]...)
	corrupt[frameHeader+4] ^= 0x01
	write("FuzzReplayWAL", append(logs, corrupt))
}

// FuzzDecodeSnapshot: arbitrary bytes either decode to a state whose
// re-encoding is a fixed point (encode∘decode idempotent), or fail with
// an error — never panic, never over-allocate on hostile counts.
func FuzzDecodeSnapshot(f *testing.F) {
	for _, s := range fuzzSnapshotSeeds(f) {
		f.Add(s)
		// Mutated variants steer the fuzzer into the interior of the
		// format rather than bouncing off the magic/CRC checks.
		if len(s) > 16 {
			trunc := s[:len(s)/2]
			f.Add(append([]byte(nil), trunc...))
			flip := append([]byte(nil), s...)
			flip[len(flip)/2] ^= 0x10
			f.Add(flip)
		}
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		st, seq, err := DecodeSnapshot(data)
		if err != nil {
			return
		}
		enc := EncodeSnapshot(st, seq)
		st2, seq2, err := DecodeSnapshot(enc)
		if err != nil {
			t.Fatalf("re-decode of re-encoded snapshot failed: %v", err)
		}
		if seq2 != seq {
			t.Fatalf("seq drifted through re-encode: %d -> %d", seq, seq2)
		}
		if enc2 := EncodeSnapshot(st2, seq2); !bytes.Equal(enc, enc2) {
			t.Fatalf("encode∘decode is not a fixed point:\n%x\nvs\n%x", enc, enc2)
		}
	})
}

// fuzzWALSeeds encodes a few real operation logs for the WAL fuzzer.
func fuzzWALSeeds(tb testing.TB) [][]byte {
	tb.Helper()
	_, ops := genSchedule(tb, 5, 10)
	var buf []byte
	seq := uint64(0)
	for _, op := range ops {
		seq++
		rec := &Record{Seq: seq, Op: op.op, Tuple: op.x, Batch: op.xs, ID: op.id}
		b, err := appendRecord(nil, rec)
		if err != nil {
			tb.Fatal(err)
		}
		buf = append(buf, b...)
	}
	torn := append([]byte(nil), buf...)
	return [][]byte{buf, torn[:len(torn)-5]}
}

// FuzzReplayWAL: arbitrary bytes replay to a record prefix (with a
// possibly torn tail) or fail with an offset-tagged corruption error —
// never panic, never over-allocate. Replayed records re-encode and
// re-replay to the identical sequence.
func FuzzReplayWAL(f *testing.F) {
	for _, s := range fuzzWALSeeds(f) {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		const nattrs = 3
		var recs []*Record
		tail, err := ReplayLog(data, nattrs, 0, func(rec *Record) error {
			recs = append(recs, rec)
			return nil
		})
		if err != nil {
			var ce *CorruptRecordError
			if !errors.As(err, &ce) {
				t.Fatalf("replay error is not a CorruptRecordError: %T %v", err, err)
			}
			if ce.Offset < 0 || ce.Offset > int64(len(data)) {
				t.Fatalf("corruption offset %d outside [0, %d]", ce.Offset, len(data))
			}
			return
		}
		if tail < 0 || tail > int64(len(data)) {
			t.Fatalf("tail %d outside [0, %d]", tail, len(data))
		}
		// Round trip: re-encode the accepted records and replay again.
		var buf []byte
		for _, rec := range recs {
			b, err := appendRecord(nil, rec)
			if err != nil {
				t.Fatalf("re-encode of accepted record: %v", err)
			}
			buf = append(buf, b...)
		}
		var recs2 []*Record
		tail2, err := ReplayLog(buf, nattrs, 0, func(rec *Record) error {
			recs2 = append(recs2, rec)
			return nil
		})
		if err != nil || tail2 != int64(len(buf)) {
			t.Fatalf("re-replay failed: tail=%d err=%v", tail2, err)
		}
		if len(recs2) != len(recs) {
			t.Fatalf("record count drifted: %d -> %d", len(recs), len(recs2))
		}
		for i := range recs {
			a, _ := appendRecord(nil, recs[i])
			b, _ := appendRecord(nil, recs2[i])
			if !bytes.Equal(a, b) {
				t.Fatalf("record %d drifted through re-encode", i)
			}
		}
	})
}
