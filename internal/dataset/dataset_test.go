package dataset

import (
	"math/rand"
	"testing"
)

func TestGenerateValidAndDeterministic(t *testing.T) {
	cfg := DefaultConfig(100, 42)
	d1 := Generate(cfg)
	d2 := Generate(cfg)

	for _, r := range []interface{ Validate() error }{d1.A, d1.B, d1.XA, d1.XB} {
		if err := r.Validate(); err != nil {
			t.Fatal(err)
		}
	}
	// Determinism: same seed, identical rendering.
	if d1.A.String() != d2.A.String() || d1.XB.String() != d2.XB.String() {
		t.Fatal("generation must be deterministic for a fixed seed")
	}
	if len(d1.Truth) != len(d2.Truth) {
		t.Fatal("truth differs across runs")
	}
	// Different seed, different data.
	d3 := Generate(DefaultConfig(100, 43))
	if d1.A.String() == d3.A.String() {
		t.Fatal("different seeds must differ")
	}
}

func TestGenerateShape(t *testing.T) {
	cfg := DefaultConfig(200, 7)
	d := Generate(cfg)
	if len(d.A.Tuples) < 200 {
		t.Fatalf("source A has %d tuples, want ≥ 200", len(d.A.Tuples))
	}
	// With DupRate 0.5 source B should hold a substantial share.
	if len(d.B.Tuples) < 50 || len(d.B.Tuples) > 200 {
		t.Fatalf("source B has %d tuples", len(d.B.Tuples))
	}
	if len(d.Truth) == 0 {
		t.Fatal("no ground-truth duplicates generated")
	}
	// Parallel relations have identical IDs.
	if len(d.A.Tuples) != len(d.XA.Tuples) {
		t.Fatal("A and XA must be parallel")
	}
	for i := range d.A.Tuples {
		if d.A.Tuples[i].ID != d.XA.Tuples[i].ID {
			t.Fatal("ID mismatch between A and XA")
		}
	}
	// Union keeps every tuple.
	u := d.Union()
	if len(u.Tuples) != len(d.XA.Tuples)+len(d.XB.Tuples) {
		t.Fatal("union size wrong")
	}
	if err := u.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestTruthPairsExistInRelations(t *testing.T) {
	d := Generate(DefaultConfig(100, 3))
	ids := map[string]bool{}
	for _, tu := range append(d.A.Tuples, d.B.Tuples...) {
		ids[tu.ID] = true
	}
	for p := range d.Truth {
		if !ids[p.A] || !ids[p.B] {
			t.Fatalf("truth pair %v references unknown tuples", p)
		}
	}
}

func TestUncertaintyKnobs(t *testing.T) {
	// Zero uncertainty produces certain relations.
	cfg := Config{Entities: 50, DupRate: 0.5, TypoRate: 0.5, Seed: 9}
	d := Generate(cfg)
	for _, tu := range d.A.Tuples {
		if tu.P != 1 {
			t.Fatalf("MaybeRate=0 but p(t)=%v", tu.P)
		}
		for _, a := range tu.Attrs {
			if !a.IsCertain() {
				t.Fatalf("UncertainRate=0 but dist=%v", a)
			}
		}
	}
	// High uncertainty produces uncertain attributes somewhere.
	cfg2 := DefaultConfig(50, 9)
	cfg2.UncertainRate = 1.0
	d2 := Generate(cfg2)
	foundUncertain := false
	for _, tu := range d2.A.Tuples {
		for _, a := range tu.Attrs {
			if a.Len() > 1 {
				foundUncertain = true
			}
		}
	}
	if !foundUncertain {
		t.Fatal("UncertainRate=1 produced no uncertain attributes")
	}
}

func TestTypoAlwaysChanges(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	words := []string{"machinist", "Tim", "ab", "x", "", "aa", "Hamburg"}
	for _, w := range words {
		for i := 0; i < 200; i++ {
			if got := Typo(rng, w); got == w && len(w) > 1 {
				t.Fatalf("Typo(%q) returned the input unchanged", w)
			}
		}
	}
}

func TestXTupleAlternativesGenerated(t *testing.T) {
	cfg := DefaultConfig(100, 11)
	cfg.AltRate = 1.0
	d := Generate(cfg)
	multi := 0
	for _, x := range d.XA.Tuples {
		if len(x.Alts) > 1 {
			multi++
		}
	}
	if multi == 0 {
		t.Fatal("AltRate=1 produced no multi-alternative x-tuples")
	}
}
