// Package dataset generates synthetic probabilistic person datasets with
// ground truth, the evaluation substrate for the paper's verification step
// (Sec. III-E). The paper reports no dataset of its own, so the generator
// mimics the paper's running scenario: two autonomous probabilistic sources
// (e.g. catalogs produced by different instruments) that overlap in the
// real-world entities they describe.
//
// Generation pipeline per source tuple:
//
//  1. draw a real-world entity (name, job, city from seed lists),
//  2. corrupt attribute values with typo noise (edit operations) at the
//     configured error rate,
//  3. inject attribute-level uncertainty: with the configured probability
//     an attribute value becomes a small distribution containing the true
//     (or corrupted) value plus plausible wrong alternatives, with
//     probability mass drawn from the rng; optionally some mass goes to ⊥,
//  4. inject tuple-level uncertainty: p(t) < 1 for a fraction of tuples —
//     which duplicate detection must ignore,
//  5. for x-relations, wrap correlated attribute combinations into
//     alternatives (e.g. {(Tim, mechanic), (Jim, baker)}).
//
// Every randomized step uses an explicit *rand.Rand for reproducibility.
package dataset

import (
	"fmt"
	"math/rand"

	"probdedup/internal/pdb"
	"probdedup/internal/verify"
)

// Config controls generation.
type Config struct {
	// Entities is the number of distinct real-world entities.
	Entities int
	// DupRate is the fraction of entities represented in BOTH sources
	// (cross-source duplicates).
	DupRate float64
	// IntraDupRate is the fraction of entities with a second representation
	// inside the same source.
	IntraDupRate float64
	// TypoRate is the per-attribute probability of corrupting the value of
	// a duplicate representation with edit noise.
	TypoRate float64
	// UncertainRate is the per-attribute probability of replacing the value
	// with a small distribution (uncertainty injection).
	UncertainRate float64
	// NullRate is the per-attribute probability of moving some mass to ⊥.
	NullRate float64
	// MaybeRate is the fraction of tuples with p(t) < 1.
	MaybeRate float64
	// AltRate is, for x-relations, the probability that a tuple gets a
	// second correlated alternative.
	AltRate float64
	// CorrelatedNulls makes missingness an *entity-level* property: with
	// probability NullRate an entity's attribute does not exist in the real
	// world, so every representation renders it as certain ⊥ (the paper's
	// reading of non-existence). When false, ⊥ mass is injected
	// independently per representation (measurement-style missingness).
	CorrelatedNulls bool
	// Seed drives all randomness.
	Seed int64
}

// DefaultConfig returns a medium-difficulty configuration.
func DefaultConfig(entities int, seed int64) Config {
	return Config{
		Entities:      entities,
		DupRate:       0.5,
		IntraDupRate:  0.1,
		TypoRate:      0.3,
		UncertainRate: 0.4,
		NullRate:      0.1,
		MaybeRate:     0.3,
		AltRate:       0.4,
		Seed:          seed,
	}
}

// Dataset is a generated two-source corpus with ground truth.
type Dataset struct {
	// A and B are the two probabilistic sources.
	A, B *pdb.Relation
	// XA and XB are x-relation renderings of the same entities (with
	// correlated alternatives).
	XA, XB *pdb.XRelation
	// Truth contains every pair of tuple IDs representing the same entity
	// (intra- and inter-source).
	Truth verify.PairSet
}

// Union returns XA ∪ XB (the relation duplicate detection runs on).
func (d *Dataset) Union() *pdb.XRelation {
	u, err := d.XA.Union("U", d.XB)
	if err != nil {
		panic(err) // schemas are identical by construction
	}
	return u
}

var firstNames = []string{
	"Tim", "Tom", "Jim", "John", "Johan", "Jon", "Sean", "Kim", "Timothy",
	"Anna", "Anne", "Hanna", "Maria", "Marie", "Peter", "Petra", "Paul",
	"Paula", "Robert", "Rupert", "Laura", "Lara", "Nora", "Norbert", "Fabian",
	"Fiona", "Maurice", "Morris", "Ander", "Andre", "Greta", "Gerda",
}

var jobs = []string{
	"machinist", "mechanic", "mechanist", "baker", "confectioner",
	"confectionist", "pilot", "pianist", "musician", "muralist", "engineer",
	"teacher", "doctor", "nurse", "astronomer", "astrologer", "carpenter",
	"gardener", "plumber", "painter", "printer", "writer", "waiter",
}

var cities = []string{
	"Hamburg", "Homburg", "Enschede", "Eindhoven", "Berlin", "Bern",
	"Munich", "Muenster", "Twente", "Trente", "Bremen", "Dresden",
	"Leiden", "Leipzig", "Utrecht", "Ulm",
}

// Entity is one real-world person.
type Entity struct {
	Name, Job, City string
	// Missing marks attributes that do not exist for this entity in the
	// real world (only used with Config.CorrelatedNulls).
	Missing [3]bool
}

// Schema is the attribute schema of generated relations.
var Schema = []string{"name", "job", "city"}

// Generate builds a dataset for the configuration.
func Generate(cfg Config) *Dataset {
	rng := rand.New(rand.NewSource(cfg.Seed))
	entities := make([]Entity, cfg.Entities)
	for i := range entities {
		entities[i] = Entity{
			Name: firstNames[rng.Intn(len(firstNames))],
			Job:  jobs[rng.Intn(len(jobs))],
			City: cities[rng.Intn(len(cities))],
		}
		if cfg.CorrelatedNulls {
			// Non-existence is a fact about the entity: job and city may be
			// missing in the real world (never the name).
			for attr := 1; attr < 3; attr++ {
				entities[i].Missing[attr] = rng.Float64() < cfg.NullRate
			}
		}
	}

	d := &Dataset{
		A:     pdb.NewRelation("A", Schema...),
		B:     pdb.NewRelation("B", Schema...),
		XA:    pdb.NewXRelation("XA", Schema...),
		XB:    pdb.NewXRelation("XB", Schema...),
		Truth: verify.PairSet{},
	}

	var idSeq int
	nextID := func(src string) string {
		idSeq++
		return fmt.Sprintf("%s%04d", src, idSeq)
	}

	for _, e := range entities {
		// IDs of all representations of this entity, for truth pairs.
		var reps []string
		add := func(src string, r *pdb.Relation, xr *pdb.XRelation, corrupted bool) {
			id := nextID(src)
			tu, xt := render(rng, cfg, id, e, corrupted)
			r.Append(tu)
			xr.Append(xt)
			reps = append(reps, id)
		}
		// Source A always holds the entity; the first representation of an
		// entity is clean (its duplicates carry the noise).
		add("a", d.A, d.XA, false)
		if rng.Float64() < cfg.IntraDupRate {
			add("a", d.A, d.XA, true)
		}
		if rng.Float64() < cfg.DupRate {
			add("b", d.B, d.XB, true)
			if rng.Float64() < cfg.IntraDupRate {
				add("b", d.B, d.XB, true)
			}
		}
		for i := 0; i < len(reps); i++ {
			for j := i + 1; j < len(reps); j++ {
				d.Truth.Add(reps[i], reps[j])
			}
		}
	}
	return d
}

// render produces the dependency-free and x-tuple representation of one
// entity occurrence.
func render(rng *rand.Rand, cfg Config, id string, e Entity, corrupted bool) (*pdb.Tuple, *pdb.XTuple) {
	vals := []string{e.Name, e.Job, e.City}
	if corrupted {
		for i, v := range vals {
			if rng.Float64() < cfg.TypoRate {
				vals[i] = Typo(rng, v)
			}
		}
	}
	attrs := make([]pdb.Dist, len(vals))
	for i, v := range vals {
		if cfg.CorrelatedNulls && e.Missing[i] {
			attrs[i] = pdb.CertainNull()
			continue
		}
		attrs[i] = uncertainDist(rng, cfg, v, domainFor(i))
	}
	p := 1.0
	if rng.Float64() < cfg.MaybeRate {
		p = 0.3 + 0.7*rng.Float64()
	}
	tu := pdb.NewTuple(id, p, attrs...)

	// X-tuple: primary alternative plus, sometimes, a correlated second
	// alternative built from fresh corruptions.
	alts := []pdb.Alt{{Values: attrs, P: p}}
	if rng.Float64() < cfg.AltRate {
		alt2 := make([]pdb.Dist, len(vals))
		for i, v := range vals {
			if cfg.CorrelatedNulls && e.Missing[i] {
				alt2[i] = pdb.CertainNull()
				continue
			}
			w := v
			if rng.Float64() < 0.5 {
				w = Typo(rng, v)
			}
			alt2[i] = uncertainDist(rng, cfg, w, domainFor(i))
		}
		split := 0.3 + 0.4*rng.Float64()
		alts = []pdb.Alt{
			{Values: attrs, P: p * split},
			{Values: alt2, P: p * (1 - split)},
		}
	}
	xt := &pdb.XTuple{ID: id, Alts: alts}
	return tu, xt
}

func domainFor(attr int) []string {
	switch attr {
	case 0:
		return firstNames
	case 1:
		return jobs
	default:
		return cities
	}
}

// uncertainDist wraps a value into an attribute distribution according to
// the uncertainty configuration.
func uncertainDist(rng *rand.Rand, cfg Config, v string, domain []string) pdb.Dist {
	nullMass := 0.0
	if rng.Float64() < cfg.NullRate {
		nullMass = 0.05 + 0.25*rng.Float64()
	}
	if rng.Float64() >= cfg.UncertainRate {
		if nullMass > 0 {
			return pdb.MustDist(pdb.Alternative{Value: pdb.V(v), P: 1 - nullMass})
		}
		return pdb.Certain(v)
	}
	// 2–3 alternatives: the true value gets the lion's share.
	n := 2 + rng.Intn(2)
	remaining := 1 - nullMass
	main := remaining * (0.55 + 0.3*rng.Float64())
	alts := []pdb.Alternative{{Value: pdb.V(v), P: main}}
	remaining -= main
	for i := 1; i < n && remaining > 1e-6; i++ {
		other := domain[rng.Intn(len(domain))]
		if other == v {
			other = Typo(rng, v)
		}
		p := remaining
		if i < n-1 {
			p = remaining * rng.Float64()
		}
		remaining -= p
		if p > 1e-6 {
			alts = append(alts, pdb.Alternative{Value: pdb.V(other), P: p})
		}
	}
	return pdb.MustDist(alts...)
}

// Typo applies one random edit operation (substitute, insert, delete,
// transpose) to s, never returning s unchanged for len(s) > 1.
func Typo(rng *rand.Rand, s string) string {
	r := []rune(s)
	if len(r) == 0 {
		return "x"
	}
	switch rng.Intn(4) {
	case 0: // substitute
		i := rng.Intn(len(r))
		old := r[i]
		for r[i] == old {
			r[i] = rune('a' + rng.Intn(26))
		}
		return string(r)
	case 1: // insert
		i := rng.Intn(len(r) + 1)
		c := rune('a' + rng.Intn(26))
		return string(r[:i]) + string(c) + string(r[i:])
	case 2: // delete
		if len(r) == 1 {
			return string(r) + "x"
		}
		i := rng.Intn(len(r))
		return string(r[:i]) + string(r[i+1:])
	default: // transpose
		if len(r) == 1 {
			return string(r) + "x"
		}
		i := rng.Intn(len(r) - 1)
		if r[i] == r[i+1] {
			// Transposing equal runes is a no-op; substitute instead.
			old := r[i]
			for r[i] == old {
				r[i] = rune('a' + rng.Intn(26))
			}
			return string(r)
		}
		r[i], r[i+1] = r[i+1], r[i]
		return string(r)
	}
}
