package decision

import "probdedup/internal/avm"

// This file is the decision-model side of the candidate pre-filter's
// soundness chain (see internal/ssr): a model that can bound its own
// similarity from per-attribute upper bounds lets the filter prove that
// a pair cannot leave class U without computing a single comparison
// vector. Models built from opaque closures (SimpleModel with an
// arbitrary Combine) cannot be introspected, so the engine prefers the
// explicit WeightedSumModel whenever the configuration is a weighted
// sum.

// UpperBounded is implemented by models that can bound φ over the box
// [0,hi₁]×…×[0,hiₙ]: SimilarityUpperBound must return a value ≥
// Similarity(c) for every comparison vector c with 0 ≤ cᵢ ≤ hiᵢ. The
// candidate pre-filter requires this to translate per-attribute value
// bounds into a per-cell similarity bound.
type UpperBounded interface {
	Model
	// SimilarityUpperBound returns an upper bound of Similarity over
	// all comparison vectors dominated by hi.
	SimilarityUpperBound(hi []float64) float64
}

// NonMatchBounded is implemented by models that expose a similarity
// level below which every pair classifies as U. Derivations that
// aggregate per-cell classes (decision based, expected matching
// result) need it to conclude that an x-tuple pair whose every cell is
// a certain non-match derives similarity 0.
type NonMatchBounded interface {
	// NonMatchBelow returns a threshold t such that Classify(sim) == U
	// for every sim < t.
	NonMatchBelow() float64
}

// NonMatchBelow implements NonMatchBounded: Thresholds classify U
// exactly below Tλ.
func (s SimpleModel) NonMatchBelow() float64 { return s.T.Lambda }

// WeightedSumModel is the weighted-sum decision model in explicit form:
// φ(c⃗) = Σ wᵢ·cᵢ followed by threshold classification. It is
// behaviorally identical to SimpleModel{Phi: WeightedSum(w...), T: t}
// — same summation order, same ArityError panic on a length mismatch —
// but, unlike a model built from an opaque closure, it exposes its
// structure: arity validation reads Arity() and the candidate
// pre-filter obtains sound similarity bounds via SimilarityUpperBound
// and NonMatchBelow. The detection engine's default alternative-tuple
// model is a WeightedSumModel over equal weights.
type WeightedSumModel struct {
	// Weights are the per-attribute weights wᵢ (normally summing to 1).
	Weights []float64
	// T are the classification thresholds.
	T Thresholds
}

// EqualWeights returns the weight vector (1/n, …, 1/n) of n attributes.
func EqualWeights(n int) []float64 {
	ws := make([]float64, n)
	if n == 0 {
		return ws
	}
	w := 1.0 / float64(n)
	for i := range ws {
		ws[i] = w
	}
	return ws
}

// Similarity implements Model with the exact summation order of
// WeightedSum, so switching between the two representations is
// bit-identical.
func (m WeightedSumModel) Similarity(c avm.Vector) float64 {
	if len(c) != len(m.Weights) {
		panic(&ArityError{Want: len(m.Weights), Got: len(c), What: "weighted sum"})
	}
	s := 0.0
	for i, w := range m.Weights {
		s += w * c[i]
	}
	return s
}

// Classify implements Model.
func (m WeightedSumModel) Classify(sim float64) Class { return m.T.Classify(sim) }

// Arity returns the number of attributes the model is bound to.
func (m WeightedSumModel) Arity() int { return len(m.Weights) }

// SimilarityUpperBound implements UpperBounded: with all cᵢ ≥ 0 the sum
// is maximized on the box by taking cᵢ = hiᵢ where wᵢ > 0 and cᵢ = 0
// where wᵢ < 0, giving Σ_{wᵢ>0} wᵢ·hiᵢ.
func (m WeightedSumModel) SimilarityUpperBound(hi []float64) float64 {
	if len(hi) != len(m.Weights) {
		panic(&ArityError{Want: len(m.Weights), Got: len(hi), What: "weighted sum bound"})
	}
	s := 0.0
	for i, w := range m.Weights {
		if w > 0 {
			s += w * hi[i]
		}
	}
	return s
}

// NonMatchBelow implements NonMatchBounded.
func (m WeightedSumModel) NonMatchBelow() float64 { return m.T.Lambda }
