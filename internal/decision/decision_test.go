package decision

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"probdedup/internal/avm"
)

func almost(a, b float64) bool { return math.Abs(a-b) <= 1e-9 }

func TestPaperCombinationExample(t *testing.T) {
	// φ(c⃗) = 0.8·c1 + 0.2·c2 on c⃗=(0.9, 0.59) gives 0.838 (Sec. IV-A).
	phi := WeightedSum(0.8, 0.2)
	if got := phi(avm.Vector{0.9, 0.59}); !almost(got, 0.838) {
		t.Errorf("φ = %v, want 0.838", got)
	}
	// With the unrounded job similarity 53/90 the exact value is 0.8·0.9 +
	// 0.2·(53/90).
	exact := 0.8*0.9 + 0.2*(53.0/90)
	if got := phi(avm.Vector{0.9, 53.0 / 90}); !almost(got, exact) {
		t.Errorf("φ exact = %v, want %v", got, exact)
	}
}

func TestCombineFunctions(t *testing.T) {
	c := avm.Vector{0.2, 0.8, 0.5}
	if got := Average(c); !almost(got, 0.5) {
		t.Errorf("Average = %v", got)
	}
	if got := Minimum(c); !almost(got, 0.2) {
		t.Errorf("Minimum = %v", got)
	}
	if got := Maximum(c); !almost(got, 0.8) {
		t.Errorf("Maximum = %v", got)
	}
	if got := Product(c); !almost(got, 0.08) {
		t.Errorf("Product = %v", got)
	}
	// Empty vectors.
	for name, f := range map[string]Combine{"avg": Average, "min": Minimum, "max": Maximum, "prod": Product} {
		if got := f(nil); got != 0 {
			t.Errorf("%s(nil) = %v, want 0", name, got)
		}
	}
	// A weight/vector arity mismatch is a configuration bug and must
	// fail loudly instead of silently dropping weights or attributes.
	func() {
		defer func() {
			if r := recover(); r == nil {
				t.Error("WeightedSum on a short vector must panic")
			} else if _, ok := r.(*ArityError); !ok {
				t.Errorf("panic value %T, want *ArityError", r)
			}
		}()
		WeightedSum(1, 1)(avm.Vector{0.5})
	}()
}

func TestValidateArity(t *testing.T) {
	ws := SimpleModel{Phi: WeightedSum(0.8, 0.2), T: Thresholds{Lambda: 0.4, Mu: 0.7}}
	if err := ValidateArity(ws, 2); err != nil {
		t.Fatalf("matching arity: %v", err)
	}
	err := ValidateArity(ws, 3)
	if err == nil {
		t.Fatal("3 attributes against 2 weights must fail")
	}
	var ae *ArityError
	if !errors.As(err, &ae) || ae.Want != 2 || ae.Got != 3 {
		t.Fatalf("error %v", err)
	}
	// Arity-agnostic combinations validate at any arity.
	for _, phi := range []Combine{Average, Minimum, Maximum, Product} {
		if err := ValidateArity(SimpleModel{Phi: phi, T: Thresholds{}}, 5); err != nil {
			t.Fatalf("arity-agnostic: %v", err)
		}
	}
	// Models exposing Arity are checked without probing.
	fs, err := NewFellegiSunter([]float64{0.9, 0.9}, []float64{0.1, 0.1}, Thresholds{})
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateArity(fs, 2); err != nil {
		t.Fatalf("FS matching: %v", err)
	}
	if err := ValidateArity(fs, 4); err == nil {
		t.Fatal("FS arity mismatch must fail")
	}
}

func TestThresholdsClassify(t *testing.T) {
	th := Thresholds{Lambda: 0.4, Mu: 0.7}
	cases := []struct {
		sim  float64
		want Class
	}{
		{0.39, U}, {0.4, P}, {0.5, P}, {0.7, P}, {0.71, M},
	}
	for _, c := range cases {
		if got := th.Classify(c.sim); got != c.want {
			t.Errorf("Classify(%v) = %v, want %v", c.sim, got, c.want)
		}
	}
	// Degenerate two-class model.
	two := Thresholds{Lambda: 0.5, Mu: 0.5}
	if two.Classify(0.6) != M || two.Classify(0.4) != U || two.Classify(0.5) != P {
		t.Error("degenerate thresholds broken")
	}
	if err := (Thresholds{Lambda: 0.8, Mu: 0.2}).Validate(); err == nil {
		t.Error("want Tλ>Tμ error")
	}
	if err := (Thresholds{Lambda: math.NaN(), Mu: 1}).Validate(); err == nil {
		t.Error("want NaN error")
	}
}

func TestClassStringAndScore(t *testing.T) {
	if M.String() != "m" || P.String() != "p" || U.String() != "u" {
		t.Error("class strings wrong")
	}
	// The η encoding of Sec. IV-B: m=2, p=1, u=0.
	if M.Score() != 2 || P.Score() != 1 || U.Score() != 0 {
		t.Error("class scores wrong")
	}
}

func TestSimpleModel(t *testing.T) {
	m := SimpleModel{Phi: WeightedSum(0.8, 0.2), T: Thresholds{Lambda: 0.4, Mu: 0.7}}
	if got := Decide(m, avm.Vector{0.9, 0.59}); got != M {
		t.Errorf("0.838 must be a match, got %v", got)
	}
	if got := Decide(m, avm.Vector{0.1, 0.1}); got != U {
		t.Errorf("low sim must be U, got %v", got)
	}
	if got := Decide(m, avm.Vector{0.6, 0.5}); got != P {
		t.Errorf("mid sim must be P, got %v", got)
	}
}

func TestRuleFiresAndModel(t *testing.T) {
	// Fig. 1: IF name > θ1 AND job > θ2 THEN DUPLICATES with certainty 0.8.
	rule := Rule{
		Conditions: []Condition{{Attr: 0, Threshold: 0.8}, {Attr: 1, Threshold: 0.5}},
		Certainty:  0.8,
	}
	if !rule.Fires(avm.Vector{0.9, 0.59}) {
		t.Error("rule must fire on (0.9, 0.59)")
	}
	if rule.Fires(avm.Vector{0.8, 0.59}) {
		t.Error("condition is strict >")
	}
	if rule.Fires(avm.Vector{0.9}) {
		t.Error("short vector must not fire")
	}
	model := RuleModel{Rules: []Rule{rule}, T: Thresholds{Lambda: 0.7, Mu: 0.7}}
	if got := model.Similarity(avm.Vector{0.9, 0.59}); !almost(got, 0.8) {
		t.Errorf("certainty = %v", got)
	}
	if got := Decide(model, avm.Vector{0.9, 0.59}); got != M {
		t.Errorf("pair must be duplicate, got %v", got)
	}
	if got := Decide(model, avm.Vector{0.1, 0.1}); got != U {
		t.Errorf("no rule fires → certainty 0 → U, got %v", got)
	}
	// Maximum certainty wins among firing rules.
	model.Rules = append(model.Rules, Rule{
		Conditions: []Condition{{Attr: 0, Threshold: 0.5}},
		Certainty:  0.9,
	})
	if got := model.Similarity(avm.Vector{0.9, 0.59}); !almost(got, 0.9) {
		t.Errorf("max certainty = %v", got)
	}
}

func TestParseRule(t *testing.T) {
	schema := []string{"name", "job"}
	r, err := ParseRule("IF name > 0.8 AND job > 0.7 THEN DUPLICATES WITH CERTAINTY=0.8", schema)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Conditions) != 2 || !almost(r.Certainty, 0.8) {
		t.Fatalf("parsed %+v", r)
	}
	if r.Conditions[0].Attr != 0 || !almost(r.Conditions[0].Threshold, 0.8) {
		t.Fatalf("cond0 %+v", r.Conditions[0])
	}
	if r.Conditions[1].Attr != 1 || !almost(r.Conditions[1].Threshold, 0.7) {
		t.Fatalf("cond1 %+v", r.Conditions[1])
	}
	// Paper's bare form without WITH.
	if _, err := ParseRule("IF job > 0.5 THEN DUPLICATES CERTAINTY=0.6", schema); err != nil {
		t.Fatal(err)
	}
	// Case-insensitive keywords and attribute names.
	if _, err := ParseRule("if NAME > 0.1 then duplicates certainty=0.5", schema); err != nil {
		t.Fatal(err)
	}
}

func TestParseRuleErrors(t *testing.T) {
	schema := []string{"name", "job"}
	bad := []string{
		"",
		"name > 0.8 THEN CERTAINTY=0.5",
		"IF name > 0.8 CERTAINTY=0.5",
		"IF nothere > 0.8 THEN CERTAINTY=0.5",
		"IF name < 0.8 THEN CERTAINTY=0.5",
		"IF name > abc THEN CERTAINTY=0.5",
		"IF name > 0.8 THEN DUPLICATES",
		"IF name > 0.8 THEN CERTAINTY=abc",
		"IF name > 0.8 THEN CERTAINTY=1.5",
		"IF THEN CERTAINTY=0.5",
		"IF name > THEN CERTAINTY=0.5",
	}
	for _, src := range bad {
		if _, err := ParseRule(src, schema); err == nil {
			t.Errorf("ParseRule(%q) must fail", src)
		}
	}
}

func TestParseRules(t *testing.T) {
	src := `
# identification rules
IF name > 0.8 AND job > 0.7 THEN DUPLICATES WITH CERTAINTY=0.8

IF name > 0.95 THEN DUPLICATES WITH CERTAINTY=0.9
`
	rules, err := ParseRules(src, []string{"name", "job"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 2 {
		t.Fatalf("parsed %d rules", len(rules))
	}
	if _, err := ParseRules("IF x > 1 THEN CERTAINTY=0.5", []string{"name"}); err == nil {
		t.Fatal("want error with line number")
	}
}

func TestAgreement(t *testing.T) {
	c := avm.Vector{0.9, 0.3, 0.6}
	p := Agreement(c) // default 0.5
	if !p[0] || p[1] || !p[2] {
		t.Fatalf("pattern %v", p)
	}
	p = Agreement(c, 0.8) // broadcast
	if !p[0] || p[1] || p[2] {
		t.Fatalf("broadcast pattern %v", p)
	}
	p = Agreement(c, 0.95, 0.2, 0.7) // per-attribute
	if p[0] || !p[1] || p[2] {
		t.Fatalf("per-attr pattern %v", p)
	}
}

func TestFellegiSunterWeights(t *testing.T) {
	fs, err := NewFellegiSunter([]float64{0.9, 0.8}, []float64{0.1, 0.2}, Thresholds{Lambda: -1, Mu: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Full agreement: log2(9) + log2(4).
	want := math.Log2(9) + math.Log2(4)
	if got := fs.LogWeight(Pattern{true, true}); !almost(got, want) {
		t.Errorf("full agreement weight %v, want %v", got, want)
	}
	// Full disagreement: log2(0.1/0.9) + log2(0.2/0.8).
	want = math.Log2(0.1/0.9) + math.Log2(0.25)
	if got := fs.LogWeight(Pattern{false, false}); !almost(got, want) {
		t.Errorf("disagreement weight %v, want %v", got, want)
	}
	// Model classification end-to-end.
	if got := Decide(fs, avm.Vector{0.9, 0.9}); got != M {
		t.Errorf("agreeing pair: %v", got)
	}
	if got := Decide(fs, avm.Vector{0.1, 0.1}); got != U {
		t.Errorf("disagreeing pair: %v", got)
	}
}

func TestNewFellegiSunterErrors(t *testing.T) {
	if _, err := NewFellegiSunter([]float64{0.9}, []float64{0.1, 0.2}, Thresholds{}); err == nil {
		t.Error("length mismatch must fail")
	}
	if _, err := NewFellegiSunter([]float64{1.0}, []float64{0.1}, Thresholds{}); err == nil {
		t.Error("m=1 must fail")
	}
	if _, err := NewFellegiSunter([]float64{0.9}, []float64{0.0}, Thresholds{}); err == nil {
		t.Error("u=0 must fail")
	}
	if _, err := NewFellegiSunter([]float64{0.9}, []float64{0.1}, Thresholds{Lambda: 2, Mu: 1}); err == nil {
		t.Error("bad thresholds must fail")
	}
}

func TestEstimateFromLabeled(t *testing.T) {
	matches := []Pattern{{true, true}, {true, false}, {true, true}}
	nons := []Pattern{{false, false}, {true, false}, {false, false}, {false, true}}
	m, u, err := EstimateFromLabeled(matches, nons, 2)
	if err != nil {
		t.Fatal(err)
	}
	// m0 = (3+0.5)/4, m1 = (2+0.5)/4, u0 = (1+0.5)/5, u1 = (1+0.5)/5.
	if !almost(m[0], 3.5/4) || !almost(m[1], 2.5/4) {
		t.Errorf("m = %v", m)
	}
	if !almost(u[0], 1.5/5) || !almost(u[1], 1.5/5) {
		t.Errorf("u = %v", u)
	}
	if _, _, err := EstimateFromLabeled(nil, nons, 2); err == nil {
		t.Error("want error without matches")
	}
}

func TestEstimateEMSeparatesMixture(t *testing.T) {
	// Generate a synthetic two-class mixture: matches agree with
	// probability .95/.9, non-matches with .05/.15, 20% match prior.
	// Latent-class models need at least three indicators to be identifiable,
	// hence three attributes.
	rng := rand.New(rand.NewSource(3))
	var patterns []Pattern
	trueM := []float64{0.95, 0.9, 0.85}
	trueU := []float64{0.05, 0.15, 0.1}
	for i := 0; i < 4000; i++ {
		var probs []float64
		if rng.Float64() < 0.2 {
			probs = trueM
		} else {
			probs = trueU
		}
		patterns = append(patterns, Pattern{
			rng.Float64() < probs[0],
			rng.Float64() < probs[1],
			rng.Float64() < probs[2],
		})
	}
	res, err := EstimateEM(patterns, 3, 200, 1e-10)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.PMatch-0.2) > 0.05 {
		t.Errorf("PMatch = %v, want ≈0.2", res.PMatch)
	}
	for i := range trueM {
		if math.Abs(res.M[i]-trueM[i]) > 0.07 {
			t.Errorf("M[%d] = %v, want ≈%v", i, res.M[i], trueM[i])
		}
		if math.Abs(res.U[i]-trueU[i]) > 0.07 {
			t.Errorf("U[%d] = %v, want ≈%v", i, res.U[i], trueU[i])
		}
	}
	if res.Iterations < 2 {
		t.Errorf("EM stopped suspiciously early: %d", res.Iterations)
	}
	if _, err := EstimateEM(nil, 2, 10, 0); err == nil {
		t.Error("want error on empty input")
	}
}

func TestSelectThresholds(t *testing.T) {
	// Clearly separated weight distributions.
	matches := []float64{5, 6, 7, 8, 9}
	nons := []float64{-5, -4, -3, -2, -1}
	th, err := SelectThresholds(matches, nons, 0.0, 0.0)
	if err != nil {
		t.Fatal(err)
	}
	if err := th.Validate(); err != nil {
		t.Fatal(err)
	}
	// All matches above Tμ, all non-matches below Tλ.
	for _, w := range matches {
		if th.Classify(w) != M {
			t.Errorf("match weight %v classified %v (th=%+v)", w, th.Classify(w), th)
		}
	}
	for _, w := range nons {
		if th.Classify(w) != U {
			t.Errorf("non-match weight %v classified %v (th=%+v)", w, th.Classify(w), th)
		}
	}
	// Overlapping distributions with loose bounds still give valid
	// thresholds.
	th2, err := SelectThresholds([]float64{0, 1, 2, 3}, []float64{1, 2, 3, 4}, 0.25, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if err := th2.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := SelectThresholds(nil, nons, 0.1, 0.1); err == nil {
		t.Error("want error on empty class")
	}
}

func TestQuickFSWeightMonotone(t *testing.T) {
	// Turning a disagreement into an agreement never decreases the weight
	// when m > u for that attribute.
	fs, _ := NewFellegiSunter([]float64{0.9, 0.85, 0.7}, []float64{0.1, 0.3, 0.2}, Thresholds{Lambda: 0, Mu: 0})
	prop := func(b0, b1, b2 bool, idx uint8) bool {
		p := Pattern{b0, b1, b2}
		i := int(idx) % 3
		if p[i] {
			return true
		}
		w0 := fs.LogWeight(p)
		p[i] = true
		return fs.LogWeight(p) >= w0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
