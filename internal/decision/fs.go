package decision

import (
	"fmt"
	"math"
	"sort"

	"probdedup/internal/avm"
)

// Pattern is a binary agreement pattern derived from a comparison vector:
// Pattern[i] is true when attribute i is considered to agree.
type Pattern []bool

// Agreement converts a comparison vector into a binary agreement pattern
// using per-attribute agreement thresholds (cᵢ > thresholds[i] means
// agreement). A single threshold is broadcast to all attributes.
func Agreement(c avm.Vector, thresholds ...float64) Pattern {
	p := make(Pattern, len(c))
	for i, v := range c {
		t := 0.5
		switch {
		case len(thresholds) == 1:
			t = thresholds[0]
		case i < len(thresholds):
			t = thresholds[i]
		}
		p[i] = v > t
	}
	return p
}

// FellegiSunter is the probabilistic decision model of Fellegi & Sunter
// under the usual conditional-independence assumption: each attribute i has
// an m-probability mᵢ = P(agree | match) and a u-probability
// uᵢ = P(agree | non-match). The matching weight of a comparison vector is
//
//	R = m(c⃗)/u(c⃗) = Π_i (mᵢ/uᵢ)^{agreeᵢ} · ((1−mᵢ)/(1−uᵢ))^{1−agreeᵢ}
//
// and the pair is classified against the thresholds Tλ and Tμ (Fig. 2).
// Similarity reports log₂ R so weights are additive and finite-precision
// safe; thresholds are therefore also on the log₂ scale.
type FellegiSunter struct {
	// M and Agree hold mᵢ and uᵢ per attribute.
	M []float64
	U []float64
	// AgreeThresholds converts similarities into agreement decisions;
	// empty means 0.5 for every attribute.
	AgreeThresholds []float64
	// T are the classification thresholds on the log₂-weight scale.
	T Thresholds
}

// NewFellegiSunter validates and builds a model.
func NewFellegiSunter(m, u []float64, t Thresholds) (*FellegiSunter, error) {
	if len(m) != len(u) {
		return nil, fmt.Errorf("decision: m and u lengths differ (%d vs %d)", len(m), len(u))
	}
	for i := range m {
		if m[i] <= 0 || m[i] >= 1 || u[i] <= 0 || u[i] >= 1 {
			return nil, fmt.Errorf("decision: m[%d]=%v u[%d]=%v must lie in (0,1)", i, m[i], i, u[i])
		}
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return &FellegiSunter{M: m, U: u, T: t}, nil
}

// LogWeight returns log₂ R for an agreement pattern.
func (fs *FellegiSunter) LogWeight(p Pattern) float64 {
	w := 0.0
	for i, agree := range p {
		if i >= len(fs.M) {
			break
		}
		if agree {
			w += math.Log2(fs.M[i] / fs.U[i])
		} else {
			w += math.Log2((1 - fs.M[i]) / (1 - fs.U[i]))
		}
	}
	return w
}

// Similarity implements Model: the log₂ matching weight of the comparison
// vector's agreement pattern. The value is non-normalized, as Sec. III-D
// notes for probabilistic techniques.
func (fs *FellegiSunter) Similarity(c avm.Vector) float64 {
	return fs.LogWeight(Agreement(c, fs.AgreeThresholds...))
}

// Classify implements Model.
func (fs *FellegiSunter) Classify(sim float64) Class { return fs.T.Classify(sim) }

// Arity reports the attribute count the model's m/u probabilities are
// bound to; ValidateArity checks it against the schema.
func (fs *FellegiSunter) Arity() int { return len(fs.M) }

// EstimateFromLabeled computes m/u probabilities from labeled agreement
// patterns using add-half smoothing (so probabilities stay inside (0,1)).
func EstimateFromLabeled(matches, nonMatches []Pattern, nattrs int) (m, u []float64, err error) {
	if len(matches) == 0 || len(nonMatches) == 0 {
		return nil, nil, fmt.Errorf("decision: need labeled matches and non-matches")
	}
	m = make([]float64, nattrs)
	u = make([]float64, nattrs)
	for i := 0; i < nattrs; i++ {
		m[i] = (countAgree(matches, i) + 0.5) / (float64(len(matches)) + 1)
		u[i] = (countAgree(nonMatches, i) + 0.5) / (float64(len(nonMatches)) + 1)
	}
	return m, u, nil
}

func countAgree(ps []Pattern, i int) float64 {
	n := 0.0
	for _, p := range ps {
		if i < len(p) && p[i] {
			n++
		}
	}
	return n
}

// EMResult holds the parameters estimated by EstimateEM.
type EMResult struct {
	M []float64 // per-attribute m-probabilities
	U []float64 // per-attribute u-probabilities
	// PMatch is the estimated prior proportion of matched pairs.
	PMatch float64
	// Iterations actually performed.
	Iterations int
	// LogLikelihood of the final parameters.
	LogLikelihood float64
}

// EstimateEM estimates m/u probabilities and the match prior from
// *unlabeled* agreement patterns with the EM algorithm of Winkler (1988)
// under conditional independence. Initial values: m=0.9, u=0.1, p=0.1.
// Iteration stops when the log-likelihood improves by less than tol or
// after maxIter iterations.
func EstimateEM(patterns []Pattern, nattrs, maxIter int, tol float64) (EMResult, error) {
	if len(patterns) == 0 {
		return EMResult{}, fmt.Errorf("decision: no patterns")
	}
	if maxIter <= 0 {
		maxIter = 100
	}
	if tol <= 0 {
		tol = 1e-9
	}
	m := make([]float64, nattrs)
	u := make([]float64, nattrs)
	for i := range m {
		m[i], u[i] = 0.9, 0.1
	}
	p := 0.1
	clampP := func(x float64) float64 {
		const lo, hi = 1e-6, 1 - 1e-6
		if x < lo {
			return lo
		}
		if x > hi {
			return hi
		}
		return x
	}
	prevLL := math.Inf(-1)
	res := EMResult{}
	for iter := 1; iter <= maxIter; iter++ {
		// E-step: responsibility g of the match class per pattern.
		g := make([]float64, len(patterns))
		ll := 0.0
		for k, pat := range patterns {
			pm, pu := p, 1-p
			for i := 0; i < nattrs; i++ {
				agree := i < len(pat) && pat[i]
				if agree {
					pm *= m[i]
					pu *= u[i]
				} else {
					pm *= 1 - m[i]
					pu *= 1 - u[i]
				}
			}
			total := pm + pu
			if total <= 0 {
				total = math.SmallestNonzeroFloat64
			}
			g[k] = pm / total
			ll += math.Log(total)
		}
		// M-step.
		sumG := 0.0
		for _, v := range g {
			sumG += v
		}
		n := float64(len(patterns))
		p = clampP(sumG / n)
		for i := 0; i < nattrs; i++ {
			am, au := 0.0, 0.0
			for k, pat := range patterns {
				if i < len(pat) && pat[i] {
					am += g[k]
					au += 1 - g[k]
				}
			}
			denomM, denomU := sumG, n-sumG
			if denomM <= 0 {
				denomM = math.SmallestNonzeroFloat64
			}
			if denomU <= 0 {
				denomU = math.SmallestNonzeroFloat64
			}
			m[i] = clampP(am / denomM)
			u[i] = clampP(au / denomU)
		}
		res = EMResult{M: m, U: u, PMatch: p, Iterations: iter, LogLikelihood: ll}
		if ll-prevLL < tol && iter > 1 {
			break
		}
		prevLL = ll
	}
	// By convention the match class is the one with higher agreement
	// probabilities; if EM converged to the mirrored labelling, swap.
	var sm, su float64
	for i := 0; i < nattrs; i++ {
		sm += res.M[i]
		su += res.U[i]
	}
	if su > sm {
		res.M, res.U = res.U, res.M
		res.PMatch = 1 - res.PMatch
	}
	return res, nil
}

// SelectThresholds picks Tλ and Tμ from labeled log-weights such that the
// expected false-positive rate among declared matches is at most fpBound
// and the false-negative rate among declared non-matches is at most fnBound
// (the error-bound construction of Fellegi & Sunter). Weights of matched
// and unmatched training pairs must be provided separately.
func SelectThresholds(matchWeights, nonMatchWeights []float64, fpBound, fnBound float64) (Thresholds, error) {
	if len(matchWeights) == 0 || len(nonMatchWeights) == 0 {
		return Thresholds{}, fmt.Errorf("decision: need weights for both classes")
	}
	ms := append([]float64(nil), matchWeights...)
	us := append([]float64(nil), nonMatchWeights...)
	sort.Float64s(ms)
	sort.Float64s(us)
	// Scan candidate thresholds over the union of observed weights:
	// Tμ is the smallest weight with false-positive fraction ≤ fpBound,
	// Tλ the largest weight with false-negative fraction ≤ fnBound.
	cands := append(append([]float64(nil), ms...), us...)
	sort.Float64s(cands)
	mu := cands[len(cands)-1] + 1
	for _, w := range cands {
		fp := fracAbove(us, w)
		if fp <= fpBound {
			mu = w
			break
		}
	}
	lambda := cands[0] - 1
	for i := len(cands) - 1; i >= 0; i-- {
		w := cands[i]
		fn := fracBelow(ms, w)
		if fn <= fnBound {
			lambda = w
			break
		}
	}
	if lambda > mu {
		// Bounds conflict: collapse P to empty at the crossing point.
		mid := (lambda + mu) / 2
		lambda, mu = mid, mid
	}
	return Thresholds{Lambda: lambda, Mu: mu}, nil
}

// fracAbove returns the fraction of sorted xs strictly greater than w.
func fracAbove(sorted []float64, w float64) float64 {
	n := 0
	for i := len(sorted) - 1; i >= 0 && sorted[i] > w; i-- {
		n++
	}
	return float64(n) / float64(len(sorted))
}

// fracBelow returns the fraction of sorted xs strictly less than w.
func fracBelow(sorted []float64, w float64) float64 {
	n := 0
	for i := 0; i < len(sorted) && sorted[i] < w; i++ {
		n++
	}
	return float64(n) / float64(len(sorted))
}
