package decision

import (
	"math/rand"
	"testing"

	"probdedup/internal/avm"
)

func BenchmarkWeightedSum(b *testing.B) {
	phi := WeightedSum(0.5, 0.3, 0.2)
	c := avm.Vector{0.9, 0.4, 0.7}
	for i := 0; i < b.N; i++ {
		_ = phi(c)
	}
}

func BenchmarkRuleModel(b *testing.B) {
	rules, err := ParseRules(`
IF name > 0.8 AND job > 0.7 THEN DUPLICATES WITH CERTAINTY=0.8
IF name > 0.95 THEN DUPLICATES WITH CERTAINTY=0.9
`, []string{"name", "job"})
	if err != nil {
		b.Fatal(err)
	}
	model := RuleModel{Rules: rules, T: Thresholds{Lambda: 0.7, Mu: 0.7}}
	c := avm.Vector{0.9, 0.75}
	for i := 0; i < b.N; i++ {
		_ = Decide(model, c)
	}
}

func BenchmarkFellegiSunterWeight(b *testing.B) {
	fs, err := NewFellegiSunter(
		[]float64{0.9, 0.85, 0.8}, []float64{0.1, 0.2, 0.15},
		Thresholds{Lambda: -2, Mu: 4})
	if err != nil {
		b.Fatal(err)
	}
	c := avm.Vector{0.9, 0.3, 0.8}
	for i := 0; i < b.N; i++ {
		_ = Decide(fs, c)
	}
}

func BenchmarkEstimateEM(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	patterns := make([]Pattern, 2000)
	for i := range patterns {
		match := rng.Float64() < 0.2
		p := make(Pattern, 3)
		for j := range p {
			if match {
				p[j] = rng.Float64() < 0.9
			} else {
				p[j] = rng.Float64() < 0.1
			}
		}
		patterns[i] = p
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := EstimateEM(patterns, 3, 50, 1e-9); err != nil {
			b.Fatal(err)
		}
	}
}
