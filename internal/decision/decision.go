package decision

import (
	"fmt"
	"math"

	"probdedup/internal/avm"
)

// Class is the matching value η(t1,t2) ∈ {m, p, u}.
type Class int

const (
	// U : the pair is a non-match (set U).
	U Class = iota
	// P : the pair is a possible match requiring clerical review (set P).
	P
	// M : the pair is a match (set M).
	M
)

// String renders the class as the paper's lowercase letter.
func (c Class) String() string {
	switch c {
	case M:
		return "m"
	case P:
		return "p"
	default:
		return "u"
	}
}

// Score returns the numeric encoding {m=2, p=1, u=0} used by the
// expected-matching-result derivation of Sec. IV-B.
func (c Class) Score() float64 { return float64(int(c)) }

// Combine is a combination function φ: [0,1]ⁿ → ℝ collapsing a comparison
// vector into a single similarity degree (Eq. 3).
type Combine func(c avm.Vector) float64

// WeightedSum returns φ(c⃗) = Σ wᵢ·cᵢ. With weights summing to 1 the result
// is normalized. The paper's example uses φ(c⃗) = 0.8·c1 + 0.2·c2.
//
// The returned function requires len(c⃗) == len(weights) and panics with
// an ArityError otherwise: a mismatch means the configuration pairs the
// wrong number of weights with the schema, and silently ignoring the
// surplus weights or attributes (the old behavior) turns that
// misconfiguration into quietly wrong similarities. The detection engine
// converts the panic into a configuration error at setup via
// ValidateArity.
func WeightedSum(weights ...float64) Combine {
	ws := append([]float64(nil), weights...)
	return func(c avm.Vector) float64 {
		if len(c) != len(ws) {
			panic(&ArityError{Want: len(ws), Got: len(c), What: "weighted sum"})
		}
		s := 0.0
		for i, w := range ws {
			s += w * c[i]
		}
		return s
	}
}

// ArityError reports a decision model bound to a different number of
// attributes than the comparison vectors it is applied to.
type ArityError struct {
	// Want is the attribute count the model is bound to, Got the length
	// of the comparison vector (or the schema arity during validation).
	Want, Got int
	// What names the mismatched component.
	What string
}

// Error implements error.
func (e *ArityError) Error() string {
	return fmt.Sprintf("decision: %s is bound to %d attributes, comparison vector has %d", e.What, e.Want, e.Got)
}

// ValidateArity checks that the model can consume comparison vectors of
// nattrs attributes. Models exposing their arity (interface{ Arity() int },
// e.g. FellegiSunter) are checked directly; any other model is probed
// with a zero vector of the right length, converting an ArityError panic
// (as raised by WeightedSum) into the returned error. Called by the
// detection engine so weight/schema mismatches fail at configuration
// time instead of silently skewing similarities.
func ValidateArity(m Model, nattrs int) (err error) {
	if a, ok := m.(interface{ Arity() int }); ok {
		if want := a.Arity(); want != nattrs {
			return &ArityError{Want: want, Got: nattrs, What: "decision model"}
		}
		return nil
	}
	defer func() {
		if r := recover(); r != nil {
			if ae, ok := r.(*ArityError); ok {
				err = &ArityError{Want: ae.Want, Got: nattrs, What: ae.What}
				return
			}
			panic(r)
		}
	}()
	m.Similarity(make(avm.Vector, nattrs))
	return nil
}

// Average returns the unweighted mean of the comparison vector.
func Average(c avm.Vector) float64 {
	if len(c) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range c {
		s += v
	}
	return s / float64(len(c))
}

// Minimum returns the most pessimistic attribute similarity.
func Minimum(c avm.Vector) float64 {
	if len(c) == 0 {
		return 0
	}
	m := c[0]
	for _, v := range c[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// Maximum returns the most optimistic attribute similarity.
func Maximum(c avm.Vector) float64 {
	if len(c) == 0 {
		return 0
	}
	m := c[0]
	for _, v := range c[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// Product returns Π cᵢ, a strict conjunction-like combination.
func Product(c avm.Vector) float64 {
	p := 1.0
	for _, v := range c {
		p *= v
	}
	if len(c) == 0 {
		return 0
	}
	return p
}

// Thresholds separates similarity degrees into the sets M, P, U. With
// Lambda == Mu the set P is empty and the model degenerates to the
// two-class scheme used by most knowledge-based techniques.
type Thresholds struct {
	// Lambda is Tλ: below it the pair is a non-match.
	Lambda float64
	// Mu is Tμ: above it the pair is a match. Must be ≥ Lambda.
	Mu float64
}

// Validate checks Lambda ≤ Mu.
func (t Thresholds) Validate() error {
	if math.IsNaN(t.Lambda) || math.IsNaN(t.Mu) {
		return fmt.Errorf("decision: NaN threshold")
	}
	if t.Lambda > t.Mu {
		return fmt.Errorf("decision: Tλ=%v > Tμ=%v", t.Lambda, t.Mu)
	}
	return nil
}

// Classify assigns a similarity degree to M (sim > Tμ), U (sim < Tλ) or P
// (otherwise), following Fig. 2.
func (t Thresholds) Classify(sim float64) Class {
	switch {
	case sim > t.Mu:
		return M
	case sim < t.Lambda:
		return U
	default:
		return P
	}
}

// Model is a decision model in the general two-step representation of
// Fig. 3: a combination function producing sim(t1,t2) from c⃗, followed by a
// threshold classification into {M, P, U}.
type Model interface {
	// Similarity executes φ(c⃗) (step 1 of Fig. 3).
	Similarity(c avm.Vector) float64
	// Classify executes step 2 of Fig. 3.
	Classify(sim float64) Class
}

// Decide runs both steps: η(t1,t2) = Classify(φ(c⃗)).
func Decide(m Model, c avm.Vector) Class {
	return m.Classify(m.Similarity(c))
}

// SimpleModel composes an arbitrary combination function with thresholds.
// It is the natural representation of knowledge-free weighted-sum matching.
type SimpleModel struct {
	Phi Combine
	T   Thresholds
}

// Similarity implements Model.
func (s SimpleModel) Similarity(c avm.Vector) float64 { return s.Phi(c) }

// Classify implements Model.
func (s SimpleModel) Classify(sim float64) Class { return s.T.Classify(sim) }
