package decision

import "testing"

// FuzzParseRule: parsing arbitrary rule text must never panic, and every
// accepted rule must be well-formed.
func FuzzParseRule(f *testing.F) {
	f.Add("IF name > 0.8 AND job > 0.7 THEN DUPLICATES WITH CERTAINTY=0.8")
	f.Add("IF job > 0.5 THEN CERTAINTY=0.6")
	f.Add("if NAME > 0.1 then duplicates certainty=0.5")
	f.Add("IF THEN CERTAINTY=")
	f.Add("IF name > x THEN CERTAINTY=y")
	f.Add("")
	f.Fuzz(func(t *testing.T, src string) {
		r, err := ParseRule(src, []string{"name", "job"})
		if err != nil {
			return
		}
		if len(r.Conditions) == 0 {
			t.Fatal("accepted rule without conditions")
		}
		if r.Certainty < 0 || r.Certainty > 1 {
			t.Fatalf("accepted certainty %v", r.Certainty)
		}
		for _, c := range r.Conditions {
			if c.Attr < 0 || c.Attr > 1 {
				t.Fatalf("accepted unknown attribute %d", c.Attr)
			}
		}
	})
}
