package decision

import (
	"fmt"
	"strings"
	"testing"
)

// FuzzParseRules: parsing arbitrary multi-rule documents (comments,
// blank lines, one rule per line) must never panic, and every accepted
// document must yield only well-formed rules whose String forms parse
// back to the same number of rules (round-trip fixed point).
func FuzzParseRules(f *testing.F) {
	f.Add("IF name > 0.8 AND job > 0.7 THEN DUPLICATES WITH CERTAINTY=0.8\nIF job > 0.5 THEN CERTAINTY=0.6\n")
	f.Add("# comment\n\nIF name > 0.1 THEN CERTAINTY=0.5")
	f.Add("IF name > 0.8 THEN CERTAINTY=1.0\nIF broken\n")
	f.Add("IF name > x THEN CERTAINTY=y")
	f.Add("")
	f.Fuzz(func(t *testing.T, src string) {
		schema := []string{"name", "job"}
		rules, err := ParseRules(src, schema)
		if err != nil {
			return
		}
		var again []string
		for _, r := range rules {
			if len(r.Conditions) == 0 {
				t.Fatal("accepted rule without conditions")
			}
			parts := make([]string, 0, len(r.Conditions))
			for _, c := range r.Conditions {
				if c.Attr < 0 || c.Attr >= len(schema) {
					t.Fatalf("accepted unknown attribute %d", c.Attr)
				}
				parts = append(parts, fmt.Sprintf("%s > %v", schema[c.Attr], c.Threshold))
			}
			again = append(again, fmt.Sprintf("IF %s THEN DUPLICATES WITH CERTAINTY=%v",
				strings.Join(parts, " AND "), r.Certainty))
		}
		// Accepted documents round-trip: rendering the parsed rules back
		// to the paper syntax parses to the same structure counts.
		back, err := ParseRules(strings.Join(again, "\n"), schema)
		if err != nil {
			t.Fatalf("rendered rules failed to parse: %v\n%s", err, strings.Join(again, "\n"))
		}
		if len(back) != len(rules) {
			t.Fatalf("round trip changed rule count: %d → %d", len(rules), len(back))
		}
		for i := range back {
			if len(back[i].Conditions) != len(rules[i].Conditions) {
				t.Fatalf("round trip changed condition count of rule %d", i)
			}
		}
	})
}

// FuzzParseRule: parsing arbitrary rule text must never panic, and every
// accepted rule must be well-formed.
func FuzzParseRule(f *testing.F) {
	f.Add("IF name > 0.8 AND job > 0.7 THEN DUPLICATES WITH CERTAINTY=0.8")
	f.Add("IF job > 0.5 THEN CERTAINTY=0.6")
	f.Add("if NAME > 0.1 then duplicates certainty=0.5")
	f.Add("IF THEN CERTAINTY=")
	f.Add("IF name > x THEN CERTAINTY=y")
	f.Add("")
	f.Fuzz(func(t *testing.T, src string) {
		r, err := ParseRule(src, []string{"name", "job"})
		if err != nil {
			return
		}
		if len(r.Conditions) == 0 {
			t.Fatal("accepted rule without conditions")
		}
		if r.Certainty < 0 || r.Certainty > 1 {
			t.Fatalf("accepted certainty %v", r.Certainty)
		}
		for _, c := range r.Conditions {
			if c.Attr < 0 || c.Attr > 1 {
				t.Fatalf("accepted unknown attribute %d", c.Attr)
			}
		}
	})
}
