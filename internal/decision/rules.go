package decision

import (
	"fmt"
	"strconv"
	"strings"

	"probdedup/internal/avm"
)

// Condition is one conjunct of an identification rule: the similarity of
// attribute Attr must exceed Threshold.
type Condition struct {
	// Attr is the attribute position in the comparison vector.
	Attr int
	// Threshold is the similarity the attribute must exceed.
	Threshold float64
}

// Rule is a knowledge-based identification rule (Fig. 1): if every
// condition holds, the tuple pair is a duplicate with the given certainty
// factor.
type Rule struct {
	Conditions []Condition
	// Certainty is the rule's certainty factor in [0,1].
	Certainty float64
}

// Fires reports whether every condition of the rule holds on c⃗.
func (r Rule) Fires(c avm.Vector) bool {
	for _, cond := range r.Conditions {
		if cond.Attr >= len(c) || !(c[cond.Attr] > cond.Threshold) {
			return false
		}
	}
	return true
}

// RuleModel is the knowledge-based decision model: domain experts define
// identification rules; the resulting certainty is the maximum certainty of
// any firing rule; a final user-defined threshold separates M from U
// (the set P is usually not considered in these techniques, so Classify
// uses a single threshold unless TwoThresholds is set).
type RuleModel struct {
	Rules []Rule
	// T holds the user-defined threshold(s). For the classical single
	// threshold set Lambda == Mu.
	T Thresholds
}

// Similarity returns the maximum certainty factor among firing rules
// (0 if none fires). The result is normalized, as Sec. III-D notes for
// knowledge-based techniques.
func (rm RuleModel) Similarity(c avm.Vector) float64 {
	best := 0.0
	for _, r := range rm.Rules {
		if r.Fires(c) && r.Certainty > best {
			best = r.Certainty
		}
	}
	return best
}

// Classify implements Model.
func (rm RuleModel) Classify(sim float64) Class { return rm.T.Classify(sim) }

// ParseRule parses the paper's rule syntax (Fig. 1):
//
//	IF name > 0.8 AND job > 0.7 THEN DUPLICATES WITH CERTAINTY=0.8
//
// Attribute names are resolved against schema. The CERTAINTY clause also
// accepts the paper's bare form "CERTAINTY=0.8" without WITH. Parsing is
// case-insensitive on keywords.
func ParseRule(src string, schema []string) (Rule, error) {
	tokens := strings.Fields(src)
	if len(tokens) < 6 {
		return Rule{}, fmt.Errorf("decision: rule too short: %q", src)
	}
	upper := make([]string, len(tokens))
	for i, t := range tokens {
		upper[i] = strings.ToUpper(t)
	}
	if upper[0] != "IF" {
		return Rule{}, fmt.Errorf("decision: rule must start with IF: %q", src)
	}
	thenIdx := -1
	for i, t := range upper {
		if t == "THEN" {
			thenIdx = i
			break
		}
	}
	if thenIdx < 0 {
		return Rule{}, fmt.Errorf("decision: rule missing THEN: %q", src)
	}

	var rule Rule
	// Conditions: attr > num (AND attr > num)*
	i := 1
	for i < thenIdx {
		if upper[i] == "AND" {
			i++
			continue
		}
		if i+2 >= thenIdx {
			return Rule{}, fmt.Errorf("decision: incomplete condition at %q", strings.Join(tokens[i:thenIdx], " "))
		}
		attrName := tokens[i]
		op := tokens[i+1]
		if op != ">" {
			return Rule{}, fmt.Errorf("decision: unsupported operator %q (only >)", op)
		}
		thr, err := strconv.ParseFloat(tokens[i+2], 64)
		if err != nil {
			return Rule{}, fmt.Errorf("decision: bad threshold %q: %v", tokens[i+2], err)
		}
		attr := -1
		for k, s := range schema {
			if strings.EqualFold(s, attrName) {
				attr = k
				break
			}
		}
		if attr < 0 {
			return Rule{}, fmt.Errorf("decision: unknown attribute %q", attrName)
		}
		rule.Conditions = append(rule.Conditions, Condition{Attr: attr, Threshold: thr})
		i += 3
	}
	if len(rule.Conditions) == 0 {
		return Rule{}, fmt.Errorf("decision: rule has no conditions: %q", src)
	}

	// Consequent: ... CERTAINTY=x (allowing DUPLICATES / WITH noise words).
	certainty := -1.0
	for _, t := range tokens[thenIdx+1:] {
		ut := strings.ToUpper(t)
		if strings.HasPrefix(ut, "CERTAINTY=") {
			v, err := strconv.ParseFloat(t[len("CERTAINTY="):], 64)
			if err != nil {
				return Rule{}, fmt.Errorf("decision: bad certainty in %q: %v", t, err)
			}
			certainty = v
		}
	}
	if certainty < 0 {
		return Rule{}, fmt.Errorf("decision: rule missing CERTAINTY=: %q", src)
	}
	if certainty > 1 {
		return Rule{}, fmt.Errorf("decision: certainty %v outside [0,1]", certainty)
	}
	rule.Certainty = certainty
	return rule, nil
}

// ParseRules parses one rule per non-empty, non-comment line ('#' starts a
// comment).
func ParseRules(src string, schema []string) ([]Rule, error) {
	var out []Rule
	for ln, line := range strings.Split(src, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		r, err := ParseRule(line, schema)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", ln+1, err)
		}
		out = append(out, r)
	}
	return out, nil
}
