package decision

import (
	"math/rand"
	"testing"

	"probdedup/internal/avm"
)

func TestEqualWeights(t *testing.T) {
	if got := EqualWeights(0); len(got) != 0 {
		t.Fatalf("EqualWeights(0) = %v", got)
	}
	ws := EqualWeights(4)
	sum := 0.0
	for _, w := range ws {
		if w != 0.25 {
			t.Fatalf("weights = %v, want all 0.25", ws)
		}
		sum += w
	}
	if sum != 1 {
		t.Fatalf("weights sum to %v", sum)
	}
}

// TestWeightedSumModelMatchesSimpleModel: the explicit model must be
// bit-identical to SimpleModel{Phi: WeightedSum(w...)} — same values,
// same summation order — on random vectors.
func TestWeightedSumModelMatchesSimpleModel(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	ws := []float64{0.5, 0.3, 0.2}
	th := Thresholds{Lambda: 0.4, Mu: 0.8}
	explicit := WeightedSumModel{Weights: ws, T: th}
	opaque := SimpleModel{Phi: WeightedSum(ws...), T: th}
	if explicit.Arity() != 3 {
		t.Fatalf("Arity = %d", explicit.Arity())
	}
	for i := 0; i < 200; i++ {
		c := avm.Vector{rng.Float64(), rng.Float64(), rng.Float64()}
		if a, b := explicit.Similarity(c), opaque.Similarity(c); a != b {
			t.Fatalf("Similarity(%v): explicit %v != opaque %v", c, a, b)
		}
	}
	for _, sim := range []float64{0, 0.39, 0.4, 0.79, 0.8, 1} {
		if a, b := explicit.Classify(sim), opaque.Classify(sim); a != b {
			t.Fatalf("Classify(%v): explicit %v != opaque %v", sim, a, b)
		}
	}
}

// TestWeightedSumUpperBoundDominates: SimilarityUpperBound(hi) must
// dominate Similarity(c) for every c within the box [0,hi], including
// models with negative weights (whose terms the bound omits).
func TestWeightedSumUpperBoundDominates(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for _, ws := range [][]float64{
		{0.5, 0.5},
		{0.7, 0.2, 0.1},
		{0.8, -0.3, 0.5},
	} {
		m := WeightedSumModel{Weights: ws, T: Thresholds{Lambda: 0.5, Mu: 0.8}}
		for i := 0; i < 200; i++ {
			hi := make([]float64, len(ws))
			c := make(avm.Vector, len(ws))
			for k := range hi {
				hi[k] = rng.Float64()
				c[k] = hi[k] * rng.Float64()
			}
			if ub, s := m.SimilarityUpperBound(hi), m.Similarity(c); ub < s {
				t.Fatalf("weights %v: bound %v < similarity %v (hi=%v c=%v)", ws, ub, s, hi, c)
			}
		}
	}
}

func TestWeightedSumModelArityPanics(t *testing.T) {
	m := WeightedSumModel{Weights: EqualWeights(2), T: Thresholds{Lambda: 0.4, Mu: 0.8}}
	expectArityPanic := func(what string, f func()) {
		defer func() {
			r := recover()
			if r == nil {
				t.Fatalf("%s: no panic on arity mismatch", what)
			}
			ae, ok := r.(*ArityError)
			if !ok {
				t.Fatalf("%s: panic %v is not *ArityError", what, r)
			}
			if ae.Error() == "" {
				t.Fatalf("%s: empty ArityError message", what)
			}
		}()
		f()
	}
	expectArityPanic("Similarity", func() { m.Similarity(avm.Vector{1, 2, 3}) })
	expectArityPanic("SimilarityUpperBound", func() { m.SimilarityUpperBound([]float64{1}) })
}

func TestNonMatchBelow(t *testing.T) {
	th := Thresholds{Lambda: 0.35, Mu: 0.9}
	var nb NonMatchBounded = WeightedSumModel{Weights: EqualWeights(1), T: th}
	if got := nb.NonMatchBelow(); got != 0.35 {
		t.Fatalf("WeightedSumModel.NonMatchBelow = %v", got)
	}
	nb = SimpleModel{Phi: WeightedSum(1), T: th}
	if got := nb.NonMatchBelow(); got != 0.35 {
		t.Fatalf("SimpleModel.NonMatchBelow = %v", got)
	}
	// The contract: every sim below the reported level classifies U.
	m := WeightedSumModel{Weights: EqualWeights(1), T: th}
	for _, sim := range []float64{0, 0.1, 0.3499} {
		if cl := m.Classify(sim); cl != U {
			t.Fatalf("Classify(%v) = %v below NonMatchBelow", sim, cl)
		}
	}
}

// TestValidateArityWeightedSum: the explicit model exposes its arity,
// so a weight/schema mismatch is rejected at configuration time.
func TestValidateArityWeightedSum(t *testing.T) {
	m := WeightedSumModel{Weights: EqualWeights(3), T: Thresholds{Lambda: 0.4, Mu: 0.8}}
	if err := ValidateArity(m, 3); err != nil {
		t.Fatalf("matching arity rejected: %v", err)
	}
	if err := ValidateArity(m, 2); err == nil {
		t.Fatal("mismatched arity accepted")
	}
}
