// Package decision implements the decision models of Sec. III-D: the
// two-step scheme of Fig. 3 (combination function φ, then threshold
// classification into matches M, possible matches P and non-matches U),
// knowledge-based identification rules (Fig. 1), and the probabilistic
// Fellegi–Sunter theory with m-/u-probabilities and the matching weight
// R = m(c⃗)/u(c⃗) (Fig. 2), including EM parameter estimation.
//
// Models declare their expected comparison-vector arity (ValidateArity),
// so a weighted sum or Fellegi–Sunter parameterization that disagrees
// with the schema is rejected at engine setup instead of silently
// skewing every comparison.
package decision
