// Package sym is the run-wide symbol plane: it interns every
// standardized attribute value (Sec. III-A output) to a dense uint32
// symbol and precomputes per-symbol statistics — rune length, the
// padded q-gram multiset, and a 64-bit gram signature — once per
// distinct value instead of once per comparison. Downstream layers
// thread the symbols end-to-end: the avm similarity cache keys value
// pairs by (attr, symA, symB) integer triples instead of strings, and
// the ssr candidate pre-filter derives sound similarity upper bounds
// from the precomputed stats without ever touching the strings (the
// PPJoin-style length + q-gram filtering in front of verification,
// ROADMAP item 4a).
package sym

import "sync"

// NoSym is the reserved "not interned" symbol. Symbols handed out by a
// Table start at 1, so a zero-valued annotation is always detectable.
const NoSym uint32 = 0

// Stats are the precomputed signature statistics of one interned value.
// All fields are immutable after interning; the Grams slice must be
// treated as read-only.
type Stats struct {
	// Sym is the symbol the stats belong to (NoSym in the zero Stats).
	Sym uint32
	// Len is the value's rune length.
	Len int
	// Q is the gram size Grams was built with; 0 means the table was
	// created without gram statistics and Grams is nil.
	Q int
	// Grams is the sorted multiset of padded q-grams in packed form
	// (see PackedQGrams). For Q ≤ MaxExactQ the packing is injective,
	// so multiset intersections are exact; for larger Q grams are
	// hashed, which can only over-count intersections — still sound
	// for the upper bounds the pre-filter derives.
	Grams []uint64
	// Sig is a 64-bit membership signature over the distinct grams:
	// two values whose signatures do not intersect share no gram, so a
	// single AND rejects before any multiset merge (the O(1) prefix
	// filter test).
	Sig uint64
}

// Table interns strings to dense symbols and owns their Stats. A Table
// is safe for concurrent use; in the detection engine it lives as long
// as the run (batch) or the detector (online), so equal values always
// map to equal symbols and the symbol-keyed similarity cache never
// aliases distinct values. Symbols are never reused; the table grows
// with the number of distinct values ever interned.
type Table struct {
	q  int
	mu sync.RWMutex
	// ids maps the value string to its 1-based symbol.
	ids map[string]uint32
	// vals and stats are indexed by symbol−1.
	vals  []string
	stats []Stats
}

// NewTable builds an empty symbol table. q > 0 precomputes the padded
// q-gram multiset and gram signature of every interned value; q ≤ 0
// records only rune lengths (cheaper when no pre-filter consumes the
// grams).
func NewTable(q int) *Table {
	if q < 0 {
		q = 0
	}
	return &Table{q: q, ids: map[string]uint32{}}
}

// Q returns the gram size the table precomputes (0 = none).
func (t *Table) Q() int { return t.q }

// Len returns the number of interned values.
func (t *Table) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.vals)
}

// Intern returns the symbol of s, interning it (and precomputing its
// Stats) on first sight. Equal strings always return equal symbols.
func (t *Table) Intern(s string) uint32 {
	t.mu.RLock()
	sy, ok := t.ids[s]
	t.mu.RUnlock()
	if ok {
		return sy
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if sy, ok := t.ids[s]; ok {
		return sy
	}
	sy = uint32(len(t.vals) + 1)
	st := Stats{Sym: sy, Len: runeLen(s)}
	if t.q > 0 {
		st.Q = t.q
		st.Grams = PackedQGrams(s, t.q)
		st.Sig = GramSig(st.Grams)
	}
	t.ids[s] = sy
	t.vals = append(t.vals, s)
	t.stats = append(t.stats, st)
	return sy
}

// Lookup returns the symbol of s without interning it.
func (t *Table) Lookup(s string) (uint32, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	sy, ok := t.ids[s]
	return sy, ok
}

// Stats returns the precomputed statistics of sym (the zero Stats for
// NoSym or an unknown symbol). The contained Grams slice is shared and
// read-only.
func (t *Table) Stats(sym uint32) Stats {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if sym == NoSym || int(sym) > len(t.stats) {
		return Stats{}
	}
	return t.stats[sym-1]
}

// Str returns the canonical string of sym ("" for NoSym or an unknown
// symbol). Annotating values with the canonical instance dedups the
// backing string storage of skewed relations.
func (t *Table) Str(sym uint32) string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if sym == NoSym || int(sym) > len(t.vals) {
		return ""
	}
	return t.vals[sym-1]
}
