package sym

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

func TestInternAssignsDenseStableSymbols(t *testing.T) {
	tab := NewTable(2)
	a := tab.Intern("alpha")
	b := tab.Intern("beta")
	if a != 1 || b != 2 {
		t.Fatalf("symbols = %d, %d; want dense 1, 2", a, b)
	}
	if got := tab.Intern("alpha"); got != a {
		t.Fatalf("re-intern changed the symbol: %d != %d", got, a)
	}
	if tab.Len() != 2 {
		t.Fatalf("Len = %d, want 2", tab.Len())
	}
	if sy, ok := tab.Lookup("beta"); !ok || sy != b {
		t.Fatalf("Lookup(beta) = %d, %t", sy, ok)
	}
	if _, ok := tab.Lookup("gamma"); ok {
		t.Fatal("Lookup of an unknown value succeeded")
	}
	if got := tab.Str(a); got != "alpha" {
		t.Fatalf("Str(%d) = %q", a, got)
	}
	if got := tab.Str(NoSym); got != "" {
		t.Fatalf("Str(NoSym) = %q, want empty", got)
	}
	if got := tab.Str(99); got != "" {
		t.Fatalf("Str(unknown) = %q, want empty", got)
	}
}

func TestStatsPrecomputed(t *testing.T) {
	tab := NewTable(2)
	sy := tab.Intern("héllo")
	st := tab.Stats(sy)
	if st.Sym != sy {
		t.Fatalf("Stats.Sym = %d, want %d", st.Sym, sy)
	}
	if st.Len != 5 {
		t.Fatalf("rune length = %d, want 5", st.Len)
	}
	if st.Q != 2 {
		t.Fatalf("Q = %d, want 2", st.Q)
	}
	// 5 runes with q=2 padding on both sides: n+q−1 = 6 grams.
	if len(st.Grams) != 6 {
		t.Fatalf("gram count = %d, want 6", len(st.Grams))
	}
	if st.Sig == 0 {
		t.Fatal("signature empty for a non-empty value")
	}
	if got := GramSig(st.Grams); got != st.Sig {
		t.Fatalf("stored signature %x != recomputed %x", st.Sig, got)
	}
	// Zero Stats for the sentinel and out-of-range symbols.
	if st := tab.Stats(NoSym); st.Sym != NoSym || st.Len != 0 || st.Grams != nil {
		t.Fatalf("Stats(NoSym) = %+v, want zero", st)
	}
	if st := tab.Stats(42); st.Sym != NoSym {
		t.Fatalf("Stats(unknown) = %+v, want zero", st)
	}
}

func TestTableWithoutGrams(t *testing.T) {
	tab := NewTable(0)
	st := tab.Stats(tab.Intern("value"))
	if st.Q != 0 || st.Grams != nil || st.Sig != 0 {
		t.Fatalf("q=0 table precomputed grams: %+v", st)
	}
	if st.Len != 5 {
		t.Fatalf("Len = %d, want 5", st.Len)
	}
}

// naiveGrams is the reference padded q-gram multiset, mirroring the
// string-based kernel in internal/strsim: pad both sides with q−1 pad
// runes, empty string → no grams.
func naiveGrams(s string, q int) map[string]int {
	if s == "" {
		return nil
	}
	rs := []rune{}
	for i := 0; i < q-1; i++ {
		rs = append(rs, PadRune)
	}
	rs = append(rs, []rune(s)...)
	for i := 0; i < q-1; i++ {
		rs = append(rs, PadRune)
	}
	if len(rs) < q {
		return nil
	}
	out := map[string]int{}
	for i := 0; i+q <= len(rs); i++ {
		out[string(rs[i:i+q])]++
	}
	return out
}

func naiveOverlap(a, b map[string]int) int {
	common := 0
	for g, ca := range a {
		if cb := b[g]; cb < ca {
			common += cb
		} else {
			common += ca
		}
	}
	return common
}

// TestPackedQGramsMatchNaive proves the packed encoding is an exact
// multiset representation for q ≤ MaxExactQ: counts, pairwise overlap,
// and both coefficients agree with the string-based reference on
// random inputs, including multi-byte runes and repeated grams.
func TestPackedQGramsMatchNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	alphabet := []rune("abcé漢#")
	word := func() string {
		n := rng.Intn(12)
		rs := make([]rune, n)
		for i := range rs {
			rs[i] = alphabet[rng.Intn(len(alphabet))]
		}
		return string(rs)
	}
	for q := 1; q <= MaxExactQ; q++ {
		for i := 0; i < 300; i++ {
			a, b := word(), word()
			ga, gb := PackedQGrams(a, q), PackedQGrams(b, q)
			na, nb := naiveGrams(a, q), naiveGrams(b, q)
			wantA := 0
			for _, c := range na {
				wantA += c
			}
			if len(ga) != wantA {
				t.Fatalf("q=%d %q: %d packed grams, want %d", q, a, len(ga), wantA)
			}
			if got, want := Overlap(ga, gb), naiveOverlap(na, nb); got != want {
				t.Fatalf("q=%d (%q,%q): overlap %d, want %d", q, a, b, got, want)
			}
			naiveDice := func() float64 {
				la, lb := len(ga), len(gb)
				if la == 0 && lb == 0 {
					return 1
				}
				if la == 0 || lb == 0 {
					return 0
				}
				return 2 * float64(naiveOverlap(na, nb)) / float64(la+lb)
			}()
			if got := Dice(ga, gb); got != naiveDice {
				t.Fatalf("q=%d (%q,%q): Dice %v, want %v", q, a, b, got, naiveDice)
			}
		}
	}
}

// TestGramSigSubsetProperty is the signature's soundness contract:
// disjoint signatures must imply an empty gram intersection — i.e.
// whenever the multisets do intersect, the signatures must too.
func TestGramSigSubsetProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	word := func() string {
		b := make([]byte, 1+rng.Intn(10))
		for i := range b {
			b[i] = byte('a' + rng.Intn(6))
		}
		return string(b)
	}
	for i := 0; i < 500; i++ {
		a, b := word(), word()
		ga, gb := PackedQGrams(a, 2), PackedQGrams(b, 2)
		if Overlap(ga, gb) > 0 && GramSig(ga)&GramSig(gb) == 0 {
			t.Fatalf("(%q,%q) share grams but signatures are disjoint", a, b)
		}
	}
}

func TestEmptyAndCoefficientConventions(t *testing.T) {
	if got := PackedQGrams("", 2); got != nil {
		t.Fatalf("grams of empty string = %v, want nil", got)
	}
	if got := Dice(nil, nil); got != 1 {
		t.Fatalf("Dice(∅,∅) = %v, want 1", got)
	}
	if got := Dice(nil, PackedQGrams("a", 2)); got != 0 {
		t.Fatalf("Dice(∅,a) = %v, want 0", got)
	}
	if got := Jaccard(nil, nil); got != 1 {
		t.Fatalf("Jaccard(∅,∅) = %v, want 1", got)
	}
	if got := Jaccard(PackedQGrams("ab", 2), nil); got != 0 {
		t.Fatalf("Jaccard(ab,∅) = %v, want 0", got)
	}
	same := PackedQGrams("abc", 2)
	if got := Jaccard(same, same); got != 1 {
		t.Fatalf("Jaccard(x,x) = %v, want 1", got)
	}
}

// TestHashedGramsStaySound checks the q > MaxExactQ fallback: hashing
// may only merge grams, so the packed overlap can never undercount —
// for identical strings it must still be total.
func TestHashedGramsStaySound(t *testing.T) {
	const q = 5
	a := PackedQGrams("duplicate detection", q)
	if len(a) == 0 {
		t.Fatal("no grams")
	}
	if got := Overlap(a, a); got != len(a) {
		t.Fatalf("self overlap %d, want %d", got, len(a))
	}
	rng := rand.New(rand.NewSource(3))
	word := func() string {
		b := make([]byte, 4+rng.Intn(12))
		for i := range b {
			b[i] = byte('a' + rng.Intn(26))
		}
		return string(b)
	}
	for i := 0; i < 200; i++ {
		x, y := word(), word()
		gx, gy := PackedQGrams(x, q), PackedQGrams(y, q)
		nx, ny := naiveGrams(x, q), naiveGrams(y, q)
		if got, min := Overlap(gx, gy), naiveOverlap(nx, ny); got < min {
			t.Fatalf("(%q,%q): hashed overlap %d undercounts the true %d", x, y, got, min)
		}
	}
}

// TestInternConcurrent hammers one table from many goroutines: equal
// strings must map to equal symbols with no torn stats (run under
// -race in CI).
func TestInternConcurrent(t *testing.T) {
	tab := NewTable(2)
	const words = 64
	var wg sync.WaitGroup
	syms := make([][]uint32, 8)
	for g := range syms {
		wg.Add(1)
		syms[g] = make([]uint32, words)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < words; i++ {
				syms[g][i] = tab.Intern(fmt.Sprintf("w%02d", i%words))
			}
		}(g)
	}
	wg.Wait()
	for g := 1; g < len(syms); g++ {
		for i := range syms[g] {
			if syms[g][i] != syms[0][i] {
				t.Fatalf("goroutine %d interned w%02d as %d, goroutine 0 as %d",
					g, i, syms[g][i], syms[0][i])
			}
		}
	}
	if tab.Len() != words {
		t.Fatalf("Len = %d, want %d", tab.Len(), words)
	}
	for i := 0; i < words; i++ {
		s := fmt.Sprintf("w%02d", i)
		sy, ok := tab.Lookup(s)
		if !ok {
			t.Fatalf("%q not interned", s)
		}
		if st := tab.Stats(sy); st.Sym != sy || st.Len != 3 || len(st.Grams) != 4 {
			t.Fatalf("%q: inconsistent stats %+v", s, st)
		}
	}
}
