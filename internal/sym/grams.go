package sym

import (
	"sort"
	"unicode/utf8"
)

// PadRune pads values shorter than the gram size on both sides,
// matching the convention of the string-based q-gram kernels in
// internal/strsim so the packed kernels agree with them bit for bit.
const PadRune = '#'

// MaxExactQ is the largest gram size whose packed encoding is
// injective: up to three 21-bit rune fields fit a uint64. Larger gram
// sizes fall back to hashing, which can only merge distinct grams —
// over-counting intersections, never under-counting, so every bound
// derived from packed grams stays sound.
const MaxExactQ = 3

// PackedQGrams returns the padded q-gram multiset of s in packed
// uint64 form, sorted ascending. The multiset matches the string-based
// qgrams of internal/strsim exactly: strings are padded on both sides
// with q−1 PadRune occurrences, the empty string has no grams, and a
// string of n ≥ 1 runes yields n+q−1 grams (n for q = 1).
func PackedQGrams(s string, q int) []uint64 {
	if q < 1 {
		q = 1
	}
	if s == "" {
		return nil
	}
	n := utf8.RuneCountInString(s)
	rs := make([]rune, 0, n+2*(q-1))
	for i := 0; i < q-1; i++ {
		rs = append(rs, PadRune)
	}
	for _, r := range s {
		rs = append(rs, r)
	}
	for i := 0; i < q-1; i++ {
		rs = append(rs, PadRune)
	}
	if len(rs) < q {
		return nil
	}
	out := make([]uint64, 0, len(rs)-q+1)
	for i := 0; i+q <= len(rs); i++ {
		out = append(out, packGram(rs[i:i+q]))
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// packGram encodes one gram. For len(g) ≤ MaxExactQ each rune occupies
// a 21-bit field (offset by 1 so NUL differs from absence), which is
// injective for a fixed gram size; longer grams are FNV-1a hashed.
func packGram(g []rune) uint64 {
	if len(g) <= MaxExactQ {
		v := uint64(0)
		for _, r := range g {
			v = v<<21 | (uint64(r) + 1)
		}
		return v
	}
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, r := range g {
		h ^= uint64(r)
		h *= prime64
	}
	return h
}

// GramSig folds a packed gram multiset into a 64-bit membership
// signature: bit i is set when some gram mixes to i. Disjoint
// signatures imply an empty gram intersection.
func GramSig(grams []uint64) uint64 {
	sig := uint64(0)
	for _, g := range grams {
		sig |= 1 << ((g * 0x9E3779B97F4A7C15) >> 58)
	}
	return sig
}

// Overlap returns the multiset intersection size of two sorted packed
// gram multisets (a linear merge — the packed analogue of the
// map-based multiset intersection in internal/strsim).
func Overlap(a, b []uint64) int {
	common, i, j := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			common++
			i++
			j++
		}
	}
	return common
}

// Dice returns the q-gram Dice coefficient 2·|common| / (|Qa|+|Qb|)
// over packed gram multisets, agreeing bit for bit with the
// string-based kernel for exact (q ≤ MaxExactQ) packings: two empty
// multisets compare as 1, one empty as 0.
func Dice(a, b []uint64) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	common := Overlap(a, b)
	return 2 * float64(common) / float64(len(a)+len(b))
}

// Jaccard returns the q-gram Jaccard coefficient
// |common| / (|Qa|+|Qb|−|common|) over packed gram multisets, with the
// same empty-multiset convention as Dice.
func Jaccard(a, b []uint64) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	common := Overlap(a, b)
	return float64(common) / float64(len(a)+len(b)-common)
}

// runeLen is utf8.RuneCountInString, local so the hot interning path
// reads naturally.
func runeLen(s string) int { return utf8.RuneCountInString(s) }
