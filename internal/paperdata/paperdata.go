// Package paperdata provides the running-example relations of the paper
// (Figures 4 and 5) so that tests, examples, and the experiment harness all
// operate on identical fixtures.
package paperdata

import "probdedup/internal/pdb"

// R1 returns the probabilistic relation ℛ1 of Fig. 4 (dependency-free
// model): three person tuples with uncertainty on tuple and attribute level.
func R1() *pdb.Relation {
	r := pdb.NewRelation("R1", "name", "job")
	r.Append(
		pdb.NewTuple("t11", 1.0,
			pdb.Certain("Tim"),
			pdb.MustDist(
				pdb.Alternative{Value: pdb.V("machinist"), P: 0.7},
				pdb.Alternative{Value: pdb.V("mechanic"), P: 0.2})),
		pdb.NewTuple("t12", 1.0,
			pdb.MustDist(
				pdb.Alternative{Value: pdb.V("John"), P: 0.5},
				pdb.Alternative{Value: pdb.V("Johan"), P: 0.5}),
			pdb.MustDist(
				pdb.Alternative{Value: pdb.V("baker"), P: 0.7},
				pdb.Alternative{Value: pdb.V("confectioner"), P: 0.3})),
		pdb.NewTuple("t13", 0.6,
			pdb.MustDist(
				pdb.Alternative{Value: pdb.V("Tim"), P: 0.6},
				pdb.Alternative{Value: pdb.V("Tom"), P: 0.4}),
			pdb.Certain("machinist")),
	)
	return r
}

// R2 returns the probabilistic relation ℛ2 of Fig. 4.
func R2() *pdb.Relation {
	r := pdb.NewRelation("R2", "name", "job")
	r.Append(
		pdb.NewTuple("t21", 1.0,
			pdb.MustDist(
				pdb.Alternative{Value: pdb.V("John"), P: 0.7},
				pdb.Alternative{Value: pdb.V("Jon"), P: 0.3}),
			pdb.Certain("confectionist")),
		pdb.NewTuple("t22", 0.8,
			pdb.MustDist(
				pdb.Alternative{Value: pdb.V("Tim"), P: 0.7},
				pdb.Alternative{Value: pdb.V("Kim"), P: 0.3}),
			pdb.Certain("mechanic")),
		pdb.NewTuple("t23", 0.7,
			pdb.Certain("Timothy"),
			pdb.MustDist(
				pdb.Alternative{Value: pdb.V("mechanist"), P: 0.8},
				pdb.Alternative{Value: pdb.V("engineer"), P: 0.2})),
	)
	return r
}

// MuStarJobs is the finite expansion used for the paper's 'mu*' pattern
// value (a uniform distribution over all jobs starting with "mu"; the paper
// names "musician" as an example). Fig. 8's world I2 instantiates it as
// "musician".
var MuStarJobs = []string{"musician", "muralist"}

// R3 returns the x-relation ℛ3 of Fig. 5.
func R3() *pdb.XRelation {
	r := pdb.NewXRelation("R3", "name", "job")
	r.Append(
		pdb.NewXTuple("t31",
			pdb.NewAlt(0.7, "John", "pilot"),
			pdb.NewAltDists(0.3, pdb.Certain("Johan"), pdb.Uniform(MuStarJobs...))),
		pdb.NewXTuple("t32",
			pdb.NewAlt(0.3, "Tim", "mechanic"),
			pdb.NewAlt(0.2, "Jim", "mechanic"),
			pdb.NewAlt(0.4, "Jim", "baker")),
	)
	return r
}

// R4 returns the x-relation ℛ4 of Fig. 5.
func R4() *pdb.XRelation {
	r := pdb.NewXRelation("R4", "name", "job")
	r.Append(
		pdb.NewXTuple("t41",
			pdb.NewAlt(0.8, "John", "pilot"),
			pdb.NewAlt(0.2, "Johan", "pianist")),
		pdb.NewXTuple("t42",
			pdb.NewAlt(0.8, "Tom", "mechanic")),
		pdb.NewXTuple("t43",
			pdb.NewAltDists(0.2, pdb.Certain("John"), pdb.CertainNull()),
			pdb.NewAlt(0.6, "Sean", "pilot")),
	)
	return r
}

// R34 returns ℛ34 = ℛ3 ∪ ℛ4 used throughout Sec. V.
func R34() *pdb.XRelation {
	u, err := R3().Union("R34", R4())
	if err != nil {
		panic(err)
	}
	return u
}
