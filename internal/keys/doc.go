// Package keys builds sorting and blocking key values from probabilistic
// tuples (Sec. V of the paper). A key definition concatenates character
// prefixes of attribute values — the paper's example takes the first three
// characters of name plus the first two of job ("Johpi").
//
// For probabilistic data a key value is itself uncertain: XTupleKeyDist
// returns the distribution of key values an x-tuple can take (Fig. 13),
// obtained by pushing the key creation function through the alternatives
// and their uncertain attribute values. A ⊥ attribute contributes the empty
// string, so the world (John, ⊥) of t43 yields the short key "Joh" exactly
// as in the paper's figures.
//
// The search-space reduction methods consume these keys in two forms:
// conflict-resolved certain keys (Def.FromValues over a fusion
// strategy's resolution, the V-A.2/V-B certain variants — also the
// per-tuple unit the incremental indexes maintain their key→bucket and
// ordered-key structures with) and the full key distribution
// (per-alternative and ranked variants).
package keys
