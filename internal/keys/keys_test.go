package keys

import (
	"math"
	"testing"

	"probdedup/internal/paperdata"
	"probdedup/internal/pdb"
)

func almost(a, b float64) bool { return math.Abs(a-b) <= 1e-9 }

// paperKey is the paper's sorting key: first three characters of name plus
// first two characters of job.
func paperKey() Def {
	return NewDef(Part{Attr: 0, Prefix: 3}, Part{Attr: 1, Prefix: 2})
}

func TestParseDef(t *testing.T) {
	schema := []string{"name", "job"}
	d, err := ParseDef("name:3+job:2", schema)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Parts) != 2 || d.Parts[0] != (Part{0, 3}) || d.Parts[1] != (Part{1, 2}) {
		t.Fatalf("parsed %+v", d)
	}
	if got := d.String(schema); got != "name:3+job:2" {
		t.Fatalf("String = %q", got)
	}
	// Whole-attribute part.
	d2, err := ParseDef("job", schema)
	if err != nil {
		t.Fatal(err)
	}
	if d2.Parts[0] != (Part{1, 0}) {
		t.Fatalf("parsed %+v", d2)
	}
	for _, bad := range []string{"", "nope:3", "name:x", "name:0", "name:-1"} {
		if _, err := ParseDef(bad, schema); err == nil {
			t.Errorf("ParseDef(%q) must fail", bad)
		}
	}
}

func TestFromValues(t *testing.T) {
	d := paperKey()
	cases := []struct {
		name, job string
		nullJob   bool
		want      string
	}{
		{"John", "pilot", false, "Johpi"},
		{"Johan", "musician", false, "Johmu"},
		{"Tim", "mechanic", false, "Timme"},
		{"Jim", "baker", false, "Jimba"},
		{"John", "", true, "Joh"}, // Fig. 9/13: ⊥ job gives the short key
		{"Jo", "p", false, "Jop"}, // short values keep their full length
	}
	for _, c := range cases {
		job := pdb.V(c.job)
		if c.nullJob {
			job = pdb.Null
		}
		got := d.FromValues([]pdb.Value{pdb.V(c.name), job})
		if got != c.want {
			t.Errorf("key(%s,%s) = %q, want %q", c.name, c.job, got, c.want)
		}
	}
}

func TestFromCertainTuple(t *testing.T) {
	d := paperKey()
	tu := pdb.NewTuple("t", 1, pdb.Certain("John"), pdb.Certain("pilot"))
	if got := d.FromCertainTuple(tu); got != "Johpi" {
		t.Fatalf("key = %q", got)
	}
	// Falls back to the most probable value for uncertain tuples.
	tu2 := pdb.NewTuple("t", 1,
		pdb.MustDist(pdb.Alternative{Value: pdb.V("Tim"), P: 0.6}, pdb.Alternative{Value: pdb.V("Tom"), P: 0.4}),
		pdb.Certain("machinist"))
	if got := d.FromCertainTuple(tu2); got != "Timma" {
		t.Fatalf("key = %q", got)
	}
}

func TestFig13KeyDistributions(t *testing.T) {
	// E08 fixture: the uncertain key values of relation ℛ34 (Fig. 13),
	// unconditioned so probabilities display as in the figure.
	d := paperKey()
	r := paperdata.R34()
	want := map[string][]KeyProb{
		"t31": {{"Johpi", 0.7}, {"Johmu", 0.3}},
		"t32": {{"Jimba", 0.4}, {"Timme", 0.3}, {"Jimme", 0.2}},
		"t41": {{"Johpi", 1.0}},
		"t42": {{"Tomme", 0.8}},
		"t43": {{"Seapi", 0.6}, {"Joh", 0.2}},
	}
	for id, wantKeys := range want {
		got := d.XTupleKeyDist(r.TupleByID(id), false)
		if len(got) != len(wantKeys) {
			t.Errorf("%s: %v, want %v", id, got, wantKeys)
			continue
		}
		for i, w := range wantKeys {
			if got[i].Key != w.Key || !almost(got[i].P, w.P) {
				t.Errorf("%s[%d] = %+v, want %+v", id, i, got[i], w)
			}
		}
	}
}

func TestT41CertainKeyDespiteTwoAlternatives(t *testing.T) {
	// Fig. 13's highlighted observation: (John,pilot)→Johpi and
	// (Johan,pianist)→Johpi merge into one certain key value.
	d := paperKey()
	t41 := paperdata.R4().TupleByID("t41")
	ks := d.XTupleKeyDist(t41, false)
	if len(ks) != 1 || ks[0].Key != "Johpi" || !almost(ks[0].P, 1.0) {
		t.Fatalf("t41 key dist = %v", ks)
	}
}

func TestMuStarKeysMerge(t *testing.T) {
	// t31's mu* jobs (musician, muralist) share the prefix "mu", so the key
	// distribution merges them into Johmu with the full 0.3.
	d := paperKey()
	t31 := paperdata.R3().TupleByID("t31")
	ks := d.XTupleKeyDist(t31, false)
	if len(ks) != 2 {
		t.Fatalf("t31 keys = %v", ks)
	}
	if ks[1].Key != "Johmu" || !almost(ks[1].P, 0.3) {
		t.Fatalf("t31 keys = %v", ks)
	}
}

func TestConditionedKeyDist(t *testing.T) {
	// t42 has p=0.8; conditioning renormalizes to a certain key.
	d := paperKey()
	t42 := paperdata.R4().TupleByID("t42")
	ks := d.XTupleKeyDist(t42, true)
	if len(ks) != 1 || !almost(ks[0].P, 1.0) {
		t.Fatalf("conditioned key dist = %v", ks)
	}
	// Sum of conditioned probabilities is 1 for every x-tuple.
	for _, x := range paperdata.R34().Tuples {
		total := 0.0
		for _, kp := range d.XTupleKeyDist(x, true) {
			total += kp.P
		}
		if !almost(total, 1) {
			t.Errorf("%s: conditioned key mass %v", x.ID, total)
		}
	}
}

func TestTupleKeyDist(t *testing.T) {
	// Dependency-free t13 {Tim .6, Tom .4} × machinist, p=0.6:
	// unconditioned keys Timma .36, Tomma .24; conditioned .6/.4.
	d := paperKey()
	t13 := paperdata.R1().TupleByID("t13")
	got := d.TupleKeyDist(t13, false)
	if len(got) != 2 || got[0].Key != "Timma" || !almost(got[0].P, 0.36) ||
		got[1].Key != "Tomma" || !almost(got[1].P, 0.24) {
		t.Fatalf("unconditioned = %v", got)
	}
	cond := d.TupleKeyDist(t13, true)
	if !almost(cond[0].P, 0.6) || !almost(cond[1].P, 0.4) {
		t.Fatalf("conditioned = %v", cond)
	}
}

func TestAllNullKeyIsEmptyString(t *testing.T) {
	d := paperKey()
	x := pdb.NewXTuple("t", pdb.NewAltDists(1, pdb.CertainNull(), pdb.CertainNull()))
	ks := d.XTupleKeyDist(x, false)
	if len(ks) != 1 || ks[0].Key != "" || !almost(ks[0].P, 1) {
		t.Fatalf("all-⊥ key dist = %v", ks)
	}
}

func TestBlockingKeyFig14(t *testing.T) {
	// Fig. 14 uses first char of name + first char of job.
	d := NewDef(Part{Attr: 0, Prefix: 1}, Part{Attr: 1, Prefix: 1})
	r3 := paperdata.R3()
	t31 := r3.TupleByID("t31")
	ks := d.XTupleKeyDist(t31, false)
	// (John,pilot)→"Jp" .7, (Johan,mu*)→"Jm" .3.
	if len(ks) != 2 || ks[0].Key != "Jp" || !almost(ks[0].P, 0.7) || ks[1].Key != "Jm" {
		t.Fatalf("t31 blocking keys = %v", ks)
	}
	// t43 (John,⊥) yields the job-less block key "J".
	t43 := paperdata.R4().TupleByID("t43")
	ks = d.XTupleKeyDist(t43, false)
	found := false
	for _, kp := range ks {
		if kp.Key == "J" && almost(kp.P, 0.2) {
			found = true
		}
	}
	if !found {
		t.Fatalf("t43 blocking keys = %v, want J:0.2", ks)
	}
}
