package keys

import "testing"

// FuzzParseDef: parsing arbitrary key specs must never panic, and accepted
// definitions must reference only valid attributes with positive prefixes.
func FuzzParseDef(f *testing.F) {
	f.Add("name:3+job:2")
	f.Add("name")
	f.Add("name:0")
	f.Add("+")
	f.Add("job:2+job:2+name")
	f.Add("name:-1")
	f.Add("")
	f.Fuzz(func(t *testing.T, src string) {
		schema := []string{"name", "job"}
		d, err := ParseDef(src, schema)
		if err != nil {
			return
		}
		if len(d.Parts) == 0 {
			t.Fatal("accepted empty definition")
		}
		for _, p := range d.Parts {
			if p.Attr < 0 || p.Attr >= len(schema) {
				t.Fatalf("accepted attribute %d", p.Attr)
			}
			if p.Prefix < 0 {
				t.Fatalf("accepted prefix %d", p.Prefix)
			}
		}
		// Accepted definitions must round-trip through String.
		d2, err := ParseDef(d.String(schema), schema)
		if err != nil {
			t.Fatalf("String() output failed to parse: %v", err)
		}
		if len(d2.Parts) != len(d.Parts) {
			t.Fatal("String() round trip changed part count")
		}
	})
}
