package keys

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"probdedup/internal/pdb"
)

// Part is one component of a key definition: the first Prefix runes of
// attribute Attr (Prefix ≤ 0 takes the whole value).
type Part struct {
	Attr   int
	Prefix int
}

// Def is a key definition: the concatenation of its parts.
type Def struct {
	Parts []Part
}

// NewDef builds a key definition from (attr, prefix) pairs.
func NewDef(parts ...Part) Def { return Def{Parts: parts} }

// ParseDef parses a textual key definition like "name:3+job:2" against a
// schema. A missing ":n" takes the whole attribute value.
func ParseDef(src string, schema []string) (Def, error) {
	var def Def
	if strings.TrimSpace(src) == "" {
		return def, fmt.Errorf("keys: empty key definition")
	}
	for _, part := range strings.Split(src, "+") {
		name, prefStr, hasPrefix := strings.Cut(strings.TrimSpace(part), ":")
		attr := -1
		for i, s := range schema {
			if strings.EqualFold(s, name) {
				attr = i
				break
			}
		}
		if attr < 0 {
			return def, fmt.Errorf("keys: unknown attribute %q", name)
		}
		prefix := 0
		if hasPrefix {
			n, err := strconv.Atoi(prefStr)
			if err != nil || n <= 0 {
				return def, fmt.Errorf("keys: bad prefix %q in %q", prefStr, part)
			}
			prefix = n
		}
		def.Parts = append(def.Parts, Part{Attr: attr, Prefix: prefix})
	}
	return def, nil
}

// String renders the definition against a schema ("name:3+job:2").
func (d Def) String(schema []string) string {
	parts := make([]string, len(d.Parts))
	for i, p := range d.Parts {
		name := fmt.Sprintf("#%d", p.Attr)
		if p.Attr < len(schema) {
			name = schema[p.Attr]
		}
		if p.Prefix > 0 {
			parts[i] = fmt.Sprintf("%s:%d", name, p.Prefix)
		} else {
			parts[i] = name
		}
	}
	return strings.Join(parts, "+")
}

// runePrefix returns the first n runes of s by slicing (no []rune
// conversion: a rune prefix is always a byte prefix).
func runePrefix(s string, n int) string {
	if len(s) <= n {
		return s // ≤ n bytes implies ≤ n runes
	}
	seen := 0
	for i := range s {
		if seen == n {
			return s[:i]
		}
		seen++
	}
	return s
}

// FromValues builds the key string from concrete attribute values.
// ⊥ contributes the empty string.
func (d Def) FromValues(vals []pdb.Value) string {
	var b strings.Builder
	for _, p := range d.Parts {
		if p.Attr >= len(vals) || vals[p.Attr].IsNull() {
			continue
		}
		s := vals[p.Attr].S()
		if p.Prefix > 0 {
			s = runePrefix(s, p.Prefix)
		}
		b.WriteString(s)
	}
	return b.String()
}

// FromCertainTuple builds the key of a certain tuple (e.g. one materialized
// from a possible world): every attribute distribution must be certain; the
// most probable value is used otherwise, making the function total.
func (d Def) FromCertainTuple(t *pdb.Tuple) string {
	var b strings.Builder
	for _, p := range d.Parts {
		if p.Attr >= len(t.Attrs) {
			continue
		}
		v, _ := t.Attrs[p.Attr].Mode()
		if v.IsNull() {
			continue
		}
		s := v.S()
		if p.Prefix > 0 {
			s = runePrefix(s, p.Prefix)
		}
		b.WriteString(s)
	}
	return b.String()
}

// AltKeyDist returns the distribution of key values of a single alternative
// tuple, whose attribute values may themselves be uncertain (e.g. 'mu*').
// The returned distribution sums to 1 (the alternative's own probability is
// applied by the caller). Key values never fold into ⊥: a tuple whose every
// key attribute is ⊥ gets the empty-string key.
func (d Def) AltKeyDist(alt pdb.Alt) map[string]float64 {
	out := map[string]float64{"": 1}
	// Incrementally take the cross product over the parts' attribute
	// supports, appending prefixes.
	for _, p := range d.Parts {
		if p.Attr >= len(alt.Values) {
			continue
		}
		support := alt.Values[p.Attr].Support()
		next := make(map[string]float64, len(out)*len(support))
		for prefix, pp := range out {
			for _, s := range support {
				piece := ""
				if !s.Value.IsNull() {
					piece = s.Value.S()
					if p.Prefix > 0 {
						piece = runePrefix(piece, p.Prefix)
					}
				}
				next[prefix+piece] += pp * s.P
			}
		}
		out = next
	}
	return out
}

// XTupleKeyDist returns the probabilistic key value of an x-tuple as pairs
// of key string and probability, in descending probability order (ties by
// key string). With cond=true probabilities are conditioned on tuple
// membership (divide by p(t)) and sum to 1; otherwise they sum to p(t) as
// displayed in Fig. 13. Alternatives producing the same key value merge
// (Fig. 13's t41 has the certain key "Johpi" despite two alternatives).
func (d Def) XTupleKeyDist(x *pdb.XTuple, cond bool) []KeyProb {
	acc := map[string]float64{}
	for _, alt := range x.Alts {
		for k, p := range d.AltKeyDist(alt) {
			acc[k] += p * alt.P
		}
	}
	if cond {
		pt := x.P()
		if pt > pdb.Eps {
			for k := range acc {
				acc[k] /= pt
			}
		}
	}
	out := make([]KeyProb, 0, len(acc))
	for k, p := range acc {
		out = append(out, KeyProb{Key: k, P: p})
	}
	sortKeyProbs(out)
	return out
}

// TupleKeyDist is XTupleKeyDist for a dependency-free tuple: the key
// distribution induced by the cross product of the attribute distributions.
func (d Def) TupleKeyDist(t *pdb.Tuple, cond bool) []KeyProb {
	return d.XTupleKeyDist(t.ExpandAlternatives(), cond)
}

// KeyProb is one possible key value of a tuple with its probability.
type KeyProb struct {
	Key string
	P   float64
}

func sortKeyProbs(ps []KeyProb) {
	// Descending probability, ties by key for determinism.
	sort.SliceStable(ps, func(i, j int) bool {
		if ps[i].P != ps[j].P {
			return ps[i].P > ps[j].P
		}
		return ps[i].Key < ps[j].Key
	})
}
