package fusion

import (
	"math/rand"
	"testing"

	"probdedup/internal/pdb"
)

// randomXTuple builds a valid random x-tuple for property tests.
func randomXTuple(rng *rand.Rand, id string, arity int) *pdb.XTuple {
	n := 1 + rng.Intn(3)
	alts := make([]pdb.Alt, 0, n)
	remaining := 1.0
	for i := 0; i < n; i++ {
		p := remaining
		if i < n-1 {
			p = rng.Float64() * remaining
		}
		if p <= 1e-6 {
			continue
		}
		remaining -= p
		vals := make([]pdb.Dist, arity)
		for j := range vals {
			if rng.Float64() < 0.2 {
				vals[j] = pdb.CertainNull()
			} else {
				vals[j] = pdb.Certain(word(rng))
			}
		}
		alts = append(alts, pdb.Alt{Values: vals, P: p})
	}
	if len(alts) == 0 {
		alts = append(alts, pdb.NewAlt(1, make([]string, arity)...))
	}
	return &pdb.XTuple{ID: id, Alts: alts}
}

func word(rng *rand.Rand) string {
	b := make([]byte, 1+rng.Intn(4))
	for i := range b {
		b[i] = byte('a' + rng.Intn(4))
	}
	return string(b)
}

// TestQuickMergePreservesMass: merging two x-tuples with any positive
// weights yields a valid x-tuple whose membership probability is 1 (both
// sides conditioned) and whose alternatives are a subset of the inputs'
// value combinations.
func TestQuickMergePreservesMass(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 200; trial++ {
		a := randomXTuple(rng, "a", 2)
		b := randomXTuple(rng, "b", 2)
		wa := 0.1 + rng.Float64()
		wb := 0.1 + rng.Float64()
		m, err := MergeXTuples("m", a, b, wa, wb)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := m.Validate(2); err != nil {
			t.Fatalf("trial %d: %v (merged %v)", trial, err, m)
		}
		if p := m.P(); p < 1-1e-6 || p > 1+1e-6 {
			t.Fatalf("trial %d: merged p(t) = %v, want 1", trial, p)
		}
		// Every merged alternative's values come from a or b.
		keys := map[string]bool{}
		for _, src := range [][]pdb.Alt{a.Alts, b.Alts} {
			for _, alt := range src {
				keys[altKeyString(alt)] = true
			}
		}
		for _, alt := range m.Alts {
			if !keys[altKeyString(alt)] {
				t.Fatalf("trial %d: merged alternative not from inputs", trial)
			}
		}
	}
}

func altKeyString(alt pdb.Alt) string {
	s := ""
	for _, d := range alt.Values {
		s += d.String() + "\x1f"
	}
	return s
}

// TestQuickResolveXPicksExistingWorld: the most probable resolution always
// corresponds to some concrete alternative's value choices.
func TestQuickResolveXPicksExistingWorld(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 200; trial++ {
		x := randomXTuple(rng, "x", 3)
		vals := MostProbable{}.ResolveX(x)
		if len(vals) != 3 {
			t.Fatalf("trial %d: arity %d", trial, len(vals))
		}
		found := false
		for _, alt := range x.Alts {
			match := true
			for i, v := range vals {
				if alt.Values[i].P(v) <= 0 {
					match = false
					break
				}
			}
			if match {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("trial %d: resolution %v not realizable by any alternative of %v", trial, vals, x)
		}
	}
}
