// Package fusion provides conflict resolution strategies known from the
// fusion of certain data (Bleiholder & Naumann), used in Sec. V-A.2 to
// create certain key values from probabilistic tuples, and a simple
// probabilistic merge of matched tuples for building integration results.
package fusion

import (
	"fmt"
	"strings"

	"probdedup/internal/pdb"
)

// Strategy resolves an x-tuple's uncertainty into a single certain tuple.
type Strategy interface {
	// Name identifies the strategy in reports.
	Name() string
	// ResolveX collapses an x-tuple into certain attribute values.
	ResolveX(x *pdb.XTuple) []pdb.Value
	// Resolve collapses a dependency-free tuple into certain values.
	Resolve(t *pdb.Tuple) []pdb.Value
}

// MostProbable is the metadata-based deciding strategy of Sec. V-A.2: pick
// the most probable alternative, then the most probable value of every
// remaining uncertain attribute. For key creation this is equivalent to
// taking the most probable world (as the paper notes), so the matchings it
// produces are a subset of those of the multi-pass approach.
type MostProbable struct{}

// Name implements Strategy.
func (MostProbable) Name() string { return "most-probable" }

// ResolveX implements Strategy.
func (MostProbable) ResolveX(x *pdb.XTuple) []pdb.Value {
	// The most probable concrete instantiation maximizes
	// alt.P · Π mode(attr): with per-attribute independence inside an
	// alternative the argmax factorizes per attribute, but the alternative
	// choice must account for the mode products. The argmax pass works on
	// mode probabilities alone; only the winning alternative's values are
	// materialized (this runs per tuple on the blocking/SNM key paths).
	best, bestP := -1, -1.0
	for idx, alt := range x.Alts {
		p := alt.P
		for _, d := range alt.Values {
			_, vp := d.Mode()
			p *= vp
		}
		if p > bestP+pdb.Eps {
			bestP, best = p, idx
		}
	}
	if best < 0 {
		return nil
	}
	alt := x.Alts[best]
	vals := make([]pdb.Value, len(alt.Values))
	for i, d := range alt.Values {
		vals[i], _ = d.Mode()
	}
	return vals
}

// Resolve implements Strategy.
func (MostProbable) Resolve(t *pdb.Tuple) []pdb.Value {
	vals := make([]pdb.Value, len(t.Attrs))
	for i, d := range t.Attrs {
		vals[i], _ = d.Mode()
	}
	return vals
}

// MostProbableAlternative resolves to the most probable alternative
// (ignoring attribute-level modes when ranking alternatives), then takes
// per-attribute modes. It differs from MostProbable when a less probable
// alternative has more concentrated attribute distributions.
type MostProbableAlternative struct{}

// Name implements Strategy.
func (MostProbableAlternative) Name() string { return "most-probable-alternative" }

// ResolveX implements Strategy.
func (MostProbableAlternative) ResolveX(x *pdb.XTuple) []pdb.Value {
	alt := x.Alts[x.MostProbableAlt()]
	vals := make([]pdb.Value, len(alt.Values))
	for i, d := range alt.Values {
		vals[i], _ = d.Mode()
	}
	return vals
}

// Resolve implements Strategy.
func (MostProbableAlternative) Resolve(t *pdb.Tuple) []pdb.Value {
	return MostProbable{}.Resolve(t)
}

// ResolveRelation applies a strategy to every tuple of an x-relation and
// returns the certain relation (p(t)=1 everywhere), e.g. as input to
// conventional key creation.
func ResolveRelation(s Strategy, xr *pdb.XRelation) *pdb.Relation {
	r := pdb.NewRelation(xr.Name, xr.Schema...)
	for _, x := range xr.Tuples {
		vals := s.ResolveX(x)
		attrs := make([]pdb.Dist, len(vals))
		for i, v := range vals {
			if v.IsNull() {
				attrs[i] = pdb.CertainNull()
			} else {
				attrs[i] = pdb.Certain(v.S())
			}
		}
		r.Append(pdb.NewTuple(x.ID, 1, attrs...))
	}
	return r
}

// MergeXTuples fuses two matched x-tuples into a single probabilistic
// x-tuple whose alternatives are the union of both inputs' alternatives
// with probabilities blended by the source weights wa and wb
// (wa+wb must be positive; they are normalized internally). Alternatives
// with identical attribute values merge. This realizes the outlook of
// Sec. VI: uncertainty arising in duplicate detection is represented
// directly in the probabilistic result.
func MergeXTuples(id string, a, b *pdb.XTuple, wa, wb float64) (*pdb.XTuple, error) {
	if wa < 0 || wb < 0 || wa+wb <= 0 {
		return nil, fmt.Errorf("fusion: invalid weights %v, %v", wa, wb)
	}
	na, nb := wa/(wa+wb), wb/(wa+wb)
	type altKey string
	var kb strings.Builder
	keyOf := func(alt pdb.Alt) altKey {
		kb.Reset()
		for _, d := range alt.Values {
			kb.WriteString(d.String())
			kb.WriteByte(0x1f)
		}
		return altKey(kb.String())
	}
	merged := map[altKey]*pdb.Alt{}
	var order []altKey
	add := func(alts []pdb.Alt, scale, srcP float64) {
		if srcP <= pdb.Eps {
			return
		}
		for _, alt := range alts {
			k := keyOf(alt)
			// Condition each source on membership so the merged tuple's
			// alternatives reflect value uncertainty, not source membership.
			p := scale * alt.P / srcP
			if ex, ok := merged[k]; ok {
				ex.P += p
				continue
			}
			cp := pdb.Alt{Values: append([]pdb.Dist(nil), alt.Values...), P: p}
			merged[k] = &cp
			order = append(order, k)
		}
	}
	add(a.Alts, na, a.P())
	add(b.Alts, nb, b.P())
	out := &pdb.XTuple{ID: id}
	for _, k := range order {
		out.Alts = append(out.Alts, *merged[k])
	}
	return out, nil
}
