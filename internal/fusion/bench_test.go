package fusion

import (
	"fmt"
	"testing"

	"probdedup/internal/pdb"
)

// wideXTuple builds an x-tuple with the given number of attributes per
// alternative — the shape that made the old string-concatenation
// alternative key quadratic in the attribute count.
func wideXTuple(id string, alts, attrs int) *pdb.XTuple {
	x := &pdb.XTuple{ID: id}
	p := 1.0 / float64(alts)
	for a := 0; a < alts; a++ {
		vals := make([]pdb.Dist, attrs)
		for k := 0; k < attrs; k++ {
			vals[k] = pdb.Certain(fmt.Sprintf("%s-value-%d-%d", id, a, k))
		}
		x.Alts = append(x.Alts, pdb.Alt{Values: vals, P: p})
	}
	return x
}

// BenchmarkMergeXTuplesWide guards the alternative-key construction of
// MergeXTuples: with += per attribute it was O(attrs²) bytes per
// alternative; the strings.Builder version is linear.
func BenchmarkMergeXTuplesWide(b *testing.B) {
	for _, attrs := range []int{8, 64, 256} {
		b.Run(fmt.Sprintf("attrs=%d", attrs), func(b *testing.B) {
			x1 := wideXTuple("a", 4, attrs)
			x2 := wideXTuple("b", 4, attrs)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := MergeXTuples("a+b", x1, x2, 1, 1); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// TestMergeXTuplesWideKeysDistinct pins the key separator semantics the
// builder rewrite must preserve: per-attribute separators keep
// ("ab","c") distinct from ("a","bc").
func TestMergeXTuplesWideKeysDistinct(t *testing.T) {
	x1 := &pdb.XTuple{ID: "x1", Alts: []pdb.Alt{
		{Values: []pdb.Dist{pdb.Certain("ab"), pdb.Certain("c")}, P: 0.5},
		{Values: []pdb.Dist{pdb.Certain("a"), pdb.Certain("bc")}, P: 0.5},
	}}
	x2 := &pdb.XTuple{ID: "x2", Alts: []pdb.Alt{
		{Values: []pdb.Dist{pdb.Certain("ab"), pdb.Certain("c")}, P: 1},
	}}
	merged, err := MergeXTuples("m", x1, x2, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	// ("ab","c") from both sides merges; ("a","bc") must stay separate.
	if len(merged.Alts) != 2 {
		t.Fatalf("merged into %d alternatives, want 2: %+v", len(merged.Alts), merged.Alts)
	}
}
