package fusion

import (
	"math"
	"testing"

	"probdedup/internal/paperdata"
	"probdedup/internal/pdb"
)

func almost(a, b float64) bool { return math.Abs(a-b) <= 1e-9 }

func TestMostProbableResolveX(t *testing.T) {
	// t32: alternatives (Tim,mechanic).3, (Jim,mechanic).2, (Jim,baker).4 →
	// most probable world picks (Jim,baker), as in Fig. 10's key "Jimba".
	t32 := paperdata.R3().TupleByID("t32")
	vals := MostProbable{}.ResolveX(t32)
	if vals[0].S() != "Jim" || vals[1].S() != "baker" {
		t.Fatalf("resolved %v", vals)
	}
}

func TestMostProbableAccountsForAttributeModes(t *testing.T) {
	// Alternative A has p=0.5 but a 50/50 attribute split (best world 0.25);
	// alternative B has p=0.4 with a certain value (best world 0.4). The
	// most probable *world* comes from B.
	x := pdb.NewXTuple("x",
		pdb.NewAltDists(0.5, pdb.MustDist(
			pdb.Alternative{Value: pdb.V("a1"), P: 0.5},
			pdb.Alternative{Value: pdb.V("a2"), P: 0.5})),
		pdb.NewAltDists(0.4, pdb.Certain("b")),
	)
	if got := (MostProbable{}).ResolveX(x); got[0].S() != "b" {
		t.Fatalf("MostProbable must pick the most probable world, got %v", got)
	}
	// MostProbableAlternative ranks by alternative probability alone.
	if got := (MostProbableAlternative{}).ResolveX(x); got[0].S() != "a1" && got[0].S() != "a2" {
		t.Fatalf("MostProbableAlternative must pick alternative A, got %v", got)
	}
}

func TestResolveDependencyFree(t *testing.T) {
	t13 := paperdata.R1().TupleByID("t13")
	vals := MostProbable{}.Resolve(t13)
	if vals[0].S() != "Tim" || vals[1].S() != "machinist" {
		t.Fatalf("resolved %v", vals)
	}
	// ⊥ mode survives resolution: t11's job has mode machinist, but a
	// mostly-null dist resolves to ⊥.
	tu := pdb.NewTuple("x", 1, pdb.MustDist(pdb.Alternative{Value: pdb.V("v"), P: 0.2}))
	if got := (MostProbable{}).Resolve(tu); !got[0].IsNull() {
		t.Fatalf("want ⊥, got %v", got[0])
	}
}

func TestResolveRelationMatchesFig10(t *testing.T) {
	// Fig. 10: most-probable-alternative key creation over ℛ34 gives keys
	// Jimba(t32), Johpi(t31), Johpi(t41), Seapi(t43), Tomme(t42).
	r := ResolveRelation(MostProbable{}, paperdata.R34())
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	want := map[string][2]string{
		"t31": {"John", "pilot"},
		"t32": {"Jim", "baker"},
		"t41": {"John", "pilot"},
		"t42": {"Tom", "mechanic"},
		"t43": {"Sean", "pilot"},
	}
	for id, w := range want {
		tu := r.TupleByID(id)
		if tu.Attrs[0].String() != w[0] || tu.Attrs[1].String() != w[1] {
			t.Errorf("%s resolved to (%v,%v), want %v", id, tu.Attrs[0], tu.Attrs[1], w)
		}
	}
}

func TestStrategyNames(t *testing.T) {
	if (MostProbable{}).Name() == "" || (MostProbableAlternative{}).Name() == "" {
		t.Fatal("names must be non-empty")
	}
	if (MostProbable{}).Name() == (MostProbableAlternative{}).Name() {
		t.Fatal("names must differ")
	}
}

func TestMergeXTuples(t *testing.T) {
	a := pdb.NewXTuple("a",
		pdb.NewAlt(0.6, "John", "pilot"),
		pdb.NewAlt(0.4, "Jon", "pilot"))
	b := pdb.NewXTuple("b",
		pdb.NewAlt(0.8, "John", "pilot")) // maybe tuple, p=0.8
	m, err := MergeXTuples("ab", a, b, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(2); err != nil {
		t.Fatal(err)
	}
	// (John,pilot): 0.5·0.6 + 0.5·(0.8/0.8) = 0.8; (Jon,pilot): 0.5·0.4.
	if len(m.Alts) != 2 {
		t.Fatalf("merged %d alternatives", len(m.Alts))
	}
	if !almost(m.Alts[0].P, 0.8) || !almost(m.Alts[1].P, 0.2) {
		t.Fatalf("merged probabilities %v, %v", m.Alts[0].P, m.Alts[1].P)
	}
	if !almost(m.P(), 1.0) {
		t.Fatalf("merged p(t) = %v", m.P())
	}
	// Weight normalization: (2,1) weights favour a.
	m2, err := MergeXTuples("ab", a, b, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(m2.Alts[1].P, 0.4*2.0/3) {
		t.Fatalf("weighted merge = %v", m2.Alts[1].P)
	}
	// Invalid weights.
	if _, err := MergeXTuples("x", a, b, 0, 0); err == nil {
		t.Fatal("want error for zero weights")
	}
	if _, err := MergeXTuples("x", a, b, -1, 2); err == nil {
		t.Fatal("want error for negative weight")
	}
}
