package worlds

import (
	"math/rand"
	"testing"

	"probdedup/internal/paperdata"
)

func BenchmarkEnumerateR34(b *testing.B) {
	xr := paperdata.R34()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Enumerate(xr, true, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMostProbable(b *testing.B) {
	xr := paperdata.R34()
	for i := 0; i < b.N; i++ {
		_ = MostProbable(xr, true)
	}
}

func BenchmarkTopK16(b *testing.B) {
	xr := paperdata.R34()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = TopK(xr, true, 16)
	}
}

func BenchmarkDissimilar4(b *testing.B) {
	xr := paperdata.R34()
	for i := 0; i < b.N; i++ {
		_ = Dissimilar(xr, true, 4, 16)
	}
}

func BenchmarkSample(b *testing.B) {
	xr := paperdata.R34()
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < b.N; i++ {
		_ = Sample(xr, false, rng)
	}
}
