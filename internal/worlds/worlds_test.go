package worlds

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"probdedup/internal/paperdata"
	"probdedup/internal/pdb"
)

func almost(a, b float64) bool { return math.Abs(a-b) <= 1e-9 }

// pairT32T42 builds the x-relation {t32, t42} of Fig. 7.
func pairT32T42() *pdb.XRelation {
	t32 := paperdata.R3().TupleByID("t32")
	t42 := paperdata.R4().TupleByID("t42")
	return PairRelation([]string{"name", "job"}, t32, t42)
}

func TestFig7WorldProbabilities(t *testing.T) {
	ws, err := Enumerate(pairT32T42(), false, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) != 8 {
		t.Fatalf("Fig. 7 has 8 possible worlds, got %d", len(ws))
	}
	// Collect probabilities keyed by (t32 choice, t42 choice).
	byKey := map[string]float64{}
	for _, w := range ws {
		byKey[w.Key()] = w.P
	}
	total := 0.0
	for _, p := range byKey {
		total += p
	}
	if !almost(total, 1) {
		t.Fatalf("world probabilities must sum to 1, got %v", total)
	}
	// The paper's eight worlds: I1..I8 with probabilities
	// .24 .16 .32 .08 .06 .04 .08 .02.
	wantProbs := []float64{0.24, 0.16, 0.32, 0.08, 0.06, 0.04, 0.08, 0.02}
	got := make([]float64, 0, len(ws))
	for _, w := range ws {
		got = append(got, w.P)
	}
	sort.Float64s(got)
	sort.Float64s(wantProbs)
	for i := range wantProbs {
		if !almost(got[i], wantProbs[i]) {
			t.Fatalf("sorted world probabilities %v, want %v", got, wantProbs)
		}
	}
}

func TestFig7Conditioning(t *testing.T) {
	xr := pairT32T42()
	if pb := MembershipProbability(xr); !almost(pb, 0.72) {
		t.Fatalf("P(B) = %v, want 0.72", pb)
	}
	ws, err := Enumerate(xr, true, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) != 3 {
		t.Fatalf("conditioning keeps I1,I2,I3 only; got %d worlds", len(ws))
	}
	total := 0.0
	probs := map[string]float64{}
	for _, w := range ws {
		total += w.P
		// Identify worlds by t32's name value.
		name := w.Choices[0].Values[0].S()
		job := w.Choices[0].Values[1].S()
		probs[name+"/"+job] = w.P
	}
	if !almost(total, 1) {
		t.Fatalf("conditioned worlds must renormalize to 1, got %v", total)
	}
	// P(I1|B)=0.24/0.72=1/3, P(I2|B)=0.16/0.72=2/9, P(I3|B)=0.32/0.72=4/9.
	if !almost(probs["Tim/mechanic"], 1.0/3) {
		t.Errorf("P(I1|B) = %v, want 1/3", probs["Tim/mechanic"])
	}
	if !almost(probs["Jim/mechanic"], 2.0/9) {
		t.Errorf("P(I2|B) = %v, want 2/9", probs["Jim/mechanic"])
	}
	if !almost(probs["Jim/baker"], 4.0/9) {
		t.Errorf("P(I3|B) = %v, want 4/9", probs["Jim/baker"])
	}
}

func TestChoicesExpandUncertainAttributes(t *testing.T) {
	// t31's second alternative has the uniform mu* job distribution, so it
	// expands into one choice per concrete job.
	t31 := paperdata.R3().TupleByID("t31")
	cs := Choices(t31, false)
	// alt0: (John,pilot) ×1; alt1: (Johan,musician),(Johan,muralist); no
	// absence (p(t31)=1).
	if len(cs) != 3 {
		t.Fatalf("choices = %d, want 3", len(cs))
	}
	total := 0.0
	for _, c := range cs {
		total += c.P
	}
	if !almost(total, 1) {
		t.Fatalf("choice probabilities sum to %v", total)
	}
}

func TestChoicesAbsence(t *testing.T) {
	t42 := paperdata.R4().TupleByID("t42")
	cs := Choices(t42, false)
	if len(cs) != 2 {
		t.Fatalf("t42 has 1 alternative + absence, got %d", len(cs))
	}
	absent := cs[len(cs)-1]
	if absent.Alt != -1 || !almost(absent.P, 0.2) {
		t.Fatalf("absence choice wrong: %+v", absent)
	}
	// Conditioned: absence gone, renormalized by 0.8.
	cond := Choices(t42, true)
	if len(cond) != 1 || !almost(cond[0].P, 1) {
		t.Fatalf("conditioned choices wrong: %+v", cond)
	}
}

func TestCountAndEnumerateLimit(t *testing.T) {
	xr := paperdata.R34()
	n := Count(xr, false)
	// t31: 3 choices (no absence), t32: 4 (3 alts + absence), t41: 2,
	// t42: 2, t43: 3 (2 alts + absence) → 3*4*2*2*3 = 144.
	if !almost(n, 144) {
		t.Fatalf("Count = %v, want 144", n)
	}
	if _, err := Enumerate(xr, false, 10); err == nil {
		t.Fatal("want ErrTooManyWorlds")
	}
	ws, err := Enumerate(xr, false, 200)
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) != 144 {
		t.Fatalf("enumerated %d worlds", len(ws))
	}
	total := 0.0
	for _, w := range ws {
		total += w.P
	}
	if !almost(total, 1) {
		t.Fatalf("probabilities sum to %v", total)
	}
}

func TestMostProbable(t *testing.T) {
	xr := paperdata.R34()
	w := MostProbable(xr, true)
	// Per-tuple argmax under conditioning: t31→(John,pilot), t32→(Jim,baker),
	// t41→(John,pilot), t42→(Tom,mechanic), t43→(Sean,pilot).
	want := map[string][2]string{
		"t31": {"John", "pilot"},
		"t32": {"Jim", "baker"},
		"t41": {"John", "pilot"},
		"t42": {"Tom", "mechanic"},
		"t43": {"Sean", "pilot"},
	}
	for i, id := range w.IDs {
		c := w.Choices[i]
		if c.Values[0].S() != want[id][0] || c.Values[1].S() != want[id][1] {
			t.Errorf("%s: got (%v,%v), want %v", id, c.Values[0], c.Values[1], want[id])
		}
	}
	// Verify against enumeration.
	ws, _ := Enumerate(xr, true, 0)
	best := ws[0]
	for _, cand := range ws {
		if cand.P > best.P {
			best = cand
		}
	}
	if !almost(best.P, w.P) {
		t.Fatalf("MostProbable.P = %v, enumeration max = %v", w.P, best.P)
	}
}

func TestTopKAgainstEnumeration(t *testing.T) {
	xr := paperdata.R34()
	ws, _ := Enumerate(xr, false, 0)
	sort.SliceStable(ws, func(i, j int) bool { return ws[i].P > ws[j].P })
	for _, k := range []int{1, 5, 20, 144, 200} {
		top := TopK(xr, false, k)
		wantLen := k
		if wantLen > len(ws) {
			wantLen = len(ws)
		}
		if len(top) != wantLen {
			t.Fatalf("TopK(%d) returned %d worlds", k, len(top))
		}
		for i, w := range top {
			if !almost(w.P, ws[i].P) {
				t.Fatalf("TopK(%d)[%d].P = %v, want %v", k, i, w.P, ws[i].P)
			}
		}
		// Monotone non-increasing.
		for i := 1; i < len(top); i++ {
			if top[i].P > top[i-1].P+1e-9 {
				t.Fatalf("TopK not sorted at %d", i)
			}
		}
	}
}

func TestDissimilar(t *testing.T) {
	xr := paperdata.R34()
	sel := Dissimilar(xr, true, 3, 20)
	if len(sel) != 3 {
		t.Fatalf("selected %d worlds", len(sel))
	}
	// First selected world is the most probable one.
	mp := MostProbable(xr, true)
	if sel[0].Key() != mp.Key() {
		t.Fatal("first dissimilar world must be the most probable world")
	}
	// All selected worlds pairwise distinct with positive distance.
	for i := 0; i < len(sel); i++ {
		for j := i + 1; j < len(sel); j++ {
			if Distance(sel[i], sel[j]) <= 0 {
				t.Fatalf("worlds %d and %d identical", i, j)
			}
		}
	}
	// Dissimilar selection should beat plain TopK on minimum pairwise
	// distance (the redundancy argument of Sec. V-A.1).
	top := TopK(xr, true, 3)
	if minPairDist(sel) < minPairDist(top) {
		t.Fatalf("dissimilar selection (%v) must not be more redundant than top-k (%v)",
			minPairDist(sel), minPairDist(top))
	}
}

func minPairDist(ws []World) float64 {
	m := math.Inf(1)
	for i := 0; i < len(ws); i++ {
		for j := i + 1; j < len(ws); j++ {
			if d := Distance(ws[i], ws[j]); d < m {
				m = d
			}
		}
	}
	return m
}

func TestSampleDistribution(t *testing.T) {
	xr := pairT32T42()
	rng := rand.New(rand.NewSource(1))
	counts := map[string]int{}
	const n = 20000
	for i := 0; i < n; i++ {
		w := Sample(xr, false, rng)
		counts[w.Key()]++
	}
	ws, _ := Enumerate(xr, false, 0)
	for _, w := range ws {
		got := float64(counts[w.Key()]) / n
		if math.Abs(got-w.P) > 0.02 {
			t.Errorf("world %s: sampled %v, want %v", w.Key(), got, w.P)
		}
	}
}

func TestMaterialize(t *testing.T) {
	xr := paperdata.R34()
	w := MostProbable(xr, false)
	r := Materialize(xr, w)
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	// All five x-tuples present in the most probable unconditioned world?
	// t32 most probable choice: present (Jim,baker P .4 > absent .1);
	// t42 present (.8 > .2); t43 present (Sean,pilot .6).
	if len(r.Tuples) != 5 {
		t.Fatalf("materialized %d tuples", len(r.Tuples))
	}
	for _, tu := range r.Tuples {
		if tu.P != 1 {
			t.Fatalf("materialized tuples are certain, got p=%v", tu.P)
		}
		for _, d := range tu.Attrs {
			if !d.IsCertain() {
				t.Fatalf("materialized values are certain, got %v", d)
			}
		}
	}
}

func TestMaterializePreservesNull(t *testing.T) {
	t43 := paperdata.R4().TupleByID("t43")
	xr := pdb.NewXRelation("x", "name", "job").Append(t43)
	var found bool
	ForEach(xr, false, func(w World) bool {
		if w.Choices[0].Alt == 0 { // (John, ⊥)
			r := Materialize(xr, w)
			if !r.Tuples[0].Attrs[1].IsCertain() || r.Tuples[0].Attrs[1].NullP() != 1 {
				t.Errorf("⊥ must materialize as certain ⊥, got %v", r.Tuples[0].Attrs[1])
			}
			found = true
		}
		return true
	})
	if !found {
		t.Fatal("world with (John,⊥) not enumerated")
	}
}

func TestFromRelation(t *testing.T) {
	xr := FromRelation(paperdata.R1())
	if err := xr.Validate(); err != nil {
		t.Fatal(err)
	}
	ws, err := Enumerate(xr, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	total := 0.0
	for _, w := range ws {
		total += w.P
	}
	if !almost(total, 1) {
		t.Fatalf("R1 worlds sum to %v", total)
	}
	// t13 has p=0.6 and 2 names → with absence: t11 3, t12 4, t13 3 choices.
	if !almost(Count(xr, false), 3*4*3) {
		t.Fatalf("Count = %v", Count(xr, false))
	}
}

func TestQuickWorldProbabilitiesSumToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	gen := func() *pdb.XRelation {
		xr := pdb.NewXRelation("q", "a", "b")
		n := 1 + rng.Intn(3)
		for i := 0; i < n; i++ {
			nAlts := 1 + rng.Intn(3)
			alts := make([]pdb.Alt, 0, nAlts)
			remaining := 1.0
			for j := 0; j < nAlts; j++ {
				p := rng.Float64() * remaining
				if p <= 1e-6 {
					continue
				}
				remaining -= p
				alts = append(alts, pdb.NewAlt(p, word(rng), word(rng)))
			}
			if len(alts) == 0 {
				alts = append(alts, pdb.NewAlt(1, word(rng), word(rng)))
			}
			xr.Append(pdb.NewXTuple(fid(i), alts...))
		}
		return xr
	}
	prop := func() bool {
		xr := gen()
		if xr.Validate() != nil {
			return false
		}
		for _, cond := range []bool{false, true} {
			total := 0.0
			ForEach(xr, cond, func(w World) bool {
				total += w.P
				return true
			})
			if !almost(total, 1) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func word(r *rand.Rand) string {
	b := make([]byte, 1+r.Intn(4))
	for i := range b {
		b[i] = byte('a' + r.Intn(5))
	}
	return string(b)
}

func fid(i int) string { return string(rune('a'+i)) + "x" }
