// Package worlds enumerates the possible worlds induced by probabilistic
// relations and x-relations (PDB = (W, P), Sec. IV of the paper).
//
// A possible world of an x-relation chooses, for every x-tuple, either
// absence (only possible for maybe x-tuples) or one alternative together
// with one concrete value for every uncertain attribute of that alternative.
// World probabilities multiply because x-tuples are independent of each
// other.
//
// Conditioning on the event B that every considered tuple belongs to its
// relation (the paper's normalization p(tⁱ)/p(t), Sec. IV-B) is supported by
// the cond flag: absent choices are dropped and the remaining probabilities
// renormalize per x-tuple, so world probabilities over the conditioned space
// again sum to one.
package worlds

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"

	"probdedup/internal/pdb"
)

// Choice is the contribution of one x-tuple to a possible world: either
// absence (Alt == -1) or a concrete instantiation of one alternative.
type Choice struct {
	// Alt is the alternative index in the x-tuple, or -1 for absence.
	Alt int
	// Values are the concrete attribute values (len = arity); nil when
	// absent. A value may be ⊥.
	Values []pdb.Value
	// P is the probability of this choice.
	P float64
}

// World is one possible world: a choice per x-tuple (parallel to the
// x-relation's tuple order) with the product probability.
type World struct {
	// P is the world probability (already renormalized when conditioned).
	P float64
	// IDs are the x-tuple IDs, parallel to Choices.
	IDs []string
	// Choices holds one Choice per x-tuple.
	Choices []Choice
}

// Contains reports whether the x-tuple at index i is present in the world.
func (w World) Contains(i int) bool { return w.Choices[i].Alt >= 0 }

// Key returns a canonical identity of the world's choice structure
// (alternative indices and concrete values), independent of probability.
func (w World) Key() string {
	var b strings.Builder
	for i, c := range w.Choices {
		if i > 0 {
			b.WriteByte(';')
		}
		fmt.Fprintf(&b, "%d", c.Alt)
		for _, v := range c.Values {
			b.WriteByte(',')
			b.WriteString(v.String())
		}
	}
	return b.String()
}

// Distance is the fraction of x-tuples whose choices differ between two
// worlds of the same x-relation. It is the comparison technique on complete
// worlds that Sec. V-A.1 calls for when selecting pairwise dissimilar
// worlds.
func Distance(a, b World) float64 {
	if len(a.Choices) != len(b.Choices) {
		return 1
	}
	if len(a.Choices) == 0 {
		return 0
	}
	diff := 0
	for i := range a.Choices {
		if !sameChoice(a.Choices[i], b.Choices[i]) {
			diff++
		}
	}
	return float64(diff) / float64(len(a.Choices))
}

func sameChoice(a, b Choice) bool {
	if a.Alt != b.Alt || len(a.Values) != len(b.Values) {
		return false
	}
	for i := range a.Values {
		if !a.Values[i].Equal(b.Values[i]) {
			return false
		}
	}
	return true
}

// Choices enumerates every choice of one x-tuple. With cond=true the absent
// choice is dropped and probabilities are renormalized by p(t)
// (conditioning on tuple membership). Each alternative expands into the
// cross product of its uncertain attribute values' supports.
func Choices(x *pdb.XTuple, cond bool) []Choice {
	var out []Choice
	scale := 1.0
	if cond {
		pt := x.P()
		if pt <= pdb.Eps {
			return nil
		}
		scale = 1 / pt
	}
	for ai, alt := range x.Alts {
		combos := []Choice{{Alt: ai, P: alt.P * scale}}
		for _, d := range alt.Values {
			support := d.Support()
			next := make([]Choice, 0, len(combos)*len(support))
			for _, c := range combos {
				for _, s := range support {
					vals := make([]pdb.Value, len(c.Values)+1)
					copy(vals, c.Values)
					vals[len(c.Values)] = s.Value
					next = append(next, Choice{Alt: ai, Values: vals, P: c.P * s.P})
				}
			}
			combos = next
		}
		out = append(out, combos...)
	}
	if !cond {
		if absent := 1 - x.P(); absent > pdb.Eps {
			out = append(out, Choice{Alt: -1, P: absent})
		}
	}
	return out
}

// Count returns the number of possible worlds of the x-relation as a
// float64 (the count can be astronomically large; float64 keeps the
// magnitude).
func Count(xr *pdb.XRelation, cond bool) float64 {
	total := 1.0
	for _, x := range xr.Tuples {
		total *= float64(len(Choices(x, cond)))
	}
	return total
}

// ErrTooManyWorlds is returned by Enumerate when the world count exceeds the
// limit.
var ErrTooManyWorlds = fmt.Errorf("worlds: possible world count exceeds limit")

// Enumerate materializes all possible worlds. It fails with
// ErrTooManyWorlds if more than limit worlds exist (limit ≤ 0 means 1e6).
func Enumerate(xr *pdb.XRelation, cond bool, limit int) ([]World, error) {
	n := len(xr.Tuples)
	ids := make([]string, n)
	lists := make([][]Choice, n)
	for i, x := range xr.Tuples {
		ids[i] = x.ID
		lists[i] = Choices(x, cond)
	}
	states, err := EnumerateIdx(lists, limit)
	if err != nil {
		return nil, err
	}
	out := make([]World, len(states))
	for i, s := range states {
		out[i] = worldFromIdx(ids, lists, s)
	}
	return out, nil
}

// WorldIdx identifies a possible world by its per-tuple choice-list
// indices plus the world probability — the representation the
// incremental multi-pass index works with: prefix relationships between
// index vectors expose parent/child worlds across insertions without
// re-deriving canonical signatures from values.
type WorldIdx struct {
	// Idx holds one choice-list index per x-tuple (parallel to the list
	// slice the selection ran over).
	Idx []int
	// P is the world probability.
	P float64
}

// worldFromIdx materializes a WorldIdx against its choice lists.
func worldFromIdx(ids []string, lists [][]Choice, s WorldIdx) World {
	w := World{P: s.P, IDs: ids, Choices: make([]Choice, len(lists))}
	for i, j := range s.Idx {
		w.Choices[i] = lists[i][j]
	}
	return w
}

// CountOf returns the possible-world count over explicit choice lists,
// as a float64 (the count can be astronomically large).
func CountOf(lists [][]Choice) float64 {
	total := 1.0
	for _, cs := range lists {
		total *= float64(len(cs))
	}
	return total
}

// EnumerateIdx enumerates every index combination of the given choice
// lists in lexicographic (odometer) order — the list-level core of
// Enumerate. It fails with ErrTooManyWorlds when more than limit worlds
// exist (limit ≤ 0 means 1e6) and returns nil when any tuple has no
// admissible choice.
func EnumerateIdx(lists [][]Choice, limit int) ([]WorldIdx, error) {
	if limit <= 0 {
		limit = 1_000_000
	}
	if CountOf(lists) > float64(limit) {
		return nil, fmt.Errorf("%w: %.0f > %d", ErrTooManyWorlds, CountOf(lists), limit)
	}
	n := len(lists)
	for _, cs := range lists {
		if len(cs) == 0 {
			return nil, nil // an x-tuple with no admissible choice kills all worlds
		}
	}
	idx := make([]int, n)
	var out []WorldIdx
	for {
		s := WorldIdx{Idx: make([]int, n), P: 1}
		for i, j := range idx {
			s.Idx[i] = j
			s.P *= lists[i][j].P
		}
		out = append(out, s)
		i := n - 1
		for i >= 0 {
			idx[i]++
			if idx[i] < len(lists[i]) {
				break
			}
			idx[i] = 0
			i--
		}
		if i < 0 {
			return out, nil
		}
	}
}

// ForEach streams every possible world to fn; fn returning false stops the
// iteration. Worlds are produced in lexicographic choice order, which is
// deterministic.
func ForEach(xr *pdb.XRelation, cond bool, fn func(World) bool) {
	n := len(xr.Tuples)
	ids := make([]string, n)
	choiceLists := make([][]Choice, n)
	for i, x := range xr.Tuples {
		ids[i] = x.ID
		choiceLists[i] = Choices(x, cond)
		if len(choiceLists[i]) == 0 {
			return // an x-tuple with no admissible choice kills all worlds
		}
	}
	idx := make([]int, n)
	for {
		w := World{P: 1, IDs: ids, Choices: make([]Choice, n)}
		for i, j := range idx {
			w.Choices[i] = choiceLists[i][j]
			w.P *= choiceLists[i][j].P
		}
		if !fn(w) {
			return
		}
		// Odometer increment.
		i := n - 1
		for i >= 0 {
			idx[i]++
			if idx[i] < len(choiceLists[i]) {
				break
			}
			idx[i] = 0
			i--
		}
		if i < 0 {
			return
		}
	}
}

// MembershipProbability returns P(B) = Π p(t): the probability that every
// x-tuple of the relation is present (the paper's event B for ℛ={t32,t42}
// gives 0.72).
func MembershipProbability(xr *pdb.XRelation) float64 {
	p := 1.0
	for _, x := range xr.Tuples {
		p *= x.P()
	}
	return p
}

// MostProbable returns the most probable world. Because x-tuples are
// mutually independent it is the product of per-tuple argmax choices,
// computed without enumeration. Ties resolve to the earlier choice,
// deterministically.
func MostProbable(xr *pdb.XRelation, cond bool) World {
	n := len(xr.Tuples)
	w := World{P: 1, IDs: make([]string, n), Choices: make([]Choice, n)}
	for i, x := range xr.Tuples {
		w.IDs[i] = x.ID
		best := Choice{P: math.Inf(-1)}
		for _, c := range Choices(x, cond) {
			if c.P > best.P+pdb.Eps {
				best = c
			}
		}
		w.Choices[i] = best
		w.P *= best.P
	}
	return w
}

// SortChoices orders a choice list into the descending-probability order
// the top-k expansion works over (stable, so equally probable choices
// keep their enumeration order).
func SortChoices(cs []Choice) {
	sort.SliceStable(cs, func(a, b int) bool { return cs[a].P > cs[b].P })
}

// TopK returns the k most probable worlds in descending probability order
// using lazy best-first expansion over the per-tuple sorted choice lists
// (no full enumeration).
func TopK(xr *pdb.XRelation, cond bool, k int) []World {
	n := len(xr.Tuples)
	if k <= 0 || n == 0 {
		return nil
	}
	ids := make([]string, n)
	lists := make([][]Choice, n)
	for i, x := range xr.Tuples {
		ids[i] = x.ID
		cs := Choices(x, cond)
		if len(cs) == 0 {
			return nil
		}
		SortChoices(cs)
		lists[i] = cs
	}
	states := TopKIdx(lists, k)
	out := make([]World, len(states))
	for i, s := range states {
		out[i] = worldFromIdx(ids, lists, s)
	}
	return out
}

// TopKIdx is the list-level core of TopK: lazy best-first expansion over
// choice lists that must each be non-empty and ordered by SortChoices.
// It returns nil when no list is given or any list is empty.
func TopKIdx(lists [][]Choice, k int) []WorldIdx {
	n := len(lists)
	if k <= 0 || n == 0 {
		return nil
	}
	for _, cs := range lists {
		if len(cs) == 0 {
			return nil
		}
	}
	start := WorldIdx{Idx: make([]int, n), P: 1}
	for i := range lists {
		start.P *= lists[i][0].P
	}
	heap := []WorldIdx{start}
	seen := map[string]bool{key(start.Idx): true}
	pop := func() WorldIdx {
		best := 0
		for i := 1; i < len(heap); i++ {
			if heap[i].P > heap[best].P {
				best = i
			}
		}
		s := heap[best]
		heap[best] = heap[len(heap)-1]
		heap = heap[:len(heap)-1]
		return s
	}
	var out []WorldIdx
	for len(out) < k && len(heap) > 0 {
		s := pop()
		out = append(out, s)
		for i := 0; i < n; i++ {
			if s.Idx[i]+1 >= len(lists[i]) {
				continue
			}
			next := make([]int, n)
			copy(next, s.Idx)
			next[i]++
			kk := key(next)
			if seen[kk] {
				continue
			}
			seen[kk] = true
			p := s.P / lists[i][s.Idx[i]].P * lists[i][next[i]].P
			heap = append(heap, WorldIdx{Idx: next, P: p})
		}
	}
	return out
}

func key(idx []int) string {
	var b strings.Builder
	for _, v := range idx {
		fmt.Fprintf(&b, "%d,", v)
	}
	return b.String()
}

// Dissimilar selects k highly probable and pairwise dissimilar worlds, the
// careful world selection Sec. V-A.1 asks for: it draws a candidate pool of
// the `pool` most probable worlds and greedily picks worlds maximizing the
// product of probability and minimum distance to the already selected set.
func Dissimilar(xr *pdb.XRelation, cond bool, k, pool int) []World {
	n := len(xr.Tuples)
	if k <= 0 || n == 0 {
		return nil
	}
	ids := make([]string, n)
	lists := make([][]Choice, n)
	for i, x := range xr.Tuples {
		ids[i] = x.ID
		cs := Choices(x, cond)
		if len(cs) == 0 {
			return nil
		}
		SortChoices(cs)
		lists[i] = cs
	}
	states := DissimilarIdx(lists, k, pool)
	out := make([]World, len(states))
	for i, s := range states {
		out[i] = worldFromIdx(ids, lists, s)
	}
	return out
}

// DissimilarIdx is the list-level core of Dissimilar over choice lists
// ordered by SortChoices. Distance between index vectors counts the
// tuples whose choice indices differ — identical to Distance on the
// materialized worlds, because the choices of one list are pairwise
// distinct.
func DissimilarIdx(lists [][]Choice, k, pool int) []WorldIdx {
	if pool < k {
		pool = k * 4
	}
	cands := TopKIdx(lists, pool)
	if len(cands) == 0 || k <= 0 {
		return nil
	}
	dist := func(a, b WorldIdx) float64 {
		if len(a.Idx) == 0 {
			return 0
		}
		diff := 0
		for i := range a.Idx {
			if a.Idx[i] != b.Idx[i] {
				diff++
			}
		}
		return float64(diff) / float64(len(a.Idx))
	}
	out := []WorldIdx{cands[0]} // most probable world always included
	used := map[int]bool{0: true}
	for len(out) < k && len(out) < len(cands) {
		bestIdx, bestScore := -1, math.Inf(-1)
		for i, c := range cands {
			if used[i] {
				continue
			}
			minDist := math.Inf(1)
			for _, s := range out {
				if d := dist(c, s); d < minDist {
					minDist = d
				}
			}
			score := c.P * minDist
			if score > bestScore {
				bestIdx, bestScore = i, score
			}
		}
		if bestIdx < 0 {
			break
		}
		used[bestIdx] = true
		out = append(out, cands[bestIdx])
	}
	return out
}

// Sample draws one world at random according to the world distribution.
func Sample(xr *pdb.XRelation, cond bool, rng *rand.Rand) World {
	n := len(xr.Tuples)
	w := World{P: 1, IDs: make([]string, n), Choices: make([]Choice, n)}
	for i, x := range xr.Tuples {
		w.IDs[i] = x.ID
		cs := Choices(x, cond)
		r := rng.Float64()
		acc := 0.0
		chosen := cs[len(cs)-1]
		for _, c := range cs {
			acc += c.P
			if r < acc {
				chosen = c
				break
			}
		}
		w.Choices[i] = chosen
		w.P *= chosen.P
	}
	return w
}

// Materialize converts a world into a certain relation: one tuple per
// present x-tuple, attribute values as certain distributions (⊥ stays
// certain ⊥), p(t)=1. Absent x-tuples are skipped.
func Materialize(xr *pdb.XRelation, w World) *pdb.Relation {
	r := pdb.NewRelation(xr.Name, xr.Schema...)
	for i, c := range w.Choices {
		if c.Alt < 0 {
			continue
		}
		attrs := make([]pdb.Dist, len(c.Values))
		for j, v := range c.Values {
			if v.IsNull() {
				attrs[j] = pdb.CertainNull()
			} else {
				attrs[j] = pdb.Certain(v.S())
			}
		}
		r.Append(pdb.NewTuple(w.IDs[i], 1, attrs...))
	}
	return r
}

// FromRelation lifts a dependency-free probabilistic relation into an
// x-relation whose alternatives enumerate each tuple's attribute
// combinations, so the same world machinery applies to both model flavours.
func FromRelation(r *pdb.Relation) *pdb.XRelation {
	xr := pdb.NewXRelation(r.Name, r.Schema...)
	for _, t := range r.Tuples {
		xr.Append(t.ExpandAlternatives())
	}
	return xr
}

// PairRelation builds the two-x-tuple relation {a, b} used when analysing a
// single x-tuple pair (e.g. Fig. 7's worlds of {t32, t42}).
func PairRelation(schema []string, a, b *pdb.XTuple) *pdb.XRelation {
	xr := pdb.NewXRelation("pair", schema...)
	xr.Append(a, b)
	return xr
}
