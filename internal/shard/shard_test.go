package shard

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sort"
	"strings"
	"sync"
	"testing"

	"probdedup/internal/core"
	"probdedup/internal/dataset"
	"probdedup/internal/decision"
	"probdedup/internal/keys"
	"probdedup/internal/pdb"
	"probdedup/internal/ssr"
	"probdedup/internal/strsim"
)

// testOptions configures the shard engines over the synthetic corpus's
// 3-attribute schema, blocking on a short name prefix so blocks (and
// with them cross-tuple candidates) actually form.
func testOptions(tb testing.TB, schema []string, workers int) core.Options {
	tb.Helper()
	def, err := keys.ParseDef("name:3", schema)
	if err != nil {
		tb.Fatal(err)
	}
	return core.Options{
		Compare:   []strsim.Func{strsim.Levenshtein, strsim.Levenshtein, strsim.Levenshtein},
		Reduction: ssr.BlockingCertain{Key: def},
		Final:     decision.Thresholds{Lambda: 0.6, Mu: 0.8},
		Workers:   workers,
	}
}

// tup builds a certain single-alternative tuple for the 3-attribute
// test schema.
func tup(id, name, job, age string) *pdb.XTuple {
	return pdb.NewXTuple(id, pdb.NewAlt(1, name, job, age))
}

var testSchema = []string{"name", "job", "age"}

func mustOpen(tb testing.TB, cfg Config) *Router {
	tb.Helper()
	r, err := Open(cfg)
	if err != nil {
		tb.Fatal(err)
	}
	return r
}

func TestShardableRejectsCrossBlockMethods(t *testing.T) {
	def, err := keys.ParseDef("name:3", testSchema)
	if err != nil {
		t.Fatal(err)
	}
	bad := []ssr.Method{
		nil,
		ssr.CrossProduct{},
		ssr.SNMCertain{Key: def, Window: 3},
		ssr.BlockingAlternatives{Key: def},
		ssr.NewFilter(ssr.SNMCertain{Key: def, Window: 3}, ssr.Pruning{}),
		ssr.Filter{},
	}
	for _, m := range bad {
		name := "nil"
		if m != nil {
			name = fmt.Sprintf("%T", m)
		}
		if _, _, err := shardable(m); !errors.Is(err, ErrNotShardable) {
			t.Errorf("%s: want ErrNotShardable, got %v", name, err)
		}
	}
	good := []ssr.Method{
		ssr.BlockingCertain{Key: def},
		ssr.NewFilter(ssr.BlockingCertain{Key: def}, ssr.Pruning{}),
	}
	for _, m := range good {
		if _, _, err := shardable(m); err != nil {
			t.Errorf("%T: want shardable, got %v", m, err)
		}
	}
	opts := testOptions(t, testSchema, 1)
	opts.Reduction = ssr.SNMCertain{Key: def, Window: 3}
	if _, err := Open(Config{Shards: 2, Schema: testSchema, Opts: opts}); !errors.Is(err, ErrNotShardable) {
		t.Fatalf("Open with SNM: want ErrNotShardable, got %v", err)
	}
}

func TestRoutingIsDeterministicAndBlockLocal(t *testing.T) {
	r := mustOpen(t, Config{Shards: 8, Schema: testSchema, Opts: testOptions(t, testSchema, 1)})
	defer r.Close()
	a := tup("a", "Johnson", "pilot", "44")
	b := tup("b", "Johnsen", "baker", "31") // same name:3 block key "Joh"
	c := tup("c", "Miller", "baker", "31")
	if got, want := r.ShardOf(a), r.ShardOf(a); got != want {
		t.Fatalf("ShardOf not deterministic: %d vs %d", got, want)
	}
	if r.ShardOf(a) != r.ShardOf(b) {
		t.Fatalf("same block key routed to different shards: %d vs %d", r.ShardOf(a), r.ShardOf(b))
	}
	_ = c // distinct keys may or may not collide; only same-key co-location is guaranteed
}

func TestAdmissionErrors(t *testing.T) {
	r := mustOpen(t, Config{Shards: 2, Schema: testSchema, Opts: testOptions(t, testSchema, 1)})
	if err := r.Ingest(nil); err == nil {
		t.Fatal("nil tuple admitted")
	}
	if err := r.Ingest(pdb.NewXTuple("bad", pdb.NewAlt(1, "only-one-attr"))); err == nil {
		t.Fatal("arity-violating tuple admitted")
	}
	x := tup("a", "Johnson", "pilot", "44")
	if err := r.Ingest(x); err != nil {
		t.Fatal(err)
	}
	if err := r.Ingest(tup("a", "Other", "job", "1")); err == nil || !strings.Contains(err.Error(), "duplicate tuple ID") {
		t.Fatalf("duplicate ID: got %v", err)
	}
	if err := r.Remove("ghost"); !errors.Is(err, core.ErrUnknownID) {
		t.Fatalf("unknown remove: want ErrUnknownID, got %v", err)
	}
	if err := r.Remove("a"); err != nil {
		t.Fatal(err)
	}
	// a's removal is admitted: a second removal no longer finds it.
	if err := r.Remove("a"); !errors.Is(err, core.ErrUnknownID) {
		t.Fatalf("double remove: want ErrUnknownID, got %v", err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if err := r.Ingest(tup("b", "Miller", "baker", "31")); !errors.Is(err, ErrClosed) {
		t.Fatalf("ingest after close: want ErrClosed, got %v", err)
	}
	if err := r.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
}

func TestBackpressureRejectsWithoutBlocking(t *testing.T) {
	r := mustOpen(t, Config{Shards: 1, Schema: testSchema, Opts: testOptions(t, testSchema, 1), QueueDepth: 2})
	defer r.Close()
	// Park the single worker so the queue fills deterministically,
	// and wait until it has dequeued the hold op before filling. The
	// deferred release keeps a failing assertion from wedging Close.
	hold := make(chan struct{})
	var once sync.Once
	release := func() { once.Do(func() { close(hold) }) }
	defer release()
	r.shards[0].ops <- op{hold: hold}
	for len(r.shards[0].ops) != 0 {
		runtime.Gosched()
	}
	admitted := 0
	var overload *OverloadedError
	for i := 0; ; i++ {
		err := r.Ingest(tup(fmt.Sprintf("t%d", i), "Johnson", "pilot", "44"))
		if err == nil {
			admitted++
			continue
		}
		if !errors.As(err, &overload) {
			t.Fatalf("want *OverloadedError, got %v", err)
		}
		break
	}
	if admitted != 2 {
		t.Fatalf("admitted %d ops into a depth-2 queue with a parked worker", admitted)
	}
	if overload.Shard != 0 || overload.Queued == 0 {
		t.Fatalf("overload detail: %+v", overload)
	}
	// A rejected ingest must not leak into the admission map: the same
	// ID is admittable once the queue drains.
	rejectedID := fmt.Sprintf("t%d", admitted)
	release()
	if err := r.Drain(); err != nil {
		t.Fatal(err)
	}
	if err := r.Ingest(tup(rejectedID, "Johnson", "pilot", "44")); err != nil {
		t.Fatalf("re-ingest after drain: %v", err)
	}
	res, err := r.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if got := admitted + 1; len(res.Compared) != got*(got-1)/2 {
		t.Fatalf("flush saw %d compared pairs, want %d", len(res.Compared), got*(got-1)/2)
	}
}

func TestStatsAggregatesShards(t *testing.T) {
	r := mustOpen(t, Config{Shards: 4, Schema: testSchema, Opts: testOptions(t, testSchema, 1)})
	defer r.Close()
	names := []string{"Johnson", "Jonson", "Miller", "Millar", "Smith", "Smyth"}
	for i, n := range names {
		if err := r.Ingest(tup(fmt.Sprintf("t%d", i), n, "job", "1")); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.Drain(); err != nil {
		t.Fatal(err)
	}
	st := r.Stats()
	if st.Shards != 4 || len(st.PerShard) != 4 {
		t.Fatalf("shard count: %+v", st)
	}
	if st.Detector.Residents != len(names) {
		t.Fatalf("aggregate residents = %d, want %d", st.Detector.Residents, len(names))
	}
	if want := ssr.TotalPairs(len(names)); st.Detector.TotalPairs != want {
		t.Fatalf("aggregate TotalPairs = %d, want merged-input %d", st.Detector.TotalPairs, want)
	}
	sum := 0
	for i, ss := range st.PerShard {
		if ss.Shard != i || ss.QueueCap != DefaultQueueDepth {
			t.Fatalf("per-shard snapshot: %+v", ss)
		}
		sum += ss.Detector.Residents
	}
	if sum != len(names) {
		t.Fatalf("per-shard residents sum %d, want %d", sum, len(names))
	}
}

func TestSubscriberDroppedOnOverflow(t *testing.T) {
	r := mustOpen(t, Config{Shards: 1, Schema: testSchema, Opts: testOptions(t, testSchema, 1)})
	defer r.Close()
	slow, _ := r.SubscribeMatches(1)
	// Three same-block pairwise matches emit three add deltas; the
	// undrained buffer of one forces a drop.
	for i := 0; i < 3; i++ {
		if err := r.Ingest(tup(fmt.Sprintf("t%d", i), "Johnson", "pilot", "44")); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.Drain(); err != nil {
		t.Fatal(err)
	}
	got := 0
	for range slow {
		got++
	}
	if got != 1 {
		t.Fatalf("dropped subscriber drained %d events, want the 1 buffered", got)
	}
	// The router itself is unaffected: a fresh subscriber still works.
	fresh, cancel := r.SubscribeMatches(16)
	if err := r.Ingest(tup("t9", "Johnson", "pilot", "44")); err != nil {
		t.Fatal(err)
	}
	if err := r.Drain(); err != nil {
		t.Fatal(err)
	}
	ev := <-fresh
	if ev.Delta.Kind != core.DeltaAdd {
		t.Fatalf("fresh subscriber event: %+v", ev)
	}
	cancel()
	cancel() // idempotent
	for range fresh {
		// cancel closed the channel; drain any buffered tail
	}
}

func TestCloseClosesSubscribers(t *testing.T) {
	r := mustOpen(t, Config{Shards: 2, Schema: testSchema, Opts: testOptions(t, testSchema, 1), Integrate: true})
	mch, _ := r.SubscribeMatches(4)
	ech, _ := r.SubscribeEntities(4)
	if err := r.Ingest(tup("a", "Johnson", "pilot", "44")); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	for range mch {
	}
	drained := 0
	for range ech {
		drained++
	}
	if drained == 0 {
		t.Fatal("integrate-mode ingest emitted no entity delta")
	}
	// Subscribing after close yields a closed channel, not a hang.
	late, cancel := r.SubscribeEntities(1)
	if _, ok := <-late; ok {
		t.Fatal("late subscriber got an event from a closed router")
	}
	cancel()
}

func TestFlushEntitiesRequiresIntegrate(t *testing.T) {
	r := mustOpen(t, Config{Shards: 2, Schema: testSchema, Opts: testOptions(t, testSchema, 1)})
	defer r.Close()
	if _, err := r.FlushEntities(); err == nil {
		t.Fatal("FlushEntities on a non-integrating router succeeded")
	}
}

func TestDurableReopenRebuildsAdmissionMap(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Shards: 2, Schema: testSchema, Opts: testOptions(t, testSchema, 1), StateDir: dir}
	r := mustOpen(t, cfg)
	names := []string{"Johnson", "Jonson", "Miller", "Millar"}
	for i, n := range names {
		if err := r.Ingest(tup(fmt.Sprintf("t%d", i), n, "job", "1")); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}

	// A different shard count must refuse the directory: the residents
	// were routed with N=2.
	bad := cfg
	bad.Shards = 3
	var mismatch *ShardCountMismatchError
	if _, err := Open(bad); !errors.As(err, &mismatch) {
		t.Fatalf("reopen with 3 shards: want ShardCountMismatchError, got %v", err)
	} else if mismatch.Have != 2 || mismatch.Want != 3 {
		t.Fatalf("mismatch detail: %+v", mismatch)
	}

	r2 := mustOpen(t, cfg)
	defer r2.Close()
	st := r2.Stats()
	if st.Detector.Residents != len(names) {
		t.Fatalf("recovered %d residents, want %d", st.Detector.Residents, len(names))
	}
	// The admission map was rebuilt: recovered IDs are removable and
	// re-admitting one is rejected as a duplicate.
	if err := r2.Ingest(tup("t0", "Johnson", "job", "1")); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("re-admitting recovered ID: got %v", err)
	}
	if err := r2.Remove("t0"); err != nil {
		t.Fatalf("removing recovered ID: %v", err)
	}
	res, err := r2.Flush()
	if err != nil {
		t.Fatal(err)
	}
	want := singleResult(t, testSchema, testOptions(t, testSchema, 1), schedOf(names[1:], 1))
	if canonResult(res) != canonResult(want) {
		t.Fatalf("recovered flush diverges:\n--- got ---\n%s--- want ---\n%s", canonResult(res), canonResult(want))
	}
}

// schedOf builds a plain insert schedule from names, with IDs t<start>…
func schedOf(names []string, start int) []schedOp {
	ops := make([]schedOp, len(names))
	for i, n := range names {
		ops[i] = schedOp{add: tup(fmt.Sprintf("t%d", start+i), n, "job", "1")}
	}
	return ops
}

// schedOp is one operation of an equivalence schedule.
type schedOp struct {
	add    *pdb.XTuple
	batch  []*pdb.XTuple
	remove string
}

// genSchedule derives a deterministic schedule over the synthetic
// duplicate corpus: mostly arrivals (some batched), with removals of
// residents mixed in. Purely arithmetic per-step choice keeps it
// reproducible without a PRNG.
func genSchedule(tb testing.TB, seed int64, n int) ([]string, []schedOp) {
	tb.Helper()
	d := dataset.Generate(dataset.DefaultConfig(n, seed))
	u := d.Union()
	var (
		ops      []schedOp
		resident []string
		next     int
	)
	for step := 0; len(ops) < n && next < len(u.Tuples); step++ {
		k := (int(seed)*13 + step*7) % 10
		switch {
		case k < 6 || len(resident) == 0:
			x := u.Tuples[next]
			next++
			resident = append(resident, x.ID)
			ops = append(ops, schedOp{add: x})
		case k < 8:
			m := 1 + step%3
			if m > len(u.Tuples)-next {
				m = len(u.Tuples) - next
			}
			batch := u.Tuples[next : next+m]
			next += m
			for _, x := range batch {
				resident = append(resident, x.ID)
			}
			ops = append(ops, schedOp{batch: batch})
		default:
			j := (step * 31) % len(resident)
			id := resident[j]
			resident = append(resident[:j], resident[j+1:]...)
			ops = append(ops, schedOp{remove: id})
		}
	}
	return u.Schema, ops
}

// routerApply feeds one schedule op through the router's admission
// surface (batches become per-tuple ingests — the router re-coalesces).
func routerApply(tb testing.TB, r *Router, o schedOp) {
	tb.Helper()
	apply := func(x *pdb.XTuple) {
		if err := r.Ingest(x); err != nil {
			tb.Fatalf("ingest %s: %v", x.ID, err)
		}
	}
	switch {
	case o.add != nil:
		apply(o.add)
	case o.batch != nil:
		for _, x := range o.batch {
			apply(x)
		}
	default:
		if err := r.Remove(o.remove); err != nil {
			tb.Fatalf("remove %s: %v", o.remove, err)
		}
	}
}

// singleResult folds a schedule through one plain Detector — the
// reference instance of the equivalence oath.
func singleResult(tb testing.TB, schema []string, opts core.Options, ops []schedOp) *core.Result {
	res, _ := singleRun(tb, schema, opts, ops)
	return res
}

func singleRun(tb testing.TB, schema []string, opts core.Options, ops []schedOp) (*core.Result, []core.MatchDelta) {
	tb.Helper()
	var deltas []core.MatchDelta
	det, err := core.NewDetector(schema, opts, func(md core.MatchDelta) bool {
		deltas = append(deltas, md)
		return true
	})
	if err != nil {
		tb.Fatal(err)
	}
	for _, o := range ops {
		switch {
		case o.add != nil:
			err = det.Add(o.add)
		case o.batch != nil:
			err = det.AddBatch(o.batch)
		default:
			err = det.Remove(o.remove)
		}
		if err != nil {
			tb.Fatal(err)
		}
	}
	return det.Flush(), deltas
}

// canonResult canonicalizes a core.Result for equality comparison:
// every pair with raw similarity bits, class and M/P membership, plus
// the global counters.
func canonResult(r *core.Result) string {
	lines := make([]string, 0, len(r.ByPair))
	for p, m := range r.ByPair {
		lines = append(lines, fmt.Sprintf("%s|%s|%016x|%d|m=%t|p=%t",
			p.A, p.B, math.Float64bits(m.Sim), int(m.Class), r.Matches[p], r.Possible[p]))
	}
	sort.Strings(lines)
	return fmt.Sprintf("%s\ncompared=%d total=%d m=%d p=%d\n",
		strings.Join(lines, "\n"), len(r.Compared), r.TotalPairs, len(r.Matches), len(r.Possible))
}

// canonDeltas canonicalizes a match-delta stream as a sorted multiset;
// shard fan-out reorders deliveries but must preserve the multiset.
func canonDeltas(deltas []core.MatchDelta) string {
	lines := make([]string, len(deltas))
	for i, md := range deltas {
		lines[i] = fmt.Sprintf("%s|%s|%s|%016x|%d",
			md.Kind, md.Pair.A, md.Pair.B, math.Float64bits(md.Sim), int(md.Class))
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}
