// Package shard routes an online detection workload across N
// independent engine instances by conflict-resolved blocking key.
//
// The sharding rides the per-block independence of classical blocking
// (ssr.BlockingCertain, Sec. V-B): a candidate pair exists only inside
// one block, a block's key is a pure function of one tuple, and so a
// whole block can be pinned to one shard. The Router hashes each
// arrival's conflict-resolved key and forwards the operation to the
// owning shard's engine (a core.Detector, or a resolve.Integrator in
// integrate mode, optionally wrapped in wal durable state under
// per-shard directories). Because no candidate pair ever crosses a
// block — and hence never crosses a shard — the union of the per-shard
// results equals a single-instance run on the merged input: Flush
// returns exactly the core.Result one engine would, and the merged
// delta streams carry the same multiset of events. Reduction methods
// whose candidates can span arbitrary tuple pairs (cross product, the
// sorted-neighborhood family, BlockingAlternatives, BlockingCluster)
// are rejected with ErrNotShardable; pruned compositions
// (ssr.Filter) shard whenever their inner method does, since pruning
// only removes pairs block-locally.
//
// Admission is bounded: each shard owns a FIFO operation queue of
// fixed depth, and Ingest/Remove fail with *OverloadedError instead of
// blocking when the owning shard's queue is full — the backpressure
// signal pdedupd turns into HTTP 429. Deltas fan out to subscribers
// through buffered channels; a subscriber that stops draining is
// dropped (its channel closed) rather than stalling the shard workers.
package shard

import (
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"probdedup/internal/core"
	"probdedup/internal/fusion"
	"probdedup/internal/keys"
	"probdedup/internal/pdb"
	"probdedup/internal/prepare"
	"probdedup/internal/resolve"
	"probdedup/internal/ssr"
	"probdedup/internal/verify"
	"probdedup/internal/wal"
)

// DefaultQueueDepth bounds each shard's pending-operation queue when
// Config.QueueDepth is zero.
const DefaultQueueDepth = 1024

// shardBatchCap caps how many queued insertions a shard worker
// coalesces into one AddBatch call (mirrors pdedup -follow's batch).
const shardBatchCap = 256

// ErrNotShardable reports a reduction method whose candidate pairs can
// cross shard boundaries; only blocking over conflict-resolved certain
// keys (optionally pruned) partitions the search space by a
// per-tuple key.
var ErrNotShardable = errors.New("shard: reduction method is not shardable")

// ErrClosed reports an operation on a closed Router.
var ErrClosed = errors.New("shard: router closed")

// OverloadedError reports an admission rejected because the owning
// shard's queue was at capacity. Callers should retry after draining;
// pdedupd maps it to HTTP 429 with Retry-After.
type OverloadedError struct {
	// Shard is the shard whose queue was full.
	Shard int
	// Queued is the queue occupancy observed at rejection.
	Queued int
}

// Error implements error.
func (e *OverloadedError) Error() string {
	return fmt.Sprintf("shard: shard %d queue full (%d pending)", e.Shard, e.Queued)
}

// ShardCountMismatchError reports a durable state directory created
// with a different shard count: reopening with a new N would route
// residents to different shards and break the union equivalence.
type ShardCountMismatchError struct {
	Dir        string
	Have, Want int
}

// Error implements error.
func (e *ShardCountMismatchError) Error() string {
	return fmt.Sprintf("shard: state dir %s was created with %d shards, reopening with %d", e.Dir, e.Have, e.Want)
}

// Config configures a Router.
type Config struct {
	// Shards is the number of engine instances (0 means 1).
	Shards int
	// Schema names the attributes of arriving tuples.
	Schema []string
	// Opts configures each shard engine exactly as core.NewDetector;
	// Opts.Reduction must be shardable (see ErrNotShardable).
	// Opts.Durability applies per shard when StateDir is set.
	Opts core.Options
	// Integrate composes a resolve.Integrator per shard instead of a
	// bare detector: entity deltas replace match deltas and
	// FlushEntities becomes available.
	Integrate bool
	// StateDir, when non-empty, makes every shard durable under
	// StateDir/shard-K (wal.OpenDurable); the directory records the
	// shard count and refuses to reopen with a different one.
	StateDir string
	// QueueDepth bounds each shard's pending-operation queue
	// (0 means DefaultQueueDepth).
	QueueDepth int
}

// MatchEvent is one shard's match delta with its origin.
type MatchEvent struct {
	Shard int
	Delta core.MatchDelta
}

// EntityEvent is one shard's entity delta with its origin.
type EntityEvent struct {
	Shard int
	Delta resolve.EntityDelta
}

// ShardStats is one shard's introspection snapshot.
type ShardStats struct {
	// Shard is the shard index.
	Shard int
	// Queue and QueueCap are the pending-operation queue occupancy and
	// bound.
	Queue, QueueCap int
	// Detector holds the shard engine's detector stats.
	Detector core.DetectorStats
	// Entities is the shard's resolved entity count (integrate mode
	// only; 0 otherwise).
	Entities int
	// Err carries the shard's sticky apply failure, if any.
	Err string `json:",omitempty"`
}

// Stats aggregates the router's state across shards.
type Stats struct {
	// Shards is the shard count.
	Shards int
	// Detector sums the per-shard detector stats; TotalPairs is
	// recomputed over the merged resident count, so it reports the
	// search-space size of the equivalent single-instance run.
	Detector core.DetectorStats
	// Entities sums the per-shard entity counts (integrate mode).
	Entities int
	// PerShard lists each shard's snapshot in shard order.
	PerShard []ShardStats
}

// engineOps is the per-shard mutation surface, satisfied by
// core.Detector, resolve.Integrator and their wal durable wrappers.
type engineOps interface {
	Add(*pdb.XTuple) error
	AddBatch([]*pdb.XTuple) error
	Remove(id string) error
	ResidentIDs() []string
	Len() int
}

// op is one queued shard operation: an insertion, a removal, or a
// barrier that the worker acknowledges once everything before it has
// been applied. hold is a test seam: the worker parks on it, letting
// tests fill a queue deterministically.
type op struct {
	tuple   *pdb.XTuple
	remove  string
	barrier chan struct{}
	hold    chan struct{}
}

// shardState is one shard: its engine, its FIFO queue, and its sticky
// first apply error.
type shardState struct {
	id  int
	ops chan op
	eng engineOps

	flushResult   func() *core.Result
	flushEntities func() (*resolve.Resolution, error)
	stats         func() core.DetectorStats
	entities      func() int
	closeEng      func() error

	mu  sync.Mutex
	err error
}

func (s *shardState) fail() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

func (s *shardState) setErr(err error) {
	s.mu.Lock()
	if s.err == nil {
		s.err = fmt.Errorf("shard %d: %w", s.id, err)
	}
	s.mu.Unlock()
}

// Router fans an online workload out across per-block shard engines.
// All methods are safe for concurrent use. Operations on one tuple ID
// are applied in admission order (the ID always routes to the same
// shard's FIFO queue); operations on different shards proceed in
// parallel.
type Router struct {
	schema    []string
	std       *prepare.Standardizer
	key       keys.Def
	strategy  fusion.Strategy
	integrate bool

	// mu guards admission: the ID→shard map and the closed flag.
	mu     sync.Mutex
	ids    map[string]int
	closed bool

	// opMu serializes Drain, Flush, FlushEntities and Close against
	// each other, so a barrier round never interleaves with teardown.
	opMu sync.Mutex

	// subMu guards the subscriber registries.
	subMu      sync.Mutex
	subsClosed bool
	nextSub    int
	matchSubs  map[int]chan MatchEvent
	entitySubs map[int]chan EntityEvent

	wg     sync.WaitGroup
	shards []*shardState
}

// shardable resolves the blocking key and fusion strategy a method
// shards by, rejecting methods whose candidates can cross blocks.
func shardable(m ssr.Method) (keys.Def, fusion.Strategy, error) {
	switch v := m.(type) {
	case ssr.BlockingCertain:
		s := v.Strategy
		if s == nil {
			s = fusion.MostProbable{}
		}
		return v.Key, s, nil
	case ssr.Filter:
		// Pruning only removes pairs the inner method proposed, and
		// those never cross blocks — the composition shards whenever
		// the inner method does.
		if v.Inner == nil {
			return keys.Def{}, nil, fmt.Errorf("%w: pruned cross product", ErrNotShardable)
		}
		return shardable(v.Inner)
	case nil:
		return keys.Def{}, nil, fmt.Errorf("%w: cross product", ErrNotShardable)
	default:
		return keys.Def{}, nil, fmt.Errorf("%w: %s", ErrNotShardable, v.Name())
	}
}

// Open builds a Router over cfg.Shards engine instances. With
// cfg.StateDir set, each shard recovers its durable state from
// StateDir/shard-K and the router rebuilds its ID→shard admission map
// from the recovered residents.
func Open(cfg Config) (*Router, error) {
	n := cfg.Shards
	if n <= 0 {
		n = 1
	}
	depth := cfg.QueueDepth
	if depth <= 0 {
		depth = DefaultQueueDepth
	}
	key, strategy, err := shardable(cfg.Opts.Reduction)
	if err != nil {
		return nil, err
	}
	r := &Router{
		schema:     append([]string(nil), cfg.Schema...),
		std:        cfg.Opts.Standardizer,
		key:        key,
		strategy:   strategy,
		integrate:  cfg.Integrate,
		ids:        map[string]int{},
		matchSubs:  map[int]chan MatchEvent{},
		entitySubs: map[int]chan EntityEvent{},
		shards:     make([]*shardState, n),
	}
	if cfg.StateDir != "" {
		if err := checkShardMeta(cfg.StateDir, n); err != nil {
			return nil, err
		}
	}
	for i := range r.shards {
		s := &shardState{id: i, ops: make(chan op, depth)}
		if err := r.buildEngine(s, cfg); err != nil {
			r.closeEngines()
			return nil, err
		}
		r.shards[i] = s
	}
	if err := r.rebuildIDs(); err != nil {
		r.closeEngines()
		return nil, err
	}
	for _, s := range r.shards {
		r.wg.Add(1)
		go r.runShard(s)
	}
	return r, nil
}

// buildEngine wires shard s's engine per cfg, capturing the shard
// index in the emit closures so events carry their origin.
func (r *Router) buildEngine(s *shardState, cfg Config) error {
	id := s.id
	dir := ""
	if cfg.StateDir != "" {
		dir = filepath.Join(cfg.StateDir, fmt.Sprintf("shard-%d", id))
	}
	if cfg.Integrate {
		emit := func(ed resolve.EntityDelta) bool {
			r.publishEntity(id, ed)
			return true
		}
		var (
			ig interface {
				Stats() resolve.IntegratorStats
			}
			err error
		)
		if dir != "" {
			var d *wal.DurableIntegrator
			d, err = wal.OpenDurableIntegrator(dir, cfg.Schema, cfg.Opts, emit)
			if err == nil {
				s.eng, s.closeEng = d, d.Close
				s.flushResult = d.FlushResult
				s.flushEntities = d.Flush
				ig = d
			}
		} else {
			var m *resolve.Integrator
			m, err = resolve.NewIntegrator(cfg.Schema, cfg.Opts, emit)
			if err == nil {
				s.eng = m
				s.flushResult = m.FlushResult
				s.flushEntities = m.Flush
				ig = m
			}
		}
		if err != nil {
			return err
		}
		s.stats = func() core.DetectorStats { return ig.Stats().Detector }
		s.entities = func() int { return ig.Stats().Entities }
		return nil
	}
	emit := func(md core.MatchDelta) bool {
		r.publishMatch(id, md)
		return true
	}
	s.flushEntities = nil
	s.entities = func() int { return 0 }
	if dir != "" {
		d, err := wal.OpenDurable(dir, cfg.Schema, cfg.Opts, emit)
		if err != nil {
			return err
		}
		s.eng, s.closeEng = d, d.Close
		s.flushResult = d.Flush
		s.stats = d.Stats
		return nil
	}
	det, err := core.NewDetector(cfg.Schema, cfg.Opts, emit)
	if err != nil {
		return err
	}
	s.eng = det
	s.flushResult = det.Flush
	s.stats = det.Stats
	return nil
}

// checkShardMeta records (or verifies) the shard count in
// dir/SHARDS, so a state directory is never reopened with a routing
// function that disagrees with where its residents already live.
func checkShardMeta(dir string, n int) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("shard: %w", err)
	}
	path := filepath.Join(dir, "SHARDS")
	data, err := os.ReadFile(path)
	switch {
	case errors.Is(err, os.ErrNotExist):
		return os.WriteFile(path, []byte(strconv.Itoa(n)+"\n"), 0o644)
	case err != nil:
		return fmt.Errorf("shard: %w", err)
	}
	have, perr := strconv.Atoi(strings.TrimSpace(string(data)))
	if perr != nil {
		return fmt.Errorf("shard: corrupt meta file %s: %q", path, data)
	}
	if have != n {
		return &ShardCountMismatchError{Dir: dir, Have: have, Want: n}
	}
	return nil
}

// rebuildIDs reconstitutes the admission map from the engines'
// resident sets — a no-op for fresh in-memory engines, the recovery
// path for durable ones.
func (r *Router) rebuildIDs() error {
	for _, s := range r.shards {
		for _, id := range s.eng.ResidentIDs() {
			if prev, dup := r.ids[id]; dup {
				return fmt.Errorf("shard: tuple %q resident in shards %d and %d (state dirs from different shardings?)", id, prev, s.id)
			}
			r.ids[id] = s.id
		}
	}
	return nil
}

// closeEngines tears down whatever buildEngine opened — the
// construction-failure path.
func (r *Router) closeEngines() {
	for _, s := range r.shards {
		if s != nil && s.closeEng != nil {
			s.closeEng() // best-effort teardown after a prior error
		}
	}
}

// runShard is the shard worker: it applies queued operations in FIFO
// order, coalescing runs of insertions into AddBatch calls. After the
// first apply error the shard stops applying (the error is sticky and
// surfaces on Ingest/Flush) but keeps honoring barriers so drains
// never hang.
func (r *Router) runShard(s *shardState) {
	defer r.wg.Done()
	batch := make([]*pdb.XTuple, 0, shardBatchCap)
	flush := func() {
		if len(batch) == 0 {
			return
		}
		if s.fail() == nil {
			if err := s.eng.AddBatch(batch); err != nil {
				s.setErr(err)
			}
		}
		batch = batch[:0]
	}
	for o := range s.ops {
		switch {
		case o.hold != nil:
			<-o.hold
		case o.barrier != nil:
			flush()
			close(o.barrier)
		case o.remove != "":
			flush()
			if s.fail() == nil {
				if err := s.eng.Remove(o.remove); err != nil {
					s.setErr(err)
				}
			}
		default:
			batch = append(batch, o.tuple)
			if len(batch) >= shardBatchCap || len(s.ops) == 0 {
				flush()
			}
		}
	}
	flush()
}

// ShardOf returns the shard the given tuple routes to: the FNV-32a
// hash of its conflict-resolved blocking key, modulo the shard count.
// Routing standardizes a copy first when a Standardizer is configured,
// so the key matches what the shard engine will index.
func (r *Router) ShardOf(x *pdb.XTuple) int {
	y := x
	if r.std != nil {
		y = r.std.XTuple(x)
	}
	h := fnv.New32a()
	h.Write([]byte(r.key.FromValues(r.strategy.ResolveX(y))))
	return int(h.Sum32() % uint32(len(r.shards)))
}

// Ingest validates and enqueues one insertion on its owning shard.
// It returns *OverloadedError without enqueuing when the shard's
// queue is full, a duplicate-ID error when the ID is already admitted,
// and the shard's sticky error when it has failed. The tuple is
// cloned at admission; the caller may reuse it.
func (r *Router) Ingest(x *pdb.XTuple) error {
	if x == nil {
		return errors.New("shard: nil tuple")
	}
	if err := x.Validate(len(r.schema)); err != nil {
		return err
	}
	sh := r.ShardOf(x)
	s := r.shards[sh]
	if err := s.fail(); err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return ErrClosed
	}
	if prev, dup := r.ids[x.ID]; dup {
		return fmt.Errorf("shard: duplicate tuple ID %q (admitted to shard %d)", x.ID, prev)
	}
	select {
	case s.ops <- op{tuple: x.Clone()}:
		r.ids[x.ID] = sh
		return nil
	default:
		return &OverloadedError{Shard: sh, Queued: len(s.ops)}
	}
}

// Remove enqueues a removal on the shard that admitted id. An unknown
// ID returns an error wrapping core.ErrUnknownID; a full queue returns
// *OverloadedError without enqueuing.
func (r *Router) Remove(id string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return ErrClosed
	}
	sh, ok := r.ids[id]
	if !ok {
		return fmt.Errorf("shard: Remove: %w %q", core.ErrUnknownID, id)
	}
	s := r.shards[sh]
	if err := s.fail(); err != nil {
		return err
	}
	select {
	case s.ops <- op{remove: id}:
		delete(r.ids, id)
		return nil
	default:
		return &OverloadedError{Shard: sh, Queued: len(s.ops)}
	}
}

// Drain blocks until every operation admitted before the call has
// been applied (and its deltas handed to the fan-out).
func (r *Router) Drain() error {
	r.opMu.Lock()
	defer r.opMu.Unlock()
	return r.drainLocked()
}

// drainLocked sends one barrier per shard and waits for all of them;
// the caller holds opMu, so no concurrent Close can close the queues
// mid-send.
func (r *Router) drainLocked() error {
	r.mu.Lock()
	closed := r.closed
	r.mu.Unlock()
	if closed {
		return ErrClosed
	}
	barriers := make([]chan struct{}, len(r.shards))
	for i, s := range r.shards {
		barriers[i] = make(chan struct{})
		s.ops <- op{barrier: barriers[i]}
	}
	for _, b := range barriers {
		<-b
	}
	for _, s := range r.shards {
		if err := s.fail(); err != nil {
			return err
		}
	}
	return nil
}

// Flush drains the queues and returns the union of the per-shard
// classified pair sets — by the per-block independence of blocking,
// exactly the core.Result a single engine would return on the merged
// input. TotalPairs is recomputed over the merged resident count.
func (r *Router) Flush() (*core.Result, error) {
	r.opMu.Lock()
	defer r.opMu.Unlock()
	if err := r.drainLocked(); err != nil {
		return nil, err
	}
	out := &core.Result{
		Matches:  verify.PairSet{},
		Possible: verify.PairSet{},
		ByPair:   map[verify.Pair]core.Match{},
	}
	residents := 0
	for _, s := range r.shards {
		res := s.flushResult()
		out.Compared = append(out.Compared, res.Compared...)
		for p, m := range res.ByPair {
			out.ByPair[p] = m
		}
		for p := range res.Matches {
			out.Matches[p] = true
		}
		for p := range res.Possible {
			out.Possible[p] = true
		}
		residents += s.eng.Len()
	}
	out.TotalPairs = ssr.TotalPairs(residents)
	sort.Slice(out.Compared, func(i, j int) bool {
		if out.Compared[i].A != out.Compared[j].A {
			return out.Compared[i].A < out.Compared[j].A
		}
		return out.Compared[i].B < out.Compared[j].B
	})
	return out, nil
}

// FlushEntities drains the queues and returns the union of the
// per-shard resolutions (integrate mode only): entities sorted by ID,
// uncertain duplicates by pair. Entity identity is deterministic from
// membership (sorted member IDs joined with '+'), so the union equals
// the single-instance entity set. The per-shard lineage universes are
// not merged: Universe and Tuples are nil in the union.
func (r *Router) FlushEntities() (*resolve.Resolution, error) {
	if !r.integrate {
		return nil, errors.New("shard: FlushEntities requires Config.Integrate")
	}
	r.opMu.Lock()
	defer r.opMu.Unlock()
	if err := r.drainLocked(); err != nil {
		return nil, err
	}
	out := &resolve.Resolution{}
	for _, s := range r.shards {
		res, err := s.flushEntities()
		if err != nil {
			return nil, err
		}
		out.Entities = append(out.Entities, res.Entities...)
		out.Uncertain = append(out.Uncertain, res.Uncertain...)
	}
	sort.Slice(out.Entities, func(i, j int) bool { return out.Entities[i].ID < out.Entities[j].ID })
	sort.Slice(out.Uncertain, func(i, j int) bool {
		if out.Uncertain[i].A != out.Uncertain[j].A {
			return out.Uncertain[i].A < out.Uncertain[j].A
		}
		return out.Uncertain[i].B < out.Uncertain[j].B
	})
	return out, nil
}

// Stats snapshots every shard without draining.
func (r *Router) Stats() Stats {
	st := Stats{Shards: len(r.shards), PerShard: make([]ShardStats, len(r.shards))}
	for i, s := range r.shards {
		ds := s.stats()
		ss := ShardStats{
			Shard:    i,
			Queue:    len(s.ops),
			QueueCap: cap(s.ops),
			Detector: ds,
			Entities: s.entities(),
		}
		if err := s.fail(); err != nil {
			ss.Err = err.Error()
		}
		st.PerShard[i] = ss
		st.Detector.Residents += ds.Residents
		st.Detector.Compared += ds.Compared
		st.Detector.Dropped += ds.Dropped
		st.Detector.Live += ds.Live
		st.Detector.Matches += ds.Matches
		st.Detector.Possible += ds.Possible
		st.Detector.Enumerated += ds.Enumerated
		st.Detector.Filtered += ds.Filtered
		st.Detector.FilterActive = st.Detector.FilterActive || ds.FilterActive
		st.Entities += ss.Entities
	}
	st.Detector.TotalPairs = ssr.TotalPairs(st.Detector.Residents)
	return st
}

// SubscribeMatches registers a match-delta subscriber with the given
// channel buffer (0 means 64). The channel closes when the subscriber
// falls behind (a full buffer drops the subscriber rather than
// stalling shard workers) or when the router closes; cancel
// unregisters early and is idempotent.
func (r *Router) SubscribeMatches(buf int) (<-chan MatchEvent, func()) {
	if buf <= 0 {
		buf = 64
	}
	ch := make(chan MatchEvent, buf)
	r.subMu.Lock()
	defer r.subMu.Unlock()
	if r.subsClosed {
		close(ch)
		return ch, func() {}
	}
	id := r.nextSub
	r.nextSub++
	r.matchSubs[id] = ch
	return ch, func() {
		r.subMu.Lock()
		if c, ok := r.matchSubs[id]; ok {
			delete(r.matchSubs, id)
			close(c)
		}
		r.subMu.Unlock()
	}
}

// SubscribeEntities registers an entity-delta subscriber; same
// contract as SubscribeMatches. Entity deltas flow only in integrate
// mode.
func (r *Router) SubscribeEntities(buf int) (<-chan EntityEvent, func()) {
	if buf <= 0 {
		buf = 64
	}
	ch := make(chan EntityEvent, buf)
	r.subMu.Lock()
	defer r.subMu.Unlock()
	if r.subsClosed {
		close(ch)
		return ch, func() {}
	}
	id := r.nextSub
	r.nextSub++
	r.entitySubs[id] = ch
	return ch, func() {
		r.subMu.Lock()
		if c, ok := r.entitySubs[id]; ok {
			delete(r.entitySubs, id)
			close(c)
		}
		r.subMu.Unlock()
	}
}

// publishMatch fans one shard's match delta to every subscriber,
// dropping (closing) subscribers whose buffers are full.
func (r *Router) publishMatch(shard int, md core.MatchDelta) {
	ev := MatchEvent{Shard: shard, Delta: md}
	r.subMu.Lock()
	for id, ch := range r.matchSubs {
		select {
		case ch <- ev:
		default:
			delete(r.matchSubs, id)
			close(ch)
		}
	}
	r.subMu.Unlock()
}

// publishEntity is publishMatch for entity deltas.
func (r *Router) publishEntity(shard int, ed resolve.EntityDelta) {
	ev := EntityEvent{Shard: shard, Delta: ed}
	r.subMu.Lock()
	for id, ch := range r.entitySubs {
		select {
		case ch <- ev:
		default:
			delete(r.entitySubs, id)
			close(ch)
		}
	}
	r.subMu.Unlock()
}

// Close drains and tears the router down: admission stops (ErrClosed),
// queued operations are applied, durable engines checkpoint and
// release their locks, and every subscriber channel is closed. Close
// is idempotent; it returns the first shard apply or checkpoint error.
func (r *Router) Close() error {
	r.opMu.Lock()
	defer r.opMu.Unlock()
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	r.closed = true
	r.mu.Unlock()
	for _, s := range r.shards {
		close(s.ops)
	}
	r.wg.Wait()
	var first error
	for _, s := range r.shards {
		if err := s.fail(); err != nil && first == nil {
			first = err
		}
	}
	for _, s := range r.shards {
		if s.closeEng == nil {
			continue
		}
		if err := s.closeEng(); err != nil && first == nil {
			first = fmt.Errorf("shard %d: %w", s.id, err)
		}
	}
	r.subMu.Lock()
	r.subsClosed = true
	for id, ch := range r.matchSubs {
		delete(r.matchSubs, id)
		close(ch)
	}
	for id, ch := range r.entitySubs {
		delete(r.entitySubs, id)
		close(ch)
	}
	r.subMu.Unlock()
	return first
}
