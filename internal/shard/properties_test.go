package shard

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"testing"

	"probdedup/internal/core"
	"probdedup/internal/dataset"
	"probdedup/internal/keys"
	"probdedup/internal/pdb"
	"probdedup/internal/resolve"
	"probdedup/internal/ssr"
)

// TestShardEquivalence is the tentpole oath: for random schedules of
// inserts, batches and removals, the union of the per-shard Flush
// results and the merged match-delta stream equal a single-instance
// Detector run on the same schedule — across shard counts and worker
// counts. Runs under -race in CI.
func TestShardEquivalence(t *testing.T) {
	for _, shards := range []int{1, 2, 8} {
		for _, workers := range []int{1, 4} {
			for seed := int64(0); seed < 3; seed++ {
				shards, workers, seed := shards, workers, seed
				t.Run(fmt.Sprintf("n%d/w%d/seed%d", shards, workers, seed), func(t *testing.T) {
					t.Parallel()
					schema, ops := genSchedule(t, seed, 40)
					opts := testOptions(t, schema, workers)

					r := mustOpen(t, Config{Shards: shards, Schema: schema, Opts: opts})
					events, cancel := r.SubscribeMatches(1 << 14)
					defer cancel()
					var (
						got []core.MatchDelta
						wg  sync.WaitGroup
					)
					wg.Add(1)
					go func() {
						defer wg.Done()
						for ev := range events {
							got = append(got, ev.Delta)
						}
					}()
					for _, o := range ops {
						routerApply(t, r, o)
					}
					res, err := r.Flush()
					if err != nil {
						t.Fatal(err)
					}
					if err := r.Close(); err != nil {
						t.Fatal(err)
					}
					wg.Wait()

					wantRes, wantDeltas := singleRun(t, schema, opts, ops)
					if canonResult(res) != canonResult(wantRes) {
						t.Errorf("sharded flush union diverges from single instance\n--- sharded ---\n%s--- single ---\n%s",
							canonResult(res), canonResult(wantRes))
					}
					if canonDeltas(got) != canonDeltas(wantDeltas) {
						t.Errorf("merged delta stream diverges from single instance\n--- sharded ---\n%s\n--- single ---\n%s",
							canonDeltas(got), canonDeltas(wantDeltas))
					}
				})
			}
		}
	}
}

// TestShardEquivalenceConcurrentIngest drives the router from many
// goroutines at once (the daemon's concurrent-clients shape) and
// checks the final Flush against a single-instance run over the same
// tuples — admission order is nondeterministic, but the exact tier's
// Flush depends only on the resident set.
func TestShardEquivalenceConcurrentIngest(t *testing.T) {
	schema, ops := genSchedule(t, 7, 48)
	var tuples []*pdb.XTuple
	for _, o := range ops {
		// Keep only arrivals: concurrent removal interleavings change
		// the resident set, which is exactly what this variant holds
		// fixed.
		if o.add != nil {
			tuples = append(tuples, o.add)
		}
		tuples = append(tuples, o.batch...)
	}
	opts := testOptions(t, schema, 4)
	r := mustOpen(t, Config{Shards: 8, Schema: schema, Opts: opts})
	const clients = 6
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := c; i < len(tuples); i += clients {
				if err := r.Ingest(tuples[i]); err != nil {
					t.Errorf("ingest %s: %v", tuples[i].ID, err)
					return
				}
			}
		}(c)
	}
	// Concurrent introspection must be safe while clients push.
	stop := make(chan struct{})
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				r.Stats()
			}
		}
	}()
	wg.Wait()
	close(stop)
	res, err := r.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	sched := make([]schedOp, len(tuples))
	for i, x := range tuples {
		sched[i] = schedOp{add: x}
	}
	want := singleResult(t, schema, opts, sched)
	if canonResult(res) != canonResult(want) {
		t.Fatalf("concurrent sharded flush diverges\n--- sharded ---\n%s--- single ---\n%s",
			canonResult(res), canonResult(want))
	}
}

// TestShardEquivalenceIntegrate extends the oath one layer up: in
// integrate mode the union of per-shard resolutions (entities and
// uncertain duplicates) and the merged entity-delta stream equal a
// single resolve.Integrator fed the same schedule. The router drains
// after every operation so both sides fold at the same granularity —
// entity delta kinds (created vs merged) depend on it.
func TestShardEquivalenceIntegrate(t *testing.T) {
	for _, shards := range []int{2, 8} {
		shards := shards
		t.Run(fmt.Sprintf("n%d", shards), func(t *testing.T) {
			t.Parallel()
			schema, ops := genSchedule(t, 11, 32)
			ops = singlesOnly(ops)
			opts := testOptions(t, schema, 2)

			r := mustOpen(t, Config{Shards: shards, Schema: schema, Opts: opts, Integrate: true})
			events, cancel := r.SubscribeEntities(1 << 14)
			defer cancel()
			var (
				got []resolve.EntityDelta
				wg  sync.WaitGroup
			)
			wg.Add(1)
			go func() {
				defer wg.Done()
				for ev := range events {
					got = append(got, ev.Delta)
				}
			}()
			for _, o := range ops {
				routerApply(t, r, o)
				if err := r.Drain(); err != nil {
					t.Fatal(err)
				}
			}
			res, err := r.FlushEntities()
			if err != nil {
				t.Fatal(err)
			}
			if err := r.Close(); err != nil {
				t.Fatal(err)
			}
			wg.Wait()

			ig, err := resolve.NewIntegrator(schema, opts, nil)
			if err != nil {
				t.Fatal(err)
			}
			var want []resolve.EntityDelta
			ig2, err := resolve.NewIntegrator(schema, opts, func(ed resolve.EntityDelta) bool {
				want = append(want, ed)
				return true
			})
			if err != nil {
				t.Fatal(err)
			}
			for _, o := range ops {
				var aerr error
				switch {
				case o.add != nil:
					aerr = ig.Add(o.add)
					if aerr == nil {
						aerr = ig2.Add(o.add)
					}
				default:
					aerr = ig.Remove(o.remove)
					if aerr == nil {
						aerr = ig2.Remove(o.remove)
					}
				}
				if aerr != nil {
					t.Fatal(aerr)
				}
			}
			wantRes, err := ig.Flush()
			if err != nil {
				t.Fatal(err)
			}
			if canonResolution(res) != canonResolution(wantRes) {
				t.Errorf("sharded entity union diverges\n--- sharded ---\n%s--- single ---\n%s",
					canonResolution(res), canonResolution(wantRes))
			}
			if canonEntityDeltas(got) != canonEntityDeltas(want) {
				t.Errorf("merged entity-delta stream diverges\n--- sharded ---\n%s\n--- single ---\n%s",
					canonEntityDeltas(got), canonEntityDeltas(want))
			}
		})
	}
}

// singlesOnly flattens batches into single adds, so per-op draining
// gives both sides identical fold granularity.
func singlesOnly(ops []schedOp) []schedOp {
	var out []schedOp
	for _, o := range ops {
		switch {
		case o.batch != nil:
			for _, x := range o.batch {
				out = append(out, schedOp{add: x})
			}
		default:
			out = append(out, o)
		}
	}
	return out
}

// canonResolution canonicalizes the entity-level view: the entity
// partition with fused representations and the uncertain duplicates
// with calibrated probabilities. Universe/Tuples are excluded — the
// sharded union does not merge lineage universes.
func canonResolution(r *resolve.Resolution) string {
	var b strings.Builder
	for _, e := range r.Entities {
		fmt.Fprintf(&b, "entity %s members=%v tuple=%s\n", e.ID, e.Members, e.Tuple)
	}
	for _, ud := range r.Uncertain {
		fmt.Fprintf(&b, "uncertain %s|%s sym=%s p=%.12f merged=%s\n", ud.A, ud.B, ud.Sym, ud.P, ud.Merged)
	}
	return b.String()
}

// canonEntityDeltas canonicalizes an entity-delta stream as a sorted
// multiset.
func canonEntityDeltas(deltas []resolve.EntityDelta) string {
	lines := make([]string, len(deltas))
	for i, ed := range deltas {
		lines[i] = fmt.Sprintf("%s|%s|%v|from=%v", ed.Kind, ed.Entity.ID, ed.Entity.Members, ed.From)
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

// TestShardEquivalencePruned runs the oath once more with the pruned
// composition (Filter over BlockingCertain) — pruning is block-local,
// so sharding must still hold.
func TestShardEquivalencePruned(t *testing.T) {
	schema, ops := genSchedule(t, 3, 36)
	opts := testOptions(t, schema, 1)
	opts.Reduction = prunedBlocking(t, schema)
	r := mustOpen(t, Config{Shards: 4, Schema: schema, Opts: opts})
	for _, o := range ops {
		routerApply(t, r, o)
	}
	res, err := r.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	want := singleResult(t, schema, opts, ops)
	if canonResult(res) != canonResult(want) {
		t.Fatalf("pruned sharded flush diverges\n--- sharded ---\n%s--- single ---\n%s",
			canonResult(res), canonResult(want))
	}
}

// prunedBlocking composes length pruning (on the name attribute) over
// blocking — the shardable Filter composition.
func prunedBlocking(tb testing.TB, schema []string) ssr.Method {
	tb.Helper()
	def, err := keys.ParseDef("name:3", schema)
	if err != nil {
		tb.Fatal(err)
	}
	return ssr.NewFilter(ssr.BlockingCertain{Key: def}, ssr.Pruning{MaxDiff: map[int]int{0: 3}})
}

var _ = dataset.Schema // keep the corpus dependency explicit
